(* Sensor field: a jittered-grid deployment of battery-powered sensors that
   all report readings to one sink (many-to-one traffic).

   The example compares the total transmission energy of routing over the
   ΘALG overlay with routing over the raw transmission graph: the overlay
   keeps hops short, and short hops are what the |uv|^kappa energy model
   rewards.

   Run with:  dune exec examples/sensor_field.exe *)

open Adhoc
module Prng = Util.Prng
module Cost = Graphs.Cost
module Table = Util.Table
module Workload = Routing.Workload
module Engine = Routing.Engine
module Balancing = Routing.Balancing

let kappa = 2.

let run_collection ~name ~graph ~conflict ~rng ~sources ~sink =
  let cost = Cost.energy ~kappa in
  let config = { Workload.horizon = 10000; attempts = 12000; slack = 12; interference_free = true } in
  let w = Workload.single_destination ~conflict ~sources config ~rng ~graph ~cost ~sink in
  (* Practical parameters: Theorem 3.1's constants are worst-case (its gamma
     makes the height gradient so steep that a finite convergecast never
     reaches steady state); T = 1 with gamma = L/C keeps the cost-awareness
     while letting the gradient form.  The theorem-faithful sweep is
     experiment E7 in the benchmark harness. *)
  let params =
    let opt = w.Workload.opt in
    let gamma =
      if opt.Workload.avg_cost <= 0. then 0.
      else opt.Workload.avg_hops /. opt.Workload.avg_cost
    in
    Balancing.params ~threshold:1. ~gamma
      ~capacity:(max 50 (4 * opt.Workload.max_buffer * int_of_float opt.Workload.avg_hops))
  in
  let stats = Engine.run_mac_given ~cooldown:10000 ~pad:conflict ~graph ~cost ~params w in
  (name, w.Workload.opt, stats)

let () =
  let rng = Prng.create 41 in

  (* 400 sensors on a jittered grid; sink in the grid corner. *)
  let points = Pointset.Generators.jittered_grid ~jitter:0.35 rng 100 in
  let sink = 0 in
  let range = 1.5 *. Topo.Udg.critical_range points in
  Printf.printf "sensor field: %d sensors, range %.3f, sink at %s\n" (Array.length points)
    range
    (Geom.Point.to_string points.(sink));
  Printf.printf "civilized precision lambda = %.4f\n\n" (Pointset.Precision.lambda points);

  let b = Pipeline.prepare ~theta:(Float.pi /. 6.) ~range points in
  (* The reporting sensors: the far quadrant of the field, so their packets
     share a corridor toward the sink and the balancing gradient forms. *)
  let sources =
    Array.to_list points
    |> List.mapi (fun i (p : Geom.Point.t) -> (i, p))
    |> List.filter (fun (_, (p : Geom.Point.t)) -> p.Geom.Point.x > 0.6 && p.Geom.Point.y > 0.6)
    |> List.map fst |> Array.of_list
  in
  Printf.printf "%d reporting sensors in the far quadrant\n\n" (Array.length sources);
  let gstar_conflict =
    Interference.Conflict.build (Interference.Model.make ~delta:b.Pipeline.delta) ~points
      b.Pipeline.gstar
  in

  let rows =
    [
      run_collection ~name:"theta overlay" ~graph:b.Pipeline.overlay ~conflict:b.Pipeline.conflict
        ~rng:(Prng.create 42) ~sources ~sink;
      run_collection ~name:"raw G*" ~graph:b.Pipeline.gstar ~conflict:gstar_conflict
        ~rng:(Prng.create 42) ~sources ~sink;
    ]
  in
  let t =
    Table.create ~title:"many-to-one data collection (energy model kappa=2)"
      [
        ("topology", Table.Left);
        ("OPT pkts", Table.Right);
        ("delivered", Table.Right);
        ("tput ratio", Table.Right);
        ("energy/pkt", Table.Right);
        ("OPT energy/pkt", Table.Right);
      ]
  in
  List.iter
    (fun (name, (opt : Workload.opt_stats), (stats : Engine.stats)) ->
      let per_pkt =
        if stats.Engine.delivered = 0 then 0.
        else stats.Engine.total_cost /. float_of_int stats.Engine.delivered
      in
      Table.add_row t
        [
          name;
          string_of_int opt.Workload.deliveries;
          string_of_int stats.Engine.delivered;
          Printf.sprintf "%.3f" (Engine.throughput_ratio stats opt);
          Printf.sprintf "%.5f" per_pkt;
          Printf.sprintf "%.5f" opt.Workload.avg_cost;
        ])
    rows;
  Table.print t;
  print_newline ();
  Printf.printf
    "The overlay offers the same energy-optimal routes (O(1) energy stretch)\n\
     with constant degree, so its interference number — and hence the MAC\n\
     schedule length — stays small: I(overlay) = %d vs I(G*) = %d.\n"
    b.Pipeline.interference_number
    (Interference.Conflict.interference_number gstar_conflict)
