(* Quickstart: build the ΘALG overlay on a random deployment, inspect its
   quality, and route packets over it with the (T,γ)-balancing algorithm.

   Run with:  dune exec examples/quickstart.exe *)

open Adhoc
module Prng = Util.Prng
module Graph = Graphs.Graph
module Table = Util.Table

let () =
  let rng = Prng.create 2003 in

  (* 1. Deploy 150 nodes uniformly at random in the unit square. *)
  let points = Pointset.Generators.uniform rng 150 in

  (* 2. Choose a transmission range: 1.5x the connectivity threshold. *)
  let range = 1.5 *. Topo.Udg.critical_range points in
  Printf.printf "deployed %d nodes, transmission range %.3f\n\n" (Array.length points) range;

  (* 3. Build the transmission graph G* and the ΘALG overlay 𝒩. *)
  let b = Pipeline.prepare ~theta:(Float.pi /. 6.) ~range points in

  let t = Table.create ~title:"topology" [ ("metric", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "G* edges"; string_of_int (Graph.num_edges b.Pipeline.gstar) ];
  Table.add_row t [ "overlay edges"; string_of_int (Graph.num_edges b.Pipeline.overlay) ];
  Table.add_row t [ "overlay max degree"; string_of_int (Graph.max_degree b.Pipeline.overlay) ];
  Table.add_row t
    [ "degree bound (4pi/theta)"; string_of_int (Topo.Theta_alg.degree_bound ~theta:b.Pipeline.theta) ];
  Table.add_row t
    [
      "connected";
      (if Graphs.Components.is_connected b.Pipeline.overlay then "yes" else "no");
    ];
  Table.add_row t
    [
      "energy stretch (kappa=2)";
      Printf.sprintf "%.3f"
        (Graphs.Stretch.over_base_edges ~sub:b.Pipeline.overlay ~base:b.Pipeline.gstar
           ~cost:(Graphs.Cost.energy ~kappa:2.) ());
    ];
  Table.add_row t
    [
      "distance stretch";
      Printf.sprintf "%.3f"
        (Graphs.Stretch.over_base_edges ~sub:b.Pipeline.overlay ~base:b.Pipeline.gstar
           ~cost:Graphs.Cost.length ());
    ];
  Table.add_row t [ "interference number I"; string_of_int b.Pipeline.interference_number ];
  Table.print t;
  print_newline ();

  (* 4. Route packets: certified adversarial workload, MAC given
        (Theorem 3.1 setting). *)
  let r = Pipeline.run_scenario1 ~horizon:4000 ~attempts:6000 ~flows:2 ~rng b in
  let t = Table.create ~title:"routing (scenario 1)" [ ("metric", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "OPT deliveries"; string_of_int r.Pipeline.opt.Routing.Workload.deliveries ];
  Table.add_row t [ "balancing deliveries"; string_of_int r.Pipeline.stats.Routing.Engine.delivered ];
  Table.add_row t [ "throughput ratio"; Printf.sprintf "%.3f" r.Pipeline.throughput_ratio ];
  Table.add_row t [ "avg-cost ratio"; Printf.sprintf "%.3f" r.Pipeline.cost_ratio ];
  Table.add_row t [ "packets still buffered"; string_of_int r.Pipeline.stats.Routing.Engine.remaining ];
  Table.print t
