(* Interference map: how much spatial reuse does each topology allow?

   Builds the classical proximity-graph baselines next to ΘALG's overlay on
   the same deployment and compares edge count, degree, stretch and the
   interference number I — the quantity that caps achievable throughput at
   Ω(1/I) (paper Theorem 2.8).

   Run with:  dune exec examples/interference_map.exe *)

open Adhoc
module Prng = Util.Prng
module Graph = Graphs.Graph
module Table = Util.Table
module Conflict = Interference.Conflict
module Model = Interference.Model

let () =
  let rng = Prng.create 7 in
  let points = Pointset.Generators.uniform rng 256 in
  let range = 1.5 *. Topo.Udg.critical_range points in
  let delta = 0.5 in
  let model = Model.make ~delta in
  Printf.printf "256 uniform nodes, range %.3f, guard zone delta = %.1f\n\n" range delta;

  let gstar = Topo.Udg.build ~range points in
  let topologies =
    [
      ("G* (disk graph)", gstar);
      ( "theta overlay",
        Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta:(Float.pi /. 6.) ~range points) );
      ("Yao graph", Topo.Yao.graph ~theta:(Float.pi /. 6.) ~range points);
      ("Gabriel", Topo.Gabriel.build ~range points);
      ("RNG", Topo.Rng_graph.build ~range points);
      ("restricted Delaunay", Topo.Delaunay.build ~range points);
      ("Euclidean MST", Graphs.Mst.of_points points);
    ]
  in
  let t =
    Table.create ~title:"interference and quality by topology"
      [
        ("topology", Table.Left);
        ("edges", Table.Right);
        ("max deg", Table.Right);
        ("I", Table.Right);
        ("colors", Table.Right);
        ("energy stretch", Table.Right);
        ("dist stretch", Table.Right);
      ]
  in
  List.iter
    (fun (name, g) ->
      let conflict = Conflict.build model ~points g in
      let _, colors = Conflict.greedy_coloring conflict in
      Table.add_row t
        [
          name;
          string_of_int (Graph.num_edges g);
          string_of_int (Graph.max_degree g);
          string_of_int (Conflict.interference_number conflict);
          string_of_int colors;
          Printf.sprintf "%.3f"
            (Graphs.Stretch.over_base_edges ~sub:g ~base:gstar
               ~cost:(Graphs.Cost.energy ~kappa:2.) ());
          Printf.sprintf "%.3f"
            (Graphs.Stretch.over_base_edges ~sub:g ~base:gstar ~cost:Graphs.Cost.length ());
        ])
    topologies;
  Table.print t;
  print_newline ();
  print_endline
    "I bounds the throughput loss of local scheduling (Theorem 2.8: an\n\
     Omega(1/I) fraction of optimal); 'colors' is the length of the greedy\n\
     interference-free MAC schedule. Sparse overlays trade a constant-factor\n\
     stretch for an order-of-magnitude smaller I than the raw disk graph."
