(* Disaster relief: clustered teams of mobile responders. Nodes move by the
   random-waypoint model; the ΘALG overlay is recomputed as the network
   changes — the paper's motivation for *local* topology control: every
   recomputation costs only three rounds of local messages.

   The example tracks, across mobility epochs, how the overlay keeps its
   guarantees (connectivity, constant degree, bounded energy stretch) while
   the node positions drift, and how much message traffic maintenance costs.

   Run with:  dune exec examples/disaster_relief.exe *)

open Adhoc
module Prng = Util.Prng
module Graph = Graphs.Graph
module Table = Util.Table

let theta = Float.pi /. 6.

let () =
  let rng = Prng.create 99 in

  (* Four teams of responders around incident sites. *)
  let points = Pointset.Generators.clusters ~num_clusters:4 ~spread:0.07 rng 120 in
  Printf.printf "disaster relief: %d responders in 4 clusters\n\n" (Array.length points);

  let mobility =
    Pointset.Mobility.create ~pause:5 ~speed_min:0.002 ~speed_max:0.01 rng points
  in

  let t =
    Table.create ~title:"overlay maintained under random-waypoint mobility"
      [
        ("epoch", Table.Right);
        ("range", Table.Right);
        ("edges", Table.Right);
        ("max deg", Table.Right);
        ("connected", Table.Left);
        ("energy stretch", Table.Right);
        ("msgs/node", Table.Right);
        ("churn", Table.Right);
      ]
  in
  let prev_edges = ref [] in
  for epoch = 0 to 9 do
    let pts = Pointset.Mobility.positions mobility in
    let range = 1.4 *. Topo.Udg.critical_range pts in
    let gstar = Topo.Udg.build ~range pts in
    let overlay, msgs = Topo.Theta_protocol.run ~theta ~range pts in
    let edges =
      Graph.fold_edges overlay ~init:[] ~f:(fun acc _ e -> (e.Graph.u, e.Graph.v) :: acc)
      |> List.sort compare
    in
    (* Churn: fraction of overlay edges that changed since the last epoch. *)
    let churn =
      if epoch = 0 then 0.
      else begin
        let changed =
          List.length (List.filter (fun e -> not (List.mem e !prev_edges)) edges)
          + List.length (List.filter (fun e -> not (List.mem e edges)) !prev_edges)
        in
        float_of_int changed /. float_of_int (max 1 (List.length edges))
      end
    in
    prev_edges := edges;
    let msgs_per_node =
      float_of_int
        (msgs.Topo.Theta_protocol.position_msgs
        + msgs.Topo.Theta_protocol.neighborhood_msgs
        + msgs.Topo.Theta_protocol.connection_msgs)
      /. float_of_int (Array.length pts)
    in
    Table.add_row t
      [
        string_of_int epoch;
        Printf.sprintf "%.3f" range;
        string_of_int (Graph.num_edges overlay);
        string_of_int (Graph.max_degree overlay);
        (if Graphs.Components.is_connected overlay then "yes" else "NO");
        Printf.sprintf "%.3f"
          (Graphs.Stretch.over_base_edges ~sub:overlay ~base:gstar
             ~cost:(Graphs.Cost.energy ~kappa:2.) ());
        Printf.sprintf "%.2f" msgs_per_node;
        Printf.sprintf "%.2f" churn;
      ];
    (* 50 mobility steps between epochs. *)
    Pointset.Mobility.run mobility 50
  done;
  Table.print t;
  print_newline ();
  Printf.printf
    "Each epoch rebuilds the overlay with three local broadcast rounds\n\
     (degree stays under the 4pi/theta = %d bound throughout), so topology\n\
     maintenance scales with density, not network size.\n\n"
    (Topo.Theta_alg.degree_bound ~theta);

  (* Route WHILE the responders move: epochs of 120 steps, buffers carried
     across topology changes (the paper's dynamic adversarial setting). *)
  let mobility2 =
    Pointset.Mobility.create ~pause:5 ~speed_min:0.002 ~speed_max:0.01 (Prng.create 100)
      (Pointset.Generators.clusters ~num_clusters:4 ~spread:0.07 (Prng.create 100) 120)
  in
  let epochs =
    List.init 12 (fun _ ->
        let snapshot = Pointset.Mobility.positions mobility2 in
        Pointset.Mobility.run mobility2 40;
        Routing.Dynamic_engine.epoch_of_points ~delta:0.05 ~steps:800 snapshot)
  in
  (* Two sustained flows between cluster members. *)
  let inj_rng = Prng.create 101 in
  let flows = [| (3, 77); (45, 110) |] in
  let injections t =
    if t < 4800 && t mod 12 = 0 then [ flows.(Util.Prng.int inj_rng 2) ] else []
  in
  let params = Routing.Balancing.params ~threshold:1. ~gamma:1. ~capacity:200 in
  let stats =
    Routing.Dynamic_engine.run ~epochs ~injections ~cost:(Graphs.Cost.energy ~kappa:2.)
      ~params ()
  in
  Printf.printf
    "routing across 12 moving epochs (%d steps): injected %d, delivered %d,\n\
     dropped %d, still buffered %d. The balancing gradient survives topology\n\
     churn because heights, not routes, carry the state; throughput is paced\n\
     by the TDMA colour schedule of each epoch's interference graph.\n"
    stats.Routing.Engine.steps stats.Routing.Engine.injected stats.Routing.Engine.delivered
    stats.Routing.Engine.dropped stats.Routing.Engine.remaining
