(* Visualize: renders the paper's figures for a concrete deployment.

   Writes into ./figures/ :
     overlay.svg        — G* (grey) under the ΘALG overlay (black)
     route.svg          — the overlay with a min-energy route highlighted
     interference.svg   — one edge's guard-zone region and its conflicts
     honeycomb.svg      — the hexagon tiling of Figure 5
     overlay.dot        — Graphviz export (render with neato -n)

   Run with:  dune exec examples/visualize.exe *)

open Adhoc
module Prng = Util.Prng
module Graph = Graphs.Graph

let () =
  let dir = "figures" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let rng = Prng.create 12 in
  let points = Pointset.Generators.uniform rng 120 in
  let range = 1.5 *. Topo.Udg.critical_range points in
  let b = Pipeline.prepare ~theta:(Float.pi /. 6.) ~range points in

  (* Before/after topology control. *)
  Viz.Svg.save
    (Viz.Render.overlay_comparison points ~base:b.Pipeline.gstar ~sub:b.Pipeline.overlay)
    (Filename.concat dir "overlay.svg");

  (* A minimum-energy route across the overlay. *)
  let sp =
    Graphs.Dijkstra.run b.Pipeline.overlay ~cost:(Graphs.Cost.energy ~kappa:2.) ~src:0
  in
  let far =
    let best = ref 1 in
    Array.iteri
      (fun v d -> if d < infinity && d > sp.Graphs.Dijkstra.dist.(!best) then best := v)
      sp.Graphs.Dijkstra.dist;
    !best
  in
  let path = Option.value (Graphs.Dijkstra.path sp far) ~default:[] in
  Viz.Svg.save
    (Viz.Render.topology points b.Pipeline.overlay ~highlight:path)
    (Filename.concat dir "route.svg");

  (* The interference region of the overlay's longest edge. *)
  let longest =
    Graph.fold_edges b.Pipeline.overlay ~init:0 ~f:(fun acc id e ->
        if e.Graph.len > Graph.length b.Pipeline.overlay acc then id else acc)
  in
  Viz.Svg.save
    (Viz.Render.interference_region ~delta:b.Pipeline.delta points b.Pipeline.overlay
       ~edge:longest)
    (Filename.concat dir "interference.svg");

  (* Figure 5: the honeycomb tiling (hexagon side (3+2Δ)·range). *)
  Viz.Svg.save
    (Viz.Render.hexagons ~side:((3. +. (2. *. b.Pipeline.delta)) *. range) points)
    (Filename.concat dir "honeycomb.svg");

  Viz.Dot.save points b.Pipeline.overlay (Filename.concat dir "overlay.dot");

  (* Convergence chart: cumulative deliveries and buffered packets over a
     scenario-1 run. *)
  let horizon = 4000 in
  let cost = Graphs.Cost.energy ~kappa:2. in
  let config =
    { Routing.Workload.horizon; attempts = 2 * horizon; slack = 12; interference_free = true }
  in
  let w =
    Routing.Workload.flows ~conflict:b.Pipeline.conflict config ~rng
      ~graph:b.Pipeline.overlay ~cost ~num_flows:2
  in
  let params =
    Routing.Balancing.Derive.theorem_3_1
      ~opt_buffer:w.Routing.Workload.opt.Routing.Workload.max_buffer
      ~opt_avg_hops:w.Routing.Workload.opt.Routing.Workload.avg_hops
      ~opt_avg_cost:(Float.max w.Routing.Workload.opt.Routing.Workload.avg_cost 1e-9)
      ~delta:w.Routing.Workload.opt.Routing.Workload.delta ~epsilon:0.5
  in
  let deliveries = ref [] and buffered = ref [] in
  let on_step ~step ~delivered ~buffered:buf =
    if step mod 50 = 0 then begin
      deliveries := (float_of_int step, float_of_int delivered) :: !deliveries;
      buffered := (float_of_int step, float_of_int buf) :: !buffered
    end
  in
  let _ =
    Routing.Engine.run_mac_given ~cooldown:horizon ~on_step ~pad:b.Pipeline.conflict
      ~graph:b.Pipeline.overlay ~cost ~params w
  in
  Viz.Chart.save ~title:"balancing convergence (scenario 1)" ~x_label:"step"
    ~y_label:"packets"
    [
      Viz.Chart.series ~color:"#1f4e8c" ~label:"delivered (cumulative)"
        (Array.of_list (List.rev !deliveries));
      Viz.Chart.series ~color:"#c0392b" ~label:"buffered (gradient inventory)"
        (Array.of_list (List.rev !buffered));
    ]
    (Filename.concat dir "convergence.svg");

  Printf.printf
    "wrote %s/{overlay,route,interference,honeycomb,convergence}.svg and overlay.dot\n\
     (route.svg highlights the min-energy path 0 -> %d: %d hops)\n"
    dir far
    (List.length path - 1)
