examples/visualize.ml: Adhoc Array Filename Float Graphs List Option Pipeline Pointset Printf Routing Sys Topo Util Viz
