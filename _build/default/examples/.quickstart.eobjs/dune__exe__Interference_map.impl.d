examples/interference_map.ml: Adhoc Float Graphs Interference List Pointset Printf Topo Util
