examples/interference_map.mli:
