examples/sensor_field.ml: Adhoc Array Float Geom Graphs Interference List Pipeline Pointset Printf Routing Topo Util
