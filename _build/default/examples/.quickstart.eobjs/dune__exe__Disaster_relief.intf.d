examples/disaster_relief.mli:
