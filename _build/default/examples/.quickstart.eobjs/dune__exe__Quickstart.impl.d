examples/quickstart.ml: Adhoc Array Float Graphs Pipeline Pointset Printf Routing Topo Util
