examples/quickstart.mli:
