examples/visualize.mli:
