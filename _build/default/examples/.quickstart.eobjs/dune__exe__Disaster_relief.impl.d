examples/disaster_relief.ml: Adhoc Array Float Graphs List Pointset Printf Routing Topo Util
