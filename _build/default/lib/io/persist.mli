(** Plain-text persistence for deployments and topologies.

    The format is line-oriented and human-diffable:
    {v
    adhoc-network 1
    nodes <n>
    <x> <y>            (n lines, %.17g so round-trips are exact)
    edges <m>
    <u> <v> <len>      (m lines)
    v}

    Lengths are stored (not recomputed) so graphs with non-geometric
    weights survive the round trip too. *)

type network = {
  points : Adhoc_geom.Point.t array;
  graph : Adhoc_graph.Graph.t;
}

val to_string : network -> string
val of_string : string -> network
(** @raise Failure on malformed input (with a line number). *)

val save : network -> string -> unit
val load : string -> network

val points_to_string : Adhoc_geom.Point.t array -> string
(** Just the header and node block ([edges 0]). *)
