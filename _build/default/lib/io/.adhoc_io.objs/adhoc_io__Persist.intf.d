lib/io/persist.mli: Adhoc_geom Adhoc_graph
