lib/io/persist.ml: Adhoc_geom Adhoc_graph Array Buffer Fun Printf String
