(** Pairwise guard-zone interference model (paper Section 2.4).

    A message exchange on edge [(x,y)] is bidirectional (data plus
    acknowledgment), so its interference region is
    [IR(x,y) = C(x, (1+Δ)·|xy|) ∪ C(y, (1+Δ)·|xy|)] — the union of two open
    disks.  Edge [e'] interferes with [e] when [IR(e')] contains an endpoint
    of [e]; the symmetric closure of this relation defines interference
    sets. *)

type t = { delta : float }
(** [delta] is the protocol guard-zone parameter Δ > 0. *)

val make : delta:float -> t

val region_radius : t -> float -> float
(** [(1+Δ) · len]. *)

val in_region :
  t ->
  points:Adhoc_geom.Point.t array ->
  x:int ->
  y:int ->
  Adhoc_geom.Point.t ->
  bool
(** Whether a point lies in the open interference region of the exchange
    between nodes [x] and [y]. *)

val one_way :
  t -> points:Adhoc_geom.Point.t array -> src:int * int -> dst:int * int -> bool
(** [one_way t ~points ~src:(a,b) ~dst:(u,v)]: the exchange [a↔b] puts an
    endpoint of [(u,v)] inside its interference region — i.e. [(a,b)]
    interferes with [(u,v)] in the directed sense. *)

val interferes :
  t -> points:Adhoc_geom.Point.t array -> int * int -> int * int -> bool
(** Symmetric interference between two node pairs (either direction of
    {!one_way}).  Two copies of the same pair always interfere. *)
