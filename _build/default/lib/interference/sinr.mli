(** The physical (SINR) interference model of Gupta & Kumar — the model the
    paper's pairwise guard-zone rule simplifies (Section 2.4, "the protocol
    model ... is a simplified version of the physical model [24]").

    A transmission from [x] to [y] succeeds when the signal-to-
    interference-plus-noise ratio at [y] clears the decoding threshold:

    [P_x / |xy|^alpha  /  (noise + Σ_{j≠x} P_j / |x_j y|^alpha)  >=  beta]

    Senders use distance-proportional power [P = margin · noise · beta ·
    d^alpha], the minimal power that would succeed on an idle channel
    scaled by [margin].  Experiment E16 measures how often edge sets that
    are non-interfering under the guard-zone model remain feasible here —
    the fidelity cost of the simplification, as a function of Δ. *)

type t = {
  alpha : float;  (** path-loss exponent (2–4) *)
  beta : float;  (** SINR decoding threshold (> 0) *)
  noise : float;  (** ambient noise floor (> 0) *)
  margin : float;  (** transmit-power headroom over the idle-channel minimum *)
}

val make : ?beta:float -> ?noise:float -> ?margin:float -> alpha:float -> unit -> t
(** Defaults: [beta = 2.], [noise = 1e-6], [margin = 2.]. *)

val tx_power : t -> float -> float
(** Power used for a hop of the given length. *)

val sinr :
  t ->
  points:Adhoc_geom.Point.t array ->
  transmissions:(int * int) array ->
  int ->
  float
(** [sinr t ~points ~transmissions i] is the SINR at the receiver of the
    [i]-th simultaneous (sender, receiver) pair. *)

val feasible :
  t ->
  points:Adhoc_geom.Point.t array ->
  transmissions:(int * int) array ->
  bool array
(** Per-transmission success under simultaneous operation. *)

val all_feasible :
  t -> points:Adhoc_geom.Point.t array -> transmissions:(int * int) array -> bool

val feasible_fraction :
  t -> points:Adhoc_geom.Point.t array -> transmissions:(int * int) array -> float
(** Fraction of the set that decodes successfully ([1.] for the empty
    set). *)
