lib/interference/sinr.mli: Adhoc_geom
