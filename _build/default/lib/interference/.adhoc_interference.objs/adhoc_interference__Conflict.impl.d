lib/interference/conflict.ml: Adhoc_geom Adhoc_graph Array Float Int List Model Set Spatial_grid
