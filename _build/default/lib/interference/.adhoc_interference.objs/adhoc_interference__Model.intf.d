lib/interference/model.mli: Adhoc_geom
