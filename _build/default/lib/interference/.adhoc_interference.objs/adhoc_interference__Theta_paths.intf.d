lib/interference/theta_paths.mli: Adhoc_topo
