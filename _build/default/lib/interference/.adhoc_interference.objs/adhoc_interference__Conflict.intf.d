lib/interference/conflict.mli: Adhoc_geom Adhoc_graph Model
