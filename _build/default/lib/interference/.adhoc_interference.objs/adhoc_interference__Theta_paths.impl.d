lib/interference/theta_paths.ml: Adhoc_geom Adhoc_graph Adhoc_topo Array Hashtbl List Option Sector
