lib/interference/model.ml: Adhoc_geom Array Point
