lib/interference/sinr.ml: Adhoc_geom Array Float Fun Point
