open Adhoc_geom

type t = {
  alpha : float;
  beta : float;
  noise : float;
  margin : float;
}

let make ?(beta = 2.) ?(noise = 1e-6) ?(margin = 2.) ~alpha () =
  if alpha < 1. then invalid_arg "Sinr.make: alpha must be at least 1";
  if beta <= 0. || noise <= 0. || margin < 1. then invalid_arg "Sinr.make: bad parameters";
  { alpha; beta; noise; margin }

let tx_power t d =
  if d <= 0. then invalid_arg "Sinr.tx_power: non-positive distance";
  t.margin *. t.noise *. t.beta *. Float.pow d t.alpha

let sinr t ~points ~transmissions i =
  let xi, yi = transmissions.(i) in
  let d = Point.dist points.(xi) points.(yi) in
  if d <= 0. then infinity
  else begin
    let signal = tx_power t d /. Float.pow d t.alpha in
    let interference = ref 0. in
    Array.iteri
      (fun j (xj, yj) ->
        if j <> i then begin
          let dj = Point.dist points.(xj) points.(yj) in
          let to_receiver = Point.dist points.(xj) points.(yi) in
          if dj > 0. && to_receiver > 0. then
            interference :=
              !interference +. (tx_power t dj /. Float.pow to_receiver t.alpha)
        end)
      transmissions;
    signal /. (t.noise +. !interference)
  end

let feasible t ~points ~transmissions =
  Array.mapi (fun i _ -> sinr t ~points ~transmissions i >= t.beta) transmissions

let all_feasible t ~points ~transmissions =
  Array.for_all Fun.id (feasible t ~points ~transmissions)

let feasible_fraction t ~points ~transmissions =
  let n = Array.length transmissions in
  if n = 0 then 1.
  else begin
    let ok = feasible t ~points ~transmissions in
    let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ok in
    float_of_int count /. float_of_int n
  end
