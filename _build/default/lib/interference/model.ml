open Adhoc_geom

type t = { delta : float }

let make ~delta =
  if delta < 0. then invalid_arg "Interference.Model.make: delta must be non-negative";
  { delta }

let region_radius t len = (1. +. t.delta) *. len

let in_region t ~points ~x ~y p =
  let r = region_radius t (Point.dist points.(x) points.(y)) in
  let r2 = r *. r in
  Point.dist2 points.(x) p < r2 || Point.dist2 points.(y) p < r2

let one_way t ~points ~src:(a, b) ~dst:(u, v) =
  in_region t ~points ~x:a ~y:b points.(u) || in_region t ~points ~x:a ~y:b points.(v)

let interferes t ~points e e' = one_way t ~points ~src:e ~dst:e' || one_way t ~points ~src:e' ~dst:e
