(** The θ-path edge-replacement of Theorem 2.8 (and Lemma 2.9).

    Every transmission-graph edge [(u,v)] is replaced by a path in the
    overlay 𝒩, computed by the paper's recursion:
    - if [(u,v) ∈ 𝒩], the path is the edge itself;
    - else if [v ∈ N(u)] (u selected v but the edge was not admitted), let
      [w] be the neighbour 𝒩 admitted into [v]'s sector containing [u];
      recurse on [(u,w)] and append the edge [(w,v)];
    - else let [w] be [u]'s phase-1 selection in the sector containing [v];
      recurse on [(u,w)] and [(w,v)].

    Lemma 2.9: within any non-interfering edge set T of the transmission
    graph, each 𝒩 edge appears in at most 6 replacement paths. *)

type t

val create : Adhoc_topo.Theta_alg.t -> t
(** Precomputes the lookup structures; paths are memoised across queries. *)

val replace : t -> int -> int -> int list
(** [replace t u v] is the node sequence [u, ..., v] of the θ-path
    replacing transmission-graph edge [(u,v)].  Requires
    [|uv| <= range] of the underlying ΘALG instance.  For θ ≤ π/3 and
    points in general position the recursion always terminates; on
    degenerate inputs (exact ties) it falls back to a shortest overlay
    path, which is still a valid replacement.
    @raise Failure only when the endpoints are disconnected in the
    overlay. *)

val replace_edges : t -> int -> int -> (int * int) list
(** The same path as consecutive node pairs (each an edge of 𝒩). *)

val max_multiplicity : t -> (int * int) list -> int
(** Given a set of transmission-graph edges (e.g. a non-interfering set T),
    the maximum number of their θ-paths that share one 𝒩 edge — the
    quantity Lemma 2.9 bounds by 6. *)
