(** Convex hulls (Andrew's monotone chain) and the set diameter. *)

val convex : Point.t array -> Point.t list
(** Hull vertices in counter-clockwise order, starting from the
    lexicographically smallest point.  Collinear boundary points are
    dropped; fewer than three distinct points return what exists. *)

val diameter : Point.t array -> float
(** Largest pairwise distance ([0.] for fewer than two points).  Computed
    on the hull, so near-linear after sorting. *)
