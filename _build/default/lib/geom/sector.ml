let two_pi = 2. *. Float.pi

let count theta =
  if theta <= 0. then invalid_arg "Sector.count: theta must be positive";
  int_of_float (Float.ceil ((two_pi /. theta) -. 1e-9))

let index ~theta ~apex p =
  let k = count theta in
  let a = Point.angle_of apex p in
  let i = int_of_float (a /. theta) in
  (* Guard against a = 2π-epsilon rounding up to k. *)
  if i >= k then k - 1 else i

let same ~theta ~apex p q = index ~theta ~apex p = index ~theta ~apex q

let angular_width ~theta i =
  let k = count theta in
  if i < 0 || i >= k then invalid_arg "Sector.angular_width: bad index";
  if i = k - 1 then two_pi -. (theta *. float_of_int (k - 1)) else theta

let central_angle ~theta i =
  let lo = theta *. float_of_int i in
  lo +. (angular_width ~theta i /. 2.)
