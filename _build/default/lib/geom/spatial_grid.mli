(** Uniform bucket grid over an indexed point set.

    Answers "which points lie within distance [r] of here" in output-sensitive
    time; this is what keeps disk-graph construction and interference-set
    computation near-linear instead of quadratic for the node counts the
    experiments sweep. *)

type t

val build : cell:float -> Point.t array -> t
(** [build ~cell points] hashes each point index into a square cell of side
    [cell].  Requires [cell > 0] and a non-empty array.  Point [i] of the
    array keeps index [i] in all query answers. *)

val cell_size : t -> float

val fold_within : t -> Point.t -> float -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_within g p r ~init ~f] folds [f] over the indices of all points at
    Euclidean distance ≤ [r] from [p] (including a point equal to [p] if
    present). *)

val iter_within : t -> Point.t -> float -> (int -> unit) -> unit

val indices_within : t -> Point.t -> float -> int list
(** Indices within distance [r], unordered. *)

val nearest_other : t -> int -> int option
(** [nearest_other g i] is the index of the nearest point distinct from
    point [i] (ties broken by lower index), or [None] when the set has a
    single point.  Searches outward ring by ring. *)
