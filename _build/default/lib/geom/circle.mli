(** Circles and open disks.

    Used for interference regions ([C(O, r)] in paper Section 2.4), the
    Gabriel-graph empty-disk test, and Delaunay circumcircle tests. *)

type t = { center : Point.t; radius : float }

val make : Point.t -> float -> t

val contains : t -> Point.t -> bool
(** Open-disk membership: strictly inside the circle. *)

val contains_closed : t -> Point.t -> bool
(** Closed-disk membership. *)

val intersects : t -> t -> bool
(** Whether the two open disks overlap. *)

val diametral : Point.t -> Point.t -> t
(** The disk with the segment [uv] as diameter (Gabriel test disk). *)

val circumcircle : Point.t -> Point.t -> Point.t -> t option
(** Circle through three points; [None] if they are (numerically)
    collinear. *)

val in_circumcircle : Point.t -> Point.t -> Point.t -> Point.t -> bool
(** [in_circumcircle a b c p] tests whether [p] lies strictly inside the
    circumcircle of triangle [abc], using the robust-ish determinant form
    (sign corrected for triangle orientation). *)
