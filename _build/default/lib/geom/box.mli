(** Axis-aligned bounding boxes.  Deployment regions for point-set
    generators and the spatial hash grid. *)

type t = { xmin : float; ymin : float; xmax : float; ymax : float }

val make : xmin:float -> ymin:float -> xmax:float -> ymax:float -> t
(** Requires [xmin <= xmax] and [ymin <= ymax]. *)

val unit_square : t
(** [[0,1] × [0,1]] — the paper's canonical deployment region. *)

val square : float -> t
(** [square s] is [[0,s] × [0,s]]. *)

val width : t -> float
val height : t -> float
val contains : t -> Point.t -> bool
val center : t -> Point.t
val diagonal : t -> float

val of_points : Point.t array -> t
(** Tight bounding box of a non-empty point array. *)

val clamp : t -> Point.t -> Point.t
(** Nearest point of the box to the argument. *)

val expand : t -> float -> t
(** Grow each side outward by the given margin. *)
