type t = { xmin : float; ymin : float; xmax : float; ymax : float }

let make ~xmin ~ymin ~xmax ~ymax =
  if xmin > xmax || ymin > ymax then invalid_arg "Box.make: inverted bounds";
  { xmin; ymin; xmax; ymax }

let unit_square = { xmin = 0.; ymin = 0.; xmax = 1.; ymax = 1. }

let square s = make ~xmin:0. ~ymin:0. ~xmax:s ~ymax:s

let width b = b.xmax -. b.xmin

let height b = b.ymax -. b.ymin

let contains b (p : Point.t) =
  p.x >= b.xmin && p.x <= b.xmax && p.y >= b.ymin && p.y <= b.ymax

let center b = Point.make ((b.xmin +. b.xmax) /. 2.) ((b.ymin +. b.ymax) /. 2.)

let diagonal b = sqrt ((width b *. width b) +. (height b *. height b))

let of_points points =
  if Array.length points = 0 then invalid_arg "Box.of_points: empty array";
  let p0 : Point.t = points.(0) in
  Array.fold_left
    (fun acc (p : Point.t) ->
      {
        xmin = Float.min acc.xmin p.x;
        ymin = Float.min acc.ymin p.y;
        xmax = Float.max acc.xmax p.x;
        ymax = Float.max acc.ymax p.y;
      })
    { xmin = p0.Point.x; ymin = p0.Point.y; xmax = p0.Point.x; ymax = p0.Point.y }
    points

let clamp b (p : Point.t) =
  Point.make (Float.max b.xmin (Float.min b.xmax p.x)) (Float.max b.ymin (Float.min b.ymax p.y))

let expand b m =
  { xmin = b.xmin -. m; ymin = b.ymin -. m; xmax = b.xmax +. m; ymax = b.ymax +. m }
