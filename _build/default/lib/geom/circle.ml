type t = { center : Point.t; radius : float }

let make center radius = { center; radius }

let contains c p = Point.dist2 c.center p < c.radius *. c.radius

let contains_closed c p = Point.dist2 c.center p <= c.radius *. c.radius

let intersects a b =
  let d = a.radius +. b.radius in
  Point.dist2 a.center b.center < d *. d

let diametral u v = { center = Point.midpoint u v; radius = Point.dist u v /. 2. }

let circumcircle a b c =
  let open Point in
  let d = 2. *. ((a.x *. (b.y -. c.y)) +. (b.x *. (c.y -. a.y)) +. (c.x *. (a.y -. b.y))) in
  if Float.abs d < 1e-12 then None
  else begin
    let a2 = norm2 a and b2 = norm2 b and c2 = norm2 c in
    let ux = ((a2 *. (b.y -. c.y)) +. (b2 *. (c.y -. a.y)) +. (c2 *. (a.y -. b.y))) /. d in
    let uy = ((a2 *. (c.x -. b.x)) +. (b2 *. (a.x -. c.x)) +. (c2 *. (b.x -. a.x))) /. d in
    let center = make ux uy in
    Some { center; radius = dist center a }
  end

let in_circumcircle a b c p =
  let open Point in
  (* Orientation of abc. *)
  let orient = cross (b -@ a) (c -@ a) in
  let ax = a.x -. p.x and ay = a.y -. p.y in
  let bx = b.x -. p.x and by = b.y -. p.y in
  let cx = c.x -. p.x and cy = c.y -. p.y in
  let det =
    ((ax *. ax) +. (ay *. ay)) *. ((bx *. cy) -. (cx *. by))
    -. (((bx *. bx) +. (by *. by)) *. ((ax *. cy) -. (cx *. ay)))
    +. (((cx *. cx) +. (cy *. cy)) *. ((ax *. by) -. (bx *. ay)))
  in
  if orient > 0. then det > 0. else det < 0.
