let convex points =
  let pts = Array.copy points in
  Array.sort Point.compare pts;
  let n = Array.length pts in
  if n <= 2 then Array.to_list pts |> List.sort_uniq Point.compare
  else begin
    let turn o a b = Segment.orientation o a b in
    let build indices =
      let stack = ref [] in
      List.iter
        (fun i ->
          let p = pts.(i) in
          let rec pop () =
            match !stack with
            | a :: b :: _ when turn b a p <= 0 ->
                stack := List.tl !stack;
                pop ()
            | _ -> ()
          in
          pop ();
          stack := p :: !stack)
        indices;
      !stack
    in
    let lower = build (List.init n Fun.id) in
    let upper = build (List.init n (fun i -> n - 1 - i)) in
    (* Each chain's endpoints duplicate the other's; drop one from each. *)
    let strip = function [] -> [] | _ :: rest -> rest in
    let hull = List.rev_append (strip lower) (List.rev (strip upper)) in
    (* The concatenation above yields CCW order starting from the smallest
       point; deduplicate degenerate inputs. *)
    match hull with
    | [] -> Array.to_list pts |> List.sort_uniq Point.compare
    | _ -> hull
  end

let diameter points =
  if Array.length points < 2 then 0.
  else begin
    let hull = Array.of_list (convex points) in
    let h = Array.length hull in
    if h = 1 then 0.
    else begin
      (* O(h²) over hull vertices is plenty: h is tiny compared to n. *)
      let best = ref 0. in
      for i = 0 to h - 1 do
        for j = i + 1 to h - 1 do
          best := Float.max !best (Point.dist2 hull.(i) hull.(j))
        done
      done;
      sqrt !best
    end
  end
