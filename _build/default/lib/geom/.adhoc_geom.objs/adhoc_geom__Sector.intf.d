lib/geom/sector.mli: Point
