lib/geom/spatial_grid.mli: Point
