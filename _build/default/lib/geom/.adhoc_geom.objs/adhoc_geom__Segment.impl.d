lib/geom/segment.ml: Float Point
