lib/geom/circle.ml: Float Point
