lib/geom/hull.ml: Array Float Fun List Point Segment
