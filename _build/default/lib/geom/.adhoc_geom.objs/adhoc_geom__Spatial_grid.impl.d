lib/geom/spatial_grid.ml: Array Box Float List Point
