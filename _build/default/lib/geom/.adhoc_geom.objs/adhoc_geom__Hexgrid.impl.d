lib/geom/hexgrid.ml: Array Float List Map Point
