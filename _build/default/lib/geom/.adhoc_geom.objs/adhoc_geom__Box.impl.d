lib/geom/box.ml: Array Float Point
