lib/geom/sector.ml: Float Point
