lib/geom/hexgrid.mli: Point
