lib/geom/box.mli: Point
