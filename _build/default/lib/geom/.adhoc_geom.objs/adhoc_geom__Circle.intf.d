lib/geom/circle.mli: Point
