(** Line-segment predicates: orientation, proper intersection, distance.
    Used by the planarity checker and the face-routing validator. *)

val orientation : Point.t -> Point.t -> Point.t -> int
(** Sign of the cross product [(b-a) × (c-a)]: [1] counter-clockwise,
    [-1] clockwise, [0] collinear (within 1e-12). *)

val on_segment : Point.t -> Point.t -> Point.t -> bool
(** [on_segment a b p]: collinear [p] lies within the closed bounding box
    of [ab]. *)

val intersects : Point.t * Point.t -> Point.t * Point.t -> bool
(** Whether the two closed segments share any point. *)

val properly_intersects : Point.t * Point.t -> Point.t * Point.t -> bool
(** Intersection at a single interior point of both segments — i.e. a true
    crossing, not a shared endpoint or a touching. *)

val distance_to_point : Point.t -> Point.t -> Point.t -> float
(** [distance_to_point a b p]: Euclidean distance from [p] to segment
    [ab]. *)
