(** Honeycomb (regular hexagonal) tiling of the plane — Figure 5 of the
    paper.

    The honeycomb algorithm of Section 3.4 partitions the plane into
    hexagons of side length [3 + 2Δ] and elects one contestant
    sender–receiver pair per hexagon.  This module maps points to hexagon
    identifiers and enumerates neighbouring hexagons.

    We use pointy-top hexagons in axial coordinates [(q, r)]: the hexagon
    with axial coordinates [(q, r)] has center
    [x = side · √3 · (q + r/2)], [y = side · 3/2 · r]. *)

type coord = { q : int; r : int }
(** Axial coordinates of a hexagon. *)

type t
(** A tiling with a fixed side length. *)

val make : side:float -> t
(** Requires [side > 0]. *)

val side : t -> float

val of_point : t -> Point.t -> coord
(** The hexagon containing the point (boundary ties broken consistently by
    cube-rounding). *)

val center : t -> coord -> Point.t

val contains : t -> coord -> Point.t -> bool
(** Exact membership test ([of_point] round-trip). *)

val neighbors : coord -> coord list
(** The six adjacent hexagons. *)

val ring : coord -> int -> coord list
(** All hexagons at hex-distance exactly [k] ([k >= 0]; the ring of radius 0
    is the singleton). *)

val disk : coord -> int -> coord list
(** All hexagons at hex-distance at most [k]. *)

val hex_distance : coord -> coord -> int
(** Graph distance on the hexagonal lattice. *)

val compare_coord : coord -> coord -> int
val equal_coord : coord -> coord -> bool

val group_points : t -> Point.t array -> (coord * int list) list
(** Buckets the indices of the point array by containing hexagon. *)
