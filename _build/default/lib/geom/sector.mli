(** Angular sectors (cones) around a node — the core geometric primitive of
    the Yao graph and of ΘALG (paper Section 2.1).

    Each node divides the full angle into [count theta] sectors of width
    [theta], sector [i] covering polar angles [[i·theta, (i+1)·theta)].
    [theta] must satisfy [0 < theta <= pi /. 3.] for the paper's stretch
    analysis, but the module itself accepts any positive width that divides
    [2π] into at least one sector. *)

val count : float -> int
(** Number of sectors, [ceil (2π / theta)].  The last sector may be narrower
    when [theta] does not divide [2π] exactly. *)

val index : theta:float -> apex:Point.t -> Point.t -> int
(** [index ~theta ~apex p] is the sector of [apex] containing [p] — the
    paper's [S(apex, p)].  Requires [p <> apex]. *)

val same : theta:float -> apex:Point.t -> Point.t -> Point.t -> bool
(** Whether two points lie in the same sector of [apex]. *)

val central_angle : theta:float -> int -> float
(** Polar angle of the bisector of sector [i]. *)

val angular_width : theta:float -> int -> float
(** Width of sector [i] (equals [theta] except possibly the last sector). *)
