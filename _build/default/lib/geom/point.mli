(** Points (and vectors) in the 2-dimensional Euclidean plane.

    The paper places ad hoc network nodes in the plane and measures
    transmission energy as [|uv|^kappa]; everything geometric in the library
    is expressed through this module. *)

type t = { x : float; y : float }

val make : float -> float -> t
val origin : t

val ( +@ ) : t -> t -> t
(** Componentwise sum (vector addition). *)

val ( -@ ) : t -> t -> t
(** Componentwise difference: [b -@ a] is the vector from [a] to [b]. *)

val scale : float -> t -> t

val dot : t -> t -> float
val cross : t -> t -> float
(** z-component of the 3-D cross product; positive when the second vector is
    counter-clockwise of the first. *)

val norm : t -> float
val norm2 : t -> float

val dist : t -> t -> float
(** Euclidean distance. *)

val dist2 : t -> t -> float
(** Squared distance (no square root; use for comparisons). *)

val energy : ?kappa:float -> t -> t -> float
(** [energy ~kappa u v = |uv|^kappa], the transmission-energy cost of the
    direct link (paper Section 2.2).  Default [kappa = 2.]. *)

val midpoint : t -> t -> t

val angle_of : t -> t -> float
(** [angle_of u v] is the polar angle of the vector from [u] to [v], in
    [[0, 2π)].  Undefined for coincident points (returns [0.]). *)

val angle_between : t -> t -> t -> float
(** [angle_between a apex b] is the (unsigned) angle ∠a·apex·b in [[0, π]]. *)

val rotate : float -> t -> t
(** Rotate a vector about the origin by the given angle (radians, CCW). *)

val lerp : t -> t -> float -> t
(** [lerp a b t] is [a + t·(b − a)]. *)

val equal : t -> t -> bool
(** Exact float equality on both coordinates. *)

val compare : t -> t -> int
(** Lexicographic order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
