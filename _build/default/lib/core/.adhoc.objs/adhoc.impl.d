lib/core/adhoc.ml: Adhoc_geom Adhoc_graph Adhoc_interference Adhoc_io Adhoc_mac Adhoc_pointset Adhoc_routing Adhoc_topo Adhoc_util Adhoc_viz Pipeline
