lib/core/pipeline.mli: Adhoc_geom Adhoc_graph Adhoc_interference Adhoc_routing Adhoc_topo Adhoc_util
