lib/core/pipeline.ml: Adhoc_geom Adhoc_graph Adhoc_interference Adhoc_mac Adhoc_routing Adhoc_topo Adhoc_util Float Option
