lib/graph/stretch.ml: Adhoc_geom Array Cost Dijkstra Float Floyd_warshall Graph List
