lib/graph/components.ml: Adhoc_util Array Graph
