lib/graph/cost.ml: Float
