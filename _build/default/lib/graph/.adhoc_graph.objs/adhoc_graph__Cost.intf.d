lib/graph/cost.mli:
