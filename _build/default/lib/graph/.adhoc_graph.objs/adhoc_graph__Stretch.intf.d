lib/graph/stretch.mli: Adhoc_geom Cost Graph
