lib/graph/dijkstra.mli: Cost Graph
