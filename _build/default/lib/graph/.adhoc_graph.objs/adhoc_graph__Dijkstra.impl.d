lib/graph/dijkstra.ml: Adhoc_util Array Graph
