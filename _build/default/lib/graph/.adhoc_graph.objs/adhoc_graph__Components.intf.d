lib/graph/components.mli: Graph
