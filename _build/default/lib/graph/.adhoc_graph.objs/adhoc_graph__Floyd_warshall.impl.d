lib/graph/floyd_warshall.ml: Array Graph
