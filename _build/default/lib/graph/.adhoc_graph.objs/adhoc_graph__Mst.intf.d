lib/graph/mst.mli: Adhoc_geom Graph
