lib/graph/graph.ml: Adhoc_geom Array Float List Option Set
