lib/graph/mst.ml: Adhoc_geom Adhoc_util Array Float Graph List
