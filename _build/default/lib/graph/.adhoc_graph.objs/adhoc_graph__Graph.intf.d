lib/graph/graph.mli: Adhoc_geom
