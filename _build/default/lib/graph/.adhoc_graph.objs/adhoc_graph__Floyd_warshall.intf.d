lib/graph/floyd_warshall.mli: Cost Graph
