(** All-pairs shortest paths in O(n³) — the small-graph oracle the test
    suite checks Dijkstra against. *)

val run : Graph.t -> cost:Cost.t -> float array array
(** [run g ~cost] returns the matrix of shortest-path costs;
    [infinity] marks disconnected pairs, [0.] the diagonal. *)
