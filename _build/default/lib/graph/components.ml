let labels g =
  let n = Graph.n g in
  let uf = Adhoc_util.Union_find.create n in
  ignore
    (Graph.fold_edges g ~init:() ~f:(fun () _ e ->
         ignore (Adhoc_util.Union_find.union uf e.Graph.u e.Graph.v)));
  (* Canonicalize to the smallest index per component. *)
  let smallest = Array.make n max_int in
  for v = 0 to n - 1 do
    let r = Adhoc_util.Union_find.find uf v in
    if v < smallest.(r) then smallest.(r) <- v
  done;
  Array.init n (fun v -> smallest.(Adhoc_util.Union_find.find uf v))

let count g =
  let n = Graph.n g in
  let uf = Adhoc_util.Union_find.create n in
  ignore
    (Graph.fold_edges g ~init:() ~f:(fun () _ e ->
         ignore (Adhoc_util.Union_find.union uf e.Graph.u e.Graph.v)));
  Adhoc_util.Union_find.count uf

let is_connected g = Graph.n g <= 1 || count g = 1
