let run g ~cost =
  let n = Graph.n g in
  let d = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.
  done;
  ignore
    (Graph.fold_edges g ~init:() ~f:(fun () _ e ->
         let w = cost e.Graph.len in
         if w < d.(e.Graph.u).(e.Graph.v) then begin
           d.(e.Graph.u).(e.Graph.v) <- w;
           d.(e.Graph.v).(e.Graph.u) <- w
         end));
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let through = d.(i).(k) +. d.(k).(j) in
        if through < d.(i).(j) then d.(i).(j) <- through
      done
    done
  done;
  d
