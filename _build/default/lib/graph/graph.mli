(** Undirected weighted graphs over integer-indexed nodes.

    Node identity is an index into a caller-owned array (usually of
    {!Adhoc_geom.Point.t} positions).  Edges carry a length — for geometric
    graphs, the Euclidean distance between endpoints — and every edge has a
    stable integer id usable as an array index by the interference and
    routing layers. *)

type edge = private { u : int; v : int; len : float }
(** Undirected edge with [u < v]. *)

type t
(** Immutable graph. *)

module Builder : sig
  type graph := t
  type t

  val create : int -> t
  (** [create n] prepares a builder for a graph on nodes [0 .. n-1]. *)

  val add_edge : t -> int -> int -> float -> unit
  (** Adds an undirected edge with the given length.  Duplicate pairs and
      self-loops are ignored.  Lengths must be non-negative. *)

  val mem : t -> int -> int -> bool

  val build : t -> graph
  (** Freezes the builder.  Edge ids are assigned in insertion order. *)
end

val of_edges : n:int -> (int * int * float) list -> t

val geometric : Adhoc_geom.Point.t array -> (int * int) list -> t
(** Builds a graph whose edge lengths are the Euclidean distances between
    the given endpoint positions. *)

val n : t -> int
val num_edges : t -> int

val edge : t -> int -> edge
(** Edge by id; ids are [0 .. num_edges - 1]. *)

val edges : t -> edge array
(** The underlying edge array (do not mutate). *)

val endpoints : t -> int -> int * int

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g e u] is the endpoint of edge [e] that is not [u]. *)

val length : t -> int -> float

val mem_edge : t -> int -> int -> bool
val find_edge : t -> int -> int -> int option
(** Edge id connecting the two nodes, if present. *)

val degree : t -> int -> int
val max_degree : t -> int

val neighbors : t -> int -> (int * int) array
(** [(neighbor, edge_id)] pairs (do not mutate). *)

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g u f] calls [f v edge_id] for each neighbour [v]. *)

val fold_edges : t -> init:'a -> f:('a -> int -> edge -> 'a) -> 'a

val total_length : t -> float
val total_energy : ?kappa:float -> t -> float
(** Sum over edges of [len^kappa] (default [kappa = 2.]). *)

val is_subgraph : t -> t -> bool
(** [is_subgraph h g]: every edge of [h] joins the same node pair as some
    edge of [g] (lengths not compared). *)

val union : t -> t -> t
(** Union of edge sets (same node count required); lengths from the first
    graph win on duplicates. *)
