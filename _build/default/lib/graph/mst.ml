let kruskal n (weighted_edges : (int * int * float) array) =
  Array.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) weighted_edges;
  let uf = Adhoc_util.Union_find.create n in
  let b = Graph.Builder.create n in
  Array.iter
    (fun (u, v, len) -> if Adhoc_util.Union_find.union uf u v then Graph.Builder.add_edge b u v len)
    weighted_edges;
  Graph.Builder.build b

let of_graph g =
  let edges =
    Graph.fold_edges g ~init:[] ~f:(fun acc _ e -> (e.Graph.u, e.Graph.v, e.Graph.len) :: acc)
  in
  kruskal (Graph.n g) (Array.of_list edges)

(* The Euclidean MST is a subgraph of the Delaunay triangulation, but the
   graph library cannot depend on the topology library; callers with a
   Delaunay edge set in hand should use [of_candidate_edges]. *)
let of_candidate_edges points pairs =
  let n = Array.length points in
  let edges =
    List.rev_map (fun (u, v) -> (u, v, Adhoc_geom.Point.dist points.(u) points.(v))) pairs
  in
  kruskal n (Array.of_list edges)

let of_points points =
  let n = Array.length points in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, Adhoc_geom.Point.dist points.(u) points.(v)) :: !edges
    done
  done;
  kruskal n (Array.of_list !edges)
