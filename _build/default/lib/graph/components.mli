(** Connected components. *)

val labels : Graph.t -> int array
(** Component label per node; labels are the smallest node index of the
    component. *)

val count : Graph.t -> int

val is_connected : Graph.t -> bool
(** A graph on zero or one nodes is connected. *)
