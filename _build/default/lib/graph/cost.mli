(** Edge-cost models for shortest paths.

    The paper uses three cost measures on the same geometric graph: hop
    count, Euclidean length (distance-stretch, Section 2.3), and
    transmission energy [len^kappa] (energy-stretch, Section 2.2). *)

type t = float -> float
(** A cost model maps an edge length to a cost. *)

val hops : t
(** Every edge costs 1. *)

val length : t
(** Cost = Euclidean length. *)

val energy : kappa:float -> t
(** Cost = [len^kappa].  The paper requires [kappa >= 2]. *)
