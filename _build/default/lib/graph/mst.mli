(** Euclidean minimum spanning tree (Kruskal), a classical baseline for the
    topology-comparison experiment and the bottom of the proximity-graph
    chain [MST ⊆ RNG ⊆ Gabriel ⊆ Delaunay]. *)

val of_graph : Graph.t -> Graph.t
(** Minimum spanning forest of the input (spanning tree per component),
    minimizing total edge length. *)

val of_points : Adhoc_geom.Point.t array -> Graph.t
(** MST of the complete Euclidean graph on the points.  O(n²) edges — for
    large sets prefer {!of_candidate_edges} with a Delaunay edge set
    (which provably contains the MST); see
    {!Adhoc_topo.Euclidean_mst.build}. *)

val of_candidate_edges : Adhoc_geom.Point.t array -> (int * int) list -> Graph.t
(** Minimum spanning forest restricted to the given candidate pairs, with
    Euclidean lengths.  Equals the true Euclidean MST whenever the
    candidates contain one (e.g. Delaunay edges). *)
