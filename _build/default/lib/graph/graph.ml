type edge = { u : int; v : int; len : float }

type t = {
  n : int;
  edge_array : edge array;
  adj : (int * int) array array;
}

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

module Builder = struct
  type t = {
    bn : int;
    mutable bedges : edge list;  (* reverse insertion order *)
    mutable count : int;
    mutable seen : Pair_set.t;
  }

  let create n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative node count";
    { bn = n; bedges = []; count = 0; seen = Pair_set.empty }

  let key u v = if u < v then (u, v) else (v, u)

  let mem b u v = Pair_set.mem (key u v) b.seen

  let add_edge b u v len =
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg "Graph.Builder.add_edge: node out of range";
    if len < 0. then invalid_arg "Graph.Builder.add_edge: negative length";
    if u <> v && not (mem b u v) then begin
      let u, v = key u v in
      b.bedges <- { u; v; len } :: b.bedges;
      b.count <- b.count + 1;
      b.seen <- Pair_set.add (u, v) b.seen
    end

  let build b =
    let edge_array = Array.make b.count { u = 0; v = 0; len = 0. } in
    List.iteri (fun i e -> edge_array.(b.count - 1 - i) <- e) b.bedges;
    let deg = Array.make b.bn 0 in
    Array.iter
      (fun e ->
        deg.(e.u) <- deg.(e.u) + 1;
        deg.(e.v) <- deg.(e.v) + 1)
      edge_array;
    let adj = Array.init b.bn (fun i -> Array.make deg.(i) (0, 0)) in
    let fill = Array.make b.bn 0 in
    Array.iteri
      (fun id e ->
        adj.(e.u).(fill.(e.u)) <- (e.v, id);
        fill.(e.u) <- fill.(e.u) + 1;
        adj.(e.v).(fill.(e.v)) <- (e.u, id);
        fill.(e.v) <- fill.(e.v) + 1)
      edge_array;
    { n = b.bn; edge_array; adj }
end

let of_edges ~n edges =
  let b = Builder.create n in
  List.iter (fun (u, v, len) -> Builder.add_edge b u v len) edges;
  Builder.build b

let geometric points pairs =
  let n = Array.length points in
  let b = Builder.create n in
  List.iter
    (fun (u, v) -> Builder.add_edge b u v (Adhoc_geom.Point.dist points.(u) points.(v)))
    pairs;
  Builder.build b

let n g = g.n

let num_edges g = Array.length g.edge_array

let edge g id = g.edge_array.(id)

let edges g = g.edge_array

let endpoints g id =
  let e = g.edge_array.(id) in
  (e.u, e.v)

let other_endpoint g id u =
  let e = g.edge_array.(id) in
  if e.u = u then e.v
  else if e.v = u then e.u
  else invalid_arg "Graph.other_endpoint: node not on edge"

let length g id = g.edge_array.(id).len

let neighbors g u = g.adj.(u)

let find_edge g u v =
  let adj = g.adj.(u) in
  let rec loop i =
    if i >= Array.length adj then None
    else begin
      let w, id = adj.(i) in
      if w = v then Some id else loop (i + 1)
    end
  in
  loop 0

let mem_edge g u v = Option.is_some (find_edge g u v)

let degree g u = Array.length g.adj.(u)

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    best := max !best (degree g u)
  done;
  !best

let iter_neighbors g u f = Array.iter (fun (v, id) -> f v id) g.adj.(u)

let fold_edges g ~init ~f =
  let acc = ref init in
  Array.iteri (fun id e -> acc := f !acc id e) g.edge_array;
  !acc

let total_length g = fold_edges g ~init:0. ~f:(fun acc _ e -> acc +. e.len)

let total_energy ?(kappa = 2.) g =
  fold_edges g ~init:0. ~f:(fun acc _ e -> acc +. Float.pow e.len kappa)

let is_subgraph h g =
  n h = n g && fold_edges h ~init:true ~f:(fun acc _ e -> acc && mem_edge g e.u e.v)

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: node count mismatch";
  let builder = Builder.create a.n in
  Array.iter (fun e -> Builder.add_edge builder e.u e.v e.len) a.edge_array;
  Array.iter (fun e -> Builder.add_edge builder e.u e.v e.len) b.edge_array;
  Builder.build builder
