(** Breadth-first search: hop distances and reachability. *)

val hops : Graph.t -> src:int -> int array
(** Hop count from the source; [max_int] for unreachable nodes. *)

val reachable : Graph.t -> src:int -> bool array

val diameter_hops : Graph.t -> int
(** Maximum finite hop-eccentricity over all sources (graph must be
    non-empty); returns [max_int] if the graph is disconnected. *)
