let hops g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v _ ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v q
        end)
  done;
  dist

let reachable g ~src = Array.map (fun d -> d <> max_int) (hops g ~src)

let diameter_hops g =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Bfs.diameter_hops: empty graph";
  let worst = ref 0 in
  (try
     for src = 0 to n - 1 do
       let d = hops g ~src in
       Array.iter
         (fun x ->
           if x = max_int then begin
             worst := max_int;
             raise Exit
           end
           else worst := max !worst x)
         d
     done
   with Exit -> ());
  !worst
