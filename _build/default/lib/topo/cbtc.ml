open Adhoc_geom
module Graph = Adhoc_graph.Graph

type t = {
  alpha : float;
  radii : float array;
  graph : Graph.t;
  asymmetric : Graph.t;
}

(* Every cone of angle alpha apexed at u contains one of the given angles
   iff the largest angular gap between consecutive neighbours is < alpha. *)
let gaps_covered ~alpha angles =
  match angles with
  | [] -> false
  | [ _ ] -> alpha > 2. *. Float.pi -. 1e-12
  | _ ->
      let sorted = List.sort Float.compare angles in
      let first = List.hd sorted in
      let rec max_gap prev acc = function
        | [] -> Float.max acc (first +. (2. *. Float.pi) -. prev)
        | a :: rest -> max_gap a (Float.max acc (a -. prev)) rest
      in
      max_gap first 0. (List.tl sorted) < alpha

let coverage_ok ~alpha points u r =
  let angles = ref [] in
  Array.iteri
    (fun v p ->
      if v <> u && Point.dist points.(u) p <= r then
        angles := Point.angle_of points.(u) p :: !angles)
    points;
  gaps_covered ~alpha !angles

let build ~alpha ~range points =
  if alpha <= 0. || alpha > 2. *. Float.pi then invalid_arg "Cbtc.build: bad alpha";
  if range < 0. then invalid_arg "Cbtc.build: negative range";
  let n = Array.length points in
  (* Per node: grow the radius through the sorted neighbour distances until
     the cone condition holds; fall back to maximum power. *)
  let radii =
    Array.init n (fun u ->
        let dists =
          Array.to_list points
          |> List.filteri (fun v _ -> v <> u)
          |> List.map (Point.dist points.(u))
          |> List.filter (fun d -> d <= range)
          |> List.sort Float.compare
        in
        let rec grow = function
          | [] -> range
          | d :: rest -> if coverage_ok ~alpha points u d then d else grow rest
        in
        grow dists)
  in
  let sym = Graph.Builder.create n in
  let asym = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Point.dist points.(u) points.(v) in
      if d <= Float.min radii.(u) radii.(v) then Graph.Builder.add_edge sym u v d;
      if d <= Float.max radii.(u) radii.(v) then Graph.Builder.add_edge asym u v d
    done
  done;
  { alpha; radii; graph = Graph.Builder.build sym; asymmetric = Graph.Builder.build asym }
