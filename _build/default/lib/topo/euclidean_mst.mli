(** Fast Euclidean MST: Kruskal over Delaunay edges.

    The Euclidean minimum spanning tree is always a subgraph of the
    Delaunay triangulation, so restricting Kruskal to the O(n) Delaunay
    edges gives the exact MST without materialising the O(n²) complete
    graph — what lets the large-n experiments (and
    {!Udg.critical_range}) scale. *)

val build : Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t

val longest_edge : Adhoc_geom.Point.t array -> float
(** Length of the MST's longest edge — the connectivity threshold of the
    disk graph ([0.] for fewer than two points). *)
