(** Delaunay triangulation (Bowyer–Watson incremental construction) and the
    restricted Delaunay graph — spanner baselines from the paper's related
    work (Section 1.2).

    The Delaunay triangulation is a spanner but may contain edges longer
    than the transmission range; the *restricted* Delaunay graph keeps only
    edges of length ≤ range and is still a spanner (Gao et al. 2001), though
    with worst-case Ω(n) degree. *)

val triangles : Adhoc_geom.Point.t array -> (int * int * int) list
(** Triangles of the Delaunay triangulation, vertex indices in ascending
    order.  Exact duplicates among the input points are ignored (the first
    occurrence wins). *)

val build : ?range:float -> Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t
(** Edge set of the triangulation; [range] gives the restricted Delaunay
    graph. *)
