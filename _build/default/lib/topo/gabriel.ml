open Adhoc_geom
module Graph = Adhoc_graph.Graph

let build ?(range = infinity) points =
  let n = Array.length points in
  let b = Graph.Builder.create n in
  if n > 1 then begin
    let box = Box.of_points points in
    let span = Float.max (Box.width box) (Box.height box) in
    let cell = if span > 0. then span /. sqrt (float_of_int n) else 1. in
    let grid = Spatial_grid.build ~cell points in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let d = Point.dist points.(u) points.(v) in
        if d <= range then begin
          let disk = Circle.diametral points.(u) points.(v) in
          let witness =
            Spatial_grid.fold_within grid disk.Circle.center disk.Circle.radius ~init:false
              ~f:(fun found w -> found || (w <> u && w <> v && Circle.contains disk points.(w)))
          in
          if not witness then Graph.Builder.add_edge b u v d
        end
      done
    done
  end;
  Graph.Builder.build b
