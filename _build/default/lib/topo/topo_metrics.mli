(** Summary metrics for comparing topologies (experiment E11). *)

type t = {
  name : string;
  nodes : int;
  edges : int;
  max_degree : int;
  avg_degree : float;
  connected : bool;
  total_length : float;
  total_energy : float;  (** κ = 2 *)
  energy_stretch : float;  (** vs. the base graph, κ = 2 *)
  distance_stretch : float;  (** vs. the base graph *)
}

val measure :
  name:string -> base:Adhoc_graph.Graph.t -> Adhoc_graph.Graph.t -> t
(** Stretch fields compare the topology against [base] (typically the
    transmission graph). *)

val to_row : t -> string list
(** Cells in the order of {!header}. *)

val header : (string * Adhoc_util.Table.align) list
