open Adhoc_geom
module Graph = Adhoc_graph.Graph

type stats = {
  position_msgs : int;
  neighborhood_msgs : int;
  connection_msgs : int;
}

(* Mailboxes hold (sender, payload) pairs; each round is: everyone sends,
   then everyone processes its mailbox.  Nodes only ever use information
   they received in a message — the point of the exercise. *)

type position_msg = { sender : int; pos : Point.t }

let run ~theta ~range points =
  if theta <= 0. then invalid_arg "Theta_protocol.run: bad theta";
  let n = Array.length points in
  let sectors = Sector.count theta in

  (* Round 1: position broadcasts at maximum power (range D). *)
  let position_boxes = Array.make n [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if v <> u && Point.dist points.(u) points.(v) <= range then
        position_boxes.(v) <- { sender = u; pos = points.(u) } :: position_boxes.(v)
    done
  done;
  let position_msgs = n in

  (* Each node u computes N(u) from its received positions only. *)
  let closer_from_inbox my_pos a apos b bpos =
    let da = Point.dist2 my_pos apos and db = Point.dist2 my_pos bpos in
    da < db || (da = db && a < b)
  in
  let selections = Array.make n [] in
  for u = 0 to n - 1 do
    let best = Array.make sectors (-1) in
    let best_pos = Array.make sectors Point.origin in
    List.iter
      (fun { sender; pos } ->
        let s = Sector.index ~theta ~apex:points.(u) pos in
        if best.(s) = -1 || closer_from_inbox points.(u) sender pos best.(s) best_pos.(s) then begin
          best.(s) <- sender;
          best_pos.(s) <- pos
        end)
      position_boxes.(u);
    let acc = ref [] in
    for s = sectors - 1 downto 0 do
      if best.(s) >= 0 then acc := best.(s) :: !acc
    done;
    selections.(u) <- !acc
  done;

  (* Round 2: u tells each v ∈ N(u) that u selected it. *)
  let selector_boxes = Array.make n [] in
  let neighborhood_msgs = ref 0 in
  for u = 0 to n - 1 do
    List.iter
      (fun v ->
        incr neighborhood_msgs;
        selector_boxes.(v) <- u :: selector_boxes.(v))
      selections.(u)
  done;

  (* Round 3: u admits the nearest selector per sector and sends it a
     connection message. *)
  let connection_boxes = Array.make n [] in
  let connection_msgs = ref 0 in
  for u = 0 to n - 1 do
    let best = Array.make sectors (-1) in
    List.iter
      (fun v ->
        let s = Sector.index ~theta ~apex:points.(u) points.(v) in
        if best.(s) = -1 || Yao.closer points u v best.(s) then best.(s) <- v)
      selector_boxes.(u);
    for s = 0 to sectors - 1 do
      if best.(s) >= 0 then begin
        incr connection_msgs;
        connection_boxes.(best.(s)) <- u :: connection_boxes.(best.(s))
      end
    done
  done;

  (* An edge exists for every pair that exchanged a connection message. *)
  let b = Graph.Builder.create n in
  for v = 0 to n - 1 do
    List.iter
      (fun u -> Graph.Builder.add_edge b u v (Point.dist points.(u) points.(v)))
      connection_boxes.(v)
  done;
  ( Graph.Builder.build b,
    {
      position_msgs;
      neighborhood_msgs = !neighborhood_msgs;
      connection_msgs = !connection_msgs;
    } )
