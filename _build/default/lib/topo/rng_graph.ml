open Adhoc_geom
module Graph = Adhoc_graph.Graph

let build ?(range = infinity) points =
  let n = Array.length points in
  let b = Graph.Builder.create n in
  if n > 1 then begin
    let box = Box.of_points points in
    let span = Float.max (Box.width box) (Box.height box) in
    let cell = if span > 0. then span /. sqrt (float_of_int n) else 1. in
    let grid = Spatial_grid.build ~cell points in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let d = Point.dist points.(u) points.(v) in
        if d <= range then begin
          (* The lune is contained in the disk of radius d around either
             endpoint; scan candidates near u. *)
          let witness =
            Spatial_grid.fold_within grid points.(u) d ~init:false ~f:(fun found w ->
                found
                || w <> u
                   && w <> v
                   && Point.dist points.(u) points.(w) < d
                   && Point.dist points.(v) points.(w) < d)
          in
          if not witness then Graph.Builder.add_edge b u v d
        end
      done
    done
  end;
  Graph.Builder.build b
