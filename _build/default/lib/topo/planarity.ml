open Adhoc_geom
module Graph = Adhoc_graph.Graph

let crossings points g =
  let m = Graph.num_edges g in
  let acc = ref [] in
  for e1 = 0 to m - 1 do
    let a, b = Graph.endpoints g e1 in
    for e2 = e1 + 1 to m - 1 do
      let c, d = Graph.endpoints g e2 in
      if a <> c && a <> d && b <> c && b <> d then begin
        if
          Segment.properly_intersects (points.(a), points.(b)) (points.(c), points.(d))
        then acc := (e1, e2) :: !acc
      end
    done
  done;
  List.rev !acc

let is_planar_embedding points g = crossings points g = []
