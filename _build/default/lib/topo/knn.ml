open Adhoc_geom
module Graph = Adhoc_graph.Graph

let nearest_k ~range points u k =
  let n = Array.length points in
  (* Collect candidates within range, then select the k closest by a partial
     sort — n is small enough that a full sort is fine. *)
  let candidates = ref [] in
  for v = 0 to n - 1 do
    if v <> u then begin
      let d = Point.dist points.(u) points.(v) in
      if d <= range then candidates := (d, v) :: !candidates
    end
  done;
  let sorted = List.sort compare !candidates in
  List.filteri (fun i _ -> i < k) sorted |> List.map snd

let build ?(range = infinity) ~k points =
  if k < 1 then invalid_arg "Knn.build: k must be at least 1";
  let n = Array.length points in
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    List.iter
      (fun v -> Graph.Builder.add_edge b u v (Point.dist points.(u) points.(v)))
      (nearest_k ~range points u k)
  done;
  Graph.Builder.build b

let min_connecting_k ?(range = infinity) ?k_max points =
  let n = Array.length points in
  let k_max = Option.value k_max ~default:(max 1 (n - 1)) in
  let rec search k =
    if k > k_max then None
    else if Adhoc_graph.Components.is_connected (build ~range ~k points) then Some k
    else search (k + 1)
  in
  if n <= 1 then Some 1 else search 1
