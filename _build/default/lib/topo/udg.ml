open Adhoc_geom
module Graph = Adhoc_graph.Graph

let build ~range points =
  if range < 0. then invalid_arg "Udg.build: negative range";
  let n = Array.length points in
  let b = Graph.Builder.create n in
  if n > 1 && range > 0. then begin
    let grid = Spatial_grid.build ~cell:range points in
    (* Query slightly wide (the grid pre-filters on squared distance, which
       can round an exactly-range-length edge away), then test exactly. *)
    let query = range *. (1. +. 1e-9) in
    for u = 0 to n - 1 do
      Spatial_grid.iter_within grid points.(u) query (fun v ->
          if v > u && Point.dist points.(u) points.(v) <= range then
            Graph.Builder.add_edge b u v (Point.dist points.(u) points.(v)))
    done
  end;
  Graph.Builder.build b

let critical_range points = Euclidean_mst.longest_edge points
