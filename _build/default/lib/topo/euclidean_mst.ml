module Graph = Adhoc_graph.Graph

let build points =
  let n = Array.length points in
  if n < 3 then Adhoc_graph.Mst.of_points points
  else begin
    let pairs =
      List.concat_map
        (fun (a, b, c) -> [ (a, b); (b, c); (a, c) ])
        (Delaunay.triangles points)
    in
    (* Duplicate points never appear in the triangulation: fall back to the
       exact construction when the candidate set cannot span. *)
    let mst = Adhoc_graph.Mst.of_candidate_edges points pairs in
    if Graph.num_edges mst = n - 1 then mst else Adhoc_graph.Mst.of_points points
  end

let longest_edge points =
  if Array.length points < 2 then 0.
  else Graph.fold_edges (build points) ~init:0. ~f:(fun acc _ e -> Float.max acc e.Graph.len)
