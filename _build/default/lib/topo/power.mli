(** Per-node power assignment induced by a topology.

    With the paper's energy model, a node participating in topology [g]
    must be able to reach its farthest neighbour: its assigned power is
    [(longest incident edge)^kappa].  These are the classical
    topology-control objectives (max power = battery bottleneck, total
    power = network energy budget, interference radius). *)

type t = {
  per_node : float array;  (** assigned power per node *)
  max_power : float;  (** bottleneck node *)
  total_power : float;
  mean_power : float;
  unused : int;  (** isolated nodes (assigned zero power) *)
}

val assign : ?kappa:float -> Adhoc_graph.Graph.t -> t
(** Default [kappa = 2.]. *)

val max_power_ratio : kappa:float -> sub:Adhoc_graph.Graph.t -> base:Adhoc_graph.Graph.t -> float
(** Ratio of the subgraph's bottleneck power to the base graph's — how much
    the sparser topology lets the worst-off node throttle down.  [1.] when
    the base assigns zero power. *)
