(** Geometric planarity: whether any two edges of an embedded graph
    properly cross.

    Planarity is what face routing (GPSR recovery) needs from its
    underlying subgraph; Gabriel graphs, relative neighborhood graphs and
    Delaunay triangulations are planar, while Yao-type graphs are not in
    general — tested properties of the respective constructions. *)

val crossings :
  Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t -> (int * int) list
(** All pairs of edge ids that properly cross (interior intersection
    point).  Edges sharing an endpoint never count.  O(m²) with a length
    prefilter. *)

val is_planar_embedding : Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t -> bool
(** No proper crossings. *)
