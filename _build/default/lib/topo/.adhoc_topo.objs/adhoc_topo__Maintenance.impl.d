lib/topo/maintenance.ml: Adhoc_geom Adhoc_graph Array Hashtbl List Point Sector Theta_alg Yao
