lib/topo/udg.ml: Adhoc_geom Adhoc_graph Array Euclidean_mst Point Spatial_grid
