lib/topo/power.ml: Adhoc_graph Array Float
