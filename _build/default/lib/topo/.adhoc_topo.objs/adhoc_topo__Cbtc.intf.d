lib/topo/cbtc.mli: Adhoc_geom Adhoc_graph
