lib/topo/rng_graph.mli: Adhoc_geom Adhoc_graph
