lib/topo/theta_graph.ml: Adhoc_geom Adhoc_graph Array Point Sector
