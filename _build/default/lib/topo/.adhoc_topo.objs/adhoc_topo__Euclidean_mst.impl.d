lib/topo/euclidean_mst.ml: Adhoc_graph Array Delaunay Float List
