lib/topo/delaunay.mli: Adhoc_geom Adhoc_graph
