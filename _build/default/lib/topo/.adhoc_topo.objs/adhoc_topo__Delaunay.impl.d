lib/topo/delaunay.ml: Adhoc_geom Adhoc_graph Array Box Circle Float Fun Hashtbl List Option Point
