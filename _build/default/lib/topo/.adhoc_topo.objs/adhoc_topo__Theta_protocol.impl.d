lib/topo/theta_protocol.ml: Adhoc_geom Adhoc_graph Array List Point Sector Yao
