lib/topo/gabriel.ml: Adhoc_geom Adhoc_graph Array Box Circle Float Point Spatial_grid
