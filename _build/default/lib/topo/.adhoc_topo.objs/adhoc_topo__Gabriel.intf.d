lib/topo/gabriel.mli: Adhoc_geom Adhoc_graph
