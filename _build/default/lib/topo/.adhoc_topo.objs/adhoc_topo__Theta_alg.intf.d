lib/topo/theta_alg.mli: Adhoc_geom Adhoc_graph
