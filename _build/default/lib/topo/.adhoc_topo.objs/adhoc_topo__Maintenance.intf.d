lib/topo/maintenance.mli: Adhoc_geom Adhoc_graph
