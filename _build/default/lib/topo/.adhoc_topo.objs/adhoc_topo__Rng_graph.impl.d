lib/topo/rng_graph.ml: Adhoc_geom Adhoc_graph Array Box Float Point Spatial_grid
