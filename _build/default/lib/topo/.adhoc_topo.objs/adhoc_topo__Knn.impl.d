lib/topo/knn.ml: Adhoc_geom Adhoc_graph Array List Option Point
