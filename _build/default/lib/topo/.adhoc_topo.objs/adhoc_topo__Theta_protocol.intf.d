lib/topo/theta_protocol.mli: Adhoc_geom Adhoc_graph
