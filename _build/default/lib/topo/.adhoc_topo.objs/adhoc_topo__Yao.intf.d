lib/topo/yao.mli: Adhoc_geom Adhoc_graph
