lib/topo/beta_skeleton.mli: Adhoc_geom Adhoc_graph
