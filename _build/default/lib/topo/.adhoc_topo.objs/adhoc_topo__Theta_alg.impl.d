lib/topo/theta_alg.ml: Adhoc_geom Adhoc_graph Array Float List Point Sector Yao
