lib/topo/planarity.ml: Adhoc_geom Adhoc_graph Array List Segment
