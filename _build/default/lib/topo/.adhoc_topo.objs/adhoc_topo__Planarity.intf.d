lib/topo/planarity.mli: Adhoc_geom Adhoc_graph
