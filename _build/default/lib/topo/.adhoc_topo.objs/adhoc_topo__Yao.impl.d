lib/topo/yao.ml: Adhoc_geom Adhoc_graph Array Float List Point Sector Spatial_grid
