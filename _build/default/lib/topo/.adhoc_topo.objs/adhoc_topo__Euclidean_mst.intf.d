lib/topo/euclidean_mst.mli: Adhoc_geom Adhoc_graph
