lib/topo/theta_graph.mli: Adhoc_geom Adhoc_graph
