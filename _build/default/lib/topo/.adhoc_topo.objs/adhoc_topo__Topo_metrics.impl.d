lib/topo/topo_metrics.ml: Adhoc_graph Adhoc_util Printf
