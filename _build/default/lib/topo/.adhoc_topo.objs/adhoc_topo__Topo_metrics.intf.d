lib/topo/topo_metrics.mli: Adhoc_graph Adhoc_util
