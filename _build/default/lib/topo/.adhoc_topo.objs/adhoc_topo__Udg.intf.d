lib/topo/udg.mli: Adhoc_geom Adhoc_graph
