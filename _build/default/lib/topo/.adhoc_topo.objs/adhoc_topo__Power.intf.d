lib/topo/power.mli: Adhoc_graph
