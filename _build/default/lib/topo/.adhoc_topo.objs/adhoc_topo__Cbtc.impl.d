lib/topo/cbtc.ml: Adhoc_geom Adhoc_graph Array Float List Point
