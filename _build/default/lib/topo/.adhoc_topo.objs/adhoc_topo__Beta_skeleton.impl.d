lib/topo/beta_skeleton.ml: Adhoc_geom Adhoc_graph Array Float Point
