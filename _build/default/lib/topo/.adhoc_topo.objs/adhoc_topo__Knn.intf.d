lib/topo/knn.mli: Adhoc_geom Adhoc_graph
