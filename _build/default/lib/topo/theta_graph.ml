open Adhoc_geom
module Graph = Adhoc_graph.Graph

let build ~theta ~range points =
  if theta <= 0. then invalid_arg "Theta_graph.build: theta must be positive";
  if range < 0. then invalid_arg "Theta_graph.build: negative range";
  let n = Array.length points in
  let sectors = Sector.count theta in
  let b = Graph.Builder.create n in
  let best = Array.make sectors (-1) in
  let best_proj = Array.make sectors infinity in
  for u = 0 to n - 1 do
    Array.fill best 0 sectors (-1);
    Array.fill best_proj 0 sectors infinity;
    for v = 0 to n - 1 do
      if v <> u then begin
        let d = Point.dist points.(u) points.(v) in
        if d <= range then begin
          let s = Sector.index ~theta ~apex:points.(u) points.(v) in
          (* Projection of uv onto the sector bisector. *)
          let bis = Sector.central_angle ~theta s in
          let dirx = cos bis and diry = sin bis in
          let w = points.(v) in
          let u' = points.(u) in
          let proj = ((w.Point.x -. u'.Point.x) *. dirx) +. ((w.Point.y -. u'.Point.y) *. diry) in
          if proj < best_proj.(s) || (proj = best_proj.(s) && (best.(s) = -1 || v < best.(s)))
          then begin
            best_proj.(s) <- proj;
            best.(s) <- v
          end
        end
      end
    done;
    for s = 0 to sectors - 1 do
      if best.(s) >= 0 then
        Graph.Builder.add_edge b u best.(s) (Point.dist points.(u) points.(best.(s)))
    done
  done;
  Graph.Builder.build b
