(** Incremental maintenance of the ΘALG overlay under node motion.

    The paper's headline is that ΘALG "establishes and *maintains*" the
    topology with local control: because phase-1 selections of a node
    depend only on nodes within transmission range, and phase-2 admissions
    only on selectors within range, a position change can only affect
    nodes within [2 × range] of the old and new positions.  This module
    re-runs the algorithm on exactly that affected set and splices the
    result into the previous overlay.

    The incremental result is identical to a full rebuild (tested); the
    point is the accounting: [last_affected] exposes how many nodes were
    re-processed, which stays flat as the network grows — experiment
    E17. *)

type t

val create : theta:float -> range:float -> Adhoc_geom.Point.t array -> t

val overlay : t -> Adhoc_graph.Graph.t
val points : t -> Adhoc_geom.Point.t array
(** Current positions (a fresh copy). *)

val move : t -> int -> Adhoc_geom.Point.t -> unit
(** Move one node and repair the overlay locally. *)

val last_affected : t -> int
(** Number of nodes whose selections or admissions were recomputed by the
    most recent {!move} ([0] before any move). *)
