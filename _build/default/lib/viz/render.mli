(** Topology renderings: the figures a reader would want next to the
    experiment tables. *)

val topology :
  ?width:int ->
  ?node_radius:float ->
  ?edge_color:string ->
  ?highlight:int list ->
  Adhoc_geom.Point.t array ->
  Adhoc_graph.Graph.t ->
  Svg.t
(** Nodes and edges; [highlight] draws the given node path in red on top.
    [node_radius] is in world units (default 0.6% of the bounding-box
    diagonal). *)

val overlay_comparison :
  ?width:int ->
  Adhoc_geom.Point.t array ->
  base:Adhoc_graph.Graph.t ->
  sub:Adhoc_graph.Graph.t ->
  Svg.t
(** The base graph in light grey under the subgraph in black — the classic
    before/after topology-control picture. *)

val interference_region :
  ?width:int ->
  delta:float ->
  Adhoc_geom.Point.t array ->
  Adhoc_graph.Graph.t ->
  edge:int ->
  Svg.t
(** The topology with one edge's guard-zone interference region (two discs
    of radius [(1+Δ)·len]) shaded, and the edges it interferes with dashed
    red — Figure-style illustration of Section 2.4. *)

val hexagons :
  ?width:int ->
  side:float ->
  Adhoc_geom.Point.t array ->
  Svg.t
(** The honeycomb tiling of Figure 5 over a node deployment. *)
