open Adhoc_geom
module Graph = Adhoc_graph.Graph

let default_radius points =
  if Array.length points < 2 then 0.01
  else 0.006 *. Box.diagonal (Box.of_points points)

let world_of points =
  if Array.length points = 0 then Box.unit_square else Box.of_points points

let draw_edges svg ?(color = "#555555") ?(width = 1.) ?opacity points g =
  ignore
    (Graph.fold_edges g ~init:() ~f:(fun () _ e ->
         Svg.line svg ~stroke:color ~stroke_width:width ?opacity points.(e.Graph.u)
           points.(e.Graph.v)))

let draw_nodes svg ?(fill = "#1f4e8c") points r =
  Array.iter (fun p -> Svg.circle svg ~fill p r) points;
  ignore fill

let topology ?(width = 800) ?node_radius ?(edge_color = "#555555") ?(highlight = []) points g =
  let svg = Svg.create ~width ~world:(world_of points) () in
  let r = Option.value node_radius ~default:(default_radius points) in
  draw_edges svg ~color:edge_color points g;
  (match highlight with
  | [] | [ _ ] -> ()
  | path ->
      Svg.polyline svg ~stroke:"#c0392b" ~stroke_width:2.5
        (List.map (fun i -> points.(i)) path));
  Array.iter (fun p -> Svg.circle svg ~fill:"#1f4e8c" p r) points;
  List.iter (fun i -> Svg.circle svg ~fill:"#c0392b" points.(i) (1.4 *. r)) highlight;
  svg

let overlay_comparison ?(width = 800) points ~base ~sub =
  let svg = Svg.create ~width ~world:(world_of points) () in
  let r = default_radius points in
  draw_edges svg ~color:"#cccccc" ~width:0.8 points base;
  draw_edges svg ~color:"#222222" ~width:1.6 points sub;
  draw_nodes svg points r;
  svg

let interference_region ?(width = 800) ~delta points g ~edge =
  let svg = Svg.create ~width ~world:(world_of points) () in
  let r = default_radius points in
  let model = Adhoc_interference.Model.make ~delta in
  let u, v = Graph.endpoints g edge in
  let radius = Adhoc_interference.Model.region_radius model (Graph.length g edge) in
  Svg.circle svg ~fill:"#f5c6aa" ~opacity:0.5 points.(u) radius;
  Svg.circle svg ~fill:"#f5c6aa" ~opacity:0.5 points.(v) radius;
  ignore
    (Graph.fold_edges g ~init:() ~f:(fun () id e ->
         if id = edge then ()
         else begin
           let interferes =
             Adhoc_interference.Model.interferes model ~points (u, v) (e.Graph.u, e.Graph.v)
           in
           if interferes then
             Svg.line svg ~stroke:"#c0392b" ~stroke_width:1.4 ~dashed:true points.(e.Graph.u)
               points.(e.Graph.v)
           else
             Svg.line svg ~stroke:"#999999" ~stroke_width:0.8 points.(e.Graph.u)
               points.(e.Graph.v)
         end));
  Svg.line svg ~stroke:"#1f4e8c" ~stroke_width:3. points.(u) points.(v);
  draw_nodes svg points r;
  svg

let hexagons ?(width = 800) ~side points =
  let world = world_of points in
  let svg = Svg.create ~width ~world () in
  let grid = Hexgrid.make ~side in
  let r = default_radius points in
  (* Hexagons covering the world box. *)
  let corners =
    [
      Point.make world.Box.xmin world.Box.ymin;
      Point.make world.Box.xmax world.Box.ymin;
      Point.make world.Box.xmin world.Box.ymax;
      Point.make world.Box.xmax world.Box.ymax;
    ]
  in
  let coords = List.map (Hexgrid.of_point grid) corners in
  let qs = List.map (fun (c : Hexgrid.coord) -> c.Hexgrid.q) coords in
  let rs = List.map (fun (c : Hexgrid.coord) -> c.Hexgrid.r) coords in
  let qmin = List.fold_left min max_int qs - 1 and qmax = List.fold_left max min_int qs + 1 in
  let rmin = List.fold_left min max_int rs - 1 and rmax = List.fold_left max min_int rs + 1 in
  for q = qmin to qmax do
    for rr = rmin to rmax do
      let center = Hexgrid.center grid { Hexgrid.q; r = rr } in
      let vertices =
        List.init 6 (fun k ->
            let a = (Float.pi /. 6.) +. (float_of_int k *. Float.pi /. 3.) in
            Point.(center +@ make (side *. cos a) (side *. sin a)))
      in
      Svg.polygon svg ~stroke:"#b58900" ~stroke_width:1. ~opacity:0.7 vertices
    done
  done;
  draw_nodes svg points r;
  svg
