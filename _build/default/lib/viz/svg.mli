(** Minimal SVG document builder — enough to draw topologies, routes and
    interference regions without external dependencies.

    Coordinates are in user units; the viewBox is set from the document's
    world box and the y-axis is flipped so that geometry reads naturally
    (y grows upward, as in the plane). *)

type t

val create : ?margin:float -> width:int -> world:Adhoc_geom.Box.t -> unit -> t
(** [width] is the pixel width; height follows the world's aspect ratio.
    [margin] is the world-units padding (default 5% of the world's
    diagonal). *)

val circle :
  t -> ?fill:string -> ?stroke:string -> ?stroke_width:float -> ?opacity:float ->
  Adhoc_geom.Point.t -> float -> unit

val line :
  t -> ?stroke:string -> ?stroke_width:float -> ?opacity:float ->
  ?dashed:bool -> Adhoc_geom.Point.t -> Adhoc_geom.Point.t -> unit

val polyline :
  t -> ?stroke:string -> ?stroke_width:float -> ?opacity:float ->
  Adhoc_geom.Point.t list -> unit

val polygon :
  t -> ?fill:string -> ?stroke:string -> ?stroke_width:float -> ?opacity:float ->
  Adhoc_geom.Point.t list -> unit

val text : t -> ?size:float -> ?fill:string -> Adhoc_geom.Point.t -> string -> unit

val to_string : t -> string
(** The complete SVG document. *)

val save : t -> string -> unit
(** Write the document to a file. *)
