lib/viz/dot.mli: Adhoc_geom Adhoc_graph
