lib/viz/dot.ml: Adhoc_geom Adhoc_graph Array Buffer Fun Printf
