lib/viz/render.ml: Adhoc_geom Adhoc_graph Adhoc_interference Array Box Float Hexgrid List Option Point Svg
