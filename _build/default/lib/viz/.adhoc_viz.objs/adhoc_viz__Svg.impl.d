lib/viz/svg.ml: Adhoc_geom Box Buffer Fun List Option Point Printf String
