lib/viz/chart.ml: Adhoc_geom Array Box Float List Point Printf Svg
