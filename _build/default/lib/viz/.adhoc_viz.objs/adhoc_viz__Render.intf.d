lib/viz/render.mli: Adhoc_geom Adhoc_graph Svg
