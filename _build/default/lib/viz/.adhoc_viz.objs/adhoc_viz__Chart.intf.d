lib/viz/chart.mli: Svg
