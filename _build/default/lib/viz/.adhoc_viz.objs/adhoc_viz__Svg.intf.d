lib/viz/svg.mli: Adhoc_geom
