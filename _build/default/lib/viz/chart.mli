(** Minimal SVG line charts — convergence and time-series figures for the
    experiments (deliveries over time, buffer occupancy, queue growth). *)

type series = {
  label : string;
  color : string;
  points : (float * float) array;  (** (x, y), in data coordinates *)
}

val series : ?color:string -> label:string -> (float * float) array -> series
(** Colours cycle through a small palette when omitted. *)

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  Svg.t
(** Axes are scaled to the data's bounding box (with y forced to include 0
    when all values are positive), ticks at 5 divisions, legend in the top
    left.  Raises [Invalid_argument] when no series has points. *)

val save :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string ->
  unit
