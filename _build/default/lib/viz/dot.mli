(** Graphviz DOT export with pinned positions (render with [neato -n]). *)

val of_graph :
  ?name:string ->
  ?scale:float ->
  Adhoc_geom.Point.t array ->
  Adhoc_graph.Graph.t ->
  string
(** [scale] multiplies world coordinates into DOT position units
    (default 10.). *)

val save :
  ?name:string ->
  ?scale:float ->
  Adhoc_geom.Point.t array ->
  Adhoc_graph.Graph.t ->
  string ->
  unit
