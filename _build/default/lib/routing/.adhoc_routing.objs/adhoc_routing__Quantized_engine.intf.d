lib/routing/quantized_engine.mli: Adhoc_graph Adhoc_interference Balancing Engine Workload
