lib/routing/dynamic_engine.ml: Adhoc_graph Adhoc_interference Adhoc_topo Array Balancing Buffers Engine Float List Option
