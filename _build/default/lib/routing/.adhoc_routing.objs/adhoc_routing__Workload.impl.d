lib/routing/workload.ml: Adhoc_graph Adhoc_interference Adhoc_util Array Hashtbl List
