lib/routing/geo.ml: Adhoc_geom Adhoc_graph Adhoc_util Array Float List Point
