lib/routing/tracked_engine.mli: Adhoc_graph Adhoc_interference Balancing Engine Packet Workload
