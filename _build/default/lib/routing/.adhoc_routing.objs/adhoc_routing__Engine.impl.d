lib/routing/engine.ml: Adhoc_graph Adhoc_interference Adhoc_mac Array Balancing Buffers Float Hashtbl List Option Workload
