lib/routing/dynamic_engine.mli: Adhoc_geom Adhoc_graph Adhoc_interference Balancing Engine
