lib/routing/packet.ml:
