lib/routing/buffers.ml: Array Hashtbl
