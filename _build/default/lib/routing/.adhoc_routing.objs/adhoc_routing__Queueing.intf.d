lib/routing/queueing.mli: Adhoc_graph Workload
