lib/routing/tracked_engine.ml: Adhoc_graph Adhoc_interference Adhoc_util Array Balancing Buffers Engine Hashtbl List Option Packet Queue Workload
