lib/routing/balancing.ml: Buffers Float
