lib/routing/buffers.mli:
