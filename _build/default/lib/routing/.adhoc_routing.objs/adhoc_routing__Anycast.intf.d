lib/routing/anycast.mli: Adhoc_graph Adhoc_interference Balancing
