lib/routing/balancing.mli: Buffers
