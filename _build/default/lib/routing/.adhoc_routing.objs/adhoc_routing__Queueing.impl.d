lib/routing/queueing.ml: Adhoc_graph Adhoc_util Array Hashtbl List Workload
