lib/routing/packet.mli:
