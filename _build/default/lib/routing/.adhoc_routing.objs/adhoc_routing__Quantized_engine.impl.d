lib/routing/quantized_engine.ml: Adhoc_graph Adhoc_interference Array Balancing Buffers Engine Float List Option Workload
