lib/routing/anycast.ml: Adhoc_graph Adhoc_interference Array Balancing Float Fun List Option
