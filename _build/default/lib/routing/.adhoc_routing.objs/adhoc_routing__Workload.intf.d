lib/routing/workload.mli: Adhoc_graph Adhoc_interference Adhoc_util
