lib/routing/geo.mli: Adhoc_geom Adhoc_graph Adhoc_util
