lib/routing/engine.mli: Adhoc_graph Adhoc_interference Adhoc_mac Balancing Workload
