type t = {
  n : int;
  h : int array array;  (* h.(v).(d) *)
  nonzero : (int, unit) Hashtbl.t array;  (* destinations with h > 0, per node *)
  mutable total : int;
}

let create n =
  {
    n;
    h = Array.make_matrix n n 0;
    nonzero = Array.init n (fun _ -> Hashtbl.create 8);
    total = 0;
  }

let nodes t = t.n

let height t v d = t.h.(v).(d)

let add t v d =
  if t.h.(v).(d) = 0 then Hashtbl.replace t.nonzero.(v) d ();
  t.h.(v).(d) <- t.h.(v).(d) + 1;
  t.total <- t.total + 1

let inject t ~cap src dest =
  if src = dest then true
  else if t.h.(src).(dest) >= cap then false
  else begin
    add t src dest;
    true
  end

let force_add t v d = if v <> d then add t v d

let remove t v d =
  if t.h.(v).(d) <= 0 then invalid_arg "Buffers.remove: empty buffer";
  t.h.(v).(d) <- t.h.(v).(d) - 1;
  t.total <- t.total - 1;
  if t.h.(v).(d) = 0 then Hashtbl.remove t.nonzero.(v) d

let iter_nonzero t v f = Hashtbl.iter (fun d () -> f d t.h.(v).(d)) t.nonzero.(v)

let fold_nonzero t v ~init ~f =
  Hashtbl.fold (fun d () acc -> f acc d t.h.(v).(d)) t.nonzero.(v) init

let total t = t.total

let max_height t =
  let best = ref 0 in
  Array.iter (fun row -> Array.iter (fun x -> if x > !best then best := x) row) t.h;
  !best
