(** Packet identities for the tracked engine.

    The balancing algorithm itself never inspects identity (buffer heights
    suffice), but end-to-end evaluation wants per-packet latency, hop count
    and energy; the tracked engine carries these records alongside the
    height matrix. *)

type t = {
  id : int;
  src : int;
  dst : int;
  injected_at : int;
  mutable delivered_at : int;  (** -1 while in flight *)
  mutable hops : int;
  mutable energy : float;  (** cost spent on this packet's transmissions *)
}

val make : id:int -> src:int -> dst:int -> now:int -> t

val delivered : t -> bool

val latency : t -> int
(** Steps from injection to delivery.
    @raise Invalid_argument if not yet delivered. *)
