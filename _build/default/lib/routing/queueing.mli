(** Classical adversarial-queueing disciplines — the related-work thread
    the paper builds on (Borodin et al.; Andrews et al., Section 1.2).

    In the adversarial queueing model the adversary reveals a *path* for
    every injected packet; the algorithm only chooses, per edge and step,
    which waiting packet crosses.  Our certified workloads carry exactly
    those paths, so the classical disciplines run on the same inputs as the
    (T, γ)-balancing algorithm — experiment E15 compares them. *)

type discipline =
  | Fifo  (** first-in first-out by arrival time at the queue *)
  | Lifo  (** last-in first-out *)
  | Furthest_to_go  (** most remaining hops first (universally stable) *)
  | Nearest_to_go  (** fewest remaining hops first (unstable in general) *)
  | Longest_in_system  (** earliest injection time first (universally stable) *)

val discipline_name : discipline -> string

type stats = {
  steps : int;
  injected : int;
  delivered : int;
  total_cost : float;  (** cost of all transmissions under the given model *)
  max_queue : int;  (** largest per-(node, edge) queue observed *)
  avg_latency : float;  (** mean injection→delivery time ([0.] if none) *)
}

val run :
  ?cooldown:int ->
  ?use_activations:bool ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  discipline ->
  Workload.t ->
  stats
(** Packets follow their certified paths; per step each usable edge moves
    at most one packet per direction, chosen by the discipline.
    [use_activations] (default [false]) restricts each step's usable edges
    to the workload's activation set — the Scenario-1 regime; otherwise
    every edge is usable every step, the classical adversarial-queueing
    assumption. *)
