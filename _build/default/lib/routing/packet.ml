type t = {
  id : int;
  src : int;
  dst : int;
  injected_at : int;
  mutable delivered_at : int;
  mutable hops : int;
  mutable energy : float;
}

let make ~id ~src ~dst ~now =
  { id; src; dst; injected_at = now; delivered_at = -1; hops = 0; energy = 0. }

let delivered p = p.delivered_at >= 0

let latency p =
  if p.delivered_at < 0 then invalid_arg "Packet.latency: packet not delivered";
  p.delivered_at - p.injected_at
