(** Certified adversarial workloads.

    The paper's adversary (Section 3.1) may inject arbitrarily many packets
    and change the network arbitrarily, but OPT's throughput is defined over
    packets for which conflict-free schedules exist.  Computing OPT for an
    arbitrary sequence is intractable, so the generator works backwards: it
    first *constructs* an explicit set of schedules — shortest paths whose
    edge uses are reserved in non-conflicting time slots — and then emits
    exactly those injections (and, for the MAC-given scenario, exactly the
    activations the schedules use).  By construction a best possible
    algorithm delivers every injected packet at the recorded cost, so
    competitive ratios measured against {!opt_stats} are conservative. *)

type opt_stats = {
  deliveries : int;  (** packets with certified schedules = OPT throughput *)
  total_cost : float;
  avg_cost : float;  (** C̄: [total_cost / deliveries] *)
  avg_hops : float;  (** L̄ *)
  max_buffer : int;  (** B: max per-(node, destination) occupancy of the certified schedules *)
  delta : int;  (** max number of activated edges sharing a node in one step *)
}

type t = {
  horizon : int;
  injections : (int * int) list array;  (** per step: (src, dest), at end of step *)
  paths : (int * int * int list) list array;
      (** per step: (src, dest, certified edge path) — the schedule routes,
          for path-based routers and queueing disciplines *)
  activations : int list array;  (** per step: active edge ids (scenario 1) *)
  opt : opt_stats;
}

type config = {
  horizon : int;
  attempts : int;  (** packets the adversary tries to certify *)
  slack : int;  (** extra steps a schedule may stretch beyond its hop count *)
  interference_free : bool;
      (** enforce that each step's reserved edges are pairwise
          non-interfering (Scenario 1 semantics); requires [conflict] *)
}

val generate :
  ?conflict:Adhoc_interference.Conflict.t ->
  config ->
  rng:Adhoc_util.Prng.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  t
(** Random source/destination pairs, shortest paths under [cost], greedy
    earliest-slot reservation.  Attempts whose schedule cannot be packed
    within their window are discarded (not injected), keeping the workload
    certified. *)

val flows :
  ?conflict:Adhoc_interference.Conflict.t ->
  ?max_hops:int ->
  config ->
  rng:Adhoc_util.Prng.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  num_flows:int ->
  t
(** Concentrated traffic: [num_flows] random source/destination pairs are
    drawn once and every attempt uses one of them.  Sustained flows are the
    regime of the paper's asymptotic guarantees — the balancing gradient
    only forms when buffers accumulate packets per destination.
    [max_hops] rejects pairs further apart than that many hops (up to 200
    redraws; the last draw is kept regardless), modelling an adversary that
    concentrates on short routes. *)

val single_destination :
  ?conflict:Adhoc_interference.Conflict.t ->
  ?sources:int array ->
  config ->
  rng:Adhoc_util.Prng.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  sink:int ->
  t
(** Same generator with all destinations forced to [sink] — the
    many-to-one (data-collection) pattern.  [sources] restricts the origin
    nodes (default: all nodes). *)

val bursty :
  ?conflict:Adhoc_interference.Conflict.t ->
  config ->
  rng:Adhoc_util.Prng.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  num_flows:int ->
  period:int ->
  burst_width:int ->
  t
(** Bursty adversary: flow traffic whose injection times fall only inside
    the first [burst_width] steps of each [period]-step window — the
    windowed injection pattern of adversarial queueing theory.  Still
    certified: every injected packet has a reserved schedule. *)

val path_flows :
  config ->
  rng:Adhoc_util.Prng.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  num_flows:int ->
  rate:float ->
  t
(** UNcertified path workload for the queueing-discipline experiments:
    [num_flows] fixed shortest paths, each injecting a packet independently
    with probability [rate] per step.  Unlike the certified generators this
    can (deliberately) exceed network capacity; [opt.deliveries] records the
    injection count, and competitive ratios against it are meaningless. *)
