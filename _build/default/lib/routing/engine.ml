module Graph = Adhoc_graph.Graph
module Conflict = Adhoc_interference.Conflict
module Mac = Adhoc_mac.Mac

type stats = {
  steps : int;
  injected : int;
  dropped : int;
  delivered : int;
  sends : int;
  failed_sends : int;
  total_cost : float;
  peak_height : int;
  remaining : int;
}

let throughput_ratio s (opt : Workload.opt_stats) =
  if opt.Workload.deliveries = 0 then 1.
  else float_of_int s.delivered /. float_of_int opt.Workload.deliveries

let cost_ratio s (opt : Workload.opt_stats) =
  if s.delivered = 0 || opt.Workload.avg_cost <= 0. then 1.
  else s.total_cost /. float_of_int s.delivered /. opt.Workload.avg_cost

type counters = {
  mutable injected : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable sends : int;
  mutable failed_sends : int;
  mutable total_cost : float;
  mutable peak_height : int;
}

let fresh_counters () =
  {
    injected = 0;
    dropped = 0;
    delivered = 0;
    sends = 0;
    failed_sends = 0;
    total_cost = 0.;
    peak_height = 0;
  }

let do_injections buffers (params : Balancing.params) counters injections =
  List.iter
    (fun (src, dst) ->
      if Buffers.inject buffers ~cap:params.Balancing.capacity src dst then begin
        counters.injected <- counters.injected + 1;
        (* A packet injected at its destination is absorbed immediately. *)
        if src = dst then counters.delivered <- counters.delivered + 1
        else counters.peak_height <- max counters.peak_height (Buffers.height buffers src dst)
      end
      else counters.dropped <- counters.dropped + 1)
    injections

(* Decisions are taken on start-of-step heights (the paper's rule is
   simultaneous across edges); application checks that the source buffer
   still holds a packet, since several edges may have decided to drain the
   same buffer.  An unavailable send does not transmit and costs nothing. *)
let attempt_send buffers counters ~edge_cost decision_opt ~collided =
  match decision_opt with
  | None -> ()
  | Some d ->
      if Buffers.height buffers d.Balancing.src d.Balancing.dest > 0 then begin
        counters.sends <- counters.sends + 1;
        counters.total_cost <- counters.total_cost +. edge_cost;
        if collided then counters.failed_sends <- counters.failed_sends + 1
        else begin
          match Balancing.apply buffers d with
          | `Delivered -> counters.delivered <- counters.delivered + 1
          | `Moved ->
              counters.peak_height <-
                max counters.peak_height
                  (Buffers.height buffers d.Balancing.dst d.Balancing.dest)
        end
      end

(* When several simultaneous decisions contend for the same source buffer,
   application order decides who wins.  Deliveries first, then larger gains:
   both strictly decrease the system's potential, and this prevents a lone
   packet from being bounced backwards past a pending delivery. *)
let application_order (a : Balancing.decision) (b : Balancing.decision) =
  let delivers d = d.Balancing.dst = d.Balancing.dest in
  match (delivers a, delivers b) with
  | true, false -> -1
  | false, true -> 1
  | _ -> Float.compare b.Balancing.gain a.Balancing.gain

let finish ~steps buffers counters =
  {
    steps;
    injected = counters.injected;
    dropped = counters.dropped;
    delivered = counters.delivered;
    sends = counters.sends;
    failed_sends = counters.failed_sends;
    total_cost = counters.total_cost;
    peak_height = counters.peak_height;
    remaining = Buffers.total buffers;
  }

let run_mac_given ?(cooldown = 0) ?on_step ?cost_at ?pad ~graph ~cost ~params (w : Workload.t) =
  let n = Graph.n graph in
  let buffers = Buffers.create n in
  let counters = fresh_counters () in
  let edge_cost = Array.init (Graph.num_edges graph) (fun e -> cost (Graph.length graph e)) in
  let coloring =
    match pad with
    | Some c -> Some (Conflict.greedy_coloring c)
    | None -> None
  in
  let steps = w.Workload.horizon + cooldown in
  for t = 0 to steps - 1 do
    let base = if t < w.Workload.horizon then w.Workload.activations.(t) else [] in
    let active =
      match (pad, coloring) with
      | Some c, Some (colors, k) when k > 0 ->
          let cls = t mod k in
          let extra =
            Graph.fold_edges graph ~init:[] ~f:(fun acc id _ ->
                if
                  colors.(id) = cls
                  && (not (List.mem id base))
                  && List.for_all (fun e -> not (Conflict.interfere c id e)) base
                then id :: acc
                else acc)
          in
          base @ List.rev extra
      | _ -> base
    in
    (* Decide every send on the step's starting heights, then apply. *)
    let step_cost e =
      match cost_at with Some f -> f ~step:t ~edge:e | None -> edge_cost.(e)
    in
    let decisions =
      List.concat_map
        (fun e ->
          let u, v = Graph.endpoints graph e in
          let c = step_cost e in
          List.filter_map
            (fun d -> Option.map (fun d -> (e, d)) d)
            [
              Balancing.best_toward buffers params ~cost:c ~src:u ~dst:v;
              Balancing.best_toward buffers params ~cost:c ~src:v ~dst:u;
            ])
        active
    in
    let decisions =
      List.stable_sort (fun (_, a) (_, b) -> application_order a b) decisions
    in
    List.iter
      (fun (e, d) ->
        attempt_send buffers counters ~edge_cost:(step_cost e) (Some d) ~collided:false)
      decisions;
    if t < w.Workload.horizon then do_injections buffers params counters w.Workload.injections.(t);
    match on_step with
    | Some f -> f ~step:t ~delivered:counters.delivered ~buffered:(Buffers.total buffers)
    | None -> ()
  done;
  finish ~steps buffers counters

let run_with_mac ?(cooldown = 0) ?on_step ?collisions ~graph ~cost ~params ~mac (w : Workload.t) =
  let n = Graph.n graph in
  let buffers = Buffers.create n in
  let counters = fresh_counters () in
  let m = Graph.num_edges graph in
  let edge_cost = Array.init m (fun e -> cost (Graph.length graph e)) in
  let steps = w.Workload.horizon + cooldown in
  for t = 0 to steps - 1 do
    (* Requests: the best prospective send per edge, decided on the step's
       starting heights. *)
    let decisions = Hashtbl.create 64 in
    let requests =
      Graph.fold_edges graph ~init:[] ~f:(fun acc e edge ->
          match
            Balancing.best_either buffers params ~cost:edge_cost.(e) ~u:edge.Graph.u
              ~v:edge.Graph.v
          with
          | None -> acc
          | Some d ->
              Hashtbl.replace decisions e d;
              { Mac.edge = e; sender = d.Balancing.src; benefit = d.Balancing.gain } :: acc)
    in
    let granted = mac.Mac.select ~step:t (List.rev requests) in
    let collided r =
      match collisions with
      | None -> false
      | Some c ->
          List.exists
            (fun (r' : Mac.request) ->
              r'.Mac.edge <> r.Mac.edge && Conflict.interfere c r.Mac.edge r'.Mac.edge)
            granted
    in
    let granted =
      List.stable_sort
        (fun (a : Mac.request) (b : Mac.request) ->
          match (Hashtbl.find_opt decisions a.Mac.edge, Hashtbl.find_opt decisions b.Mac.edge) with
          | Some da, Some db -> application_order da db
          | _ -> 0)
        granted
    in
    List.iter
      (fun (r : Mac.request) ->
        let e = r.Mac.edge in
        attempt_send buffers counters ~edge_cost:edge_cost.(e)
          (Hashtbl.find_opt decisions e)
          ~collided:(collided r))
      granted;
    if t < w.Workload.horizon then do_injections buffers params counters w.Workload.injections.(t);
    match on_step with
    | Some f -> f ~step:t ~delivered:counters.delivered ~buffered:(Buffers.total buffers)
    | None -> ()
  done;
  finish ~steps buffers counters
