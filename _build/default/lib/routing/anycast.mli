(** Cost-aware anycast balancing.

    The paper notes (Section 1.2) that Awerbuch, Brinkmann & Scheideler
    extended balancing to "arbitrary anycasting situations", and that this
    paper's contribution is incorporating edge costs; this module combines
    the two: packets are addressed to *groups* of destinations and absorbed
    at whichever member they reach first, with the (T, γ) rule applied to
    per-(node, group) buffer heights.

    Buffer heights of every group member are pinned to zero, so the
    gradient naturally pulls each packet toward its cheapest-to-reach
    member — no explicit nearest-sink computation anywhere. *)

type group = int array
(** A non-empty set of destination nodes. *)

type stats = {
  steps : int;
  injected : int;
  dropped : int;
  delivered : int;
  sends : int;
  total_cost : float;
  remaining : int;
  per_member : (int * int) list;  (** (member node, deliveries absorbed there) *)
}

val run :
  ?cooldown:int ->
  ?pad:Adhoc_interference.Conflict.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  params:Balancing.params ->
  groups:group array ->
  injections:(int -> (int * int) list) ->
  horizon:int ->
  unit ->
  stats
(** [injections t] yields [(src, group_index)] packets injected at step [t]
    ([t < horizon]).  Edges are activated by colour classes of [pad] when
    given, otherwise every edge is active every step.  Absorption happens
    the moment a packet is moved onto any member of its group. *)
