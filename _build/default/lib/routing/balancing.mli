(** The (T, γ)-balancing rule (paper Section 3.2).

    Across an edge [(v, w)] of cost [c], the algorithm finds the destination
    [d] maximizing [h_{v,d} − h_{w,d} − γ·c] and sends one packet of [d]
    from [v] to [w] when that gain exceeds the threshold [T].  Theorem 3.1
    makes it [(1−ε)]-throughput-competitive with buffer factor [O(L̄/ε)] and
    cost factor [O(1/ε)] once [T >= B + 2(δ−1)] and
    [γ >= (T+B+δ)·L̄/C̄]. *)

type params = {
  threshold : float;  (** T *)
  gamma : float;  (** γ, the cost weighting *)
  capacity : int;  (** H, the buffer size of the online algorithm *)
}

val params :
  threshold:float -> gamma:float -> capacity:int -> params
(** Validates [threshold >= 0.], [gamma >= 0.], [capacity >= 1]. *)

type decision = {
  src : int;
  dst : int;
  dest : int;  (** destination whose packet moves *)
  gain : float;  (** [h_src − h_dst − γ·cost], guaranteed > threshold *)
}

val best_toward : Buffers.t -> params -> cost:float -> src:int -> dst:int -> decision option
(** Best destination for the directed send [src → dst], or [None] when no
    destination's gain exceeds the threshold.  O(#non-empty buffers at
    [src]).  Ties broken by the lower destination index. *)

val best_either : Buffers.t -> params -> cost:float -> u:int -> v:int -> decision option
(** The better of the two directions (ties prefer [u → v]). *)

val apply : Buffers.t -> decision -> [ `Delivered | `Moved ]
(** Executes the move: removes the packet at [src]; at [dst] it is either
    absorbed (when [dst = dest]) or enqueued without a cap — the threshold
    precondition keeps receiver buffers below senders', so in-transit
    packets are never dropped (paper, Section 3.2). *)

(** Deriving the paper's parameter settings from an optimal schedule's
    characteristics. *)
module Derive : sig
  val theorem_3_1 :
    opt_buffer:int -> opt_avg_hops:float -> opt_avg_cost:float -> delta:int -> epsilon:float -> params
  (** Scenario 1 (MAC given): [T = B + 2(δ−1)], [γ = (T+B+δ)·L̄/C̄],
      [H = B·(1 + 2(1+(T+δ)/B)·L̄/ε)], rounded up. *)

  val theorem_3_3 :
    opt_buffer:int -> opt_avg_hops:float -> opt_avg_cost:float -> epsilon:float -> params
  (** Scenario 2 (MAC not given, δ = 1): [T = 2B + 1],
      [γ = (T+B)·L̄/C̄], [H = B·(1 + 2(1+T/B)·L̄/ε)]. *)
end
