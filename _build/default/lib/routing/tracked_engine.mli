(** Packet-tracking variant of {!Engine}: identical balancing decisions,
    but buffers are FIFO queues of {!Packet.t}, so the run reports
    per-packet latency, hop and energy distributions on top of the
    aggregate counters.

    The height matrix driving the (T, γ) rule always equals the queue
    lengths (tested); results therefore match {!Engine} delivery-for-
    delivery under the same inputs. *)

type stats = {
  base : Engine.stats;
  latency_mean : float;
  latency_median : float;
  latency_p95 : float;
  hops_mean : float;
  energy_per_delivered : float;  (** mean energy charged to delivered packets *)
  packets : Packet.t list;  (** every admitted packet, delivered or not *)
}

val run_mac_given :
  ?cooldown:int ->
  ?pad:Adhoc_interference.Conflict.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  params:Balancing.params ->
  Workload.t ->
  stats
(** Scenario 1 with packet tracking (see {!Engine.run_mac_given}).
    Latency fields are [0.] when nothing was delivered. *)
