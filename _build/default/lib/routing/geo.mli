(** Geographic (position-based) routing — the related-work baseline the
    paper cites (Karp & Kung's GPSR [30]): stateless forwarding using only
    node positions.

    - {!greedy}: always forward to the neighbour strictly closest to the
      destination; fails at a local minimum (a void).
    - {!greedy_face}: GPSR/GFG — greedy with recovery, switching to
      right-hand-rule face traversal on a *planar* subgraph at voids until
      a node closer than the entry point is found.  Delivery is guaranteed
      on connected planar graphs (e.g. the Gabriel graph), at the price of
      longer detours — which experiment E14 compares against the balancing
      stack's paths. *)

type route = {
  nodes : int list;  (** visited node sequence, source to destination *)
  hops : int;
  length : float;  (** total Euclidean length *)
  energy : float;  (** Σ len², the κ = 2 transmission energy *)
  recovery_hops : int;  (** hops spent in face-traversal mode (0 for pure greedy) *)
}

val greedy :
  Adhoc_graph.Graph.t -> Adhoc_geom.Point.t array -> src:int -> dst:int -> route option
(** Pure greedy forwarding; [None] when a local minimum is reached first. *)

val greedy_face :
  planar:Adhoc_graph.Graph.t ->
  Adhoc_graph.Graph.t ->
  Adhoc_geom.Point.t array ->
  src:int ->
  dst:int ->
  route option
(** Greedy on the main graph with right-hand-rule recovery on [planar]
    (which should be a planar connected spanning subgraph, e.g.
    {!Adhoc_topo.Gabriel.build}); recovery ends as soon as a node strictly
    closer to the destination than the void entry is reached — the
    GFG/GPSR scheme without explicit face changes.  A traversal budget of
    [4·|E planar| + n] steps guards non-termination; [None] when it runs
    out, which the test suite never observes on connected planar
    subgraphs but which degenerate embeddings (e.g. many collinear
    nodes) can trigger. *)

val success_rate :
  Adhoc_graph.Graph.t ->
  Adhoc_geom.Point.t array ->
  rng:Adhoc_util.Prng.t ->
  trials:int ->
  float
(** Fraction of [trials] random connected source/destination pairs that
    pure greedy delivers. *)
