module Graph = Adhoc_graph.Graph
module Conflict = Adhoc_interference.Conflict

type group = int array

type stats = {
  steps : int;
  injected : int;
  dropped : int;
  delivered : int;
  sends : int;
  total_cost : float;
  remaining : int;
  per_member : (int * int) list;
}

(* Heights are per (node, group); group members' buffers are absorbing. *)
type state = {
  h : int array array;  (* h.(v).(g) *)
  member : bool array array;  (* member.(g).(v) *)
  mutable total : int;
}

let run ?(cooldown = 0) ?pad ~graph ~cost ~params ~groups ~injections ~horizon () =
  let n = Graph.n graph in
  let ng = Array.length groups in
  Array.iteri
    (fun gi g ->
      if Array.length g = 0 then invalid_arg "Anycast.run: empty group";
      Array.iter
        (fun v -> if v < 0 || v >= n then invalid_arg "Anycast.run: group member out of range")
        groups.(gi))
    groups;
  let st =
    {
      h = Array.make_matrix n ng 0;
      member =
        Array.init ng (fun gi ->
            let m = Array.make n false in
            Array.iter (fun v -> m.(v) <- true) groups.(gi);
            m);
      total = 0;
    }
  in
  let threshold = params.Balancing.threshold
  and gamma = params.Balancing.gamma
  and capacity = params.Balancing.capacity in
  let edge_cost = Array.init (Graph.num_edges graph) (fun e -> cost (Graph.length graph e)) in
  let coloring = Option.map Conflict.greedy_coloring pad in
  let injected = ref 0
  and dropped = ref 0
  and delivered = ref 0
  and sends = ref 0
  and total_cost = ref 0. in
  let absorbed = Array.make n 0 in
  let steps = horizon + cooldown in
  for t = 0 to steps - 1 do
    let active =
      match coloring with
      | Some (colors, k) when k > 0 ->
          let cls = t mod k in
          Graph.fold_edges graph ~init:[] ~f:(fun acc id _ ->
              if colors.(id) = cls then id :: acc else acc)
      | _ -> List.init (Graph.num_edges graph) Fun.id
    in
    (* Decide on start-of-step heights. *)
    let best_toward src dst c =
      let best = ref None in
      for g = 0 to ng - 1 do
        if st.h.(src).(g) > 0 then begin
          let gain = float_of_int (st.h.(src).(g) - st.h.(dst).(g)) -. (gamma *. c) in
          if gain > threshold then begin
            match !best with
            | Some (_, bgain) when bgain >= gain -> ()
            | _ -> best := Some (g, gain)
          end
        end
      done;
      !best
    in
    let decisions =
      List.concat_map
        (fun e ->
          let u, v = Graph.endpoints graph e in
          let c = edge_cost.(e) in
          List.filter_map
            (fun (src, dst) ->
              Option.map (fun (g, gain) -> (e, src, dst, g, gain)) (best_toward src dst c))
            [ (u, v); (v, u) ])
        active
    in
    (* Absorbing moves first, then larger gains — same contention rule as
       the unicast engine. *)
    let decisions =
      List.stable_sort
        (fun (_, _, dst_a, ga, a) (_, _, dst_b, gb, b) ->
          match (st.member.(ga).(dst_a), st.member.(gb).(dst_b)) with
          | true, false -> -1
          | false, true -> 1
          | _ -> Float.compare b a)
        decisions
    in
    List.iter
      (fun (e, src, dst, g, _) ->
        if st.h.(src).(g) > 0 then begin
          incr sends;
          total_cost := !total_cost +. edge_cost.(e);
          st.h.(src).(g) <- st.h.(src).(g) - 1;
          st.total <- st.total - 1;
          if st.member.(g).(dst) then begin
            incr delivered;
            absorbed.(dst) <- absorbed.(dst) + 1
          end
          else begin
            st.h.(dst).(g) <- st.h.(dst).(g) + 1;
            st.total <- st.total + 1
          end
        end)
      decisions;
    if t < horizon then
      List.iter
        (fun (src, g) ->
          if g < 0 || g >= ng then invalid_arg "Anycast.run: bad group index";
          if st.member.(g).(src) then begin
            incr injected;
            incr delivered;
            absorbed.(src) <- absorbed.(src) + 1
          end
          else if st.h.(src).(g) >= capacity then incr dropped
          else begin
            incr injected;
            st.h.(src).(g) <- st.h.(src).(g) + 1;
            st.total <- st.total + 1
          end)
        (injections t)
  done;
  let per_member =
    List.concat
      (Array.to_list
         (Array.mapi (fun v k -> if k > 0 then [ (v, k) ] else []) absorbed))
  in
  {
    steps;
    injected = !injected;
    dropped = !dropped;
    delivered = !delivered;
    sends = !sends;
    total_cost = !total_cost;
    remaining = st.total;
    per_member;
  }
