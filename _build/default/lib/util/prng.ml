type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy g = { state = g.state }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = bits64 g }

(* Non-negative 62-bit int from the high bits. *)
let bits g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let r = bits g land mask in
    let v = r mod n in
    if r - v + (n - 1) < 0 then draw () else v
  in
  draw ()

let uniform g =
  (* 53 random bits into [0,1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int r *. 0x1p-53

let float g x = uniform g *. x

let bool g = Int64.compare (Int64.logand (bits64 g) 1L) 0L <> 0

let range g lo hi = lo +. (uniform g *. (hi -. lo))

let gaussian g ~mean ~stddev =
  let rec nonzero () =
    let u = uniform g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = uniform g in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let exponential g ~rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  let rec nonzero () =
    let u = uniform g in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Partial Fisher–Yates over an index array. *)
  let idx = Array.init n Fun.id in
  for i = 0 to k - 1 do
    let j = i + int g (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
