(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merges the two sets; returns [false] if they were already one. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets currently. *)
