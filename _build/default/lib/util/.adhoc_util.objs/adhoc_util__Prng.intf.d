lib/util/prng.mli:
