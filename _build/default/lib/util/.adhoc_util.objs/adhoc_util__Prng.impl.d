lib/util/prng.ml: Array Float Fun Int64
