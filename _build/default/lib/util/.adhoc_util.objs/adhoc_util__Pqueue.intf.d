lib/util/pqueue.mli:
