lib/util/table.mli:
