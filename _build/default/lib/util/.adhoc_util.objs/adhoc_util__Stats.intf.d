lib/util/stats.mli:
