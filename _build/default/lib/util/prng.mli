(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment is reproducible from an integer seed.  The generator is
    SplitMix64 (Steele, Lea & Flood 2014): a tiny, fast, splittable generator
    with 64-bit state, adequate statistical quality for simulation workloads,
    and no dependence on the runtime's global [Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed].  Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream.  Use it to
    hand sub-seeds to components without coupling their consumption. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform on [0, n-1].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float g x] is uniform on [0, x). *)

val bool : t -> bool

val uniform : t -> float
(** Uniform on [0, 1). *)

val range : t -> float -> float -> float
(** [range g lo hi] is uniform on [lo, hi). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller normal deviate. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate ([rate > 0]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  Requires a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g k n] returns [k] distinct integers drawn
    uniformly from [0, n-1], in random order.  Requires [0 <= k <= n]. *)
