type 'a entry = { key : float; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) { key = 0.; value = Obj.magic 0 }; size = 0 }

let length q = q.size

let is_empty q = q.size = 0

let grow q =
  let data = Array.make (2 * Array.length q.data) q.data.(0) in
  Array.blit q.data 0 data 0 q.size;
  q.data <- data

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.data.(i).key < q.data.(parent).key then begin
      let tmp = q.data.(i) in
      q.data.(i) <- q.data.(parent);
      q.data.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.data.(l).key < q.data.(!smallest).key then smallest := l;
  if r < q.size && q.data.(r).key < q.data.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    let tmp = q.data.(i) in
    q.data.(i) <- q.data.(!smallest);
    q.data.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q key value =
  if q.size = Array.length q.data then grow q;
  q.data.(q.size) <- { key; value };
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (top.key, top.value)
  end

let pop_exn q =
  match pop q with
  | Some kv -> kv
  | None -> invalid_arg "Pqueue.pop_exn: empty queue"

let peek q = if q.size = 0 then None else Some (q.data.(0).key, q.data.(0).value)

let clear q = q.size <- 0
