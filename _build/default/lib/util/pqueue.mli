(** Mutable binary min-heap keyed by floats.

    Used by Dijkstra and the greedy schedulers.  Decrease-key is handled the
    lazy way: push the improved entry and let stale entries be skipped by the
    caller (standard for sparse-graph Dijkstra, and faster in practice than
    an indexed heap for our sizes). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-key entry, if any. *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument on an empty queue. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
