(** Aligned plain-text tables for experiment output.

    The benchmark harness prints the same rows/series the paper's claims
    describe; this module keeps that output readable and diffable. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Row cells must match the number of columns. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> unit
(** Convenience: a leading label cell followed by formatted floats. *)

val to_string : t -> string

val print : t -> unit
(** [to_string] followed by a newline on stdout. *)

val fmt_f : ?decimals:int -> float -> string
(** Fixed-point float formatter, default 3 decimals. *)
