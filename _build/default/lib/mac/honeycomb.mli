(** The honeycomb contestant-selection MAC — paper Section 3.4, Figure 5.

    All nodes share a fixed transmission range (normalised to 1).  The plane
    is tiled by hexagons of side [3 + 2Δ]; each requested transmission is
    assigned to the hexagon containing its sender.  Within each hexagon only
    the request of maximum benefit survives; if its benefit exceeds the
    threshold [t] it becomes a *contestant* and transmits with probability
    [p_t].  Lemma 3.7: [p_t <= 1/6] makes every contestant succeed with
    probability at least 1/2, yielding the O(1)-competitive Theorem 3.8. *)

type t

val create :
  ?p_t:float ->
  delta:float ->
  range:float ->
  threshold:float ->
  rng:Adhoc_util.Prng.t ->
  Adhoc_geom.Point.t array ->
  t
(** [p_t] defaults to [1/6].  [threshold] is the contestant threshold [T].
    The hexagon side is [(3 + 2·delta) · range] — the paper normalises the
    fixed transmission range to 1. *)

val mac : t -> Mac.t
(** The protocol as a {!Mac.t}. *)

val hexagon_of : t -> int -> Adhoc_geom.Hexgrid.coord
(** Hexagon assignment of each node (by index). *)

val grid : t -> Adhoc_geom.Hexgrid.t
