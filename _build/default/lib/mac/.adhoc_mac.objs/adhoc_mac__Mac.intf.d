lib/mac/mac.mli: Adhoc_interference Adhoc_util
