lib/mac/honeycomb.mli: Adhoc_geom Adhoc_util Mac
