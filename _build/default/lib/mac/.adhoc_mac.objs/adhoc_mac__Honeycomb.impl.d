lib/mac/honeycomb.ml: Adhoc_geom Adhoc_util Array Hexgrid List Mac Map
