lib/mac/mac.ml: Adhoc_interference Adhoc_util Array Float List
