open Adhoc_geom
module Prng = Adhoc_util.Prng

type t = {
  p_t : float;
  threshold : float;
  rng : Prng.t;
  hexgrid : Hexgrid.t;
  hex_of_node : Hexgrid.coord array;
}

let create ?(p_t = 1. /. 6.) ~delta ~range ~threshold ~rng points =
  if p_t <= 0. || p_t > 1. then invalid_arg "Honeycomb.create: p_t must be in (0,1]";
  if delta < 0. then invalid_arg "Honeycomb.create: negative delta";
  if range <= 0. then invalid_arg "Honeycomb.create: range must be positive";
  let hexgrid = Hexgrid.make ~side:((3. +. (2. *. delta)) *. range) in
  let hex_of_node = Array.map (Hexgrid.of_point hexgrid) points in
  { p_t; threshold; rng; hexgrid; hex_of_node }

let hexagon_of t i = t.hex_of_node.(i)

let grid t = t.hexgrid

module Coord_map = Map.Make (struct
  type t = Hexgrid.coord

  let compare = Hexgrid.compare_coord
end)

let mac t =
  let select ~step:_ (requests : Mac.request list) =
    (* Best request per hexagon of the sender. *)
    let best =
      List.fold_left
        (fun acc (r : Mac.request) ->
          let hex = t.hex_of_node.(r.Mac.sender) in
          match Coord_map.find_opt hex acc with
          | Some (b : Mac.request) when b.Mac.benefit >= r.Mac.benefit -> acc
          | _ -> Coord_map.add hex r acc)
        Coord_map.empty requests
    in
    (* Contestants flip the p_t coin. *)
    Coord_map.fold
      (fun _ (r : Mac.request) acc ->
        if r.Mac.benefit > t.threshold && Prng.uniform t.rng < t.p_t then r :: acc else acc)
      best []
    |> List.rev
  in
  { Mac.name = "honeycomb"; select }
