lib/pointset/poisson_disk.mli: Adhoc_geom Adhoc_util
