lib/pointset/mobility.ml: Adhoc_geom Adhoc_util Array Box Point
