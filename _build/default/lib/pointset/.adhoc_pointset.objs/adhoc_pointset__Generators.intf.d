lib/pointset/generators.mli: Adhoc_geom Adhoc_util Box Point
