lib/pointset/poisson_disk.ml: Adhoc_geom Adhoc_util Array Box Float Point
