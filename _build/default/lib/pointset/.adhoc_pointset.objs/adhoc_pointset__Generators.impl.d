lib/pointset/generators.ml: Adhoc_geom Adhoc_util Array Box Float List Point
