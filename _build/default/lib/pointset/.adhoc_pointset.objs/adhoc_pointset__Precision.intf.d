lib/pointset/precision.mli: Adhoc_geom
