lib/pointset/precision.ml: Adhoc_geom Array Box Float Hull Point Spatial_grid
