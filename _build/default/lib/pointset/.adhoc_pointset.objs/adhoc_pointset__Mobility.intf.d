lib/pointset/mobility.mli: Adhoc_geom Adhoc_util
