(** Node-placement generators for the experiments.

    Every generator is deterministic in its {!Adhoc_util.Prng.t} argument.
    Unless noted otherwise, points land in the given {!Adhoc_geom.Box.t}
    (default: the unit square, the paper's canonical region). *)

open Adhoc_geom

val uniform : ?box:Box.t -> Adhoc_util.Prng.t -> int -> Point.t array
(** [n] points independently and uniformly at random — the distribution of
    Lemma 2.10 and Corollary 3.5. *)

val jittered_grid : ?box:Box.t -> jitter:float -> Adhoc_util.Prng.t -> int -> Point.t array
(** Approximately [n] points (the nearest square count) on a regular grid,
    each perturbed uniformly by up to [jitter] × (cell size) per axis.
    [jitter = 0.] is an exact grid; small jitters give civilized sets. *)

val clusters :
  ?box:Box.t ->
  num_clusters:int ->
  spread:float ->
  Adhoc_util.Prng.t ->
  int ->
  Point.t array
(** Gaussian blobs: cluster centers uniform in the box, members
    normally distributed around them with standard deviation [spread],
    clamped to the box.  Models e.g. disaster-relief team deployments. *)

val ring : ?box:Box.t -> width:float -> Adhoc_util.Prng.t -> int -> Point.t array
(** Points on an annulus of the box's inscribed circle, radial width
    [width] × radius.  A hard case for sector-based constructions. *)

val exponential_chain : ?base:float -> int -> Point.t array
(** Deterministic 1-D chain on the x-axis with exponentially growing gaps
    ([base^i]): maximally non-civilized, the stress case for the open
    spanner question (experiment E4).  Requires [base > 1.]. *)

val exponential_spiral : ?base:float -> ?angle:float -> int -> Point.t array
(** Deterministic multi-scale set: point [i] at radius [base^i] and polar
    angle [i · angle] (default: golden angle).  Pairwise distances span
    [base^n] scales — maximally non-civilized in two dimensions, the stress
    family for the paper's open spanner question.  Requires [base > 1.]. *)

val two_scale : ?box:Box.t -> ratio:float -> Adhoc_util.Prng.t -> int -> Point.t array
(** Half the points in a dense blob of diameter [ratio] × box size, half
    uniform — a bimodal-scale distribution ([ratio << 1] breaks the
    civilized assumption). *)
