open Adhoc_geom
module Prng = Adhoc_util.Prng

type node = {
  mutable pos : Point.t;
  mutable waypoint : Point.t;
  mutable speed : float;
  mutable pausing : int;
}

type t = {
  box : Box.t;
  pause : int;
  speed_min : float;
  speed_max : float;
  rng : Prng.t;
  nodes : node array;
}

let random_point box rng =
  Point.make (Prng.range rng box.Box.xmin box.Box.xmax) (Prng.range rng box.Box.ymin box.Box.ymax)

let create ?(box = Box.unit_square) ?(pause = 0) ~speed_min ~speed_max rng points =
  if speed_min < 0. || speed_max < speed_min then invalid_arg "Mobility.create: bad speed range";
  let nodes =
    Array.map
      (fun p ->
        {
          pos = p;
          waypoint = random_point box rng;
          speed = Prng.range rng speed_min speed_max;
          pausing = 0;
        })
      points
  in
  { box; pause; speed_min; speed_max; rng; nodes }

let positions t = Array.map (fun nd -> nd.pos) t.nodes

let step_node t nd =
  if nd.pausing > 0 then nd.pausing <- nd.pausing - 1
  else begin
    let d = Point.dist nd.pos nd.waypoint in
    if d <= nd.speed then begin
      nd.pos <- nd.waypoint;
      nd.waypoint <- random_point t.box t.rng;
      nd.speed <- Prng.range t.rng t.speed_min t.speed_max;
      nd.pausing <- t.pause
    end
    else nd.pos <- Point.lerp nd.pos nd.waypoint (nd.speed /. d)
  end

let step t = Array.iter (step_node t) t.nodes

let run t k =
  for _ = 1 to k do
    step t
  done
