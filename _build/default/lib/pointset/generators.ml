open Adhoc_geom
module Prng = Adhoc_util.Prng

let uniform ?(box = Box.unit_square) rng n =
  Array.init n (fun _ ->
      Point.make (Prng.range rng box.Box.xmin box.Box.xmax)
        (Prng.range rng box.Box.ymin box.Box.ymax))

let jittered_grid ?(box = Box.unit_square) ~jitter rng n =
  if jitter < 0. then invalid_arg "Generators.jittered_grid: negative jitter";
  let side = max 1 (int_of_float (Float.round (sqrt (float_of_int n)))) in
  let cw = Box.width box /. float_of_int side in
  let ch = Box.height box /. float_of_int side in
  let points = ref [] in
  for row = 0 to side - 1 do
    for col = 0 to side - 1 do
      let cx = box.Box.xmin +. ((float_of_int col +. 0.5) *. cw) in
      let cy = box.Box.ymin +. ((float_of_int row +. 0.5) *. ch) in
      let dx = Prng.range rng (-.jitter) jitter *. cw in
      let dy = Prng.range rng (-.jitter) jitter *. ch in
      points := Box.clamp box (Point.make (cx +. dx) (cy +. dy)) :: !points
    done
  done;
  Array.of_list (List.rev !points)

let clusters ?(box = Box.unit_square) ~num_clusters ~spread rng n =
  if num_clusters <= 0 then invalid_arg "Generators.clusters: need at least one cluster";
  let centers = uniform ~box rng num_clusters in
  Array.init n (fun i ->
      let c = centers.(i mod num_clusters) in
      let x = Prng.gaussian rng ~mean:c.Point.x ~stddev:spread in
      let y = Prng.gaussian rng ~mean:c.Point.y ~stddev:spread in
      Box.clamp box (Point.make x y))

let ring ?(box = Box.unit_square) ~width rng n =
  if width < 0. || width > 1. then invalid_arg "Generators.ring: width must be in [0,1]";
  let c = Box.center box in
  let radius = Float.min (Box.width box) (Box.height box) /. 2. in
  Array.init n (fun _ ->
      let a = Prng.range rng 0. (2. *. Float.pi) in
      (* Area-uniform radius within the annulus [(1-width)·R, R]. *)
      let r_in = (1. -. width) *. radius in
      let r2 = Prng.range rng (r_in *. r_in) (radius *. radius) in
      let r = sqrt r2 in
      Box.clamp box (Point.make (c.Point.x +. (r *. cos a)) (c.Point.y +. (r *. sin a))))

let exponential_chain ?(base = 2.) n =
  if base <= 1. then invalid_arg "Generators.exponential_chain: base must exceed 1";
  let x = ref 0. in
  Array.init n (fun i ->
      if i > 0 then x := !x +. Float.pow base (float_of_int (i - 1));
      Point.make !x 0.)

let exponential_spiral ?(base = 1.6) ?(angle = 2.39996322972865332) n =
  if base <= 1. then invalid_arg "Generators.exponential_spiral: base must exceed 1";
  Array.init n (fun i ->
      if i = 0 then Point.origin
      else begin
        let r = Float.pow base (float_of_int i) in
        let a = float_of_int i *. angle in
        Point.make (r *. cos a) (r *. sin a)
      end)

let two_scale ?(box = Box.unit_square) ~ratio rng n =
  if ratio <= 0. || ratio > 1. then invalid_arg "Generators.two_scale: ratio must be in (0,1]";
  let c = Box.center box in
  let blob_r = ratio *. Float.min (Box.width box) (Box.height box) /. 2. in
  Array.init n (fun i ->
      if i mod 2 = 0 then begin
        let a = Prng.range rng 0. (2. *. Float.pi) in
        let r = blob_r *. sqrt (Prng.uniform rng) in
        Point.make (c.Point.x +. (r *. cos a)) (c.Point.y +. (r *. sin a))
      end
      else
        Point.make (Prng.range rng box.Box.xmin box.Box.xmax)
          (Prng.range rng box.Box.ymin box.Box.ymax))
