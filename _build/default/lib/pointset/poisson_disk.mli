(** Poisson-disk (blue-noise) sampling: random points with a guaranteed
    minimum pairwise separation.

    Sets produced this way are civilized (λ-precision) in the paper's sense
    (Section 2.3): the ratio of any two pairwise distances is bounded.
    Bridson's dart-throwing algorithm with a background grid, O(n). *)

val sample :
  ?box:Adhoc_geom.Box.t ->
  ?attempts:int ->
  min_dist:float ->
  Adhoc_util.Prng.t ->
  Adhoc_geom.Point.t array
(** [sample ~min_dist rng] fills the box with points pairwise at least
    [min_dist] apart until no more fit ([attempts] candidate darts per
    active point, default 30).  Requires [min_dist > 0]. *)

val sample_n :
  ?box:Adhoc_geom.Box.t ->
  min_dist:float ->
  Adhoc_util.Prng.t ->
  int ->
  Adhoc_geom.Point.t array
(** Like {!sample} but stops after [n] points.  Returns fewer when the box
    saturates first. *)
