open Adhoc_geom
module Prng = Adhoc_util.Prng

(* Bridson (2007): background grid with cell side min_dist/√2 so each cell
   holds at most one sample; candidates are drawn from the annulus
   [min_dist, 2·min_dist] around active samples. *)

type state = {
  box : Box.t;
  min_dist : float;
  cell : float;
  cols : int;
  rows : int;
  grid : int array;  (* -1 = empty, else sample index *)
  mutable samples : Point.t array;  (* dynamic array, first [count] valid *)
  mutable count : int;
  mutable active : int list;
}

let make_state box min_dist =
  let cell = min_dist /. sqrt 2. in
  let cols = max 1 (int_of_float (Float.ceil (Box.width box /. cell))) in
  let rows = max 1 (int_of_float (Float.ceil (Box.height box /. cell))) in
  {
    box;
    min_dist;
    cell;
    cols;
    rows;
    grid = Array.make (cols * rows) (-1);
    samples = Array.make 64 Point.origin;
    count = 0;
    active = [];
  }

let cell_of st (p : Point.t) =
  let col = int_of_float ((p.Point.x -. st.box.Box.xmin) /. st.cell) in
  let row = int_of_float ((p.Point.y -. st.box.Box.ymin) /. st.cell) in
  (min (max col 0) (st.cols - 1), min (max row 0) (st.rows - 1))

let far_enough st p =
  let col, row = cell_of st p in
  let ok = ref true in
  for r = max 0 (row - 2) to min (st.rows - 1) (row + 2) do
    for c = max 0 (col - 2) to min (st.cols - 1) (col + 2) do
      let idx = st.grid.((r * st.cols) + c) in
      if idx >= 0 && Point.dist st.samples.(idx) p < st.min_dist then ok := false
    done
  done;
  !ok

let insert st p =
  if st.count = Array.length st.samples then begin
    let bigger = Array.make (2 * st.count) Point.origin in
    Array.blit st.samples 0 bigger 0 st.count;
    st.samples <- bigger
  end;
  let col, row = cell_of st p in
  st.grid.((row * st.cols) + col) <- st.count;
  st.samples.(st.count) <- p;
  st.active <- st.count :: st.active;
  st.count <- st.count + 1

let annulus_candidate rng st (center : Point.t) =
  let a = Prng.range rng 0. (2. *. Float.pi) in
  let r = st.min_dist *. (1. +. Prng.uniform rng) in
  Point.make (center.Point.x +. (r *. cos a)) (center.Point.y +. (r *. sin a))

let run ?(box = Box.unit_square) ?(attempts = 30) ~min_dist rng ~limit =
  if min_dist <= 0. then invalid_arg "Poisson_disk: min_dist must be positive";
  let st = make_state box min_dist in
  let first =
    Point.make (Prng.range rng box.Box.xmin box.Box.xmax) (Prng.range rng box.Box.ymin box.Box.ymax)
  in
  insert st first;
  let rec loop () =
    if st.count >= limit then ()
    else begin
      match st.active with
      | [] -> ()
      | i :: rest ->
          let center = st.samples.(i) in
          let placed = ref false in
          let k = ref 0 in
          while (not !placed) && !k < attempts do
            incr k;
            let cand = annulus_candidate rng st center in
            if Box.contains box cand && far_enough st cand then begin
              insert st cand;
              placed := true
            end
          done;
          if not !placed then st.active <- rest;
          loop ()
    end
  in
  loop ();
  Array.sub st.samples 0 st.count

let sample ?box ?attempts ~min_dist rng = run ?box ?attempts ~min_dist rng ~limit:max_int

let sample_n ?box ~min_dist rng n = run ?box ~min_dist rng ~limit:n
