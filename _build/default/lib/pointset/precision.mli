(** λ-precision (civilized) measurement — paper Section 2.3.

    A point set is civilized with parameter λ if the ratio of the minimum to
    the maximum pairwise distance is at least λ.  Wireless deployments are
    commonly modelled this way because distinct devices are never
    arbitrarily close relative to the deployment scale. *)

val min_pairwise : Adhoc_geom.Point.t array -> float
(** Smallest distance between two distinct points ([infinity] for fewer than
    two points).  Grid-accelerated, near-linear. *)

val max_pairwise : Adhoc_geom.Point.t array -> float
(** Largest pairwise distance (diameter of the set; [0.] for fewer than two
    points).  Computed over convex-hull vertices, near-linear after
    sorting. *)

val lambda : Adhoc_geom.Point.t array -> float
(** [min_pairwise / max_pairwise]; the set is λ-precision for any
    λ ≤ this value.  [0.] when there are coincident points, [1.] for fewer
    than two points (vacuously civilized). *)

val is_civilized : lambda:float -> Adhoc_geom.Point.t array -> bool
