(** Random-waypoint mobility — the uncontrollable topology dynamics of the
    paper's adversarial model, made concrete for the examples and the
    dynamic-routing experiments.

    Each node picks a waypoint uniformly in the box, moves toward it at its
    speed, pauses, and repeats.  Advancing the model one step yields a new
    position array; rebuilding the topology on it gives the "sequence of
    network changes" the routing layer must absorb. *)

type t

val create :
  ?box:Adhoc_geom.Box.t ->
  ?pause:int ->
  speed_min:float ->
  speed_max:float ->
  Adhoc_util.Prng.t ->
  Adhoc_geom.Point.t array ->
  t
(** [create ~speed_min ~speed_max rng points] starts every node at its given
    position with a fresh waypoint.  Speeds are distances per step, drawn
    uniformly from [[speed_min, speed_max]] per leg; [pause] steps are
    spent at each reached waypoint (default 0).  The generator is consumed
    as the model advances. *)

val positions : t -> Adhoc_geom.Point.t array
(** Current positions (a fresh copy). *)

val step : t -> unit
(** Advance every node by one time step. *)

val run : t -> int -> unit
(** [run m k] advances [k] steps. *)
