test/test_pointset.mli:
