test/test_pointset.ml: Adhoc_geom Adhoc_pointset Adhoc_util Alcotest Array Float Generators Helpers List Mobility Poisson_disk Precision
