test/test_pipeline.ml: Adhoc Adhoc_graph Adhoc_util Alcotest Float Geom Graphs Helpers Interference Pipeline Pointset Routing Topo
