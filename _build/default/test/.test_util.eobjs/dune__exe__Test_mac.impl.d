test/test_mac.ml: Adhoc_geom Adhoc_graph Adhoc_interference Adhoc_mac Adhoc_pointset Adhoc_topo Adhoc_util Alcotest Array Float Fun Helpers List QCheck2
