test/test_viz.ml: Adhoc_geom Adhoc_graph Adhoc_io Adhoc_pointset Adhoc_topo Adhoc_util Adhoc_viz Alcotest Array Bytes Char Filename Float Helpers List QCheck2 String Sys
