test/test_geom.ml: Adhoc_geom Adhoc_pointset Adhoc_util Alcotest Array Box Circle Float Helpers Hexgrid Hull List Option Point QCheck2 Sector Segment Spatial_grid
