test/helpers.ml: Adhoc_geom Adhoc_graph Adhoc_pointset Adhoc_util Alcotest Float List QCheck2 QCheck_alcotest String
