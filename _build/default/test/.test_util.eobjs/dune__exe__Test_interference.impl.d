test/test_interference.ml: Adhoc_geom Adhoc_graph Adhoc_interference Adhoc_topo Adhoc_util Alcotest Array Conflict Float Fun Helpers List Model QCheck2 Sinr Theta_paths
