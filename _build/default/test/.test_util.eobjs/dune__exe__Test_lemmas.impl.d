test/test_lemmas.ml: Adhoc_geom Adhoc_util Alcotest Array Circle Float Helpers List Point QCheck2
