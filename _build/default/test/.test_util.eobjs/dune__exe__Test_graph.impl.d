test/test_graph.ml: Adhoc_geom Adhoc_graph Adhoc_util Alcotest Array Fun Helpers List QCheck2
