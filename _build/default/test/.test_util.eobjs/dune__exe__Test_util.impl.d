test/test_util.ml: Adhoc_util Alcotest Array Float Fun Helpers List QCheck2 String
