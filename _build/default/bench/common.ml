(* Shared helpers for the experiment harness. *)

open Adhoc
module Prng = Util.Prng
module Graph = Graphs.Graph
module Cost = Graphs.Cost
module Table = Util.Table
module Stats = Util.Stats

let theta_default = Float.pi /. 6.

(* Build a connected instance on [n] uniform nodes. *)
let uniform_instance ?(range_factor = 1.5) ?(theta = theta_default) ?(delta = 0.5) seed n =
  let rng = Prng.create seed in
  let points = Pointset.Generators.uniform rng n in
  let range = range_factor *. Topo.Udg.critical_range points in
  (rng, Pipeline.prepare ~delta ~theta ~range points)

let mean_and_max values =
  let s = Stats.summarize values in
  (s.Stats.mean, s.Stats.max)

let fmt2 = Printf.sprintf "%.2f"
let fmt3 = Printf.sprintf "%.3f"
let fmt4 = Printf.sprintf "%.4f"

let seeds k = List.init k (fun i -> 1000 + (17 * i))

let header title =
  Printf.printf "\n=== %s ===\n\n%!" title
