bench/main.mli:
