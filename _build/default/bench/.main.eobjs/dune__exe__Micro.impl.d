bench/micro.ml: Adhoc Analyze Bechamel Benchmark Common Float Graphs Hashtbl Instance Interference Lazy List Measure Pipeline Pointset Printf Routing Staged Test Time Toolkit Topo Util
