bench/exp_baselines.ml: Adhoc Array Common Float Graphs Hashtbl Interference List Option Pointset Printf Stats Table Topo Unix Util
