bench/main.ml: Array Exp_baselines Exp_extensions Exp_interference Exp_routing Exp_topology Figures List Micro Printf String Sys
