bench/exp_routing.ml: Adhoc Array Common Cost Float Geom Graphs Interference List Mac_protocols Pipeline Pointset Printf Routing Stats Table Util
