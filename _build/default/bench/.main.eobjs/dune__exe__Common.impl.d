bench/common.ml: Adhoc Float Graphs List Pipeline Pointset Printf Topo Util
