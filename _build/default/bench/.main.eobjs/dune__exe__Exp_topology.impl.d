bench/exp_topology.ml: Adhoc Array Common Cost Float Graphs List Pointset Printf Table Topo Util
