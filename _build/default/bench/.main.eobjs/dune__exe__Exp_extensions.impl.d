bench/exp_extensions.ml: Adhoc Array Common Cost Float Fun Geom Graphs Hashtbl Interference List Option Pipeline Pointset Printf Routing Stats String Table Topo Util
