bench/exp_interference.ml: Adhoc Array Common Fun Graphs Hashtbl Interference List Option Pipeline Printf Stats Table Util
