bench/figures.ml: Adhoc Array Common Filename Float Graphs Interference List Pipeline Pointset Printf Stats Sys Topo Util Viz
