(* adhoc_sim — command-line driver for the library.

   Subcommands:
     topology      build G*, the Yao graph and the ΘALG overlay; print metrics
     stretch       energy/distance stretch of the overlay vs. G*
     interference  interference number and colouring of a topology
     route         run a balancing-routing scenario end to end
*)

open Adhoc
open Cmdliner
module Prng = Util.Prng
module Graph = Graphs.Graph
module Table = Util.Table

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (deterministic runs).")

let nodes_t =
  Arg.(value & opt int 200 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let theta_t =
  Arg.(
    value
    & opt float (Float.pi /. 6.)
    & info [ "theta" ] ~docv:"RAD" ~doc:"Sector angle of ΘALG (radians, ≤ π/3 for the paper's guarantees).")

let range_factor_t =
  Arg.(
    value
    & opt float 1.5
    & info [ "range-factor" ] ~docv:"F"
        ~doc:"Transmission range as a multiple of the connectivity threshold.")

let delta_t =
  Arg.(
    value & opt float 0.5
    & info [ "delta" ] ~docv:"D" ~doc:"Interference guard-zone parameter Δ.")

let dist_t =
  let dist_conv =
    Arg.enum
      [ ("uniform", `Uniform); ("grid", `Grid); ("clusters", `Clusters); ("ring", `Ring) ]
  in
  Arg.(
    value & opt dist_conv `Uniform
    & info [ "dist" ] ~docv:"DIST" ~doc:"Node distribution: uniform, grid, clusters or ring.")

let make_points dist rng n =
  match dist with
  | `Uniform -> Pointset.Generators.uniform rng n
  | `Grid -> Pointset.Generators.jittered_grid ~jitter:0.3 rng n
  | `Clusters -> Pointset.Generators.clusters ~num_clusters:5 ~spread:0.05 rng n
  | `Ring -> Pointset.Generators.ring ~width:0.25 rng n

let build ?obs seed n theta range_factor delta dist =
  let rng = Prng.create seed in
  let points = make_points dist rng n in
  let range = range_factor *. Topo.Udg.critical_range points in
  (rng, points, range, Pipeline.prepare ~delta ~theta ?obs ~range points)

(* ------------------------------------------------------------------ *)
(* topology                                                            *)

let topology_cmd =
  let run seed n theta range_factor delta dist =
    let _, points, range, b = build seed n theta range_factor delta dist in
    Printf.printf "n=%d range=%.4f theta=%.4f\n\n" n range theta;
    let gstar = b.Pipeline.gstar in
    let t = Table.create Topo.Topo_metrics.header in
    List.iter
      (fun (name, g) ->
        Table.add_row t (Topo.Topo_metrics.to_row (Topo.Topo_metrics.measure ~name ~base:gstar g)))
      [
        ("G*", gstar);
        ("yao", Topo.Yao.graph ~theta ~range points);
        ("theta-overlay", b.Pipeline.overlay);
        ("gabriel", Topo.Gabriel.build ~range points);
        ("rng", Topo.Rng_graph.build ~range points);
        ("delaunay", Topo.Delaunay.build ~range points);
        ("mst", Graphs.Mst.of_points points);
      ];
    Table.print t
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Build topologies on a random deployment and print their metrics.")
    Term.(const run $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t)

(* ------------------------------------------------------------------ *)
(* stretch                                                             *)

let stretch_cmd =
  let kappa_t =
    Arg.(value & opt float 2. & info [ "kappa" ] ~docv:"K" ~doc:"Path-loss exponent κ ≥ 2.")
  in
  let run seed n theta range_factor delta dist kappa =
    let _, _, _, b = build seed n theta range_factor delta dist in
    let es =
      Graphs.Stretch.over_base_edges ~sub:b.Pipeline.overlay ~base:b.Pipeline.gstar
        ~cost:(Graphs.Cost.energy ~kappa)
    in
    let ds =
      Graphs.Stretch.over_base_edges ~sub:b.Pipeline.overlay ~base:b.Pipeline.gstar
        ~cost:Graphs.Cost.length
    in
    Printf.printf "energy-stretch (kappa=%.1f) = %.4f\ndistance-stretch = %.4f\n" kappa es ds
  in
  Cmd.v
    (Cmd.info "stretch" ~doc:"Energy/distance stretch of the ΘALG overlay vs. the transmission graph.")
    Term.(const run $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t $ kappa_t)

(* ------------------------------------------------------------------ *)
(* interference                                                        *)

let interference_cmd =
  let run seed n theta range_factor delta dist =
    let _, _, _, b = build seed n theta range_factor delta dist in
    let sizes = Interference.Conflict.set_sizes b.Pipeline.conflict in
    let _, colors = Interference.Conflict.greedy_coloring b.Pipeline.conflict in
    let mean =
      if Array.length sizes = 0 then 0.
      else
        float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int (Array.length sizes)
    in
    Printf.printf "overlay edges = %d\ninterference number I = %d\nmean |I(e)| = %.2f\ngreedy colors = %d\n"
      (Graph.num_edges b.Pipeline.overlay)
      b.Pipeline.interference_number mean colors
  in
  Cmd.v
    (Cmd.info "interference" ~doc:"Interference structure of the ΘALG overlay.")
    Term.(const run $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t)

(* ------------------------------------------------------------------ *)
(* route                                                               *)

let route_cmd =
  let scenario_t =
    let scen_conv = Arg.enum [ ("mac-given", `S1); ("random-mac", `S2); ("honeycomb", `S3) ] in
    Arg.(
      value & opt scen_conv `S1
      & info [ "scenario" ] ~docv:"S"
          ~doc:"mac-given (Thm 3.1), random-mac (Thm 3.3) or honeycomb (Thm 3.8).")
  in
  let horizon_t =
    Arg.(value & opt int 4000 & info [ "horizon" ] ~docv:"T" ~doc:"Injection horizon (steps).")
  in
  let flows_t =
    Arg.(value & opt int 2 & info [ "flows" ] ~docv:"F" ~doc:"Number of sustained flows.")
  in
  let epsilon_t =
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~docv:"E" ~doc:"Throughput slack ε ∈ (0,1).")
  in
  let trace_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a per-step trace and write it to $(docv) after the run — JSONL by \
             default, CSV when $(docv) ends in .csv.")
  in
  let trace_stride_t =
    Arg.(
      value & opt int 1
      & info [ "trace-stride" ] ~docv:"S"
          ~doc:"Record every $(docv)-th step of the trace (default 1: every step).")
  in
  let metrics_t =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the observability layer's span timings and metric snapshot after the run.")
  in
  let print_observability (o : Obs.sink) =
    let spans = Obs.Span.totals o.Obs.spans in
    if spans <> [] then begin
      let t =
        Table.create [ ("span", Table.Left); ("calls", Table.Right); ("seconds", Table.Right) ]
      in
      List.iter
        (fun (s : Obs.Span.total) ->
          Table.add_row t
            [ s.Obs.Span.label; string_of_int s.Obs.Span.count; Printf.sprintf "%.6f" s.Obs.Span.seconds ])
        spans;
      print_newline ();
      Table.print t
    end;
    let t = Table.create [ ("metric", Table.Left); ("value", Table.Right) ] in
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Counter c -> Table.add_row t [ name; string_of_int c ]
        | Obs.Metrics.Gauge g -> Table.add_row t [ name; Printf.sprintf "%g" g ]
        | Obs.Metrics.Histogram { counts; total; _ } ->
            Table.add_row t
              [
                name;
                Printf.sprintf "n=%d overflow=%d" total counts.(Array.length counts - 1);
              ])
      (Obs.Metrics.snapshot o.Obs.metrics);
    print_newline ();
    Table.print t
  in
  let run seed n theta range_factor delta dist scenario horizon flows epsilon trace_file
      trace_stride metrics =
    let trace = Option.map (fun _ -> Obs.Trace.create ~stride:trace_stride ()) trace_file in
    let obs = if trace <> None || metrics then Some (Obs.create ?trace ()) else None in
    let rng, _, range, b = build ?obs seed n theta range_factor delta dist in
    let r =
      match scenario with
      | `S1 ->
          Pipeline.run_scenario1 ~epsilon ~horizon ~attempts:(2 * horizon) ~flows ?obs ~rng b
      | `S2 ->
          Pipeline.run_scenario2 ~epsilon ~horizon ~attempts:(2 * horizon) ~flows ?obs ~rng b
      | `S3 ->
          Pipeline.run_honeycomb ~epsilon ~horizon ~attempts:(2 * horizon) ~flows ?obs ~rng b
    in
    Printf.printf "range=%.4f  I=%d\n" range b.Pipeline.interference_number;
    Printf.printf "OPT deliveries      %d\n" r.Pipeline.opt.Routing.Workload.deliveries;
    Printf.printf "balancing delivered %d\n" r.Pipeline.stats.Routing.Engine.delivered;
    Printf.printf "throughput ratio    %.4f\n" r.Pipeline.throughput_ratio;
    Printf.printf "avg-cost ratio      %s\n"
      (if Float.is_nan r.Pipeline.cost_ratio then "n/a"
       else Printf.sprintf "%.4f" r.Pipeline.cost_ratio);
    Printf.printf "sends / failed      %d / %d\n" r.Pipeline.stats.Routing.Engine.sends
      r.Pipeline.stats.Routing.Engine.failed_sends;
    Printf.printf "dropped / remaining %d / %d\n" r.Pipeline.stats.Routing.Engine.dropped
      r.Pipeline.stats.Routing.Engine.remaining;
    (match (obs, trace_file) with
    | Some { Obs.trace = Some tr; _ }, Some file ->
        if Filename.check_suffix file ".csv" then Obs.Trace.save_csv tr file
        else Obs.Trace.save_jsonl tr file;
        Printf.printf "wrote %s (%d samples, stride %d)\n" file (Obs.Trace.length tr)
          (Obs.Trace.stride tr)
    | _ -> ());
    match obs with Some o when metrics -> print_observability o | _ -> ()
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Run a balancing-routing scenario against a certified adversary.")
    Term.(
      const run $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t $ scenario_t
      $ horizon_t $ flows_t $ epsilon_t $ trace_t $ trace_stride_t $ metrics_t)

(* ------------------------------------------------------------------ *)
(* geo                                                                 *)

let geo_cmd =
  let trials_t =
    Arg.(value & opt int 500 & info [ "trials" ] ~docv:"K" ~doc:"Random connected pairs to route.")
  in
  let run seed n theta range_factor delta dist trials =
    let rng, points, range, b = build seed n theta range_factor delta dist in
    ignore rng;
    let gabriel = Topo.Gabriel.build ~range points in
    let t = Table.create [ ("router", Table.Left); ("delivery rate", Table.Right) ] in
    Table.add_row t
      [
        "greedy on G*";
        Printf.sprintf "%.3f"
          (Routing.Geo.success_rate b.Pipeline.gstar points ~rng:(Prng.create (seed + 1))
             ~trials);
      ];
    Table.add_row t
      [
        "greedy on overlay";
        Printf.sprintf "%.3f"
          (Routing.Geo.success_rate b.Pipeline.overlay points ~rng:(Prng.create (seed + 1))
             ~trials);
      ];
    let failures = ref 0 and total = ref 0 and rec_used = ref 0 in
    let prng = Prng.create (seed + 2) in
    while !total < trials do
      let src = Prng.int prng n and dst = Prng.int prng n in
      if src <> dst then begin
        incr total;
        match Routing.Geo.greedy_face ~planar:gabriel b.Pipeline.gstar points ~src ~dst with
        | Some r -> if r.Routing.Geo.recovery_hops > 0 then incr rec_used
        | None -> incr failures
      end
    done;
    Table.add_row t
      [
        "greedy+face (Gabriel recovery)";
        Printf.sprintf "%.3f" (1. -. (float_of_int !failures /. float_of_int !total));
      ];
    Table.print t;
    Printf.printf "routes that needed face recovery: %d/%d\n" !rec_used !total
  in
  Cmd.v
    (Cmd.info "geo" ~doc:"Geographic (greedy / greedy+face) routing success rates.")
    Term.(const run $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t $ trials_t)

(* ------------------------------------------------------------------ *)
(* export                                                              *)

let export_cmd =
  let out_t =
    Arg.(value & opt string "network.txt" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let what_t =
    let what_conv = Arg.enum [ ("network", `Net); ("svg", `Svg); ("dot", `Dot) ] in
    Arg.(
      value & opt what_conv `Net
      & info [ "format" ] ~docv:"FMT" ~doc:"network (text, reloadable), svg or dot.")
  in
  let run seed n theta range_factor delta dist out what =
    let _, points, _, b = build seed n theta range_factor delta dist in
    (match what with
    | `Net -> Io.Persist.save { Io.Persist.points; graph = b.Pipeline.overlay } out
    | `Svg ->
        Viz.Svg.save
          (Viz.Render.overlay_comparison points ~base:b.Pipeline.gstar ~sub:b.Pipeline.overlay)
          out
    | `Dot -> Viz.Dot.save points b.Pipeline.overlay out);
    Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write the ΘALG overlay as a reloadable network file, SVG or DOT.")
    Term.(
      const run $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t $ out_t $ what_t)

let () =
  let info =
    Cmd.info "adhoc_sim" ~version:"1.0.0"
      ~doc:"Local algorithms for topology control and routing in ad hoc networks (SPAA 2003)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ topology_cmd; stretch_cmd; interference_cmd; route_cmd; geo_cmd; export_cmd ]))
