(* adhoc_sim — command-line driver for the library.

   Subcommands:
     topology      build G*, the Yao graph and the ΘALG overlay; print metrics
     stretch       energy/distance stretch of the overlay vs. G*
     interference  interference number and colouring of a topology
     route         run a balancing-routing scenario end to end
     analyze       offline per-packet analytics from a recorded event log
*)

open Adhoc
open Cmdliner
module Prng = Util.Prng
module Graph = Graphs.Graph
module Table = Util.Table

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (deterministic runs).")

let nodes_t =
  Arg.(value & opt int 200 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let theta_t =
  Arg.(
    value
    & opt float (Float.pi /. 6.)
    & info [ "theta" ] ~docv:"RAD" ~doc:"Sector angle of ΘALG (radians, ≤ π/3 for the paper's guarantees).")

let range_factor_t =
  Arg.(
    value
    & opt float 1.5
    & info [ "range-factor" ] ~docv:"F"
        ~doc:"Transmission range as a multiple of the connectivity threshold.")

let delta_t =
  Arg.(
    value & opt float 0.5
    & info [ "delta" ] ~docv:"D" ~doc:"Interference guard-zone parameter Δ.")

let dist_t =
  let dist_conv =
    Arg.enum
      [ ("uniform", `Uniform); ("grid", `Grid); ("clusters", `Clusters); ("ring", `Ring) ]
  in
  Arg.(
    value & opt dist_conv `Uniform
    & info [ "dist" ] ~docv:"DIST" ~doc:"Node distribution: uniform, grid, clusters or ring.")

let jobs_t =
  Arg.(
    value
    & opt int (Util.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Domain-pool size for the parallelized kernels, including the \
           routing engines' per-step decision phase (default: the \
           machine's recommended domain count).  Every result is \
           bit-identical for every N; only wall-clock changes.")

(* Each subcommand body runs inside [with_jobs]: the pool is created from
   --jobs, threaded through the construction kernels and the engines'
   step loops, and torn down on exit. *)
let with_jobs jobs f = Util.Pool.with_pool ~jobs f

let make_points dist rng n =
  match dist with
  | `Uniform -> Pointset.Generators.uniform rng n
  | `Grid -> Pointset.Generators.jittered_grid ~jitter:0.3 rng n
  | `Clusters -> Pointset.Generators.clusters ~num_clusters:5 ~spread:0.05 rng n
  | `Ring -> Pointset.Generators.ring ~width:0.25 rng n

let build ?obs ?pool seed n theta range_factor delta dist =
  let rng = Prng.create seed in
  let points = make_points dist rng n in
  let range = range_factor *. Topo.Udg.critical_range points in
  (rng, points, range, Pipeline.prepare ~delta ~theta ?obs ?pool ~range points)

(* ------------------------------------------------------------------ *)
(* Live-telemetry summary, shared by [route --live] (online) and
   [analyze --replay-live] (offline): both print the same cumulative
   record, and both print it through the same table shape as the
   analyzer's per-packet distributions.                                *)

let print_live_summary l =
  let open Obs.Live in
  let c = finish l in
  Printf.printf "live: %d window%s of %d steps, %d events over %d steps\n" c.windows
    (if c.windows = 1 then "" else "s")
    (window_size l) c.events c.steps;
  Printf.printf "  injected / dropped  %d / %d\n" c.c_injected c.c_dropped;
  Printf.printf "  delivered           %d (self %d)\n" c.c_delivered c.c_self_deliveries;
  Printf.printf "  sends / collisions  %d / %d\n" c.c_sends c.c_collisions;
  Printf.printf "  control / buffered  %d / %d\n" c.c_control c.c_buffered;
  Printf.printf "  energy              %.6g\n" c.energy;
  Printf.printf "  health              %s (%d violations, %d anomalies)\n"
    (if c.healthy then "ok" else "UNHEALTHY")
    c.c_violations c.anomalies;
  if c.events > 0 then begin
    let tb = Table.summary_table "sketch estimate" in
    Table.add_float_row tb "latency (steps)"
      [ c.latency_mean; c.c_latency_p50; c.c_latency_p95 ];
    Table.add_float_row tb "hops" [ c.hops_mean; c.c_hops_p50; c.c_hops_p95 ];
    Table.add_float_row tb "occupancy" [ c.occupancy_mean; c.c_occupancy_p50; c.c_occupancy_p95 ];
    Table.print tb
  end;
  let hitters what tops =
    if tops <> [] then
      Printf.printf "  top %s %s\n" what
        (String.concat "  "
           (List.map (fun (k, n, err) -> Printf.sprintf "%d:%d(±%d)" k n err) tops))
  in
  hitters "edges " c.c_top_edges;
  hitters "nodes " c.top_nodes

(* ------------------------------------------------------------------ *)
(* topology                                                            *)

let topology_cmd =
  let run jobs seed n theta range_factor delta dist =
    with_jobs jobs @@ fun pool ->
    let _, points, range, b = build ~pool seed n theta range_factor delta dist in
    Printf.printf "n=%d range=%.4f theta=%.4f\n\n" n range theta;
    let gstar = b.Pipeline.gstar in
    let t = Table.create Topo.Topo_metrics.header in
    List.iter
      (fun (name, g) ->
        Table.add_row t (Topo.Topo_metrics.to_row (Topo.Topo_metrics.measure ~name ~base:gstar g)))
      [
        ("G*", gstar);
        ("yao", Topo.Yao.graph ~pool ~theta ~range points);
        ("theta-overlay", b.Pipeline.overlay);
        ("gabriel", Topo.Gabriel.build ~pool ~range points);
        ("rng", Topo.Rng_graph.build ~pool ~range points);
        ("delaunay", Topo.Delaunay.build ~range points);
        ("mst", Graphs.Mst.of_points points);
      ];
    Table.print t
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Build topologies on a random deployment and print their metrics.")
    Term.(const run $ jobs_t $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t)

(* ------------------------------------------------------------------ *)
(* stretch                                                             *)

let stretch_cmd =
  let kappa_t =
    Arg.(value & opt float 2. & info [ "kappa" ] ~docv:"K" ~doc:"Path-loss exponent κ ≥ 2.")
  in
  let run jobs seed n theta range_factor delta dist kappa =
    with_jobs jobs @@ fun pool ->
    let _, _, _, b = build ~pool seed n theta range_factor delta dist in
    let es =
      Graphs.Stretch.over_base_edges ~pool ~sub:b.Pipeline.overlay ~base:b.Pipeline.gstar
        ~cost:(Graphs.Cost.energy ~kappa) ()
    in
    let ds =
      Graphs.Stretch.over_base_edges ~pool ~sub:b.Pipeline.overlay ~base:b.Pipeline.gstar
        ~cost:Graphs.Cost.length ()
    in
    Printf.printf "energy-stretch (kappa=%.1f) = %.4f\ndistance-stretch = %.4f\n" kappa es ds
  in
  Cmd.v
    (Cmd.info "stretch" ~doc:"Energy/distance stretch of the ΘALG overlay vs. the transmission graph.")
    Term.(
      const run $ jobs_t $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t $ kappa_t)

(* ------------------------------------------------------------------ *)
(* interference                                                        *)

let interference_cmd =
  let run jobs seed n theta range_factor delta dist =
    with_jobs jobs @@ fun pool ->
    let _, _, _, b = build ~pool seed n theta range_factor delta dist in
    let sizes = Interference.Conflict.set_sizes b.Pipeline.conflict in
    let _, colors = Interference.Conflict.greedy_coloring b.Pipeline.conflict in
    let mean =
      if Array.length sizes = 0 then 0.
      else
        float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int (Array.length sizes)
    in
    Printf.printf "overlay edges = %d\ninterference number I = %d\nmean |I(e)| = %.2f\ngreedy colors = %d\n"
      (Graph.num_edges b.Pipeline.overlay)
      b.Pipeline.interference_number mean colors
  in
  Cmd.v
    (Cmd.info "interference" ~doc:"Interference structure of the ΘALG overlay.")
    Term.(const run $ jobs_t $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t)

(* ------------------------------------------------------------------ *)
(* route                                                               *)

let route_cmd =
  let scenario_t =
    let scen_conv = Arg.enum [ ("mac-given", `S1); ("random-mac", `S2); ("honeycomb", `S3) ] in
    Arg.(
      value & opt scen_conv `S1
      & info [ "scenario" ] ~docv:"S"
          ~doc:"mac-given (Thm 3.1), random-mac (Thm 3.3) or honeycomb (Thm 3.8).")
  in
  let horizon_t =
    Arg.(value & opt int 4000 & info [ "horizon" ] ~docv:"T" ~doc:"Injection horizon (steps).")
  in
  let flows_t =
    Arg.(value & opt int 2 & info [ "flows" ] ~docv:"F" ~doc:"Number of sustained flows.")
  in
  let epsilon_t =
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~docv:"E" ~doc:"Throughput slack ε ∈ (0,1).")
  in
  let trace_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a per-step trace and write it to $(docv) after the run — JSONL by \
             default, CSV when $(docv) ends in .csv.")
  in
  let trace_stride_t =
    Arg.(
      value & opt int 1
      & info [ "trace-stride" ] ~docv:"S"
          ~doc:"Record every $(docv)-th step of the trace (default 1: every step).")
  in
  let metrics_t =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the observability layer's span timings (with per-span GC deltas) and \
             metric snapshot after the run.")
  in
  let chrome_trace_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Record a per-domain profiling timeline (pool regions, chunks and spans) and \
             write it to $(docv) as Chrome trace-event JSON after the run — load it in \
             chrome://tracing or ui.perfetto.dev.")
  in
  let print_observability (o : Obs.sink) =
    let spans = Obs.Span.totals o.Obs.spans in
    if spans <> [] then begin
      let t =
        Table.create
          [
            ("span", Table.Left);
            ("calls", Table.Right);
            ("seconds", Table.Right);
            ("self", Table.Right);
            ("minor w", Table.Right);
            ("promoted w", Table.Right);
            ("gc m/M", Table.Right);
          ]
      in
      List.iter
        (fun (s : Obs.Span.total) ->
          Table.add_row t
            [
              s.Obs.Span.label;
              string_of_int s.Obs.Span.count;
              Printf.sprintf "%.6f" s.Obs.Span.seconds;
              Printf.sprintf "%.6f" s.Obs.Span.self_seconds;
              Printf.sprintf "%.0f" s.Obs.Span.minor_words;
              Printf.sprintf "%.0f" s.Obs.Span.promoted_words;
              Printf.sprintf "%d/%d" s.Obs.Span.minor_collections s.Obs.Span.major_collections;
            ])
        spans;
      print_newline ();
      Table.print t
    end;
    let t = Table.create [ ("metric", Table.Left); ("value", Table.Right) ] in
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Counter c -> Table.add_row t [ name; string_of_int c ]
        | Obs.Metrics.Gauge g -> Table.add_row t [ name; Printf.sprintf "%g" g ]
        | Obs.Metrics.Histogram { counts; total; _ } ->
            Table.add_row t
              [
                name;
                Printf.sprintf "n=%d overflow=%d" total counts.(Array.length counts - 1);
              ])
      (Obs.Metrics.snapshot o.Obs.metrics);
    print_newline ();
    Table.print t
  in
  let events_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Record the packet-journey event log and write it to $(docv) as \
             adhoc-events/1 JSONL after the run (see the analyze subcommand).")
  in
  let check_invariants_t =
    Arg.(
      value & flag
      & info [ "check-invariants" ]
          ~doc:
            "Check the event stream online against the packet-conservation invariants and \
             reconcile it with the final stats; exit non-zero on any violation.")
  in
  let live_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "live" ] ~docv:"FILE"
          ~doc:
            "Fold the event stream online into live telemetry — step-keyed tumbling \
             windows of counters, quantile sketches and heavy hitters — and write the \
             snapshot stream to $(docv) as adhoc-live/1 JSONL after the run.  The stream \
             is byte-identical across --jobs and to analyze --replay-live over the same \
             recorded events.")
  in
  let live_window_t =
    Arg.(
      value & opt int 250
      & info [ "live-window" ] ~docv:"STEPS"
          ~doc:"Tumbling-window size in simulation steps for --live (default 250).")
  in
  let live_prom_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "live-prom" ] ~docv:"FILE"
          ~doc:
            "Also write the final cumulative live-telemetry state to $(docv) in \
             Prometheus text exposition format (turns the live recorder on even without \
             --live).")
  in
  let run jobs seed n theta range_factor delta dist scenario horizon flows epsilon trace_file
      trace_stride metrics events_file check_invariants chrome_file live_file live_window
      live_prom =
    with_jobs jobs @@ fun pool ->
    let trace = Option.map (fun _ -> Obs.Trace.create ~stride:trace_stride ()) trace_file in
    let live =
      if live_file <> None || live_prom <> None then
        Some (Obs.Live.create ~window:live_window ())
      else None
    in
    let events =
      if events_file <> None || check_invariants || live <> None then
        Some (Obs.Event.create ())
      else None
    in
    let domprof = Option.map (fun _ -> Obs.Domprof.create ()) chrome_file in
    let obs =
      if trace <> None || metrics || events <> None || domprof <> None then
        (* GC telemetry rides with --metrics: that is the only reporter of
           the per-span deltas, and the default path stays read-free. *)
        Some (Obs.create ?trace ?events ?domprof ?live ~gc:metrics ())
      else None
    in
    Option.iter (fun o -> Obs.attach_pool o pool) obs;
    let rng, _, range, b = build ?obs ~pool seed n theta range_factor delta dist in
    let checker =
      if check_invariants then begin
        let c = Obs.Invariants.create ~endpoints:(Graph.endpoints b.Pipeline.overlay) () in
        Option.iter (Obs.Invariants.attach c) events;
        Some c
      end
      else None
    in
    (* [~pool] reaches the engines' step loops: per-step decisions fan out
       on the domain pool, bit-identical to sequential for any --jobs. *)
    let r =
      match scenario with
      | `S1 ->
          Pipeline.run_scenario1 ~epsilon ~horizon ~attempts:(2 * horizon) ~flows ?obs ~pool
            ~rng b
      | `S2 ->
          Pipeline.run_scenario2 ~epsilon ~horizon ~attempts:(2 * horizon) ~flows ?obs ~pool
            ~rng b
      | `S3 ->
          Pipeline.run_honeycomb ~epsilon ~horizon ~attempts:(2 * horizon) ~flows ?obs ~pool
            ~rng b
    in
    Printf.printf "range=%.4f  I=%d\n" range b.Pipeline.interference_number;
    Printf.printf "OPT deliveries      %d\n" r.Pipeline.opt.Routing.Workload.deliveries;
    Printf.printf "balancing delivered %d\n" r.Pipeline.stats.Routing.Engine.delivered;
    Printf.printf "throughput ratio    %.4f\n" r.Pipeline.throughput_ratio;
    Printf.printf "avg-cost ratio      %s\n"
      (if Float.is_nan r.Pipeline.cost_ratio then "n/a"
       else Printf.sprintf "%.4f" r.Pipeline.cost_ratio);
    Printf.printf "sends / failed      %d / %d\n" r.Pipeline.stats.Routing.Engine.sends
      r.Pipeline.stats.Routing.Engine.failed_sends;
    Printf.printf "dropped / remaining %d / %d\n" r.Pipeline.stats.Routing.Engine.dropped
      r.Pipeline.stats.Routing.Engine.remaining;
    (match (obs, trace_file) with
    | Some { Obs.trace = Some tr; _ }, Some file ->
        if Filename.check_suffix file ".csv" then Obs.Trace.save_csv tr file
        else Obs.Trace.save_jsonl tr file;
        Printf.printf "wrote %s (%d samples, stride %d)\n" file (Obs.Trace.length tr)
          (Obs.Trace.stride tr)
    | _ -> ());
    (match (events, events_file) with
    | Some log, Some file ->
        Obs.Event.save_jsonl log file;
        Printf.printf "wrote %s (%d events)\n" file (Obs.Event.length log)
    | _ -> ());
    (match live with
    | Some l ->
        let c = Obs.Live.finish l in
        (match live_file with
        | Some file ->
            Obs.Live.save_jsonl l file;
            Printf.printf "wrote %s (%d windows + final)\n" file c.Obs.Live.windows
        | None -> ());
        (match live_prom with
        | Some file ->
            Obs.Live.save_prometheus l file;
            Printf.printf "wrote %s\n" file
        | None -> ());
        print_newline ();
        print_live_summary l
    | None -> ());
    (match (domprof, chrome_file) with
    | Some dp, Some file ->
        Obs.Chrome_trace.save ~process_name:"adhoc_sim route" dp file;
        Printf.printf "wrote %s (%d slices)\n" file (Obs.Domprof.length dp)
    | _ -> ());
    (match obs with Some o when metrics -> print_observability o | _ -> ());
    match checker with
    | None -> ()
    | Some c ->
        let s = r.Pipeline.stats in
        Obs.Invariants.final_check c ~injected:s.Routing.Engine.injected
          ~dropped:s.Routing.Engine.dropped ~delivered:s.Routing.Engine.delivered
          ~sends:s.Routing.Engine.sends ~failed_sends:s.Routing.Engine.failed_sends
          ~total_cost:s.Routing.Engine.total_cost ~remaining:s.Routing.Engine.remaining;
        print_endline (String.trim (Obs.Invariants.report c));
        if not (Obs.Invariants.ok c) then exit 1
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Run a balancing-routing scenario against a certified adversary.")
    Term.(
      const run $ jobs_t $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t
      $ scenario_t $ horizon_t $ flows_t $ epsilon_t $ trace_t $ trace_stride_t $ metrics_t
      $ events_t $ check_invariants_t $ chrome_trace_t $ live_t $ live_window_t $ live_prom_t)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"EVENTS" ~doc:"adhoc-events/1 JSONL file (route --events FILE).")
  in
  let top_t =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"K" ~doc:"Rows in the busiest-edges table (default 15).")
  in
  let svg_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE"
          ~doc:"Write a deliveries-over-time / buffer-occupancy chart to $(docv).")
  in
  let check_invariants_t =
    Arg.(
      value & flag
      & info [ "check-invariants" ]
          ~doc:"Replay the per-event invariants offline; exit non-zero on any violation.")
  in
  let replay_live_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay-live" ] ~docv:"FILE"
          ~doc:
            "Replay the event log through the live-telemetry recorder offline and write \
             the adhoc-live/1 snapshot stream to $(docv) — byte-identical to what route \
             --live produced online from the same events with the same window size.")
  in
  let live_window_t =
    Arg.(
      value & opt int 250
      & info [ "live-window" ] ~docv:"STEPS"
          ~doc:"Tumbling-window size in simulation steps for --replay-live (default 250).")
  in
  let run file top svg check_invariants replay_live live_window =
    match Obs.Event.load_jsonl file with
    | Error msg ->
        prerr_endline msg;
        exit 1
    | Ok events ->
        let j = Routing.Journey.analyze events in
        let t = j.Routing.Journey.totals in
        Printf.printf "%s: %d events, %d observed steps\n" file (Array.length events)
          t.Routing.Journey.steps;
        Printf.printf "injected / dropped   %d / %d\n" t.Routing.Journey.injected
          t.Routing.Journey.dropped;
        Printf.printf "delivered            %d (self %d)\n" t.Routing.Journey.delivered
          t.Routing.Journey.self_deliveries;
        Printf.printf "sends / collisions   %d / %d\n" t.Routing.Journey.sends
          t.Routing.Journey.collisions;
        Printf.printf "energy               %.6g\n" t.Routing.Journey.energy;
        if t.Routing.Journey.epochs > 0 then
          Printf.printf "epochs               %d\n" t.Routing.Journey.epochs;
        if t.Routing.Journey.height_adverts > 0 then
          Printf.printf "height adverts       %d\n" t.Routing.Journey.height_adverts;
        if j.Routing.Journey.anomalies > 0 then
          Printf.printf "REPLAY ANOMALIES     %d (corrupt or truncated log)\n"
            j.Routing.Journey.anomalies;
        let delivered_pkts =
          List.filter Routing.Packet.delivered j.Routing.Journey.packets
        in
        if delivered_pkts <> [] then begin
          (* Latency row uses Journey's pinned fields (they match
             Tracked_engine bit-for-bit); the hop / energy spread columns
             are computed here over the same delivered packets. *)
          let farr f = Array.of_list (List.map f delivered_pkts) in
          let hops = farr (fun p -> float_of_int p.Routing.Packet.hops) in
          let energy = farr (fun p -> p.Routing.Packet.energy) in
          let tb = Table.summary_table "per delivered packet" in
          Table.add_float_row tb "latency (steps)"
            [
              j.Routing.Journey.latency_mean;
              j.Routing.Journey.latency_median;
              j.Routing.Journey.latency_p95;
            ];
          Table.add_summary_row tb ~mean:j.Routing.Journey.hops_mean "hops" hops;
          Table.add_summary_row tb ~mean:j.Routing.Journey.energy_per_delivered "energy"
            energy;
          print_newline ();
          Table.print tb
        end;
        if Array.length j.Routing.Journey.edges > 0 then begin
          let edges = Array.copy j.Routing.Journey.edges in
          Array.sort
            (fun (a : Routing.Journey.edge_use) b ->
              compare
                (b.Routing.Journey.sends + b.Routing.Journey.collisions, a.Routing.Journey.edge)
                (a.Routing.Journey.sends + a.Routing.Journey.collisions, b.Routing.Journey.edge))
            edges;
          let tb =
            Table.create
              [
                ("edge", Table.Left);
                ("sends", Table.Right);
                ("collisions", Table.Right);
                ("energy", Table.Right);
                ("hol wait", Table.Right);
              ]
          in
          Array.iteri
            (fun i (e : Routing.Journey.edge_use) ->
              if i < top then
                Table.add_row tb
                  [
                    Printf.sprintf "%d (%d-%d)" e.Routing.Journey.edge e.Routing.Journey.u
                      e.Routing.Journey.v;
                    string_of_int e.Routing.Journey.sends;
                    string_of_int e.Routing.Journey.collisions;
                    Printf.sprintf "%.4f" e.Routing.Journey.energy;
                    Printf.sprintf "%.2f" (Routing.Journey.mean_wait e);
                  ])
            edges;
          print_newline ();
          Printf.printf "busiest edges (%d of %d used):\n" (min top (Array.length edges))
            (Array.length edges);
          Table.print tb
        end;
        (match svg with
        | Some out when Array.length j.Routing.Journey.timeline > 0 ->
            let pts f =
              Array.map
                (fun (step, del, buf) -> (float_of_int step, float_of_int (f del buf)))
                j.Routing.Journey.timeline
            in
            Viz.Chart.save ~title:"packet journeys" ~x_label:"step" ~y_label:"packets"
              [
                Viz.Chart.series ~label:"delivered (cumulative)" (pts (fun d _ -> d));
                Viz.Chart.series ~label:"buffered" (pts (fun _ b -> b));
              ]
              out;
            Printf.printf "wrote %s\n" out
        | Some _ -> prerr_endline "no timeline to chart (empty event log)"
        | None -> ());
        (match replay_live with
        | Some out ->
            let l = Obs.Live.create ~window:live_window () in
            Obs.Live.feed_array l events;
            Obs.Live.save_jsonl l out;
            Printf.printf "wrote %s (%d windows + final)\n" out
              (Obs.Live.finish l).Obs.Live.windows;
            print_newline ();
            print_live_summary l
        | None -> ());
        let bad = ref (j.Routing.Journey.anomalies > 0) in
        if check_invariants then begin
          match Obs.Invariants.run events with
          | [] ->
              Printf.printf "invariants ok (%d events checked)\n" (Array.length events)
          | vs ->
              bad := true;
              Printf.printf "%d invariant violation%s:\n" (List.length vs)
                (if List.length vs = 1 then "" else "s");
              List.iter
                (fun (v : Obs.Invariants.violation) ->
                  Printf.printf "  event %d: %s\n" v.Obs.Invariants.index
                    v.Obs.Invariants.reason)
                vs
        end;
        if !bad then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Reconstruct per-packet journeys from a recorded event log: latency / hop / \
          energy distributions, per-edge utilization, optional SVG time series, optional \
          offline replay of the live-telemetry stream.")
    Term.(const run $ file_t $ top_t $ svg_t $ check_invariants_t $ replay_live_t $ live_window_t)

(* ------------------------------------------------------------------ *)
(* geo                                                                 *)

let geo_cmd =
  let trials_t =
    Arg.(value & opt int 500 & info [ "trials" ] ~docv:"K" ~doc:"Random connected pairs to route.")
  in
  let run jobs seed n theta range_factor delta dist trials =
    with_jobs jobs @@ fun pool ->
    let rng, points, range, b = build ~pool seed n theta range_factor delta dist in
    ignore rng;
    let gabriel = Topo.Gabriel.build ~pool ~range points in
    let t = Table.create [ ("router", Table.Left); ("delivery rate", Table.Right) ] in
    Table.add_row t
      [
        "greedy on G*";
        Printf.sprintf "%.3f"
          (Routing.Geo.success_rate b.Pipeline.gstar points ~rng:(Prng.create (seed + 1))
             ~trials);
      ];
    Table.add_row t
      [
        "greedy on overlay";
        Printf.sprintf "%.3f"
          (Routing.Geo.success_rate b.Pipeline.overlay points ~rng:(Prng.create (seed + 1))
             ~trials);
      ];
    let failures = ref 0 and total = ref 0 and rec_used = ref 0 in
    let prng = Prng.create (seed + 2) in
    while !total < trials do
      let src = Prng.int prng n and dst = Prng.int prng n in
      if src <> dst then begin
        incr total;
        match Routing.Geo.greedy_face ~planar:gabriel b.Pipeline.gstar points ~src ~dst with
        | Some r -> if r.Routing.Geo.recovery_hops > 0 then incr rec_used
        | None -> incr failures
      end
    done;
    Table.add_row t
      [
        "greedy+face (Gabriel recovery)";
        Printf.sprintf "%.3f" (1. -. (float_of_int !failures /. float_of_int !total));
      ];
    Table.print t;
    Printf.printf "routes that needed face recovery: %d/%d\n" !rec_used !total
  in
  Cmd.v
    (Cmd.info "geo" ~doc:"Geographic (greedy / greedy+face) routing success rates.")
    Term.(
      const run $ jobs_t $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t
      $ trials_t)

(* ------------------------------------------------------------------ *)
(* export                                                              *)

let export_cmd =
  let out_t =
    Arg.(value & opt string "network.txt" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let what_t =
    let what_conv = Arg.enum [ ("network", `Net); ("svg", `Svg); ("dot", `Dot) ] in
    Arg.(
      value & opt what_conv `Net
      & info [ "format" ] ~docv:"FMT" ~doc:"network (text, reloadable), svg or dot.")
  in
  let run jobs seed n theta range_factor delta dist out what =
    with_jobs jobs @@ fun pool ->
    let _, points, _, b = build ~pool seed n theta range_factor delta dist in
    (match what with
    | `Net -> Io.Persist.save { Io.Persist.points; graph = b.Pipeline.overlay } out
    | `Svg ->
        Viz.Svg.save
          (Viz.Render.overlay_comparison points ~base:b.Pipeline.gstar ~sub:b.Pipeline.overlay)
          out
    | `Dot -> Viz.Dot.save points b.Pipeline.overlay out);
    Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write the ΘALG overlay as a reloadable network file, SVG or DOT.")
    Term.(
      const run $ jobs_t $ seed_t $ nodes_t $ theta_t $ range_factor_t $ delta_t $ dist_t $ out_t
      $ what_t)

let () =
  let info =
    Cmd.info "adhoc_sim" ~version:"1.0.0"
      ~doc:"Local algorithms for topology control and routing in ad hoc networks (SPAA 2003)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            topology_cmd;
            stretch_cmd;
            interference_cmd;
            route_cmd;
            analyze_cmd;
            geo_cmd;
            export_cmd;
          ]))
