(* `dune exec bench/main.exe -- figures` — SVG renderings of the headline
   experiment curves, written into ./bench_figures/. *)

open Adhoc
open Common
module Prng = Util.Prng
module Graph = Graphs.Graph
module Chart = Viz.Chart

let dir = "bench_figures"

let ensure_dir () = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* E5: interference number vs ln n, with the fitted log curve. *)
let interference_growth () =
  let ns = [ 64; 128; 256; 512; 1024; 2048 ] in
  let measured =
    List.map
      (fun n ->
        let is =
          List.map
            (fun seed ->
              let _, b = uniform_instance ~range_factor:1.2 seed n in
              float_of_int b.Pipeline.interference_number)
            (seeds 5)
        in
        (log (float_of_int n), Stats.mean (Array.of_list is)))
      ns
  in
  let xs = Array.of_list (List.map fst measured) in
  let ys = Array.of_list (List.map snd measured) in
  let a, b = Stats.linear_fit xs ys in
  let fit = Array.map (fun x -> (x, a +. (b *. x))) xs in
  Chart.save
    ~title:"E5: interference number vs ln n (uniform random nodes)"
    ~x_label:"ln n" ~y_label:"I"
    [
      Chart.series ~color:"#1f4e8c" ~label:"measured I (mean of 5)" (Array.of_list measured);
      Chart.series ~color:"#c0392b" ~label:"linear fit in ln n" fit;
    ]
    (Filename.concat dir "e5_interference.svg")

(* E7: throughput ratio vs horizon for a representative seed. *)
let balancing_convergence () =
  let pts =
    List.map
      (fun horizon ->
        let rng, b = uniform_instance 1000 150 in
        let r =
          Pipeline.run_scenario1 ~epsilon:0.5 ~horizon ~attempts:(2 * horizon) ~flows:2 ~rng b
        in
        (float_of_int horizon, r.Pipeline.throughput_ratio))
      [ 2000; 4000; 8000; 16000; 32000 ]
  in
  Chart.save
    ~title:"E7: throughput ratio vs horizon (seed 1000, eps = 0.5)"
    ~x_label:"horizon (steps)" ~y_label:"delivered / OPT"
    [ Chart.series ~color:"#1e8449" ~label:"(T,gamma)-balancing" (Array.of_list pts) ]
    (Filename.concat dir "e7_convergence.svg")

(* E13: the theta trade-off frontier (stretch vs interference). *)
let theta_frontier () =
  let pts =
    List.map
      (fun theta ->
        let rng = Prng.create 1000 in
        let points = Pointset.Generators.uniform rng 256 in
        let range = 1.5 *. Topo.Udg.critical_range points in
        let gstar = Topo.Udg.build ~range points in
        let ov = Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta ~range points) in
        let c =
          Interference.Conflict.build (Interference.Model.make ~delta:0.5) ~points ov
        in
        ( float_of_int (Interference.Conflict.interference_number c),
          Graphs.Stretch.over_base_edges ~sub:ov ~base:gstar
            ~cost:(Graphs.Cost.energy ~kappa:2.) () ))
      [ Float.pi /. 3.; Float.pi /. 4.; Float.pi /. 6.; Float.pi /. 12.; Float.pi /. 24. ]
  in
  Chart.save
    ~title:"E13: the theta trade-off (each point one theta, pi/3 ... pi/24)"
    ~x_label:"interference number I" ~y_label:"energy stretch"
    [ Chart.series ~color:"#6c3483" ~label:"theta overlay" (Array.of_list pts) ]
    (Filename.concat dir "e13_frontier.svg")

let run () =
  header "figures: SVG renderings into ./bench_figures/";
  ensure_dir ();
  interference_growth ();
  balancing_convergence ();
  theta_frontier ();
  Printf.printf "wrote %s/{e5_interference,e7_convergence,e13_frontier}.svg\n" dir
