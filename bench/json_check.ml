(* Well-formedness check for the bench harness's --json output and the
   engines' JSONL traces.

   The toolchain ships no JSON library, so this is a small recursive-descent
   parser covering the full JSON grammar.  Beyond syntax it checks the
   adhoc-bench/6 shape: a top-level object whose "schema" is
   "adhoc-bench/6", whose "jobs" member is the numeric domain-pool size
   the run used, and whose "experiments" member is a non-empty array of
   objects each carrying "id", "seconds", "metrics", well-formed "spans"
   (label / count / seconds), an "obs" metric snapshot, a "live" member
   (the live-telemetry cumulative summary, or null for experiments that
   ran no recorder) and "trace" / "chrome_trace" pointers (string or
   null).  The B2 and B4 scaling experiments must additionally snapshot
   nonzero pool.regions / pool.items counters — zero means the sweep's
   per-jobs pools were not attached to the obs sink — and record at
   least one nonzero "pool.imbalance:*" and one nonzero "gc:*" headline
   metric (zeros mean the profiled pass never ran); B4 must also record
   nonzero "steps_per_sec:*" / "decisions_per_sec:*" throughput metrics
   and its "bitident:*" pins (1 only after the event-log / live-stream
   byte comparison across the jobs grid passed); B3 and E7 must carry a
   non-null "live" summary (null means the live probe silently didn't
   run).  Version-1/2/3/4/5 documents are rejected with dedicated
   errors.

     json_check FILE          exits 0 and prints a summary if the file is valid
     json_check --jsonl FILE  validates a per-step trace: every line one JSON
                              object with a numeric "step" member
     json_check --live FILE   validates an adhoc-live/1 snapshot stream
                              (route --live / analyze --replay-live):
                              header, consecutive tumbling windows, one
                              final record whose counters equal the
                              window sums
     json_check --lint FILE   validates an adhoc-lint/2 static-analysis
                              report (rules / diagnostics / waivers shape;
                              rejects reports whose cmt layer did not run)
     json_check --chrome-trace FILE
                              validates a Chrome trace-event export: a
                              {"traceEvents": [...]} document of well-formed
                              "M" / "X" events
     json_check --compare BASELINE CURRENT [--span-tolerance R]
                              diffs two adhoc-bench/6 documents: stats must
                              match exactly (whatever --jobs either run
                              used), including the "live" summaries;
                              wall-clock timings and the
                              runtime-derived "pool.imbalance:*" / "gc:*" /
                              "gc.*" / "steps_per_sec:*" /
                              "decisions_per_sec:*" members only warn *)

exception Bad of string

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let k = String.length lit in
    if !pos + k <= n && String.sub s !pos k = lit then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "truncated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            (* Code points are validated, not decoded: only syntax matters. *)
            | Some _ -> Buffer.add_char buf '?'
            | None -> fail "bad \\u escape")
        | _ -> fail "bad escape");
        go ()
      end
      else if Char.code c < 0x20 then fail "unescaped control character"
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements (v :: acc)
            | Some ']' ->
                incr pos;
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let span_ok = function
  | Obj fields -> (
      match
        ( List.assoc_opt "label" fields,
          List.assoc_opt "count" fields,
          List.assoc_opt "seconds" fields )
      with
      | Some (Str _), Some (Num _), Some (Num _) -> true
      | _ -> false)
  | _ -> false

(* The "live" member: the live-telemetry cumulative summary recorded by
   experiments that ran an Obs.Live recorder.  An object must carry the
   fixed counter set, a boolean health verdict and the heavy-hitter
   arrays; null means the experiment ran no recorder. *)
let live_member_ok fields =
  let int_ok name =
    match List.assoc_opt name fields with
    | Some (Num v) -> Float.is_integer v && v >= 0.
    | _ -> false
  in
  List.for_all int_ok
    [
      "window"; "top_k"; "steps"; "events"; "windows"; "injected"; "dropped"; "delivered";
      "self"; "sends"; "collisions"; "control"; "buffered"; "violations"; "anomalies";
    ]
  && (match List.assoc_opt "healthy" fields with Some (Bool _) -> true | _ -> false)
  && (match List.assoc_opt "top_edges" fields with Some (Arr _) -> true | _ -> false)
  && (match List.assoc_opt "top_nodes" fields with Some (Arr _) -> true | _ -> false)

let experiment_ok = function
  | Obj fields ->
      List.mem_assoc "id" fields
      && List.mem_assoc "seconds" fields
      && List.mem_assoc "metrics" fields
      && (match List.assoc_opt "spans" fields with
         | Some (Arr spans) -> List.for_all span_ok spans
         | _ -> false)
      && (match List.assoc_opt "obs" fields with Some (Obj _) -> true | _ -> false)
      && (match List.assoc_opt "live" fields with
         | Some Null -> true
         | Some (Obj lf) -> live_member_ok lf
         | _ -> false)
      && (match List.assoc_opt "trace" fields with
         | Some (Str _ | Null) -> true
         | _ -> false)
      && (match List.assoc_opt "chrome_trace" fields with
         | Some (Str _ | Null) -> true
         | _ -> false)
  | _ -> false

(* The B2 and B4 scaling sweeps time every kernel on an explicit per-jobs
   pool; if a snapshot shows zero pool activity the sweep silently timed
   the sequential fallback (the regression this pin was added for: the
   per-jobs pools were never attached to the experiment's obs sink). *)
let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let pool_counters_ok fields =
  match List.assoc_opt "id" fields with
  | Some (Str (("b2" | "b4") as id)) ->
      let counter name =
        match List.assoc_opt "obs" fields with
        | Some (Obj obs) -> (
            match List.assoc_opt name obs with Some (Num c) when c > 0. -> true | _ -> false)
        | _ -> false
      in
      (* Same spirit for the profiled pass: all-zero imbalance / GC
         headline metrics mean the sweep never actually profiled its
         pools. *)
      let some_metric prefix =
        match List.assoc_opt "metrics" fields with
        | Some (Obj ms) ->
            List.exists
              (fun (name, v) ->
                starts_with ~prefix name && match v with Num c -> c > 0. | _ -> false)
              ms
        | _ -> false
      in
      if not (counter "pool.regions" && counter "pool.items") then
        Error
          (Printf.sprintf "experiment %s must record nonzero pool.regions / pool.items counters"
             id)
      else if not (some_metric "pool.imbalance:") then
        Error (Printf.sprintf "experiment %s must record a nonzero pool.imbalance:* metric" id)
      else if not (some_metric "gc:") then
        Error (Printf.sprintf "experiment %s must record a nonzero gc:* metric" id)
      else Ok ()
  | _ -> Ok ()

(* B4's reason to exist: throughput rates for the parallel routing step
   loop and the cross-jobs bit-identity verdicts.  Zero rates mean the
   timed runs never happened; a missing or non-1 "bitident:*" pin means
   the event-log / live-stream byte comparison was skipped or failed. *)
let b4_throughput_ok fields =
  match List.assoc_opt "id" fields with
  | Some (Str "b4") -> (
      let metrics = match List.assoc_opt "metrics" fields with Some (Obj ms) -> ms | _ -> [] in
      let some_positive prefix =
        List.exists
          (fun (name, v) ->
            starts_with ~prefix name && match v with Num c -> c > 0. | _ -> false)
          metrics
      in
      let bitident = List.filter (fun (name, _) -> starts_with ~prefix:"bitident:" name) metrics in
      if not (some_positive "steps_per_sec:") then
        Error "experiment b4 must record a nonzero steps_per_sec:* metric"
      else if not (some_positive "decisions_per_sec:") then
        Error "experiment b4 must record a nonzero decisions_per_sec:* metric"
      else
        match bitident with
        | [] -> Error "experiment b4 must record its bitident:* pins"
        | pins when List.for_all (fun (_, v) -> v = Num 1.) pins -> Ok ()
        | _ -> Error "experiment b4 recorded a bitident:* pin that is not 1")
  | _ -> Ok ()

(* B3 exists to exercise the live-telemetry layer, and E7 embeds the same
   probe: a null "live" member means the probe silently didn't run. *)
let live_summary_required_ok fields =
  match List.assoc_opt "id" fields with
  | Some (Str (("b3" | "e7") as id)) -> (
      match List.assoc_opt "live" fields with
      | Some (Obj _) -> Ok ()
      | _ ->
          Error
            (Printf.sprintf
               "experiment %s must record a non-null \"live\" summary (the live probe did \
                not run)"
               id))
  | _ -> Ok ()

let read_file file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_document file =
  match parse (read_file file) with
  | exception Bad msg ->
      Printf.eprintf "%s: invalid JSON: %s\n" file msg;
      exit 1
  | Obj fields -> (
      (match List.assoc_opt "schema" fields with
      | Some (Str "adhoc-bench/6") -> ()
      | Some (Str "adhoc-bench/1") ->
          Printf.eprintf
            "%s: version-1 document (adhoc-bench/1); this checker validates \
             adhoc-bench/6 — regenerate with the current bench harness\n"
            file;
          exit 1
      | Some (Str "adhoc-bench/2") ->
          Printf.eprintf
            "%s: version-2 document (adhoc-bench/2, no \"jobs\" member); this \
             checker validates adhoc-bench/6 — regenerate with the current \
             bench harness\n"
            file;
          exit 1
      | Some (Str "adhoc-bench/3") ->
          Printf.eprintf
            "%s: version-3 document (adhoc-bench/3, no GC/profiling members); \
             this checker validates adhoc-bench/6 — regenerate with the \
             current bench harness\n"
            file;
          exit 1
      | Some (Str "adhoc-bench/4") ->
          Printf.eprintf
            "%s: version-4 document (adhoc-bench/4, no \"live\" member); this \
             checker validates adhoc-bench/6 — regenerate with the current \
             bench harness\n"
            file;
          exit 1
      | Some (Str "adhoc-bench/5") ->
          Printf.eprintf
            "%s: version-5 document (adhoc-bench/5, no B4 routing-throughput \
             sweep); this checker validates adhoc-bench/6 — regenerate with \
             the current bench harness\n"
            file;
          exit 1
      | Some (Str other) ->
          Printf.eprintf "%s: unknown schema %S (expected \"adhoc-bench/6\")\n" file other;
          exit 1
      | _ ->
          Printf.eprintf "%s: missing \"schema\" member\n" file;
          exit 1);
      (match List.assoc_opt "jobs" fields with
      | Some (Num j) when Float.is_integer j && j >= 1. -> ()
      | Some _ ->
          Printf.eprintf "%s: \"jobs\" must be a positive integer\n" file;
          exit 1
      | None ->
          Printf.eprintf "%s: missing \"jobs\" member (domain-pool size)\n" file;
          exit 1);
      match List.assoc_opt "experiments" fields with
      | Some (Arr (_ :: _ as exps)) when List.for_all experiment_ok exps ->
          List.iter
            (fun e ->
              let f = match e with Obj f -> f | _ -> [] in
              let check = function
                | Ok () -> ()
                | Error msg ->
                    Printf.eprintf "%s: %s\n" file msg;
                    exit 1
              in
              check (pool_counters_ok f);
              check (b4_throughput_ok f);
              check (live_summary_required_ok f))
            exps;
          Printf.printf "%s: ok (%d experiments)\n" file (List.length exps)
      | Some (Arr []) ->
          Printf.eprintf "%s: no experiments recorded\n" file;
          exit 1
      | _ ->
          Printf.eprintf "%s: missing or malformed \"experiments\" array\n" file;
          exit 1)
  | _ ->
      Printf.eprintf "%s: top-level value is not an object\n" file;
      exit 1

(* --------------------------------------------------------------------- *)
(* Baseline comparison: did the simulation's numbers drift?

   Stats in adhoc-bench/6 documents are deterministic (seeded PRNG), and
   — pool kernels being bit-identical for any jobs — independent of the
   "jobs" the two runs used, so a
   current run's metrics must match a committed baseline exactly; the only
   legitimately machine-dependent members are wall-clock timings and
   runtime telemetry — the experiment's "seconds", span timings,
   micro-benchmark metrics ("ns_per_run:*"), B4's throughput rates
   ("steps_per_sec:*", "decisions_per_sec:*"), B2's and B4's
   profiled-pass figures
   ("pool.imbalance:*", "gc:*" — GC collection counts can drift by a
   cycle run-to-run, so they are relaxed too) and the obs snapshot's
   "gc.*" counters.  Those are compared within a relative tolerance and
   reported as warnings; everything else drifting is an error.  The
   "pool.chunk_items" histogram is jobs-dependent by design, so compare
   runs of the same --jobs (CI pins 2 on both sides). *)

let is_timing_metric name =
  starts_with ~prefix:"ns_per_run:" name
  || starts_with ~prefix:"pool.imbalance:" name
  || starts_with ~prefix:"gc:" name
  || starts_with ~prefix:"steps_per_sec:" name
  || starts_with ~prefix:"decisions_per_sec:" name

(* Obs snapshot members that carry GC telemetry ("gc.pool." counters):
   relaxed the same way — word counts are honest runtime measurements. *)
let is_runtime_obs_metric name = starts_with ~prefix:"gc." name

let load_doc file =
  match parse (read_file file) with
  | exception Bad msg ->
      Printf.eprintf "%s: invalid JSON: %s\n" file msg;
      exit 1
  | Obj fields -> (
      (match List.assoc_opt "schema" fields with
      | Some (Str "adhoc-bench/6") -> ()
      | _ ->
          Printf.eprintf "%s: not an adhoc-bench/6 document\n" file;
          exit 1);
      match List.assoc_opt "experiments" fields with
      | Some (Arr exps) ->
          List.filter_map
            (function
              | Obj f -> (
                  match List.assoc_opt "id" f with
                  | Some (Str id) -> Some (id, f)
                  | _ -> None)
              | _ -> None)
            exps
      | _ ->
          Printf.eprintf "%s: missing \"experiments\" array\n" file;
          exit 1)
  | _ ->
      Printf.eprintf "%s: top-level value is not an object\n" file;
      exit 1

let rec render = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> Printf.sprintf "%.12g" f
  | Str s -> Printf.sprintf "%S" s
  | Arr vs -> "[" ^ String.concat ", " (List.map render vs) ^ "]"
  | Obj fs -> "{" ^ String.concat ", " (List.map (fun (k, v) -> k ^ ": " ^ render v) fs) ^ "}"

let within_tolerance tol a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  Float.equal scale 0. || Float.abs (a -. b) <= tol *. scale

let compare_docs ~tolerance base_file cur_file =
  let base = load_doc base_file and cur = load_doc cur_file in
  let drift = ref 0 and warnings = ref 0 in
  let error id fmt =
    Printf.ksprintf
      (fun msg ->
        incr drift;
        Printf.printf "DRIFT %s: %s\n" id msg)
      fmt
  in
  let warn id fmt =
    Printf.ksprintf
      (fun msg ->
        incr warnings;
        Printf.printf "  warn %s: %s\n" id msg)
      fmt
  in
  let timing id name b c =
    if not (within_tolerance tolerance b c) then
      warn id "%s: %.4g -> %.4g (beyond %.0f%% tolerance)" name b c (100. *. tolerance)
  in
  let obj_fields = function Obj f -> f | _ -> [] in
  List.iter
    (fun (id, bf) ->
      match List.assoc_opt id cur with
      | None -> error id "experiment missing from %s" cur_file
      | Some cf ->
          (* Headline metrics: exact unless the name marks a timing. *)
          let bm = obj_fields (Option.value ~default:(Obj []) (List.assoc_opt "metrics" bf))
          and cm = obj_fields (Option.value ~default:(Obj []) (List.assoc_opt "metrics" cf)) in
          List.iter
            (fun (name, bv) ->
              match List.assoc_opt name cm with
              | None -> error id "metric %s missing from current run" name
              | Some cv -> (
                  match (bv, cv) with
                  | Num b, Num c when is_timing_metric name -> timing id name b c
                  | _ ->
                      if bv <> cv then
                        error id "metric %s: %s -> %s" name (render bv) (render cv)))
            bm;
          List.iter
            (fun (name, _) ->
              if not (List.mem_assoc name bm) then
                error id "metric %s absent from baseline" name)
            cm;
          (* Observability snapshot: deterministic and exact, except the
             gc.* counters, which are runtime measurements. *)
          let bo = obj_fields (Option.value ~default:(Obj []) (List.assoc_opt "obs" bf))
          and co = obj_fields (Option.value ~default:(Obj []) (List.assoc_opt "obs" cf)) in
          List.iter
            (fun (name, bv) ->
              match List.assoc_opt name co with
              | None -> error id "obs metric %s missing from current run" name
              | Some cv -> (
                  match (bv, cv) with
                  | Num b, Num c when is_runtime_obs_metric name ->
                      timing id ("obs " ^ name) b c
                  | _ ->
                      if bv <> cv then
                        error id "obs metric %s: %s -> %s" name (render bv) (render cv)))
            bo;
          (* Live-telemetry summary: a pure function of the event stream
             (step-keyed, jobs-invariant), so it must match exactly. *)
          (match (List.assoc_opt "live" bf, List.assoc_opt "live" cf) with
          | Some bl, Some cl ->
              if bl <> cl then error id "live summary: %s -> %s" (render bl) (render cl)
          | None, None -> ()
          | Some _, None -> error id "live member missing from current run"
          | None, Some _ -> error id "live member absent from baseline");
          (* Span timings: machine-dependent; counts are deterministic. *)
          let spans v =
            match List.assoc_opt "spans" v with
            | Some (Arr ss) ->
                List.filter_map
                  (fun s ->
                    let f = obj_fields s in
                    match
                      ( List.assoc_opt "label" f,
                        List.assoc_opt "count" f,
                        List.assoc_opt "seconds" f )
                    with
                    | Some (Str l), Some (Num n), Some (Num sec) -> Some (l, (n, sec))
                    | _ -> None)
                  ss
            | _ -> []
          in
          let bs = spans bf and cs = spans cf in
          List.iter
            (fun (label, (bn, bsec)) ->
              match List.assoc_opt label cs with
              | None -> error id "span %s missing from current run" label
              | Some (cn, csec) ->
                  if bn <> cn then
                    error id "span %s count: %g -> %g" label bn cn
                  else timing id ("span " ^ label) bsec csec)
            bs;
          (match (List.assoc_opt "seconds" bf, List.assoc_opt "seconds" cf) with
          | Some (Num b), Some (Num c) -> timing id "seconds" b c
          | _ -> ()))
    base;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id base) then error id "experiment absent from baseline")
    cur;
  if !drift = 0 then begin
    Printf.printf "%s vs %s: ok (%d experiments, %d timing warning%s)\n" base_file cur_file
      (List.length base) !warnings
      (if !warnings = 1 then "" else "s");
    exit 0
  end
  else begin
    Printf.printf "%s vs %s: %d stat drift%s\n" base_file cur_file !drift
      (if !drift = 1 then "" else "s");
    exit 1
  end

(* --------------------------------------------------------------------- *)
(* adhoc-lint/2: the static-analysis report written by
   `dune build @lint` (lint/adhoc_lint.ml).  Shape:

     { schema: "adhoc-lint/2", files: n, cmt_units: n, errors: n,
       warnings: n,
       rules:       [ {id, severity: "error"|"warning", layer, count,
                       waived} ... ],
       diagnostics: [ {file, line, col, rule, layer: "parsetree"|"cmt",
                       severity, message} ... ],
       waivers:     [ {file, line, rule, reason} ... ] }

   Every diagnostic's rule must be declared in "rules", every waiver must
   carry a non-empty reason, the error/warning totals must equal the
   diagnostics actually listed, and cmt_units must be positive — a report
   produced without the Typedtree layer (--no-cmt) is rejected, so the CI
   gate cannot silently pass on the weaker Parsetree-only analysis. *)

let check_lint_report file =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1)
      fmt
  in
  let fields =
    match parse (read_file file) with
    | exception Bad msg -> fail "invalid JSON: %s" msg
    | Obj fields -> fields
    | _ -> fail "top-level value is not an object"
  in
  (match List.assoc_opt "schema" fields with
  | Some (Str "adhoc-lint/2") -> ()
  | Some (Str "adhoc-lint/1") ->
      fail "obsolete schema \"adhoc-lint/1\"; rebuild the report with the two-layer tool"
  | Some (Str other) -> fail "unknown schema %S (expected \"adhoc-lint/2\")" other
  | _ -> fail "missing \"schema\" member");
  let num name =
    match List.assoc_opt name fields with
    | Some (Num f) when Float.is_integer f && f >= 0. -> int_of_float f
    | _ -> fail "missing or malformed numeric %S" name
  in
  let files = num "files"
  and cmt_units = num "cmt_units"
  and errors = num "errors"
  and warnings = num "warnings" in
  if cmt_units = 0 then
    fail "cmt_units is 0: the Typedtree layer did not run (--no-cmt report?)";
  let arr name =
    match List.assoc_opt name fields with
    | Some (Arr vs) -> vs
    | _ -> fail "missing or malformed %S array" name
  in
  let severity_ok = function Str ("error" | "warning") -> true | _ -> false in
  let layer_ok = function Str ("parsetree" | "cmt" | "both" | "meta") -> true | _ -> false in
  let rule_ids =
    List.map
      (fun v ->
        match v with
        | Obj f -> (
            match
              ( List.assoc_opt "id" f,
                List.assoc_opt "severity" f,
                List.assoc_opt "layer" f,
                List.assoc_opt "count" f,
                List.assoc_opt "waived" f )
            with
            | Some (Str id), Some sev, Some layer, Some (Num _), Some (Num _)
              when severity_ok sev && layer_ok layer ->
                id
            | _ -> fail "malformed rule entry")
        | _ -> fail "rule entry is not an object")
      (arr "rules")
  in
  if rule_ids = [] then fail "empty \"rules\" array";
  let counted = (ref 0, ref 0) in
  List.iter
    (fun v ->
      match v with
      | Obj f -> (
          match
            ( List.assoc_opt "file" f,
              List.assoc_opt "line" f,
              List.assoc_opt "col" f,
              List.assoc_opt "rule" f,
              List.assoc_opt "layer" f,
              List.assoc_opt "severity" f,
              List.assoc_opt "message" f )
          with
          | ( Some (Str _),
              Some (Num _),
              Some (Num _),
              Some (Str rule),
              Some (Str ("parsetree" | "cmt")),
              Some sev,
              Some (Str _) )
            when severity_ok sev ->
              if not (List.mem rule rule_ids) then
                fail "diagnostic references undeclared rule %S" rule;
              let e, w = counted in
              if sev = Str "error" then incr e else incr w
          | _ -> fail "malformed diagnostic entry")
      | _ -> fail "diagnostic entry is not an object")
    (arr "diagnostics");
  let e, w = counted in
  if !e <> errors || !w <> warnings then
    fail "totals disagree with diagnostics: %d/%d declared, %d/%d listed" errors warnings !e !w;
  let waivers = arr "waivers" in
  List.iter
    (fun v ->
      match v with
      | Obj f -> (
          match
            ( List.assoc_opt "file" f,
              List.assoc_opt "line" f,
              List.assoc_opt "rule" f,
              List.assoc_opt "reason" f )
          with
          | Some (Str _), Some (Num _), Some (Str rule), Some (Str reason) ->
              if not (List.mem rule rule_ids) then
                fail "waiver references undeclared rule %S" rule;
              if reason = "" then fail "waiver carries an empty reason"
          | _ -> fail "malformed waiver entry")
      | _ -> fail "waiver entry is not an object")
    waivers;
  Printf.printf "%s: ok (%d files, %d cmt units, %d errors, %d warnings, %d waivers)\n" file files
    cmt_units errors warnings (List.length waivers)

(* --------------------------------------------------------------------- *)
(* Chrome trace-event exports (catapult format, see lib/obs/chrome_trace):
   a top-level object with a non-empty "traceEvents" array of objects,
   every event "M" (metadata: needs a name) or "X" (complete: needs name,
   numeric pid/tid and non-negative ts/dur). *)

let check_chrome_trace file =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1)
      fmt
  in
  let fields =
    match parse (read_file file) with
    | exception Bad msg -> fail "invalid JSON: %s" msg
    | Obj fields -> fields
    | _ -> fail "top-level value is not an object"
  in
  let events =
    match List.assoc_opt "traceEvents" fields with
    | Some (Arr (_ :: _ as es)) -> es
    | Some (Arr []) -> fail "empty \"traceEvents\" array"
    | _ -> fail "missing or malformed \"traceEvents\" array"
  in
  let complete = ref 0 in
  List.iteri
    (fun i v ->
      let f = match v with Obj f -> f | _ -> fail "event %d is not an object" i in
      let name_ok = match List.assoc_opt "name" f with Some (Str _) -> true | _ -> false in
      match List.assoc_opt "ph" f with
      | Some (Str "M") -> if not name_ok then fail "metadata event %d lacks a \"name\"" i
      | Some (Str "X") ->
          incr complete;
          if not name_ok then fail "complete event %d lacks a \"name\"" i;
          let num field =
            match List.assoc_opt field f with
            | Some (Num x) -> x
            | _ -> fail "complete event %d lacks a numeric %S" i field
          in
          ignore (num "pid");
          ignore (num "tid");
          if num "ts" < 0. then fail "complete event %d has a negative \"ts\"" i;
          if num "dur" < 0. then fail "complete event %d has a negative \"dur\"" i
      | Some (Str other) -> fail "event %d has unsupported phase %S" i other
      | _ -> fail "event %d lacks a \"ph\" member" i)
    events;
  if !complete = 0 then fail "no \"X\" (complete) events — nothing was profiled";
  Printf.printf "%s: ok (%d events, %d complete)\n" file (List.length events) !complete

(* --------------------------------------------------------------------- *)
(* adhoc-live/1: the streaming-telemetry snapshot stream written by
   `adhoc_sim route --live` and `analyze --replay-live` (lib/obs/live.ml).
   Shape: a header line {schema, window, top_k}, one object per closed
   tumbling window — consecutive "w" indices, each covering exactly
   "window" simulation steps — and exactly one final cumulative object as
   the last line.  The stream is a fold of the event log, so each
   per-window counter must sum to the final cumulative counter; any
   mismatch means a truncated or corrupt file. *)

let check_live file =
  let fail line fmt =
    Printf.ksprintf
      (fun msg ->
        (match line with
        | Some l -> Printf.eprintf "%s:%d: %s\n" file l msg
        | None -> Printf.eprintf "%s: %s\n" file msg);
        exit 1)
      fmt
  in
  let lines =
    String.split_on_char '\n' (read_file file) |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> fail None "empty live stream"
  | header :: records ->
      let hf =
        match parse header with
        | exception Bad msg -> fail (Some 1) "invalid JSON: %s" msg
        | Obj f -> f
        | _ -> fail (Some 1) "header line is not a JSON object"
      in
      (match List.assoc_opt "schema" hf with
      | Some (Str "adhoc-live/1") -> ()
      | Some (Str other) -> fail (Some 1) "unknown schema %S (expected \"adhoc-live/1\")" other
      | _ -> fail (Some 1) "missing \"schema\" member");
      let window =
        match List.assoc_opt "window" hf with
        | Some (Num w) when Float.is_integer w && w >= 1. -> int_of_float w
        | _ -> fail (Some 1) "header lacks a positive integer \"window\""
      in
      (match List.assoc_opt "top_k" hf with
      | Some (Num k) when Float.is_integer k && k >= 1. -> ()
      | _ -> fail (Some 1) "header lacks a positive integer \"top_k\"");
      if records = [] then fail None "no records after the header";
      let nrec = List.length records in
      let counter_names =
        [ "injected"; "dropped"; "delivered"; "self"; "sends"; "collisions"; "control" ]
      in
      (* Window-counter sums, accumulated in [counter_names] order and
         looked up by key only (never iterated). *)
      let sums = Hashtbl.create 8 in
      List.iter (fun n -> Hashtbl.replace sums n 0) counter_names;
      let nwindows = ref 0 in
      let expect_w = ref None in
      let int_member lineno f name =
        match List.assoc_opt name f with
        | Some (Num v) when Float.is_integer v && v >= 0. -> int_of_float v
        | _ -> fail (Some lineno) "missing or malformed non-negative integer %S" name
      in
      let quantile_member lineno f name =
        match List.assoc_opt name f with
        | Some (Num _ | Null) -> ()
        | _ -> fail (Some lineno) "missing or malformed %S (number or null)" name
      in
      List.iteri
        (fun i line ->
          let lineno = i + 2 in
          let f =
            match parse line with
            | exception Bad msg -> fail (Some lineno) "invalid JSON: %s" msg
            | Obj f -> f
            | _ -> fail (Some lineno) "record is not a JSON object"
          in
          match List.assoc_opt "final" f with
          | Some (Bool true) ->
              if i <> nrec - 1 then
                fail (Some lineno) "\"final\" record is not the last line";
              let windows = int_member lineno f "windows" in
              if windows <> !nwindows then
                fail (Some lineno) "final says %d windows, the stream has %d" windows
                  !nwindows;
              ignore (int_member lineno f "steps");
              ignore (int_member lineno f "events");
              ignore (int_member lineno f "buffered");
              ignore (int_member lineno f "violations");
              ignore (int_member lineno f "anomalies");
              (match List.assoc_opt "healthy" f with
              | Some (Bool _) -> ()
              | _ -> fail (Some lineno) "final record lacks a boolean \"healthy\"");
              List.iter
                (fun name ->
                  let v = int_member lineno f name in
                  let s = Hashtbl.find sums name in
                  if v <> s then
                    fail (Some lineno)
                      "final %s = %d but the windows sum to %d (truncated or corrupt \
                       stream)"
                      name v s)
                counter_names;
              List.iter (quantile_member lineno f)
                [
                  "energy"; "latency_mean"; "latency_p50"; "latency_p90"; "latency_p95";
                  "latency_p99"; "hops_mean"; "hops_p50"; "hops_p95"; "occupancy_mean";
                  "occupancy_p50"; "occupancy_p95"; "occupancy_max";
                ];
              (match (List.assoc_opt "top_edges" f, List.assoc_opt "top_nodes" f) with
              | Some (Arr _), Some (Arr _) -> ()
              | _ ->
                  fail (Some lineno) "final record lacks \"top_edges\" / \"top_nodes\" arrays")
          | Some _ -> fail (Some lineno) "\"final\" must be true"
          | None ->
              if i = nrec - 1 then fail (Some lineno) "last line is not the \"final\" record";
              incr nwindows;
              let w = int_member lineno f "w" in
              (match !expect_w with
              | Some e when w <> e ->
                  fail (Some lineno)
                    "window index %d, expected %d (tumbling windows are consecutive)" w e
              | _ -> ());
              expect_w := Some (w + 1);
              (match List.assoc_opt "steps" f with
              | Some (Arr [ Num lo; Num hi ])
                when Float.is_integer lo && Float.is_integer hi
                     && int_of_float lo = w * window
                     && int_of_float hi = (w * window) + window - 1 ->
                  ()
              | _ ->
                  fail (Some lineno) "window %d must cover steps [%d,%d]" w (w * window)
                    ((w * window) + window - 1));
              ignore (int_member lineno f "buffered");
              ignore (int_member lineno f "violations");
              List.iter
                (fun name ->
                  let v = int_member lineno f name in
                  Hashtbl.replace sums name (Hashtbl.find sums name + v))
                counter_names;
              List.iter (quantile_member lineno f)
                [
                  "latency_p50"; "latency_p95"; "hops_p50"; "hops_p95"; "occupancy_p50";
                  "occupancy_p95";
                ];
              (match List.assoc_opt "top_edges" f with
              | Some (Arr _) -> ()
              | _ -> fail (Some lineno) "window record lacks a \"top_edges\" array"))
        records;
      Printf.printf "%s: ok (%d windows + final, window = %d steps)\n" file !nwindows window

(* One JSON object per non-empty line, each with a numeric "step". *)
let check_jsonl file =
  let lines =
    String.split_on_char '\n' (read_file file) |> List.filter (fun l -> l <> "")
  in
  if lines = [] then begin
    Printf.eprintf "%s: empty trace\n" file;
    exit 1
  end;
  List.iteri
    (fun i line ->
      match parse line with
      | exception Bad msg ->
          Printf.eprintf "%s:%d: invalid JSON: %s\n" file (i + 1) msg;
          exit 1
      | Obj fields -> (
          match List.assoc_opt "step" fields with
          | Some (Num _) -> ()
          | _ ->
              Printf.eprintf "%s:%d: sample lacks a numeric \"step\"\n" file (i + 1);
              exit 1)
      | _ ->
          Printf.eprintf "%s:%d: line is not a JSON object\n" file (i + 1);
          exit 1)
    lines;
  Printf.printf "%s: ok (%d samples)\n" file (List.length lines)

let () =
  match Sys.argv with
  | [| _; f |] -> check_document f
  | [| _; "--jsonl"; f |] -> check_jsonl f
  | [| _; "--live"; f |] -> check_live f
  | [| _; "--lint"; f |] -> check_lint_report f
  | [| _; "--chrome-trace"; f |] -> check_chrome_trace f
  | [| _; "--compare"; base; cur |] -> compare_docs ~tolerance:0.25 base cur
  | [| _; "--compare"; base; cur; "--span-tolerance"; r |] -> (
      match float_of_string_opt r with
      | Some tol when tol >= 0. -> compare_docs ~tolerance:tol base cur
      | _ ->
          prerr_endline "json_check: --span-tolerance expects a non-negative float";
          exit 2)
  | _ ->
      prerr_endline
        "usage: json_check FILE\n\
        \       json_check --jsonl FILE\n\
        \       json_check --live FILE\n\
        \       json_check --lint FILE\n\
        \       json_check --chrome-trace FILE\n\
        \       json_check --compare BASELINE CURRENT [--span-tolerance R]";
      exit 2
