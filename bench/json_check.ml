(* Well-formedness check for the bench harness's --json output and the
   engines' JSONL traces.

   The toolchain ships no JSON library, so this is a small recursive-descent
   parser covering the full JSON grammar.  Beyond syntax it checks the
   adhoc-bench/2 shape: a top-level object whose "schema" is
   "adhoc-bench/2" and whose "experiments" member is a non-empty array of
   objects each carrying "id", "seconds", "metrics", well-formed "spans"
   (label / count / seconds), an "obs" metric snapshot and a "trace"
   pointer (string or null).  Version-1 documents are rejected with a
   dedicated error.

     json_check FILE          exits 0 and prints a summary if the file is valid
     json_check --jsonl FILE  validates a per-step trace: every line one JSON
                              object with a numeric "step" member *)

exception Bad of string

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let k = String.length lit in
    if !pos + k <= n && String.sub s !pos k = lit then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "truncated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            (* Code points are validated, not decoded: only syntax matters. *)
            | Some _ -> Buffer.add_char buf '?'
            | None -> fail "bad \\u escape")
        | _ -> fail "bad escape");
        go ()
      end
      else if Char.code c < 0x20 then fail "unescaped control character"
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements (v :: acc)
            | Some ']' ->
                incr pos;
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let span_ok = function
  | Obj fields -> (
      match
        ( List.assoc_opt "label" fields,
          List.assoc_opt "count" fields,
          List.assoc_opt "seconds" fields )
      with
      | Some (Str _), Some (Num _), Some (Num _) -> true
      | _ -> false)
  | _ -> false

let experiment_ok = function
  | Obj fields ->
      List.mem_assoc "id" fields
      && List.mem_assoc "seconds" fields
      && List.mem_assoc "metrics" fields
      && (match List.assoc_opt "spans" fields with
         | Some (Arr spans) -> List.for_all span_ok spans
         | _ -> false)
      && (match List.assoc_opt "obs" fields with Some (Obj _) -> true | _ -> false)
      && (match List.assoc_opt "trace" fields with
         | Some (Str _ | Null) -> true
         | _ -> false)
  | _ -> false

let read_file file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_document file =
  match parse (read_file file) with
  | exception Bad msg ->
      Printf.eprintf "%s: invalid JSON: %s\n" file msg;
      exit 1
  | Obj fields -> (
      (match List.assoc_opt "schema" fields with
      | Some (Str "adhoc-bench/2") -> ()
      | Some (Str "adhoc-bench/1") ->
          Printf.eprintf
            "%s: version-1 document (adhoc-bench/1); this checker validates \
             adhoc-bench/2 — regenerate with the current bench harness\n"
            file;
          exit 1
      | Some (Str other) ->
          Printf.eprintf "%s: unknown schema %S (expected \"adhoc-bench/2\")\n" file other;
          exit 1
      | _ ->
          Printf.eprintf "%s: missing \"schema\" member\n" file;
          exit 1);
      match List.assoc_opt "experiments" fields with
      | Some (Arr (_ :: _ as exps)) when List.for_all experiment_ok exps ->
          Printf.printf "%s: ok (%d experiments)\n" file (List.length exps)
      | Some (Arr []) ->
          Printf.eprintf "%s: no experiments recorded\n" file;
          exit 1
      | _ ->
          Printf.eprintf "%s: missing or malformed \"experiments\" array\n" file;
          exit 1)
  | _ ->
      Printf.eprintf "%s: top-level value is not an object\n" file;
      exit 1

(* One JSON object per non-empty line, each with a numeric "step". *)
let check_jsonl file =
  let lines =
    String.split_on_char '\n' (read_file file) |> List.filter (fun l -> l <> "")
  in
  if lines = [] then begin
    Printf.eprintf "%s: empty trace\n" file;
    exit 1
  end;
  List.iteri
    (fun i line ->
      match parse line with
      | exception Bad msg ->
          Printf.eprintf "%s:%d: invalid JSON: %s\n" file (i + 1) msg;
          exit 1
      | Obj fields -> (
          match List.assoc_opt "step" fields with
          | Some (Num _) -> ()
          | _ ->
              Printf.eprintf "%s:%d: sample lacks a numeric \"step\"\n" file (i + 1);
              exit 1)
      | _ ->
          Printf.eprintf "%s:%d: line is not a JSON object\n" file (i + 1);
          exit 1)
    lines;
  Printf.printf "%s: ok (%d samples)\n" file (List.length lines)

let () =
  match Sys.argv with
  | [| _; f |] -> check_document f
  | [| _; "--jsonl"; f |] -> check_jsonl f
  | _ ->
      prerr_endline "usage: json_check [--jsonl] FILE";
      exit 2
