(* Experiments E7-E10: routing claims (paper Section 3).

   E7  Theorem 3.1 — (T,γ)-balancing vs OPT with MAC given: throughput
       approaches (1-ε)·OPT as the horizon grows; buffer factor and cost
       factor track the theorem's O(L̄/ε) and O(1/ε)
   E8  Thm 3.3/Lem 3.2 — random 1/(2Iₑ) MAC: per-edge collision probability
       ≤ 1/2; throughput within the Ω(1/I) regime
   E9  Corollary 3.5 — end-to-end ΘALG + (T,γ,I)-balancing vs n
   E10 Theorem 3.8 — honeycomb algorithm: competitive ratio flat in n *)

open Adhoc
open Common
module Prng = Util.Prng
module Graph = Graphs.Graph
module Workload = Routing.Workload
module Engine = Routing.Engine
module Balancing = Routing.Balancing
module Mac = Mac_protocols.Mac
module Conflict = Interference.Conflict

(* Shared live-telemetry probe (E7's tail and the standalone B3): run the
   Theorem 3.1 scenario with an event log and an Obs.Live recorder
   attached, print the window stream, and record the cumulative summary
   as the experiment's "live" member plus pinned live:* headline metrics.
   Everything here is a pure function of the event stream, so json_check
   --compare holds it exactly across --jobs. *)
let live_probe () =
  let rng, b = uniform_instance 1000 150 in
  let events = Obs.Event.create () in
  let live = Obs.Live.create ~window:500 () in
  let obs = Obs.create ~events ~live () in
  let horizon = 4000 in
  let r =
    Pipeline.run_scenario1 ~obs ~epsilon:0.5 ~horizon ~attempts:(2 * horizon) ~flows:2 ~rng b
  in
  ignore r;
  let c = Obs.Live.finish live in
  let t =
    Table.create ~title:"live stream (window = 500 steps, seed 1000, n = 150)"
      [
        ("steps", Table.Right);
        ("injected", Table.Right);
        ("delivered", Table.Right);
        ("sends", Table.Right);
        ("buffered", Table.Right);
        ("latency p95", Table.Right);
      ]
  in
  List.iter
    (fun (w : Obs.Live.window) ->
      Table.add_row t
        [
          Printf.sprintf "%d-%d" w.Obs.Live.step_lo w.Obs.Live.step_hi;
          string_of_int w.Obs.Live.injected;
          string_of_int w.Obs.Live.delivered;
          string_of_int w.Obs.Live.sends;
          string_of_int w.Obs.Live.buffered;
          fmt_ratio w.Obs.Live.latency_p95;
        ])
    (Obs.Live.windows live);
  Table.print t;
  Printf.printf
    "cumulative: %d events in %d windows, delivered %d, healthy %s, latency p95 %s\n"
    c.Obs.Live.events c.Obs.Live.windows c.Obs.Live.c_delivered
    (if c.Obs.Live.healthy then "yes" else "NO")
    (fmt_ratio c.Obs.Live.c_latency_p95);
  record_int "live:events" c.Obs.Live.events;
  record_int "live:windows" c.Obs.Live.windows;
  record_int "live:delivered" c.Obs.Live.c_delivered;
  record_int "live:violations" c.Obs.Live.c_violations;
  record_live (live_json live)

let b3 () =
  header "B3: live streaming telemetry probe (Theorem 3.1 scenario)";
  live_probe ()

let e7 () =
  header "E7 (Theorem 3.1): balancing vs certified OPT, MAC given";
  (* Horizon sweep, per seed: throughput climbs as deliveries amortise the
     additive slack r (in-flight inventory).  Flows with longer paths (the
     later seeds) need proportionally longer horizons - r scales with
     L(T + gamma c). *)
  let t =
    Table.create ~title:"throughput ratio vs horizon (epsilon = 0.5, 2 flows, n = 150)"
      ([ ("horizon", Table.Right) ]
      @ List.map (fun s -> (Printf.sprintf "seed %d" s, Table.Right)) (seeds 3)
      @ [ ("cost ratio (max)", Table.Right); ("bound 1+2/eps", Table.Right) ])
  in
  let last_tput = ref 0. and last_cost = ref Float.nan in
  List.iter
    (fun horizon ->
      let costs = ref [] and tputs = ref [] in
      let cells =
        List.map
          (fun seed ->
            let rng, b = uniform_instance seed 150 in
            let r =
              Pipeline.run_scenario1 ?obs:(current_obs ()) ~epsilon:0.5 ~horizon ~attempts:(2 * horizon) ~flows:2
                ~rng b
            in
            if r.Pipeline.stats.Engine.delivered > 0 then
              costs := r.Pipeline.cost_ratio :: !costs;
            tputs := r.Pipeline.throughput_ratio :: !tputs;
            fmt3 r.Pipeline.throughput_ratio)
          (seeds 3)
      in
      last_tput := Stats.mean (Array.of_list !tputs);
      last_cost :=
        (match !costs with [] -> Float.nan | c :: cs -> List.fold_left Float.max c cs);
      Table.add_row t
        ([ string_of_int horizon ]
        @ cells
        @ [ fmt_ratio !last_cost; fmt2 (1. +. (2. /. 0.5)) ]))
    [ 2000; 8000; 32000; 64000 ];
  Table.print t;
  record_float "tput_ratio_mean_longest_horizon" !last_tput;
  record_float "cost_ratio_max_longest_horizon" !last_cost;
  (* Buffer-scale ablation at fixed epsilon: cap the buffers below the
     theorem's H and watch admission control trade throughput away. *)
  let t =
    Table.create ~title:"buffer ablation (seed 1000, horizon 16000, derived H scaled)"
      [
        ("capacity / H", Table.Right);
        ("capacity", Table.Right);
        ("dropped", Table.Right);
        ("tput ratio", Table.Right);
      ]
  in
  List.iter
    (fun scale ->
      let rng, b = uniform_instance 1000 150 in
      let horizon = 16000 in
      let cost = Cost.energy ~kappa:2. in
      let config =
        { Workload.horizon; attempts = 2 * horizon; slack = 12; interference_free = true }
      in
      let w =
        Workload.flows ~conflict:b.Pipeline.conflict config ~rng ~graph:b.Pipeline.overlay
          ~cost ~num_flows:2
      in
      let params =
        Balancing.Derive.theorem_3_1 ~opt_buffer:w.Workload.opt.Workload.max_buffer
          ~opt_avg_hops:w.Workload.opt.Workload.avg_hops
          ~opt_avg_cost:(Float.max w.Workload.opt.Workload.avg_cost 1e-9)
          ~delta:w.Workload.opt.Workload.delta ~epsilon:0.5
      in
      let capacity =
        max 2 (int_of_float (scale *. float_of_int params.Balancing.capacity))
      in
      let params = { params with Balancing.capacity } in
      let stats =
        Engine.run_mac_given ~cooldown:horizon ~pad:b.Pipeline.conflict
          ~graph:b.Pipeline.overlay ~cost ~params w
      in
      Table.add_row t
        [
          fmt2 scale;
          string_of_int capacity;
          string_of_int stats.Engine.dropped;
          fmt3 (Engine.throughput_ratio stats w.Workload.opt);
        ])
    [ 0.1; 0.25; 0.5; 1. ];
  Table.print t;
  (* Epsilon sweep: H scales as O(L/eps); T and gamma are eps-independent. *)
  let t =
    Table.create ~title:"epsilon sweep (seed 1000, horizon 16000)"
      [
        ("epsilon", Table.Right);
        ("buffer factor H/B", Table.Right);
        ("tput ratio", Table.Right);
        ("cost ratio", Table.Right);
        ("cost bound 1+2/eps", Table.Right);
      ]
  in
  List.iter
    (fun epsilon ->
      let rng, b = uniform_instance 1000 150 in
      let r = Pipeline.run_scenario1 ?obs:(current_obs ()) ~epsilon ~horizon:16000 ~attempts:32000 ~flows:2 ~rng b in
      Table.add_row t
        [
          fmt2 epsilon;
          fmt2
            (float_of_int r.Pipeline.params.Balancing.capacity
            /. float_of_int (max 1 r.Pipeline.opt.Workload.max_buffer));
          fmt3 r.Pipeline.throughput_ratio;
          fmt_ratio r.Pipeline.cost_ratio;
          fmt2 (1. +. (2. /. epsilon));
        ])
    [ 0.9; 0.7; 0.5; 0.3 ];
  Table.print t;
  print_endline
    "paper: throughput climbs toward (1-eps)OPT as the additive slack";
  print_endline
    "amortises; smaller buffers force drops and lower throughput (the B'";
  print_endline "axis); H/B grows as O(L/eps); cost ratio stays under 1+2/eps.";
  print_newline ();
  live_probe ()

(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8 (Theorem 3.3 / Lemma 3.2): random 1/(2Ie) MAC";
  (* Lemma 3.2: measure the collision probability of active edges when all
     edges request every step. *)
  let t =
    Table.create ~title:"Lemma 3.2: collision probability of an active edge (<= 1/2)"
      [
        ("n", Table.Right);
        ("I", Table.Right);
        ("max analytic bound", Table.Right);
        ("mean measured", Table.Right);
        ("max measured (>=200 activations)", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let _, b = uniform_instance ~range_factor:1.2 42 n in
      let m = Graph.num_edges b.Pipeline.overlay in
      let mac = Mac.random_interference ~rng:(Prng.create 7) b.Pipeline.conflict in
      let requests =
        Graph.fold_edges b.Pipeline.overlay ~init:[] ~f:(fun acc e edge ->
            { Mac.edge = e; sender = edge.Graph.u; benefit = 1. } :: acc)
      in
      let active_count = Array.make m 0 and collided_count = Array.make m 0 in
      for step = 1 to 20000 do
        let granted = mac.Mac.select ~step requests in
        List.iter
          (fun (r : Mac.request) ->
            active_count.(r.Mac.edge) <- active_count.(r.Mac.edge) + 1;
            let hit =
              List.exists
                (fun (r' : Mac.request) ->
                  r'.Mac.edge <> r.Mac.edge
                  && Conflict.interfere b.Pipeline.conflict r.Mac.edge r'.Mac.edge)
                granted
            in
            if hit then collided_count.(r.Mac.edge) <- collided_count.(r.Mac.edge) + 1)
          granted
      done;
      (* The provable quantity: the union bound sum over I(e) of 1/(2 I_e'),
         which Lemma 3.2 shows is at most 1/2 for every edge. *)
      let bounds = Conflict.neighborhood_bounds b.Pipeline.conflict in
      let analytic = ref 0. in
      Array.iteri
        (fun e neighbors ->
          ignore e;
          let s =
            Array.fold_left
              (fun acc e' -> acc +. (1. /. (2. *. float_of_int (max 1 bounds.(e')))))
              0. neighbors
          in
          analytic := Float.max !analytic s)
        b.Pipeline.conflict.Conflict.sets;
      let measured = ref [] and max_solid = ref 0. in
      Array.iteri
        (fun e a ->
          if a > 0 then begin
            let p = float_of_int collided_count.(e) /. float_of_int a in
            measured := p :: !measured;
            if a >= 200 then max_solid := Float.max !max_solid p
          end)
        active_count;
      Table.add_row t
        [
          string_of_int n;
          string_of_int b.Pipeline.interference_number;
          fmt3 !analytic;
          fmt3 (Stats.mean (Array.of_list !measured));
          fmt3 !max_solid;
        ])
    [ 64; 128; 256 ];
  Table.print t;
  (* Throughput under the random MAC, against the interference-oblivious
     certified OPT. *)
  let t =
    Table.create ~title:"throughput under random MAC (horizon 80000, 2 flows)"
      [
        ("n", Table.Right);
        ("I", Table.Right);
        ("tput ratio", Table.Right);
        ("ratio x 8I", Table.Right);
        ("CSMA tput (same workload)", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let rng, b = uniform_instance ~range_factor:1.1 ~delta:0.2 11 n in
      let r =
        Pipeline.run_scenario2 ?obs:(current_obs ()) ~epsilon:0.5 ~horizon:80000 ~attempts:80000 ~flows:2
          ~max_flow_hops:3 ~rng b
      in
      (* The same certified workload under a carrier-sense MAC: grants are
         maximal independent sets, so nothing collides and concurrency far
         exceeds the conservative 1/(2Ie) coin flips. *)
      let csma_tput =
        let rng2, b2 = uniform_instance ~range_factor:1.1 ~delta:0.2 11 n in
        let cost = Cost.energy ~kappa:2. in
        let horizon = 80000 in
        let config =
          { Workload.horizon; attempts = horizon; slack = 12; interference_free = false }
        in
        let w =
          Workload.flows ~max_hops:3 config ~rng:rng2 ~graph:b2.Pipeline.overlay ~cost
            ~num_flows:2
        in
        let params =
          Balancing.Derive.theorem_3_3 ~opt_buffer:w.Workload.opt.Workload.max_buffer
            ~opt_avg_hops:w.Workload.opt.Workload.avg_hops
            ~opt_avg_cost:(Float.max w.Workload.opt.Workload.avg_cost 1e-9)
            ~epsilon:0.5
        in
        let mac = Mac.csma ~rng:(Prng.create (n + 1)) b2.Pipeline.conflict in
        let stats =
          Engine.run_with_mac ~cooldown:horizon ~collisions:b2.Pipeline.conflict
            ~graph:b2.Pipeline.overlay ~cost ~params ~mac w
        in
        Engine.throughput_ratio stats w.Workload.opt
      in
      record_float (Printf.sprintf "tput_ratio_random_mac_n%d" n)
        r.Pipeline.throughput_ratio;
      record_float (Printf.sprintf "tput_ratio_csma_n%d" n) csma_tput;
      Table.add_row t
        [
          string_of_int n;
          string_of_int b.Pipeline.interference_number;
          fmt4 r.Pipeline.throughput_ratio;
          fmt2 (r.Pipeline.throughput_ratio *. 8. *. float_of_int b.Pipeline.interference_number);
          fmt4 csma_tput;
        ])
    [ 48; 96; 160 ];
  Table.print t;
  print_endline
    "paper: collision probability <= 1/2 per active edge (Lemma 3.2); the";
  print_endline "throughput ratio scaled by 8I stays bounded away from 0 (Theorem 3.3)."

(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9 (Corollary 3.5): end-to-end competitiveness vs n (random nodes)";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("I", Table.Right);
        ("ln n", Table.Right);
        ("tput ratio", Table.Right);
        ("ratio x I", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let rng, b = uniform_instance ~range_factor:1.1 ~delta:0.2 23 n in
      let r =
        Pipeline.run_scenario2 ?obs:(current_obs ()) ~epsilon:0.5 ~horizon:80000 ~attempts:80000 ~flows:2
          ~max_flow_hops:3 ~rng b
      in
      record_float (Printf.sprintf "tput_ratio_n%d" n) r.Pipeline.throughput_ratio;
      record_float
        (Printf.sprintf "tput_ratio_times_I_n%d" n)
        (r.Pipeline.throughput_ratio *. float_of_int b.Pipeline.interference_number);
      Table.add_row t
        [
          string_of_int n;
          string_of_int b.Pipeline.interference_number;
          fmt2 (log (float_of_int n));
          fmt4 r.Pipeline.throughput_ratio;
          fmt2 (r.Pipeline.throughput_ratio *. float_of_int b.Pipeline.interference_number);
        ])
    [ 32; 64; 128; 256 ];
  Table.print t;
  print_endline
    "paper: with I = O(log n) (E5), the end-to-end stack is O(1/log n)-";
  print_endline "competitive: ratio x I stays roughly flat while 1/ratio grows like I."

(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10 (Theorem 3.8): honeycomb algorithm, fixed transmission strength";
  let t =
    Table.create
      [
        ("box side", Table.Right);
        ("n", Table.Right);
        ("hexagons", Table.Right);
        ("tput ratio", Table.Right);
        ("random-MAC tput", Table.Right);
      ]
  in
  List.iter
    (fun (side, n) ->
      let rng = Prng.create 31 in
      let box = Geom.Box.square side in
      let points = Pointset.Generators.uniform ~box rng n in
      let b = Pipeline.prepare ~theta:theta_default ~range:1.3 points in
      let hexes =
        Geom.Hexgrid.group_points (Geom.Hexgrid.make ~side:4.) points |> List.length
      in
      let r =
        Pipeline.run_honeycomb ?obs:(current_obs ()) ~epsilon:0.5 ~horizon:30000 ~attempts:30000 ~flows:2
          ~max_flow_hops:4 ~rng:(Prng.create 32) b
      in
      let r2 =
        Pipeline.run_scenario2 ?obs:(current_obs ()) ~epsilon:0.5 ~horizon:30000 ~attempts:30000 ~flows:2
          ~max_flow_hops:4 ~rng:(Prng.create 32) b
      in
      record_float (Printf.sprintf "honeycomb_tput_ratio_n%d" n)
        r.Pipeline.throughput_ratio;
      record_float (Printf.sprintf "random_mac_tput_ratio_n%d" n)
        r2.Pipeline.throughput_ratio;
      Table.add_row t
        [
          fmt2 side;
          string_of_int n;
          string_of_int hexes;
          fmt4 r.Pipeline.throughput_ratio;
          fmt4 r2.Pipeline.throughput_ratio;
        ])
    [ (6., 60); (9., 135); (12., 240); (15., 375) ];
  Table.print t;
  print_endline
    "paper: the honeycomb ratio is O(1) - flat as the network grows - while";
  print_endline "the generic random MAC degrades with I (its ratio falls with n)."
