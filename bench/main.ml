(* Benchmark harness: regenerates every experiment in EXPERIMENTS.md.

     dune exec bench/main.exe              # run everything
     dune exec bench/main.exe -- e5 e7     # run selected experiments
     dune exec bench/main.exe -- quick     # skip the slowest routing sweeps
     dune exec bench/main.exe -- quick --json out.json
                                           # also write machine-readable results
     dune exec bench/main.exe -- e7 --json out.json --trace-dir traces
                                           # + one per-step JSONL trace per experiment
     dune exec bench/main.exe -- quick --chrome-trace-dir traces
                                           # + one Chrome trace-event file per experiment

   Experiment ids: e1..e20 (paper claims and extensions), b1
   (micro-benchmarks), b2 (multicore scaling sweep), b3 (live streaming
   telemetry probe), b4 (routing-throughput scaling sweep).

   --jobs N sizes the shared domain pool (default
   Pool.default_jobs (), i.e. the machine's recommended domain count
   clamped).  Every metric is bit-identical for every N; only wall-clock
   changes.

   --json FILE writes one object per executed experiment (schema
   adhoc-bench/6): its id, title, wall-clock seconds, the headline metrics
   the experiment recorded, the observability layer's span timings (with
   per-span GC deltas) and metric snapshot, the live-telemetry cumulative
   summary when the experiment ran an Obs.Live recorder ("live", null
   otherwise), and pointers to the experiment's trace / chrome-trace files
   when --trace-dir / --chrome-trace-dir were given (see EXPERIMENTS.md
   for the schema). *)

module Obs = Adhoc.Obs

let all : (string * string * (unit -> unit)) list =
  [
    ("e1", "Lemma 2.1: connectivity + degree bound", Exp_topology.e1);
    ("e2", "Theorem 2.2: O(1) energy-stretch", Exp_topology.e2);
    ("e3", "Theorem 2.7: distance-stretch, civilized", Exp_topology.e3);
    ("e4", "open problem: non-civilized distance-stretch", Exp_topology.e4);
    ("e5", "Lemma 2.10: interference number O(log n)", Exp_interference.e5);
    ("e6", "Thm 2.8/Lem 2.9: theta-path replacement", Exp_interference.e6);
    ("e7", "Theorem 3.1: balancing vs OPT, MAC given", Exp_routing.e7);
    ("e8", "Thm 3.3/Lem 3.2: random MAC", Exp_routing.e8);
    ("e9", "Corollary 3.5: end-to-end vs n", Exp_routing.e9);
    ("e10", "Theorem 3.8: honeycomb algorithm", Exp_routing.e10);
    ("e11", "baseline topology comparison", Exp_baselines.e11);
    ("e12", "intro claim: kNN vs ThetaALG", Exp_extensions.e12);
    ("e13", "ablation: theta sweep + latency", Exp_extensions.e13);
    ("e14", "related work: geographic routing", Exp_extensions.e14);
    ("e15", "related work: queueing disciplines", Exp_extensions.e15);
    ("e16", "model fidelity: protocol vs SINR", Exp_extensions.e16);
    ("e17", "maintenance locality under motion", Exp_extensions.e17);
    ("e18", "extension: cost-aware anycast", Exp_extensions.e18);
    ("e19", "Section 3.2 remark: reduced control traffic", Exp_extensions.e19);
    ("e20", "context: Gupta-Kumar capacity scaling", Exp_extensions.e20);
    ("b1", "micro-benchmarks", Micro.run);
    ("b2", "multicore scaling sweep", Exp_scaling.run);
    ("b3", "live streaming telemetry probe", Exp_routing.b3);
    ("b4", "routing-throughput scaling sweep", Exp_throughput.run);
    ("figures", "SVG figures for key experiments", Figures.run);
  ]

(* "figures" writes files, so it is opt-in rather than part of the default
   full run. *)
let default_set = List.filter (fun (id, _, _) -> id <> "figures") all

(* b2 is part of quick so bench-smoke exercises the sharded builders at the
   full size sweep (up to n = 65536) and json_check can pin its structural
   edges:* metrics and pool counters against the baseline; b3 is part of
   quick so every baseline carries a non-null "live" member for json_check
   to shape-check and pin; b4 is part of quick so the parallel routing
   step loop's throughput metrics, pool counters and bit-identity pins
   are in every baseline too. *)
let quick_set = [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e11"; "e12"; "e14"; "e15"; "e16"; "e17"; "e18"; "b1"; "b2"; "b3"; "b4" ]

(* Extract "--opt VALUE" from anywhere in the argument list. *)
let rec split_opt name acc = function
  | flag :: value :: rest when flag = name -> (Some value, List.rev_append acc rest)
  | [ flag ] when flag = name ->
      Printf.eprintf "%s requires an argument\n" name;
      exit 1
  | a :: rest -> split_opt name (a :: acc) rest
  | [] -> (None, List.rev acc)

(* One executed experiment, with everything the v2 schema embeds. *)
type outcome = {
  id : string;
  title : string;
  seconds : float;
  metrics : (string * Common.Json.t) list;  (* the experiment's headline numbers *)
  spans : Obs.Span.total list;
  obs_snapshot : (string * Obs.Metrics.value) list;
  live : Common.Json.t;  (* cumulative live-telemetry summary, or Null *)
  trace_file : string option;
  chrome_file : string option;
}

let span_json (s : Obs.Span.total) =
  let open Common.Json in
  Obj
    [
      ("label", String s.Obs.Span.label);
      ("count", Int s.Obs.Span.count);
      ("seconds", Float s.Obs.Span.seconds);
      ("self_seconds", Float s.Obs.Span.self_seconds);
      ("gc_minor_words", Float s.Obs.Span.minor_words);
      ("gc_promoted_words", Float s.Obs.Span.promoted_words);
      ("gc_minor_collections", Int s.Obs.Span.minor_collections);
      ("gc_major_collections", Int s.Obs.Span.major_collections);
    ]

let metric_value_json v =
  let open Common.Json in
  match v with
  | Obs.Metrics.Counter c -> Int c
  | Obs.Metrics.Gauge g -> Float g
  | Obs.Metrics.Histogram { buckets; counts; total; sum } ->
      Obj
        [
          ("buckets", List (Array.to_list (Array.map (fun b -> Float b) buckets)));
          ("counts", List (Array.to_list (Array.map (fun c -> Int c) counts)));
          ("total", Int total);
          ("sum", Float sum);
        ]

let outcome_json o =
  let open Common.Json in
  Obj
    [
      ("id", String o.id);
      ("title", String o.title);
      ("seconds", Float o.seconds);
      ("metrics", Obj o.metrics);
      ("spans", List (List.map span_json o.spans));
      ("obs", Obj (List.map (fun (n, v) -> (n, metric_value_json v)) o.obs_snapshot));
      ("live", o.live);
      ("trace", match o.trace_file with None -> Null | Some f -> String f);
      ("chrome_trace", match o.chrome_file with None -> Null | Some f -> String f);
    ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json_file, args = split_opt "--json" [] args in
  let trace_dir, args = split_opt "--trace-dir" [] args in
  let chrome_dir, args = split_opt "--chrome-trace-dir" [] args in
  let jobs_arg, args = split_opt "--jobs" [] args in
  let jobs =
    match jobs_arg with
    | None -> Adhoc.Util.Pool.default_jobs ()
    | Some s -> (
        match int_of_string_opt s with
        | Some j when j >= 1 -> j
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" s;
            exit 1)
  in
  (* Open the output up front so a bad path fails before hours of
     experiments, not after. *)
  let json_out =
    match json_file with
    | None -> None
    | Some file -> (
        try Some (file, open_out file)
        with Sys_error msg ->
          Printf.eprintf "--json: %s\n" msg;
          exit 1)
  in
  let ensure_dir flag dir =
    if not (Sys.file_exists dir) then
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "%s: %s: %s\n" flag dir (Unix.error_message e);
        exit 1
  in
  Option.iter (ensure_dir "--trace-dir") trace_dir;
  Option.iter (ensure_dir "--chrome-trace-dir") chrome_dir;
  let selected =
    match args with
    | [] -> List.map (fun (id, _, _) -> id) default_set
    | [ "quick" ] -> quick_set
    | ids -> ids
  in
  print_endline "Reproduction harness: Jia, Rajaraman, Scheideler (SPAA 2003),";
  print_endline "\"On Local Algorithms for Topology Control and Routing in Ad Hoc Networks\".";
  let pool = Adhoc.Util.Pool.create ~jobs () in
  Common.pool := Some pool;
  Printf.printf "domain pool: %d job%s\n" (Adhoc.Util.Pool.jobs pool)
    (if Adhoc.Util.Pool.jobs pool = 1 then "" else "s");
  let results = ref [] in
  List.iter
    (fun id ->
      match List.find_opt (fun (i, _, _) -> i = id) all with
      | Some (_, title, f) ->
          ignore (Common.take_metrics ());
          ignore (Common.take_live ());
          (* A fresh sink per experiment so spans, metrics and traces are
             attributed to exactly one run; experiments pick it up through
             Common.current_obs. *)
          let trace =
            Option.map (fun _ -> Obs.Trace.create ~stride:10 ()) trace_dir
          in
          (* One recorder per experiment so Chrome exports are attributed
             to exactly one run; GC span deltas are always on here — the
             harness is measuring anyway. *)
          let domprof = Option.map (fun _ -> Obs.Domprof.create ()) chrome_dir in
          let sink = Obs.create ?trace ?domprof ~gc:true () in
          Common.obs_sink := Some sink;
          (* Pool regions surface as "pool/<label>" spans and counters in
             this experiment's snapshot; only top-level owner-domain
             regions fire hooks, so the snapshot is jobs-invariant. *)
          Obs.attach_pool sink pool;
          let t0 = Unix.gettimeofday () in
          f ();
          let seconds = Unix.gettimeofday () -. t0 in
          Obs.detach_pool pool;
          Common.obs_sink := None;
          let trace_file =
            match (trace_dir, sink.Obs.trace) with
            | Some dir, Some tr when Obs.Trace.length tr > 0 ->
                let file = Filename.concat dir (id ^ ".jsonl") in
                Obs.Trace.save_jsonl tr file;
                Some file
            | _ -> None
          in
          let chrome_file =
            match (chrome_dir, domprof) with
            | Some dir, Some dp when Obs.Domprof.length dp > 0 ->
                let file = Filename.concat dir (id ^ ".trace.json") in
                Obs.Chrome_trace.save ~process_name:("adhoc bench " ^ id) dp file;
                Some file
            | _ -> None
          in
          results :=
            {
              id;
              title;
              seconds;
              metrics = Common.take_metrics ();
              spans = Obs.Span.totals sink.Obs.spans;
              obs_snapshot = Obs.Metrics.snapshot sink.Obs.metrics;
              live = Common.take_live ();
              trace_file;
              chrome_file;
            }
            :: !results
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" id
            (String.concat ", " (List.map (fun (i, _, _) -> i) all));
          exit 1)
    selected;
  (match json_out with
  | None -> ()
  | Some (file, oc) ->
      let open Common.Json in
      let doc =
        Obj
          [
            ("schema", String "adhoc-bench/6");
            ("jobs", Int (Adhoc.Util.Pool.jobs pool));
            ("experiments", List (List.rev_map outcome_json !results));
          ]
      in
      output_string oc (to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s\n" file);
  Common.pool := None;
  Adhoc.Util.Pool.shutdown pool;
  print_newline ()
