(* Shared helpers for the experiment harness. *)

open Adhoc
module Prng = Util.Prng
module Graph = Graphs.Graph
module Cost = Graphs.Cost
module Table = Util.Table
module Stats = Util.Stats

let theta_default = Float.pi /. 6.

(* Ambient observability sink.  The harness installs a fresh sink around
   each experiment; experiments thread [current_obs ()] into the pipeline
   so the v2 JSON output can embed span timings, metric snapshots and a
   trace pointer per experiment. *)
let obs_sink : Obs.sink option ref = ref None

let current_obs () = !obs_sink

(* Ambient domain pool.  The harness creates one from --jobs and installs
   it here; experiments thread [current_pool ()] into ?pool-taking kernels
   and fan independent per-seed trials out with [map_seeds]. *)
let pool : Util.Pool.t option ref = ref None

let current_pool () = !pool

(* Per-seed fan-out.  Trials are independent (each creates its own PRNG
   from its seed), so with a pool installed they run across domains;
   results come back in seed order, so any downstream fold is identical
   to the sequential loop.  The ambient obs sink is detached for the
   duration — trial bodies would otherwise mutate it concurrently — which
   also keeps the recorded obs snapshot identical for every --jobs value,
   an invariant json_check --compare relies on. *)
let map_seeds f seed_list =
  match !pool with
  | None -> List.map f seed_list
  | Some p ->
      let arr = Array.of_list seed_list in
      let saved = !obs_sink in
      obs_sink := None;
      Fun.protect
        ~finally:(fun () -> obs_sink := saved)
        (fun () ->
          Util.Pool.parallel_init p ~label:"bench/seeds" (Array.length arr) (fun i -> f arr.(i)))
      |> Array.to_list

(* Build a connected instance on [n] uniform nodes. *)
let uniform_instance ?(range_factor = 1.5) ?(theta = theta_default) ?(delta = 0.5) seed n =
  let rng = Prng.create seed in
  let points = Pointset.Generators.uniform rng n in
  let range = range_factor *. Topo.Udg.critical_range points in
  (rng, Pipeline.prepare ~delta ~theta ?obs:(current_obs ()) ?pool:(current_pool ()) ~range points)

let mean_and_max values =
  let s = Stats.summarize values in
  (s.Stats.mean, s.Stats.max)

let fmt2 = Printf.sprintf "%.2f"
let fmt3 = Printf.sprintf "%.3f"
let fmt4 = Printf.sprintf "%.4f"

(* Ratios can be undefined (Engine.cost_ratio is nan when nothing was
   delivered); tables render that as "n/a" rather than a fake number. *)
let fmt_ratio v = if Float.is_nan v then "n/a" else fmt3 v

let seeds k = List.init k (fun i -> 1000 + (17 * i))

let header title =
  Printf.printf "\n=== %s ===\n\n%!" title

(* --- machine-readable output -------------------------------------- *)

(* Hand-rolled JSON: the toolchain ships no JSON library and the bench
   schema is tiny.  nan/inf have no JSON encoding and serialize as null. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
        else Buffer.add_string buf "null"
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            write buf (String k);
            Buffer.add_char buf ':';
            write buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 1024 in
    write buf t;
    Buffer.contents buf
end

(* Headline-metric accumulator.  Experiments call [record_*] while they run;
   the harness snapshots and clears the list around each experiment and, when
   --json FILE was given, writes every experiment's metrics at the end. *)
let metrics : (string * Json.t) list ref = ref []

let record name v = metrics := (name, v) :: !metrics

let record_float name v = record name (Json.Float v)

let record_int name v = record name (Json.Int v)

let take_metrics () =
  let m = List.rev !metrics in
  metrics := [];
  m

(* Live-telemetry summary for the current experiment.  An experiment that
   runs an Obs.Live recorder stores the cumulative record here as JSON;
   the harness snapshots and clears the slot around each experiment and
   embeds it as the outcome's "live" member (null when the experiment ran
   no recorder). *)
let live_summary : Json.t ref = ref Json.Null

let record_live j = live_summary := j

let take_live () =
  let l = !live_summary in
  live_summary := Json.Null;
  l

(* The cumulative live record as bench JSON.  Every field is a pure
   function of the event stream, so json_check --compare pins the whole
   member exactly across --jobs. *)
let live_json l =
  let c = Obs.Live.finish l in
  let f v = if Float.is_finite v then Json.Float v else Json.Null in
  let tops xs =
    Json.List (List.map (fun (k, n, e) -> Json.List [ Json.Int k; Json.Int n; Json.Int e ]) xs)
  in
  Json.Obj
    [
      ("window", Json.Int (Obs.Live.window_size l));
      ("top_k", Json.Int (Obs.Live.top_k l));
      ("steps", Json.Int c.Obs.Live.steps);
      ("events", Json.Int c.Obs.Live.events);
      ("windows", Json.Int c.Obs.Live.windows);
      ("injected", Json.Int c.Obs.Live.c_injected);
      ("dropped", Json.Int c.Obs.Live.c_dropped);
      ("delivered", Json.Int c.Obs.Live.c_delivered);
      ("self", Json.Int c.Obs.Live.c_self_deliveries);
      ("sends", Json.Int c.Obs.Live.c_sends);
      ("collisions", Json.Int c.Obs.Live.c_collisions);
      ("control", Json.Int c.Obs.Live.c_control);
      ("buffered", Json.Int c.Obs.Live.c_buffered);
      ("violations", Json.Int c.Obs.Live.c_violations);
      ("healthy", Json.Bool c.Obs.Live.healthy);
      ("anomalies", Json.Int c.Obs.Live.anomalies);
      ("energy", f c.Obs.Live.energy);
      ("latency_mean", f c.Obs.Live.latency_mean);
      ("latency_p50", f c.Obs.Live.c_latency_p50);
      ("latency_p95", f c.Obs.Live.c_latency_p95);
      ("hops_p50", f c.Obs.Live.c_hops_p50);
      ("hops_p95", f c.Obs.Live.c_hops_p95);
      ("occupancy_p50", f c.Obs.Live.c_occupancy_p50);
      ("occupancy_p95", f c.Obs.Live.c_occupancy_p95);
      ("occupancy_max", f c.Obs.Live.occupancy_max);
      ("top_edges", tops c.Obs.Live.c_top_edges);
      ("top_nodes", tops c.Obs.Live.top_nodes);
    ]
