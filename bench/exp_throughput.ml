(* B4: routing-throughput scaling sweep.

   Times the decide-parallel / apply-sequential routing step loop
   (Dynamic_engine over a single ΘALG epoch) across an n × jobs grid,
   each configuration on its own fixed-size pool, and reports the
   headline rates steps_per_sec and decisions_per_sec (a "decision" is
   one active-edge evaluation — the unit the decision phase fans out on
   the pool).  Both rates are wall-clock derived, so --compare treats
   them with the timing tolerance; the structural metrics
   (injected / delivered / sends per n, the decision count, and the
   bitident flags) are exact and machine-independent, so any drift
   across machines or pool sizes is a regression.

   The sweep is also the acceptance harness for the parallel decision
   phase: for every n it replays the run with an event log and a live
   recorder under each jobs value and requires the routing stats, the
   adhoc-events/1 JSONL bytes and the adhoc-live/1 JSONL bytes to be
   identical to the jobs = 1 reference.  A mismatch aborts the bench —
   bit-identity is a contract here, not a statistic.

   A separate profiled pass per configuration records per-domain
   busy-time balance ("pool.imbalance:*") and owner-domain GC deltas
   ("gc:*"), exactly like B2.

   Speedup expectations are hardware-honest: the decision phase is a
   fraction of each step (apply stays sequential by design), so on a
   single-core container every jobs > 1 row shows ~1x. *)

open Adhoc
open Common
module Prng = Util.Prng
module Pool = Util.Pool
module Conflict = Interference.Conflict
module Balancing = Routing.Balancing
module Dynamic = Routing.Dynamic_engine

let theta = Float.pi /. 6.

(* Same analytic-radius switch as B2: the exact critical range needs the
   quadratic Delaunay MST, so beyond the threshold the radius comes from
   the connectivity law of uniform point sets — still a pure function
   of n. *)
let analytic_threshold = 8192

let sizes = [ 1024; 4096; 16384 ]
let jobs_grid = [ 1; 2; 4 ]
let steps = 240

let params = Balancing.params ~threshold:1.0 ~gamma:0.05 ~capacity:8
let cost = Graphs.Cost.hops

(* Min-of-reps wall-clock, in seconds; one warm-up run.  Each run builds
   its own buffer state, so repetitions are independent. *)
let time_s ?(reps = 2) f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type instance = {
  epochs : Dynamic.epoch list;
  injections : int -> (int * int) list;
  decisions : int;  (** active-edge evaluations over the whole horizon *)
}

let instance n =
  let rng = Prng.create 2024 in
  let points = Pointset.Generators.uniform rng n in
  let range =
    if n < analytic_threshold then 1.5 *. Topo.Udg.critical_range points
    else
      let nf = float_of_int n in
      1.5 *. Float.sqrt (Float.log nf /. (Float.pi *. nf))
  in
  let overlay = Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta ~range points) in
  let conflict = Conflict.build (Interference.Model.make ~delta:0.5) ~points overlay in
  (* Seeded injections, pregenerated so every timed run replays the same
     workload: a front-loaded burst for the first half of the horizon,
     then a drain phase. *)
  let irng = Prng.create (4242 + n) in
  let per_step = max 4 (n / 256) in
  let burst = steps / 2 in
  let table =
    Array.init steps (fun t ->
        if t >= burst then []
        else List.init per_step (fun _ ->
            let src = Prng.int irng n in
            let dst = Prng.int irng n in
            (src, dst)))
  in
  let injections t = if t >= 0 && t < steps then table.(t) else [] in
  (* The decision phase evaluates every edge of colour class (t mod k)
     each step, so the total count is a pure function of the coloring. *)
  let colors, k = Conflict.greedy_coloring conflict in
  let class_size = Array.make (max k 1) 0 in
  Array.iter (fun c -> class_size.(c) <- class_size.(c) + 1) colors;
  let decisions = ref 0 in
  for t = 0 to steps - 1 do
    if k > 0 then decisions := !decisions + class_size.(t mod k)
  done;
  { epochs = [ { Dynamic.graph = overlay; conflict; steps } ]; injections;
    decisions = !decisions }

let route ?obs ?pool inst =
  Dynamic.run ?obs ?pool ~epochs:inst.epochs ~injections:inst.injections ~cost
    ~params ()

let slurp file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* One replay with an event log and a live recorder attached; returns the
   stats plus the two streams' JSONL bytes (via a scratch file — the
   writers are out_channel based). *)
let streams ?pool inst =
  let events = Obs.Event.create () in
  let live = Obs.Live.create ~window:50 () in
  (* Obs.create attaches [live] to [events] as an online observer. *)
  let sink = Obs.create ~events ~live () in
  let stats = route ~obs:sink ?pool inst in
  let tmp = Filename.temp_file "adhoc-b4" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Obs.Event.save_jsonl events tmp;
      let event_bytes = slurp tmp in
      Obs.Live.save_jsonl live tmp;
      let live_bytes = slurp tmp in
      (stats, event_bytes, live_bytes))

let run () =
  header "B4: routing-throughput scaling (parallel decision phase, n x jobs)";
  Printf.printf "recommended domain count here: %d (grid is fixed 1/2/4)\n\n"
    (Pool.default_jobs ());
  let pools = List.map (fun j -> (j, Pool.create ~jobs:j ())) jobs_grid in
  (* Like B2, the per-jobs pools report into the experiment sink so the
     pool.regions / pool.items counters in the snapshot reflect the
     timed step loops and json_check can require them to be nonzero. *)
  List.iter (fun (_, p) -> Option.iter (fun sink -> Obs.attach_pool sink p) (current_obs ())) pools;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (_, p) ->
          Obs.detach_pool p;
          Pool.shutdown p)
        pools)
    (fun () ->
      let t =
        Table.create
          ([ ("n", Table.Right); ("decisions", Table.Right) ]
          @ List.map (fun j -> (Printf.sprintf "jobs=%d" j, Table.Right)) jobs_grid)
      in
      List.iter
        (fun n ->
          let inst = instance n in
          let base = ref nan in
          let cells =
            List.map
              (fun (j, p) ->
                let secs = time_s (fun () -> route ~pool:p inst) in
                record_float
                  (Printf.sprintf "steps_per_sec:b4/n=%d/jobs=%d" n j)
                  (float_of_int steps /. secs);
                record_float
                  (Printf.sprintf "decisions_per_sec:b4/n=%d/jobs=%d" n j)
                  (float_of_int inst.decisions /. secs);
                if j = 1 then begin
                  base := secs;
                  Printf.sprintf "%.0f steps/s" (float_of_int steps /. secs)
                end
                else Printf.sprintf "%.2fx" (!base /. secs))
              pools
          in
          (* Profiled pass: busy-time balance of the decision fan-out and
             an owner-domain GC delta per configuration (timing-derived,
             so --compare relaxes these prefixes; the metric names stay a
             pure function of the sweep). *)
          List.iter
            (fun (j, p) ->
              match current_obs () with
              | None -> ()
              | Some sink ->
                  let dp = Obs.Domprof.create ~slots:(Pool.jobs p) () in
                  Obs.attach_pool ~domprof:dp sink p;
                  let g0 = Obs.Gcstat.read () in
                  ignore (route ~pool:p inst);
                  let g = Obs.Gcstat.delta ~before:g0 ~after:(Obs.Gcstat.read ()) in
                  Obs.attach_pool sink p;
                  let key metric = Printf.sprintf "%s:b4/n=%d/jobs=%d" metric n j in
                  (match Obs.Domprof.summary dp with
                  | Some s ->
                      record_float (key "pool.imbalance:ratio") s.Obs.Domprof.imbalance;
                      record_float (key "pool.imbalance:busy_min_s") s.Obs.Domprof.busy_min;
                      record_float (key "pool.imbalance:busy_max_s") s.Obs.Domprof.busy_max;
                      record_float (key "pool.imbalance:busy_mean_s") s.Obs.Domprof.busy_mean
                  | None ->
                      record_float (key "pool.imbalance:ratio") 0.;
                      record_float (key "pool.imbalance:busy_min_s") 0.;
                      record_float (key "pool.imbalance:busy_max_s") 0.;
                      record_float (key "pool.imbalance:busy_mean_s") 0.);
                  record_float (key "gc:minor_words") g.Obs.Gcstat.minor_words;
                  record_float (key "gc:promoted_words") g.Obs.Gcstat.promoted_words;
                  record_float (key "gc:minor_collections")
                    (float_of_int g.Obs.Gcstat.minor_collections);
                  record_float (key "gc:major_collections")
                    (float_of_int g.Obs.Gcstat.major_collections))
            pools;
          (* Bit-identity contract: stats, event bytes and live bytes must
             match the jobs = 1 reference for every pool size. *)
          let ref_stats, ref_events, ref_live = streams inst in
          List.iter
            (fun (j, p) ->
              let stats, events, live = streams ~pool:p inst in
              if stats <> ref_stats then
                failwith (Printf.sprintf "b4: stats diverge at n=%d jobs=%d" n j);
              if not (String.equal events ref_events) then
                failwith (Printf.sprintf "b4: event log diverges at n=%d jobs=%d" n j);
              if not (String.equal live ref_live) then
                failwith (Printf.sprintf "b4: live stream diverges at n=%d jobs=%d" n j))
            pools;
          record_int (Printf.sprintf "bitident:b4/n=%d" n) 1;
          (* Structural pins, identical for every jobs value and machine. *)
          record_int (Printf.sprintf "decisions:b4/n=%d" n) inst.decisions;
          record_int (Printf.sprintf "injected:b4/n=%d" n) ref_stats.Routing.Engine.injected;
          record_int (Printf.sprintf "delivered:b4/n=%d" n) ref_stats.Routing.Engine.delivered;
          record_int (Printf.sprintf "sends:b4/n=%d" n) ref_stats.Routing.Engine.sends;
          Table.add_row t
            ((string_of_int n :: string_of_int inst.decisions :: cells) : string list))
        sizes;
      Table.print t;
      print_endline
        "cells: jobs=1 step rate, then speedup vs jobs=1 (bit-identical streams).")
