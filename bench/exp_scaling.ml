(* B2: multicore scaling sweep.

   Times the pool-parallelized kernels — ΘALG construction, UDG
   construction and all-pairs stretch — across an n × jobs grid, each
   configuration on its own fixed-size pool, and prints the speedup
   relative to jobs = 1.  Every kernel is bit-identical for every jobs
   value (the qcheck suite pins this), so the sweep also records one
   structural metric per instance (edge counts) that --compare checks
   exactly: any drift across machines or pool sizes is a regression,
   while the "ns_per_run:*" timings only warn.  A separate profiled pass
   per configuration records per-domain busy-time balance
   ("pool.imbalance:*") and owner-domain GC deltas ("gc:*"); both are
   machine-dependent and compared with the same tolerance as timings.

   The jobs grid is a fixed {1, 2, 4, 8} — never the machine's
   recommended domain count — and the per-jobs pools are attached to the
   experiment's obs sink, so the pool.regions / pool.items counters in
   the snapshot are a machine-independent function of the sweep and
   --compare can pin them.

   Speedup expectations are hardware-honest: on a single-core container
   every jobs > 1 row shows ~1x (plus scheduling overhead); the ≥3x
   targets only apply on machines that actually have the cores. *)

open Adhoc
open Common
module Prng = Util.Prng
module Pool = Util.Pool

let theta = Float.pi /. 6.

(* Min-of-reps wall-clock, in nanoseconds; one warm-up run. *)
let time_ns ?(reps = 2) f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9

let jobs_grid = [ 1; 2; 4; 8 ]

(* Construction sizes.  Up to 4096 the transmission radius comes from the
   exact critical range (longest Euclidean-MST edge); beyond that the
   Delaunay-based MST is quadratic, so the sweep switches to the analytic
   connectivity radius sqrt(ln n / (pi n)) of uniform point sets — the
   same 1.5x headroom, still a pure function of n. *)
let construction_sizes = [ 1024; 4096; 16384; 65536 ]

let analytic_threshold = 8192

let instance n =
  let rng = Prng.create 2024 in
  let points = Pointset.Generators.uniform rng n in
  let range =
    if n < analytic_threshold then 1.5 *. Topo.Udg.critical_range points
    else
      let nf = float_of_int n in
      1.5 *. Float.sqrt (Float.log nf /. (Float.pi *. nf))
  in
  (points, range)

let fmt_speedup base ns = Printf.sprintf "%.2fx" (base /. ns)

let run () =
  header "B2: multicore scaling (pool-parallelized kernels, n x jobs)";
  Printf.printf "recommended domain count here: %d (grid is fixed 1/2/4/8)\n\n"
    (Pool.default_jobs ());
  let pools = List.map (fun j -> (j, Pool.create ~jobs:j ())) jobs_grid in
  (* The per-jobs pools report into the experiment sink like the shared
     bench pool does: without this, B2's snapshot shows pool.regions = 0
     even though every timed kernel ran on a pool. *)
  List.iter (fun (_, p) -> Option.iter (fun sink -> Obs.attach_pool sink p) (current_obs ())) pools;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (_, p) ->
          Obs.detach_pool p;
          Pool.shutdown p)
        pools)
    (fun () ->
      let t =
        Table.create
          ([ ("kernel", Table.Left); ("n", Table.Right) ]
          @ List.map (fun j -> (Printf.sprintf "jobs=%d" j, Table.Right)) jobs_grid)
      in
      let sweep name n f check =
        let base = ref nan in
        let cells =
          List.map
            (fun (j, p) ->
              let ns = time_ns (fun () -> f p) in
              record_float (Printf.sprintf "ns_per_run:%s/n=%d/jobs=%d" name n j) ns;
              if j = 1 then begin
                base := ns;
                Printf.sprintf "%.0f ms" (ns /. 1e6)
              end
              else fmt_speedup !base ns)
            pools
        in
        (* Profiled pass: one extra run per configuration on a fresh
           per-domain recorder, yielding busy-time balance figures and an
           owner-domain GC delta.  All of it is timing- or runtime-derived,
           so --compare relaxes the "pool.imbalance:*" / "gc:*" prefixes;
           the metric *names* recorded here are a pure function of the
           sweep, keeping baseline metric sets machine-independent. *)
        List.iter
          (fun (j, p) ->
            match current_obs () with
            | None -> ()
            | Some sink ->
                let dp = Obs.Domprof.create ~slots:(Pool.jobs p) () in
                Obs.attach_pool ~domprof:dp sink p;
                let g0 = Obs.Gcstat.read () in
                ignore (f p);
                let g = Obs.Gcstat.delta ~before:g0 ~after:(Obs.Gcstat.read ()) in
                (* Back to the sink's own recorder (if any) for later runs. *)
                Obs.attach_pool sink p;
                let key metric = Printf.sprintf "%s:%s/n=%d/jobs=%d" metric name n j in
                (match Obs.Domprof.summary dp with
                | Some s ->
                    record_float (key "pool.imbalance:ratio") s.Obs.Domprof.imbalance;
                    record_float (key "pool.imbalance:busy_min_s") s.Obs.Domprof.busy_min;
                    record_float (key "pool.imbalance:busy_max_s") s.Obs.Domprof.busy_max;
                    record_float (key "pool.imbalance:busy_mean_s") s.Obs.Domprof.busy_mean
                | None ->
                    record_float (key "pool.imbalance:ratio") 0.;
                    record_float (key "pool.imbalance:busy_min_s") 0.;
                    record_float (key "pool.imbalance:busy_max_s") 0.;
                    record_float (key "pool.imbalance:busy_mean_s") 0.);
                record_float (key "gc:minor_words") g.Obs.Gcstat.minor_words;
                record_float (key "gc:promoted_words") g.Obs.Gcstat.promoted_words;
                record_float (key "gc:minor_collections")
                  (float_of_int g.Obs.Gcstat.minor_collections);
                record_float (key "gc:major_collections")
                  (float_of_int g.Obs.Gcstat.major_collections))
          pools;
        Table.add_row t ((name :: string_of_int n :: cells) : string list);
        (* One structural metric per instance, identical for every jobs
           value and every machine: --compare flags any drift as an
           error. *)
        record_int (Printf.sprintf "edges:%s/n=%d" name n) check
      in
      List.iter
        (fun n ->
          let points, range = instance n in
          sweep "theta-alg" n
            (fun p -> Topo.Theta_alg.build ~pool:p ~theta ~range points)
            (Graphs.Graph.num_edges (Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta ~range points)));
          sweep "udg" n
            (fun p -> Topo.Udg.build ~pool:p ~range points)
            (Graphs.Graph.num_edges (Topo.Udg.build ~range points)))
        construction_sizes;
      List.iter
        (fun n ->
          let points, range = instance n in
          let gstar = Topo.Udg.build ~range points in
          let sub = Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta ~range points) in
          let cost = Graphs.Cost.energy ~kappa:2. in
          sweep "stretch" n
            (fun p -> Graphs.Stretch.over_base_edges ~pool:p ~sub ~base:gstar ~cost ())
            (Graphs.Graph.num_edges gstar))
        [ 256; 1024 ];
      Table.print t;
      print_endline "cells: jobs=1 wall-clock, then speedup vs jobs=1 (same pool-built output).")
