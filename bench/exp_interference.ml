(* Experiments E5-E6: interference claims (paper Section 2.4).

   E5  Lemma 2.10  — I(𝒩) = O(log n) whp for uniform random nodes
   E6  Thm 2.8/Lem 2.9 — θ-path replacement: ≤ 6 paths share an edge;
       simulated schedules of non-interfering G* rounds complete in O(I)
       overlay rounds per G* round. *)

open Adhoc
open Common
module Prng = Util.Prng
module Graph = Graphs.Graph
module Conflict = Interference.Conflict
module Model = Interference.Model
module Theta_paths = Interference.Theta_paths

let e5 () =
  header "E5 (Lemma 2.10): interference number of the overlay vs n";
  let ns = [ 64; 128; 256; 512; 1024; 2048; 4096 ] in
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("I (mean of 5)", Table.Right);
        ("I / ln n", Table.Right);
        ("overlay edges", Table.Right);
      ]
  in
  let xs = ref [] and ys = ref [] in
  List.iter
    (fun n ->
      let trials =
        map_seeds
          (fun seed ->
            let _, b = uniform_instance ~range_factor:1.2 seed n in
            (float_of_int b.Pipeline.interference_number, Graph.num_edges b.Pipeline.overlay))
          (seeds 5)
      in
      (* Reversed like the old prepend loop, so the mean sums in the same
         float order. *)
      let is = List.rev_map fst trials in
      let edges = List.fold_left (fun _ (_, e) -> e) 0 trials in
      let mean_i = Stats.mean (Array.of_list is) in
      xs := float_of_int n :: !xs;
      ys := mean_i :: !ys;
      Table.add_row t
        [
          string_of_int n;
          fmt2 mean_i;
          fmt2 (mean_i /. log (float_of_int n));
          string_of_int edges;
        ])
    ns;
  Table.print t;
  let xs = Array.of_list (List.rev !xs) and ys = Array.of_list (List.rev !ys) in
  let _, logslope = Stats.log_fit xs ys in
  let power = Stats.loglog_slope xs ys in
  Printf.printf
    "log fit: I ~ %.2f * ln n; power-law exponent (loglog slope) = %.2f\n"
    logslope power;
  record_float "interference_log_fit_coeff" logslope;
  record_float "interference_loglog_slope" power;
  record_float "interference_mean_largest_n" ys.(Array.length ys - 1);
  print_endline
    "paper: I = O(log n) whp - I/ln n roughly flat, power-law exponent well below 1."

(* ------------------------------------------------------------------ *)

(* Greedy interference-free schedule of a multiset of overlay-edge uses:
   each round transmits a maximal independent subset of the edges that still
   have pending uses.  Returns the number of rounds (makespan). *)
let schedule_uses conflict uses =
  let pending = Hashtbl.create 64 in
  List.iter
    (fun e -> Hashtbl.replace pending e (1 + Option.value ~default:0 (Hashtbl.find_opt pending e)))
    uses;
  let rounds = ref 0 in
  while Hashtbl.length pending > 0 do
    incr rounds;
    let candidates = Hashtbl.fold (fun e _ acc -> e :: acc) pending [] in
    let chosen = Conflict.max_independent_greedy conflict candidates in
    List.iter
      (fun e ->
        match Hashtbl.find_opt pending e with
        | Some 1 -> Hashtbl.remove pending e
        | Some c -> Hashtbl.replace pending e (c - 1)
        | None -> ())
      chosen
  done;
  !rounds

let e6 () =
  header "E6 (Theorem 2.8 / Lemma 2.9): theta-path replacement of G* rounds";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("|T| (mean)", Table.Right);
        ("max multiplicity (<=6)", Table.Right);
        ("mean dilation (hops)", Table.Right);
        ("overlay rounds per G* round", Table.Right);
        ("I", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let mult = ref 0
      and tsizes = ref []
      and dilation = ref []
      and rounds = ref []
      and interference = ref 0 in
      List.iter
        (fun seed ->
          let rng, b = uniform_instance ~range_factor:1.3 seed n in
          let points = b.Pipeline.points in
          let gstar = b.Pipeline.gstar in
          let gstar_conflict = Conflict.build (Model.make ~delta:0.5) ~points gstar in
          let tp = Theta_paths.create b.Pipeline.alg in
          interference := max !interference b.Pipeline.interference_number;
          (* Three random non-interfering rounds T of G* transmissions. *)
          let ids = Array.init (Graph.num_edges gstar) Fun.id in
          for _ = 1 to 3 do
            Prng.shuffle rng ids;
            let round = Conflict.max_independent_greedy gstar_conflict (Array.to_list ids) in
            tsizes := float_of_int (List.length round) :: !tsizes;
            let pairs = List.map (Graph.endpoints gstar) round in
            mult := max !mult (Theta_paths.max_multiplicity tp pairs);
            let uses =
              List.concat_map
                (fun (u, v) ->
                  let edges = Theta_paths.replace_edges tp u v in
                  dilation := float_of_int (List.length edges) :: !dilation;
                  List.filter_map
                    (fun (a, c) -> Graph.find_edge b.Pipeline.overlay a c)
                    edges)
                pairs
            in
            rounds := float_of_int (schedule_uses b.Pipeline.conflict uses) :: !rounds
          done)
        (seeds 3);
      Table.add_row t
        [
          string_of_int n;
          fmt2 (Stats.mean (Array.of_list !tsizes));
          string_of_int !mult;
          fmt2 (Stats.mean (Array.of_list !dilation));
          fmt2 (Stats.mean (Array.of_list !rounds));
          string_of_int !interference;
        ])
    [ 64; 128; 256 ];
  Table.print t;
  print_endline
    "paper: multiplicity <= 6 (Lemma 2.9); a non-interfering G* round maps to";
  print_endline "O(I) overlay rounds, so W delivers in O(tI + n^2) steps (Theorem 2.8)."
