(* Experiment E11: the topology-comparison table (paper Section 1.2's
   qualitative claims made quantitative): ΘALG's overlay vs the Yao graph,
   Gabriel graph, relative neighborhood graph, restricted Delaunay graph and
   the Euclidean MST on a common deployment. *)

open Adhoc
open Common
module Graph = Graphs.Graph
module Conflict = Interference.Conflict
module Model = Interference.Model

let e11 () =
  header "E11: baseline comparison (512 uniform nodes, mean of 3 seeds)";
  let n = 512 in
  let names =
    [ "G*"; "theta-overlay"; "yao"; "cbtc"; "gabriel"; "rng"; "delaunay"; "knn-3"; "mst" ]
  in
  let acc = Hashtbl.create 8 in
  let record name field value =
    Hashtbl.replace acc (name, field)
      (value :: Option.value ~default:[] (Hashtbl.find_opt acc (name, field)))
  in
  (* Seeds fan out across the harness pool; each trial returns its
     measurements and the sequential replay below reproduces the exact
     accumulation order of the old per-seed loop. *)
  let trials =
    map_seeds
      (fun seed ->
      let rng = Util.Prng.create seed in
      let points = Pointset.Generators.uniform rng n in
      let range = 1.5 *. Topo.Udg.critical_range points in
      let gstar = Topo.Udg.build ~range points in
      let build name =
        let t0 = Unix.gettimeofday () in
        let g =
          match name with
          | "G*" -> gstar
          | "theta-overlay" ->
              Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta:theta_default ~range points)
          | "yao" -> Topo.Yao.graph ~theta:theta_default ~range points
          | "cbtc" -> (Topo.Cbtc.build ~alpha:(2. *. Float.pi /. 3.) ~range points).Topo.Cbtc.graph
          | "knn-3" -> Topo.Knn.build ~range ~k:3 points
          | "gabriel" -> Topo.Gabriel.build ~range points
          | "rng" -> Topo.Rng_graph.build ~range points
          | "delaunay" -> Topo.Delaunay.build ~range points
          | "mst" -> Graphs.Mst.of_points points
          | _ -> assert false
        in
        (g, Unix.gettimeofday () -. t0)
      in
      List.map
        (fun name ->
          let g, dt = build name in
          let m = Topo.Topo_metrics.measure ~name ~base:gstar g in
          let conflict = Conflict.build (Model.make ~delta:0.5) ~points g in
          ( name,
            [
              ("connected", if m.Topo.Topo_metrics.connected then 1. else 0.);
              ("edges", float_of_int m.Topo.Topo_metrics.edges);
              ("maxdeg", float_of_int m.Topo.Topo_metrics.max_degree);
              ("I", float_of_int (Conflict.interference_number conflict));
              ("estretch", m.Topo.Topo_metrics.energy_stretch);
              ("dstretch", m.Topo.Topo_metrics.distance_stretch);
              ("build_ms", dt *. 1000.);
            ] ))
        names)
      (seeds 3)
  in
  List.iter
    (List.iter (fun (name, fields) -> List.iter (fun (f, v) -> record name f v) fields))
    trials;
  let t =
    Table.create
      [
        ("topology", Table.Left);
        ("connected", Table.Left);
        ("edges", Table.Right);
        ("max deg", Table.Right);
        ("I", Table.Right);
        ("energy stretch", Table.Right);
        ("dist stretch", Table.Right);
        ("build ms", Table.Right);
      ]
  in
  List.iter
    (fun name ->
      let get field = Stats.mean (Array.of_list (Hashtbl.find acc (name, field))) in
      Table.add_row t
        [
          name;
          (if get "connected" >= 1. then "yes" else "NO");
          Printf.sprintf "%.0f" (get "edges");
          Printf.sprintf "%.0f" (get "maxdeg");
          Printf.sprintf "%.0f" (get "I");
          fmt3 (get "estretch");
          fmt3 (get "dstretch");
          fmt2 (get "build_ms");
        ])
    names;
  Table.print t;
  print_endline
    "paper (Section 1.2): Gabriel/Delaunay have optimal energy paths but";
  print_endline
    "unbounded worst-case degree; the MST has unbounded stretch; only the";
  print_endline
    "theta overlay combines O(1) degree, O(1) energy-stretch and purely";
  print_endline "local construction."
