(* B1: Bechamel micro-benchmarks of the core construction and simulation
   primitives, one Test.make per operation. *)

open Adhoc
open Bechamel
open Toolkit
module Prng = Util.Prng

let n = 256

let fixture =
  lazy
    (let rng = Prng.create 2024 in
     let points = Pointset.Generators.uniform rng n in
     let range = 1.5 *. Topo.Udg.critical_range points in
     let b = Pipeline.prepare ~theta:(Float.pi /. 6.) ~range points in
     (points, range, b))

(* Routing hot-path benchmarks run at n = 512 on prebuilt workloads, so the
   measured cost is the engine itself, not instance construction. *)
let routing_fixture =
  lazy
    (let rng = Prng.create 2024 in
     let points = Pointset.Generators.uniform rng 512 in
     let range = 1.5 *. Topo.Udg.critical_range points in
     let b = Pipeline.prepare ~theta:(Float.pi /. 6.) ~range points in
     let config =
       { Routing.Workload.horizon = 2000; attempts = 1000; slack = 12; interference_free = false }
     in
     let w =
       Routing.Workload.flows config ~rng:(Prng.create 5) ~graph:b.Pipeline.overlay
         ~cost:Graphs.Cost.length ~num_flows:4
     in
     let wq =
       Routing.Workload.flows ~conflict:b.Pipeline.conflict
         { config with Routing.Workload.interference_free = true }
         ~rng:(Prng.create 6) ~graph:b.Pipeline.overlay ~cost:Graphs.Cost.length
         ~num_flows:4
     in
     (b, w, wq))

let routing_params = Routing.Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:100

let tests () =
  let points, range, b = Lazy.force fixture in
  let theta = Float.pi /. 6. in
  let overlay = b.Pipeline.overlay in
  let gstar = b.Pipeline.gstar in
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"udg-build" (Staged.stage (fun () -> Topo.Udg.build ~range points));
      Test.make ~name:"yao-build" (Staged.stage (fun () -> Topo.Yao.graph ~theta ~range points));
      Test.make ~name:"theta-alg-build"
        (Staged.stage (fun () -> Topo.Theta_alg.build ~theta ~range points));
      Test.make ~name:"gabriel-build" (Staged.stage (fun () -> Topo.Gabriel.build ~range points));
      Test.make ~name:"delaunay-build"
        (Staged.stage (fun () -> Topo.Delaunay.build ~range points));
      Test.make ~name:"mst-build" (Staged.stage (fun () -> Graphs.Mst.of_points points));
      Test.make ~name:"conflict-build"
        (Staged.stage (fun () ->
             Interference.Conflict.build (Interference.Model.make ~delta:0.5) ~points overlay));
      Test.make ~name:"dijkstra-sssp"
        (Staged.stage (fun () -> Graphs.Dijkstra.run overlay ~cost:Graphs.Cost.length ~src:0));
      Test.make ~name:"energy-stretch"
        (Staged.stage (fun () ->
             Graphs.Stretch.over_base_edges ~sub:overlay ~base:gstar
               ~cost:(Graphs.Cost.energy ~kappa:2.) ()));
      Test.make ~name:"engine-1000-steps"
        (Staged.stage (fun () ->
             let rng = Prng.create 5 in
             let config =
               { Routing.Workload.horizon = 1000; attempts = 500; slack = 12; interference_free = false }
             in
             let w =
               Routing.Workload.flows config ~rng ~graph:overlay ~cost:Graphs.Cost.length
                 ~num_flows:2
             in
             let params =
               Routing.Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:100
             in
             Routing.Engine.run_mac_given ~graph:overlay ~cost:Graphs.Cost.length ~params w));
      Test.make ~name:"routing-csma-2500-steps-n512"
        (Staged.stage (fun () ->
             let b, w, _ = Lazy.force routing_fixture in
             let mac = Mac_protocols.Mac.csma ~rng:(Prng.create 7) b.Pipeline.conflict in
             Routing.Engine.run_with_mac ~cooldown:500 ~collisions:b.Pipeline.conflict
               ~graph:b.Pipeline.overlay ~cost:Graphs.Cost.length ~params:routing_params
               ~mac w));
      Test.make ~name:"routing-pad-2500-steps-n512"
        (Staged.stage (fun () ->
             let b, _, wq = Lazy.force routing_fixture in
             Routing.Engine.run_mac_given ~cooldown:500 ~pad:b.Pipeline.conflict
               ~graph:b.Pipeline.overlay ~cost:Graphs.Cost.length ~params:routing_params
               wq));
    ]

let run () =
  Common.header "B1: micro-benchmarks (Bechamel, monotonic clock)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  let t =
    Util.Table.create
      [ ("operation (n = 256 unless noted)", Util.Table.Left); ("time per run", Util.Table.Right) ]
  in
  let fmt_time ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ns) ->
      Common.record_float ("ns_per_run:" ^ name) ns;
      Util.Table.add_row t [ name; fmt_time ns ])
    (List.sort (fun (_, a) (_, b) -> Float.compare a b) !rows);
  Util.Table.print t
