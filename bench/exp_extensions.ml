(* Experiments E12-E14: extensions beyond the paper's headline claims.

   E12 — the introduction's strawman: k-nearest-neighbour graphs do not
         guarantee connectivity or constant degree; ΘALG does, at a
         comparable edge budget.
   E13 — θ ablation: degree bound / stretch / interference / maintenance
         traffic as the sector angle varies, plus per-packet latency from
         the tracked engine.
   E14 — geographic routing (the related-work baseline): greedy success
         rates per topology, face-routing recovery cost, and path quality
         vs the shortest path. *)

open Adhoc
open Common
module Prng = Util.Prng
module Graph = Graphs.Graph
module Conflict = Interference.Conflict
module Model = Interference.Model

let e12 () =
  header "E12 (intro claim): k-nearest-neighbour vs ThetaALG";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("k=1 conn (of 10)", Table.Right);
        ("k=2 conn", Table.Right);
        ("k=3 conn", Table.Right);
        ("min k (worst)", Table.Right);
        ("kNN(3) max deg", Table.Right);
        ("theta conn (of 10)", Table.Right);
        ("theta max deg", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let conn = Array.make 4 0 in
      let theta_conn = ref 0 in
      let worst_k = ref 0 in
      let knn_deg = ref 0 and theta_deg = ref 0 in
      List.iter
        (fun seed ->
          let rng = Prng.create seed in
          let points = Pointset.Generators.clusters ~num_clusters:6 ~spread:0.05 rng n in
          List.iter
            (fun k ->
              if Graphs.Components.is_connected (Topo.Knn.build ~k points) then
                conn.(k) <- conn.(k) + 1)
            [ 1; 2; 3 ];
          knn_deg := max !knn_deg (Graph.max_degree (Topo.Knn.build ~k:3 points));
          (match Topo.Knn.min_connecting_k points with
          | Some k -> worst_k := max !worst_k k
          | None -> worst_k := max !worst_k n);
          let range = 1.5 *. Topo.Udg.critical_range points in
          let ov = Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta:theta_default ~range points) in
          if Graphs.Components.is_connected ov then incr theta_conn;
          theta_deg := max !theta_deg (Graph.max_degree ov))
        (seeds 10);
      Table.add_row t
        [
          string_of_int n;
          string_of_int conn.(1);
          string_of_int conn.(2);
          string_of_int conn.(3);
          string_of_int !worst_k;
          string_of_int !knn_deg;
          string_of_int !theta_conn;
          string_of_int !theta_deg;
        ])
    [ 64; 128; 256 ];
  Table.print t;
  print_endline
    "paper (intro): kNN 'does not guarantee connectivity or a constant";
  print_endline
    "degree per node' - clustered deployments need large, instance-specific";
  print_endline "k, while the theta overlay is connected in every run."

(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13 (ablation): the sector angle theta";
  let t =
    Table.create ~title:"topology quality vs theta (n = 256 uniform, mean of 3 seeds)"
      [
        ("theta", Table.Left);
        ("bound 4pi/theta", Table.Right);
        ("max deg", Table.Right);
        ("edges", Table.Right);
        ("energy stretch", Table.Right);
        ("dist stretch", Table.Right);
        ("I", Table.Right);
        ("msgs/node", Table.Right);
      ]
  in
  List.iter
    (fun (name, theta) ->
      let deg = ref 0. and edges = ref 0. and es = ref 0. and ds = ref 0. in
      let inum = ref 0. and msgs = ref 0. in
      let k = 3 in
      List.iter
        (fun seed ->
          let rng = Prng.create seed in
          let points = Pointset.Generators.uniform rng 256 in
          let range = 1.5 *. Topo.Udg.critical_range points in
          let gstar = Topo.Udg.build ~range points in
          let ov, stats = Topo.Theta_protocol.run ~theta ~range points in
          let conflict = Conflict.build (Model.make ~delta:0.5) ~points ov in
          deg := !deg +. float_of_int (Graph.max_degree ov);
          edges := !edges +. float_of_int (Graph.num_edges ov);
          es :=
            !es
            +. Graphs.Stretch.over_base_edges ~sub:ov ~base:gstar
                 ~cost:(Cost.energy ~kappa:2.) ();
          ds := !ds +. Graphs.Stretch.over_base_edges ~sub:ov ~base:gstar ~cost:Cost.length ();
          inum := !inum +. float_of_int (Conflict.interference_number conflict);
          msgs :=
            !msgs
            +. float_of_int
                 (stats.Topo.Theta_protocol.position_msgs
                 + stats.Topo.Theta_protocol.neighborhood_msgs
                 + stats.Topo.Theta_protocol.connection_msgs)
               /. 256.)
        (seeds k);
      let f x = x /. float_of_int k in
      Table.add_row t
        [
          name;
          string_of_int (Topo.Theta_alg.degree_bound ~theta);
          fmt2 (f !deg);
          Printf.sprintf "%.0f" (f !edges);
          fmt3 (f !es);
          fmt3 (f !ds);
          Printf.sprintf "%.0f" (f !inum);
          fmt2 (f !msgs);
        ])
    [
      ("pi/3", Float.pi /. 3.);
      ("pi/4", Float.pi /. 4.);
      ("pi/6", Float.pi /. 6.);
      ("pi/12", Float.pi /. 12.);
      ("pi/24", Float.pi /. 24.);
    ];
  Table.print t;
  (* Latency from the tracked engine. *)
  let t =
    Table.create ~title:"per-packet latency (tracked engine, scenario 1, n = 150, seed 1000)"
      [
        ("horizon", Table.Right);
        ("delivered", Table.Right);
        ("latency mean", Table.Right);
        ("latency p95", Table.Right);
        ("hops mean", Table.Right);
        ("energy/pkt", Table.Right);
      ]
  in
  List.iter
    (fun horizon ->
      let rng = Prng.create 1000 in
      let points = Pointset.Generators.uniform rng 150 in
      let range = 1.5 *. Topo.Udg.critical_range points in
      let b = Pipeline.prepare ~theta:theta_default ~range points in
      let cost = Cost.energy ~kappa:2. in
      let config =
        {
          Routing.Workload.horizon;
          attempts = 2 * horizon;
          slack = 12;
          interference_free = true;
        }
      in
      let w =
        Routing.Workload.flows ~conflict:b.Pipeline.conflict config ~rng
          ~graph:b.Pipeline.overlay ~cost ~num_flows:2
      in
      let params =
        Routing.Balancing.Derive.theorem_3_1
          ~opt_buffer:w.Routing.Workload.opt.Routing.Workload.max_buffer
          ~opt_avg_hops:w.Routing.Workload.opt.Routing.Workload.avg_hops
          ~opt_avg_cost:(Float.max w.Routing.Workload.opt.Routing.Workload.avg_cost 1e-9)
          ~delta:w.Routing.Workload.opt.Routing.Workload.delta ~epsilon:0.5
      in
      let r =
        Routing.Tracked_engine.run_mac_given ~cooldown:horizon ?obs:(current_obs ())
          ~pad:b.Pipeline.conflict
          ~graph:b.Pipeline.overlay ~cost ~params w
      in
      Table.add_row t
        [
          string_of_int horizon;
          string_of_int r.Routing.Tracked_engine.base.Routing.Engine.delivered;
          fmt2 r.Routing.Tracked_engine.latency_mean;
          fmt2 r.Routing.Tracked_engine.latency_p95;
          fmt2 r.Routing.Tracked_engine.hops_mean;
          fmt4 r.Routing.Tracked_engine.energy_per_delivered;
        ])
    [ 4000; 16000 ];
  Table.print t;
  print_endline
    "smaller theta buys lower stretch at the cost of degree, interference";
  print_endline "and maintenance messages; latency reflects the gradient ramp-up."

(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14 (related work): geographic routing on the built topologies";
  let t =
    Table.create ~title:"greedy success rate (500 connected pairs, mean of 3 seeds)"
      [
        ("topology", Table.Left);
        ("uniform", Table.Right);
        ("ring (voids)", Table.Right);
        ("clusters", Table.Right);
      ]
  in
  let topologies points range =
    [
      ("G*", Topo.Udg.build ~range points);
      ( "theta overlay",
        Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta:theta_default ~range points) );
      ("gabriel", Topo.Gabriel.build ~range points);
    ]
  in
  let dists =
    [
      ("uniform", fun rng -> Pointset.Generators.uniform rng 200);
      ("ring", fun rng -> Pointset.Generators.ring ~width:0.15 rng 200);
      ("clusters", fun rng -> Pointset.Generators.clusters ~num_clusters:5 ~spread:0.05 rng 200);
    ]
  in
  let rates = Hashtbl.create 16 in
  List.iter
    (fun (dname, gen) ->
      List.iter
        (fun seed ->
          let rng = Prng.create seed in
          let points = gen rng in
          let range = 1.3 *. Topo.Udg.critical_range points in
          List.iter
            (fun (tname, g) ->
              let r =
                Routing.Geo.success_rate g points ~rng:(Prng.create (seed + 7)) ~trials:500
              in
              Hashtbl.replace rates (tname, dname)
                (r :: Option.value ~default:[] (Hashtbl.find_opt rates (tname, dname))))
            (topologies points range))
        (seeds 3))
    dists;
  List.iter
    (fun tname ->
      let cell dname = fmt3 (Stats.mean (Array.of_list (Hashtbl.find rates (tname, dname)))) in
      Table.add_row t [ tname; cell "uniform"; cell "ring"; cell "clusters" ])
    [ "G*"; "theta overlay"; "gabriel" ];
  Table.print t;
  (* Face-routing recovery and path quality on the hard (ring) case. *)
  let t =
    Table.create ~title:"greedy+face on the ring deployment (G* with Gabriel recovery)"
      [
        ("metric", Table.Left);
        ("value", Table.Right);
      ]
  in
  let rng = Prng.create 5 in
  let points = Pointset.Generators.ring ~width:0.15 rng 200 in
  let range = 1.2 *. Topo.Udg.critical_range points in
  let gstar = Topo.Udg.build ~range points in
  let gabriel = Topo.Gabriel.build ~range points in
  let delivered = ref 0 and total = ref 0 and used_recovery = ref 0 in
  let stretch = ref [] in
  for _ = 1 to 500 do
    let src = Prng.int rng 200 and dst = Prng.int rng 200 in
    if src <> dst then begin
      incr total;
      match Routing.Geo.greedy_face ~planar:gabriel gstar points ~src ~dst with
      | None -> ()
      | Some r ->
          incr delivered;
          if r.Routing.Geo.recovery_hops > 0 then incr used_recovery;
          let sp = Graphs.Dijkstra.distance gstar ~cost:Cost.length src dst in
          if sp > 0. then stretch := (r.Routing.Geo.length /. sp) :: !stretch
    end
  done;
  Table.add_row t [ "delivery rate"; fmt3 (float_of_int !delivered /. float_of_int !total) ];
  Table.add_row t
    [ "routes needing recovery"; fmt3 (float_of_int !used_recovery /. float_of_int !total) ];
  Table.add_row t
    [ "mean path stretch vs shortest"; fmt3 (Stats.mean (Array.of_list !stretch)) ];
  Table.add_row t
    [ "p95 path stretch"; fmt3 (Stats.percentile (Array.of_list !stretch) 95.) ];
  Table.print t;
  print_endline
    "greedy alone fails at voids (the ring); face recovery on the planar";
  print_endline
    "Gabriel subgraph restores delivery at a bounded path-stretch cost -";
  print_endline "the stateless alternative the paper's related work cites (GPSR)."


(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15 (related work): adversarial-queueing disciplines on fixed paths";
  let module Q = Routing.Queueing in
  let module W = Routing.Workload in
  let rng = Prng.create 4 in
  let points = Pointset.Generators.uniform rng 100 in
  let range = 1.5 *. Topo.Udg.critical_range points in
  let b = Pipeline.prepare ~theta:theta_default ~range points in
  let graph = b.Pipeline.overlay in
  let cost = Cost.energy ~kappa:2. in
  let wl_rng = Prng.create 4 in
  let t =
    Table.create
      ~title:"12 fixed shortest-path flows on the overlay; per-step, per-edge service"
      [
        ("rate/flow", Table.Right);
        ("injected", Table.Right);
        ("discipline", Table.Left);
        ("max queue", Table.Right);
        ("avg latency", Table.Right);
      ]
  in
  List.iter
    (fun rate ->
      let config = { W.horizon = 3000; attempts = 0; slack = 0; interference_free = false } in
      let w = W.path_flows config ~rng:wl_rng ~graph ~cost ~num_flows:12 ~rate in
      List.iter
        (fun d ->
          let s = Q.run ~cooldown:3000 ~graph ~cost d w in
          Table.add_row t
            [
              fmt2 rate;
              string_of_int s.Q.injected;
              Q.discipline_name d;
              string_of_int s.Q.max_queue;
              fmt2 s.Q.avg_latency;
            ])
        [ Q.Fifo; Q.Lifo; Q.Furthest_to_go; Q.Nearest_to_go; Q.Longest_in_system ])
    [ 0.1; 0.3; 0.5 ];
  Table.print t;
  print_endline
    "adversarial queueing theory (paper Section 1.2): with paths fixed by the";
  print_endline
    "adversary only the contention rule is left to choose; queue growth and";
  print_endline "latency separate the disciplines once shared edges saturate."


(* ------------------------------------------------------------------ *)

let e16 () =
  header "E16 (model fidelity): guard-zone (protocol) model vs SINR (physical)";
  let t =
    Table.create
      ~title:
        "fraction of protocol-model non-interfering sets that decode under SINR (alpha=3, beta=2)"
      [
        ("delta", Table.Right);
        ("mean |T|", Table.Right);
        ("SINR-feasible fraction", Table.Right);
        ("sets fully feasible", Table.Right);
      ]
  in
  let rng = Prng.create 3 in
  let points = Pointset.Generators.uniform rng 150 in
  let range = 1.3 *. Topo.Udg.critical_range points in
  let ov = Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta:theta_default ~range points) in
  let sinr = Interference.Sinr.make ~alpha:3. () in
  List.iter
    (fun delta ->
      let c = Conflict.build (Model.make ~delta) ~points ov in
      let fracs = ref [] and sizes = ref [] and full = ref 0 in
      let trials = 30 in
      for _ = 1 to trials do
        let ids = Array.init (Graph.num_edges ov) Fun.id in
        Prng.shuffle rng ids;
        let set = Conflict.max_independent_greedy c (Array.to_list ids) in
        let txs = Array.of_list (List.map (Graph.endpoints ov) set) in
        let f = Interference.Sinr.feasible_fraction sinr ~points ~transmissions:txs in
        fracs := f :: !fracs;
        sizes := float_of_int (Array.length txs) :: !sizes;
        if Interference.Sinr.all_feasible sinr ~points ~transmissions:txs then incr full
      done;
      Table.add_row t
        [
          fmt2 delta;
          fmt2 (Stats.mean (Array.of_list !sizes));
          fmt3 (Stats.mean (Array.of_list !fracs));
          Printf.sprintf "%d/%d" !full trials;
        ])
    [ 0.; 0.25; 0.5; 1.; 2. ];
  Table.print t;
  print_endline
    "the paper's protocol model is a simplification of the physical model";
  print_endline
    "(Section 2.4): a guard zone of delta >= 1 makes its non-interfering sets";
  print_endline "fully SINR-decodable here, at the cost of smaller concurrent sets."


(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17 (maintenance): locality of overlay repair under motion";
  let t =
    Table.create
      ~title:"small random-waypoint steps; incremental repair = full rebuild (tested)"
      [
        ("n", Table.Right);
        ("mean affected nodes", Table.Right);
        ("affected / n", Table.Right);
        ("ln n", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let rng = Prng.create 9 in
      let points = Pointset.Generators.uniform rng n in
      let range = 1.3 *. Topo.Udg.critical_range points in
      let m = Topo.Maintenance.create ~theta:theta_default ~range points in
      let affected = ref [] in
      for _ = 1 to 40 do
        let i = Prng.int rng n in
        let p = (Topo.Maintenance.points m).(i) in
        (* A small move: a fraction of the transmission range. *)
        let np =
          Geom.Box.clamp Geom.Box.unit_square
            (Geom.Point.make
               (p.Geom.Point.x +. Prng.range rng (-0.3) 0.3 *. range)
               (p.Geom.Point.y +. Prng.range rng (-0.3) 0.3 *. range))
        in
        Topo.Maintenance.move m i np;
        affected := float_of_int (Topo.Maintenance.last_affected m) :: !affected
      done;
      let mean = Stats.mean (Array.of_list !affected) in
      Table.add_row t
        [
          string_of_int n;
          fmt2 mean;
          fmt3 (mean /. float_of_int n);
          fmt2 (log (float_of_int n));
        ])
    [ 64; 128; 256; 512; 1024 ];
  Table.print t;
  print_endline
    "the repair after a move touches only nodes within 2x range of it: the";
  print_endline
    "affected count tracks the local density (~log n at connectivity-scaled";
  print_endline "range), while the affected *fraction* of the network vanishes."


(* ------------------------------------------------------------------ *)

let e18 () =
  header "E18 (extension): cost-aware anycast vs unicast to a fixed sink";
  let rng = Prng.create 7 in
  let points = Pointset.Generators.uniform rng 120 in
  let range = 1.4 *. Topo.Udg.critical_range points in
  let b = Pipeline.prepare ~theta:theta_default ~range points in
  let nearest target =
    let best = ref 0 and bd = ref infinity in
    Array.iteri
      (fun i p ->
        let d = Geom.Point.dist p target in
        if d < !bd then begin
          bd := d;
          best := i
        end)
      points;
    !best
  in
  let sinks =
    [|
      nearest (Geom.Point.make 0. 0.);
      nearest (Geom.Point.make 1. 0.);
      nearest (Geom.Point.make 0. 1.);
      nearest (Geom.Point.make 1. 1.);
    |]
  in
  let params = Routing.Balancing.params ~threshold:1. ~gamma:1. ~capacity:100 in
  let horizon = 6000 in
  let run groups =
    let inj_rng = Prng.create 8 in
    let injections t =
      if t < horizon && t mod 4 = 0 then [ (Prng.int inj_rng 120, 0) ] else []
    in
    Routing.Anycast.run ~cooldown:horizon ~pad:b.Pipeline.conflict ~graph:b.Pipeline.overlay
      ~cost:(Cost.energy ~kappa:2.) ~params ~groups ~injections ~horizon ()
  in
  let t =
    Table.create
      [
        ("destination set", Table.Left);
        ("delivered", Table.Right);
        ("remaining", Table.Right);
        ("energy/delivery", Table.Right);
        ("absorption spread", Table.Left);
      ]
  in
  List.iter
    (fun (name, groups) ->
      let s = run groups in
      let per =
        String.concat " "
          (List.map (fun (v, k) -> Printf.sprintf "%d:%d" v k) s.Routing.Anycast.per_member)
      in
      Table.add_row t
        [
          name;
          string_of_int s.Routing.Anycast.delivered;
          string_of_int s.Routing.Anycast.remaining;
          fmt4
            (if s.Routing.Anycast.delivered = 0 then 0.
             else s.Routing.Anycast.total_cost /. float_of_int s.Routing.Anycast.delivered);
          per;
        ])
    [
      ("single sink (corner)", [| [| sinks.(0) |] |]);
      ("anycast 2 sinks", [| [| sinks.(0); sinks.(3) |] |]);
      ("anycast 4 sinks", [| sinks |]);
    ];
  Table.print t;
  print_endline
    "the paper generalises anycast balancing [10] with edge costs: the same";
  print_endline
    "(T,gamma) rule, heights pinned to zero at every group member, delivers";
  print_endline "more packets at lower energy as the destination set grows."


(* ------------------------------------------------------------------ *)

let e19 () =
  header "E19 (Section 3.2 remark): reduced control-information exchange";
  let module W = Routing.Workload in
  let module QE = Routing.Quantized_engine in
  let rng = Prng.create 1000 in
  let points = Pointset.Generators.uniform rng 150 in
  let range = 1.5 *. Topo.Udg.critical_range points in
  let b = Pipeline.prepare ~theta:theta_default ~range points in
  let cost = Cost.energy ~kappa:2. in
  let horizon = 8000 in
  let config = { W.horizon; attempts = 2 * horizon; slack = 12; interference_free = true } in
  let w =
    W.flows ~conflict:b.Pipeline.conflict config ~rng ~graph:b.Pipeline.overlay ~cost
      ~num_flows:2
  in
  let params =
    Routing.Balancing.Derive.theorem_3_1 ~opt_buffer:w.W.opt.W.max_buffer
      ~opt_avg_hops:w.W.opt.W.avg_hops
      ~opt_avg_cost:(Float.max w.W.opt.W.avg_cost 1e-9)
      ~delta:w.W.opt.W.delta ~epsilon:0.5
  in
  let t =
    Table.create
      ~title:
        "height advertisements only when drifted > q (n = 150, scenario 1, 16000 steps)"
      [
        ("quantum q", Table.Right);
        ("delivered", Table.Right);
        ("control msgs", Table.Right);
        ("msgs vs continuous", Table.Right);
      ]
  in
  List.iter
    (fun q ->
      let s =
        QE.run_mac_given ~cooldown:horizon ~pad:b.Pipeline.conflict ~quantum:q
          ~graph:b.Pipeline.overlay ~cost ~params w
      in
      Table.add_row t
        [
          string_of_int q;
          string_of_int s.QE.base.Routing.Engine.delivered;
          string_of_int s.QE.control_messages;
          Printf.sprintf "%.5f"
            (float_of_int s.QE.control_messages /. float_of_int s.QE.full_exchange_messages);
        ])
    [ 0; 1; 2; 4; 8; 16 ];
  Table.print t;
  print_endline
    "the paper defers this to the full version: advertising heights only on";
  print_endline
    "drift > q cuts control traffic by orders of magnitude with essentially";
  print_endline "no throughput loss until q approaches the threshold T."


(* ------------------------------------------------------------------ *)

let e20 () =
  header "E20 (context, Gupta-Kumar [24]): capacity scaling on the overlay";
  (* Per-node transport capacity of a random network scales as
     Theta(1 / sqrt(n log n)).  Decompose it on our substrate: the number
     of concurrently schedulable overlay edges S(n) (spatial reuse) over
     nodes x mean hop count H(n) of random pairs. *)
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("S(n) concurrent", Table.Right);
        ("mean hops H(n)", Table.Right);
        ("lambda = S/(n H)", Table.Right);
        ("lambda x sqrt(n ln n)", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let s_vals = ref [] and h_vals = ref [] in
      List.iter
        (fun seed ->
          let rng, b = uniform_instance ~range_factor:1.2 seed n in
          let c = b.Pipeline.conflict in
          let g = b.Pipeline.overlay in
          (* Spatial reuse: size of a maximal independent edge set. *)
          let ids = Array.init (Graph.num_edges g) Fun.id in
          Prng.shuffle rng ids;
          let indep = Interference.Conflict.max_independent_greedy c (Array.to_list ids) in
          s_vals := float_of_int (List.length indep) :: !s_vals;
          (* Mean hop length of random connected pairs. *)
          let hops = ref 0 and cnt = ref 0 in
          for _ = 1 to 30 do
            let src = Prng.int rng n and dst = Prng.int rng n in
            if src <> dst then begin
              let d = (Graphs.Bfs.hops g ~src).(dst) in
              if d < max_int then begin
                hops := !hops + d;
                incr cnt
              end
            end
          done;
          if !cnt > 0 then h_vals := float_of_int !hops /. float_of_int !cnt :: !h_vals)
        (seeds 5);
      let s = Stats.mean (Array.of_list !s_vals) in
      let h = Stats.mean (Array.of_list !h_vals) in
      let nf = float_of_int n in
      let lambda = s /. (nf *. h) in
      Table.add_row t
        [
          string_of_int n;
          fmt2 s;
          fmt2 h;
          fmt4 lambda;
          fmt3 (lambda *. sqrt (nf *. log nf));
        ])
    [ 64; 128; 256; 512; 1024 ];
  Table.print t;
  print_endline
    "Gupta-Kumar: per-node transport capacity is Theta(1/sqrt(n log n)) -";
  print_endline
    "lambda x sqrt(n ln n) should stay roughly flat while raw lambda falls";
  print_endline "an order of magnitude across the sweep."
