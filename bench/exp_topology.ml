(* Experiments E1-E4: topology-control claims (paper Section 2).

   E1  Lemma 2.1    — 𝒩 connected, degree <= 4π/θ
   E2  Theorem 2.2  — O(1) energy-stretch for any distribution
   E3  Theorem 2.7  — O(1) distance-stretch on civilized sets
   E4  open problem — distance-stretch as the civilized assumption decays *)

open Adhoc
open Common
module Prng = Util.Prng
module Graph = Graphs.Graph
module Stretch = Graphs.Stretch

(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1 (Lemma 2.1): connectivity and the 4pi/theta degree bound";
  let t =
    Table.create
      [
        ("theta", Table.Left);
        ("bound", Table.Right);
        ("n", Table.Right);
        ("max degree (worst of 5 seeds)", Table.Right);
        ("always connected", Table.Left);
      ]
  in
  List.iter
    (fun (name, theta) ->
      List.iter
        (fun n ->
          let trials =
            map_seeds
              (fun seed ->
                let rng = Prng.create seed in
                let points = Pointset.Generators.uniform rng n in
                let range = 1.5 *. Topo.Udg.critical_range points in
                let overlay =
                  Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta ~range points)
                in
                (Graph.max_degree overlay, Graphs.Components.is_connected overlay))
              (seeds 5)
          in
          let worst_deg = List.fold_left (fun w (d, _) -> max w d) 0 trials in
          let all_connected = List.for_all snd trials in
          Table.add_row t
            [
              name;
              string_of_int (Topo.Theta_alg.degree_bound ~theta);
              string_of_int n;
              string_of_int worst_deg;
              (if all_connected then "yes" else "NO");
            ])
        [ 64; 128; 256; 512; 1024 ])
    [ ("pi/3", Float.pi /. 3.); ("pi/4", Float.pi /. 4.); ("pi/6", Float.pi /. 6.) ];
  Table.print t;
  print_endline "paper: connected for every instance, max degree never above the bound."

(* ------------------------------------------------------------------ *)

let distributions =
  [
    ("uniform", fun rng n -> Pointset.Generators.uniform rng n);
    ( "clusters",
      fun rng n -> Pointset.Generators.clusters ~num_clusters:5 ~spread:0.04 rng n );
    ("ring", fun rng n -> Pointset.Generators.ring ~width:0.2 rng n);
    ("two-scale", fun rng n -> Pointset.Generators.two_scale ~ratio:0.05 rng n);
  ]

let stretch_of ~cost seed gen n =
  let rng = Prng.create seed in
  let points = gen rng n in
  let range = 1.5 *. Topo.Udg.critical_range points in
  let gstar = Topo.Udg.build ~range points in
  let alg = Topo.Theta_alg.build ~theta:theta_default ~range points in
  Stretch.over_base_edges ~sub:(Topo.Theta_alg.overlay alg) ~base:gstar ~cost ()

let e2 () =
  header "E2 (Theorem 2.2): O(1) energy-stretch for arbitrary distributions";
  let t =
    Table.create
      ([ ("kappa", Table.Left); ("distribution", Table.Left) ]
      @ List.map (fun n -> (Printf.sprintf "n=%d" n, Table.Right)) [ 64; 128; 256; 512 ])
  in
  let overall = ref 0. in
  List.iter
    (fun kappa ->
      List.iter
        (fun (dname, gen) ->
          let row =
            List.map
              (fun n ->
                let vals =
                  Array.of_list
                    (map_seeds
                       (fun seed -> stretch_of ~cost:(Cost.energy ~kappa) seed gen n)
                       (seeds 3))
                in
                let _, worst = mean_and_max vals in
                overall := Float.max !overall worst;
                fmt3 worst)
              [ 64; 128; 256; 512 ]
          in
          Table.add_row t ((Printf.sprintf "%.0f" kappa :: dname :: row)))
        distributions)
    [ 2.; 3.; 4. ];
  Table.print t;
  record_float "energy_stretch_worst" !overall;
  print_endline
    "paper: a constant independent of n and of the distribution (flat rows).";
  print_endline "cells show the worst energy-stretch over 3 seeds."

(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3 (Theorem 2.7): O(1) distance-stretch on civilized (Poisson-disk) sets";
  let t =
    Table.create
      [
        ("min separation", Table.Right);
        ("n (approx)", Table.Right);
        ("lambda", Table.Right);
        ("distance stretch (worst of 3)", Table.Right);
      ]
  in
  let overall = ref 0. in
  List.iter
    (fun min_dist ->
      let trials =
        map_seeds
          (fun seed ->
            let rng = Prng.create seed in
            let points = Pointset.Poisson_disk.sample ~min_dist rng in
            let range = 1.5 *. Topo.Udg.critical_range points in
            let gstar = Topo.Udg.build ~range points in
            let alg = Topo.Theta_alg.build ~theta:theta_default ~range points in
            ( Array.length points,
              Pointset.Precision.lambda points,
              Stretch.over_base_edges ~sub:(Topo.Theta_alg.overlay alg) ~base:gstar
                ~cost:Cost.length () ))
          (seeds 3)
      in
      (* Same reversed accumulation order as the old ref-based loop. *)
      let ns = ref [] and lambdas = ref [] and stretches = ref [] in
      List.iter
        (fun (n, lambda, stretch) ->
          ns := n :: !ns;
          lambdas := lambda :: !lambdas;
          stretches := stretch :: !stretches)
        trials;
      let worst = List.fold_left Float.max 0. !stretches in
      overall := Float.max !overall worst;
      Table.add_row t
        [
          fmt3 min_dist;
          string_of_int (List.fold_left ( + ) 0 !ns / List.length !ns);
          fmt4 (List.fold_left Float.max 0. !lambdas);
          fmt3 worst;
        ])
    [ 0.16; 0.08; 0.04; 0.02 ];
  Table.print t;
  record_float "distance_stretch_worst" !overall;
  print_endline "paper: bounded stretch across the lambda range (civilized sets)."

(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4 (open problem): distance-stretch as the civilized assumption decays";
  let measure points =
    let range = 1.05 *. Topo.Udg.critical_range points in
    let gstar = Topo.Udg.build ~range points in
    let alg = Topo.Theta_alg.build ~theta:theta_default ~range points in
    let ov = Topo.Theta_alg.overlay alg in
    ( Pointset.Precision.lambda points,
      Stretch.over_base_edges ~sub:ov ~base:gstar ~cost:(Cost.energy ~kappa:2.) (),
      Stretch.over_base_edges ~sub:ov ~base:gstar ~cost:Cost.length () )
  in
  let t =
    Table.create
      [
        ("family", Table.Left);
        ("n", Table.Right);
        ("lambda", Table.Right);
        ("energy stretch", Table.Right);
        ("distance stretch", Table.Right);
      ]
  in
  let families =
    [
      ("two-scale 0.02", fun n -> Pointset.Generators.two_scale ~ratio:0.02 (Prng.create 3) n);
      ("exp chain b=1.5", fun n -> Pointset.Generators.exponential_chain ~base:1.5 n);
      ("exp spiral b=1.3", fun n -> Pointset.Generators.exponential_spiral ~base:1.3 n);
      ("exp spiral b=1.6", fun n -> Pointset.Generators.exponential_spiral ~base:1.6 n);
    ]
  in
  List.iter
    (fun (name, gen) ->
      List.iter
        (fun n ->
          let lambda, es, ds = measure (gen n) in
          Table.add_row t
            [ name; string_of_int n; Printf.sprintf "%.2e" lambda; fmt3 es; fmt3 ds ])
        [ 32; 64; 128 ])
    families;
  Table.print t;
  print_endline
    "paper: energy-stretch provably stays O(1) (Theorem 2.2); whether";
  print_endline
    "distance-stretch stays bounded without the civilized assumption is the";
  print_endline "paper's open question - this measures it."
