open Adhoc_geom

let min_pairwise points =
  let n = Array.length points in
  if n < 2 then infinity
  else begin
    let box = Box.of_points points in
    let span = Float.max (Box.width box) (Box.height box) in
    (* Grid with ~1 expected point per cell; nearest_other expands as needed. *)
    let cell = if span > 0. then Float.max (span /. sqrt (float_of_int n)) (span *. 1e-9) else 1. in
    let grid = Spatial_grid.build ~cell points in
    let best = ref infinity in
    for i = 0 to n - 1 do
      match Spatial_grid.nearest_other grid i with
      | Some j -> best := Float.min !best (Point.dist points.(i) points.(j))
      | None -> ()
    done;
    !best
  end

let max_pairwise points =
  (* The diameter is attained by convex-hull vertices. *)
  Hull.diameter points

let lambda points =
  if Array.length points < 2 then 1.
  else begin
    let mx = max_pairwise points in
    if Float.equal mx 0. then 0.
    else begin
      let mn = min_pairwise points in
      if mn = infinity then 1. else mn /. mx
    end
  end

let is_civilized ~lambda:l points = lambda points >= l
