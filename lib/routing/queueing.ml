module Graph = Adhoc_graph.Graph

type discipline =
  | Fifo
  | Lifo
  | Furthest_to_go
  | Nearest_to_go
  | Longest_in_system

let discipline_name = function
  | Fifo -> "FIFO"
  | Lifo -> "LIFO"
  | Furthest_to_go -> "FTG"
  | Nearest_to_go -> "NTG"
  | Longest_in_system -> "LIS"

type stats = {
  steps : int;
  injected : int;
  delivered : int;
  total_cost : float;
  max_queue : int;
  avg_latency : float;
}

type packet = {
  injected_at : int;
  mutable at : int;  (** current node *)
  mutable remaining : int list;  (** edge ids still to traverse *)
  mutable arrived_at_queue : int;  (** step it joined the current queue *)
  seq : int;  (** tie-breaker: injection sequence number *)
}

let run ?(cooldown = 0) ?(use_activations = false) ~graph ~cost discipline (w : Workload.t) =
  let horizon = w.Workload.horizon in
  let steps = horizon + cooldown in
  let edge_cost = Array.init (Graph.num_edges graph) (fun e -> cost (Graph.length graph e)) in
  (* Queue per (node, next-edge): packets waiting at [node] to cross that
     edge.  Keyed by (node, edge id). *)
  let queues : (int * int, packet list ref) Hashtbl.t = Hashtbl.create 256 in
  let queue_of node e =
    match Hashtbl.find_opt queues (node, e) with
    | Some q -> q
    | None ->
        let q = ref [] in
        Hashtbl.add queues (node, e) q;
        q
  in
  let enqueue t pkt =
    match pkt.remaining with
    | [] -> assert false
    | e :: _ ->
        pkt.arrived_at_queue <- t;
        let q = queue_of pkt.at e in
        q := pkt :: !q
  in
  let injected = ref 0
  and delivered = ref 0
  and total_cost = ref 0.
  and max_queue = ref 0
  and latencies = ref []
  and seq = ref 0 in
  (* Priority: smaller key wins. *)
  let key p =
    match discipline with
    | Fifo -> (p.arrived_at_queue, p.seq)
    | Lifo -> (-p.arrived_at_queue, -p.seq)
    | Furthest_to_go -> (-List.length p.remaining, p.seq)
    | Nearest_to_go -> (List.length p.remaining, p.seq)
    | Longest_in_system -> (p.injected_at, p.seq)
  in
  for t = 0 to steps - 1 do
    let usable e =
      (not use_activations) || (t < horizon && List.mem e w.Workload.activations.(t))
    in
    (* Collect this step's winners: per (node, edge) queue with a usable
       edge, the discipline's minimum.  At most one packet per direction.
       Queues are visited in ascending (node, edge) order so the float cost
       accumulation below never depends on Hashtbl traversal order. *)
    let winners = ref [] in
    Adhoc_util.Det.iter_sorted
      (fun (_node, e) q ->
        if usable e && !q <> [] then begin
          max_queue := max !max_queue (List.length !q);
          let best =
            List.fold_left
              (fun acc p -> match acc with Some b when key b <= key p -> acc | _ -> Some p)
              None !q
          in
          match best with Some p -> winners := (e, p) :: !winners | None -> ()
        end)
      queues;
    let winners = List.rev !winners in
    (* Apply moves simultaneously. *)
    List.iter
      (fun (e, p) ->
        let q = queue_of p.at e in
        q := List.filter (fun p' -> p' != p) !q;
        total_cost := !total_cost +. edge_cost.(e);
        p.at <- Graph.other_endpoint graph e p.at;
        p.remaining <- List.tl p.remaining;
        if p.remaining = [] then begin
          incr delivered;
          latencies := float_of_int (t - p.injected_at) :: !latencies
        end
        else enqueue t p)
      winners;
    (* Injections. *)
    if t < horizon then
      List.iter
        (fun (src, _dst, path) ->
          incr injected;
          incr seq;
          match path with
          | [] -> incr delivered
          | _ ->
              let p =
                { injected_at = t; at = src; remaining = path; arrived_at_queue = t; seq = !seq }
              in
              enqueue t p)
        w.Workload.paths.(t)
  done;
  {
    steps;
    injected = !injected;
    delivered = !delivered;
    total_cost = !total_cost;
    max_queue = !max_queue;
    avg_latency =
      (match !latencies with
      | [] -> 0.
      | l -> Adhoc_util.Stats.mean (Array.of_list l));
  }
