module Graph = Adhoc_graph.Graph
module Stats = Adhoc_util.Stats

type stats = {
  base : Engine.stats;
  latency_mean : float;
  latency_median : float;
  latency_p95 : float;
  hops_mean : float;
  energy_per_delivered : float;
  packets : Packet.t list;
}

(* FIFO identity queues mirroring the height matrix. *)
type queues = (int * int, Packet.t Queue.t) Hashtbl.t

let queue_of (q : queues) v d =
  match Hashtbl.find_opt q (v, d) with
  | Some queue -> queue
  | None ->
      let queue = Queue.create () in
      Hashtbl.add q (v, d) queue;
      queue

(* The run loop is {!Engine.run_mac_given}'s: the [on_send] / [on_inject]
   hooks mirror every buffer mutation onto the identity queues, so the
   queue lengths track the height matrix move-for-move and the aggregate
   stats are the engine's own. *)
let run_mac_given ?(cooldown = 0) ?obs ?pool ?pad ~graph ~cost ~params (w : Workload.t) =
  let queues : queues = Hashtbl.create 64 in
  let all_packets = ref [] in
  let next_id = ref 0 in
  let edge_cost = Array.init (Graph.num_edges graph) (fun e -> cost (Graph.length graph e)) in
  let on_send ~step ~edge (d : Balancing.decision) outcome =
    let q = queue_of queues d.Balancing.src d.Balancing.dest in
    let pkt = Queue.pop q in
    pkt.Packet.hops <- pkt.Packet.hops + 1;
    pkt.Packet.energy <- pkt.Packet.energy +. edge_cost.(edge);
    match outcome with
    | `Delivered -> pkt.Packet.delivered_at <- step
    | `Moved -> Queue.push pkt (queue_of queues d.Balancing.dst d.Balancing.dest)
  in
  let on_inject ~step ~src ~dst admitted =
    (* Self-injections are absorbed on admission and never become packets. *)
    if admitted && src <> dst then begin
      let pkt = Packet.make ~id:!next_id ~src ~dst ~now:step in
      incr next_id;
      all_packets := pkt :: !all_packets;
      Queue.push pkt (queue_of queues src dst)
    end
  in
  let base =
    Engine.run_mac_given ~cooldown ?obs ?pool ~on_send ~on_inject ?pad ~graph ~cost
      ~params w
  in
  let packets = List.rev !all_packets in
  let delivered_packets = List.filter Packet.delivered packets in
  let latencies =
    Array.of_list (List.map (fun p -> float_of_int (Packet.latency p)) delivered_packets)
  in
  if Array.length latencies = 0 then
    {
      base;
      latency_mean = 0.;
      latency_median = 0.;
      latency_p95 = 0.;
      hops_mean = 0.;
      energy_per_delivered = 0.;
      packets;
    }
  else begin
    let hops =
      Array.of_list (List.map (fun p -> float_of_int p.Packet.hops) delivered_packets)
    in
    let energy = Array.of_list (List.map (fun p -> p.Packet.energy) delivered_packets) in
    {
      base;
      latency_mean = Stats.mean latencies;
      latency_median = Stats.percentile latencies 50.;
      latency_p95 = Stats.percentile latencies 95.;
      hops_mean = Stats.mean hops;
      energy_per_delivered = Stats.mean energy;
      packets;
    }
  end
