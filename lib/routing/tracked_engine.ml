module Graph = Adhoc_graph.Graph
module Stats = Adhoc_util.Stats

type stats = {
  base : Engine.stats;
  latency_mean : float;
  latency_median : float;
  latency_p95 : float;
  hops_mean : float;
  energy_per_delivered : float;
  packets : Packet.t list;
}

(* FIFO identity queues mirroring the height matrix. *)
type queues = (int * int, Packet.t Queue.t) Hashtbl.t

let queue_of (q : queues) v d =
  match Hashtbl.find_opt q (v, d) with
  | Some queue -> queue
  | None ->
      let queue = Queue.create () in
      Hashtbl.add q (v, d) queue;
      queue

let run_mac_given ?(cooldown = 0) ?pad ~graph ~cost ~params (w : Workload.t) =
  let n = Graph.n graph in
  let buffers = Buffers.create n in
  let queues : queues = Hashtbl.create 64 in
  let all_packets = ref [] in
  let next_id = ref 0 in
  let injected = ref 0
  and dropped = ref 0
  and delivered = ref 0
  and sends = ref 0
  and total_cost = ref 0.
  and peak = ref 0 in
  let edge_cost = Array.init (Graph.num_edges graph) (fun e -> cost (Graph.length graph e)) in
  let cache = Engine.Cache.create ~graph ~buffers ~params ~edge_cost in
  let pad_state = Option.map Engine.Pad.create pad in
  let steps = w.Workload.horizon + cooldown in
  for t = 0 to steps - 1 do
    let base = if t < w.Workload.horizon then w.Workload.activations.(t) else [] in
    let active =
      match pad_state with Some p -> Engine.Pad.active p ~step:t base | None -> base
    in
    (* Decide on start-of-step heights, apply deliveries-first. *)
    Engine.Cache.flush cache;
    let decisions =
      List.concat_map
        (fun e ->
          match (Engine.Cache.fwd cache e, Engine.Cache.bwd cache e) with
          | Some a, Some b -> [ (e, a); (e, b) ]
          | Some a, None -> [ (e, a) ]
          | None, Some b -> [ (e, b) ]
          | None, None -> [])
        active
    in
    let decisions =
      List.stable_sort (fun (_, a) (_, b) -> Engine.application_order a b) decisions
    in
    List.iter
      (fun (e, (d : Balancing.decision)) ->
        if Buffers.height buffers d.Balancing.src d.Balancing.dest > 0 then begin
          incr sends;
          total_cost := !total_cost +. edge_cost.(e);
          Buffers.remove buffers d.Balancing.src d.Balancing.dest;
          let q = queue_of queues d.Balancing.src d.Balancing.dest in
          let pkt = Queue.pop q in
          pkt.Packet.hops <- pkt.Packet.hops + 1;
          pkt.Packet.energy <- pkt.Packet.energy +. edge_cost.(e);
          if d.Balancing.dst = d.Balancing.dest then begin
            pkt.Packet.delivered_at <- t;
            incr delivered
          end
          else begin
            Buffers.force_add buffers d.Balancing.dst d.Balancing.dest;
            Queue.push pkt (queue_of queues d.Balancing.dst d.Balancing.dest);
            peak := max !peak (Buffers.height buffers d.Balancing.dst d.Balancing.dest)
          end
        end)
      decisions;
    if t < w.Workload.horizon then
      List.iter
        (fun (src, dst) ->
          if Buffers.inject buffers ~cap:params.Balancing.capacity src dst then begin
            incr injected;
            if src <> dst then begin
              let pkt = Packet.make ~id:!next_id ~src ~dst ~now:t in
              incr next_id;
              all_packets := pkt :: !all_packets;
              Queue.push pkt (queue_of queues src dst);
              peak := max !peak (Buffers.height buffers src dst)
            end
            else incr delivered
          end
          else incr dropped)
        w.Workload.injections.(t)
  done;
  let packets = List.rev !all_packets in
  let delivered_packets = List.filter Packet.delivered packets in
  let latencies =
    Array.of_list (List.map (fun p -> float_of_int (Packet.latency p)) delivered_packets)
  in
  let base =
    {
      Engine.steps;
      injected = !injected;
      dropped = !dropped;
      delivered = !delivered;
      sends = !sends;
      failed_sends = 0;
      total_cost = !total_cost;
      peak_height = !peak;
      remaining = Buffers.total buffers;
    }
  in
  if Array.length latencies = 0 then
    {
      base;
      latency_mean = 0.;
      latency_median = 0.;
      latency_p95 = 0.;
      hops_mean = 0.;
      energy_per_delivered = 0.;
      packets;
    }
  else begin
    let hops =
      Array.of_list (List.map (fun p -> float_of_int p.Packet.hops) delivered_packets)
    in
    let energy = Array.of_list (List.map (fun p -> p.Packet.energy) delivered_packets) in
    {
      base;
      latency_mean = Stats.mean latencies;
      latency_median = Stats.percentile latencies 50.;
      latency_p95 = Stats.percentile latencies 95.;
      hops_mean = Stats.mean hops;
      energy_per_delivered = Stats.mean energy;
      packets;
    }
  end
