module Event = Adhoc_obs.Event
module Stats = Adhoc_util.Stats

type totals = {
  steps : int;
  injected : int;
  dropped : int;
  delivered : int;
  self_deliveries : int;
  sends : int;
  collisions : int;
  energy : float;
  epochs : int;
  height_adverts : int;
}

type edge_use = {
  edge : int;
  u : int;
  v : int;
  sends : int;
  collisions : int;
  energy : float;
  wait_sum : float;
}

let mean_wait e = if e.sends = 0 then 0. else e.wait_sum /. float_of_int e.sends

type t = {
  totals : totals;
  latency_mean : float;
  latency_median : float;
  latency_p95 : float;
  hops_mean : float;
  energy_per_delivered : float;
  packets : Packet.t list;
  edges : edge_use array;
  timeline : (int * int * int) array;
  anomalies : int;
}

(* FIFO identity queues keyed by (node, destination), exactly as
   {!Tracked_engine} keeps them during a live run. *)
let queue_of queues v d =
  match Hashtbl.find_opt queues (v, d) with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add queues (v, d) q;
      q

let analyze (events : Event.t array) =
  let queues : (int * int, Packet.t Queue.t) Hashtbl.t = Hashtbl.create 64 in
  (* Step at which each in-flight packet arrived at its current node;
     Packet.t has no such field, so it rides in a side table. *)
  let arrived : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let edge_tbl : (int, edge_use) Hashtbl.t = Hashtbl.create 64 in
  let all_packets = ref [] in
  let next_id = ref 0 in
  let injected = ref 0
  and dropped = ref 0
  and delivered = ref 0
  and self_deliveries = ref 0
  and sends = ref 0
  and collisions = ref 0
  and energy = ref 0.
  and epochs = ref 0
  and height_adverts = ref 0
  and anomalies = ref 0 in
  let buffered = ref 0 in
  let snapshots = ref [] in
  let cur_step = ref (-1) in
  let snapshot () =
    if !cur_step >= 0 then snapshots := (!cur_step, !delivered, !buffered) :: !snapshots
  in
  let touch_edge edge ~u ~v f =
    let prev =
      match Hashtbl.find_opt edge_tbl edge with
      | Some e -> e
      | None -> { edge; u; v; sends = 0; collisions = 0; energy = 0.; wait_sum = 0. }
    in
    Hashtbl.replace edge_tbl edge (f prev)
  in
  Array.iter
    (fun ev ->
      let step = Event.step ev in
      if step <> !cur_step then begin
        snapshot ();
        cur_step := step
      end;
      match ev with
      | Event.Inject { src; dst; admitted; _ } ->
          if admitted then begin
            incr injected;
            if src = dst then begin
              incr delivered;
              incr self_deliveries
            end
            else begin
              let pkt = Packet.make ~id:!next_id ~src ~dst ~now:step in
              incr next_id;
              all_packets := pkt :: !all_packets;
              Hashtbl.replace arrived pkt.Packet.id step;
              Queue.push pkt (queue_of queues src dst);
              incr buffered
            end
          end
          else incr dropped
      | Event.Send { edge; src; dst; dest; cost; outcome; _ } -> (
          incr sends;
          energy := !energy +. cost;
          let q = queue_of queues src dest in
          match Queue.take_opt q with
          | None ->
              (* Corrupt log: the engine never sends from an empty cell. *)
              incr anomalies;
              touch_edge edge ~u:src ~v:dst (fun e ->
                  { e with sends = e.sends + 1; energy = e.energy +. cost })
          | Some pkt ->
              pkt.Packet.hops <- pkt.Packet.hops + 1;
              pkt.Packet.energy <- pkt.Packet.energy +. cost;
              let wait =
                match Hashtbl.find_opt arrived pkt.Packet.id with
                | Some s -> float_of_int (step - s)
                | None -> 0.
              in
              touch_edge edge ~u:src ~v:dst (fun e ->
                  {
                    e with
                    sends = e.sends + 1;
                    energy = e.energy +. cost;
                    wait_sum = e.wait_sum +. wait;
                  });
              (match outcome with
              | Event.Delivered ->
                  pkt.Packet.delivered_at <- step;
                  incr delivered;
                  decr buffered;
                  Hashtbl.remove arrived pkt.Packet.id
              | Event.Moved ->
                  if dst = dest then incr anomalies;
                  Hashtbl.replace arrived pkt.Packet.id step;
                  Queue.push pkt (queue_of queues dst dest));
              if outcome = Event.Delivered && dst <> dest then incr anomalies)
      | Event.Collide { edge; src; dst; cost; _ } ->
          incr collisions;
          energy := !energy +. cost;
          touch_edge edge ~u:src ~v:dst (fun e ->
              { e with collisions = e.collisions + 1; energy = e.energy +. cost })
      | Event.Deliver _ -> ()
      | Event.Epoch_change _ -> incr epochs
      | Event.Height_advert _ -> incr height_adverts)
    events;
  snapshot ();
  let totals =
    {
      steps = !cur_step + 1;
      injected = !injected;
      dropped = !dropped;
      delivered = !delivered;
      self_deliveries = !self_deliveries;
      sends = !sends;
      collisions = !collisions;
      energy = !energy;
      epochs = !epochs;
      height_adverts = !height_adverts;
    }
  in
  let edges =
    (* Ascending edge-id order, independent of Hashtbl internals. *)
    Array.of_list (List.map snd (Adhoc_util.Det.sorted_bindings edge_tbl))
  in
  let timeline = Array.of_list (List.rev !snapshots) in
  let packets = List.rev !all_packets in
  (* From here on this is Tracked_engine's aggregation verbatim, so the
     two agree bit-for-bit on the same run. *)
  let delivered_packets = List.filter Packet.delivered packets in
  let latencies =
    Array.of_list (List.map (fun p -> float_of_int (Packet.latency p)) delivered_packets)
  in
  if Array.length latencies = 0 then
    {
      totals;
      latency_mean = 0.;
      latency_median = 0.;
      latency_p95 = 0.;
      hops_mean = 0.;
      energy_per_delivered = 0.;
      packets;
      edges;
      timeline;
      anomalies = !anomalies;
    }
  else begin
    let hops =
      Array.of_list (List.map (fun p -> float_of_int p.Packet.hops) delivered_packets)
    in
    let energy = Array.of_list (List.map (fun p -> p.Packet.energy) delivered_packets) in
    {
      totals;
      latency_mean = Stats.mean latencies;
      latency_median = Stats.percentile latencies 50.;
      latency_p95 = Stats.percentile latencies 95.;
      hops_mean = Stats.mean hops;
      energy_per_delivered = Stats.mean energy;
      packets;
      edges;
      timeline;
      anomalies = !anomalies;
    }
  end
