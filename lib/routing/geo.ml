open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Prng = Adhoc_util.Prng

type route = {
  nodes : int list;
  hops : int;
  length : float;
  energy : float;
  recovery_hops : int;
}

let two_pi = 2. *. Float.pi

(* Clockwise angular distance from [from_angle] to [to_angle], in (0, 2π]:
   0 maps to 2π so that the arrival edge is only re-used at dead ends. *)
let cw_delta ~from_angle ~to_angle =
  let d = Float.rem (from_angle -. to_angle) two_pi in
  let d = if d < 0. then d +. two_pi else d in
  if Float.equal d 0. then two_pi else d

(* Right-hand rule: the neighbour reached by the smallest clockwise
   rotation from the reference direction. *)
let next_right g points ~at ~ref_angle =
  let best = ref (-1) and best_delta = ref infinity in
  Graph.iter_neighbors g at (fun w _ ->
      let a = Point.angle_of points.(at) points.(w) in
      let d = cw_delta ~from_angle:ref_angle ~to_angle:a in
      if d < !best_delta || (d = !best_delta && (!best = -1 || w < !best)) then begin
        best := w;
        best_delta := d
      end);
  if !best = -1 then None else Some !best

let finish points ~recovery_hops visited =
  let nodes = List.rev visited in
  let rec measure len energy = function
    | a :: (b :: _ as rest) ->
        let d = Point.dist points.(a) points.(b) in
        measure (len +. d) (energy +. (d *. d)) rest
    | _ -> (len, energy)
  in
  let length, energy = measure 0. 0. nodes in
  { nodes; hops = List.length nodes - 1; length; energy; recovery_hops }

let greedy_step g points ~at ~dst =
  let d_at = Point.dist points.(at) points.(dst) in
  let best = ref (-1) and best_d = ref d_at in
  Graph.iter_neighbors g at (fun w _ ->
      let d = Point.dist points.(w) points.(dst) in
      if d < !best_d || (d = !best_d && !best >= 0 && w < !best) then begin
        best := w;
        best_d := d
      end);
  if !best = -1 then None else Some !best

let greedy g points ~src ~dst =
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Geo.greedy: node out of range";
  let rec walk visited at budget =
    if at = dst then Some (finish points ~recovery_hops:0 visited)
    else if budget = 0 then None
    else begin
      match greedy_step g points ~at ~dst with
      | None -> None
      | Some w -> walk (w :: visited) w (budget - 1)
    end
  in
  walk [ src ] src (2 * n)

let greedy_face ~planar g points ~src ~dst =
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Geo.greedy_face: node out of range";
  let budget = ref ((4 * Graph.num_edges planar) + n + 8) in
  let recovery = ref 0 in
  (* Greedy on [g]; at a void, right-hand face traversal on [planar] until a
     node strictly closer to the destination than the void entry. *)
  let rec greedy_mode visited at =
    if at = dst then Some (finish points ~recovery_hops:!recovery visited)
    else if !budget <= 0 then None
    else begin
      decr budget;
      match greedy_step g points ~at ~dst with
      | Some w -> greedy_mode (w :: visited) w
      | None ->
          let entry_dist = Point.dist points.(at) points.(dst) in
          let ref_angle = Point.angle_of points.(at) points.(dst) in
          face_mode visited ~at ~ref_angle ~entry_dist
    end
  and face_mode visited ~at ~ref_angle ~entry_dist =
    if !budget <= 0 then None
    else begin
      decr budget;
      incr recovery;
      match next_right planar points ~at ~ref_angle with
      | None -> None
      | Some w ->
          let visited = w :: visited in
          if w = dst then Some (finish points ~recovery_hops:!recovery visited)
          else if Point.dist points.(w) points.(dst) < entry_dist then greedy_mode visited w
          else begin
            (* Continue along the face: reference is the arrival edge. *)
            let ref_angle = Point.angle_of points.(w) points.(at) in
            face_mode visited ~at:w ~ref_angle ~entry_dist
          end
    end
  in
  greedy_mode [ src ] src

let success_rate g points ~rng ~trials =
  if trials <= 0 then invalid_arg "Geo.success_rate: trials must be positive";
  let n = Graph.n g in
  if n < 2 || Graph.num_edges g = 0 then 1.
  else begin
    let labels = Adhoc_graph.Components.labels g in
    let ok = ref 0 and done_ = ref 0 and attempts = ref 0 in
    while !done_ < trials && !attempts < 1000 * trials do
      incr attempts;
      let src = Prng.int rng n and dst = Prng.int rng n in
      if src <> dst && labels.(src) = labels.(dst) then begin
        incr done_;
        match greedy g points ~src ~dst with Some _ -> incr ok | None -> ()
      end
    done;
    if !done_ = 0 then 1. else float_of_int !ok /. float_of_int !done_
  end
