(** Packet-tracking variant of {!Engine}: the run {e is}
    {!Engine.run_mac_given} — same loop, same decisions, same stats — with
    the engine's [on_send] / [on_inject] hooks mirroring every buffer
    mutation onto FIFO identity queues of {!Packet.t}.  The run therefore
    additionally reports per-packet latency, hop and energy distributions,
    and matches {!Engine} bit-for-bit under the same inputs (tested). *)

type stats = {
  base : Engine.stats;
  latency_mean : float;
  latency_median : float;
  latency_p95 : float;
  hops_mean : float;
  energy_per_delivered : float;  (** mean energy charged to delivered packets *)
  packets : Packet.t list;  (** every admitted packet, delivered or not *)
}

val run_mac_given :
  ?cooldown:int ->
  ?obs:Adhoc_obs.sink ->
  ?pool:Adhoc_util.Pool.t ->
  ?pad:Adhoc_interference.Conflict.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  params:Balancing.params ->
  Workload.t ->
  stats
(** Scenario 1 with packet tracking (see {!Engine.run_mac_given}; [obs]
    and [pool] are passed straight through to it).  Latency fields are
    [0.] when nothing was delivered. *)
