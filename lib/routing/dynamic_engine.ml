module Graph = Adhoc_graph.Graph
module Conflict = Adhoc_interference.Conflict
module Model = Adhoc_interference.Model
module Event = Adhoc_obs.Event

type epoch = {
  graph : Graph.t;
  conflict : Conflict.t;
  steps : int;
}

let epoch_of_points ?(delta = 0.5) ?(theta = Float.pi /. 6.) ?(range_factor = 1.5) ~steps
    points =
  let range = range_factor *. Adhoc_topo.Udg.critical_range points in
  let overlay = Adhoc_topo.Theta_alg.overlay (Adhoc_topo.Theta_alg.build ~theta ~range points) in
  let conflict = Conflict.build (Model.make ~delta) ~points overlay in
  { graph = overlay; conflict; steps }

let run ?obs ?pool ~epochs ~injections ~cost ~params () =
  let n =
    match epochs with
    | [] -> invalid_arg "Dynamic_engine.run: no epochs"
    | e :: rest ->
        List.iter
          (fun e' ->
            if Graph.n e'.graph <> Graph.n e.graph then
              invalid_arg "Dynamic_engine.run: epochs disagree on node count")
          rest;
        Graph.n e.graph
  in
  let buffers = Buffers.create n in
  let robs = Engine.Run_obs.create obs ~n in
  let events = Adhoc_obs.events obs in
  let injected = ref 0
  and dropped = ref 0
  and delivered = ref 0
  and sends = ref 0
  and total_cost = ref 0.
  and peak = ref 0 in
  let steps_total = ref 0 in
  List.iteri
    (fun epoch_idx epoch ->
      let g = epoch.graph in
      (match events with
      | None -> ()
      | Some log -> Event.epoch_change log ~step:!steps_total ~epoch:epoch_idx);
      let m = Graph.num_edges g in
      let edge_cost = Array.init m (fun e -> cost (Graph.length g e)) in
      let colors, k = Conflict.greedy_coloring epoch.conflict in
      (* Colour classes precomputed once per epoch, as flat arrays in the
         descending edge-id order the per-step fold used to produce. *)
      let class_size = Array.make (max k 1) 0 in
      Array.iter (fun c -> class_size.(c) <- class_size.(c) + 1) colors;
      let by_class = Array.init (max k 1) (fun c -> Array.make class_size.(c) 0) in
      let fill = Array.make (max k 1) 0 in
      for e = m - 1 downto 0 do
        let c = colors.(e) in
        by_class.(c).(fill.(c)) <- e;
        fill.(c) <- fill.(c) + 1
      done;
      (* The cache is rebuilt per epoch (the topology changed); buffers
         persist, and create starts all-invalid, so no stale decisions
         survive an epoch boundary. *)
      let cache = Engine.Cache.create ~graph:g ~buffers ~params ~edge_cost in
      for local = 0 to epoch.steps - 1 do
        let t = !steps_total in
        incr steps_total;
        ignore local;
        (* Interference-free TDMA: activate one colour class per step. *)
        let active = if k = 0 then [||] else by_class.(t mod k) in
        let count = Array.length active in
        Engine.Run_obs.enter robs "engine/decide";
        Engine.Cache.flush cache;
        (* Decide in parallel on the pool (no-op without one), assemble
           sequentially in class order — bit-identical for every jobs. *)
        Engine.Cache.prepare ?pool cache active ~count;
        let decisions = ref [] in
        for i = count - 1 downto 0 do
          let e = active.(i) in
          (match Engine.Cache.bwd cache e with
          | Some b -> decisions := (e, b) :: !decisions
          | None -> ());
          match Engine.Cache.fwd cache e with
          | Some a -> decisions := (e, a) :: !decisions
          | None -> ()
        done;
        let decisions =
          List.stable_sort (fun (_, a) (_, b) -> Engine.application_order a b) !decisions
        in
        Engine.Run_obs.leave robs;
        Engine.Run_obs.enter robs "engine/apply";
        List.iter
          (fun (e, (d : Balancing.decision)) ->
            if Buffers.height buffers d.Balancing.src d.Balancing.dest > 0 then begin
              incr sends;
              total_cost := !total_cost +. edge_cost.(e);
              let outcome = Balancing.apply buffers d in
              (match outcome with
              | `Delivered -> incr delivered
              | `Moved ->
                  peak :=
                    max !peak (Buffers.height buffers d.Balancing.dst d.Balancing.dest));
              match events with
              | None -> ()
              | Some log -> (
                  Event.send log ~step:t ~edge:e ~src:d.Balancing.src ~dst:d.Balancing.dst
                    ~dest:d.Balancing.dest ~cost:edge_cost.(e)
                    ~outcome:
                      (match outcome with
                      | `Delivered -> Event.Delivered
                      | `Moved -> Event.Moved);
                  match outcome with
                  | `Delivered -> Event.deliver log ~step:t ~dst:d.Balancing.dest ~self:false
                  | `Moved -> ())
            end)
          decisions;
        List.iter
          (fun (src, dst) ->
            if Buffers.inject buffers ~cap:params.Balancing.capacity src dst then begin
              incr injected;
              (match events with
              | None -> ()
              | Some log ->
                  Event.inject log ~step:t ~src ~dst ~admitted:true;
                  if src = dst then Event.deliver log ~step:t ~dst ~self:true);
              if src = dst then incr delivered
              else peak := max !peak (Buffers.height buffers src dst)
            end
            else begin
              incr dropped;
              match events with
              | None -> ()
              | Some log -> Event.inject log ~step:t ~src ~dst ~admitted:false
            end)
          (injections t);
        Engine.Run_obs.leave robs;
        Engine.Run_obs.sample robs ~buffers ~step:t ~injected:!injected
          ~delivered:!delivered ~dropped:!dropped ~sends:!sends ~failed_sends:0
          ~active_edges:count
      done)
    epochs;
  let stats =
    {
      Engine.steps = !steps_total;
      injected = !injected;
      dropped = !dropped;
      delivered = !delivered;
      sends = !sends;
      failed_sends = 0;
      total_cost = !total_cost;
      peak_height = !peak;
      remaining = Buffers.total buffers;
    }
  in
  Engine.Run_obs.finish robs stats;
  stats
