(** Routing over a *changing* topology — the dynamics of the paper's
    adversarial model made concrete: the network is a sequence of epochs
    (e.g. snapshots of a mobile deployment), buffers persist across epochs,
    and the (T, γ)-balancing rule keeps operating on whatever edges the
    current epoch offers.

    Within an epoch, edges are activated by colour classes of the epoch's
    conflict structure (an interference-free TDMA MAC), so each step's
    active set is valid under the guard-zone model.  Because certifying an
    optimal schedule across adversarial topology changes is exactly the
    intractable OPT, this engine reports absolute delivery metrics rather
    than competitive ratios. *)

type epoch = {
  graph : Adhoc_graph.Graph.t;  (** topology for this epoch; same node count throughout *)
  conflict : Adhoc_interference.Conflict.t;
  steps : int;
}

val epoch_of_points :
  ?delta:float ->
  ?theta:float ->
  ?range_factor:float ->
  steps:int ->
  Adhoc_geom.Point.t array ->
  epoch
(** Convenience: ΘALG overlay + conflict structure for one snapshot
    (defaults: Δ = 0.5, θ = π/6, range = 1.5 × connectivity threshold). *)

val run :
  ?obs:Adhoc_obs.sink ->
  ?pool:Adhoc_util.Pool.t ->
  epochs:epoch list ->
  injections:(int -> (int * int) list) ->
  cost:Adhoc_graph.Cost.t ->
  params:Balancing.params ->
  unit ->
  Engine.stats
(** [injections t] gives the (src, dest) packets injected at global step
    [t]; steps count across all epochs.  Packets buffered at a node whose
    current epoch offers no useful edge simply wait — exactly the paper's
    model, where progress resumes whenever the adversary re-enables a
    path.

    [obs] behaves as in {!Engine.run_mac_given}: [engine/decide] /
    [engine/apply] spans, [engine.*] counters, the max-height histogram
    and stride-gated trace samples; an attached event log additionally
    gets one [Epoch_change] per epoch (at the global step it starts),
    and the usual inject / send / deliver events.  [None] leaves the run
    bit-identical.

    [pool] fans each step's colour-class decision computations out on the
    domain pool (decide-parallel / apply-sequential, as in
    {!Engine.run_mac_given}); results are bit-identical for every pool
    size. *)
