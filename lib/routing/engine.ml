module Graph = Adhoc_graph.Graph
module Conflict = Adhoc_interference.Conflict
module Mac = Adhoc_mac.Mac

type stats = {
  steps : int;
  injected : int;
  dropped : int;
  delivered : int;
  sends : int;
  failed_sends : int;
  total_cost : float;
  peak_height : int;
  remaining : int;
}

let throughput_ratio s (opt : Workload.opt_stats) =
  if opt.Workload.deliveries = 0 then 0.
  else float_of_int s.delivered /. float_of_int opt.Workload.deliveries

let cost_ratio s (opt : Workload.opt_stats) =
  if s.delivered = 0 || opt.Workload.avg_cost <= 0. then Float.nan
  else s.total_cost /. float_of_int s.delivered /. opt.Workload.avg_cost

type counters = {
  mutable injected : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable sends : int;
  mutable failed_sends : int;
  mutable total_cost : float;
  mutable peak_height : int;
}

let fresh_counters () =
  {
    injected = 0;
    dropped = 0;
    delivered = 0;
    sends = 0;
    failed_sends = 0;
    total_cost = 0.;
    peak_height = 0;
  }

(* ------------------------------------------------------------------ *)
(* Incremental decision cache.

   [Balancing.best_toward] over an edge depends only on the buffer heights
   at its two endpoints (and the static edge cost), and its argmax is
   order-independent, so a cached decision stays exact until a height at
   either endpoint changes.  A watcher on the buffers collects the nodes
   whose heights changed into a dirty set; flushing at the start of each
   step invalidates only the edges incident to dirty nodes.  Per-step work
   therefore tracks what changed in a neighbourhood instead of rescanning
   every edge's buffers. *)
module Cache = struct
  type t = {
    graph : Graph.t;
    buffers : Buffers.t;
    params : Balancing.params;
    edge_cost : float array;
    fwd : Balancing.decision option array;  (* u -> v, by edge id *)
    bwd : Balancing.decision option array;  (* v -> u *)
    valid : bool array;
    mutable dirty : int list;  (* nodes whose heights changed since flush *)
    node_dirty : bool array;
  }

  let create ~graph ~buffers ~params ~edge_cost =
    let m = Graph.num_edges graph in
    let c =
      {
        graph;
        buffers;
        params;
        edge_cost;
        fwd = Array.make m None;
        bwd = Array.make m None;
        valid = Array.make m false;
        dirty = [];
        node_dirty = Array.make (Graph.n graph) false;
      }
    in
    Buffers.set_watcher buffers (fun v _d ->
        if not c.node_dirty.(v) then begin
          c.node_dirty.(v) <- true;
          c.dirty <- v :: c.dirty
        end);
    c

  (* Invalidate the edges incident to nodes touched since the last flush.
     Called at the start of each step, so within a step every lookup
     returns the decision on start-of-step heights (the paper's
     simultaneous rule). *)
  let flush c =
    (match c.dirty with
    | [] -> ()
    | dirty ->
        List.iter
          (fun v ->
            c.node_dirty.(v) <- false;
            Graph.iter_neighbors c.graph v (fun _ id -> c.valid.(id) <- false))
          dirty);
    c.dirty <- []

  let refresh c e =
    let u, v = Graph.endpoints c.graph e in
    let cost = c.edge_cost.(e) in
    c.fwd.(e) <- Balancing.best_toward c.buffers c.params ~cost ~src:u ~dst:v;
    c.bwd.(e) <- Balancing.best_toward c.buffers c.params ~cost ~src:v ~dst:u;
    c.valid.(e) <- true

  (* Parallel decision fan-out: refresh every invalidated edge among the
     first [count] entries of [act] on the domain pool, so the sequential
     scan that follows only reads cache hits.  Each task reads start-of-step
     heights (nothing mutates the buffers during the decide phase) and
     writes only its own edge's cells, so the region is par-safe; [refresh]
     is a pure function of those heights, so the cached decisions are
     bit-identical to the lazy sequential path for any pool size.  No-op
     without a pool: lookups then refresh lazily as before. *)
  let prepare ?pool c act ~count =
    match pool with
    | None -> ()
    | Some p ->
        Adhoc_util.Pool.parallel_for p ~label:"engine/decide" count (fun i ->
            let e = act.(i) in
            if not c.valid.(e) then refresh c e)

  let fwd c e =
    if not c.valid.(e) then refresh c e;
    c.fwd.(e)

  let bwd c e =
    if not c.valid.(e) then refresh c e;
    c.bwd.(e)

  (* Same preference as {!Balancing.best_either}: ties go to u -> v. *)
  let either c e =
    if not c.valid.(e) then refresh c e;
    match (c.fwd.(e), c.bwd.(e)) with
    | (None, d) | (d, None) -> d
    | (Some f, Some b) as both ->
        if b.Balancing.gain > f.Balancing.gain then snd both else fst both
end

(* ------------------------------------------------------------------ *)
(* Colour-class padding.  The classes and the conflict adjacency are
   precomputed once per run; per step, base membership and interference
   with the base are checked against scratch marks instead of scanning
   the base list per edge. *)
module Pad = struct
  type t = {
    conflict_adj : int array array;
    by_class : int array array;  (* ascending edge ids per colour class *)
    num_classes : int;
    in_base : bool array;  (* per-edge scratch, cleared after each step *)
  }

  let create conflict =
    let colors, k = Conflict.greedy_coloring conflict in
    let m = Array.length colors in
    let class_size = Array.make (max k 1) 0 in
    for e = 0 to m - 1 do
      class_size.(colors.(e)) <- class_size.(colors.(e)) + 1
    done;
    let by_class = Array.init (max k 1) (fun c -> Array.make class_size.(c) 0) in
    let fill = Array.make (max k 1) 0 in
    for e = 0 to m - 1 do
      let c = colors.(e) in
      by_class.(c).(fill.(c)) <- e;
      fill.(c) <- fill.(c) + 1
    done;
    {
      conflict_adj = Conflict.adjacency conflict;
      by_class;
      num_classes = k;
      in_base = Array.make m false;
    }

  (* Writes [base] plus the step's colour class into the scratch array
     [into], skipping base duplicates and class edges that interfere with
     a base edge; extras follow the base in ascending edge-id order.
     Returns the live count.  No per-step list building. *)
  let active p ~step ~into base =
    let k = ref 0 in
    List.iter
      (fun e ->
        into.(!k) <- e;
        incr k;
        p.in_base.(e) <- true)
      base;
    if p.num_classes > 0 then begin
      let cls = step mod p.num_classes in
      Array.iter
        (fun id ->
          if
            (not p.in_base.(id))
            && not (Array.exists (fun e' -> p.in_base.(e')) p.conflict_adj.(id))
          then begin
            into.(!k) <- id;
            incr k
          end)
        p.by_class.(cls)
    end;
    List.iter (fun e -> p.in_base.(e) <- false) base;
    !k
end

(* Copy a base activation list into the active-edge scratch array. *)
let fill_active into base =
  let k = ref 0 in
  List.iter
    (fun e ->
      into.(!k) <- e;
      incr k)
    base;
  !k

let do_injections ?(events : Adhoc_obs.Event.log option) ~on_inject ~step buffers
    (params : Balancing.params) counters injections =
  List.iter
    (fun (src, dst) ->
      if Buffers.inject buffers ~cap:params.Balancing.capacity src dst then begin
        counters.injected <- counters.injected + 1;
        (match events with
        | None -> ()
        | Some log ->
            Adhoc_obs.Event.inject log ~step ~src ~dst ~admitted:true;
            if src = dst then Adhoc_obs.Event.deliver log ~step ~dst ~self:true);
        (* A packet injected at its destination is absorbed immediately. *)
        if src = dst then counters.delivered <- counters.delivered + 1
        else counters.peak_height <- max counters.peak_height (Buffers.height buffers src dst);
        match on_inject with None -> () | Some f -> f ~step ~src ~dst true
      end
      else begin
        counters.dropped <- counters.dropped + 1;
        (match events with
        | None -> ()
        | Some log -> Adhoc_obs.Event.inject log ~step ~src ~dst ~admitted:false);
        match on_inject with None -> () | Some f -> f ~step ~src ~dst false
      end)
    injections

(* Decisions are taken on start-of-step heights (the paper's rule is
   simultaneous across edges); application checks that the source buffer
   still holds a packet, since several edges may have decided to drain the
   same buffer.  An unavailable send does not transmit and costs nothing. *)
let attempt_send ?(events : Adhoc_obs.Event.log option) buffers counters ~on_send ~step
    ~edge ~edge_cost decision_opt ~collided =
  match decision_opt with
  | None -> ()
  | Some d ->
      if Buffers.height buffers d.Balancing.src d.Balancing.dest > 0 then begin
        counters.sends <- counters.sends + 1;
        counters.total_cost <- counters.total_cost +. edge_cost;
        if collided then begin
          counters.failed_sends <- counters.failed_sends + 1;
          match events with
          | None -> ()
          | Some log ->
              Adhoc_obs.Event.collide log ~step ~edge ~src:d.Balancing.src
                ~dst:d.Balancing.dst ~dest:d.Balancing.dest ~cost:edge_cost
        end
        else begin
          let outcome = Balancing.apply buffers d in
          (match outcome with
          | `Delivered -> counters.delivered <- counters.delivered + 1
          | `Moved ->
              counters.peak_height <-
                max counters.peak_height
                  (Buffers.height buffers d.Balancing.dst d.Balancing.dest));
          (match events with
          | None -> ()
          | Some log -> (
              Adhoc_obs.Event.send log ~step ~edge ~src:d.Balancing.src ~dst:d.Balancing.dst
                ~dest:d.Balancing.dest ~cost:edge_cost
                ~outcome:
                  (match outcome with
                  | `Delivered -> Adhoc_obs.Event.Delivered
                  | `Moved -> Adhoc_obs.Event.Moved);
              match outcome with
              | `Delivered ->
                  Adhoc_obs.Event.deliver log ~step ~dst:d.Balancing.dest ~self:false
              | `Moved -> ()));
          match on_send with None -> () | Some f -> f ~step ~edge d outcome
        end
      end

(* ------------------------------------------------------------------ *)
(* Observability.  Every instrumentation site is a single [match] on the
   optional sink, so a run without one stays allocation-free on the hot
   path and bit-identical in behaviour (pinned by test). *)

let span_enter obs label =
  match obs with None -> () | Some o -> Adhoc_obs.Span.enter o.Adhoc_obs.spans label

let span_leave obs =
  match obs with None -> () | Some o -> Adhoc_obs.Span.leave o.Adhoc_obs.spans

(* Counter state as of the previous recorded trace sample, so each sample
   carries the deltas over its stride window and no event is lost between
   recorded steps. *)
type trace_prev = {
  mutable p_injected : int;
  mutable p_delivered : int;
  mutable p_dropped : int;
  mutable p_sends : int;
  mutable p_failed : int;
}

let fresh_prev () =
  { p_injected = 0; p_delivered = 0; p_dropped = 0; p_sends = 0; p_failed = 0 }

let record_sample tr ~n ~buffers ~counters ~prev ~step ~active_edges =
  let buffered = Buffers.total buffers in
  Adhoc_obs.Trace.record tr
    {
      Adhoc_obs.Trace.step;
      buffered;
      max_height = Buffers.max_height buffers;
      mean_height = float_of_int buffered /. float_of_int n;
      injected = counters.injected - prev.p_injected;
      delivered = counters.delivered - prev.p_delivered;
      dropped = counters.dropped - prev.p_dropped;
      sends = counters.sends - prev.p_sends;
      failed_sends = counters.failed_sends - prev.p_failed;
      active_edges;
    };
  prev.p_injected <- counters.injected;
  prev.p_delivered <- counters.delivered;
  prev.p_dropped <- counters.dropped;
  prev.p_sends <- counters.sends;
  prev.p_failed <- counters.failed_sends

let height_buckets = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]

(* When several simultaneous decisions contend for the same source buffer,
   application order decides who wins.  Deliveries first, then larger gains:
   both strictly decrease the system's potential, and this prevents a lone
   packet from being bounced backwards past a pending delivery. *)
let application_order (a : Balancing.decision) (b : Balancing.decision) =
  let delivers d = d.Balancing.dst = d.Balancing.dest in
  match (delivers a, delivers b) with
  | true, false -> -1
  | false, true -> 1
  | _ -> Float.compare b.Balancing.gain a.Balancing.gain

let finish ~steps buffers counters =
  {
    steps;
    injected = counters.injected;
    dropped = counters.dropped;
    delivered = counters.delivered;
    sends = counters.sends;
    failed_sends = counters.failed_sends;
    total_cost = counters.total_cost;
    peak_height = counters.peak_height;
    remaining = Buffers.total buffers;
  }

(* End-of-run snapshot into the metrics registry: totals as counters (they
   accumulate across runs sharing a sink), extrema and leftovers as
   gauges. *)
let record_stats obs (s : stats) =
  match obs with
  | None -> ()
  | Some o ->
      let m = o.Adhoc_obs.metrics in
      let c name v = Adhoc_obs.Metrics.add (Adhoc_obs.Metrics.counter m name) v in
      let g name v = Adhoc_obs.Metrics.set (Adhoc_obs.Metrics.gauge m name) v in
      c "engine.steps" s.steps;
      c "engine.injected" s.injected;
      c "engine.dropped" s.dropped;
      c "engine.delivered" s.delivered;
      c "engine.sends" s.sends;
      c "engine.failed_sends" s.failed_sends;
      g "engine.total_cost" s.total_cost;
      g "engine.peak_height" (float_of_int s.peak_height);
      g "engine.remaining" (float_of_int s.remaining)

(* Per-run observability bundle shared with the engine variants
   ({!Dynamic_engine}, {!Quantized_engine}): span scopes, the per-step
   max-height histogram, stride-gated trace samples with delta counters,
   and the end-of-run metrics flush — so a variant gets PR 2 parity from
   four calls instead of reimplementing the bookkeeping. *)
module Run_obs = struct
  type t = {
    obs : Adhoc_obs.sink option;
    n : int;
    height_hist : Adhoc_obs.Metrics.histogram option;
    prev : trace_prev;
  }

  let create obs ~n =
    let height_hist =
      match obs with
      | None -> None
      | Some o ->
          Some
            (Adhoc_obs.Metrics.histogram o.Adhoc_obs.metrics "engine.step_max_height"
               ~buckets:height_buckets)
    in
    { obs; n; height_hist; prev = fresh_prev () }

  let enter t label = span_enter t.obs label
  let leave t = span_leave t.obs

  let sample t ~buffers ~step ~injected ~delivered ~dropped ~sends ~failed_sends
      ~active_edges =
    (match t.height_hist with
    | None -> ()
    | Some h -> Adhoc_obs.Metrics.observe h (float_of_int (Buffers.max_height buffers)));
    match t.obs with
    | Some { Adhoc_obs.trace = Some tr; _ } when Adhoc_obs.Trace.wants tr ~step ->
        let buffered = Buffers.total buffers in
        Adhoc_obs.Trace.record tr
          {
            Adhoc_obs.Trace.step;
            buffered;
            max_height = Buffers.max_height buffers;
            mean_height = float_of_int buffered /. float_of_int t.n;
            injected = injected - t.prev.p_injected;
            delivered = delivered - t.prev.p_delivered;
            dropped = dropped - t.prev.p_dropped;
            sends = sends - t.prev.p_sends;
            failed_sends = failed_sends - t.prev.p_failed;
            active_edges;
          };
        t.prev.p_injected <- injected;
        t.prev.p_delivered <- delivered;
        t.prev.p_dropped <- dropped;
        t.prev.p_sends <- sends;
        t.prev.p_failed <- failed_sends
    | _ -> ()

  let finish t stats = record_stats t.obs stats
end

let run_mac_given ?(cooldown = 0) ?obs ?pool ?on_step ?on_send ?on_inject ?cost_at ?pad
    ~graph ~cost ~params (w : Workload.t) =
  let n = Graph.n graph in
  let m = Graph.num_edges graph in
  let buffers = Buffers.create n in
  let counters = fresh_counters () in
  let prev = fresh_prev () in
  let events = Adhoc_obs.events obs in
  let height_hist =
    match obs with
    | None -> None
    | Some o ->
        Some
          (Adhoc_obs.Metrics.histogram o.Adhoc_obs.metrics "engine.step_max_height"
             ~buckets:height_buckets)
  in
  (* [cost_at] overrides the static costs for every edge and step, so the
     static table would be dead weight: only build it (and the decision
     cache keyed on it) when costs are static. *)
  let edge_cost =
    match cost_at with
    | Some _ -> [||]
    | None -> Array.init m (fun e -> cost (Graph.length graph e))
  in
  let cache =
    match cost_at with
    | Some _ -> None
    | None -> Some (Cache.create ~graph ~buffers ~params ~edge_cost)
  in
  let pad_state = Option.map Pad.create pad in
  let active_buf = Array.make (max m 1) 0 in
  let steps = w.Workload.horizon + cooldown in
  for t = 0 to steps - 1 do
    let base = if t < w.Workload.horizon then w.Workload.activations.(t) else [] in
    let count =
      match pad_state with
      | Some p -> Pad.active p ~step:t ~into:active_buf base
      | None -> fill_active active_buf base
    in
    (* Decide every send on the step's starting heights, then apply. *)
    let step_cost e =
      match cost_at with Some f -> f ~step:t ~edge:e | None -> edge_cost.(e)
    in
    span_enter obs "engine/decide";
    (match cache with Some c -> Cache.flush c | None -> ());
    (* Fan the decision computations out on the pool (no-op without one),
       then assemble the (edge, decision) list sequentially in the same
       active order as before — so the applied sequence is bit-identical
       for every [--jobs].  The dynamic-cost path has no cache (and an
       arbitrary [cost_at] closure), so it stays sequential. *)
    (match cache with
    | Some c -> Cache.prepare ?pool c active_buf ~count
    | None -> ());
    let decisions = ref [] in
    (match cache with
    | Some c ->
        for i = count - 1 downto 0 do
          let e = active_buf.(i) in
          (match Cache.bwd c e with
          | Some b -> decisions := (e, b) :: !decisions
          | None -> ());
          match Cache.fwd c e with
          | Some a -> decisions := (e, a) :: !decisions
          | None -> ()
        done
    | None ->
        for i = count - 1 downto 0 do
          let e = active_buf.(i) in
          let u, v = Graph.endpoints graph e in
          let c = step_cost e in
          (match Balancing.best_toward buffers params ~cost:c ~src:v ~dst:u with
          | Some b -> decisions := (e, b) :: !decisions
          | None -> ());
          match Balancing.best_toward buffers params ~cost:c ~src:u ~dst:v with
          | Some a -> decisions := (e, a) :: !decisions
          | None -> ()
        done);
    let decisions =
      List.stable_sort (fun (_, a) (_, b) -> application_order a b) !decisions
    in
    span_leave obs;
    span_enter obs "engine/apply";
    List.iter
      (fun (e, d) ->
        attempt_send ?events buffers counters ~on_send ~step:t ~edge:e
          ~edge_cost:(step_cost e) (Some d) ~collided:false)
      decisions;
    if t < w.Workload.horizon then
      do_injections ?events ~on_inject ~step:t buffers params counters
        w.Workload.injections.(t);
    span_leave obs;
    (match height_hist with
    | None -> ()
    | Some h -> Adhoc_obs.Metrics.observe h (float_of_int (Buffers.max_height buffers)));
    (match obs with
    | Some { Adhoc_obs.trace = Some tr; _ } when Adhoc_obs.Trace.wants tr ~step:t ->
        record_sample tr ~n ~buffers ~counters ~prev ~step:t ~active_edges:count
    | _ -> ());
    match on_step with
    | Some f -> f ~step:t ~delivered:counters.delivered ~buffered:(Buffers.total buffers)
    | None -> ()
  done;
  let stats = finish ~steps buffers counters in
  record_stats obs stats;
  stats

let run_with_mac ?(cooldown = 0) ?obs ?pool ?on_step ?on_send ?on_inject ?collisions ~graph
    ~cost ~params ~mac (w : Workload.t) =
  let n = Graph.n graph in
  let m = Graph.num_edges graph in
  let buffers = Buffers.create n in
  let counters = fresh_counters () in
  let prev = fresh_prev () in
  let events = Adhoc_obs.events obs in
  let height_hist =
    match obs with
    | None -> None
    | Some o ->
        Some
          (Adhoc_obs.Metrics.histogram o.Adhoc_obs.metrics "engine.step_max_height"
             ~buckets:height_buckets)
  in
  let mac = match obs with None -> mac | Some o -> Mac.instrument o mac in
  let edge_cost = Array.init m (fun e -> cost (Graph.length graph e)) in
  let cache = Cache.create ~graph ~buffers ~params ~edge_cost in
  let conflict_adj = Option.map Conflict.adjacency collisions in
  (* Scratch marks for the granted set, so collision checks walk an edge's
     interference neighbourhood instead of the whole granted list. *)
  let granted_mark = Array.make m false in
  (* Every edge is a candidate each step, so the parallel fan-out covers
     the whole edge range. *)
  let all_edges = Array.init m Fun.id in
  let steps = w.Workload.horizon + cooldown in
  for t = 0 to steps - 1 do
    (* Requests: the best prospective send per edge, decided on the step's
       starting heights.  Only edges whose endpoints changed since the
       last step are recomputed — in parallel on the pool when present. *)
    span_enter obs "engine/decide";
    Cache.flush cache;
    Cache.prepare ?pool cache all_edges ~count:m;
    let requests = ref [] in
    for e = m - 1 downto 0 do
      match Cache.either cache e with
      | None -> ()
      | Some d ->
          requests :=
            { Mac.edge = e; sender = d.Balancing.src; benefit = d.Balancing.gain }
            :: !requests
    done;
    span_leave obs;
    let granted = mac.Mac.select ~step:t !requests in
    span_enter obs "engine/apply";
    if conflict_adj <> None then
      List.iter (fun (r : Mac.request) -> granted_mark.(r.Mac.edge) <- true) granted;
    let collided (r : Mac.request) =
      match conflict_adj with
      | None -> false
      | Some adj ->
          (* Adjacency lists never contain the edge itself. *)
          Array.exists (fun e' -> granted_mark.(e')) adj.(r.Mac.edge)
    in
    let ordered =
      List.stable_sort
        (fun (a : Mac.request) (b : Mac.request) ->
          match (Cache.either cache a.Mac.edge, Cache.either cache b.Mac.edge) with
          | Some da, Some db -> application_order da db
          | _ -> 0)
        granted
    in
    List.iter
      (fun (r : Mac.request) ->
        let e = r.Mac.edge in
        attempt_send ?events buffers counters ~on_send ~step:t ~edge:e
          ~edge_cost:edge_cost.(e) (Cache.either cache e) ~collided:(collided r))
      ordered;
    if conflict_adj <> None then
      List.iter (fun (r : Mac.request) -> granted_mark.(r.Mac.edge) <- false) granted;
    if t < w.Workload.horizon then
      do_injections ?events ~on_inject ~step:t buffers params counters
        w.Workload.injections.(t);
    span_leave obs;
    (match height_hist with
    | None -> ()
    | Some h -> Adhoc_obs.Metrics.observe h (float_of_int (Buffers.max_height buffers)));
    (match obs with
    | Some { Adhoc_obs.trace = Some tr; _ } when Adhoc_obs.Trace.wants tr ~step:t ->
        record_sample tr ~n ~buffers ~counters ~prev ~step:t
          ~active_edges:(List.length granted)
    | _ -> ());
    match on_step with
    | Some f -> f ~step:t ~delivered:counters.delivered ~buffered:(Buffers.total buffers)
    | None -> ()
  done;
  let stats = finish ~steps buffers counters in
  record_stats obs stats;
  stats
