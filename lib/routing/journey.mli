(** Offline packet-journey reconstruction from an {!Adhoc_obs.Event} log.

    The event stream records every admission and every transmission in the
    order the engine applied them, and the engines move packets FIFO per
    (node, destination) buffer cell — the same discipline
    {!Tracked_engine} mirrors online.  Replaying the log through identity
    queues therefore reconstructs each packet's journey exactly: under the
    same workload, {!analyze} on a run's event log reproduces
    {!Tracked_engine}'s latency / hops / energy statistics bit-for-bit
    (tested).  This is what lets [adhoc_sim analyze] compute per-packet
    analytics from a JSONL file long after the run, with the live run
    paying only the cost of appending events. *)

type totals = {
  steps : int;  (** last event's step + 1 (observed steps; quiet cooldown
                    tail steps leave no events and are not counted) *)
  injected : int;  (** admitted, including self-injections *)
  dropped : int;
  delivered : int;  (** self-deliveries included *)
  self_deliveries : int;
  sends : int;  (** successful transmissions *)
  collisions : int;
  energy : float;
      (** cost of all attempts, collided included, summed in event order —
          equals the engine's [total_cost] bit-for-bit *)
  epochs : int;  (** [Epoch_change] events seen *)
  height_adverts : int;  (** [Height_advert] events seen *)
}

type edge_use = {
  edge : int;
  u : int;
  v : int;  (** endpoints as observed from the first send over the edge *)
  sends : int;
  collisions : int;
  energy : float;  (** attempts over this edge, collided included *)
  wait_sum : float;
      (** total head-of-line wait: for each successful send, the steps the
          forwarded packet had been sitting at the sending node *)
}

val mean_wait : edge_use -> float
(** [wait_sum / sends]; [0.] for an edge with collisions only. *)

type t = {
  totals : totals;
  latency_mean : float;
  latency_median : float;
  latency_p95 : float;
  hops_mean : float;
  energy_per_delivered : float;
      (** mean energy charged to delivered packets (successful sends only,
          as in {!Tracked_engine}) *)
  packets : Packet.t list;
      (** every admitted non-self packet, injection order *)
  edges : edge_use array;  (** ascending edge id *)
  timeline : (int * int * int) array;
      (** one [(step, cumulative deliveries, packets buffered)] snapshot
          per distinct step that produced events, ascending *)
  anomalies : int;
      (** events that could not be replayed (send from an empty queue, or
          a [Moved] outcome terminating at its destination) — [0] for any
          log an engine wrote; nonzero means the log is corrupt or
          truncated *)
}

val analyze : Adhoc_obs.Event.t array -> t
(** Replays the events in order.  Latency fields are [0.] when nothing
    was delivered (matching {!Tracked_engine}).  Corrupt logs do not
    raise: unplayable events are counted in [anomalies] and skipped. *)
