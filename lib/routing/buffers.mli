(** Per-destination packet buffers [Q_{v,d}] (paper Section 3.1).

    The balancing algorithm never inspects packet identity — only buffer
    heights — so buffers store counts.  The destination's own buffer
    [Q_{d,d}] is always empty: arrivals there are absorbed (delivered).

    State is flat struct-of-arrays: each node holds a sorted growable
    row of nonzero destinations, so memory is O(n + live buffers) and
    {!iter_nonzero}/{!fold_nonzero} are deterministic ascending-order
    traversals. *)

(** Generic sparse integer rows: per-row sorted (key, value) pairs in
    growable parallel int arrays, values never 0.  Reused by the
    quantized engine for advertised-height state. *)
module Sparse : sig
  type t

  val create : int -> t
  (** [create n] makes [n] empty rows. *)

  val size : t -> int
  (** Number of rows. *)

  val find : t -> int -> int -> int
  (** [find t v k] is the index of [k] in row [v] when present,
      otherwise [lnot insertion_point]. *)

  val get : t -> int -> int -> int
  (** [get t v k] is the value stored for [k] in row [v], or 0. *)

  val set : t -> int -> int -> int -> unit
  (** [set t v k x] stores [x]; storing 0 removes the entry. *)

  val update : t -> int -> int -> int -> int
  (** [update t v k delta] adds [delta] to the stored value (0 when
      absent), removes the entry if the result is 0, and returns the new
      value. *)

  val row_length : t -> int -> int
  (** Live entries in a row. *)

  val iter_row : t -> int -> (int -> int -> unit) -> unit
  (** [iter_row t v f] calls [f k x] for each live entry in ascending
      key order.  [f] must not mutate row [v]. *)

  val fold_row : t -> int -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
end

type t

val create : int -> t
(** [create n] makes empty buffers for [n] nodes (and [n] possible
    destinations). *)

val nodes : t -> int

val height : t -> int -> int -> int
(** [height t v d] is [h_{v,d}].  O(log live) binary search in [v]'s
    nonzero row. *)

val inject : t -> cap:int -> int -> int -> bool
(** [inject t ~cap src dest] adds a packet to [Q_{src,dest}] unless the
    buffer already holds [cap] packets ([false] = dropped) or
    [src = dest] (absorbed immediately, returns [true]). *)

val force_add : t -> int -> int -> unit
(** Adds a packet regardless of any cap (used for in-transit arrivals,
    which the algorithm never drops). *)

val remove : t -> int -> int -> unit
(** Removes one packet from [Q_{v,d}].  Requires a positive height. *)

val iter_nonzero : t -> int -> (int -> int -> unit) -> unit
(** [iter_nonzero t v f] calls [f d h] for every destination with
    [h = h_{v,d} > 0], in ascending destination order.  [f] must not
    mutate [v]'s buffers. *)

val fold_nonzero : t -> int -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** Ascending destination order, like {!iter_nonzero}. *)

val total : t -> int
(** Total packets currently buffered. *)

val max_height : t -> int
(** Largest buffer height present.  O(1): tracked incrementally across
    adds and removes. *)

val set_watcher : t -> (int -> int -> unit) -> unit
(** [set_watcher t f] makes every height change call [f v d] (after the
    change is applied).  At most one watcher is active; setting a new one
    replaces the old.  The engines use this to maintain dirty-node sets
    for incremental decision caching. *)

val clear_watcher : t -> unit
