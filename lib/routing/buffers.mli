(** Per-destination packet buffers [Q_{v,d}] (paper Section 3.1).

    The balancing algorithm never inspects packet identity — only buffer
    heights — so buffers store counts.  The destination's own buffer
    [Q_{d,d}] is always empty: arrivals there are absorbed (delivered). *)

type t

val create : int -> t
(** [create n] makes empty buffers for [n] nodes (and [n] possible
    destinations). *)

val nodes : t -> int

val height : t -> int -> int -> int
(** [height t v d] is [h_{v,d}]. *)

val inject : t -> cap:int -> int -> int -> bool
(** [inject t ~cap src dest] adds a packet to [Q_{src,dest}] unless the
    buffer already holds [cap] packets ([false] = dropped) or
    [src = dest] (absorbed immediately, returns [true]). *)

val force_add : t -> int -> int -> unit
(** Adds a packet regardless of any cap (used for in-transit arrivals,
    which the algorithm never drops). *)

val remove : t -> int -> int -> unit
(** Removes one packet from [Q_{v,d}].  Requires a positive height. *)

val iter_nonzero : t -> int -> (int -> int -> unit) -> unit
(** [iter_nonzero t v f] calls [f d h] for every destination with
    [h = h_{v,d} > 0]. *)

val fold_nonzero : t -> int -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

val total : t -> int
(** Total packets currently buffered. *)

val max_height : t -> int
(** Largest buffer height present.  O(1): tracked incrementally across
    adds and removes. *)

val set_watcher : t -> (int -> int -> unit) -> unit
(** [set_watcher t f] makes every height change call [f v d] (after the
    change is applied).  At most one watcher is active; setting a new one
    replaces the old.  The engines use this to maintain dirty-node sets
    for incremental decision caching. *)

val clear_watcher : t -> unit
