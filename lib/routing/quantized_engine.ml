module Graph = Adhoc_graph.Graph
module Event = Adhoc_obs.Event
module Sparse = Buffers.Sparse

type stats = {
  base : Engine.stats;
  control_messages : int;
  full_exchange_messages : int;
}

let run_mac_given ?(cooldown = 0) ?obs ?pool ?pad ~quantum ~graph ~cost ~params
    (w : Workload.t) =
  if quantum < 0 then invalid_arg "Quantized_engine.run_mac_given: negative quantum";
  let n = Graph.n graph in
  let m = Graph.num_edges graph in
  let buffers = Buffers.create n in
  let robs = Engine.Run_obs.create obs ~n in
  let events = Adhoc_obs.events obs in
  (* Advertised heights: what neighbours believe about each buffer.  Sparse
     rows (nonzero advertisements only), so memory stays O(n + live). *)
  let advertised = Sparse.create n in
  let control = ref 0 in
  let injected = ref 0
  and dropped = ref 0
  and delivered = ref 0
  and sends = ref 0
  and total_cost = ref 0.
  and peak = ref 0 in
  let edge_cost = Array.init m (fun e -> cost (Graph.length graph e)) in
  let pad_state = Option.map Engine.Pad.create pad in
  let active_buf = Array.make (max m 1) 0 in
  (* A cell can only drift past the quantum if its true height changed
     since it was last checked, so the advertisement phase needs to look at
     changed cells only.  The dedup marker is sparse too (1 = queued). *)
  let cell_dirty = Sparse.create n in
  let dirty_cells = ref [] in
  Buffers.set_watcher buffers (fun v d ->
      if Sparse.get cell_dirty v d = 0 then begin
        Sparse.set cell_dirty v d 1;
        dirty_cells := (v, d) :: !dirty_cells
      end);
  let node_changed = Array.make n false in
  let steps = w.Workload.horizon + cooldown in
  for t = 0 to steps - 1 do
    (* Advertisement phase: one broadcast per node whose heights drifted
       beyond the quantum since last advertised. *)
    Engine.Run_obs.enter robs "engine/advertise";
    let announced = ref 0 in
    List.iter
      (fun (v, d) ->
        Sparse.set cell_dirty v d 0;
        let h = Buffers.height buffers v d in
        if abs (h - Sparse.get advertised v d) > quantum then begin
          Sparse.set advertised v d h;
          if not node_changed.(v) then begin
            node_changed.(v) <- true;
            incr announced;
            match events with
            | None -> ()
            | Some log -> Event.height_advert log ~step:t ~node:v
          end
        end)
      !dirty_cells;
    if !announced > 0 then begin
      control := !control + !announced;
      List.iter (fun (v, _) -> node_changed.(v) <- false) !dirty_cells
    end;
    dirty_cells := [];
    Engine.Run_obs.leave robs;
    let base = if t < w.Workload.horizon then w.Workload.activations.(t) else [] in
    let count =
      match pad_state with
      | Some p -> Engine.Pad.active p ~step:t ~into:active_buf base
      | None ->
          let k = ref 0 in
          List.iter
            (fun e ->
              active_buf.(!k) <- e;
              incr k)
            base;
          !k
    in
    (* Decisions: the sender knows its own buffers exactly but sees only
       the advertised heights of its neighbour. *)
    Engine.Run_obs.enter robs "engine/decide";
    let best_toward src dst c =
      Buffers.fold_nonzero buffers src ~init:None ~f:(fun best d h_src ->
          let gain =
            float_of_int (h_src - Sparse.get advertised dst d)
            -. (params.Balancing.gamma *. c)
          in
          if gain <= params.Balancing.threshold then best
          else begin
            (* [fold_nonzero] ascends in destination order, so keeping only
               strict gain improvements prefers the smaller destination
               index on ties — the same argmax as Balancing.best_toward. *)
            match best with
            | Some (_, _, bgain) when gain <= bgain -> best
            | _ -> Some (d, dst, gain)
          end)
    in
    (* Both directions of one active edge, on start-of-step advertised and
       true heights — pure, so the pair array computed on the pool is
       bit-identical to the inline scan. *)
    let decide i =
      let e = active_buf.(i) in
      let u, v = Graph.endpoints graph e in
      let c = edge_cost.(e) in
      (best_toward u v c, best_toward v u c)
    in
    let computed =
      match pool with
      | Some p when count > 0 ->
          Some (Adhoc_util.Pool.parallel_init p ~label:"engine/decide" count decide)
      | _ -> None
    in
    let decisions = ref [] in
    for i = count - 1 downto 0 do
      let fwd, bwd = match computed with Some a -> a.(i) | None -> decide i in
      let e = active_buf.(i) in
      let u, v = Graph.endpoints graph e in
      (match bwd with
      | Some (d, _, gain) -> decisions := (e, v, u, d, gain) :: !decisions
      | None -> ());
      match fwd with
      | Some (d, _, gain) -> decisions := (e, u, v, d, gain) :: !decisions
      | None -> ()
    done;
    let decisions =
      List.stable_sort
        (fun (_, _, dst_a, da, a) (_, _, dst_b, db, b) ->
          match (dst_a = da, dst_b = db) with
          | true, false -> -1
          | false, true -> 1
          | _ -> Float.compare b a)
        !decisions
    in
    Engine.Run_obs.leave robs;
    Engine.Run_obs.enter robs "engine/apply";
    List.iter
      (fun (e, src, dst, d, _) ->
        if Buffers.height buffers src d > 0 then begin
          incr sends;
          total_cost := !total_cost +. edge_cost.(e);
          Buffers.remove buffers src d;
          (match events with
          | None -> ()
          | Some log ->
              Event.send log ~step:t ~edge:e ~src ~dst ~dest:d ~cost:edge_cost.(e)
                ~outcome:(if dst = d then Event.Delivered else Event.Moved);
              if dst = d then Event.deliver log ~step:t ~dst:d ~self:false);
          if dst = d then incr delivered
          else begin
            Buffers.force_add buffers dst d;
            peak := max !peak (Buffers.height buffers dst d)
          end
        end)
      decisions;
    if t < w.Workload.horizon then
      List.iter
        (fun (src, dst) ->
          if Buffers.inject buffers ~cap:params.Balancing.capacity src dst then begin
            incr injected;
            (match events with
            | None -> ()
            | Some log ->
                Event.inject log ~step:t ~src ~dst ~admitted:true;
                if src = dst then Event.deliver log ~step:t ~dst ~self:true);
            if src = dst then incr delivered
            else peak := max !peak (Buffers.height buffers src dst)
          end
          else begin
            incr dropped;
            match events with
            | None -> ()
            | Some log -> Event.inject log ~step:t ~src ~dst ~admitted:false
          end)
        w.Workload.injections.(t);
    Engine.Run_obs.leave robs;
    Engine.Run_obs.sample robs ~buffers ~step:t ~injected:!injected ~delivered:!delivered
      ~dropped:!dropped ~sends:!sends ~failed_sends:0 ~active_edges:count
  done;
  let base =
    {
      Engine.steps;
      injected = !injected;
      dropped = !dropped;
      delivered = !delivered;
      sends = !sends;
      failed_sends = 0;
      total_cost = !total_cost;
      peak_height = !peak;
      remaining = Buffers.total buffers;
    }
  in
  Engine.Run_obs.finish robs base;
  (match obs with
  | None -> ()
  | Some o ->
      Adhoc_obs.Metrics.add
        (Adhoc_obs.Metrics.counter o.Adhoc_obs.metrics "quantized.control_messages")
        !control);
  { base; control_messages = !control; full_exchange_messages = steps * n }
