(** Discrete-time routing simulation driving the (T, γ)-balancing algorithm
    over a workload, in the paper's two layerings:

    - {!run_mac_given} — Scenario 1 (Theorem 3.1): each step the adversary
      hands the router a set of non-interfering active edges (the
      workload's activations, optionally padded with conflict-graph colour
      classes) and the router balances over them.
    - {!run_with_mac} — Scenarios 2 and 3 (Theorems 3.3 / 3.8): the router
      sees the whole topology, a {!Adhoc_mac.Mac.t} grants transmission
      attempts, and granted attempts that still interfere all fail (both
      packets stay, the transmission energy is spent). *)

type stats = {
  steps : int;
  injected : int;  (** admitted into source buffers *)
  dropped : int;  (** rejected by admission control (full source buffer) *)
  delivered : int;
  sends : int;  (** transmission attempts, successful or not *)
  failed_sends : int;  (** collided attempts (MAC scenarios only) *)
  total_cost : float;  (** cost of all attempts *)
  peak_height : int;  (** highest buffer height observed *)
  remaining : int;  (** packets still buffered at the end *)
}

val application_order : Balancing.decision -> Balancing.decision -> int
(** Order in which simultaneous decisions are applied when they contend for
    a buffer: deliveries first, then descending gain.  Exposed for engine
    variants (see {!Tracked_engine}). *)

val record_stats : Adhoc_obs.sink option -> stats -> unit
(** End-of-run flush of a stats record into the sink's metrics registry:
    totals as [engine.*] counters (accumulating across runs sharing a
    sink), extrema and leftovers as gauges.  No-op on [None].  Exposed for
    engine variants. *)

(** The per-run observability bundle the engine variants share
    ({!Dynamic_engine}, {!Quantized_engine}): [engine/*] span scopes, the
    per-step max-height histogram, stride-gated trace samples whose
    counters are deltas since the previous sample, and the end-of-run
    metrics flush.  All calls are no-ops when the sink is [None]. *)
module Run_obs : sig
  type t

  val create : Adhoc_obs.sink option -> n:int -> t
  (** Registers the [engine.step_max_height] histogram when a sink is
      present.  [n] is the node count (for the trace's mean height). *)

  val enter : t -> string -> unit
  val leave : t -> unit

  val sample :
    t ->
    buffers:Buffers.t ->
    step:int ->
    injected:int ->
    delivered:int ->
    dropped:int ->
    sends:int ->
    failed_sends:int ->
    active_edges:int ->
    unit
  (** Call once at the end of every step with the cumulative counters;
      records the height histogram observation and, when the sink carries
      a trace wanting [step], one sample. *)

  val finish : t -> stats -> unit
end

val throughput_ratio : stats -> Workload.opt_stats -> float
(** [delivered / opt.deliveries].  [0.] when OPT delivered nothing: a run
    with no certified deliveries to compete against earns nothing, rather
    than a spuriously perfect ratio. *)

val cost_ratio : stats -> Workload.opt_stats -> float
(** Average cost per delivery relative to OPT's.  [Float.nan] when the run
    delivered nothing (or OPT's average cost is not positive): the ratio is
    undefined, and reporting [1.] would make a run that delivers nothing
    look perfect.  Bench tables render it as [n/a]. *)

(** Per-edge cached balancing decisions, invalidated incrementally.

    A decision over an edge depends only on the buffer heights at its two
    endpoints and the (static) edge cost, and the argmax is independent of
    buffer-iteration order, so cached decisions are exact.  A watcher on
    the buffers collects changed nodes; {!Cache.flush} invalidates only the
    edges incident to them.  Engine variants share this structure. *)
module Cache : sig
  type t

  val create :
    graph:Adhoc_graph.Graph.t ->
    buffers:Buffers.t ->
    params:Balancing.params ->
    edge_cost:float array ->
    t
  (** Registers a watcher on [buffers] (replacing any previous one). *)

  val flush : t -> unit
  (** Invalidates edges incident to nodes whose heights changed since the
      last flush.  Call at the start of each step, before reading. *)

  val prepare : ?pool:Adhoc_util.Pool.t -> t -> int array -> count:int -> unit
  (** Refreshes every invalidated edge among the first [count] entries of
      the active-edge array on the domain pool, so subsequent lookups only
      read cache hits.  Each task reads start-of-step heights and writes
      only its own edge's cells (par-safe), and the refreshed decisions
      are bit-identical to the lazy sequential path for any pool size.
      No-op when [pool] is [None]. *)

  val fwd : t -> int -> Balancing.decision option
  (** Best send [u -> v] over the edge, on the heights as of the last
      flush. *)

  val bwd : t -> int -> Balancing.decision option

  val either : t -> int -> Balancing.decision option
  (** The better direction, ties preferring [u -> v] — the cached
      equivalent of {!Balancing.best_either}. *)
end

(** Precomputed colour-class padding for Scenario-1 engines: colour classes
    and conflict adjacency are built once per run, and per-step base
    membership uses scratch marks instead of scanning lists. *)
module Pad : sig
  type t

  val create : Adhoc_interference.Conflict.t -> t

  val active : t -> step:int -> into:int array -> int list -> int
  (** [active p ~step ~into base] writes [base] plus the step's colour
      class (round robin) into the scratch array [into] — minus base
      duplicates and class edges interfering with a base edge, extras
      following the base in ascending edge-id order — and returns the live
      count.  [into] must hold at least [m] entries. *)
end

val run_mac_given :
  ?cooldown:int ->
  ?obs:Adhoc_obs.sink ->
  ?pool:Adhoc_util.Pool.t ->
  ?on_step:(step:int -> delivered:int -> buffered:int -> unit) ->
  ?on_send:
    (step:int -> edge:int -> Balancing.decision -> [ `Delivered | `Moved ] -> unit) ->
  ?on_inject:(step:int -> src:int -> dst:int -> bool -> unit) ->
  ?cost_at:(step:int -> edge:int -> float) ->
  ?pad:Adhoc_interference.Conflict.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  params:Balancing.params ->
  Workload.t ->
  stats
(** [on_step] fires after every simulated step with the cumulative delivery
    count and the packets currently buffered — the hook the time-series
    figures use.  [cost_at] lets the adversary change edge costs per step
    (Section 3.1: costs "may change from one step to another"); it
    overrides [cost] for both the balancing penalty and the accounting.
    [cooldown] extra steps after the horizon let in-flight packets drain;
    during them (and, padded, during the horizon) [pad]'s colour classes
    are activated round-robin, always keeping each step's active set
    non-interfering.  Default cooldown 0.

    [pool] fans the per-step decision computations out on the domain pool
    (decide-parallel / apply-sequential): decisions are functions of
    start-of-step heights only, and applications replay in the sequential
    order, so stats, events, traces and live telemetry are bit-identical
    for every pool size.  Static-cost runs only; the [cost_at] path stays
    sequential.

    [obs] turns on observability: phase spans ([engine/decide],
    [engine/apply]), end-of-run counters and gauges ([engine.*]), a
    per-step max-height histogram, and — when the sink carries a
    {!Adhoc_obs.Trace.t} — one trace sample per stride step.  When the
    sink carries an {!Adhoc_obs.Event.log}, every packet-level action is
    recorded into it ([Inject] per attempt, [Send] + [Deliver] per
    successful transmission, [Collide] per collided attempt) — the
    flight-recorder stream behind [adhoc_sim analyze] and
    {!Adhoc_obs.Invariants}.  With [None] (the default) every
    instrumentation site reduces to a single [match], keeping the hot
    path allocation-free and the stats bit-identical.

    [on_send] fires after each {e successful} (uncollided, non-empty)
    transmission with the applied decision and whether it delivered;
    [on_inject] fires per injection attempt with [true] when admitted.
    Together they let variants mirror the run's packet movements without
    duplicating the loop — {!Tracked_engine} is built on them. *)

val run_with_mac :
  ?cooldown:int ->
  ?obs:Adhoc_obs.sink ->
  ?pool:Adhoc_util.Pool.t ->
  ?on_step:(step:int -> delivered:int -> buffered:int -> unit) ->
  ?on_send:
    (step:int -> edge:int -> Balancing.decision -> [ `Delivered | `Moved ] -> unit) ->
  ?on_inject:(step:int -> src:int -> dst:int -> bool -> unit) ->
  ?collisions:Adhoc_interference.Conflict.t ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  params:Balancing.params ->
  mac:Adhoc_mac.Mac.t ->
  Workload.t ->
  stats
(** The workload's activations are ignored: every edge is a candidate each
    step, the MAC arbitrates.  With [collisions], granted attempts that
    interfere with other granted attempts fail.  [obs], [pool], [on_send]
    and [on_inject] behave as in {!run_mac_given}; a sink additionally
    wraps the MAC with {!Adhoc_mac.Mac.instrument}, so arbitration gets
    its own [mac/<name>] span and request / grant counters. *)
