type params = {
  threshold : float;
  gamma : float;
  capacity : int;
}

let params ~threshold ~gamma ~capacity =
  if threshold < 0. then invalid_arg "Balancing.params: negative threshold";
  if gamma < 0. then invalid_arg "Balancing.params: negative gamma";
  if capacity < 1 then invalid_arg "Balancing.params: capacity must be at least 1";
  { threshold; gamma; capacity }

type decision = {
  src : int;
  dst : int;
  dest : int;
  gain : float;
}

(* [Buffers.iter_nonzero] visits destinations in ascending order, so
   keeping only strict gain improvements prefers the smaller destination
   index on ties — the same order-independent argmax the old hash-order
   scan tie-broke by hand (a qcheck property pins this).  Tracked with
   mutable locals so the scan allocates exactly one decision record. *)
let best_toward buffers p ~cost ~src ~dst =
  let penalty = p.gamma *. cost in
  let best_dest = ref (-1) in
  let best_gain = ref neg_infinity in
  Buffers.iter_nonzero buffers src (fun d h_src ->
      let gain = float_of_int (h_src - Buffers.height buffers dst d) -. penalty in
      if gain > p.threshold && gain > !best_gain then begin
        best_dest := d;
        best_gain := gain
      end);
  if !best_dest < 0 then None else Some { src; dst; dest = !best_dest; gain = !best_gain }

let best_either buffers p ~cost ~u ~v =
  let fwd = best_toward buffers p ~cost ~src:u ~dst:v in
  let bwd = best_toward buffers p ~cost ~src:v ~dst:u in
  match (fwd, bwd) with
  | None, d | d, None -> d
  | Some f, Some b -> if b.gain > f.gain then Some b else Some f

let apply buffers d =
  Buffers.remove buffers d.src d.dest;
  if d.dst = d.dest then `Delivered
  else begin
    Buffers.force_add buffers d.dst d.dest;
    `Moved
  end

module Derive = struct
  let capacity_of ~b ~t ~delta ~l ~epsilon =
    let bf = float_of_int b in
    let s = 1. +. (2. *. (1. +. ((t +. float_of_int delta) /. bf)) *. l /. epsilon) in
    max (b + 1) (int_of_float (Float.ceil (bf *. s)))

  let theorem_3_1 ~opt_buffer ~opt_avg_hops ~opt_avg_cost ~delta ~epsilon =
    if opt_buffer < 1 then invalid_arg "Derive.theorem_3_1: opt_buffer must be >= 1";
    if epsilon <= 0. || epsilon >= 1. then invalid_arg "Derive.theorem_3_1: epsilon in (0,1)";
    let b = opt_buffer in
    let t = float_of_int (b + (2 * (delta - 1))) in
    let t = Float.max t 0. in
    let gamma =
      if opt_avg_cost <= 0. then 0.
      else (t +. float_of_int b +. float_of_int delta) *. opt_avg_hops /. opt_avg_cost
    in
    {
      threshold = t;
      gamma;
      capacity = capacity_of ~b ~t ~delta ~l:opt_avg_hops ~epsilon;
    }

  let theorem_3_3 ~opt_buffer ~opt_avg_hops ~opt_avg_cost ~epsilon =
    if opt_buffer < 1 then invalid_arg "Derive.theorem_3_3: opt_buffer must be >= 1";
    if epsilon <= 0. || epsilon >= 1. then invalid_arg "Derive.theorem_3_3: epsilon in (0,1)";
    let b = opt_buffer in
    let t = float_of_int ((2 * b) + 1) in
    let gamma =
      if opt_avg_cost <= 0. then 0.
      else (t +. float_of_int b) *. opt_avg_hops /. opt_avg_cost
    in
    {
      threshold = t;
      gamma;
      capacity = capacity_of ~b ~t ~delta:0 ~l:opt_avg_hops ~epsilon;
    }
end
