(* Flat struct-of-arrays buffer state.  Per-node sorted nonzero
   destination rows (growable parallel int arrays, CSR-style) replace
   the former dense n×n matrix + per-node hashtables: memory is
   O(n + live buffers) and [iter_nonzero]/[fold_nonzero] visit
   destinations in ascending order, so traversal is deterministic by
   construction and needs no hashtbl-order waiver. *)

module Sparse = struct
  type t = {
    key : int array array;  (* row v: strictly ascending, first len.(v) live *)
    value : int array array;  (* value.(v).(i) belongs to key.(v).(i); never 0 *)
    len : int array;
  }

  let create n =
    { key = Array.make n [||]; value = Array.make n [||]; len = Array.make n 0 }

  let size t = Array.length t.len

  (* Lower-bound binary search for [k] in row [v]: its index when
     present, otherwise [lnot insertion_point]. *)
  let find t v k =
    let keys = t.key.(v) in
    let lo = ref 0 and hi = ref t.len.(v) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if keys.(mid) < k then lo := mid + 1 else hi := mid
    done;
    if !lo < t.len.(v) && keys.(!lo) = k then !lo else lnot !lo

  let get t v k =
    let i = find t v k in
    if i >= 0 then t.value.(v).(i) else 0

  let insert_at t v i k x =
    let len = t.len.(v) in
    let keys = t.key.(v) and vals = t.value.(v) in
    if len = Array.length keys then begin
      let cap = if len = 0 then 4 else 2 * len in
      let keys' = Array.make cap 0 and vals' = Array.make cap 0 in
      Array.blit keys 0 keys' 0 i;
      Array.blit vals 0 vals' 0 i;
      Array.blit keys i keys' (i + 1) (len - i);
      Array.blit vals i vals' (i + 1) (len - i);
      t.key.(v) <- keys';
      t.value.(v) <- vals'
    end
    else begin
      Array.blit keys i keys (i + 1) (len - i);
      Array.blit vals i vals (i + 1) (len - i)
    end;
    t.key.(v).(i) <- k;
    t.value.(v).(i) <- x;
    t.len.(v) <- len + 1

  let remove_at t v i =
    let len = t.len.(v) in
    Array.blit t.key.(v) (i + 1) t.key.(v) i (len - i - 1);
    Array.blit t.value.(v) (i + 1) t.value.(v) i (len - i - 1);
    t.len.(v) <- len - 1

  let set t v k x =
    let i = find t v k in
    if i >= 0 then begin
      if x = 0 then remove_at t v i else t.value.(v).(i) <- x
    end
    else if x <> 0 then insert_at t v (lnot i) k x

  let update t v k delta =
    let i = find t v k in
    if i >= 0 then begin
      let x = t.value.(v).(i) + delta in
      if x = 0 then remove_at t v i else t.value.(v).(i) <- x;
      x
    end
    else begin
      if delta <> 0 then insert_at t v (lnot i) k delta;
      delta
    end

  let row_length t v = t.len.(v)

  let iter_row t v f =
    let keys = t.key.(v) and vals = t.value.(v) in
    for i = 0 to t.len.(v) - 1 do
      f keys.(i) vals.(i)
    done

  let fold_row t v ~init ~f =
    let keys = t.key.(v) and vals = t.value.(v) in
    let acc = ref init in
    for i = 0 to t.len.(v) - 1 do
      acc := f !acc keys.(i) vals.(i)
    done;
    !acc
end

type t = {
  n : int;
  q : Sparse.t;  (* q.(v) row: nonzero heights h_{v,d}, ascending d *)
  mutable total : int;
  mutable watcher : (int -> int -> unit) option;  (* fires on every height change *)
  (* Incremental max-height tracking: height_counts.(k) is the number of
     (v, d) pairs currently at height k (k >= 1), so the maximum can be
     maintained in amortized O(1) instead of a full sweep. *)
  mutable height_counts : int array;
  mutable max_h : int;
}

let create n =
  {
    n;
    q = Sparse.create n;
    total = 0;
    watcher = None;
    height_counts = Array.make 16 0;
    max_h = 0;
  }

let nodes t = t.n

let height t v d = Sparse.get t.q v d

let set_watcher t f = t.watcher <- Some f

let clear_watcher t = t.watcher <- None

let notify t v d = match t.watcher with None -> () | Some f -> f v d

let grow_counts t k =
  if k >= Array.length t.height_counts then begin
    let len = ref (Array.length t.height_counts) in
    while k >= !len do
      len := 2 * !len
    done;
    let counts = Array.make !len 0 in
    Array.blit t.height_counts 0 counts 0 (Array.length t.height_counts);
    t.height_counts <- counts
  end

(* A buffer moved from height [k - 1] to height [k]. *)
let count_up t k =
  grow_counts t k;
  t.height_counts.(k) <- t.height_counts.(k) + 1;
  if k > 1 then t.height_counts.(k - 1) <- t.height_counts.(k - 1) - 1;
  if k > t.max_h then t.max_h <- k

(* A buffer moved from height [k] to height [k - 1]. *)
let count_down t k =
  t.height_counts.(k) <- t.height_counts.(k) - 1;
  if k > 1 then t.height_counts.(k - 1) <- t.height_counts.(k - 1) + 1;
  while t.max_h > 0 && t.height_counts.(t.max_h) = 0 do
    t.max_h <- t.max_h - 1
  done

let add t v d =
  let h = Sparse.update t.q v d 1 in
  t.total <- t.total + 1;
  count_up t h;
  notify t v d

let inject t ~cap src dest =
  if src = dest then true
  else if Sparse.get t.q src dest >= cap then false
  else begin
    add t src dest;
    true
  end

let force_add t v d = if v <> d then add t v d

let remove t v d =
  let h = Sparse.get t.q v d in
  if h <= 0 then invalid_arg "Buffers.remove: empty buffer";
  ignore (Sparse.update t.q v d (-1) : int);
  t.total <- t.total - 1;
  count_down t h;
  notify t v d

let iter_nonzero t v f = Sparse.iter_row t.q v f

let fold_nonzero t v ~init ~f = Sparse.fold_row t.q v ~init ~f

let total t = t.total

let max_height t = t.max_h
