type t = {
  n : int;
  h : int array array;  (* h.(v).(d) *)
  nonzero : (int, unit) Hashtbl.t array;  (* destinations with h > 0, per node *)
  mutable total : int;
  mutable watcher : (int -> int -> unit) option;  (* fires on every height change *)
  (* Incremental max-height tracking: height_counts.(k) is the number of
     (v, d) pairs currently at height k (k >= 1), so the maximum can be
     maintained in amortized O(1) instead of an O(n^2) matrix sweep. *)
  mutable height_counts : int array;
  mutable max_h : int;
}

let create n =
  {
    n;
    h = Array.make_matrix n n 0;
    nonzero = Array.init n (fun _ -> Hashtbl.create 8);
    total = 0;
    watcher = None;
    height_counts = Array.make 16 0;
    max_h = 0;
  }

let nodes t = t.n

let height t v d = t.h.(v).(d)

let set_watcher t f = t.watcher <- Some f

let clear_watcher t = t.watcher <- None

let notify t v d = match t.watcher with None -> () | Some f -> f v d

let grow_counts t k =
  if k >= Array.length t.height_counts then begin
    let len = ref (Array.length t.height_counts) in
    while k >= !len do
      len := 2 * !len
    done;
    let counts = Array.make !len 0 in
    Array.blit t.height_counts 0 counts 0 (Array.length t.height_counts);
    t.height_counts <- counts
  end

(* A buffer moved from height [k - 1] to height [k]. *)
let count_up t k =
  grow_counts t k;
  t.height_counts.(k) <- t.height_counts.(k) + 1;
  if k > 1 then t.height_counts.(k - 1) <- t.height_counts.(k - 1) - 1;
  if k > t.max_h then t.max_h <- k

(* A buffer moved from height [k] to height [k - 1]. *)
let count_down t k =
  t.height_counts.(k) <- t.height_counts.(k) - 1;
  if k > 1 then t.height_counts.(k - 1) <- t.height_counts.(k - 1) + 1;
  while t.max_h > 0 && t.height_counts.(t.max_h) = 0 do
    t.max_h <- t.max_h - 1
  done

let add t v d =
  if t.h.(v).(d) = 0 then Hashtbl.replace t.nonzero.(v) d ();
  let h = t.h.(v).(d) + 1 in
  t.h.(v).(d) <- h;
  t.total <- t.total + 1;
  count_up t h;
  notify t v d

let inject t ~cap src dest =
  if src = dest then true
  else if t.h.(src).(dest) >= cap then false
  else begin
    add t src dest;
    true
  end

let force_add t v d = if v <> d then add t v d

let remove t v d =
  let h = t.h.(v).(d) in
  if h <= 0 then invalid_arg "Buffers.remove: empty buffer";
  t.h.(v).(d) <- h - 1;
  t.total <- t.total - 1;
  if h = 1 then Hashtbl.remove t.nonzero.(v) d;
  count_down t h;
  notify t v d

(* lint: allow hashtbl-order — callers reduce with commutative operations; pinned by the qcheck "balancing decisions are iteration-order independent" property in test_routing *)
let iter_nonzero t v f = Hashtbl.iter (fun d () -> f d t.h.(v).(d)) t.nonzero.(v)

let fold_nonzero t v ~init ~f =
  (* lint: allow hashtbl-order — same order-independence contract as iter_nonzero above, qcheck-pinned in test_routing *)
  Hashtbl.fold (fun d () acc -> f acc d t.h.(v).(d)) t.nonzero.(v) init

let total t = t.total

let max_height t = t.max_h
