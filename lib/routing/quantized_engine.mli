(** Balancing with reduced control traffic.

    The paper remarks (Section 3.2) that "in a practical implementation, we
    can reduce the amount of control information exchange" needed for
    neighbours to learn each other's buffer heights, deferring details to
    the full version.  This module implements the natural scheme: every
    node advertises a height only when it has drifted by more than a
    quantum [q] from the last advertised value, and neighbours balance
    against the *advertised* heights.

    With [q = 0] the behaviour (and delivery count) is identical to
    {!Engine.run_mac_given}; growing [q] trades control messages for
    gradient staleness — experiment E19 measures the curve.  Stale heights
    cannot violate safety (sends still check real buffer occupancy); they
    only delay or misdirect sends by at most [q] per hop, which the
    threshold [T] absorbs once [T > 2q]. *)

type stats = {
  base : Engine.stats;
  control_messages : int;
      (** height advertisements broadcast (one per node per change beyond
          the quantum) *)
  full_exchange_messages : int;
      (** what continuous per-step exchange would have cost:
          steps × nodes *)
}

val run_mac_given :
  ?cooldown:int ->
  ?obs:Adhoc_obs.sink ->
  ?pool:Adhoc_util.Pool.t ->
  ?pad:Adhoc_interference.Conflict.t ->
  quantum:int ->
  graph:Adhoc_graph.Graph.t ->
  cost:Adhoc_graph.Cost.t ->
  params:Balancing.params ->
  Workload.t ->
  stats
(** Requires [quantum >= 0].

    [obs] behaves as in {!Engine.run_mac_given} — spans (with an extra
    [engine/advertise] scope around the advertisement phase), [engine.*]
    counters, histogram and trace — plus a [quantized.control_messages]
    counter, and one [Height_advert] event per announcing node when the
    sink carries an event log.  [None] leaves the run bit-identical.

    [pool] fans each step's decision computations (against the advertised
    heights) out on the domain pool; applications replay sequentially, so
    results are bit-identical for every pool size. *)
