module Graph = Adhoc_graph.Graph
module Dijkstra = Adhoc_graph.Dijkstra
module Conflict = Adhoc_interference.Conflict
module Prng = Adhoc_util.Prng

type opt_stats = {
  deliveries : int;
  total_cost : float;
  avg_cost : float;
  avg_hops : float;
  max_buffer : int;
  delta : int;
}

type t = {
  horizon : int;
  injections : (int * int) list array;
  paths : (int * int * int list) list array;
  activations : int list array;
  opt : opt_stats;
}

type config = {
  horizon : int;
  attempts : int;
  slack : int;
  interference_free : bool;
}

let generate_with ~pick_pair ?pick_time ?conflict config ~rng ~graph ~cost =
  if config.horizon <= 0 then invalid_arg "Workload.generate: horizon must be positive";
  if config.interference_free && conflict = None then
    invalid_arg "Workload.generate: interference_free requires a conflict structure";
  let n = Graph.n graph in
  if n < 2 then invalid_arg "Workload.generate: need at least two nodes";
  let horizon = config.horizon in
  let occupied : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let reserved_at = Array.make horizon [] in
  let injections = Array.make horizon [] in
  let paths = Array.make horizon [] in
  let sssp = Hashtbl.create 32 in
  let dijkstra src =
    match Hashtbl.find_opt sssp src with
    | Some r -> r
    | None ->
        let r = Dijkstra.run graph ~cost ~src in
        Hashtbl.add sssp src r;
        r
  in
  let compatible e step =
    (not (Hashtbl.mem occupied (e, step)))
    && (match conflict with
       | Some c when config.interference_free ->
           List.for_all (fun e' -> not (Conflict.interfere c e e')) reserved_at.(step)
       | _ -> true)
  in
  (* Buffer-occupancy events: (node, dest) -> (time, +1/-1) list. *)
  let events : (int * int, (int * int) list ref) Hashtbl.t = Hashtbl.create 1024 in
  let record_stay node dest ~from_ ~until =
    if until > from_ && node <> dest then begin
      let key = (node, dest) in
      let l =
        match Hashtbl.find_opt events key with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add events key l;
            l
      in
      l := (from_, 1) :: (until, -1) :: !l
    end
  in
  let deliveries = ref 0 in
  let total_cost = ref 0. in
  let total_hops = ref 0 in
  for _ = 1 to config.attempts do
    let src, dst = pick_pair rng in
    if src <> dst then begin
      let sp = dijkstra src in
      match Dijkstra.path_edges sp dst with
      | None -> ()
      | Some path_edges ->
          let len = List.length path_edges in
          let window = len + config.slack in
          if window < horizon then begin
            let t0 =
              match pick_time with
              | None -> Prng.int rng (horizon - window)
              | Some f -> min (f rng) (horizon - window - 1)
            in
            (* Greedy earliest-slot reservation within [t0+1, t0+window]. *)
            let rec reserve acc cur = function
              | [] -> Some (List.rev acc)
              | e :: rest ->
                  let rec find s =
                    if s > t0 + window || s >= horizon then None
                    else if compatible e s then Some s
                    else find (s + 1)
                  in
                  (match find (cur + 1) with
                  | None -> None
                  | Some s -> reserve ((e, s) :: acc) s rest)
            in
            match reserve [] t0 path_edges with
            | None -> ()
            | Some slots ->
                List.iter
                  (fun (e, s) ->
                    Hashtbl.add occupied (e, s) ();
                    reserved_at.(s) <- e :: reserved_at.(s))
                  slots;
                injections.(t0) <- (src, dst) :: injections.(t0);
                paths.(t0) <- (src, dst, path_edges) :: paths.(t0);
                incr deliveries;
                total_hops := !total_hops + len;
                (* Walk the schedule to record buffer stays. *)
                let node = ref src and arrive = ref t0 in
                List.iter
                  (fun (e, s) ->
                    record_stay !node dst ~from_:!arrive ~until:s;
                    node := Graph.other_endpoint graph e !node;
                    arrive := s;
                    total_cost := !total_cost +. cost (Graph.length graph e))
                  slots
          end
    end
  done;
  (* Max buffer occupancy across (node, dest) pairs.  Sorted-key traversal:
     the max itself is commutative, but keeping every reduction order-free
     by construction is cheaper than proving it per call site. *)
  let max_buffer = ref 1 in
  Adhoc_util.Det.iter_sorted
    (fun _ l ->
      let sorted =
        List.sort
          (fun (a, b) (c, d) ->
            let x = Int.compare a c in
            if x <> 0 then x else Int.compare b d)
          !l
      in
      let h = ref 0 in
      List.iter
        (fun (_, d) ->
          h := !h + d;
          if !h > !max_buffer then max_buffer := !h)
        sorted)
    events;
  (* δ: max activated edges sharing a node in one step. *)
  let delta = ref 1 in
  let incident = Array.make n 0 in
  Array.iter
    (fun edges ->
      List.iter
        (fun e ->
          let u, v = Graph.endpoints graph e in
          incident.(u) <- incident.(u) + 1;
          incident.(v) <- incident.(v) + 1;
          delta := max !delta (max incident.(u) incident.(v)))
        edges;
      List.iter
        (fun e ->
          let u, v = Graph.endpoints graph e in
          incident.(u) <- 0;
          incident.(v) <- 0)
        edges)
    reserved_at;
  let d = !deliveries in
  {
    horizon;
    injections;
    paths;
    activations = Array.map (List.sort_uniq Int.compare) reserved_at;
    opt =
      {
        deliveries = d;
        total_cost = !total_cost;
        avg_cost = (if d = 0 then 0. else !total_cost /. float_of_int d);
        avg_hops = (if d = 0 then 0. else float_of_int !total_hops /. float_of_int d);
        max_buffer = !max_buffer;
        delta = !delta;
      };
  }

let generate ?conflict config ~rng ~graph ~cost =
  let n = Graph.n graph in
  let pick_pair rng =
    let src = Prng.int rng n in
    let dst = Prng.int rng n in
    (src, dst)
  in
  generate_with ~pick_pair ?conflict config ~rng ~graph ~cost

let flows ?conflict ?max_hops config ~rng ~graph ~cost ~num_flows =
  if num_flows < 1 then invalid_arg "Workload.flows: need at least one flow";
  let n = Graph.n graph in
  let hop_ok =
    match max_hops with
    | None -> fun _ _ -> true
    | Some k ->
        let hops = Hashtbl.create 8 in
        fun src dst ->
          let d =
            match Hashtbl.find_opt hops src with
            | Some d -> d
            | None ->
                let d = Adhoc_graph.Bfs.hops graph ~src in
                Hashtbl.add hops src d;
                d
          in
          d.(dst) <= k
  in
  let pairs =
    Array.init num_flows (fun _ ->
        let draw () =
          let src = Prng.int rng n in
          let rec pick () =
            let dst = Prng.int rng n in
            if dst = src && n > 1 then pick () else dst
          in
          (src, pick ())
        in
        let rec retry k =
          let src, dst = draw () in
          if k = 0 || hop_ok src dst then (src, dst) else retry (k - 1)
        in
        retry 200)
  in
  let pick_pair rng = pairs.(Prng.int rng num_flows) in
  generate_with ~pick_pair ?conflict config ~rng ~graph ~cost

let single_destination ?conflict ?sources config ~rng ~graph ~cost ~sink =
  let n = Graph.n graph in
  if sink < 0 || sink >= n then invalid_arg "Workload.single_destination: sink out of range";
  let pick_pair =
    match sources with
    | None -> fun rng -> (Prng.int rng n, sink)
    | Some srcs ->
        if Array.length srcs = 0 then invalid_arg "Workload.single_destination: empty sources";
        fun rng -> (srcs.(Prng.int rng (Array.length srcs)), sink)
  in
  generate_with ~pick_pair ?conflict config ~rng ~graph ~cost

let bursty ?conflict config ~rng ~graph ~cost ~num_flows ~period ~burst_width =
  if period <= 0 || burst_width <= 0 || burst_width > period then
    invalid_arg "Workload.bursty: need 0 < burst_width <= period";
  let n = Graph.n graph in
  let pairs =
    Array.init num_flows (fun _ ->
        let src = Prng.int rng n in
        let rec pick () =
          let dst = Prng.int rng n in
          if dst = src && n > 1 then pick () else dst
        in
        (src, pick ()))
  in
  let pick_pair rng = pairs.(Prng.int rng num_flows) in
  (* Injection times land only inside the burst window of each period. *)
  let pick_time rng =
    let periods = max 1 (config.horizon / period) in
    let p = Prng.int rng periods in
    (p * period) + Prng.int rng burst_width
  in
  generate_with ~pick_pair ~pick_time ?conflict config ~rng ~graph ~cost

let path_flows config ~rng ~graph ~cost ~num_flows ~rate =
  if rate <= 0. || rate > 1. then invalid_arg "Workload.path_flows: rate must be in (0,1]";
  if num_flows < 1 then invalid_arg "Workload.path_flows: need at least one flow";
  let n = Graph.n graph in
  if n < 2 then invalid_arg "Workload.path_flows: need at least two nodes";
  let horizon = config.horizon in
  (* Fixed shortest path per flow. *)
  let flows =
    Array.init num_flows (fun _ ->
        let rec draw attempts =
          let src = Prng.int rng n in
          let dst = Prng.int rng n in
          if src = dst && attempts > 0 then draw (attempts - 1)
          else begin
            let sp = Dijkstra.run graph ~cost ~src in
            match Dijkstra.path_edges sp dst with
            | Some path when path <> [] -> (src, dst, path)
            | _ -> if attempts > 0 then draw (attempts - 1) else (src, dst, [])
          end
        in
        draw 50)
  in
  let injections = Array.make horizon [] in
  let paths = Array.make horizon [] in
  let injected = ref 0 in
  for t = 0 to horizon - 1 do
    Array.iter
      (fun (src, dst, path) ->
        if path <> [] && Prng.uniform rng < rate then begin
          injections.(t) <- (src, dst) :: injections.(t);
          paths.(t) <- (src, dst, path) :: paths.(t);
          incr injected
        end)
      flows
  done;
  {
    horizon;
    injections;
    paths;
    activations = Array.make horizon [];
    (* Not a certified workload: the opt block only records the injection
       count; competitive ratios are meaningless here. *)
    opt =
      {
        deliveries = !injected;
        total_cost = 0.;
        avg_cost = 0.;
        avg_hops = 0.;
        max_buffer = 1;
        delta = 1;
      };
  }
