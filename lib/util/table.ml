type align = Left | Right

type t = {
  title : string option;
  headers : string array;
  aligns : align array;
  mutable rows : string array list;  (* reverse order *)
}

let create ?title cols =
  {
    title;
    headers = Array.of_list (List.map fst cols);
    aligns = Array.of_list (List.map snd cols);
    rows = [];
  }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- row :: t.rows

let fmt_f ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

let add_float_row t ?(fmt = fmt_f ~decimals:3) label values =
  add_row t (label :: List.map fmt values)

(* The one distribution-table shape every reporter shares: a label
   column plus mean / median / p95.  Keeping the layout here means the
   offline analyzer and the live-telemetry printer render identically. *)
let summary_table ?title label =
  create ?title [ (label, Left); ("mean", Right); ("median", Right); ("p95", Right) ]

let add_summary_row t ?(fmt = fmt_f ~decimals:3) ?mean label values =
  let s = Stats.summarize values in
  let mean = match mean with Some m -> m | None -> s.Stats.mean in
  add_float_row t ~fmt label [ mean; s.Stats.median; s.Stats.p95 ]

let to_string t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let emit_row cells =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) cells.(i))
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let rule = Array.map (fun w -> String.make w '-') widths in
  emit_row rule;
  List.iter emit_row rows;
  Buffer.contents buf

(* lint: allow obs-purity — explicit opt-in stdout rendering for bench/bin tables; library code never calls it *)
let print t = print_string (to_string t)
