type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

(* nan poisons order statistics: polymorphic [compare] sorts it
   inconsistently and min/max folds propagate it.  Percentiles and
   summaries are therefore computed over the non-nan subsample. *)
let drop_nans xs =
  if Array.exists Float.is_nan xs then
    Array.of_seq (Seq.filter (fun x -> not (Float.is_nan x)) (Array.to_seq xs))
  else xs

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  let xs = drop_nans xs in
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end
  end

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty sample";
  let clean = drop_nans xs in
  let n = Array.length clean in
  if n = 0 then
    {
      n = 0;
      mean = Float.nan;
      stddev = Float.nan;
      min = Float.nan;
      max = Float.nan;
      median = Float.nan;
      p95 = Float.nan;
    }
  else
    {
      n;
      mean = mean clean;
      stddev = stddev clean;
      min = Array.fold_left Float.min clean.(0) clean;
      max = Array.fold_left Float.max clean.(0) clean;
      median = percentile clean 50.;
      p95 = percentile clean 95.;
    }

let linear_fit xs ys =
  let n = Array.length xs in
  if n < 2 || Array.length ys <> n then invalid_arg "Stats.linear_fit";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. in
  for i = 0 to n - 1 do
    sxy := !sxy +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    sxx := !sxx +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
  done;
  let b = if Float.equal !sxx 0. then 0. else !sxy /. !sxx in
  (my -. (b *. mx), b)

let loglog_slope xs ys =
  let lx = Array.map log xs and ly = Array.map log ys in
  snd (linear_fit lx ly)

let log_fit xs ys =
  let lx = Array.map log xs in
  linear_fit lx ys

let correlation xs ys =
  let n = Array.length xs in
  if n < 2 || Array.length ys <> n then invalid_arg "Stats.correlation";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if Float.equal !sxx 0. || Float.equal !syy 0. then 0. else !sxy /. sqrt (!sxx *. !syy)
