(* Deterministic hash-table traversal.

   [Hashtbl]'s own iteration order is unspecified (it depends on the hash
   function, bucket count and insertion history), which is exactly what the
   hashtbl-order lint rule bans in library code: any float accumulation or
   list construction driven by it silently ties simulation output to
   Hashtbl internals.  These helpers pay one sort to make the traversal a
   function of the table's *contents* only.

   If a key carries several bindings (Hashtbl.add without remove), their
   relative order is still unspecified; use replace-semantics tables with
   these helpers. *)

let sorted_bindings ?compare:(cmp = Stdlib.compare) tbl = (* lint: allow poly-compare — generic helper over arbitrary key types; callers with float or composite keys pass an explicit comparator *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* lint: allow hashtbl-order — fold only collects; the result is sorted below, so it is order-independent *)
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let sorted_keys ?compare:cmp tbl = List.map fst (sorted_bindings ?compare:cmp tbl)

let iter_sorted ?compare:cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ?compare:cmp tbl)

let fold_sorted ?compare:cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ?compare:cmp tbl)
