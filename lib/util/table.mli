(** Aligned plain-text tables for experiment output.

    The benchmark harness prints the same rows/series the paper's claims
    describe; this module keeps that output readable and diffable. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Row cells must match the number of columns. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> unit
(** Convenience: a leading label cell followed by formatted floats. *)

val summary_table : ?title:string -> string -> t
(** [summary_table label] is the shared distribution-table shape: a
    [label] column followed by mean / median / p95 columns.  Used by
    [adhoc_sim analyze] and the live-telemetry summary so both render
    identically. *)

val add_summary_row : t -> ?fmt:(float -> string) -> ?mean:float -> string -> float array -> unit
(** Summarize [values] with {!Stats.summarize} into a {!summary_table}
    row (mean, median, p95).  [?mean] substitutes a pinned mean (e.g. a
    figure an engine already reports) for the recomputed one. *)

val to_string : t -> string

val print : t -> unit
(** [to_string] followed by a newline on stdout. *)

val fmt_f : ?decimals:int -> float -> string
(** Fixed-point float formatter, default 3 decimals. *)
