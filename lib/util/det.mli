(** Deterministic (sorted-key) traversal of hash tables.

    [Hashtbl.iter]/[fold] visit bindings in an unspecified order; driving
    float accumulation or list construction from them ties results to
    Hashtbl internals.  These helpers traverse in ascending key order
    ([compare] defaults to the polymorphic compare — pass [Float.compare]
    for float keys), making the traversal a function of the table's
    contents only.  Keys are assumed to carry a single binding each
    (replace semantics). *)

val sorted_bindings : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings in ascending key order. *)

val sorted_keys : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** All keys in ascending order. *)

val iter_sorted : ?compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted f tbl] applies [f] to each binding in ascending key order. *)

val fold_sorted :
  ?compare:('k -> 'k -> int) -> ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
(** [fold_sorted f tbl init] folds over bindings in ascending key order. *)
