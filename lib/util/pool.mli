(** Fixed-size domain pool: deterministic data-parallel loops over dense
    integer ranges.

    The paper's constructions are per-node-independent, which makes them
    embarrassingly parallel — but this repo's determinism policy (see
    DESIGN.md) demands that results be a function of inputs only, never of
    scheduling.  The pool therefore guarantees {b jobs-invariance}: for
    index-pure bodies (the value computed for index [i] depends only on
    [i] and on state that no other index mutates), every entry point
    produces output {e bit-identical} to the sequential loop, for any
    number of jobs.  Concretely:

    - [0, n) is split into [min jobs n] contiguous chunks whose boundaries
      depend on [(n, jobs)] only — chunk [i] is [[i·n/k, (i+1)·n/k)];
    - each index is evaluated exactly once, by the same code, regardless of
      which domain runs it;
    - {!map_reduce} folds on the calling domain in ascending index order
      (no tree reduction), so even non-associative folds match the
      sequential result exactly;
    - exceptions re-raise deterministically: bodies iterate ascending and
      stop at the first raise, so the exception that surfaces is the one
      raised at the lowest failing index, independent of [jobs].

    A pool holds [jobs - 1] worker domains parked on condition variables;
    regions reuse them (no per-call spawns).  One region runs at a time:
    nested calls — including calls made from inside a region's body — and
    calls after {!shutdown} transparently run inline on the calling
    domain, which is bit-identical by the contract above.

    This is the only module allowed to touch [Domain.*] (lint rule
    [raw-domain]); everything else threads a [Pool.t]. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] is clamped
    to [1 .. 64]; default {!default_jobs}).  [jobs = 1] spawns nothing and
    runs every region inline. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1 .. 64] — the
    [--jobs] default of the CLI and bench binaries. *)

val jobs : t -> int
(** The pool's size (after clamping). *)

val shutdown : t -> unit
(** Quits and joins the workers.  Idempotent.  Must be called with no
    region in flight; afterwards the pool still works, sequentially. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down on
    the way out, exception or not. *)

val parallel_for : t -> ?label:string -> int -> (int -> unit) -> unit
(** [parallel_for t n body] runs [body i] for every [i] in [0, n), chunked
    across the pool.  [body] must be index-pure; typical use writes to
    disjoint cells of a pre-allocated array.  [n <= 0] is a no-op. *)

val parallel_init : t -> ?label:string -> int -> (int -> 'a) -> 'a array
(** [parallel_init t n f] is [Array.init n f] with [f] evaluated across
    the pool ([f 0] on the calling domain first, to seed the array). *)

val map_reduce :
  t -> ?label:string -> n:int -> map:(int -> 'a) -> init:'b -> fold:('b -> 'a -> 'b) -> unit -> 'b
(** [map_reduce t ~n ~map ~init ~fold ()] evaluates [map i] across the
    pool, then folds the results on the calling domain in ascending index
    order — [fold (... (fold init (map 0)) ...) (map (n-1))] — so the
    result is bit-identical to the sequential fold even when [fold] is not
    associative. *)

val opt_for : t option -> ?label:string -> int -> (int -> unit) -> unit
(** [opt_for pool n body] is {!parallel_for} when [pool] is [Some] and a
    plain ascending [for] loop otherwise — the shape every [?pool]-taking
    kernel wants. *)

val opt_init : t option -> ?label:string -> int -> (int -> 'a) -> 'a array
(** [opt_init pool n f] is {!parallel_init} when [pool] is [Some] and
    [Array.init n f] otherwise. *)

type hooks = {
  region_enter : label:string -> items:int -> chunks:int -> unit;
  region_leave : label:string -> unit;
  chunk_enter : label:string -> slot:int -> lo:int -> hi:int -> unit;
  chunk_leave : label:string -> slot:int -> lo:int -> hi:int -> unit;
}
(** Instrumentation callbacks (see [Adhoc_obs.attach_pool]).  The region
    pair fires on the owning domain only, for top-level regions only —
    never for nested inline fallbacks — so region/item counts are
    identical for every [jobs] value; [chunks] is the number of chunk
    pairs that will fire ([min jobs items] when the region parallelizes,
    1 otherwise).  The chunk pair fires {e on the domain executing the
    chunk} — slot 0 is the calling domain, slot [i >= 1] worker [i - 1] —
    including on the single-chunk path (slot 0), and only for regions
    whose region pair fired, so begin/end events always balance.  Chunk
    hooks must confine themselves to domain-local state (per-slot
    buffers); the sink's shared metrics are owner-domain-only. *)

val set_hooks : t -> hooks option -> unit
(** Install or clear the instrumentation hooks. *)
