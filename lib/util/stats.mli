(** Descriptive statistics over float samples, used by the experiment
    harness to summarise repeated trials. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p95 : float;
}

val mean : float array -> float
val stddev : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation between order
    statistics sorted with [Float.compare].  nan samples are ignored; if
    every sample is nan the result is nan.  Requires a non-empty array. *)

val summarize : float array -> summary
(** Requires a non-empty array.  nan samples are ignored: [n] counts the
    non-nan samples and all fields are computed over them; if every sample
    is nan, [n = 0] and every float field is nan.  ({!mean} and {!stddev}
    applied directly do {e not} filter — they remain plain folds.) *)

val linear_fit : float array -> float array -> float * float
(** [linear_fit xs ys] least-squares line [ys ≈ a + b·xs]; returns [(a, b)].
    Requires equal lengths ≥ 2. *)

val loglog_slope : float array -> float array -> float
(** Least-squares slope of [log ys] against [log xs]: the empirical
    polynomial exponent.  Positive inputs required. *)

val log_fit : float array -> float array -> float * float
(** [log_fit xs ys] fits [ys ≈ a + b·ln xs]; returns [(a, b)].  Used to test
    the [I = O(log n)] claim. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient. *)
