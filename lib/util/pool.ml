(* Fixed-size domain pool with deterministic chunking.

   Concurrency protocol: each worker owns a mailbox (mutex + condition +
   command cell) and blocks until the owner posts a command.  A parallel
   region splits [0, n) into [min jobs n] contiguous chunks — chunk [i] is
   [[i*n/k, (i+1)*n/k)] — posts chunks 1.. to the workers, runs chunk 0 on
   the calling domain, then blocks on a countdown until every chunk
   finished.  Only one region runs at a time ([busy]); a nested or
   foreign-domain call falls back to running the whole range inline, which
   is semantically identical because chunk bodies must be index-pure.

   Determinism: chunk boundaries are a function of (n, jobs) only, every
   index is processed exactly once, and nothing here reorders caller
   computations — each index's work is evaluated by exactly the same code
   regardless of which domain runs it.  Reductions (see {!map_reduce})
   happen on the calling domain in ascending index order, so results are
   bit-identical to the sequential path for any [jobs]. *)

(* This module is the sanctioned Domain wrapper — the raw-domain lint rule
   exempts exactly this path and bans Domain.* everywhere else. *)

type hooks = {
  region_enter : label:string -> items:int -> chunks:int -> unit;
  region_leave : label:string -> unit;
  chunk_enter : label:string -> slot:int -> lo:int -> hi:int -> unit;
  chunk_leave : label:string -> slot:int -> lo:int -> hi:int -> unit;
}

type cmd = Idle | Run of (unit -> unit) | Quit

type worker = {
  w_mutex : Mutex.t;
  w_cond : Condition.t;
  mutable w_cmd : cmd;
  mutable w_domain : unit Domain.t option;
}

type t = {
  jobs : int;
  workers : worker array;  (* length [jobs - 1] *)
  owner : Domain.id;
  d_mutex : Mutex.t;  (* guards [pending], [busy] *)
  d_cond : Condition.t;  (* signalled when [pending] hits zero *)
  mutable pending : int;
  mutable busy : bool;
  mutable alive : bool;
  mutable hooks : hooks option;
}

(* OCaml 5.1 supports at most 128 live domains; stay well under it so
   several pools (tests) can coexist. *)
let max_jobs = 64

let default_jobs () = max 1 (min max_jobs (Domain.recommended_domain_count ()))

let rec worker_loop w =
  Mutex.lock w.w_mutex;
  while w.w_cmd = Idle do
    Condition.wait w.w_cond w.w_mutex
  done;
  let cmd = w.w_cmd in
  w.w_cmd <- Idle;
  Mutex.unlock w.w_mutex;
  match cmd with
  | Quit -> ()
  | Idle -> assert false
  | Run f ->
      f ();
      worker_loop w

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some j -> max 1 (min max_jobs j)
  in
  let workers =
    Array.init (jobs - 1) (fun _ ->
        {
          w_mutex = Mutex.create ();
          w_cond = Condition.create ();
          w_cmd = Idle;
          w_domain = None;
        })
  in
  let t =
    {
      jobs;
      workers;
      owner = Domain.self ();
      d_mutex = Mutex.create ();
      d_cond = Condition.create ();
      pending = 0;
      busy = false;
      alive = true;
      hooks = None;
    }
  in
  Array.iter (fun w -> w.w_domain <- Some (Domain.spawn (fun () -> worker_loop w))) workers;
  t

let jobs t = t.jobs

let set_hooks t hooks = t.hooks <- hooks

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter
      (fun w ->
        Mutex.lock w.w_mutex;
        w.w_cmd <- Quit;
        Condition.signal w.w_cond;
        Mutex.unlock w.w_mutex)
      t.workers;
    Array.iter (fun w -> Option.iter Domain.join w.w_domain) t.workers
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Try to become the (single) active region.  Fails for nested calls, for
   calls from a worker domain and after shutdown — all of which then run
   the range inline on the calling domain. *)
let try_acquire t =
  Mutex.lock t.d_mutex;
  let ok = t.alive && not t.busy in
  if ok then t.busy <- true;
  Mutex.unlock t.d_mutex;
  ok

let release t =
  Mutex.lock t.d_mutex;
  t.busy <- false;
  Mutex.unlock t.d_mutex

let post w f =
  Mutex.lock w.w_mutex;
  w.w_cmd <- Run f;
  Condition.signal w.w_cond;
  Mutex.unlock w.w_mutex

(* Wrap one chunk in its instrumentation pair.  Chunk hooks fire on the
   domain that executes the chunk (that is their point: per-domain
   timelines), so they must only touch domain-local state — see
   Adhoc_obs.Domprof's single-writer lanes.  [fire] is the hook snapshot
   taken at region entry, so a region's chunk events always pair with its
   region events even if hooks are swapped mid-flight. *)
let run_slot fire ~label ~chunk slot lo hi =
  match fire with
  | None -> chunk lo hi
  | Some h ->
      h.chunk_enter ~label ~slot ~lo ~hi;
      Fun.protect
        ~finally:(fun () -> h.chunk_leave ~label ~slot ~lo ~hi)
        (fun () -> chunk lo hi)

(* Run [chunk lo hi] over a partition of [0, n) into [k] contiguous chunks,
   chunk [i] on worker [i - 1] and chunk 0 on the calling domain.  Chunk
   bodies iterate ascending and abort at the first raise, so the exception
   re-raised here — first failing chunk in index order — is the exception
   of the lowest failing index, independent of [jobs]. *)
let run_chunked t ~fire ~label ~n ~chunk =
  let k = min t.jobs n in
  let exns = Array.make k None in
  Mutex.lock t.d_mutex;
  t.pending <- k - 1;
  Mutex.unlock t.d_mutex;
  for i = 1 to k - 1 do
    post t.workers.(i - 1) (fun () ->
        (try run_slot fire ~label ~chunk i (i * n / k) ((i + 1) * n / k)
         with e -> exns.(i) <- Some e);
        Mutex.lock t.d_mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.signal t.d_cond;
        Mutex.unlock t.d_mutex)
  done;
  (try run_slot fire ~label ~chunk 0 0 (n / k) with e -> exns.(0) <- Some e);
  Mutex.lock t.d_mutex;
  while t.pending > 0 do
    Condition.wait t.d_cond t.d_mutex
  done;
  Mutex.unlock t.d_mutex;
  Array.iter (function Some e -> raise e | None -> ()) exns

let run t ~label ~n ~chunk =
  if n > 0 then begin
    let acquired = try_acquire t in
    (* Instrumentation fires only for top-level regions on the owning
       domain — never for nested fallbacks — so hook/span/counter totals
       are identical for every [jobs], including 1.  Chunk counts are the
       one jobs-dependent quantity, by design: a region splits into
       [min jobs n] chunks when it actually parallelizes and 1 otherwise,
       and the slot-0 chunk pair fires on the single-chunk path too, so a
       jobs = 1 pool still yields a complete timeline. *)
    let fire = if acquired && Domain.self () = t.owner then t.hooks else None in
    let k = if (not acquired) || t.jobs = 1 || n = 1 then 1 else min t.jobs n in
    (match fire with Some h -> h.region_enter ~label ~items:n ~chunks:k | None -> ());
    Fun.protect
      ~finally:(fun () ->
        (match fire with Some h -> h.region_leave ~label | None -> ());
        if acquired then release t)
      (fun () ->
        if k = 1 then run_slot fire ~label ~chunk 0 0 n
        else run_chunked t ~fire ~label ~n ~chunk)
  end

let parallel_for t ?(label = "for") n body =
  run t ~label ~n ~chunk:(fun lo hi ->
      for i = lo to hi - 1 do
        body i
      done)

let parallel_init t ?(label = "init") n f =
  if n <= 0 then [||]
  else begin
    (* Index 0 seeds the array on the calling domain; the region covers the
       rest.  Same evaluation per index either way. *)
    let a = Array.make n (f 0) in
    run t ~label ~n:(n - 1) ~chunk:(fun lo hi ->
        for i = lo to hi - 1 do
          a.(i + 1) <- f (i + 1)
        done);
    a
  end

let map_reduce t ?(label = "map-reduce") ~n ~map ~init ~fold () =
  if n <= 0 then init
  else Array.fold_left fold init (parallel_init t ~label n map)

(* Option-threading conveniences: every kernel takes [?pool] and the
   [None] path must stay exactly the code that existed before the pool
   did, so the sequential fallbacks below spell it out. *)

let opt_for pool ?label n body =
  match pool with
  | Some t -> parallel_for t ?label n body
  | None ->
      for i = 0 to n - 1 do
        body i
      done

let opt_init pool ?label n f =
  match pool with Some t -> parallel_init t ?label n f | None -> Array.init n f
