(** Stretch of a subgraph: how much longer (in a given cost model) paths get
    when restricted to the subgraph.  This quantifies the paper's central
    topology-control results: Theorem 2.2 (energy-stretch of 𝒩 is O(1)) and
    Theorem 2.7 (distance-stretch is O(1) on civilized graphs).

    All functions require the subgraph and the base graph to share the node
    set [0 .. n-1]. *)

val over_base_edges :
  ?pool:Adhoc_util.Pool.t -> sub:Graph.t -> base:Graph.t -> cost:Cost.t -> unit -> float
(** [over_base_edges ~sub ~base ~cost] is
    [max] over edges [(u,v)] of [base] of
    [dist_sub(u, v) / cost(len(u, v))].

    For any cost model this equals the exact all-pairs stretch
    [max_{u,v} dist_sub(u,v) / dist_base(u,v)]: a shortest base path is a
    concatenation of base edges, so replacing each edge within factor [r]
    bounds every pair within [r]; conversely the pair formed by the
    worst edge achieves the edge ratio.  Runs Dijkstra in [sub] from each
    node, [O(n · m_sub · log n)].  Returns [infinity] if some base edge's
    endpoints are disconnected in [sub], [1.] for an edgeless base. *)

val exact_small : sub:Graph.t -> base:Graph.t -> cost:Cost.t -> float
(** All-pairs stretch by double Floyd–Warshall, [O(n³)].  Test oracle for
    {!over_base_edges}; use only on small graphs. *)

val vs_euclidean :
  ?pool:Adhoc_util.Pool.t -> sub:Graph.t -> points:Adhoc_geom.Point.t array -> unit -> float
(** Spanner ratio: [max_{u ≠ v} dist_sub(u,v) / |uv|] with the length cost
    model, over all node pairs.  This is distance-stretch measured against
    the underlying metric rather than against a base graph (lower bound:
    the base-graph variant, since [dist_base(u,v) >= |uv|]). *)

val per_edge_profile :
  ?pool:Adhoc_util.Pool.t -> sub:Graph.t -> base:Graph.t -> cost:Cost.t -> unit -> float array
(** The individual ratios behind {!over_base_edges}, one per base edge, for
    distribution summaries.

    All three Dijkstra sweeps above accept [?pool] to fan sources across
    domains; reductions happen on the caller in source order, so results
    are bit-identical for any pool size. *)
