(* Flat struct-of-arrays graph.

   Edges live in three parallel arrays (endpoints canonicalised [u < v],
   plus length); adjacency is CSR — [adj_off] prefix offsets into
   [adj_nbr]/[adj_eid].  The builder appends into growable flat arrays
   with no per-add set lookup; [build] dedups once by sorting an index
   permutation under the monomorphic ((u, v), insertion-index) order and
   keeping the first insertion of each pair, so edge ids match the old
   insert-time-dedup semantics exactly while the hot path stays
   allocation-free. *)

type edge = { u : int; v : int; len : float }

type t = {
  n : int;
  m : int;
  eu : int array;  (* endpoint u of edge id, u < v *)
  ev : int array;
  elen : float array;
  adj_off : int array;  (* length n + 1 *)
  adj_nbr : int array;  (* length 2m; neighbours of u at [adj_off.(u) .. adj_off.(u+1)) *)
  adj_eid : int array;  (* edge id parallel to [adj_nbr] *)
}

module Builder = struct
  type t = {
    bn : int;
    mutable bu : int array;
    mutable bv : int array;
    mutable blen : float array;
    mutable count : int;
  }

  let create n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative node count";
    { bn = n; bu = [||]; bv = [||]; blen = [||]; count = 0 }

  let grow b =
    let cap = max 8 (2 * Array.length b.bu) in
    let bu = Array.make cap 0 and bv = Array.make cap 0 and blen = Array.make cap 0. in
    Array.blit b.bu 0 bu 0 b.count;
    Array.blit b.bv 0 bv 0 b.count;
    Array.blit b.blen 0 blen 0 b.count;
    b.bu <- bu;
    b.bv <- bv;
    b.blen <- blen

  (* O(count) scan over the flat arrays; dedup proper happens in [build].
     Only test oracles call this — the hot path never does. *)
  let mem b u v =
    let u, v = if u < v then (u, v) else (v, u) in
    let rec scan i = i < b.count && ((b.bu.(i) = u && b.bv.(i) = v) || scan (i + 1)) in
    scan 0

  let add_edge b u v len =
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg "Graph.Builder.add_edge: node out of range";
    if len < 0. then invalid_arg "Graph.Builder.add_edge: negative length";
    if u <> v then begin
      if b.count = Array.length b.bu then grow b;
      let u, v = if u < v then (u, v) else (v, u) in
      b.bu.(b.count) <- u;
      b.bv.(b.count) <- v;
      b.blen.(b.count) <- len;
      b.count <- b.count + 1
    end

  let build b =
    let k = b.count in
    (* Sort an index permutation by ((u, v), insertion index): duplicates
       become adjacent runs whose first element is the earliest insertion,
       which is the one that keeps its length ("first wins", matching the
       old insert-time dedup). *)
    let perm = Array.init k Fun.id in
    Array.sort
      (fun i j ->
        let c = Int.compare b.bu.(i) b.bu.(j) in
        if c <> 0 then c
        else begin
          let c = Int.compare b.bv.(i) b.bv.(j) in
          if c <> 0 then c else Int.compare i j
        end)
      perm;
    let keep = Array.make k false in
    let m = ref 0 in
    for s = 0 to k - 1 do
      let i = perm.(s) in
      let dup =
        s > 0
        &&
        let p = perm.(s - 1) in
        b.bu.(p) = b.bu.(i) && b.bv.(p) = b.bv.(i)
      in
      if not dup then begin
        keep.(i) <- true;
        incr m
      end
    done;
    let m = !m in
    (* Edge ids in insertion order of the kept (first) occurrences: an
       ascending scan over the insertion log. *)
    let eu = Array.make m 0 and ev = Array.make m 0 and elen = Array.make m 0. in
    let id = ref 0 in
    for i = 0 to k - 1 do
      if keep.(i) then begin
        eu.(!id) <- b.bu.(i);
        ev.(!id) <- b.bv.(i);
        elen.(!id) <- b.blen.(i);
        incr id
      end
    done;
    let adj_off = Array.make (b.bn + 1) 0 in
    for e = 0 to m - 1 do
      adj_off.(eu.(e) + 1) <- adj_off.(eu.(e) + 1) + 1;
      adj_off.(ev.(e) + 1) <- adj_off.(ev.(e) + 1) + 1
    done;
    for u = 1 to b.bn do
      adj_off.(u) <- adj_off.(u) + adj_off.(u - 1)
    done;
    let fill = Array.copy adj_off in
    let adj_nbr = Array.make (2 * m) 0 in
    let adj_eid = Array.make (2 * m) 0 in
    (* Ascending edge-id fill: each node's neighbour slice is ordered by
       edge id, as the old nested-array layout was. *)
    for e = 0 to m - 1 do
      let u = eu.(e) and v = ev.(e) in
      adj_nbr.(fill.(u)) <- v;
      adj_eid.(fill.(u)) <- e;
      fill.(u) <- fill.(u) + 1;
      adj_nbr.(fill.(v)) <- u;
      adj_eid.(fill.(v)) <- e;
      fill.(v) <- fill.(v) + 1
    done;
    { n = b.bn; m; eu; ev; elen; adj_off; adj_nbr; adj_eid }
end

let of_edges ~n edges =
  let b = Builder.create n in
  List.iter (fun (u, v, len) -> Builder.add_edge b u v len) edges;
  Builder.build b

let geometric points pairs =
  let n = Array.length points in
  let b = Builder.create n in
  List.iter
    (fun (u, v) -> Builder.add_edge b u v (Adhoc_geom.Point.dist points.(u) points.(v)))
    pairs;
  Builder.build b

let n g = g.n

let num_edges g = g.m

let edge_u g id = g.eu.(id)
let edge_v g id = g.ev.(id)

let edge g id = { u = g.eu.(id); v = g.ev.(id); len = g.elen.(id) }

let endpoints g id = (g.eu.(id), g.ev.(id))

let other_endpoint g id u =
  if g.eu.(id) = u then g.ev.(id)
  else if g.ev.(id) = u then g.eu.(id)
  else invalid_arg "Graph.other_endpoint: node not on edge"

let length g id = g.elen.(id)

let find_edge g u v =
  let rec loop k =
    if k >= g.adj_off.(u + 1) then None
    else if g.adj_nbr.(k) = v then Some g.adj_eid.(k)
    else loop (k + 1)
  in
  loop g.adj_off.(u)

let mem_edge g u v = Option.is_some (find_edge g u v)

let degree g u = g.adj_off.(u + 1) - g.adj_off.(u)

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    best := max !best (degree g u)
  done;
  !best

let iter_neighbors g u f =
  for k = g.adj_off.(u) to g.adj_off.(u + 1) - 1 do
    f g.adj_nbr.(k) g.adj_eid.(k)
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  for id = 0 to g.m - 1 do
    acc := f !acc id { u = g.eu.(id); v = g.ev.(id); len = g.elen.(id) }
  done;
  !acc

let total_length g =
  let acc = ref 0. in
  for id = 0 to g.m - 1 do
    acc := !acc +. g.elen.(id)
  done;
  !acc

let total_energy ?(kappa = 2.) g =
  let acc = ref 0. in
  for id = 0 to g.m - 1 do
    acc := !acc +. Float.pow g.elen.(id) kappa
  done;
  !acc

let is_subgraph h g =
  n h = n g
  &&
  let rec ok id = id >= h.m || (mem_edge g h.eu.(id) h.ev.(id) && ok (id + 1)) in
  ok 0

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: node count mismatch";
  let builder = Builder.create a.n in
  for id = 0 to a.m - 1 do
    Builder.add_edge builder a.eu.(id) a.ev.(id) a.elen.(id)
  done;
  for id = 0 to b.m - 1 do
    Builder.add_edge builder b.eu.(id) b.ev.(id) b.elen.(id)
  done;
  Builder.build builder
