type result = {
  dist : float array;
  pred : int array;
  pred_edge : int array;
}

let run_internal g ~cost ~src ~stop_at =
  let n = Graph.n g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.run: source out of range";
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let pred_edge = Array.make n (-1) in
  let settled = Array.make n false in
  let q = Adhoc_util.Pqueue.create () in
  dist.(src) <- 0.;
  Adhoc_util.Pqueue.push q 0. src;
  let quit = ref false in
  while (not !quit) && not (Adhoc_util.Pqueue.is_empty q) do
    let d, u = Adhoc_util.Pqueue.pop_exn q in
    if not settled.(u) then begin
      settled.(u) <- true;
      if stop_at = u then quit := true
      else
        Graph.iter_neighbors g u (fun v id ->
            if not settled.(v) then begin
              let nd = d +. cost (Graph.length g id) in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                pred.(v) <- u;
                pred_edge.(v) <- id;
                Adhoc_util.Pqueue.push q nd v
              end
            end)
    end
  done;
  { dist; pred; pred_edge }

let run g ~cost ~src = run_internal g ~cost ~src ~stop_at:(-1)

let run_to g ~cost ~src ~dst = run_internal g ~cost ~src ~stop_at:dst

let distance g ~cost u v = (run_to g ~cost ~src:u ~dst:v).dist.(v)

let path r dst =
  if r.dist.(dst) = infinity then None
  else begin
    let rec walk acc v = if r.pred.(v) = -1 then v :: acc else walk (v :: acc) r.pred.(v) in
    Some (walk [] dst)
  end

let path_edges r dst =
  if r.dist.(dst) = infinity then None
  else begin
    let rec walk acc v =
      if r.pred.(v) = -1 then acc else walk (r.pred_edge.(v) :: acc) r.pred.(v)
    in
    Some (walk [] dst)
  end

let all_pairs ?pool g ~cost =
  Adhoc_util.Pool.opt_init pool ~label:"dijkstra/all-pairs" (Graph.n g) (fun src ->
      (run g ~cost ~src).dist)
