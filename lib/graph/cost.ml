type t = float -> float

let hops _ = 1.

let length len = len

let energy ~kappa len = if Float.equal kappa 2. then len *. len else Float.pow len kappa
