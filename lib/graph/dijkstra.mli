(** Single-source shortest paths with a pluggable edge-cost model. *)

type result = {
  dist : float array;  (** [infinity] for unreachable nodes *)
  pred : int array;  (** predecessor node on a shortest path; [-1] at the source and for unreachable nodes *)
  pred_edge : int array;  (** edge id into the predecessor; [-1] likewise *)
}

val run : Graph.t -> cost:Cost.t -> src:int -> result

val run_to : Graph.t -> cost:Cost.t -> src:int -> dst:int -> result
(** Same, but may stop early once [dst] is settled. *)

val distance : Graph.t -> cost:Cost.t -> int -> int -> float
(** Shortest-path cost between two nodes ([infinity] if disconnected). *)

val path : result -> int -> int list option
(** Node sequence from the source to the argument, inclusive, or [None]
    if unreachable. *)

val path_edges : result -> int -> int list option
(** Edge-id sequence of the shortest path to the argument. *)

val all_pairs : ?pool:Adhoc_util.Pool.t -> Graph.t -> cost:Cost.t -> float array array
(** Dijkstra from every source: [O(n · m log n)].  Row [u] is the distance
    vector from [u].  [?pool] runs the sources in parallel; rows are
    bit-identical either way. *)
