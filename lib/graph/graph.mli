(** Undirected weighted graphs over integer-indexed nodes.

    Node identity is an index into a caller-owned array (usually of
    {!Adhoc_geom.Point.t} positions).  Edges carry a length — for geometric
    graphs, the Euclidean distance between endpoints — and every edge has a
    stable integer id usable as an array index by the interference and
    routing layers.

    Storage is struct-of-arrays: three flat endpoint/length arrays indexed
    by edge id, plus a CSR adjacency (prefix offsets into flat neighbour
    and edge-id arrays).  The builder appends to growable flat arrays and
    dedups once at {!Builder.build} via a sorted index permutation, so
    construction allocates O(1) amortised per edge. *)

type edge = private { u : int; v : int; len : float }
(** Undirected edge with [u < v].  Materialised on demand from the flat
    arrays; use {!edge_u}/{!edge_v}/{!length} in allocation-sensitive
    loops. *)

type t
(** Immutable graph. *)

module Builder : sig
  type graph := t
  type t

  val create : int -> t
  (** [create n] prepares a builder for a graph on nodes [0 .. n-1]. *)

  val add_edge : t -> int -> int -> float -> unit
  (** Adds an undirected edge with the given length.  Self-loops are
      ignored; duplicate pairs are dropped at {!build} time (first
      insertion wins).  Lengths must be non-negative. *)

  val mem : t -> int -> int -> bool
  (** Whether the pair has been inserted.  O(insertions) scan — meant for
      tests and oracles, not hot loops. *)

  val build : t -> graph
  (** Freezes the builder.  Edge ids are assigned in insertion order of
      each pair's first occurrence. *)
end

val of_edges : n:int -> (int * int * float) list -> t

val geometric : Adhoc_geom.Point.t array -> (int * int) list -> t
(** Builds a graph whose edge lengths are the Euclidean distances between
    the given endpoint positions. *)

val n : t -> int
val num_edges : t -> int

val edge : t -> int -> edge
(** Edge by id; ids are [0 .. num_edges - 1].  Allocates; prefer
    {!edge_u}/{!edge_v}/{!length} in hot loops. *)

val edge_u : t -> int -> int
(** Lower endpoint of the edge (no allocation). *)

val edge_v : t -> int -> int
(** Upper endpoint of the edge (no allocation). *)

val endpoints : t -> int -> int * int

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g e u] is the endpoint of edge [e] that is not [u]. *)

val length : t -> int -> float

val mem_edge : t -> int -> int -> bool
val find_edge : t -> int -> int -> int option
(** Edge id connecting the two nodes, if present. *)

val degree : t -> int -> int
val max_degree : t -> int

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g u f] calls [f v edge_id] for each neighbour [v], in
    ascending edge-id order. *)

val fold_edges : t -> init:'a -> f:('a -> int -> edge -> 'a) -> 'a

val total_length : t -> float
val total_energy : ?kappa:float -> t -> float
(** Sum over edges of [len^kappa] (default [kappa = 2.]). *)

val is_subgraph : t -> t -> bool
(** [is_subgraph h g]: every edge of [h] joins the same node pair as some
    edge of [g] (lengths not compared). *)

val union : t -> t -> t
(** Union of edge sets (same node count required); lengths from the first
    graph win on duplicates. *)
