module Pool = Adhoc_util.Pool

let check_compatible sub base =
  if Graph.n sub <> Graph.n base then invalid_arg "Stretch: node count mismatch"

let per_edge_profile ?pool ~sub ~base ~cost () =
  check_compatible sub base;
  let n = Graph.n base in
  (* Group base edges by endpoint so each Dijkstra run in [sub] is reused.
     Flat-accessor scan: no edge records materialised. *)
  let by_src = Array.make n [] in
  for id = Graph.num_edges base - 1 downto 0 do
    by_src.(Graph.edge_u base id) <-
      (id, Graph.edge_v base id, Graph.length base id) :: by_src.(Graph.edge_u base id)
  done;
  let ratios = Array.make (Graph.num_edges base) nan in
  (* Each edge id is grouped under exactly one source, so the per-source
     bodies write disjoint cells. *)
  Pool.opt_for pool ~label:"stretch/profile" n (fun u ->
      if by_src.(u) <> [] then begin
        let r = Dijkstra.run sub ~cost ~src:u in
        List.iter
          (fun (id, v, len) ->
            let c = cost len in
            ratios.(id) <- (if Float.equal c 0. then 1. else r.Dijkstra.dist.(v) /. c))
          by_src.(u)
      end);
  ratios

let over_base_edges ?pool ~sub ~base ~cost () =
  let ratios = per_edge_profile ?pool ~sub ~base ~cost () in
  Array.fold_left Float.max 1. ratios

let exact_small ~sub ~base ~cost =
  check_compatible sub base;
  let n = Graph.n base in
  let ds = Floyd_warshall.run sub ~cost in
  let db = Floyd_warshall.run base ~cost in
  let worst = ref 1. in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if db.(u).(v) < infinity && db.(u).(v) > 0. then
        worst := Float.max !worst (ds.(u).(v) /. db.(u).(v))
    done
  done;
  !worst

let vs_euclidean ?pool ~sub ~points () =
  let n = Graph.n sub in
  if Array.length points <> n then invalid_arg "Stretch.vs_euclidean: size mismatch";
  (* Per-source worsts in parallel, folded on the caller in index order —
     the same Float.max chain as the sequential loop. *)
  let per_src u =
    let r = Dijkstra.run sub ~cost:Cost.length ~src:u in
    let worst = ref 1. in
    for v = u + 1 to n - 1 do
      let d = Adhoc_geom.Point.dist points.(u) points.(v) in
      if d > 0. then worst := Float.max !worst (r.Dijkstra.dist.(v) /. d)
    done;
    !worst
  in
  match pool with
  | Some p -> Pool.map_reduce p ~label:"stretch/euclidean" ~n ~map:per_src ~init:1. ~fold:Float.max ()
  | None ->
      let worst = ref 1. in
      for u = 0 to n - 1 do
        worst := Float.max !worst (per_src u)
      done;
      !worst
