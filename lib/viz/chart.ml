open Adhoc_geom

type series = {
  label : string;
  color : string;
  points : (float * float) array;
}

let palette = [| "#1f4e8c"; "#c0392b"; "#1e8449"; "#b58900"; "#6c3483"; "#117864" |]

let auto_color = ref 0

let series ?color ~label points =
  let color =
    match color with
    | Some c -> c
    | None ->
        let c = palette.(!auto_color mod Array.length palette) in
        incr auto_color;
        c
  in
  { label; color; points }

let data_box all =
  let xs = List.concat_map (fun s -> Array.to_list (Array.map fst s.points)) all in
  let ys = List.concat_map (fun s -> Array.to_list (Array.map snd s.points)) all in
  match (xs, ys) with
  | [], _ | _, [] -> invalid_arg "Chart.render: no data points"
  | x :: xs', y :: ys' ->
      let xmin = List.fold_left Float.min x xs' and xmax = List.fold_left Float.max x xs' in
      let ymin = List.fold_left Float.min y ys' and ymax = List.fold_left Float.max y ys' in
      let ymin = if ymin > 0. then 0. else ymin in
      let pad v = if Float.equal v 0. then 1. else Float.abs v *. 0.05 in
      Box.make
        ~xmin:(xmin -. pad (xmax -. xmin))
        ~ymin
        ~xmax:(xmax +. pad (xmax -. xmin))
        ~ymax:(ymax +. pad (ymax -. ymin))

let render ?(width = 720) ?height:_ ?title ?x_label ?y_label all =
  let box = data_box all in
  let svg = Svg.create ~margin:(0.12 *. Box.diagonal box) ~width ~world:box () in
  let w = Box.width box and h = Box.height box in
  (* Axes along the data box's left/bottom. *)
  let origin = Point.make box.Box.xmin box.Box.ymin in
  Svg.line svg ~stroke:"#333333" ~stroke_width:1.5 origin (Point.make box.Box.xmax box.Box.ymin);
  Svg.line svg ~stroke:"#333333" ~stroke_width:1.5 origin (Point.make box.Box.xmin box.Box.ymax);
  (* Ticks: 5 divisions per axis. *)
  for i = 0 to 5 do
    let fx = box.Box.xmin +. (float_of_int i /. 5. *. w) in
    let fy = box.Box.ymin +. (float_of_int i /. 5. *. h) in
    Svg.line svg ~stroke:"#999999" ~stroke_width:0.6 ~dashed:true
      (Point.make fx box.Box.ymin) (Point.make fx box.Box.ymax);
    Svg.line svg ~stroke:"#999999" ~stroke_width:0.6 ~dashed:true
      (Point.make box.Box.xmin fy) (Point.make box.Box.xmax fy);
    Svg.text svg ~size:11. (Point.make fx (box.Box.ymin -. (0.05 *. h)))
      (Printf.sprintf "%g" fx);
    Svg.text svg ~size:11. (Point.make (box.Box.xmin -. (0.09 *. w)) fy)
      (Printf.sprintf "%g" fy)
  done;
  (* Series. *)
  List.iter
    (fun s ->
      let pts = Array.to_list (Array.map (fun (x, y) -> Point.make x y) s.points) in
      Svg.polyline svg ~stroke:s.color ~stroke_width:2. pts;
      List.iter (fun p -> Svg.circle svg ~fill:s.color p (0.006 *. Box.diagonal box)) pts)
    all;
  (* Legend, top-left inside the plot area. *)
  List.iteri
    (fun i s ->
      let y = box.Box.ymax -. (float_of_int i *. 0.06 *. h) in
      let x = box.Box.xmin +. (0.03 *. w) in
      Svg.line svg ~stroke:s.color ~stroke_width:3. (Point.make x y)
        (Point.make (x +. (0.05 *. w)) y);
      Svg.text svg ~size:12. (Point.make (x +. (0.07 *. w)) y) s.label)
    all;
  (* Titles. *)
  (match title with
  | Some t -> Svg.text svg ~size:15. (Point.make (box.Box.xmin +. (0.3 *. w)) (box.Box.ymax +. (0.07 *. h))) t
  | None -> ());
  (match x_label with
  | Some t -> Svg.text svg ~size:12. (Point.make (box.Box.xmin +. (0.45 *. w)) (box.Box.ymin -. (0.11 *. h))) t
  | None -> ());
  (match y_label with
  | Some t -> Svg.text svg ~size:12. (Point.make (box.Box.xmin -. (0.11 *. w)) (box.Box.ymax +. (0.04 *. h))) t
  | None -> ());
  svg

let save ?width ?height ?title ?x_label ?y_label all path =
  Svg.save (render ?width ?height ?title ?x_label ?y_label all) path
