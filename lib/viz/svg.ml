open Adhoc_geom

type t = {
  buf : Buffer.t;
  scale : float;  (* world units -> pixels *)
  world : Box.t;  (* padded world box *)
  width_px : float;
  height_px : float;
}

let create ?margin ~width ~world () =
  let margin = Option.value margin ~default:(0.05 *. Box.diagonal world) in
  let world = Box.expand world margin in
  let w = Box.width world and h = Box.height world in
  if w <= 0. || h <= 0. then invalid_arg "Svg.create: degenerate world box";
  let scale = float_of_int width /. w in
  let t =
    {
      buf = Buffer.create 4096;
      scale;
      world;
      width_px = float_of_int width;
      height_px = h *. scale;
    }
  in
  Buffer.add_string t.buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
        viewBox=\"0 0 %.2f %.2f\">\n\
        <rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n"
       t.width_px t.height_px t.width_px t.height_px);
  t

(* World -> pixel, with the y-axis flipped. *)
let px t (p : Point.t) =
  ( (p.Point.x -. t.world.Box.xmin) *. t.scale,
    t.height_px -. ((p.Point.y -. t.world.Box.ymin) *. t.scale) )

let style_attrs ?fill ?stroke ?stroke_width ?opacity ?(dashed = false) () =
  String.concat ""
    [
      (match fill with Some c -> Printf.sprintf " fill=\"%s\"" c | None -> "");
      (match stroke with Some c -> Printf.sprintf " stroke=\"%s\"" c | None -> "");
      (match stroke_width with
      | Some w -> Printf.sprintf " stroke-width=\"%.2f\"" w
      | None -> "");
      (match opacity with Some o -> Printf.sprintf " opacity=\"%.2f\"" o | None -> "");
      (if dashed then " stroke-dasharray=\"4 3\"" else "");
    ]

let circle t ?(fill = "black") ?stroke ?stroke_width ?opacity p r =
  let x, y = px t p in
  Buffer.add_string t.buf
    (Printf.sprintf "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\"%s/>\n" x y (r *. t.scale)
       (style_attrs ~fill ?stroke ?stroke_width ?opacity ()))

let line t ?(stroke = "black") ?(stroke_width = 1.) ?opacity ?dashed a b =
  let x1, y1 = px t a and x2, y2 = px t b in
  Buffer.add_string t.buf
    (Printf.sprintf "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\"%s/>\n" x1 y1 x2 y2
       (style_attrs ~stroke ~stroke_width ?opacity ?dashed ()))

let points_attr t ps =
  String.concat " "
    (List.map
       (fun p ->
         let x, y = px t p in
         Printf.sprintf "%.2f,%.2f" x y)
       ps)

let polyline t ?(stroke = "black") ?(stroke_width = 1.) ?opacity ps =
  Buffer.add_string t.buf
    (Printf.sprintf "<polyline points=\"%s\" fill=\"none\"%s/>\n" (points_attr t ps)
       (style_attrs ~stroke ~stroke_width ?opacity ()))

let polygon t ?(fill = "none") ?stroke ?stroke_width ?opacity ps =
  Buffer.add_string t.buf
    (Printf.sprintf "<polygon points=\"%s\"%s/>\n" (points_attr t ps)
       (style_attrs ~fill ?stroke ?stroke_width ?opacity ()))

let text t ?(size = 12.) ?(fill = "black") p s =
  let x, y = px t p in
  let escaped =
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | '<' -> "&lt;"
           | '>' -> "&gt;"
           | '&' -> "&amp;"
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  Buffer.add_string t.buf
    (Printf.sprintf "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" fill=\"%s\">%s</text>\n" x y
       size fill escaped)

let to_string t = Buffer.contents t.buf ^ "</svg>\n"

let save t path =
  let oc = open_out path in (* lint: allow obs-purity -- figure export to a caller-chosen path is this module's whole purpose *)
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))
