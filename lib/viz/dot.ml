module Graph = Adhoc_graph.Graph

let of_graph ?(name = "topology") ?(scale = 10.) points g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=point];\n" name);
  Array.iteri
    (fun i (p : Adhoc_geom.Point.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [pos=\"%.3f,%.3f!\"];\n" i (scale *. p.Adhoc_geom.Point.x)
           (scale *. p.Adhoc_geom.Point.y)))
    points;
  ignore
    (Graph.fold_edges g ~init:() ~f:(fun () _ e ->
         Buffer.add_string buf
           (Printf.sprintf "  n%d -- n%d [len=%.4f];\n" e.Graph.u e.Graph.v e.Graph.len)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save ?name ?scale points g path =
  let oc = open_out path in (* lint: allow obs-purity -- figure export to a caller-chosen path is this module's whole purpose *)
  Fun.protect
    ~finally:(fun () -> close_out oc) (* lint: allow obs-purity -- see the open_out waiver above *)
    (fun () -> output_string oc (of_graph ?name ?scale points g))
