module Point = Adhoc_geom.Point
module Graph = Adhoc_graph.Graph

type network = {
  points : Point.t array;
  graph : Graph.t;
}

let to_string net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "adhoc-network 1\n";
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Array.length net.points));
  Array.iter
    (fun (p : Point.t) ->
      Buffer.add_string buf (Printf.sprintf "%.17g %.17g\n" p.Point.x p.Point.y))
    net.points;
  Buffer.add_string buf (Printf.sprintf "edges %d\n" (Graph.num_edges net.graph));
  ignore
    (Graph.fold_edges net.graph ~init:() ~f:(fun () _ e ->
         Buffer.add_string buf
           (Printf.sprintf "%d %d %.17g\n" e.Graph.u e.Graph.v e.Graph.len)));
  Buffer.contents buf

let points_to_string points =
  to_string { points; graph = Graph.of_edges ~n:(Array.length points) [] }

let fail_at line msg = failwith (Printf.sprintf "Persist.of_string: line %d: %s" line msg)

let of_string s =
  let lines = String.split_on_char '\n' s |> Array.of_list in
  let cursor = ref 0 in
  let next () =
    let rec skip () =
      if !cursor >= Array.length lines then fail_at !cursor "unexpected end of input"
      else begin
        let l = String.trim lines.(!cursor) in
        incr cursor;
        if l = "" then skip () else l
      end
    in
    skip ()
  in
  let header = next () in
  if header <> "adhoc-network 1" then fail_at !cursor "bad header";
  (* Counts can never exceed the remaining lines: rejects absurd values
     before allocating for them. *)
  let plausible k = k >= 0 && k <= Array.length lines in
  let n =
    match String.split_on_char ' ' (next ()) with
    | [ "nodes"; k ] -> (
        match int_of_string_opt k with
        | Some k when plausible k -> k
        | _ -> fail_at !cursor "bad node count")
    | _ -> fail_at !cursor "expected 'nodes <n>'"
  in
  let points =
    Array.init n (fun _ ->
        match String.split_on_char ' ' (next ()) with
        | [ x; y ] -> (
            match (float_of_string_opt x, float_of_string_opt y) with
            | Some x, Some y -> Point.make x y
            | _ -> fail_at !cursor "bad coordinates")
        | _ -> fail_at !cursor "expected '<x> <y>'")
  in
  let m =
    match String.split_on_char ' ' (next ()) with
    | [ "edges"; k ] -> (
        match int_of_string_opt k with
        | Some k when plausible k -> k
        | _ -> fail_at !cursor "bad edge count")
    | _ -> fail_at !cursor "expected 'edges <m>'"
  in
  let b = Graph.Builder.create n in
  for _ = 1 to m do
    match String.split_on_char ' ' (next ()) with
    | [ u; v; len ] -> (
        match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt len) with
        | Some u, Some v, Some len -> Graph.Builder.add_edge b u v len
        | _ -> fail_at !cursor "bad edge")
    | _ -> fail_at !cursor "expected '<u> <v> <len>'"
  done;
  { points; graph = Graph.Builder.build b }

let save net path =
  let oc = open_out path in (* lint: allow obs-purity -- network persistence to a caller-chosen path is this module's whole purpose *)
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string net))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
