(* Counting-sort CSR bucket grid.

   Buckets are two flat int arrays — [start] (prefix offsets over row-major
   cells) and [items] (point ids, bucket-major) — plus coordinate arrays
   [ix]/[iy] mirrored in item order, so the hot distance filter streams over
   contiguous unboxed floats instead of chasing [Point.t] pointers through
   cons cells.  Items within a bucket are listed in the order their ids
   appear in the build input (the counting sort is stable), which makes
   query iteration order a pure function of the point set. *)

type t = {
  cell : float;
  ox : float;
  oy : float;
  cols : int;
  rows : int;
  start : int array;  (* length cols*rows + 1; cell (col,row) spans
                         items.[start.(row*cols+col) .. start.(row*cols+col+1)) *)
  items : int array;  (* point ids, bucket-major *)
  ix : float array;  (* x coordinate of items.(k), parallel to [items] *)
  iy : float array;  (* y coordinate of items.(k), parallel to [items] *)
  points : Point.t array;  (* the build-time array; ids index into it *)
}

let cell_of t x y =
  let col = int_of_float (Float.floor ((x -. t.ox) /. t.cell)) in
  let row = int_of_float (Float.floor ((y -. t.oy) /. t.cell)) in
  (min (max col 0) (t.cols - 1), min (max row 0) (t.rows - 1))

(* Shared core: grid over [points.(ids.(k))], answering queries with the
   values stored in [ids].  [ids] must be duplicate-free. *)
let build_of_ids ~cell (points : Point.t array) ids =
  if cell <= 0. then invalid_arg "Spatial_grid.build: cell must be positive";
  let k = Array.length ids in
  if k = 0 then
    (* A valid empty grid: every query loop is a no-op over zero cells. *)
    { cell; ox = 0.; oy = 0.; cols = 0; rows = 0;
      start = [| 0 |]; items = [||]; ix = [||]; iy = [||]; points }
  else begin
    let p0 = points.(ids.(0)) in
    let xmin = ref p0.Point.x and xmax = ref p0.Point.x in
    let ymin = ref p0.Point.y and ymax = ref p0.Point.y in
    for i = 1 to k - 1 do
      let p = points.(ids.(i)) in
      if p.Point.x < !xmin then xmin := p.Point.x;
      if p.Point.x > !xmax then xmax := p.Point.x;
      if p.Point.y < !ymin then ymin := p.Point.y;
      if p.Point.y > !ymax then ymax := p.Point.y
    done;
    let ox = !xmin and oy = !ymin in
    let cols = max 1 (1 + int_of_float (Float.floor ((!xmax -. ox) /. cell))) in
    let rows = max 1 (1 + int_of_float (Float.floor ((!ymax -. oy) /. cell))) in
    let t0 =
      { cell; ox; oy; cols; rows;
        start = [| 0 |]; items = [||]; ix = [||]; iy = [||]; points }
    in
    let cells = cols * rows in
    let count = Array.make (cells + 1) 0 in
    let bucket = Array.make k 0 in
    for i = 0 to k - 1 do
      let p = points.(ids.(i)) in
      let col, row = cell_of t0 p.Point.x p.Point.y in
      let b = (row * cols) + col in
      bucket.(i) <- b;
      count.(b + 1) <- count.(b + 1) + 1
    done;
    for b = 1 to cells do
      count.(b) <- count.(b) + count.(b - 1)
    done;
    let start = Array.copy count in
    let items = Array.make k 0 in
    let ix = Array.make k 0. in
    let iy = Array.make k 0. in
    (* Ascending scan into ascending fill positions: stable, so each bucket
       lists ids in their [ids]-array order. *)
    for i = 0 to k - 1 do
      let b = bucket.(i) in
      let pos = count.(b) in
      count.(b) <- pos + 1;
      let p = points.(ids.(i)) in
      items.(pos) <- ids.(i);
      ix.(pos) <- p.Point.x;
      iy.(pos) <- p.Point.y
    done;
    { cell; ox; oy; cols; rows; start; items; ix; iy; points }
  end

let build ~cell points = build_of_ids ~cell points (Array.init (Array.length points) Fun.id)

let build_indexed ~cell points ids = build_of_ids ~cell points ids

let cell_size t = t.cell

let length t = Array.length t.items

let fold_within t (p : Point.t) r ~init ~f =
  if Array.length t.items = 0 then init
  else begin
    let r2 = r *. r in
    let px = p.Point.x and py = p.Point.y in
    let col0, row0 = cell_of t px py in
    let span = 1 + int_of_float (Float.ceil (r /. t.cell)) in
    let acc = ref init in
    for row = max 0 (row0 - span) to min (t.rows - 1) (row0 + span) do
      let base = row * t.cols in
      for col = max 0 (col0 - span) to min (t.cols - 1) (col0 + span) do
        let b = base + col in
        for k = t.start.(b) to t.start.(b + 1) - 1 do
          let dx = t.ix.(k) -. px and dy = t.iy.(k) -. py in
          if (dx *. dx) +. (dy *. dy) <= r2 then acc := f !acc t.items.(k)
        done
      done
    done;
    !acc
  end

let iter_within t p r f = fold_within t p r ~init:() ~f:(fun () i -> f i)

let indices_within t p r = fold_within t p r ~init:[] ~f:(fun acc i -> i :: acc)

let nearest_other t i =
  if Array.length t.items < 2 then None
  else begin
    let p = t.points.(i) in
    (* Expand the search radius until a neighbour is found; any point found
       within radius r dominates every point outside r, so the minimum over
       the found set is the global nearest. *)
    let rec search r =
      let best =
        fold_within t p r ~init:None ~f:(fun best j ->
            if j = i then best
            else begin
              let d = Point.dist2 t.points.(j) p in
              match best with
              | Some (bd, bj) ->
                  let c = Float.compare bd d in
                  if c < 0 || (c = 0 && bj < j) then best else Some (d, j)
              | None -> Some (d, j)
            end)
      in
      match best with
      | Some (_, j) -> Some j
      | None -> search (r *. 2.)
    in
    search t.cell
  end
