type t = {
  cell : float;
  origin : Point.t;
  cols : int;
  rows : int;
  buckets : int list array;  (* row-major: buckets.(row * cols + col) *)
  points : Point.t array;
}

let cell_of t (p : Point.t) =
  let col = int_of_float (Float.floor ((p.x -. t.origin.x) /. t.cell)) in
  let row = int_of_float (Float.floor ((p.y -. t.origin.y) /. t.cell)) in
  (min (max col 0) (t.cols - 1), min (max row 0) (t.rows - 1))

let build ~cell points =
  if cell <= 0. then invalid_arg "Spatial_grid.build: cell must be positive";
  if Array.length points = 0 then invalid_arg "Spatial_grid.build: empty point set";
  let box = Box.of_points points in
  let origin = Point.make box.Box.xmin box.Box.ymin in
  let cols = max 1 (1 + int_of_float (Float.floor (Box.width box /. cell))) in
  let rows = max 1 (1 + int_of_float (Float.floor (Box.height box /. cell))) in
  let t = { cell; origin; cols; rows; buckets = Array.make (cols * rows) []; points } in
  Array.iteri
    (fun i p ->
      let col, row = cell_of t p in
      let b = (row * cols) + col in
      t.buckets.(b) <- i :: t.buckets.(b))
    points;
  t

let cell_size t = t.cell

let fold_within t p r ~init ~f =
  let r2 = r *. r in
  let col0, row0 = cell_of t p in
  let span = 1 + int_of_float (Float.ceil (r /. t.cell)) in
  let acc = ref init in
  for row = max 0 (row0 - span) to min (t.rows - 1) (row0 + span) do
    for col = max 0 (col0 - span) to min (t.cols - 1) (col0 + span) do
      List.iter
        (fun i -> if Point.dist2 t.points.(i) p <= r2 then acc := f !acc i)
        t.buckets.((row * t.cols) + col)
    done
  done;
  !acc

let iter_within t p r f = fold_within t p r ~init:() ~f:(fun () i -> f i)

let indices_within t p r = fold_within t p r ~init:[] ~f:(fun acc i -> i :: acc)

let nearest_other t i =
  let n = Array.length t.points in
  if n < 2 then None
  else begin
    let p = t.points.(i) in
    (* Expand the search radius until a neighbour is found; any point found
       within radius r dominates every point outside r, so the minimum over
       the found set is the global nearest. *)
    let rec search r =
      let best =
        fold_within t p r ~init:None ~f:(fun best j ->
            if j = i then best
            else begin
              let d = Point.dist2 t.points.(j) p in
              match best with
              | Some (bd, bj) ->
                  let c = Float.compare bd d in
                  if c < 0 || (c = 0 && bj < j) then best else Some (d, j)
              | None -> Some (d, j)
            end)
      in
      match best with
      | Some (_, j) -> Some j
      | None -> search (r *. 2.)
    in
    search t.cell
  end
