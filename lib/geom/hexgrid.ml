type coord = { q : int; r : int }

type t = { side : float }

let make ~side =
  if side <= 0. then invalid_arg "Hexgrid.make: side must be positive";
  { side }

let side t = t.side

let sqrt3 = sqrt 3.

(* Fractional axial coordinates, then cube rounding (round each cube
   coordinate and fix the one with the largest rounding error so that
   q + r + s = 0 still holds). *)
let of_point t (p : Point.t) =
  let qf = ((sqrt3 /. 3. *. p.x) -. (1. /. 3. *. p.y)) /. t.side in
  let rf = 2. /. 3. *. p.y /. t.side in
  let sf = -.qf -. rf in
  let q = Float.round qf and r = Float.round rf and s = Float.round sf in
  let dq = Float.abs (q -. qf) and dr = Float.abs (r -. rf) and ds = Float.abs (s -. sf) in
  let q, r =
    if dq > dr && dq > ds then (-.r -. s, r)
    else if dr > ds then (q, -.q -. s)
    else (q, r)
  in
  { q = int_of_float q; r = int_of_float r }

let center t c =
  let qf = float_of_int c.q and rf = float_of_int c.r in
  Point.make (t.side *. sqrt3 *. (qf +. (rf /. 2.))) (t.side *. 1.5 *. rf)

let contains t c p = of_point t p = c

let directions = [ (1, 0); (1, -1); (0, -1); (-1, 0); (-1, 1); (0, 1) ]

let neighbors c = List.map (fun (dq, dr) -> { q = c.q + dq; r = c.r + dr }) directions

let hex_distance a b =
  let dq = a.q - b.q and dr = a.r - b.r in
  let ds = -dq - dr in
  (abs dq + abs dr + abs ds) / 2

let ring c k =
  if k < 0 then invalid_arg "Hexgrid.ring: negative radius";
  if k = 0 then [ c ]
  else begin
    (* Walk the ring: start k steps in direction 4, then k steps in each of
       the six directions. *)
    let result = ref [] in
    let cur = ref { q = c.q + (-1 * k); r = c.r + k } in
    List.iter
      (fun (dq, dr) ->
        for _ = 1 to k do
          result := !cur :: !result;
          cur := { q = !cur.q + dq; r = !cur.r + dr }
        done)
      directions;
    !result
  end

let disk c k =
  let rec collect i acc = if i > k then acc else collect (i + 1) (ring c i @ acc) in
  collect 0 []

let compare_coord a b =
  let c = Int.compare a.q b.q in
  if c <> 0 then c else Int.compare a.r b.r

let equal_coord a b = a.q = b.q && a.r = b.r

module Coord_map = Map.Make (struct
  type nonrec t = coord

  let compare = compare_coord
end)

let group_points t points =
  let m = ref Coord_map.empty in
  Array.iteri
    (fun i p ->
      let c = of_point t p in
      m :=
        Coord_map.update c
          (function None -> Some [ i ] | Some l -> Some (i :: l))
          !m)
    points;
  Coord_map.bindings !m
