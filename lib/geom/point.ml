type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.; y = 0. }

let ( +@ ) a b = { x = a.x +. b.x; y = a.y +. b.y }

let ( -@ ) a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k p = { x = k *. p.x; y = k *. p.y }

let dot a b = (a.x *. b.x) +. (a.y *. b.y)

let cross a b = (a.x *. b.y) -. (a.y *. b.x)

let norm2 p = dot p p

let norm p = sqrt (norm2 p)

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist2 a b)

let energy ?(kappa = 2.) u v =
  if Float.equal kappa 2. then dist2 u v else Float.pow (dist u v) kappa

let midpoint a b = { x = (a.x +. b.x) /. 2.; y = (a.y +. b.y) /. 2. }

let two_pi = 2. *. Float.pi

let angle_of u v =
  let a = Float.atan2 (v.y -. u.y) (v.x -. u.x) in
  if a < 0. then a +. two_pi else a

let angle_between a apex b =
  let u = a -@ apex and v = b -@ apex in
  let nu = norm u and nv = norm v in
  if Float.equal nu 0. || Float.equal nv 0. then 0.
  else begin
    let c = dot u v /. (nu *. nv) in
    Float.acos (Float.max (-1.) (Float.min 1. c))
  end

let rotate a p =
  let c = cos a and s = sin a in
  { x = (c *. p.x) -. (s *. p.y); y = (s *. p.x) +. (c *. p.y) }

let lerp a b t = a +@ scale t (b -@ a)

let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Float.compare a.x b.x in
  if c <> 0 then c else Float.compare a.y b.y

let pp ppf p = Format.fprintf ppf "(%g, %g)" p.x p.y

let to_string p = Format.asprintf "%a" pp p
