(** Per-domain spatial tiles with ghost-zone boundary rings.

    The unit square (or whatever bounding box the points span) is cut into
    tiles sized by load and bounded below by the query range; each pool
    domain builds the bucket grid for its own tiles — own points plus a
    ghost ring of outside points within range of the tile rectangle — and
    evaluates the per-node function against that local grid.  The tiling
    is a function of the point set and range only (never of the pool), so
    together with {!Adhoc_util.Pool}'s jobs-invariance the result is
    bit-identical for any job count, including the sequential run. *)

val map_nodes :
  ?pool:Adhoc_util.Pool.t ->
  ?label:string ->
  range:float ->
  Point.t array ->
  f:(Spatial_grid.t -> int -> 'a) ->
  'a array
(** [map_nodes ?pool ~range points ~f] returns [[| f g_0 0; f g_1 1; ... |]]
    where [g_u] is a grid guaranteed to answer any query of radius ≤ [range]
    centred at [points.(u)] exactly as the global grid would (same id set;
    iteration order may differ, so [f] must be candidate-order
    independent).  [f] must not query farther than [range *. (1. +. 1e-6)]
    from its node.  Requires [range] positive and finite when the point set
    is non-empty; [n = 0] yields [[||]]. *)
