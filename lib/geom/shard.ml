(* Per-domain spatial tiles with ghost-zone boundary rings.

   [map_nodes] evaluates a range-local per-node function over every node,
   handing it a bucket grid that answers any query of radius ≤ [range]
   centred at that node.  For large point sets the bounding box is cut
   into ts×ts tiles and each pool domain builds the grid for its own
   tiles only — own points plus a ghost ring of outside points within
   [range] of the tile rectangle — so grid construction and queries touch
   tile-local arrays instead of one shared structure.

   Determinism: the tiling is a function of (point set, range) only —
   never of the pool or jobs — and per-node answers are independent of
   which tile computed them (the ghost ring makes every tile grid
   complete for its own nodes' queries, and [f] is required to be
   candidate-order independent).  [Pool.opt_init] is itself bit-identical
   to the sequential loop, so the whole map is jobs-invariant. *)

module Pool = Adhoc_util.Pool

(* Tiles aim for this many own points; small sets use one global grid. *)
let target_tile_points = 1024

let clamp lo hi v = min (max v lo) hi

let map_nodes ?pool ?label ~range (points : Point.t array) ~f =
  let n = Array.length points in
  if n = 0 then [||]
  else begin
    if not (Float.is_finite range) || range <= 0. then
      invalid_arg "Shard.map_nodes: range must be positive and finite";
    let p0 = points.(0) in
    let xmin = ref p0.Point.x and xmax = ref p0.Point.x in
    let ymin = ref p0.Point.y and ymax = ref p0.Point.y in
    for i = 1 to n - 1 do
      let p = points.(i) in
      if p.Point.x < !xmin then xmin := p.Point.x;
      if p.Point.x > !xmax then xmax := p.Point.x;
      if p.Point.y < !ymin then ymin := p.Point.y;
      if p.Point.y > !ymax then ymax := p.Point.y
    done;
    let width = !xmax -. !xmin and height = !ymax -. !ymin in
    (* Tiles per side: sized by load, capped so a tile side never drops
       below [range] (keeps the ghost ring a one-tile-deep neighbourhood
       in the common case and bounds duplication). *)
    let ts =
      let by_load = int_of_float (Float.floor (Float.sqrt (float_of_int n /. float_of_int target_tile_points))) in
      let by_side dim = int_of_float (Float.floor (dim /. range)) in
      max 1 (min by_load (min (by_side width) (by_side height)))
    in
    if ts <= 1 then begin
      let grid = Spatial_grid.build ~cell:range points in
      Pool.opt_init pool ?label n (fun u -> f grid u)
    end
    else begin
      let tiles = ts * ts in
      let w = width /. float_of_int ts and h = height /. float_of_int ts in
      let tcol x = clamp 0 (ts - 1) (int_of_float (Float.floor ((x -. !xmin) /. w))) in
      let trow y = clamp 0 (ts - 1) (int_of_float (Float.floor ((y -. !ymin) /. h))) in
      let tile_of = Array.make n 0 in
      let slot = Array.make n 0 in
      (* Own lists: counting sort by tile, ascending ids within a tile. *)
      let own_count = Array.make (tiles + 1) 0 in
      for u = 0 to n - 1 do
        let p = points.(u) in
        let t = (trow p.Point.y * ts) + tcol p.Point.x in
        tile_of.(u) <- t;
        own_count.(t + 1) <- own_count.(t + 1) + 1
      done;
      for t = 1 to tiles do
        own_count.(t) <- own_count.(t) + own_count.(t - 1)
      done;
      let own_start = Array.copy own_count in
      let own_items = Array.make n 0 in
      for u = 0 to n - 1 do
        let t = tile_of.(u) in
        let pos = own_count.(t) in
        own_count.(t) <- pos + 1;
        own_items.(pos) <- u;
        slot.(u) <- pos - own_start.(t)
      done;
      (* Ghost lists: u is a ghost of every tile other than its own whose
         rectangle, expanded by r', contains u — i.e. every tile that might
         query within [range] of one of its own nodes and reach u.  The
         slack on r' absorbs the widened queries constructions issue to
         compensate for squared-distance rounding. *)
      let r' = range *. (1. +. 1e-6) in
      let ghost_rect u =
        let p = points.(u) in
        ( clamp 0 (ts - 1) (int_of_float (Float.floor ((p.Point.x -. !xmin -. r') /. w))),
          clamp 0 (ts - 1) (int_of_float (Float.floor ((p.Point.x -. !xmin +. r') /. w))),
          clamp 0 (ts - 1) (int_of_float (Float.floor ((p.Point.y -. !ymin -. r') /. h))),
          clamp 0 (ts - 1) (int_of_float (Float.floor ((p.Point.y -. !ymin +. r') /. h))) )
      in
      let ghost_count = Array.make (tiles + 1) 0 in
      for u = 0 to n - 1 do
        let clo, chi, rlo, rhi = ghost_rect u in
        for row = rlo to rhi do
          for col = clo to chi do
            let t = (row * ts) + col in
            if t <> tile_of.(u) then ghost_count.(t + 1) <- ghost_count.(t + 1) + 1
          done
        done
      done;
      for t = 1 to tiles do
        ghost_count.(t) <- ghost_count.(t) + ghost_count.(t - 1)
      done;
      let ghost_start = Array.copy ghost_count in
      let ghost_items = Array.make ghost_start.(tiles) 0 in
      for u = 0 to n - 1 do
        let clo, chi, rlo, rhi = ghost_rect u in
        for row = rlo to rhi do
          for col = clo to chi do
            let t = (row * ts) + col in
            if t <> tile_of.(u) then begin
              let pos = ghost_count.(t) in
              ghost_count.(t) <- pos + 1;
              ghost_items.(pos) <- u
            end
          done
        done
      done;
      (* Each tile builds its local grid and maps [f] over its own nodes;
         the pool splits tiles into contiguous chunks. *)
      let run_tile t =
        let o0 = own_start.(t) in
        let no = own_start.(t + 1) - o0 in
        if no = 0 then [||]
        else begin
          let g0 = ghost_start.(t) in
          let ng = ghost_start.(t + 1) - g0 in
          let ids = Array.make (no + ng) 0 in
          Array.blit own_items o0 ids 0 no;
          Array.blit ghost_items g0 ids no ng;
          let grid = Spatial_grid.build_indexed ~cell:range points ids in
          Array.init no (fun k -> f grid own_items.(o0 + k))
        end
      in
      let tile_results = Pool.opt_init pool ?label tiles run_tile in
      Array.init n (fun u -> tile_results.(tile_of.(u)).(slot.(u)))
    end
  end
