(** Uniform bucket grid over an indexed point set, stored CSR-style.

    Answers "which points lie within distance [r] of here" in output-sensitive
    time; this is what keeps disk-graph construction and interference-set
    computation near-linear instead of quadratic for the node counts the
    experiments sweep.  Buckets are flat prefix-offset/id arrays with the
    point coordinates mirrored in bucket order, so range queries stream over
    contiguous unboxed floats. *)

type t

val build : cell:float -> Point.t array -> t
(** [build ~cell points] hashes each point index into a square cell of side
    [cell].  Requires [cell > 0].  An empty array yields a valid empty grid
    on which every query returns its zero result.  Point [i] of the array
    keeps index [i] in all query answers. *)

val build_indexed : cell:float -> Point.t array -> int array -> t
(** [build_indexed ~cell points ids] builds a grid over the subset
    [points.(ids.(0)), points.(ids.(1)), ...] only; query answers use the
    values stored in [ids] (the caller's original indices).  [ids] must be
    duplicate-free and each entry must index into [points].  Used for
    per-tile shard grids that answer with global node ids. *)

val cell_size : t -> float

val length : t -> int
(** Number of points stored in the grid. *)

val fold_within : t -> Point.t -> float -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_within g p r ~init ~f] folds [f] over the indices of all points at
    Euclidean distance ≤ [r] from [p] (including a point equal to [p] if
    present). *)

val iter_within : t -> Point.t -> float -> (int -> unit) -> unit

val indices_within : t -> Point.t -> float -> int list
(** Indices within distance [r], unordered. *)

val nearest_other : t -> int -> int option
(** [nearest_other g i] is the index of the nearest point distinct from
    point [i] (ties broken by lower index), or [None] when the set has a
    single point.  Searches outward ring by ring.  [i] must be an id the
    grid was built over. *)
