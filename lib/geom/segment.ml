let orientation a b c =
  let open Point in
  let v = cross (b -@ a) (c -@ a) in
  if v > 1e-12 then 1 else if v < -1e-12 then -1 else 0

let on_segment a b (p : Point.t) =
  let open Point in
  p.x >= Float.min a.x b.x -. 1e-12
  && p.x <= Float.max a.x b.x +. 1e-12
  && p.y >= Float.min a.y b.y -. 1e-12
  && p.y <= Float.max a.y b.y +. 1e-12

let intersects (a, b) (c, d) =
  let o1 = orientation a b c in
  let o2 = orientation a b d in
  let o3 = orientation c d a in
  let o4 = orientation c d b in
  if o1 <> o2 && o3 <> o4 then true
  else
    (o1 = 0 && on_segment a b c)
    || (o2 = 0 && on_segment a b d)
    || (o3 = 0 && on_segment c d a)
    || (o4 = 0 && on_segment c d b)

let properly_intersects (a, b) (c, d) =
  let o1 = orientation a b c in
  let o2 = orientation a b d in
  let o3 = orientation c d a in
  let o4 = orientation c d b in
  o1 <> 0 && o2 <> 0 && o3 <> 0 && o4 <> 0 && o1 <> o2 && o3 <> o4

let distance_to_point a b p =
  let open Point in
  let ab = b -@ a in
  let len2 = norm2 ab in
  if Float.equal len2 0. then dist a p
  else begin
    let t = Float.max 0. (Float.min 1. (dot (p -@ a) ab /. len2)) in
    dist p (lerp a b t)
  end
