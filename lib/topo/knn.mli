(** k-nearest-neighbour graph — the strawman from the paper's introduction:
    "just connecting each node to its closest k neighbors may provide
    energy-efficient routes but does not guarantee connectivity or a
    constant degree per node".

    Experiment E12 quantifies both failures: the disconnection probability
    for practical [k] and the in-degree blow-up, next to ΘALG which fixes
    them at the same edge budget. *)

val build :
  ?pool:Adhoc_util.Pool.t -> ?range:float -> k:int -> Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t
(** Undirected graph with an edge [(u,v)] whenever [v] is among the [k]
    nearest neighbours of [u] (or vice versa) and within [range]
    (default unbounded).  Ties broken by node index.  Grid-accelerated
    expanding-radius search; [?pool] parallelizes per node.  Output is
    bit-identical to {!build_brute}. *)

val build_brute : ?range:float -> k:int -> Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t
(** O(n² log n) reference construction (full scan + sort per node) — the
    test oracle for {!build}. *)

val min_connecting_k :
  ?pool:Adhoc_util.Pool.t -> ?range:float -> ?k_max:int -> Adhoc_geom.Point.t array -> int option
(** The smallest [k] for which the kNN graph is connected, searched up to
    [k_max] (default [n-1]); [None] when even that fails (range-limited). *)
