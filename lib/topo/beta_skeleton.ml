open Adhoc_geom
module Graph = Adhoc_graph.Graph

let region_contains ~beta u v w =
  if beta <= 0. then invalid_arg "Beta_skeleton: beta must be positive";
  let d = Point.dist u v in
  if Float.equal d 0. then false
  else if beta >= 1. then begin
    (* Lune: disks of radius βd/2 centred on the segment, β/2 of the way
       from each endpoint toward the other. *)
    let r = beta *. d /. 2. in
    let c1 = Point.lerp u v (beta /. 2.) in
    let c2 = Point.lerp v u (beta /. 2.) in
    Point.dist w c1 < r && Point.dist w c2 < r
  end
  else begin
    (* Lens: intersection of the two disks of radius d/(2β) through both
       endpoints, centred symmetrically on the perpendicular bisector. *)
    let r = d /. (2. *. beta) in
    let mid = Point.midpoint u v in
    let h = sqrt (Float.max 0. ((r *. r) -. (d *. d /. 4.))) in
    let dir = Point.scale (1. /. d) Point.(v -@ u) in
    let normal = Point.make (-.dir.Point.y) dir.Point.x in
    let c1 = Point.(mid +@ scale h normal) in
    let c2 = Point.(mid -@ scale h normal) in
    Point.dist w c1 < r && Point.dist w c2 < r
  end

let build ?(range = infinity) ~beta points =
  let n = Array.length points in
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Point.dist points.(u) points.(v) in
      if d <= range then begin
        let witness = ref false in
        for w = 0 to n - 1 do
          if w <> u && w <> v && region_contains ~beta points.(u) points.(v) points.(w) then
            witness := true
        done;
        if not !witness then Graph.Builder.add_edge b u v d
      end
    done
  done;
  Graph.Builder.build b
