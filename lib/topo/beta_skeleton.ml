open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Pool = Adhoc_util.Pool

let region_contains ~beta u v w =
  if beta <= 0. then invalid_arg "Beta_skeleton: beta must be positive";
  let d = Point.dist u v in
  if Float.equal d 0. then false
  else if beta >= 1. then begin
    (* Lune: disks of radius βd/2 centred on the segment, β/2 of the way
       from each endpoint toward the other. *)
    let r = beta *. d /. 2. in
    let c1 = Point.lerp u v (beta /. 2.) in
    let c2 = Point.lerp v u (beta /. 2.) in
    Point.dist w c1 < r && Point.dist w c2 < r
  end
  else begin
    (* Lens: intersection of the two disks of radius d/(2β) through both
       endpoints, centred symmetrically on the perpendicular bisector. *)
    let r = d /. (2. *. beta) in
    let mid = Point.midpoint u v in
    let h = sqrt (Float.max 0. ((r *. r) -. (d *. d /. 4.))) in
    let dir = Point.scale (1. /. d) Point.(v -@ u) in
    let normal = Point.make (-.dir.Point.y) dir.Point.x in
    let c1 = Point.(mid +@ scale h normal) in
    let c2 = Point.(mid -@ scale h normal) in
    Point.dist w c1 < r && Point.dist w c2 < r
  end

(* The empty region of a candidate edge (u,v) of length d sits inside the
   disk around u of radius β·d (β ≥ 1: every lune point is within
   |u c1| + βd/2 = βd of u) or d/β (β < 1: the lens disks pass through u,
   so any lens point is within 2r = d/β of u).  A grid query at that
   radius therefore sees every possible witness; [region_contains] stays
   the exact test. *)
let witness_radius ~beta d = if beta >= 1. then beta *. d else d /. beta

let build_brute ?(range = infinity) ~beta points =
  let n = Array.length points in
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Point.dist points.(u) points.(v) in
      if d <= range then begin
        let witness = ref false in
        for w = 0 to n - 1 do
          if w <> u && w <> v && region_contains ~beta points.(u) points.(v) points.(w) then
            witness := true
        done;
        if not !witness then Graph.Builder.add_edge b u v d
      end
    done
  done;
  Graph.Builder.build b

let build ?pool ?(range = infinity) ~beta points =
  if beta <= 0. then invalid_arg "Beta_skeleton: beta must be positive";
  let n = Array.length points in
  let b = Graph.Builder.create n in
  if n > 1 then begin
    let box = Box.of_points points in
    let span = Float.max (Box.width box) (Box.height box) in
    let cell = if span > 0. then span /. sqrt (float_of_int n) else 1. in
    let grid = Spatial_grid.build ~cell points in
    let kept u =
      let acc = ref [] in
      for v = u + 1 to n - 1 do
        let d = Point.dist points.(u) points.(v) in
        if d <= range then begin
          (* Query slightly wide — the grid pre-filters on squared
             distance — and let the exact region test decide. *)
          let r = witness_radius ~beta d *. (1. +. 1e-9) in
          let witness =
            Spatial_grid.fold_within grid points.(u) r ~init:false ~f:(fun found w ->
                found
                || (w <> u && w <> v && region_contains ~beta points.(u) points.(v) points.(w)))
          in
          if not witness then acc := (v, d) :: !acc
        end
      done;
      List.rev !acc
    in
    let adj = Pool.opt_init pool ~label:"beta-skeleton" n kept in
    Array.iteri (fun u vs -> List.iter (fun (v, d) -> Graph.Builder.add_edge b u v d) vs) adj
  end;
  Graph.Builder.build b
