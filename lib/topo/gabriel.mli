(** Gabriel graph — proximity-graph baseline (paper Section 1.2).

    Edge [(u,v)] iff the open disk with diameter [uv] contains no other
    node.  The Gabriel graph contains exactly the edges that are optimal
    single hops under the energy cost with [kappa >= 2] — it has optimal
    energy paths — but worst-case Ω(n) degree. *)

val build :
  ?pool:Adhoc_util.Pool.t -> ?range:float -> Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t
(** [range] restricts candidate edges to at most that length
    (default unbounded).  [?pool] parallelizes the per-node witness
    search; output is bit-identical. *)
