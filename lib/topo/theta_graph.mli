(** The classic θ-graph: like the Yao graph, but within each sector a node
    connects to the neighbour whose *projection onto the sector's bisector*
    is nearest (rather than the nearest by Euclidean distance).

    The θ-graph is the structure for which the textbook spanner bound
    [1 / (cos θ − sin θ)] is proved; comparing it with the Yao selection
    (paper Section 2.1) isolates how much the selection rule matters —
    the degree-reduction ablation in experiment E13. *)

val build :
  ?pool:Adhoc_util.Pool.t -> theta:float -> range:float -> Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t
(** One outgoing edge per non-empty sector per node, undirected union.
    Candidates come from a {!Adhoc_geom.Spatial_grid} when [range] is
    finite; [?pool] parallelizes the per-node selection.  Output is
    bit-identical either way. *)
