(** Relative neighborhood graph (Toussaint 1980) — proximity-graph baseline.

    Edge [(u,v)] iff no node [w] satisfies
    [max(|uw|, |vw|) < |uv|] (the lune of [u] and [v] is empty).  Sparser
    than the Gabriel graph ([MST ⊆ RNG ⊆ Gabriel]); has polynomial — not
    constant — energy-stretch, which experiment E11 exhibits. *)

val build :
  ?pool:Adhoc_util.Pool.t -> ?range:float -> Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t
(** [?pool] parallelizes the per-node lune tests; output is
    bit-identical. *)
