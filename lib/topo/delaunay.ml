open Adhoc_geom
module Graph = Adhoc_graph.Graph

(* Bowyer–Watson: maintain the triangle list; for each inserted point,
   remove every triangle whose circumcircle contains it, then re-triangulate
   the star-shaped cavity from its boundary edges.  O(n) triangles scanned
   per insertion — O(n²) total, adequate for the experiment sizes. *)

type tri = { a : int; b : int; c : int }

let tri_edges t = [ (t.a, t.b); (t.b, t.c); (t.a, t.c) ]

let norm_edge (u, v) = if u < v then (u, v) else (v, u)

let triangles points =
  let n = Array.length points in
  if n < 3 then []
  else begin
    (* Drop exact duplicates: they would make circumcircles degenerate. *)
    let seen = Hashtbl.create n in
    let keep =
      Array.to_list
        (Array.mapi
           (fun i (p : Point.t) ->
             let key = (p.Point.x, p.Point.y) in
             if Hashtbl.mem seen key then None
             else begin
               Hashtbl.add seen key ();
               Some i
             end)
           points)
    in
    let keep = List.filter_map Fun.id keep in
    (* Super-triangle comfortably containing the bounding box. *)
    let box = Box.of_points points in
    let cx = (box.Box.xmin +. box.Box.xmax) /. 2. in
    let cy = (box.Box.ymin +. box.Box.ymax) /. 2. in
    let m = 4. *. Float.max 1. (Float.max (Box.width box) (Box.height box)) in
    let extended =
      Array.append points
        [|
          Point.make (cx -. (20. *. m)) (cy -. (10. *. m));
          Point.make (cx +. (20. *. m)) (cy -. (10. *. m));
          Point.make cx (cy +. (20. *. m));
        |]
    in
    let s0 = n and s1 = n + 1 and s2 = n + 2 in
    let tris = ref [ { a = s0; b = s1; c = s2 } ] in
    List.iter
      (fun i ->
        let p = extended.(i) in
        let bad, good =
          List.partition
            (fun t -> Circle.in_circumcircle extended.(t.a) extended.(t.b) extended.(t.c) p)
            !tris
        in
        (* Boundary edges of the cavity: edges of bad triangles that are not
           shared between two bad triangles. *)
        let tally = Hashtbl.create 16 in
        List.iter
          (fun t ->
            List.iter
              (fun e ->
                let e = norm_edge e in
                Hashtbl.replace tally e (1 + Option.value ~default:0 (Hashtbl.find_opt tally e)))
              (tri_edges t))
          bad;
        (* Sorted-key traversal: the retriangulated cavity is a set, but the
           list order decides edge ids downstream — keep it a function of
           the tally's contents, not of Hashtbl internals. *)
        let fresh =
          Adhoc_util.Det.fold_sorted
            (fun (u, v) count acc -> if count = 1 then { a = u; b = v; c = i } :: acc else acc)
            tally []
        in
        tris := fresh @ good)
      keep;
    !tris
    |> List.filter (fun t -> t.a < n && t.b < n && t.c < n)
    |> List.map (fun t ->
           let s = List.sort Int.compare [ t.a; t.b; t.c ] in
           match s with [ a; b; c ] -> (a, b, c) | _ -> assert false)
  end

let build ?(range = infinity) points =
  let b = Graph.Builder.create (Array.length points) in
  List.iter
    (fun (x, y, z) ->
      List.iter
        (fun (u, v) ->
          let d = Point.dist points.(u) points.(v) in
          if d <= range then Graph.Builder.add_edge b u v d)
        [ (x, y); (y, z); (x, z) ])
    (triangles points);
  Graph.Builder.build b
