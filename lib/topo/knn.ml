open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Pool = Adhoc_util.Pool

(* Strict (distance, index) order — the tie-break shared with the brute
   path, so both constructions pick identical neighbour sets. *)
let cmp_cand (d1, v1) (d2, v2) =
  let c = Float.compare d1 d2 in
  if c <> 0 then c else Int.compare v1 v2

let nearest_k ~range points u k =
  let n = Array.length points in
  (* Collect candidates within range, then select the k closest by a partial
     sort — n is small enough that a full sort is fine. *)
  let candidates = ref [] in
  for v = 0 to n - 1 do
    if v <> u then begin
      let d = Point.dist points.(u) points.(v) in
      if d <= range then candidates := (d, v) :: !candidates
    end
  done;
  let sorted = List.sort cmp_cand !candidates in
  List.filteri (fun i _ -> i < k) sorted |> List.map snd

let build_brute ?(range = infinity) ~k points =
  if k < 1 then invalid_arg "Knn.build: k must be at least 1";
  let n = Array.length points in
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    List.iter
      (fun v -> Graph.Builder.add_edge b u v (Point.dist points.(u) points.(v)))
      (nearest_k ~range points u k)
  done;
  Graph.Builder.build b

let build ?pool ?(range = infinity) ~k points =
  if k < 1 then invalid_arg "Knn.build: k must be at least 1";
  let n = Array.length points in
  let b = Graph.Builder.create n in
  if n > 1 then begin
    let box = Box.of_points points in
    let span = Float.max (Box.width box) (Box.height box) in
    let cell = if span > 0. then span /. sqrt (float_of_int n) else 1. in
    let grid = Spatial_grid.build ~cell points in
    (* Every candidate lies within the bounding-box diagonal, so a query
       that reaches [cap] sees the whole in-range candidate set. *)
    let diagonal = Float.hypot (Box.width box) (Box.height box) in
    let cap = if Float.is_finite range then Float.min range diagonal else diagonal in
    let gather u r =
      let acc = ref [] in
      (* Query slightly wide — the grid pre-filters on squared distance —
         and keep the exact range test. *)
      Spatial_grid.iter_within grid points.(u) (r *. (1. +. 1e-9)) (fun v ->
          if v <> u then begin
            let d = Point.dist points.(u) points.(v) in
            if d <= range then acc := (d, v) :: !acc
          end);
      !acc
    in
    (* Expanding-radius search: once ≥ k candidates sit at distance ≤ r,
       the k nearest overall do too, so the k smallest of the gathered
       superset equal the brute-force answer. *)
    let nearest u =
      let rec grow r =
        let cands = gather u r in
        let within = List.length (List.filter (fun (d, _) -> d <= r) cands) in
        if within >= k || r >= cap then cands else grow (2. *. r)
      in
      let sorted = List.sort cmp_cand (grow (Float.min cell cap)) in
      List.filteri (fun i _ -> i < k) sorted |> List.map (fun (d, v) -> (v, d))
    in
    let adj = Pool.opt_init pool ~label:"knn" n nearest in
    Array.iteri (fun u vs -> List.iter (fun (v, d) -> Graph.Builder.add_edge b u v d) vs) adj
  end;
  Graph.Builder.build b

let min_connecting_k ?pool ?(range = infinity) ?k_max points =
  let n = Array.length points in
  let k_max = Option.value k_max ~default:(max 1 (n - 1)) in
  let rec search k =
    if k > k_max then None
    else if Adhoc_graph.Components.is_connected (build ?pool ~range ~k points) then Some k
    else search (k + 1)
  in
  if n <= 1 then Some 1 else search 1
