(** The transmission graph G* (paper Section 2): nodes can communicate
    directly iff their distance is at most the maximum transmission range
    [d].  Also known as the unit-disk graph when [d = 1]. *)

val build : ?pool:Adhoc_util.Pool.t -> range:float -> Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t
(** Grid-accelerated construction, output-sensitive.  [?pool]
    parallelizes the per-node neighbour gather; edge ids stay identical. *)

val critical_range : Adhoc_geom.Point.t array -> float
(** The connectivity threshold: the smallest range at which G* is connected
    (the longest edge of the Euclidean MST).  [0.] for fewer than two
    points. *)
