open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Pool = Adhoc_util.Pool

let closer points u a b =
  let c = Float.compare (Point.dist2 points.(u) points.(a)) (Point.dist2 points.(u) points.(b)) in
  c < 0 || (c = 0 && a < b)

let selections ?pool ~theta ~range points =
  if theta <= 0. then invalid_arg "Yao.selections: theta must be positive";
  if range < 0. then invalid_arg "Yao.selections: negative range";
  let n = Array.length points in
  let sectors = Sector.count theta in
  (* Per-call scratch would race across domains; each node allocates its
     own [best].  The per-sector argmin is a strict (distance, index)
     total order, so the result is independent of candidate order — which
     also makes it tile-independent under [Shard.map_nodes]. *)
  let select u iter_candidates =
    let best = Array.make sectors (-1) in
    let consider v =
      if v <> u && Point.dist points.(u) points.(v) <= range then begin
        let s = Sector.index ~theta ~apex:points.(u) points.(v) in
        if best.(s) = -1 || closer points u v best.(s) then best.(s) <- v
      end
    in
    iter_candidates consider;
    let chosen = Array.to_list best in
    let chosen = List.filter (fun v -> v >= 0) chosen in
    Array.of_list (List.sort_uniq Int.compare chosen)
  in
  if n > 1 && Float.is_finite range && range > 0. then begin
    (* Query slightly wide: the grid pre-filters on squared distance, which
       can round an exactly-range-length candidate away; [consider] applies
       the exact range test. *)
    let query = range *. (1. +. 1e-9) in
    Shard.map_nodes ?pool ~label:"yao" ~range points ~f:(fun grid u ->
        select u (Spatial_grid.iter_within grid points.(u) query))
  end
  else
    Pool.opt_init pool ~label:"yao" n (fun u ->
        select u (fun consider ->
            for v = 0 to n - 1 do
              consider v
            done))

let graph ?pool ~theta ~range points =
  let sel = selections ?pool ~theta ~range points in
  let b = Graph.Builder.create (Array.length points) in
  Array.iteri
    (fun u vs ->
      Array.iter (fun v -> Graph.Builder.add_edge b u v (Point.dist points.(u) points.(v))) vs)
    sel;
  Graph.Builder.build b
