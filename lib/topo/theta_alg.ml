open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Pool = Adhoc_util.Pool

type t = {
  theta : float;
  range : float;
  points : Point.t array;
  selections : int array array;
  admitted : (int * int) list array;
  overlay : Graph.t;
}

let degree_bound ~theta = int_of_float (Float.ceil (4. *. Float.pi /. theta))

let build ?pool ~theta ~range points =
  if theta <= 0. || theta > 2. *. Float.pi then invalid_arg "Theta_alg.build: bad theta";
  let n = Array.length points in
  let selections = Yao.selections ?pool ~theta ~range points in
  (* Invert the selection relation: incoming.(u) = nodes v with u ∈ N(v).
     Sequential — the scatter order fixes the incoming lists. *)
  let incoming = Array.make n [] in
  Array.iteri
    (fun v targets -> Array.iter (fun u -> incoming.(u) <- v :: incoming.(u)) targets)
    selections;
  (* Phase 2: u admits, per sector of u, the nearest incoming selector.
     The per-sector argmin under Yao's strict (distance, index) order is
     independent of list order, so the per-node step parallelizes. *)
  let sectors = Sector.count theta in
  let admit u =
    let best = Array.make sectors (-1) in
    List.iter
      (fun v ->
        let s = Sector.index ~theta ~apex:points.(u) points.(v) in
        if best.(s) = -1 || Yao.closer points u v best.(s) then best.(s) <- v)
      incoming.(u);
    let acc = ref [] in
    for s = sectors - 1 downto 0 do
      if best.(s) >= 0 then acc := (best.(s), s) :: !acc
    done;
    !acc
  in
  let admitted = Pool.opt_init pool ~label:"theta-alg/admit" n admit in
  let b = Graph.Builder.create n in
  Array.iteri
    (fun u vs ->
      List.iter (fun (v, _) -> Graph.Builder.add_edge b u v (Point.dist points.(u) points.(v))) vs)
    admitted;
  { theta; range; points; selections; admitted; overlay = Graph.Builder.build b }

let overlay t = t.overlay

let in_yao t u v = Array.exists (fun w -> w = v) t.selections.(u)
