open Adhoc_geom
module Graph = Adhoc_graph.Graph

type t = {
  theta : float;
  range : float;
  points : Point.t array;  (* mutated in place by [move] *)
  selections : int array array;
  admitted : (int * int) list array;
  mutable graph : Graph.t;
  mutable last_affected : int;
}

let select_one t u =
  let sectors = Sector.count t.theta in
  let best = Array.make sectors (-1) in
  Array.iteri
    (fun v p ->
      if v <> u && Point.dist t.points.(u) p <= t.range then begin
        let s = Sector.index ~theta:t.theta ~apex:t.points.(u) p in
        if best.(s) = -1 || Yao.closer t.points u v best.(s) then best.(s) <- v
      end)
    t.points;
  Array.to_list best |> List.filter (fun v -> v >= 0) |> List.sort_uniq Int.compare |> Array.of_list

let admit_one t v =
  (* Selectors of v within range, grouped per sector; keep the nearest. *)
  let sectors = Sector.count t.theta in
  let best = Array.make sectors (-1) in
  Array.iteri
    (fun u _ ->
      if u <> v && Array.exists (fun w -> w = v) t.selections.(u) then begin
        let s = Sector.index ~theta:t.theta ~apex:t.points.(v) t.points.(u) in
        if best.(s) = -1 || Yao.closer t.points v u best.(s) then best.(s) <- u
      end)
    t.points;
  let acc = ref [] in
  for s = sectors - 1 downto 0 do
    if best.(s) >= 0 then acc := (best.(s), s) :: !acc
  done;
  !acc

let rebuild_graph t =
  let b = Graph.Builder.create (Array.length t.points) in
  Array.iteri
    (fun u vs ->
      List.iter
        (fun (v, _) -> Graph.Builder.add_edge b u v (Point.dist t.points.(u) t.points.(v)))
        vs)
    t.admitted;
  t.graph <- Graph.Builder.build b

let create ~theta ~range points =
  let alg = Theta_alg.build ~theta ~range points in
  let t =
    {
      theta;
      range;
      points = Array.copy points;
      selections = Array.map Array.copy alg.Theta_alg.selections;
      admitted = Array.copy alg.Theta_alg.admitted;
      graph = Theta_alg.overlay alg;
      last_affected = 0;
    }
  in
  t

let overlay t = t.graph

let points t = Array.copy t.points

let move t i new_pos =
  if i < 0 || i >= Array.length t.points then invalid_arg "Maintenance.move: node out of range";
  let old_pos = t.points.(i) in
  t.points.(i) <- new_pos;
  (* Nodes whose in-range neighbourhood changed: near the old or the new
     position (plus the moved node itself).  Dense membership arrays walked
     in ascending node order keep the repair deterministic — no reduction
     here may depend on Hashtbl traversal order. *)
  let n = Array.length t.points in
  let affected_select = Array.make n false in
  affected_select.(i) <- true;
  Array.iteri
    (fun u p ->
      if u <> i && (Point.dist p old_pos <= t.range || Point.dist p new_pos <= t.range) then
        affected_select.(u) <- true)
    t.points;
  for u = 0 to n - 1 do
    if affected_select.(u) then t.selections.(u) <- select_one t u
  done;
  (* Nodes whose selector set may have changed: within range of any
     re-selected node (at either endpoint of its move radius). *)
  let affected_admit = Array.make n false in
  for u = 0 to n - 1 do
    if affected_select.(u) then begin
      affected_admit.(u) <- true;
      Array.iteri
        (fun v p ->
          if Point.dist p t.points.(u) <= t.range || (u = i && Point.dist p old_pos <= t.range)
          then affected_admit.(v) <- true)
        t.points
    end
  done;
  let count = ref 0 in
  for v = 0 to n - 1 do
    if affected_admit.(v) then begin
      t.admitted.(v) <- admit_one t v;
      incr count
    end
  done;
  t.last_affected <- !count;
  rebuild_graph t

let last_affected t = t.last_affected
