(** Cone-based topology control (CBTC) — the distributed power-control
    algorithm of Wattenhofer, Li, Bahl & Wang (INFOCOM 2001), the closest
    prior work the paper discusses (Section 1.2, [43] and [31]).

    Each node grows its transmission power until every cone of angle
    [alpha] around it contains a reachable neighbour (or maximum power is
    reached).  With [alpha <= 2π/3] the union of the resulting links
    preserves the connectivity of the maximum-power graph.  Unlike ΘALG,
    CBTC controls *power*, not degree: its node degrees are not bounded by
    a constant — experiment E11 puts the two side by side. *)

type t = {
  alpha : float;
  radii : float array;  (** chosen transmission radius per node *)
  graph : Adhoc_graph.Graph.t;  (** symmetric links: [|uv| <= min(r_u, r_v)] *)
  asymmetric : Adhoc_graph.Graph.t;  (** links where at least one side reaches *)
}

val build : ?pool:Adhoc_util.Pool.t -> alpha:float -> range:float -> Adhoc_geom.Point.t array -> t
(** [range] is the maximum transmission radius.  Requires
    [0 < alpha <= 2π].  Neighbour gathers go through a spatial grid with
    exact re-filtering, and [?pool] parallelizes the per-node radius
    growth and link derivation; the result is bit-identical to the brute
    sequential construction. *)

val coverage_ok : alpha:float -> Adhoc_geom.Point.t array -> int -> float -> bool
(** [coverage_ok ~alpha points u r]: every cone of angle [alpha] apexed at
    [u] contains a neighbour within distance [r] — the algorithm's
    per-node stopping condition (gap-based test over the sorted neighbour
    angles).  Full-scan reference implementation; the grid path inside
    {!build} is tested against it. *)
