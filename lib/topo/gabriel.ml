open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Pool = Adhoc_util.Pool

let build ?pool ?(range = infinity) points =
  let n = Array.length points in
  let b = Graph.Builder.create n in
  if n > 1 then begin
    let box = Box.of_points points in
    let span = Float.max (Box.width box) (Box.height box) in
    let cell = if span > 0. then span /. sqrt (float_of_int n) else 1. in
    let grid = Spatial_grid.build ~cell points in
    let kept u =
      let acc = ref [] in
      for v = u + 1 to n - 1 do
        let d = Point.dist points.(u) points.(v) in
        if d <= range then begin
          let disk = Circle.diametral points.(u) points.(v) in
          let witness =
            Spatial_grid.fold_within grid disk.Circle.center disk.Circle.radius ~init:false
              ~f:(fun found w -> found || (w <> u && w <> v && Circle.contains disk points.(w)))
          in
          if not witness then acc := (v, d) :: !acc
        end
      done;
      List.rev !acc
    in
    let adj = Pool.opt_init pool ~label:"gabriel" n kept in
    Array.iteri (fun u vs -> List.iter (fun (v, d) -> Graph.Builder.add_edge b u v d) vs) adj
  end;
  Graph.Builder.build b
