open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Pool = Adhoc_util.Pool

type t = {
  alpha : float;
  radii : float array;
  graph : Graph.t;
  asymmetric : Graph.t;
}

(* Every cone of angle alpha apexed at u contains one of the given angles
   iff the largest angular gap between consecutive neighbours is < alpha.
   Only the multiset of angle values matters, so callers may supply them
   in any order. *)
let gaps_covered ~alpha angles =
  match angles with
  | [] -> false
  | [ _ ] -> alpha > 2. *. Float.pi -. 1e-12
  | _ ->
      let sorted = List.sort Float.compare angles in
      let first = List.hd sorted in
      let rec max_gap prev acc = function
        | [] -> Float.max acc (first +. (2. *. Float.pi) -. prev)
        | a :: rest -> max_gap a (Float.max acc (a -. prev)) rest
      in
      max_gap first 0. (List.tl sorted) < alpha

let coverage_ok ~alpha points u r =
  let angles = ref [] in
  Array.iteri
    (fun v p ->
      if v <> u && Point.dist points.(u) p <= r then
        angles := Point.angle_of points.(u) p :: !angles)
    points;
  gaps_covered ~alpha !angles

let build ?pool ~alpha ~range points =
  if alpha <= 0. || alpha > 2. *. Float.pi then invalid_arg "Cbtc.build: bad alpha";
  if range < 0. then invalid_arg "Cbtc.build: negative range";
  let n = Array.length points in
  let grid =
    if n > 1 then begin
      let box = Box.of_points points in
      let span = Float.max (Box.width box) (Box.height box) in
      let cell = if span > 0. then span /. sqrt (float_of_int n) else 1. in
      Some (Spatial_grid.build ~cell points, Float.hypot (Box.width box) (Box.height box))
    end
    else None
  in
  (* Grid queries go slightly wide (the grid pre-filters on squared
     distance) and re-test exactly, so every candidate set matches the
     brute scan's. *)
  let iter_within_exact u r f =
    match grid with
    | Some (g, diagonal) ->
        let q = Float.min r diagonal in
        Spatial_grid.iter_within g points.(u) (q *. (1. +. 1e-9)) (fun v ->
            if v <> u && Point.dist points.(u) points.(v) <= r then f v)
    | None ->
        for v = 0 to n - 1 do
          if v <> u && Point.dist points.(u) points.(v) <= r then f v
        done
  in
  let coverage u r =
    let angles = ref [] in
    iter_within_exact u r (fun v -> angles := Point.angle_of points.(u) points.(v) :: !angles);
    gaps_covered ~alpha !angles
  in
  (* Per node: grow the radius through the sorted neighbour distances until
     the cone condition holds; fall back to maximum power. *)
  let radius_of u =
    let dists = ref [] in
    iter_within_exact u range (fun v -> dists := Point.dist points.(u) points.(v) :: !dists);
    let rec grow = function
      | [] -> range
      | d :: rest -> if coverage u d then d else grow rest
    in
    grow (List.sort Float.compare !dists)
  in
  let radii = Pool.opt_init pool ~label:"cbtc/radii" n radius_of in
  (* Candidate pairs per node, ascending v to keep the sequential edge
     order; edges only exist at distance ≤ range ≥ every radius. *)
  let pairs u =
    let acc = ref [] in
    iter_within_exact u range (fun v ->
        if v > u then begin
          let d = Point.dist points.(u) points.(v) in
          let s = d <= Float.min radii.(u) radii.(v) in
          let a = d <= Float.max radii.(u) radii.(v) in
          if s || a then acc := (v, d, s, a) :: !acc
        end);
    List.sort (fun (v1, _, _, _) (v2, _, _, _) -> Int.compare v1 v2) !acc
  in
  let adj = Pool.opt_init pool ~label:"cbtc/links" n pairs in
  let sym = Graph.Builder.create n in
  let asym = Graph.Builder.create n in
  Array.iteri
    (fun u vs ->
      List.iter
        (fun (v, d, s, a) ->
          if s then Graph.Builder.add_edge sym u v d;
          if a then Graph.Builder.add_edge asym u v d)
        vs)
    adj;
  { alpha; radii; graph = Graph.Builder.build sym; asymmetric = Graph.Builder.build asym }
