(** Message-passing implementation of ΘALG (paper Section 2.1).

    The paper notes the algorithm runs in three rounds of local
    broadcasting:
    + every node broadcasts a [Position] message at maximum power;
    + every node [u] sends a [Neighborhood] message to each [v ∈ N(u)];
    + every node sends a [Connection] message to the nearest selector per
      sector (the admission step); 𝒩 keeps an edge for every pair that
      exchanged a connection message.

    This module executes those rounds over an explicit message transcript —
    the distributed-systems view of {!Theta_alg} — and reports the message
    complexity.  The resulting overlay is identical (tested) to the direct
    construction. *)

type stats = {
  position_msgs : int;  (** round-1 broadcasts, one per node *)
  neighborhood_msgs : int;  (** round-2 unicasts, [Σ_u |N(u)|] *)
  connection_msgs : int;  (** round-3 unicasts, one per admitted edge endpoint *)
}

val run :
  ?pool:Adhoc_util.Pool.t ->
  theta:float ->
  range:float ->
  Adhoc_geom.Point.t array ->
  Adhoc_graph.Graph.t * stats
(** [?pool] parallelizes the per-node selection and admission rounds; the
    message scatters between rounds replay sequentially in node order, so
    the overlay, stats and edge ids are bit-identical for any pool. *)
