(** Phase 1 of ΘALG: the Yao graph 𝒩₁ (paper Section 2.1; Yao 1982).

    Each node [u] partitions the plane into sectors of angle [theta] and
    selects, in every sector, the nearest node within transmission range —
    the set [N(u)].  The undirected union of the selection edges is the Yao
    graph, a spanner with O(1) energy-stretch but worst-case Ω(n) in-degree.

    Ties in distance are broken by node index, implementing the paper's
    "all pairwise distances are unique" assumption. *)

val closer : Adhoc_geom.Point.t array -> int -> int -> int -> bool
(** [closer points u a b]: node [a] is strictly closer to [u] than [b] under
    the (distance, index) tie-breaking order.  The shared order used by both
    phases of ΘALG. *)

val selections :
  ?pool:Adhoc_util.Pool.t -> theta:float -> range:float -> Adhoc_geom.Point.t array -> int array array
(** [selections ~theta ~range points] returns [N]: [N.(u)] lists the nodes
    selected by [u], one per non-empty sector (each is the nearest node of
    the sector at distance ≤ [range]), in ascending node order.
    Requires [0 < theta] and [range >= 0] ([infinity] for unbounded).
    [?pool] parallelizes the per-node selection; output is bit-identical
    for any pool size. *)

val graph :
  ?pool:Adhoc_util.Pool.t -> theta:float -> range:float -> Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t
(** The (undirected) Yao graph 𝒩₁: edge [(u,v)] iff [v ∈ N(u)] or
    [u ∈ N(v)]. *)
