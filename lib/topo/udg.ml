open Adhoc_geom
module Graph = Adhoc_graph.Graph

let build ?pool ~range points =
  if range < 0. then invalid_arg "Udg.build: negative range";
  let n = Array.length points in
  let b = Graph.Builder.create n in
  if n > 1 && range > 0. then begin
    (* Query slightly wide (the grid pre-filters on squared distance, which
       can round an exactly-range-length edge away), then test exactly. *)
    let query = range *. (1. +. 1e-9) in
    let neighbors grid u =
      let acc = ref [] in
      Spatial_grid.iter_within grid points.(u) query (fun v ->
          if v > u && Point.dist points.(u) points.(v) <= range then
            acc := (v, Point.dist points.(u) points.(v)) :: !acc);
      (* Canonical order — ascending neighbour id — so the edge list does
         not depend on grid iteration order (global or tile-local). *)
      List.sort (fun (a, _) (c, _) -> Int.compare a c) !acc
    in
    let adj = Shard.map_nodes ?pool ~label:"udg" ~range points ~f:neighbors in
    (* Sequential merge in node order: edge ids match the sequential build. *)
    Array.iteri (fun u vs -> List.iter (fun (v, d) -> Graph.Builder.add_edge b u v d) vs) adj
  end;
  Graph.Builder.build b

let critical_range points = Euclidean_mst.longest_edge points
