(** ΘALG — the paper's topology-control algorithm (Section 2.1), producing
    the overlay 𝒩.

    Phase 1 builds the Yao selections [N(u)] (see {!Yao}).  Phase 2 is the
    local degree-reduction step: every node [u] *admits* at most one
    incoming selection edge per sector — the shortest one — and an edge
    [(u,v)] survives into 𝒩 iff at least one endpoint admits it.

    Guarantees reproduced by the experiments:
    - 𝒩 is connected whenever G* is, with degree ≤ [4π/θ] (Lemma 2.1);
    - 𝒩 has O(1) energy-stretch for every node distribution (Theorem 2.2,
      [theta] sufficiently small, [kappa >= 2]);
    - O(1) distance-stretch on civilized sets (Theorem 2.7). *)

type t = {
  theta : float;
  range : float;
  points : Adhoc_geom.Point.t array;
  selections : int array array;  (** phase-1 [N(u)], per node *)
  admitted : (int * int) list array;  (** phase-2: [(v, sector)] admitted into each node *)
  overlay : Adhoc_graph.Graph.t;  (** the topology 𝒩 *)
}

val build : ?pool:Adhoc_util.Pool.t -> theta:float -> range:float -> Adhoc_geom.Point.t array -> t
(** Requires [0 < theta <= 2π] (the paper's analysis needs [theta <= π/3];
    construction itself works for any positive angle) and [range >= 0].
    [?pool] parallelizes both phases' per-node loops; the result is
    bit-identical for any pool size. *)

val overlay : t -> Adhoc_graph.Graph.t

val degree_bound : theta:float -> int
(** Lemma 2.1's bound [4π/θ], rounded up: admitted in-edges plus surviving
    out-edges, one of each per sector. *)

val in_yao : t -> int -> int -> bool
(** [in_yao t u v]: whether [v ∈ N(u)] (phase-1 selection). *)
