open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Pool = Adhoc_util.Pool

let build ?pool ~theta ~range points =
  if theta <= 0. then invalid_arg "Theta_graph.build: theta must be positive";
  if range < 0. then invalid_arg "Theta_graph.build: negative range";
  let n = Array.length points in
  let sectors = Sector.count theta in
  (* Per-sector argmin under the strict (projection, index) order: the
     winner is unique, so the candidate iteration order (grid, tile-local
     grid or scan) does not matter. *)
  let select u iter_candidates =
    let best = Array.make sectors (-1) in
    let best_proj = Array.make sectors infinity in
    let consider v =
      if v <> u then begin
        let d = Point.dist points.(u) points.(v) in
        if d <= range then begin
          let s = Sector.index ~theta ~apex:points.(u) points.(v) in
          (* Projection of uv onto the sector bisector. *)
          let bis = Sector.central_angle ~theta s in
          let dirx = cos bis and diry = sin bis in
          let w = points.(v) in
          let u' = points.(u) in
          let proj = ((w.Point.x -. u'.Point.x) *. dirx) +. ((w.Point.y -. u'.Point.y) *. diry) in
          let c = Float.compare proj best_proj.(s) in
          if c < 0 || (c = 0 && (best.(s) = -1 || v < best.(s))) then begin
            best_proj.(s) <- proj;
            best.(s) <- v
          end
        end
      end
    in
    iter_candidates consider;
    best
  in
  let best =
    if n > 1 && Float.is_finite range && range > 0. then begin
      (* Query slightly wide: the grid pre-filters on squared distance;
         [consider] applies the exact range test. *)
      let query = range *. (1. +. 1e-9) in
      Shard.map_nodes ?pool ~label:"theta-graph" ~range points ~f:(fun grid u ->
          select u (Spatial_grid.iter_within grid points.(u) query))
    end
    else
      Pool.opt_init pool ~label:"theta-graph" n (fun u ->
          select u (fun consider ->
              for v = 0 to n - 1 do
                consider v
              done))
  in
  let b = Graph.Builder.create n in
  Array.iteri
    (fun u bu ->
      Array.iter
        (fun v -> if v >= 0 then Graph.Builder.add_edge b u v (Point.dist points.(u) points.(v)))
        bu)
    best;
  Graph.Builder.build b
