module Graph = Adhoc_graph.Graph
module Stretch = Adhoc_graph.Stretch
module Cost = Adhoc_graph.Cost

type t = {
  name : string;
  nodes : int;
  edges : int;
  max_degree : int;
  avg_degree : float;
  connected : bool;
  total_length : float;
  total_energy : float;
  energy_stretch : float;
  distance_stretch : float;
}

let measure ~name ~base g =
  let nodes = Graph.n g in
  {
    name;
    nodes;
    edges = Graph.num_edges g;
    max_degree = Graph.max_degree g;
    avg_degree =
      (if nodes = 0 then 0. else 2. *. float_of_int (Graph.num_edges g) /. float_of_int nodes);
    connected = Adhoc_graph.Components.is_connected g;
    total_length = Graph.total_length g;
    total_energy = Graph.total_energy ~kappa:2. g;
    energy_stretch = Stretch.over_base_edges ~sub:g ~base ~cost:(Cost.energy ~kappa:2.) ();
    distance_stretch = Stretch.over_base_edges ~sub:g ~base ~cost:Cost.length ();
  }

let header =
  Adhoc_util.Table.
    [
      ("topology", Left);
      ("edges", Right);
      ("max deg", Right);
      ("avg deg", Right);
      ("connected", Left);
      ("tot len", Right);
      ("tot energy", Right);
      ("energy stretch", Right);
      ("dist stretch", Right);
    ]

let to_row m =
  [
    m.name;
    string_of_int m.edges;
    string_of_int m.max_degree;
    Printf.sprintf "%.2f" m.avg_degree;
    (if m.connected then "yes" else "NO");
    Printf.sprintf "%.3f" m.total_length;
    Printf.sprintf "%.4f" m.total_energy;
    Printf.sprintf "%.3f" m.energy_stretch;
    Printf.sprintf "%.3f" m.distance_stretch;
  ]
