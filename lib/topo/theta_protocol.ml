open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Pool = Adhoc_util.Pool

type stats = {
  position_msgs : int;
  neighborhood_msgs : int;
  connection_msgs : int;
}

(* Mailboxes hold (sender, payload) pairs; each round is: everyone sends,
   then everyone processes its mailbox.  Nodes only ever use information
   they received in a message — the point of the exercise.

   Every per-sector winner below is the argmin of a strict total order
   ((distance, index) or (projection, index)), so the mailbox processing
   order is irrelevant to the result.  That is what lets round-1 inboxes
   come from a spatial grid (symmetric range: v hears u iff u hears v) —
   tile-local under [Shard.map_nodes] — and lets the per-node rounds run
   on a pool; the message *sends* that feed later rounds are replayed
   sequentially in the original node order, so transcripts, stats and
   edge insertion order are bit-identical. *)

type position_msg = { sender : int; pos : Point.t }

let run ?pool ~theta ~range points =
  if theta <= 0. then invalid_arg "Theta_protocol.run: bad theta";
  let n = Array.length points in
  let sectors = Sector.count theta in

  (* Round 1: position broadcasts at maximum power (range D).  Node u's
     inbox is every v ≠ u within range; gathered receiver-side. *)
  let position_msgs = n in

  (* Each node u computes N(u) from its received positions only. *)
  let closer_from_inbox my_pos a apos b bpos =
    let c = Float.compare (Point.dist2 my_pos apos) (Point.dist2 my_pos bpos) in
    c < 0 || (c = 0 && a < b)
  in
  let select u iter_candidates =
    let best = Array.make sectors (-1) in
    let best_pos = Array.make sectors Point.origin in
    iter_candidates (fun v ->
        if v <> u && Point.dist points.(u) points.(v) <= range then begin
          let ({ sender; pos } : position_msg) = { sender = v; pos = points.(v) } in
          let s = Sector.index ~theta ~apex:points.(u) pos in
          if best.(s) = -1 || closer_from_inbox points.(u) sender pos best.(s) best_pos.(s)
          then begin
            best.(s) <- sender;
            best_pos.(s) <- pos
          end
        end);
    let acc = ref [] in
    for s = sectors - 1 downto 0 do
      if best.(s) >= 0 then acc := best.(s) :: !acc
    done;
    !acc
  in
  let selections =
    if n > 1 && Float.is_finite range && range > 0. then begin
      (* Query slightly wide: the grid pre-filters on squared distance;
         the exact range test in [select] decides. *)
      let query = range *. (1. +. 1e-9) in
      Shard.map_nodes ?pool ~label:"theta-protocol/select" ~range points ~f:(fun grid u ->
          select u (Spatial_grid.iter_within grid points.(u) query))
    end
    else
      Pool.opt_init pool ~label:"theta-protocol/select" n (fun u ->
          select u (fun consider ->
              for v = 0 to n - 1 do
                consider v
              done))
  in

  (* Round 2: u tells each v ∈ N(u) that u selected it.  Sequential replay
     in node order keeps the mailbox transcript identical. *)
  let selector_boxes = Array.make n [] in
  let neighborhood_msgs = ref 0 in
  for u = 0 to n - 1 do
    List.iter
      (fun v ->
        incr neighborhood_msgs;
        selector_boxes.(v) <- u :: selector_boxes.(v))
      selections.(u)
  done;

  (* Round 3: u admits the nearest selector per sector and sends it a
     connection message. *)
  let admit u =
    let best = Array.make sectors (-1) in
    List.iter
      (fun v ->
        let s = Sector.index ~theta ~apex:points.(u) points.(v) in
        if best.(s) = -1 || Yao.closer points u v best.(s) then best.(s) <- v)
      selector_boxes.(u);
    best
  in
  let admitted = Pool.opt_init pool ~label:"theta-protocol/admit" n admit in
  let connection_boxes = Array.make n [] in
  let connection_msgs = ref 0 in
  for u = 0 to n - 1 do
    let best = admitted.(u) in
    for s = 0 to sectors - 1 do
      if best.(s) >= 0 then begin
        incr connection_msgs;
        connection_boxes.(best.(s)) <- u :: connection_boxes.(best.(s))
      end
    done
  done;

  (* An edge exists for every pair that exchanged a connection message. *)
  let b = Graph.Builder.create n in
  for v = 0 to n - 1 do
    List.iter
      (fun u -> Graph.Builder.add_edge b u v (Point.dist points.(u) points.(v)))
      connection_boxes.(v)
  done;
  ( Graph.Builder.build b,
    {
      position_msgs;
      neighborhood_msgs = !neighborhood_msgs;
      connection_msgs = !connection_msgs;
    } )
