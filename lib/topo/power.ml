module Graph = Adhoc_graph.Graph

type t = {
  per_node : float array;
  max_power : float;
  total_power : float;
  mean_power : float;
  unused : int;
}

let assign ?(kappa = 2.) g =
  let n = Graph.n g in
  let longest = Array.make n 0. in
  ignore
    (Graph.fold_edges g ~init:() ~f:(fun () _ e ->
         longest.(e.Graph.u) <- Float.max longest.(e.Graph.u) e.Graph.len;
         longest.(e.Graph.v) <- Float.max longest.(e.Graph.v) e.Graph.len));
  let per_node = Array.map (fun l -> if Float.equal l 0. then 0. else Float.pow l kappa) longest in
  let total_power = Array.fold_left ( +. ) 0. per_node in
  {
    per_node;
    max_power = Array.fold_left Float.max 0. per_node;
    total_power;
    mean_power = (if n = 0 then 0. else total_power /. float_of_int n);
    unused = Array.fold_left (fun acc p -> if Float.equal p 0. then acc + 1 else acc) 0 per_node;
  }

let max_power_ratio ~kappa ~sub ~base =
  let ps = assign ~kappa sub in
  let pb = assign ~kappa base in
  if Float.equal pb.max_power 0. then 1. else ps.max_power /. pb.max_power
