(** β-skeletons (lune-based family) — the parameterized proximity-graph
    family the paper's related work cites next to Gabriel graphs and
    β < 1 skeletons (Section 2.2).

    For [beta >= 1] the empty region of a candidate edge [(u,v)] is the
    lune: the intersection of the two disks of radius [β·|uv|/2] centred at
    the points dividing [uv] in ratios [β/2] from each endpoint.  [beta = 1]
    is exactly the Gabriel graph; [beta = 2] is the relative neighborhood
    graph; larger [beta] gives sparser graphs.

    For [0 < beta < 1] the region is the intersection of the two disks of
    radius [|uv|/(2β)] passing through both endpoints (a lens), giving
    *denser* graphs whose paths have optimal energy for κ ≥ 2. *)

val build :
  ?pool:Adhoc_util.Pool.t ->
  ?range:float ->
  beta:float ->
  Adhoc_geom.Point.t array ->
  Adhoc_graph.Graph.t
(** Requires [beta > 0].  Grid-accelerated witness search — candidates
    come from the disk around [u] that provably contains the empty region
    ([β·|uv|] for [β ≥ 1], [|uv|/β] for [β < 1]); the exact
    {!region_contains} test decides.  [?pool] parallelizes per node.
    Output is bit-identical to {!build_brute}. *)

val build_brute : ?range:float -> beta:float -> Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t
(** O(n³) reference construction scanning all nodes per candidate edge —
    the test oracle for {!build}. *)

val region_contains : beta:float -> Adhoc_geom.Point.t -> Adhoc_geom.Point.t -> Adhoc_geom.Point.t -> bool
(** [region_contains ~beta u v w]: the witness test — whether [w] lies in
    the open empty region of the candidate edge [(u,v)]. *)
