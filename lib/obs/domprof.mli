(** Per-domain profiling timelines for pool-parallel execution.

    A recorder holds one preallocated, growable lane per pool slot
    (slot 0 is the calling/owner domain; slot [i >= 1] is worker
    [i - 1]).  The pool's instrumentation hooks (see
    [Adhoc_obs.attach_pool]) record three kinds of timed scopes:

    - [Region] — a whole top-level parallel region, slot 0;
    - [Chunk] — one chunk of a region, recorded {e on the domain that ran
      it}, with its item range;
    - [Scope] — a {!Span} instance (when the span profiler is created
      with a recorder), slot 0.

    Each lane has a single writer — the domain executing that slot — so
    recording needs no locks; reads must happen after the region
    completed (the pool's completion barrier publishes worker writes).

    {b Determinism.}  {!entries} merges lanes sequentially: ascending
    slot, then per-lane append order (scopes close children-first).  The
    merged structure — kinds, labels, slots, ranges, counts — is a pure
    function of the recorded workload, independent of scheduling; only
    the timestamps are machine-dependent.  Recording changes no computed
    output bit (enforced by the profiling bit-identity tests). *)

type kind = Region | Chunk | Scope

type entry = {
  kind : kind;
  label : string;
  slot : int;
  lo : int;  (** [[0, items)] for [Region], the chunk range for [Chunk],
                 [(0, 0)] for [Scope] *)
  hi : int;
  t0 : float;  (** seconds since the recorder's epoch ({!create}/{!reset}) *)
  t1 : float;
}

type t

val create : ?slots:int -> unit -> t
(** A recorder with [slots] preallocated lanes (default 64, covering any
    pool size; clamped to at least 1).  Sets the epoch. *)

val slots : t -> int

val reset : t -> unit
(** Drops all entries and open marks, keeps lane capacity, re-arms the
    epoch. *)

(** Recording.  [begin_*] / [end_*] must balance per slot; [end_mark]
    without a begin raises [Invalid_argument], as does a slot outside the
    recorder's lane range.  Chunk marks must be called from the domain
    running that slot (the pool hooks do this). *)

val begin_region : t -> label:string -> items:int -> unit

val end_region : t -> unit

val begin_chunk : t -> label:string -> slot:int -> lo:int -> hi:int -> unit

val end_chunk : t -> slot:int -> unit

val begin_scope : t -> label:string -> unit

val end_scope : t -> unit

val length : t -> int
(** Closed entries across all lanes. *)

val entries : t -> entry array
(** The deterministic sequential merge: ascending slot, per-lane append
    order.  Open (unbalanced) marks are not included. *)

type summary = {
  busy : float array;
      (** per-slot busy seconds (sum of chunk durations), indices
          [0 .. max slot that ran a chunk] *)
  busy_min : float;
  busy_max : float;
  busy_mean : float;
  imbalance : float;
      (** [busy_max /. busy_mean] — 1.0 is perfectly balanced; also 1.0
          when every duration was below clock resolution *)
  chunks : int;  (** chunk entries recorded *)
  chunk_items : int;  (** total items across chunk entries *)
}

val summary : t -> summary option
(** Busy-time statistics over the chunk entries; [None] when no chunk was
    recorded. *)
