(** Observability: a zero-dependency metrics / profiling / tracing layer.

    The engines, MACs and the pipeline accept an optional {!sink}; passing
    [None] (the default everywhere) keeps the hot paths allocation-free
    and bit-identical to the uninstrumented behaviour — instrumentation
    sites are a single [match] on the option.  A sink bundles:

    - {!Metrics} — named counters, gauges and fixed-bucket histograms,
      O(1) updates, exported with [Metrics.snapshot];
    - {!Span} — nestable wall-clock timing scopes accumulated per label
      ([prepare], [workload/certify], [engine/…], [mac/…]);
    - {!Trace} — an optional per-step sample recorder with JSONL and CSV
      sinks (see [adhoc_sim route --trace]);
    - {!Event} — an optional per-packet event log (inject / send /
      deliver / collide / epoch / advert), the flight recorder behind
      [adhoc_sim analyze] and the {!Invariants} checker.

    Typical use:
    {[
      let obs = Adhoc_obs.create ~trace:(Adhoc_obs.Trace.create ~stride:10 ()) () in
      let r = Pipeline.run_scenario1 ~obs ~rng built in
      Adhoc_obs.Trace.save_jsonl (Option.get obs.trace) "trace.jsonl";
      List.iter … (Adhoc_obs.Span.totals obs.spans)
    ]} *)

module Metrics = Metrics
module Span = Span
module Trace = Trace
module Event = Event
module Invariants = Invariants

type sink = {
  metrics : Metrics.t;
  spans : Span.t;
  trace : Trace.t option;  (** no per-step trace unless provided *)
  events : Event.log option;  (** no per-packet event log unless provided *)
}

val create : ?trace:Trace.t -> ?events:Event.log -> unit -> sink
(** A sink with fresh metrics and span state. *)

val events : sink option -> Event.log option
(** The sink's event log, when both are present — the single [match] the
    engines hoist out of their hot loops. *)

val time : sink option -> string -> (unit -> 'a) -> 'a
(** [time obs label f] runs [f] inside a span when [obs] is [Some], and
    just runs it otherwise.  For coarse scopes; inside per-step loops the
    engines match on the option and use {!Span.enter} / {!Span.leave}
    directly to stay allocation-free when disabled. *)

val attach_pool : sink -> Adhoc_util.Pool.t -> unit
(** Instrument a domain pool against this sink: each top-level parallel
    region opens a [pool/<label>] span and bumps the [pool.regions] /
    [pool.items] counters.  The pool fires its hooks only for top-level
    regions on its owning domain (see [Adhoc_util.Pool.set_hooks]), so
    every recorded value is identical for every [--jobs] — the sink is
    never touched from a worker domain. *)

val detach_pool : Adhoc_util.Pool.t -> unit
(** Clear a pool's instrumentation hooks (e.g. before the sink is
    discarded while the pool lives on). *)
