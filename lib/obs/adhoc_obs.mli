(** Observability: a zero-dependency metrics / profiling / tracing layer.

    The engines, MACs and the pipeline accept an optional {!sink}; passing
    [None] (the default everywhere) keeps the hot paths allocation-free
    and bit-identical to the uninstrumented behaviour — instrumentation
    sites are a single [match] on the option.  A sink bundles:

    - {!Metrics} — named counters, gauges and fixed-bucket histograms,
      O(1) updates, exported with [Metrics.snapshot];
    - {!Span} — nestable wall-clock timing scopes accumulated per label
      ([prepare], [workload/certify], [engine/…], [mac/…]), optionally
      with per-span {!Gcstat} deltas ([create ~gc:true]);
    - {!Trace} — an optional per-step sample recorder with JSONL and CSV
      sinks (see [adhoc_sim route --trace]);
    - {!Event} — an optional per-packet event log (inject / send /
      deliver / collide / epoch / advert), the flight recorder behind
      [adhoc_sim analyze] and the {!Invariants} checker;
    - {!Domprof} — an optional per-domain profiling timeline fed by the
      pool's region/chunk hooks and the span profiler, exportable as a
      Chrome/Perfetto trace via {!Chrome_trace} (see
      [adhoc_sim route --chrome-trace]).

    Supporting modules: {!Clock} is the layer's single sanctioned
    wall-clock site; {!Gcstat} its single [Gc.*] window (lint rules
    wall-clock / raw-gc).

    Typical use:
    {[
      let dp = Adhoc_obs.Domprof.create () in
      let obs = Adhoc_obs.create ~domprof:dp ~gc:true () in
      Adhoc_obs.attach_pool obs pool;
      let r = Pipeline.run_scenario1 ~obs ~rng built in
      Adhoc_obs.Chrome_trace.save dp "profile.trace.json";
      List.iter … (Adhoc_obs.Span.totals obs.spans)
    ]} *)

module Metrics = Metrics
module Span = Span
module Trace = Trace
module Event = Event
module Invariants = Invariants
module Sketch = Sketch
module Topk = Topk
module Live = Live
module Clock = Clock
module Gcstat = Gcstat
module Domprof = Domprof
module Chrome_trace = Chrome_trace

type sink = {
  metrics : Metrics.t;
  spans : Span.t;
  trace : Trace.t option;  (** no per-step trace unless provided *)
  events : Event.log option;  (** no per-packet event log unless provided *)
  domprof : Domprof.t option;  (** no per-domain timeline unless provided *)
  live : Live.t option;  (** no live streaming analytics unless provided *)
}

val create :
  ?trace:Trace.t ->
  ?events:Event.log ->
  ?domprof:Domprof.t ->
  ?live:Live.t ->
  ?gc:bool ->
  unit ->
  sink
(** A sink with fresh metrics and span state.  [~gc:true] turns on
    per-span GC deltas (default off); [~domprof] threads the recorder
    into the span profiler (span instances become timeline scopes) and
    makes it the default recorder for {!attach_pool}.  [~live] attaches
    the recorder to [~events] as an online observer (raises
    [Invalid_argument] without an event log — the live layer folds the
    event stream). *)

val events : sink option -> Event.log option
(** The sink's event log, when both are present — the single [match] the
    engines hoist out of their hot loops. *)

val live : sink option -> Live.t option
(** The sink's live recorder, when both are present. *)

val time : sink option -> string -> (unit -> 'a) -> 'a
(** [time obs label f] runs [f] inside a span when [obs] is [Some], and
    just runs it otherwise.  For coarse scopes; inside per-step loops the
    engines match on the option and use {!Span.enter} / {!Span.leave}
    directly to stay allocation-free when disabled. *)

val attach_pool : ?domprof:Domprof.t -> sink -> Adhoc_util.Pool.t -> unit
(** Instrument a domain pool against this sink.  Each top-level parallel
    region opens a [pool/<label>] span, bumps the [pool.regions] /
    [pool.items] counters, observes its chunk sizes into the
    [pool.chunk_items] histogram and accumulates a {!Gcstat} delta into
    the [gc.pool.*] counters.  When a recorder is present ([~domprof]
    overrides the sink's), regions and chunks are additionally recorded
    on the per-domain timeline — chunk events fire on the executing
    domain and touch only that slot's single-writer lane; everything
    shared (metrics, spans) is owner-domain-only.

    Jobs-invariance: region/item counts and span counts are identical for
    every [--jobs]; chunk counts/sizes and [gc.pool.*] deltas are
    honest functions of the pool size (and, for GC, of runtime state), so
    [json_check --compare] pins the former exactly and relaxes the
    latter. *)

val detach_pool : Adhoc_util.Pool.t -> unit
(** Clear a pool's instrumentation hooks (e.g. before the sink is
    discarded while the pool lives on). *)
