(** Online invariant checker over a packet-journey event stream.

    Folds over {!Event.t}s as they are recorded (attach to a live log) or
    offline (run over a loaded array) and accumulates violations, each
    with the index of the offending event.  Checked invariants:

    - {b monotone steps} — event step numbers never decrease;
    - {b buffer conservation} — a [Send] only drains a buffer some
      earlier event filled ([Inject]/[Send Moved]), heights never go
      negative, and [Send Delivered] / [Send Moved] agree with whether
      [dst = dest];
    - {b delivery pairing} — every delivering event ([Send Delivered],
      self-absorbed [Inject]) is followed by exactly one [Deliver], and
      no [Deliver] appears unprovoked;
    - {b edge activity} — with [is_active], every [Send]/[Collide] uses
      an edge active at that step; with [endpoints], the send's
      [src]/[dst] are the edge's endpoints (either orientation);
    - {b accounting} — {!final_check} reconciles the fold's totals
      (injected, dropped, delivered, sends, failed sends, energy,
      packets still buffered) against the engine's reported stats;
      energy is summed in event order, so a faithful log matches the
      engine's [total_cost] bit-for-bit.

    The checker stores at most {!max_kept} violations (it keeps
    counting past that), so a hopelessly corrupt log cannot blow up
    memory. *)

type violation = { index : int;  (** offending event index; [length log] for final checks *)
                   reason : string }

type t

val create :
  ?is_active:(step:int -> edge:int -> bool) ->
  ?endpoints:(int -> int * int) ->
  unit ->
  t

val check : t -> int -> Event.t -> unit
(** Feed one event with its index.  Steps must be fed in log order. *)

val attach : t -> Event.log -> unit
(** Check every subsequently recorded event online (adds an observer to
    the log, keeping any already attached). *)

val final_check :
  t ->
  injected:int ->
  dropped:int ->
  delivered:int ->
  sends:int ->
  failed_sends:int ->
  total_cost:float ->
  remaining:int ->
  unit
(** Reconcile against an engine's end-of-run stats; mismatches are
    recorded as violations at index = number of events checked.  Also
    flags a dangling unpaired delivery. *)

val run :
  ?is_active:(step:int -> edge:int -> bool) ->
  ?endpoints:(int -> int * int) ->
  Event.t array ->
  violation list
(** Offline convenience: fold a whole array (no final stats check). *)

val max_kept : int
(** Violations stored verbatim; further ones only bump the count. *)

val violation_count : t -> int

val violations : t -> violation list
(** In detection order, at most {!max_kept}. *)

val ok : t -> bool

val buffered : t -> int
(** Packets the fold believes are still buffered. *)

val report : t -> string
(** Human-readable multi-line summary ("ok" or the violations). *)
