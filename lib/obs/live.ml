(* Online streaming analytics over the packet-journey event stream.

   Tumbling windows are keyed by simulation step — never wall-clock — so
   every snapshot is a pure function of (event sequence, window size,
   top_k): bit-identical across --jobs, and bit-identical between an
   online run (attached to the engine's Event.log) and an offline replay
   of the recorded log.  The packet bookkeeping mirrors
   Routing.Journey's FIFO identity queues, the quantile gauges come from
   Sketch, the heavy hitters from Topk, and health from the Invariants
   fold; none of them retains per-event state beyond O(buckets + k). *)

type window = {
  w : int;
  step_lo : int;
  step_hi : int;
  injected : int;
  dropped : int;
  delivered : int;
  self_deliveries : int;
  sends : int;
  collisions : int;
  control : int;
  buffered : int;  (* gauge at window close *)
  violations : int;  (* cumulative at window close *)
  latency_p50 : float;
  latency_p95 : float;
  hops_p50 : float;
  hops_p95 : float;
  occupancy_p50 : float;
  occupancy_p95 : float;
  top_edges : (int * int * int) list;
}

type cumulative = {
  steps : int;
  events : int;
  windows : int;
  c_injected : int;
  c_dropped : int;
  c_delivered : int;
  c_self_deliveries : int;
  c_sends : int;
  c_collisions : int;
  c_control : int;
  c_buffered : int;
  c_violations : int;
  healthy : bool;
  anomalies : int;
  energy : float;
  latency_mean : float;
  c_latency_p50 : float;
  latency_p90 : float;
  c_latency_p95 : float;
  latency_p99 : float;
  hops_mean : float;
  c_hops_p50 : float;
  c_hops_p95 : float;
  occupancy_mean : float;
  c_occupancy_p50 : float;
  c_occupancy_p95 : float;
  occupancy_max : float;
  c_top_edges : (int * int * int) list;
  top_nodes : (int * int * int) list;
}

type pkt = { injected_at : int; mutable hops : int }

type t = {
  window_size : int;
  top_k : int;
  latency : Sketch.t;
  hops : Sketch.t;
  occupancy : Sketch.t;
  edges_top : Topk.t;
  nodes_top : Topk.t;
  health : Invariants.t;
  queues : (int * int, pkt Queue.t) Hashtbl.t;  (* keyed lookup only, never iterated *)
  mutable buffered : int;
  mutable cur : int;  (* current window index; -1 before the first event *)
  mutable seen_step : int;  (* largest step fed; -1 before the first event *)
  mutable nevents : int;
  mutable energy : float;
  mutable anomalies : int;
  (* per-window counters, reset at each window close *)
  mutable w_injected : int;
  mutable w_dropped : int;
  mutable w_delivered : int;
  mutable w_self : int;
  mutable w_sends : int;
  mutable w_collisions : int;
  mutable w_control : int;
  (* cumulative counters *)
  mutable t_injected : int;
  mutable t_dropped : int;
  mutable t_delivered : int;
  mutable t_self : int;
  mutable t_sends : int;
  mutable t_collisions : int;
  mutable t_control : int;
  mutable windows_rev : window list;
  mutable final : cumulative option;
}

let pow2_buckets upto = Array.init upto (fun i -> Float.of_int (1 lsl i))

let default_latency_buckets = pow2_buckets 15  (* 1 .. 16384 steps *)

let default_hops_buckets = Array.init 32 (fun i -> float_of_int (i + 1))

let default_occupancy_buckets = pow2_buckets 17  (* 1 .. 65536 packets *)

let create ?(top_k = 8) ?(latency_buckets = default_latency_buckets)
    ?(hops_buckets = default_hops_buckets) ?(occupancy_buckets = default_occupancy_buckets)
    ~window () =
  if window < 1 then invalid_arg "Live.create: window must be >= 1 step";
  {
    window_size = window;
    top_k;
    latency = Sketch.create ~buckets:latency_buckets ();
    hops = Sketch.create ~buckets:hops_buckets ();
    occupancy = Sketch.create ~buckets:occupancy_buckets ();
    edges_top = Topk.create ~k:top_k ();
    nodes_top = Topk.create ~k:top_k ();
    health = Invariants.create ();
    queues = Hashtbl.create 64;
    buffered = 0;
    cur = -1;
    seen_step = -1;
    nevents = 0;
    energy = 0.;
    anomalies = 0;
    w_injected = 0;
    w_dropped = 0;
    w_delivered = 0;
    w_self = 0;
    w_sends = 0;
    w_collisions = 0;
    w_control = 0;
    t_injected = 0;
    t_dropped = 0;
    t_delivered = 0;
    t_self = 0;
    t_sends = 0;
    t_collisions = 0;
    t_control = 0;
    windows_rev = [];
    final = None;
  }

let window_size t = t.window_size

let top_k t = t.top_k

let queue_of t v d =
  match Hashtbl.find_opt t.queues (v, d) with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.queues (v, d) q;
      q

(* Close the current window: snapshot its counters and the cumulative
   gauges, then reset the per-window counters and advance. *)
let close_window t =
  let r =
    {
      w = t.cur;
      step_lo = t.cur * t.window_size;
      step_hi = (t.cur * t.window_size) + t.window_size - 1;
      injected = t.w_injected;
      dropped = t.w_dropped;
      delivered = t.w_delivered;
      self_deliveries = t.w_self;
      sends = t.w_sends;
      collisions = t.w_collisions;
      control = t.w_control;
      buffered = t.buffered;
      violations = Invariants.violation_count t.health;
      latency_p50 = Sketch.quantile t.latency 50.;
      latency_p95 = Sketch.quantile t.latency 95.;
      hops_p50 = Sketch.quantile t.hops 50.;
      hops_p95 = Sketch.quantile t.hops 95.;
      occupancy_p50 = Sketch.quantile t.occupancy 50.;
      occupancy_p95 = Sketch.quantile t.occupancy 95.;
      top_edges = Topk.top t.edges_top;
    }
  in
  t.windows_rev <- r :: t.windows_rev;
  t.w_injected <- 0;
  t.w_dropped <- 0;
  t.w_delivered <- 0;
  t.w_self <- 0;
  t.w_sends <- 0;
  t.w_collisions <- 0;
  t.w_control <- 0;
  t.cur <- t.cur + 1

let feed t ev =
  (match t.final with
  | Some _ -> invalid_arg "Live.feed: finish was already called on this recorder"
  | None -> ());
  let step = Event.step ev in
  if step < 0 then invalid_arg "Live.feed: negative step";
  if step < t.seen_step then
    invalid_arg
      (Printf.sprintf
         "Live.feed: out-of-order event at step %d after step %d; the live layer requires \
          the emitters' non-decreasing steps"
         step t.seen_step);
  (* One occupancy sample per observed step: the buffer level as the
     stream leaves that step. *)
  if step > t.seen_step && t.seen_step >= 0 then
    Sketch.observe t.occupancy (float_of_int t.buffered);
  let wi = step / t.window_size in
  if t.cur < 0 then t.cur <- wi
  else
    while t.cur < wi do
      close_window t
    done;
  t.seen_step <- step;
  Invariants.check t.health t.nevents ev;
  t.nevents <- t.nevents + 1;
  match ev with
  | Event.Inject { src; dst; admitted; _ } ->
      if admitted then begin
        t.w_injected <- t.w_injected + 1;
        t.t_injected <- t.t_injected + 1;
        if src = dst then begin
          t.w_delivered <- t.w_delivered + 1;
          t.t_delivered <- t.t_delivered + 1;
          t.w_self <- t.w_self + 1;
          t.t_self <- t.t_self + 1
        end
        else begin
          Queue.push { injected_at = step; hops = 0 } (queue_of t src dst);
          t.buffered <- t.buffered + 1
        end
      end
      else begin
        t.w_dropped <- t.w_dropped + 1;
        t.t_dropped <- t.t_dropped + 1
      end
  | Event.Send { edge; src; dst; dest; cost; outcome; _ } -> (
      t.w_sends <- t.w_sends + 1;
      t.t_sends <- t.t_sends + 1;
      t.energy <- t.energy +. cost;
      Topk.observe t.edges_top edge;
      Topk.observe t.nodes_top src;
      Topk.observe t.nodes_top dst;
      match Queue.take_opt (queue_of t src dest) with
      | None ->
          (* Corrupt log: the engine never sends from an empty cell. *)
          t.anomalies <- t.anomalies + 1
      | Some pkt -> (
          pkt.hops <- pkt.hops + 1;
          match outcome with
          | Event.Delivered ->
              t.w_delivered <- t.w_delivered + 1;
              t.t_delivered <- t.t_delivered + 1;
              t.buffered <- t.buffered - 1;
              Sketch.observe t.latency (float_of_int (step - pkt.injected_at));
              Sketch.observe t.hops (float_of_int pkt.hops)
          | Event.Moved -> Queue.push pkt (queue_of t dst dest)))
  | Event.Collide { edge; src; dst; cost; _ } ->
      t.w_collisions <- t.w_collisions + 1;
      t.t_collisions <- t.t_collisions + 1;
      t.energy <- t.energy +. cost;
      Topk.observe t.edges_top edge;
      Topk.observe t.nodes_top src;
      Topk.observe t.nodes_top dst
  | Event.Deliver _ -> ()  (* counted at the Inject/Send that caused it *)
  | Event.Epoch_change _ | Event.Height_advert _ ->
      t.w_control <- t.w_control + 1;
      t.t_control <- t.t_control + 1

let attach t log = Event.add_observer log (fun _ e -> feed t e)

let feed_array t events = Array.iter (feed t) events

let finish t =
  match t.final with
  | Some c -> c
  | None ->
      if t.seen_step >= 0 then begin
        Sketch.observe t.occupancy (float_of_int t.buffered);
        (* Close through the window holding the last observed step. *)
        let last = t.seen_step / t.window_size in
        while t.cur <= last do
          close_window t
        done
      end;
      let c =
        {
          steps = t.seen_step + 1;
          events = t.nevents;
          windows = List.length t.windows_rev;
          c_injected = t.t_injected;
          c_dropped = t.t_dropped;
          c_delivered = t.t_delivered;
          c_self_deliveries = t.t_self;
          c_sends = t.t_sends;
          c_collisions = t.t_collisions;
          c_control = t.t_control;
          c_buffered = t.buffered;
          c_violations = Invariants.violation_count t.health;
          healthy = Invariants.ok t.health && t.anomalies = 0;
          anomalies = t.anomalies;
          energy = t.energy;
          latency_mean = Sketch.mean t.latency;
          c_latency_p50 = Sketch.quantile t.latency 50.;
          latency_p90 = Sketch.quantile t.latency 90.;
          c_latency_p95 = Sketch.quantile t.latency 95.;
          latency_p99 = Sketch.quantile t.latency 99.;
          hops_mean = Sketch.mean t.hops;
          c_hops_p50 = Sketch.quantile t.hops 50.;
          c_hops_p95 = Sketch.quantile t.hops 95.;
          occupancy_mean = Sketch.mean t.occupancy;
          c_occupancy_p50 = Sketch.quantile t.occupancy 50.;
          c_occupancy_p95 = Sketch.quantile t.occupancy 95.;
          occupancy_max = Sketch.max_seen t.occupancy;
          c_top_edges = Topk.top t.edges_top;
          top_nodes = Topk.top t.nodes_top;
        }
      in
      t.final <- Some c;
      c

let windows t = List.rev t.windows_rev

let health t = t.health

(* ------------------------------------------------------------------ *)
(* JSONL (schema adhoc-live/1)                                         *)

let schema = "adhoc-live/1"

(* Same convention as the event log: %.17g round-trips every finite
   double, so the stream is byte-identical between online and replay. *)
let num f = if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let triples xs =
  "["
  ^ String.concat ","
      (List.map (fun (key, count, err) -> Printf.sprintf "[%d,%d,%d]" key count err) xs)
  ^ "]"

let write_window oc (w : window) =
  Printf.fprintf oc
    "{\"w\":%d,\"steps\":[%d,%d],\"injected\":%d,\"dropped\":%d,\"delivered\":%d,\"self\":%d,\"sends\":%d,\"collisions\":%d,\"control\":%d,\"buffered\":%d,\"violations\":%d,\"latency_p50\":%s,\"latency_p95\":%s,\"hops_p50\":%s,\"hops_p95\":%s,\"occupancy_p50\":%s,\"occupancy_p95\":%s,\"top_edges\":%s}\n"
    w.w w.step_lo w.step_hi w.injected w.dropped w.delivered w.self_deliveries w.sends
    w.collisions w.control w.buffered w.violations (num w.latency_p50) (num w.latency_p95)
    (num w.hops_p50) (num w.hops_p95) (num w.occupancy_p50) (num w.occupancy_p95)
    (triples w.top_edges)

let write_final oc (c : cumulative) =
  Printf.fprintf oc
    "{\"final\":true,\"steps\":%d,\"events\":%d,\"windows\":%d,\"injected\":%d,\"dropped\":%d,\"delivered\":%d,\"self\":%d,\"sends\":%d,\"collisions\":%d,\"control\":%d,\"buffered\":%d,\"violations\":%d,\"healthy\":%s,\"anomalies\":%d,\"energy\":%s,\"latency_mean\":%s,\"latency_p50\":%s,\"latency_p90\":%s,\"latency_p95\":%s,\"latency_p99\":%s,\"hops_mean\":%s,\"hops_p50\":%s,\"hops_p95\":%s,\"occupancy_mean\":%s,\"occupancy_p50\":%s,\"occupancy_p95\":%s,\"occupancy_max\":%s,\"top_edges\":%s,\"top_nodes\":%s}\n"
    c.steps c.events c.windows c.c_injected c.c_dropped c.c_delivered c.c_self_deliveries
    c.c_sends c.c_collisions c.c_control c.c_buffered c.c_violations
    (if c.healthy then "true" else "false")
    c.anomalies (num c.energy) (num c.latency_mean) (num c.c_latency_p50) (num c.latency_p90)
    (num c.c_latency_p95) (num c.latency_p99) (num c.hops_mean) (num c.c_hops_p50)
    (num c.c_hops_p95) (num c.occupancy_mean) (num c.c_occupancy_p50) (num c.c_occupancy_p95)
    (num c.occupancy_max) (triples c.c_top_edges) (triples c.top_nodes)

let write_jsonl t oc =
  let c = finish t in
  Printf.fprintf oc "{\"schema\":%S,\"window\":%d,\"top_k\":%d}\n" schema t.window_size t.top_k;
  List.iter (write_window oc) (windows t);
  write_final oc c

let save_jsonl t file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_jsonl t oc)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition.  No timestamps anywhere: scrape-time is
   the scraper's business, and determinism is ours. *)

let prom_num f = if Float.is_finite f then Printf.sprintf "%.17g" f else "NaN"

let write_prometheus t oc =
  let c = finish t in
  let counter name help v =
    Printf.fprintf oc "# HELP %s %s\n# TYPE %s counter\n%s %d\n" name help name name v
  in
  let gauge name help v =
    Printf.fprintf oc "# HELP %s %s\n# TYPE %s gauge\n%s %d\n" name help name name v
  in
  let quantiles name help qs =
    Printf.fprintf oc "# HELP %s %s\n# TYPE %s summary\n" name help name;
    List.iter
      (fun (q, v) -> Printf.fprintf oc "%s{quantile=\"%s\"} %s\n" name q (prom_num v))
      qs
  in
  counter "adhoc_live_injected_total" "Admitted packet injections." c.c_injected;
  counter "adhoc_live_dropped_total" "Injections refused by admission control." c.c_dropped;
  counter "adhoc_live_delivered_total" "Delivered packets (incl. self-deliveries)."
    c.c_delivered;
  counter "adhoc_live_sends_total" "Successful transmissions." c.c_sends;
  counter "adhoc_live_collisions_total" "Colliding transmission attempts." c.c_collisions;
  counter "adhoc_live_control_total" "Control messages (epoch changes + height adverts)."
    c.c_control;
  counter "adhoc_live_invariant_violations_total" "Invariant violations detected online."
    c.c_violations;
  gauge "adhoc_live_buffered" "Packets still buffered." c.c_buffered;
  gauge "adhoc_live_steps" "Simulation steps observed." c.steps;
  gauge "adhoc_live_windows" "Tumbling windows emitted." c.windows;
  gauge "adhoc_live_healthy" "1 when no invariant violation or replay anomaly was seen."
    (if c.healthy then 1 else 0);
  Printf.fprintf oc "# HELP adhoc_live_energy_total Energy spent on sends and collisions.\n";
  Printf.fprintf oc "# TYPE adhoc_live_energy_total counter\nadhoc_live_energy_total %s\n"
    (prom_num c.energy);
  quantiles "adhoc_live_latency_steps" "Delivery latency in steps."
    [
      ("0.5", c.c_latency_p50);
      ("0.9", c.latency_p90);
      ("0.95", c.c_latency_p95);
      ("0.99", c.latency_p99);
    ];
  quantiles "adhoc_live_hops" "Hops per delivered packet."
    [ ("0.5", c.c_hops_p50); ("0.95", c.c_hops_p95) ];
  quantiles "adhoc_live_occupancy" "Buffered packets per observed step."
    [ ("0.5", c.c_occupancy_p50); ("0.95", c.c_occupancy_p95) ];
  Printf.fprintf oc
    "# HELP adhoc_live_edge_traffic Transmissions + collisions on the busiest edges \
     (space-saving estimate).\n# TYPE adhoc_live_edge_traffic gauge\n";
  List.iter
    (fun (edge, count, _) -> Printf.fprintf oc "adhoc_live_edge_traffic{edge=\"%d\"} %d\n" edge count)
    c.c_top_edges;
  Printf.fprintf oc
    "# HELP adhoc_live_node_traffic Transmissions + collisions touching the busiest nodes \
     (space-saving estimate).\n# TYPE adhoc_live_node_traffic gauge\n";
  List.iter
    (fun (node, count, _) -> Printf.fprintf oc "adhoc_live_node_traffic{node=\"%d\"} %d\n" node count)
    c.top_nodes

let save_prometheus t file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_prometheus t oc)
