type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  buckets : float array;
  counts : int array;  (* length buckets + 1; last bin is overflow *)
  mutable total : int;
  mutable sum : float;
}

type instrument = C of counter | G of gauge | H of histogram

type t = (string, instrument) Hashtbl.t

let create () : t = Hashtbl.create 16

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t name make match_existing =
  match Hashtbl.find_opt t name with
  | None ->
      let i = make () in
      Hashtbl.add t name i;
      i
  | Some existing -> (
      match match_existing existing with
      | Some i -> i
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already a %s" name (kind_name existing)))

let counter t name =
  match register t name (fun () -> C { count = 0 }) (function C _ as i -> Some i | _ -> None)
  with
  | C c -> c
  | _ -> assert false

let incr c = c.count <- c.count + 1

let add c k =
  if k < 0 then invalid_arg "Metrics.add: negative increment";
  c.count <- c.count + k

let gauge t name =
  match register t name (fun () -> G { value = 0. }) (function G _ as i -> Some i | _ -> None)
  with
  | G g -> g
  | _ -> assert false

let set g v = g.value <- v

let histogram t name ~buckets =
  let k = Array.length buckets in
  if k = 0 then invalid_arg "Metrics.histogram: no buckets";
  for i = 1 to k - 1 do
    if not (buckets.(i) > buckets.(i - 1)) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done;
  let make () =
    H { buckets = Array.copy buckets; counts = Array.make (k + 1) 0; total = 0; sum = 0. }
  in
  let match_existing = function
    | H h as i -> if h.buckets = buckets then Some i else None
    | _ -> None
  in
  match register t name make match_existing with H h -> h | _ -> assert false

(* Index of the first bound >= x, or the overflow bin. *)
let bin h x =
  let k = Array.length h.buckets in
  if x > h.buckets.(k - 1) then k
  else begin
    let lo = ref 0 and hi = ref (k - 1) in
    (* Invariant: buckets.(hi) >= x and (lo = 0 or buckets.(lo-1) < x). *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if h.buckets.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe h x =
  h.counts.(bin h x) <- h.counts.(bin h x) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum +. x

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : float array; counts : int array; total : int; sum : float }

let snapshot t =
  (* lint: allow hashtbl-order — fold only collects bindings; the list is sorted by name below, so the snapshot is order-independent *)
  Hashtbl.fold
    (fun name i acc ->
      let v =
        match i with
        | C c -> Counter c.count
        | G g -> Gauge g.value
        | H h ->
            Histogram
              {
                buckets = Array.copy h.buckets;
                counts = Array.copy h.counts;
                total = h.total;
                sum = h.sum;
              }
      in
      (name, v) :: acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
