(** Packet-journey event log: a compact, typed flight recorder.

    Aggregate metrics and per-step traces (PR 2) cannot express the
    paper's per-packet guarantees — Theorem 3.1 bounds individual
    deliveries, not step averages.  This log records every packet-level
    action an engine takes, in order, as one of six typed events.  The
    in-memory representation is a pair of growable flat arrays (7 ints +
    1 float per event), so recording costs a handful of stores and no
    per-event allocation; the variant view is materialized only on read.

    Event semantics (what a well-formed engine emits):
    - [Inject]: one per injection attempt; [admitted = false] means the
      admission cap dropped the packet.  A packet admitted at its own
      destination ([src = dst]) is absorbed immediately and is followed
      by a [Deliver] with [self = true].
    - [Send]: one per {e successful} transmission; [outcome] says whether
      the packet was absorbed at [dst] ([Delivered], requires
      [dst = dest]) or enqueued there ([Moved]).  A delivering send is
      followed by a [Deliver] with [self = false].
    - [Collide]: a transmission attempt that spent [cost] energy but
      moved nothing (MAC scenarios); buffers are unchanged.
    - [Deliver]: one per delivered packet, immediately after the event
      that caused it.
    - [Epoch_change]: the topology switched to epoch [epoch]
      ({!Adhoc_routing.Dynamic_engine}).
    - [Height_advert]: [node] broadcast its buffer heights
      ({!Adhoc_routing.Quantized_engine}).

    The JSONL sink writes schema [adhoc-events/1]: a header line
    [{"schema":"adhoc-events/1"}] followed by one event object per line.
    Floats are written with enough digits to round-trip exactly, so
    offline analytics ({!Adhoc_routing.Journey}) reproduce in-memory
    results bit-for-bit. *)

type outcome = Moved | Delivered

type t =
  | Inject of { step : int; src : int; dst : int; admitted : bool }
  | Send of {
      step : int;
      edge : int;
      src : int;
      dst : int;
      dest : int;  (** destination whose packet moved *)
      cost : float;
      outcome : outcome;
    }
  | Collide of { step : int; edge : int; src : int; dst : int; dest : int; cost : float }
  | Deliver of { step : int; dst : int; self : bool }
  | Epoch_change of { step : int; epoch : int }
  | Height_advert of { step : int; node : int }

val step : t -> int
(** The step any event occurred at. *)

type log

val create : ?initial_capacity:int -> unit -> log
(** An empty log; the backing arrays grow by doubling (default initial
    capacity 1024 events). *)

val length : log -> int

val get : log -> int -> t
(** [get log i] decodes the [i]-th recorded event (0-based).  Raises
    [Invalid_argument] out of bounds. *)

val record : log -> t -> unit
(** Append a decoded event (tests, corrupt-log construction).  The
    engines use the specialized emitters below, which skip the variant.
    Unlike the emitters, [record] performs {e no} step check — it is the
    sanctioned way to build deliberately malformed logs for the
    {!Invariants} checker's own tests. *)

(** {2 Allocation-free emitters}

    One per constructor; these write the flat fields directly.  When
    observers are attached (see {!set_observer} / {!add_observer}) the
    event is decoded once and handed to each — the cost of online
    consumption is only paid when someone is listening.

    {b Monotonicity contract}: the engines emit events in simulation
    order, so consecutive steps never decrease.  The emitters enforce
    this — a step below {!last_step} raises [Invalid_argument] with the
    offending pair — which is what lets online consumers
    ({!Adhoc_obs.Live}, {!Invariants}) fold over the stream with
    step-keyed state and stay bit-identical to an offline replay of the
    same log. *)

val inject : log -> step:int -> src:int -> dst:int -> admitted:bool -> unit
val send :
  log -> step:int -> edge:int -> src:int -> dst:int -> dest:int -> cost:float ->
  outcome:outcome -> unit
val collide :
  log -> step:int -> edge:int -> src:int -> dst:int -> dest:int -> cost:float -> unit
val deliver : log -> step:int -> dst:int -> self:bool -> unit
val epoch_change : log -> step:int -> epoch:int -> unit
val height_advert : log -> step:int -> node:int -> unit

val iter : log -> (int -> t -> unit) -> unit
(** [iter log f] calls [f i event] for every recorded event in order. *)

val to_array : log -> t array

val last_step : log -> int
(** The largest step recorded so far ([min_int] on an empty log).  For
    emitter-built logs this is simply the current simulation step — the
    monotone high-water mark the emitters enforce. *)

val set_observer : log -> (int -> t -> unit) -> unit
(** [set_observer log f] makes every subsequent record call [f i event]
    (after the event is stored), {e replacing} any observers already
    attached. *)

val add_observer : log -> (int -> t -> unit) -> unit
(** Append an observer, keeping the ones already attached; observers run
    in registration order.  {!Adhoc_obs.Invariants.attach} and
    {!Adhoc_obs.Live.attach} both use this, so online checking and live
    analytics compose on one log. *)

val clear_observer : log -> unit
(** Detach every observer. *)

val write_jsonl : log -> out_channel -> unit
(** Schema header line, then one JSON object per event. *)

val save_jsonl : log -> string -> unit

val load_jsonl : string -> (t array, string) result
(** Parse a file written by {!save_jsonl}.  Checks the schema header and
    every line; [Error msg] carries the file/line of the first problem.
    Costs round-trip exactly. *)
