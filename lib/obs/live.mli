(** Live streaming telemetry: deterministic windowed analytics over the
    packet-journey event stream.

    A {!t} folds {!Event.t}s — online via {!attach}, or offline over a
    replayed array via {!feed_array} — into tumbling windows keyed by
    {e simulation step}, never wall-clock.  Every derived figure
    (counters, {!Sketch} quantile estimates, {!Topk} heavy hitters,
    {!Invariants} health) is a pure function of the event sequence and
    the [(window, top_k)] configuration, so the emitted snapshot stream
    is bit-identical across [--jobs] and between an online run and an
    offline replay of the very same log.

    Windows are emitted even when a window's worth of steps saw no
    events (gap windows carry zero counters and the current gauges), so
    window [w] always covers steps [w*window .. (w+1)*window - 1]
    starting from the first observed event's window.

    The JSONL sink writes schema [adhoc-live/1]: a header line
    [{"schema":"adhoc-live/1","window":W,"top_k":K}], one object per
    closed window, and exactly one final cumulative object
    ([{"final":true, ...}]).  Non-finite floats (empty sketches) are
    written as JSON [null].  A Prometheus-style text dump of the final
    cumulative state is also available; it carries no timestamps. *)

type window = {
  w : int;  (** window index: covers steps [w*size .. w*size+size-1] *)
  step_lo : int;
  step_hi : int;
  injected : int;  (** admitted injections in this window *)
  dropped : int;
  delivered : int;  (** deliveries, including self-deliveries *)
  self_deliveries : int;
  sends : int;
  collisions : int;
  control : int;  (** epoch changes + height adverts *)
  buffered : int;  (** gauge: packets buffered at window close *)
  violations : int;  (** cumulative invariant violations at window close *)
  latency_p50 : float;  (** cumulative sketch estimates; [nan] when empty *)
  latency_p95 : float;
  hops_p50 : float;
  hops_p95 : float;
  occupancy_p50 : float;
  occupancy_p95 : float;
  top_edges : (int * int * int) list;  (** (edge, count, err), busiest first *)
}

type cumulative = {
  steps : int;  (** last observed step + 1, or 0 with no events *)
  events : int;
  windows : int;
  c_injected : int;
  c_dropped : int;
  c_delivered : int;
  c_self_deliveries : int;
  c_sends : int;
  c_collisions : int;
  c_control : int;
  c_buffered : int;
  c_violations : int;
  healthy : bool;  (** no invariant violation and no replay anomaly *)
  anomalies : int;  (** sends the journey bookkeeping could not pair *)
  energy : float;  (** summed in event order, like the engines *)
  latency_mean : float;  (** exact mean of delivery latencies; [nan] when empty *)
  c_latency_p50 : float;
  latency_p90 : float;
  c_latency_p95 : float;
  latency_p99 : float;
  hops_mean : float;
  c_hops_p50 : float;
  c_hops_p95 : float;
  occupancy_mean : float;
  c_occupancy_p50 : float;
  c_occupancy_p95 : float;
  occupancy_max : float;
  c_top_edges : (int * int * int) list;
  top_nodes : (int * int * int) list;
}

type t

val create :
  ?top_k:int ->
  ?latency_buckets:float array ->
  ?hops_buckets:float array ->
  ?occupancy_buckets:float array ->
  window:int ->
  unit ->
  t
(** [create ~window ()] builds a recorder with tumbling windows of
    [window] simulation steps (raises [Invalid_argument] if [< 1]) and
    [top_k] (default 8) heavy-hitter slots.  The default sketch buckets
    are powers of two up to 16384 steps (latency), unit-width up to 32
    (hops), and powers of two up to 65536 packets (occupancy). *)

val feed : t -> Event.t -> unit
(** Fold one event.  Raises [Invalid_argument] on a step below the
    largest step already fed (the emitters' monotonicity contract is
    what makes step-keyed windowing sound), on a negative step, or after
    {!finish}. *)

val feed_array : t -> Event.t array -> unit
(** Offline replay: fold a whole recorded log in order. *)

val attach : t -> Event.log -> unit
(** Fold every subsequently recorded event online (adds an observer,
    keeping any already attached — composes with
    {!Invariants.attach}). *)

val finish : t -> cumulative
(** Close all windows through the last observed step, take the final
    occupancy sample, and return the cumulative record.  Idempotent;
    further {!feed}s are rejected. *)

val windows : t -> window list
(** Closed windows in order.  Complete only after {!finish}. *)

val window_size : t -> int

val top_k : t -> int

val health : t -> Invariants.t
(** The online invariant fold (for {!Invariants.report}). *)

val schema : string
(** ["adhoc-live/1"]. *)

val write_jsonl : t -> out_channel -> unit
(** Header, one line per window, one final cumulative line.  Calls
    {!finish}.  Floats use [%.17g] so the stream round-trips and the
    online/replay byte-identity holds. *)

val save_jsonl : t -> string -> unit

val write_prometheus : t -> out_channel -> unit
(** Prometheus text exposition of the final cumulative state (counters,
    gauges, quantile-labelled summaries, labelled top-k gauges).  Calls
    {!finish}.  Deterministic: no timestamps. *)

val save_prometheus : t -> string -> unit
