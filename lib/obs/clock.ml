(* The one sanctioned wall-clock site of the observability layer.

   Every timestamp in this library — span timings, Domprof timeline
   entries, Chrome trace events — flows through [now], so the wall-clock
   lint waiver lives here and nowhere else.  [Unix.gettimeofday] is the
   portable choice given the toolchain (no monotonic-clock binding without
   C stubs); it has microsecond resolution on Linux, which is ample for
   region/chunk-scale profiling.  Timestamps are observability data only:
   no computed output may depend on them (DESIGN.md determinism policy). *)

(* lint: allow wall-clock — the single sanctioned clock site; Span and Domprof timestamps are reported as machine-dependent and excluded from exact baseline comparison *)
let now () = Unix.gettimeofday ()
