(** Space-saving top-K heavy-hitter tracker over integer keys.

    O(k) space and O(k) worst-case per observation: [k] fixed slots, an
    unseen key evicting the minimum-count slot and inheriting its count
    as overestimation error (Metwally et al.'s space-saving algorithm).
    Classic guarantees, qcheck-pinned in the test suite:

    - with at most [k] distinct keys the counts are exact ([err = 0]);
    - otherwise [true <= count] and [count - err <= true] for every
      tracked key, with [err <= total / k];
    - any key whose true frequency exceeds [total / k] is tracked.

    Eviction scans the slot array in slot order and breaks count ties
    with [Int.compare] on keys (the largest key loses), so the state —
    and therefore {!top} — is a deterministic pure function of the
    observation sequence; the internal [Hashtbl] is only ever probed by
    key, never iterated. *)

type t

val create : k:int -> unit -> t
(** Raises [Invalid_argument] when [k < 1]. *)

val observe : t -> int -> unit
(** Count one occurrence of a key. *)

val top : t -> (int * int * int) list
(** [(key, count, err)] for every tracked key, sorted by count
    descending then key ascending ([Int.compare]).  [count] overestimates
    the true frequency by at most [err]. *)

val total : t -> int
(** Observations so far (across all keys, tracked or not). *)

val capacity : t -> int
