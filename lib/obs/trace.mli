(** Per-step trace recorder: a growable buffer of simulation-step samples
    with a configurable sampling stride and JSONL / CSV sinks.

    The engines fill one {!sample} per recorded step (per-step deltas for
    the counters, instantaneous values for the buffer statistics); the
    recorder only stores them — writing happens after the run, so tracing
    adds no I/O to the hot loop.  With stride [s], steps [0, s, 2s, …] are
    recorded ({!wants} is the gate the engines use, so skipped steps cost
    one modulo). *)

type sample = {
  step : int;
  buffered : int;  (** packets buffered at end of step *)
  max_height : int;  (** largest buffer height *)
  mean_height : float;  (** buffered / nodes *)
  injected : int;  (** admissions this step *)
  delivered : int;  (** deliveries this step *)
  dropped : int;  (** admission drops this step *)
  sends : int;  (** transmission attempts this step *)
  failed_sends : int;  (** collided attempts this step *)
  active_edges : int;  (** edges active / granted this step *)
}

type t

val create : ?stride:int -> ?initial_capacity:int -> unit -> t
(** [stride] ≥ 1 (default 1: every step); [initial_capacity] (default
    1024) sizes the buffer, which grows by doubling. *)

val stride : t -> int

val wants : t -> step:int -> bool
(** Whether [step] falls on the sampling stride. *)

val record : t -> sample -> unit

val length : t -> int
(** Samples recorded so far. *)

val samples : t -> sample array
(** A copy of the recorded samples, in recording order. *)

val write_jsonl : t -> out_channel -> unit
(** One JSON object per sample, one per line, keys matching the {!sample}
    field names. *)

val write_csv : t -> out_channel -> unit
(** A header line followed by one comma-separated row per sample. *)

val save_jsonl : t -> string -> unit
val save_csv : t -> string -> unit
