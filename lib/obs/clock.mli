(** The observability layer's single sanctioned clock.

    All profiling timestamps ({!Span}, {!Domprof}, {!Chrome_trace}) read
    time through this module, so the determinism lint's wall-clock waiver
    has exactly one home.  Timestamps are telemetry: nothing computed may
    depend on them. *)

val now : unit -> float
(** Seconds since the epoch ([Unix.gettimeofday]; microsecond resolution
    on Linux). *)
