type violation = { index : int; reason : string }

let max_kept = 64

type t = {
  is_active : (step:int -> edge:int -> bool) option;
  endpoints : (int -> int * int) option;
  heights : (int * int, int) Hashtbl.t;  (* (node, dest) -> packets buffered *)
  mutable buffered : int;
  mutable injected : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable sends : int;
  mutable failed_sends : int;
  mutable energy : float;  (* summed in event order, like the engines *)
  mutable last_step : int;
  mutable checked : int;  (* events fed so far *)
  (* Deliveries owed: +1 on Send Delivered / self-absorbed Inject, -1 on
     Deliver.  Must stay in {0, 1} and only pass through 1 briefly. *)
  mutable pending_deliver : int;
  mutable count : int;
  mutable kept : violation list;  (* newest first *)
}

let create ?is_active ?endpoints () =
  {
    is_active;
    endpoints;
    heights = Hashtbl.create 64;
    buffered = 0;
    injected = 0;
    dropped = 0;
    delivered = 0;
    sends = 0;
    failed_sends = 0;
    energy = 0.;
    last_step = min_int;
    checked = 0;
    pending_deliver = 0;
    count = 0;
    kept = [];
  }

let violate t index reason =
  t.count <- t.count + 1;
  if t.count <= max_kept then t.kept <- { index; reason } :: t.kept

let height t v d = match Hashtbl.find_opt t.heights (v, d) with Some h -> h | None -> 0

let bump t v d delta =
  let h = height t v d + delta in
  Hashtbl.replace t.heights (v, d) h;
  t.buffered <- t.buffered + delta;
  h

(* A delivering event may not occur while another delivery is still owed
   its [Deliver] — that would mean the log dropped one. *)
let open_delivery t i what =
  if t.pending_deliver > 0 then
    violate t i (what ^ " while an earlier delivery still lacks its Deliver event");
  t.pending_deliver <- t.pending_deliver + 1

let check_edge t i ~step ~edge ~src ~dst =
  (match t.is_active with
  | Some f when not (f ~step ~edge) ->
      violate t i (Printf.sprintf "send over edge %d, inactive at step %d" edge step)
  | _ -> ());
  match t.endpoints with
  | Some f ->
      let u, v = f edge in
      if not ((u = src && v = dst) || (u = dst && v = src)) then
        violate t i
          (Printf.sprintf "send %d->%d does not match edge %d endpoints (%d, %d)" src dst
             edge u v)
  | None -> ()

let check t i (e : Event.t) =
  t.checked <- t.checked + 1;
  let step = Event.step e in
  if step < t.last_step then
    violate t i (Printf.sprintf "step %d after step %d (non-monotone)" step t.last_step);
  t.last_step <- max t.last_step step;
  match e with
  | Event.Inject { src; dst; admitted; _ } ->
      if admitted then begin
        t.injected <- t.injected + 1;
        if src = dst then open_delivery t i "self-absorbed injection"
        else ignore (bump t src dst 1)
      end
      else t.dropped <- t.dropped + 1
  | Event.Send { step; edge; src; dst; dest; cost; outcome } ->
      check_edge t i ~step ~edge ~src ~dst;
      t.sends <- t.sends + 1;
      t.energy <- t.energy +. cost;
      if height t src dest <= 0 then
        violate t i
          (Printf.sprintf "send of a packet for %d from node %d, whose buffer is empty" dest
             src)
      else ignore (bump t src dest (-1));
      (match outcome with
      | Event.Delivered ->
          if dst <> dest then
            violate t i
              (Printf.sprintf "outcome delivered but dst %d is not the destination %d" dst
                 dest);
          open_delivery t i "delivering send"
      | Event.Moved ->
          if dst = dest then
            violate t i
              (Printf.sprintf "outcome moved but dst %d is the destination (should deliver)"
                 dst);
          ignore (bump t dst dest 1))
  | Event.Collide { step; edge; src; dst; cost; _ } ->
      check_edge t i ~step ~edge ~src ~dst;
      t.sends <- t.sends + 1;
      t.failed_sends <- t.failed_sends + 1;
      t.energy <- t.energy +. cost
  | Event.Deliver _ ->
      t.delivered <- t.delivered + 1;
      if t.pending_deliver = 0 then
        violate t i "Deliver with no delivering send or self-absorbed injection"
      else t.pending_deliver <- t.pending_deliver - 1
  | Event.Epoch_change _ | Event.Height_advert _ -> ()

let attach t log = Event.add_observer log (fun i e -> check t i e)

let final_check t ~injected ~dropped ~delivered ~sends ~failed_sends ~total_cost ~remaining
    =
  let i = t.checked in
  if t.pending_deliver > 0 then violate t i "run ended with a delivery lacking its Deliver event";
  let want name expect got =
    if expect <> got then
      violate t i (Printf.sprintf "%s: stats say %d, events say %d" name expect got)
  in
  want "injected" injected t.injected;
  want "dropped" dropped t.dropped;
  want "delivered" delivered t.delivered;
  want "sends" sends t.sends;
  want "failed_sends" failed_sends t.failed_sends;
  want "remaining (buffered)" remaining t.buffered;
  if not (Int64.equal (Int64.bits_of_float total_cost) (Int64.bits_of_float t.energy)) then
    violate t i
      (Printf.sprintf "total_cost: stats say %.17g, events sum to %.17g" total_cost t.energy)

let run ?is_active ?endpoints events =
  let t = create ?is_active ?endpoints () in
  Array.iteri (fun i e -> check t i e) events;
  List.rev t.kept

let violation_count t = t.count

let violations t = List.rev t.kept

let ok t = t.count = 0

let buffered t = t.buffered

let report t =
  if ok t then Printf.sprintf "invariants ok (%d events checked)" t.checked
  else begin
    let b = Buffer.create 256 in
    Printf.bprintf b "%d invariant violation%s (%d events checked):\n" t.count
      (if t.count = 1 then "" else "s")
      t.checked;
    List.iter
      (fun v -> Printf.bprintf b "  event %d: %s\n" v.index v.reason)
      (violations t);
    if t.count > max_kept then
      Printf.bprintf b "  ... and %d more (only the first %d are kept)\n"
        (t.count - max_kept) max_kept;
    Buffer.contents b
  end
