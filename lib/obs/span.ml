type acc = { mutable count : int; mutable seconds : float; mutable self_seconds : float }

(* One frame per open span: [child] accumulates the inclusive time of the
   spans closed directly underneath it, so on leave the frame's exclusive
   (self) time is [elapsed - child] without any per-label bookkeeping. *)
type frame = { label : string; start : float; mutable child : float }

type t = {
  mutable stack : frame list;  (* innermost first *)
  by_label : (string, acc) Hashtbl.t;
}

(* lint: allow wall-clock — measuring wall-clock time is this module's purpose; span timings are reported as machine-dependent and excluded from baseline comparison *)
let now () = Unix.gettimeofday ()

let create () = { stack = []; by_label = Hashtbl.create 16 }

let enter t label = t.stack <- { label; start = now (); child = 0. } :: t.stack

let leave t =
  match t.stack with
  | [] -> invalid_arg "Span.leave: no open span"
  | f :: rest ->
      t.stack <- rest;
      let elapsed = now () -. f.start in
      (match rest with [] -> () | parent :: _ -> parent.child <- parent.child +. elapsed);
      let acc =
        match Hashtbl.find_opt t.by_label f.label with
        | Some a -> a
        | None ->
            let a = { count = 0; seconds = 0.; self_seconds = 0. } in
            Hashtbl.add t.by_label f.label a;
            a
      in
      acc.count <- acc.count + 1;
      acc.seconds <- acc.seconds +. elapsed;
      acc.self_seconds <- acc.self_seconds +. (elapsed -. f.child)

let time t label f =
  enter t label;
  Fun.protect ~finally:(fun () -> leave t) f

type total = { label : string; count : int; seconds : float; self_seconds : float }

let totals t =
  (* lint: allow hashtbl-order — fold only collects per-label totals; the list is sorted by label below, so it is order-independent *)
  Hashtbl.fold
    (fun label (a : acc) out ->
      { label; count = a.count; seconds = a.seconds; self_seconds = a.self_seconds }
      :: out)
    t.by_label []
  |> List.sort (fun a b -> String.compare a.label b.label)

let reset t =
  t.stack <- [];
  Hashtbl.reset t.by_label
