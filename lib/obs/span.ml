type acc = {
  mutable count : int;
  mutable seconds : float;
  mutable self_seconds : float;
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
}

(* One frame per open span: [child] accumulates the inclusive time of the
   spans closed directly underneath it, so on leave the frame's exclusive
   (self) time is [elapsed - child] without any per-label bookkeeping.
   [base] is the GC snapshot at enter when GC capture is on ([None]
   otherwise — the flag is fixed at create, so the disabled path allocates
   exactly what it did before GC telemetry existed). *)
type frame = { label : string; start : float; mutable child : float; base : Gcstat.snap option }

type t = {
  mutable stack : frame list;  (* innermost first *)
  by_label : (string, acc) Hashtbl.t;
  gc : bool;  (* capture Gc.quick_stat deltas per span *)
  domprof : Domprof.t option;  (* also record each instance as a timeline scope *)
}

let create ?(gc = false) ?domprof () = { stack = []; by_label = Hashtbl.create 16; gc; domprof }

let enter t label =
  (* The timeline scope opens first and closes last, so it brackets the
     span's own timing (and any Domprof region recorded inside). *)
  (match t.domprof with Some d -> Domprof.begin_scope d ~label | None -> ());
  t.stack <-
    {
      label;
      start = Clock.now ();
      child = 0.;
      base = (if t.gc then Some (Gcstat.read ()) else None);
    }
    :: t.stack

let leave t =
  match t.stack with
  | [] -> invalid_arg "Span.leave: no open span"
  | f :: rest ->
      t.stack <- rest;
      let elapsed = Clock.now () -. f.start in
      (match rest with [] -> () | parent :: _ -> parent.child <- parent.child +. elapsed);
      let acc =
        match Hashtbl.find_opt t.by_label f.label with
        | Some a -> a
        | None ->
            let a =
              {
                count = 0;
                seconds = 0.;
                self_seconds = 0.;
                minor_words = 0.;
                promoted_words = 0.;
                minor_collections = 0;
                major_collections = 0;
              }
            in
            Hashtbl.add t.by_label f.label a;
            a
      in
      acc.count <- acc.count + 1;
      acc.seconds <- acc.seconds +. elapsed;
      acc.self_seconds <- acc.self_seconds +. (elapsed -. f.child);
      (match f.base with
      | None -> ()
      | Some before ->
          let d = Gcstat.delta ~before ~after:(Gcstat.read ()) in
          acc.minor_words <- acc.minor_words +. d.Gcstat.minor_words;
          acc.promoted_words <- acc.promoted_words +. d.Gcstat.promoted_words;
          acc.minor_collections <- acc.minor_collections + d.Gcstat.minor_collections;
          acc.major_collections <- acc.major_collections + d.Gcstat.major_collections);
      (match t.domprof with Some d -> Domprof.end_scope d | None -> ())

let time t label f =
  enter t label;
  Fun.protect ~finally:(fun () -> leave t) f

type total = {
  label : string;
  count : int;
  seconds : float;
  self_seconds : float;
  minor_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let totals t =
  (* lint: allow hashtbl-order — fold only collects per-label totals; the list is sorted by label below, so it is order-independent *)
  Hashtbl.fold
    (fun label (a : acc) out ->
      {
        label;
        count = a.count;
        seconds = a.seconds;
        self_seconds = a.self_seconds;
        minor_words = a.minor_words;
        promoted_words = a.promoted_words;
        minor_collections = a.minor_collections;
        major_collections = a.major_collections;
      }
      :: out)
    t.by_label []
  |> List.sort (fun a b -> String.compare a.label b.label)

let reset t =
  t.stack <- [];
  Hashtbl.reset t.by_label
