type acc = { mutable count : int; mutable seconds : float }

type t = {
  mutable stack : (string * float) list;  (* innermost first: label, start time *)
  by_label : (string, acc) Hashtbl.t;
}

let now () = Unix.gettimeofday ()

let create () = { stack = []; by_label = Hashtbl.create 16 }

let enter t label = t.stack <- (label, now ()) :: t.stack

let leave t =
  match t.stack with
  | [] -> invalid_arg "Span.leave: no open span"
  | (label, start) :: rest ->
      t.stack <- rest;
      let elapsed = now () -. start in
      let acc =
        match Hashtbl.find_opt t.by_label label with
        | Some a -> a
        | None ->
            let a = { count = 0; seconds = 0. } in
            Hashtbl.add t.by_label label a;
            a
      in
      acc.count <- acc.count + 1;
      acc.seconds <- acc.seconds +. elapsed

let time t label f =
  enter t label;
  Fun.protect ~finally:(fun () -> leave t) f

type total = { label : string; count : int; seconds : float }

let totals t =
  Hashtbl.fold
    (fun label (a : acc) out -> { label; count = a.count; seconds = a.seconds } :: out)
    t.by_label []
  |> List.sort (fun a b -> String.compare a.label b.label)

let reset t =
  t.stack <- [];
  Hashtbl.reset t.by_label
