(* Space-saving top-K heavy hitters (Metwally, Agrawal, El Abbadi 2005).

   K fixed slots; an unseen key evicts the minimum-count slot and
   inherits its count as the overestimation error.  The victim scan runs
   over the slot array in slot order — never over the Hashtbl, whose
   iteration order is unspecified — with ties broken by Int.compare on
   keys (the largest key loses), so the tracker's state is a pure
   function of the observation sequence. *)

type entry = { mutable key : int; mutable count : int; mutable err : int }

type t = {
  capacity : int;
  slots : entry array;  (* fixed storage; the first [size] are live *)
  mutable size : int;
  index : (int, int) Hashtbl.t;  (* key -> slot; lookup only, never iterated *)
  mutable total : int;
}

let create ~k () =
  if k < 1 then invalid_arg "Topk.create: k must be >= 1";
  {
    capacity = k;
    slots = Array.init k (fun _ -> { key = 0; count = 0; err = 0 });
    size = 0;
    index = Hashtbl.create (2 * k);
    total = 0;
  }

let capacity t = t.capacity

let total t = t.total

let observe t key =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.index key with
  | Some s -> (t.slots.(s)).count <- (t.slots.(s)).count + 1
  | None ->
      if t.size < t.capacity then begin
        let e = t.slots.(t.size) in
        e.key <- key;
        e.count <- 1;
        e.err <- 0;
        Hashtbl.replace t.index key t.size;
        t.size <- t.size + 1
      end
      else begin
        (* Evict the min-count slot; on equal counts the larger key goes,
           so the choice is independent of slot history. *)
        let victim = ref 0 in
        for s = 1 to t.size - 1 do
          let e = t.slots.(s) and v = t.slots.(!victim) in
          if e.count < v.count || (e.count = v.count && Int.compare e.key v.key > 0) then
            victim := s
        done;
        let e = t.slots.(!victim) in
        Hashtbl.remove t.index e.key;
        e.err <- e.count;
        e.count <- e.count + 1;
        e.key <- key;
        Hashtbl.replace t.index key !victim
      end

let top t =
  let xs = Array.init t.size (fun s -> (t.slots.(s).key, t.slots.(s).count, t.slots.(s).err)) in
  Array.sort
    (fun (k1, c1, _) (k2, c2, _) -> if c1 <> c2 then Int.compare c2 c1 else Int.compare k1 k2)
    xs;
  Array.to_list xs
