(* Fixed-bucket streaming quantile sketch.

   One counter per bucket, observations binned into (-inf, b0], (b0, b1],
   ..., (bk, +inf).  Quantile queries mirror Util.Stats.percentile's
   interpolated-rank rule exactly, but on bucket upper bounds: the
   estimate for rank r is the upper bound of the bucket holding the r-th
   smallest observation (the overflow bucket answers with the observed
   maximum).  Because the exact order statistic lies strictly above the
   bucket's lower bound, the estimate never undershoots the exact
   percentile and overshoots it by at most the width of the widest
   bucket spanned — the bound the qcheck property in test_live pins. *)

type t = {
  bounds : float array;  (* strictly increasing, finite upper bounds *)
  counts : int array;  (* length bounds + 1; the last bin is overflow *)
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;  (* nan until the first observation *)
  mutable vmax : float;
}

let create ~buckets () =
  let bounds = Array.copy buckets in
  if Array.length bounds = 0 then invalid_arg "Sketch.create: at least one bucket bound";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then invalid_arg "Sketch.create: bucket bounds must be finite";
      if i > 0 && Float.compare bounds.(i - 1) b >= 0 then
        invalid_arg "Sketch.create: bucket bounds must be strictly increasing")
    bounds;
  {
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    total = 0;
    sum = 0.;
    vmin = Float.nan;
    vmax = Float.nan;
  }

let uniform ~width ~count () =
  if count < 1 then invalid_arg "Sketch.uniform: count must be >= 1";
  if not (Float.is_finite width) || Float.compare width 0. <= 0 then
    invalid_arg "Sketch.uniform: width must be positive";
  create ~buckets:(Array.init count (fun i -> width *. float_of_int (i + 1))) ()

(* First bucket whose bound is >= x; Array.length bounds means overflow. *)
let bin t x =
  let lo = ref 0 and hi = ref (Array.length t.bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Float.compare t.bounds.(mid) x >= 0 then hi := mid else lo := mid + 1
  done;
  !lo

let observe t x =
  (* nan carries no rank; ignoring it matches Stats.percentile, which
     computes order statistics over the non-nan subsample. *)
  if not (Float.is_nan x) then begin
    let i = bin t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x;
    if Float.is_nan t.vmin || Float.compare x t.vmin < 0 then t.vmin <- x;
    if Float.is_nan t.vmax || Float.compare x t.vmax > 0 then t.vmax <- x
  end

let count t = t.total

let sum t = t.sum

let min_seen t = t.vmin

let max_seen t = t.vmax

let mean t = if t.total = 0 then Float.nan else t.sum /. float_of_int t.total

let bounds t = Array.copy t.bounds

let counts t = Array.copy t.counts

(* Upper bound of the bucket holding the r-th smallest observation
   (1-based rank, r <= total). *)
let rank_bound t r =
  let nb = Array.length t.bounds in
  let rec go i cum =
    let cum = cum + t.counts.(i) in
    if cum >= r then if i < nb then t.bounds.(i) else t.vmax else go (i + 1) cum
  in
  go 0 0

let quantile t p =
  if Float.is_nan p || Float.compare p 0. < 0 || Float.compare p 100. > 0 then
    invalid_arg "Sketch.quantile: p must be in [0, 100]";
  if t.total = 0 then Float.nan
  else begin
    let rank = p /. 100. *. float_of_int (t.total - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let blo = rank_bound t (lo + 1) in
    if lo = hi then blo
    else begin
      let frac = rank -. float_of_int lo in
      blo +. (frac *. (rank_bound t (hi + 1) -. blo))
    end
  end
