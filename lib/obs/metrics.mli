(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    A registry is a flat namespace of instruments.  Registration returns a
    handle; updates through a handle are O(1) (histograms binary-search
    their fixed bucket bounds) and allocation-free, so instrumented hot
    loops pay one array store per update.  {!snapshot} exports everything
    as an assoc list for rendering or serialization — the registry itself
    knows nothing about output formats. *)

type t
(** A registry. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** A float that can move both ways (last write wins). *)

type histogram
(** Counts of observations against fixed, strictly increasing upper
    bounds, plus an overflow bin. *)

val create : unit -> t

val counter : t -> string -> counter
(** [counter t name] registers a counter under [name], or returns the
    existing one.  Raises [Invalid_argument] if [name] is already
    registered as a different kind of instrument. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Requires a non-negative increment. *)

val gauge : t -> string -> gauge
(** Same registration contract as {!counter}. *)

val set : gauge -> float -> unit

val histogram : t -> string -> buckets:float array -> histogram
(** [histogram t name ~buckets] registers a histogram whose bins are
    [(-inf, b0], (b0, b1], …, (bk, +inf)] — an observation equal to a
    bound lands in that bound's bin.  [buckets] must be non-empty and
    strictly increasing.  Re-registration under the same name requires
    identical buckets. *)

val observe : histogram -> float -> unit

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : float array;  (** the upper bounds, as registered *)
      counts : int array;  (** per-bin counts; [length buckets + 1] with the overflow bin last *)
      total : int;  (** number of observations *)
      sum : float;  (** sum of observations *)
    }

val snapshot : t -> (string * value) list
(** Current state of every instrument, sorted by name.  Histogram arrays
    are copies; mutating them does not affect the registry. *)
