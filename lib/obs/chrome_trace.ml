(* Chrome/Perfetto trace-event export (catapult JSON array format).

   Writes a {"traceEvents": [...]} document that chrome://tracing and
   https://ui.perfetto.dev load directly: one "M" (metadata) event naming
   the process and each used lane, then one "X" (complete) event per
   Domprof entry — tid = pool slot, ts/dur in microseconds relative to the
   recorder's epoch.  Event order follows Domprof.entries (the
   deterministic slot-major merge), so two runs of the same workload
   produce structurally identical documents; only ts/dur differ.

   Hand-rolled JSON, same as the bench harness: the toolchain ships no
   JSON library and the format is five fixed shapes. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cat = function Domprof.Region -> "region" | Domprof.Chunk -> "chunk" | Domprof.Scope -> "span"

let add_event buf ~first s =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf "\n  ";
  Buffer.add_string buf s

let to_buffer ?(process_name = "adhoc") buf dp =
  let es = Domprof.entries dp in
  Buffer.add_string buf "{\"traceEvents\": [";
  let first = ref true in
  add_event buf ~first
    (Printf.sprintf
       "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": \"%s\"}}"
       (escape process_name));
  (* Name each lane that recorded anything, so the viewer's rows read
     "slot 0 (caller)" / "slot i (worker i-1)" instead of bare tids. *)
  let used = Array.make (Domprof.slots dp) false in
  Array.iter (fun (e : Domprof.entry) -> used.(e.Domprof.slot) <- true) es;
  Array.iteri
    (fun slot u ->
      if u then
        let name =
          if slot = 0 then "slot 0 (caller)" else Printf.sprintf "slot %d (worker %d)" slot (slot - 1)
        in
        add_event buf ~first
          (Printf.sprintf
             "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \"thread_name\", \"args\": {\"name\": \"%s\"}}"
             slot name))
    used;
  Array.iter
    (fun (e : Domprof.entry) ->
      let ts = 1e6 *. e.Domprof.t0 and dur = 1e6 *. (e.Domprof.t1 -. e.Domprof.t0) in
      let args =
        match e.Domprof.kind with
        | Domprof.Scope -> ""
        | Domprof.Region | Domprof.Chunk ->
            Printf.sprintf ", \"args\": {\"lo\": %d, \"hi\": %d, \"items\": %d}" e.Domprof.lo
              e.Domprof.hi
              (e.Domprof.hi - e.Domprof.lo)
      in
      add_event buf ~first
        (Printf.sprintf
           "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"name\": \"%s\", \"cat\": \"%s\", \"ts\": %.3f, \"dur\": %.3f%s}"
           e.Domprof.slot (escape e.Domprof.label) (cat e.Domprof.kind) ts (Float.max 0. dur) args))
    es;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n"

let to_string ?process_name dp =
  let buf = Buffer.create 4096 in
  to_buffer ?process_name buf dp;
  Buffer.contents buf

let save ?process_name dp file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string ?process_name dp))
