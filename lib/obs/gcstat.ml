(* GC telemetry snapshots.

   This module is the observability layer's one window onto the runtime's
   GC counters (the raw-gc lint rule confines Gc.* to lib/obs).  It wraps
   [Gc.quick_stat] — cheap, no heap walk — into an immutable snapshot so
   callers can difference two program points.

   OCaml 5 semantics worth knowing when reading the numbers: word counts
   ([minor_words], [promoted_words]) are domain-local allocation counters,
   so a delta taken on the pool's owner domain counts the owner's share of
   a parallel region, not the whole fleet's; collection counts advance
   with the (stop-the-world) minor cycles and major slices the runtime
   happened to schedule.  Word deltas are therefore deterministic per
   domain for a deterministic program, while collection counts can drift
   by ±1 run-to-run depending on where heap boundaries fell — which is why
   json_check --compare treats gc fields as timing-like (tolerance) rather
   than exact. *)

type snap = {
  minor_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let read () =
  (* [Gc.quick_stat] folds a domain's minor allocation into [minor_words]
     only at collection boundaries, so a span smaller than the minor heap
     would see a zero delta.  [Gc.minor_words ()] reads the allocation
     pointer directly and is exact at any program point. *)
  let s = Gc.quick_stat () in
  {
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
  }

let delta ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
  }
