type sample = {
  step : int;
  buffered : int;
  max_height : int;
  mean_height : float;
  injected : int;
  delivered : int;
  dropped : int;
  sends : int;
  failed_sends : int;
  active_edges : int;
}

let dummy =
  {
    step = 0;
    buffered = 0;
    max_height = 0;
    mean_height = 0.;
    injected = 0;
    delivered = 0;
    dropped = 0;
    sends = 0;
    failed_sends = 0;
    active_edges = 0;
  }

type t = { stride : int; mutable buf : sample array; mutable len : int }

let create ?(stride = 1) ?(initial_capacity = 1024) () =
  if stride < 1 then invalid_arg "Trace.create: stride must be >= 1";
  if initial_capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { stride; buf = Array.make initial_capacity dummy; len = 0 }

let stride t = t.stride

let wants t ~step = step mod t.stride = 0

let record t s =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- s;
  t.len <- t.len + 1

let length t = t.len

let samples t = Array.sub t.buf 0 t.len

(* Floats print as valid JSON numbers ("%.12g" never yields a bare "1e5"
   problem, but "inf"/"nan" would not parse — the engines only record
   finite means, and we guard anyway). *)
let float_field f = if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let write_jsonl t oc =
  iter t (fun s ->
      Printf.fprintf oc
        "{\"step\":%d,\"buffered\":%d,\"max_height\":%d,\"mean_height\":%s,\"injected\":%d,\"delivered\":%d,\"dropped\":%d,\"sends\":%d,\"failed_sends\":%d,\"active_edges\":%d}\n"
        s.step s.buffered s.max_height (float_field s.mean_height) s.injected s.delivered
        s.dropped s.sends s.failed_sends s.active_edges)

let write_csv t oc =
  output_string oc
    "step,buffered,max_height,mean_height,injected,delivered,dropped,sends,failed_sends,active_edges\n";
  iter t (fun s ->
      Printf.fprintf oc "%d,%d,%d,%s,%d,%d,%d,%d,%d,%d\n" s.step s.buffered s.max_height
        (float_field s.mean_height) s.injected s.delivered s.dropped s.sends s.failed_sends
        s.active_edges)

let save_with writer t file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> writer t oc)

let save_jsonl = save_with write_jsonl
let save_csv = save_with write_csv
