type outcome = Moved | Delivered

type t =
  | Inject of { step : int; src : int; dst : int; admitted : bool }
  | Send of {
      step : int;
      edge : int;
      src : int;
      dst : int;
      dest : int;
      cost : float;
      outcome : outcome;
    }
  | Collide of { step : int; edge : int; src : int; dst : int; dest : int; cost : float }
  | Deliver of { step : int; dst : int; self : bool }
  | Epoch_change of { step : int; epoch : int }
  | Height_advert of { step : int; node : int }

let step = function
  | Inject { step; _ }
  | Send { step; _ }
  | Collide { step; _ }
  | Deliver { step; _ }
  | Epoch_change { step; _ }
  | Height_advert { step; _ } -> step

(* Flat encoding: 7 ints per event (tag, step, a..e) plus one float (the
   cost; 0 for costless events).  Tags: 0 Inject (a=src b=dst c=admitted),
   1 Send (a=edge b=src c=dst d=dest e=outcome), 2 Collide (a=edge b=src
   c=dst d=dest), 3 Deliver (a=dst b=self), 4 Epoch_change (a=epoch),
   5 Height_advert (a=node). *)
let stride = 7

type log = {
  mutable ints : int array;
  mutable costs : float array;
  mutable len : int;  (* events recorded *)
  mutable observers : (int -> t -> unit) list;  (* registration order *)
  mutable max_step : int;  (* largest step recorded; min_int when empty *)
}

let create ?(initial_capacity = 1024) () =
  if initial_capacity < 1 then invalid_arg "Event.create: capacity must be >= 1";
  {
    ints = Array.make (stride * initial_capacity) 0;
    costs = Array.make initial_capacity 0.;
    len = 0;
    observers = [];
    max_step = min_int;
  }

let length log = log.len

let decode log i =
  let o = stride * i in
  let v = log.ints in
  let step = v.(o + 1) and a = v.(o + 2) and b = v.(o + 3) in
  match v.(o) with
  | 0 -> Inject { step; src = a; dst = b; admitted = v.(o + 4) = 1 }
  | 1 ->
      Send
        {
          step;
          edge = a;
          src = b;
          dst = v.(o + 4);
          dest = v.(o + 5);
          cost = log.costs.(i);
          outcome = (if v.(o + 6) = 1 then Delivered else Moved);
        }
  | 2 ->
      Collide
        { step; edge = a; src = b; dst = v.(o + 4); dest = v.(o + 5); cost = log.costs.(i) }
  | 3 -> Deliver { step; dst = a; self = b = 1 }
  | 4 -> Epoch_change { step; epoch = a }
  | _ -> Height_advert { step; node = a }

let get log i =
  if i < 0 || i >= log.len then invalid_arg "Event.get: index out of bounds";
  decode log i

let set_observer log f = log.observers <- [ f ]

let add_observer log f = log.observers <- log.observers @ [ f ]

let clear_observer log = log.observers <- []

let last_step log = log.max_step

let grow log =
  let cap = Array.length log.costs in
  let ints = Array.make (2 * stride * cap) 0 in
  Array.blit log.ints 0 ints 0 (stride * cap);
  log.ints <- ints;
  let costs = Array.make (2 * cap) 0. in
  Array.blit log.costs 0 costs 0 cap;
  log.costs <- costs

(* Reserve one slot; returns the int-array offset to fill.  The observer,
   when any, sees the event only after [commit]. *)
let reserve log =
  if log.len = Array.length log.costs then grow log;
  stride * log.len

let commit log =
  let i = log.len in
  log.len <- i + 1;
  match log.observers with
  | [] -> ()
  | [ f ] -> f i (decode log i)
  | fs ->
      let e = decode log i in
      List.iter (fun f -> f i e) fs

(* Raw write: no step check (record uses it to build deliberately corrupt
   logs); max_step still tracks the largest step seen. *)
let emit6 log tag step a b c d e cost =
  let o = reserve log in
  let v = log.ints in
  v.(o) <- tag;
  v.(o + 1) <- step;
  v.(o + 2) <- a;
  v.(o + 3) <- b;
  v.(o + 4) <- c;
  v.(o + 5) <- d;
  v.(o + 6) <- e;
  log.costs.(log.len) <- cost;
  if step > log.max_step then log.max_step <- step;
  commit log

(* The emitters' monotonicity contract: online consumers (Live, the
   Invariants checker) fold over the stream assuming steps never
   decrease, so a regression is an engine bug worth failing loudly on. *)
let check_step log step name =
  if log.max_step > min_int && step < log.max_step then
    invalid_arg
      (Printf.sprintf
         "Event.%s: step %d after step %d; emitters require non-decreasing steps (see last_step)"
         name step log.max_step)

let inject log ~step ~src ~dst ~admitted =
  check_step log step "inject";
  emit6 log 0 step src dst (if admitted then 1 else 0) 0 0 0.

let send log ~step ~edge ~src ~dst ~dest ~cost ~outcome =
  check_step log step "send";
  emit6 log 1 step edge src dst dest (match outcome with Delivered -> 1 | Moved -> 0) cost

let collide log ~step ~edge ~src ~dst ~dest ~cost =
  check_step log step "collide";
  emit6 log 2 step edge src dst dest 0 cost

let deliver log ~step ~dst ~self =
  check_step log step "deliver";
  emit6 log 3 step dst (if self then 1 else 0) 0 0 0 0.

let epoch_change log ~step ~epoch =
  check_step log step "epoch_change";
  emit6 log 4 step epoch 0 0 0 0 0.

let height_advert log ~step ~node =
  check_step log step "height_advert";
  emit6 log 5 step node 0 0 0 0 0.

let record log = function
  | Inject { step; src; dst; admitted } ->
      emit6 log 0 step src dst (if admitted then 1 else 0) 0 0 0.
  | Send { step; edge; src; dst; dest; cost; outcome } ->
      emit6 log 1 step edge src dst dest (match outcome with Delivered -> 1 | Moved -> 0) cost
  | Collide { step; edge; src; dst; dest; cost } -> emit6 log 2 step edge src dst dest 0 cost
  | Deliver { step; dst; self } -> emit6 log 3 step dst (if self then 1 else 0) 0 0 0 0.
  | Epoch_change { step; epoch } -> emit6 log 4 step epoch 0 0 0 0 0.
  | Height_advert { step; node } -> emit6 log 5 step node 0 0 0 0 0.

let iter log f =
  for i = 0 to log.len - 1 do
    f i (decode log i)
  done

let to_array log = Array.init log.len (decode log)

(* ------------------------------------------------------------------ *)
(* JSONL (schema adhoc-events/1)                                       *)

let schema = "adhoc-events/1"

(* %.17g round-trips every finite double exactly, which is what lets the
   offline replay reproduce in-memory statistics bit-for-bit. *)
let cost_field f = if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let bool_field b = if b then "true" else "false"

let write_event oc = function
  | Inject { step; src; dst; admitted } ->
      Printf.fprintf oc "{\"ev\":\"inject\",\"step\":%d,\"src\":%d,\"dst\":%d,\"admitted\":%s}\n"
        step src dst (bool_field admitted)
  | Send { step; edge; src; dst; dest; cost; outcome } ->
      Printf.fprintf oc
        "{\"ev\":\"send\",\"step\":%d,\"edge\":%d,\"src\":%d,\"dst\":%d,\"dest\":%d,\"cost\":%s,\"outcome\":\"%s\"}\n"
        step edge src dst dest (cost_field cost)
        (match outcome with Moved -> "moved" | Delivered -> "delivered")
  | Collide { step; edge; src; dst; dest; cost } ->
      Printf.fprintf oc
        "{\"ev\":\"collide\",\"step\":%d,\"edge\":%d,\"src\":%d,\"dst\":%d,\"dest\":%d,\"cost\":%s}\n"
        step edge src dst dest (cost_field cost)
  | Deliver { step; dst; self } ->
      Printf.fprintf oc "{\"ev\":\"deliver\",\"step\":%d,\"dst\":%d,\"self\":%s}\n" step dst
        (bool_field self)
  | Epoch_change { step; epoch } ->
      Printf.fprintf oc "{\"ev\":\"epoch\",\"step\":%d,\"epoch\":%d}\n" step epoch
  | Height_advert { step; node } ->
      Printf.fprintf oc "{\"ev\":\"advert\",\"step\":%d,\"node\":%d}\n" step node

let write_jsonl log oc =
  Printf.fprintf oc "{\"schema\":%S}\n" schema;
  iter log (fun _ e -> write_event oc e)

let save_jsonl log file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_jsonl log oc)

(* ------------------------------------------------------------------ *)
(* Parsing.  The format is machine-written (fixed keys, no nesting), so
   a keyed field scanner covers it without a general JSON parser; field
   order is not assumed. *)

exception Parse of string

let find_field line key =
  let pat = "\"" ^ key ^ "\":" in
  let n = String.length line and k = String.length pat in
  let rec scan i =
    if i + k > n then raise (Parse (Printf.sprintf "missing field %S" key))
    else if String.sub line i k = pat then i + k
    else scan (i + 1)
  in
  scan 0

let field_end line start =
  let n = String.length line in
  let rec go i depth_in_string =
    if i >= n then i
    else
      match line.[i] with
      | '"' -> go (i + 1) (not depth_in_string)
      | (',' | '}') when not depth_in_string -> i
      | _ -> go (i + 1) depth_in_string
  in
  go start false

let raw_field line key =
  let s = find_field line key in
  String.sub line s (field_end line s - s)

let int_field line key =
  match int_of_string_opt (raw_field line key) with
  | Some i -> i
  | None -> raise (Parse (Printf.sprintf "field %S is not an integer" key))

let float_field line key =
  match float_of_string_opt (raw_field line key) with
  | Some f -> f
  | None -> raise (Parse (Printf.sprintf "field %S is not a number" key))

let bool_field_of line key =
  match raw_field line key with
  | "true" -> true
  | "false" -> false
  | _ -> raise (Parse (Printf.sprintf "field %S is not a boolean" key))

let string_field line key =
  let r = raw_field line key in
  let n = String.length r in
  if n >= 2 && r.[0] = '"' && r.[n - 1] = '"' then String.sub r 1 (n - 2)
  else raise (Parse (Printf.sprintf "field %S is not a string" key))

let parse_event line =
  match string_field line "ev" with
  | "inject" ->
      Inject
        {
          step = int_field line "step";
          src = int_field line "src";
          dst = int_field line "dst";
          admitted = bool_field_of line "admitted";
        }
  | "send" ->
      Send
        {
          step = int_field line "step";
          edge = int_field line "edge";
          src = int_field line "src";
          dst = int_field line "dst";
          dest = int_field line "dest";
          cost = float_field line "cost";
          outcome =
            (match string_field line "outcome" with
            | "moved" -> Moved
            | "delivered" -> Delivered
            | o -> raise (Parse (Printf.sprintf "unknown outcome %S" o)));
        }
  | "collide" ->
      Collide
        {
          step = int_field line "step";
          edge = int_field line "edge";
          src = int_field line "src";
          dst = int_field line "dst";
          dest = int_field line "dest";
          cost = float_field line "cost";
        }
  | "deliver" ->
      Deliver
        {
          step = int_field line "step";
          dst = int_field line "dst";
          self = bool_field_of line "self";
        }
  | "epoch" -> Epoch_change { step = int_field line "step"; epoch = int_field line "epoch" }
  | "advert" -> Height_advert { step = int_field line "step"; node = int_field line "node" }
  | ev -> raise (Parse (Printf.sprintf "unknown event kind %S" ev))

let load_jsonl file =
  match open_in file with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let header = try Some (input_line ic) with End_of_file -> None in
          match header with
          | None -> Error (file ^ ": empty file")
          | Some h -> (
              match string_field h "schema" with
              | exception Parse _ -> Error (file ^ ":1: missing \"schema\" header line")
              | s when s <> schema ->
                  Error
                    (Printf.sprintf "%s:1: schema %S, expected %S" file s schema)
              | _ -> (
                  let events = ref [] in
                  let line_no = ref 1 in
                  try
                    (try
                       while true do
                         let line = input_line ic in
                         incr line_no;
                         if line <> "" then events := parse_event line :: !events
                       done
                     with End_of_file -> ());
                    Ok (Array.of_list (List.rev !events))
                  with Parse msg ->
                    Error (Printf.sprintf "%s:%d: %s" file !line_no msg))))
