(** Deterministic fixed-bucket streaming quantile sketch.

    Constant space, O(log buckets) per observation, no data retained:
    observations are binned into [(-inf, b0], (b0, b1], …, (bk, +inf)]
    against a fixed array of strictly increasing finite bucket bounds.
    {!quantile} mirrors {!Adhoc_util.Stats.percentile}'s interpolated
    rank rule on bucket {e upper bounds}, so the estimate never
    undershoots the exact percentile of the observed stream and
    overshoots by at most the width of the widest bucket the bracketing
    order statistics fall in (the overflow bucket answers with the
    observed maximum).  Everything is a pure function of the observation
    sequence — no randomness, no wall clock — which is what lets
    {!Adhoc_obs.Live} pin its snapshot streams bit-identical across
    [--jobs] and across online/replay. *)

type t

val create : buckets:float array -> unit -> t
(** [create ~buckets ()] with strictly increasing finite upper bounds.
    Raises [Invalid_argument] on an empty, non-finite or non-increasing
    array.  The array is copied. *)

val uniform : width:float -> count:int -> unit -> t
(** [uniform ~width ~count ()]: bounds [width, 2·width, …, count·width] —
    every bounded bucket the same width, so the quantile error bound is
    exactly [width] for in-range data. *)

val observe : t -> float -> unit
(** Add one observation.  [nan] is ignored (it carries no rank), matching
    [Stats.percentile]'s non-nan subsample. *)

val count : t -> int
(** Observations accepted so far. *)

val sum : t -> float

val mean : t -> float
(** [nan] when empty. *)

val min_seen : t -> float
(** Smallest observation, [nan] when empty. *)

val max_seen : t -> float

val quantile : t -> float -> float
(** [quantile t p] for [p ∈ [0,100]]: the bucket-upper-bound estimate of
    the exact percentile, [nan] when empty.  Guarantee (qcheck-pinned in
    the test suite): [exact <= estimate] and
    [estimate - exact <= max spanned bucket width] whenever the
    bracketing order statistics land in bounded buckets; observations in
    the overflow bucket are answered with {!max_seen}.  Raises
    [Invalid_argument] outside [0, 100]. *)

val bounds : t -> float array
(** Copy of the bucket bounds. *)

val counts : t -> int array
(** Copy of the per-bucket counts (last entry: overflow). *)
