module Metrics = Metrics
module Span = Span
module Trace = Trace
module Event = Event
module Invariants = Invariants

type sink = {
  metrics : Metrics.t;
  spans : Span.t;
  trace : Trace.t option;
  events : Event.log option;
}

let create ?trace ?events () =
  { metrics = Metrics.create (); spans = Span.create (); trace; events }

let time obs label f =
  match obs with None -> f () | Some o -> Span.time o.spans label f

let events obs = match obs with Some { events = Some log; _ } -> Some log | _ -> None
