module Metrics = Metrics
module Span = Span
module Trace = Trace
module Event = Event
module Invariants = Invariants

type sink = {
  metrics : Metrics.t;
  spans : Span.t;
  trace : Trace.t option;
  events : Event.log option;
}

let create ?trace ?events () =
  { metrics = Metrics.create (); spans = Span.create (); trace; events }

let time obs label f =
  match obs with None -> f () | Some o -> Span.time o.spans label f

let attach_pool o pool =
  let regions = Metrics.counter o.metrics "pool.regions" in
  let items = Metrics.counter o.metrics "pool.items" in
  Adhoc_util.Pool.set_hooks pool
    (Some
       {
         Adhoc_util.Pool.region_enter =
           (fun ~label ~items:n ->
             Metrics.incr regions;
             Metrics.add items n;
             Span.enter o.spans ("pool/" ^ label));
         region_leave = (fun ~label:_ -> Span.leave o.spans);
       })

let detach_pool pool = Adhoc_util.Pool.set_hooks pool None

let events obs = match obs with Some { events = Some log; _ } -> Some log | _ -> None
