module Metrics = Metrics
module Span = Span
module Trace = Trace
module Event = Event
module Invariants = Invariants
module Sketch = Sketch
module Topk = Topk
module Live = Live
module Clock = Clock
module Gcstat = Gcstat
module Domprof = Domprof
module Chrome_trace = Chrome_trace

type sink = {
  metrics : Metrics.t;
  spans : Span.t;
  trace : Trace.t option;
  events : Event.log option;
  domprof : Domprof.t option;
  live : Live.t option;
}

let create ?trace ?events ?domprof ?live ?(gc = false) () =
  (match live, events with
  | Some l, Some log -> Live.attach l log
  | Some _, None -> invalid_arg "Adhoc_obs.create: ~live requires ~events (it folds the event log)"
  | None, _ -> ());
  {
    metrics = Metrics.create ();
    spans = Span.create ~gc ?domprof ();
    trace;
    events;
    domprof;
    live;
  }

let time obs label f =
  match obs with None -> f () | Some o -> Span.time o.spans label f

(* Chunk sizes are [i·n/k] partitions, so power-of-4-ish bounds keep the
   histogram readable from n = 1 tiles up to the 65536-node sweeps. *)
let chunk_buckets = [| 16.; 64.; 256.; 1024.; 4096.; 16384.; 65536. |]

let attach_pool ?domprof o pool =
  let dp = match domprof with Some _ as d -> d | None -> o.domprof in
  let regions = Metrics.counter o.metrics "pool.regions" in
  let items = Metrics.counter o.metrics "pool.items" in
  let chunk_hist = Metrics.histogram o.metrics "pool.chunk_items" ~buckets:chunk_buckets in
  (* GC deltas per pool region, accumulated as word/cycle counters so
     repeated attaches (e.g. B2 swapping recorders per configuration)
     keep accumulating instead of restarting.  Owner-domain quick_stat
     word counts are domain-local in OCaml 5, so these measure the
     owner's share of each region — jobs-dependent by nature, which is
     why json_check --compare relaxes every "gc."-prefixed obs metric. *)
  let gc_minor_words = Metrics.counter o.metrics "gc.pool.minor_words" in
  let gc_promoted_words = Metrics.counter o.metrics "gc.pool.promoted_words" in
  let gc_minor = Metrics.counter o.metrics "gc.pool.minor_collections" in
  let gc_major = Metrics.counter o.metrics "gc.pool.major_collections" in
  let region_base = ref None in
  Adhoc_util.Pool.set_hooks pool
    (Some
       {
         Adhoc_util.Pool.region_enter =
           (fun ~label ~items:n ~chunks ->
             Metrics.incr regions;
             Metrics.add items n;
             for i = 0 to chunks - 1 do
               Metrics.observe chunk_hist
                 (float_of_int (((i + 1) * n / chunks) - (i * n / chunks)))
             done;
             Span.enter o.spans ("pool/" ^ label);
             (match dp with Some d -> Domprof.begin_region d ~label ~items:n | None -> ());
             region_base := Some (Gcstat.read ()));
         region_leave =
           (fun ~label:_ ->
             (match !region_base with
             | None -> ()
             | Some before ->
                 region_base := None;
                 let d = Gcstat.delta ~before ~after:(Gcstat.read ()) in
                 Metrics.add gc_minor_words (max 0 (int_of_float d.Gcstat.minor_words));
                 Metrics.add gc_promoted_words (max 0 (int_of_float d.Gcstat.promoted_words));
                 Metrics.add gc_minor (max 0 d.Gcstat.minor_collections);
                 Metrics.add gc_major (max 0 d.Gcstat.major_collections));
             (match dp with Some d -> Domprof.end_region d | None -> ());
             Span.leave o.spans);
         (* Chunk hooks run on worker domains: they may only touch the
            recorder's single-writer lanes, never the shared metrics. *)
         chunk_enter =
           (fun ~label ~slot ~lo ~hi ->
             match dp with Some d -> Domprof.begin_chunk d ~label ~slot ~lo ~hi | None -> ());
         chunk_leave =
           (fun ~label:_ ~slot ~lo:_ ~hi:_ ->
             match dp with Some d -> Domprof.end_chunk d ~slot | None -> ());
       })

let detach_pool pool = Adhoc_util.Pool.set_hooks pool None

let events obs = match obs with Some { events = Some log; _ } -> Some log | _ -> None

let live obs = match obs with Some { live = Some l; _ } -> Some l | _ -> None
