module Metrics = Metrics
module Span = Span
module Trace = Trace

type sink = {
  metrics : Metrics.t;
  spans : Span.t;
  trace : Trace.t option;
}

let create ?trace () = { metrics = Metrics.create (); spans = Span.create (); trace }

let time obs label f =
  match obs with None -> f () | Some o -> Span.time o.spans label f
