(** Span profiler: nestable named timing scopes.

    A profiler holds a stack of open spans and, per label, the accumulated
    wall-clock (inclusive) and call count of closed spans.  Scopes nest
    freely — a label's time includes the time of everything opened inside
    it — and the same label may recur at any depth; occurrences accumulate
    under one entry.  Timing goes through {!Clock} ([Unix.gettimeofday] —
    the portable choice given the toolchain; sub-microsecond resolution on
    Linux).

    Optional extras, both fixed at {!create}:
    - [~gc:true] additionally captures a {!Gcstat} delta per span, so
      totals report allocation and collection pressure per label;
    - [~domprof] records every span instance as a [Scope] entry on the
      recorder's slot-0 timeline (see {!Domprof}), which is how spans end
      up in Chrome trace exports. *)

type t

val create : ?gc:bool -> ?domprof:Domprof.t -> unit -> t
(** [gc] defaults to [false]: the disabled path performs no [Gc] reads
    and allocates exactly as before GC telemetry existed. *)

val enter : t -> string -> unit
(** Open a span.  Must be balanced by {!leave}. *)

val leave : t -> unit
(** Close the innermost open span and accumulate its elapsed time under
    its label.  Raises [Invalid_argument] when no span is open. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t label f] runs [f] inside a span, closing it even when [f]
    raises. *)

type total = {
  label : string;
  count : int;  (** closed occurrences *)
  seconds : float;  (** accumulated inclusive wall-clock *)
  self_seconds : float;
      (** accumulated exclusive wall-clock: inclusive time minus the
          inclusive time of spans opened directly inside — so a nested
          label ([engine/decide] inside [engine/step]) stops
          double-counting when totals are summed *)
  minor_words : float;  (** {!Gcstat} deltas, all zero unless [~gc:true] *)
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

val totals : t -> total list
(** Accumulated closed spans, sorted by label.  Open spans are not
    included until they close. *)

val reset : t -> unit
(** Drops accumulated totals and any open spans. *)
