(** GC/allocation telemetry: cheap counter snapshots and deltas.

    The only module (besides the rest of [lib/obs]) allowed to touch
    [Gc.*] — the raw-gc lint rule bans it everywhere else.  Word counts
    are domain-local in OCaml 5, so deltas taken on the pool's owner
    domain measure the owner's own allocation.  Collection counts can
    legitimately drift by ±1 between otherwise identical runs (heap
    boundary effects), so they are compared with tolerance, never
    exactly. *)

type snap = {
  minor_words : float;  (** words allocated in this domain's minor heap *)
  promoted_words : float;  (** words promoted minor → major *)
  minor_collections : int;  (** completed minor collection cycles *)
  major_collections : int;  (** completed major cycles / slices *)
}

val read : unit -> snap
(** Wraps [Gc.quick_stat] (no heap traversal; safe in hot-ish paths). *)

val delta : before:snap -> after:snap -> snap
(** Member-wise [after - before]. *)
