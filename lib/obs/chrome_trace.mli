(** Chrome/Perfetto trace-event JSON export for {!Domprof} timelines.

    Produces a catapult-format document ([{"traceEvents": [...]}]) that
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto} load
    directly: metadata events name the process and each used lane, then
    one ["X"] (complete) event per recorded entry with [tid] = pool slot
    and [ts]/[dur] in microseconds since the recorder's epoch.  Event
    order follows {!Domprof.entries}, so the document structure is
    deterministic; only timestamps are machine-dependent.  Validated by
    [json_check --chrome-trace]. *)

val to_string : ?process_name:string -> Domprof.t -> string

val save : ?process_name:string -> Domprof.t -> string -> unit
(** [save dp file] writes the document to [file] (truncating). *)
