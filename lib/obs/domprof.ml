(* Per-domain profiling timelines.

   A recorder keeps one lane per pool slot (slot 0 = the calling/owner
   domain, slot i >= 1 = worker i-1).  Each lane is an entry buffer,
   preallocated at [create] and grown by doubling, plus a small stack of
   open begin-marks; an entry is appended when its scope closes.

   Thread-safety by construction, not by locks: the pool runs chunk [i]
   on the same domain every time, so each lane has exactly one writer —
   the domain currently executing that slot — and writers never touch
   another lane.  Readers ([entries], [summary], ...) run on the owner
   after the region completed; the pool's region barrier (mutex +
   condition) provides the happens-before edge that publishes worker
   writes.

   Determinism of the merge: [entries] concatenates lanes in ascending
   slot order, each lane in its own append order.  Within a lane the
   order is program order on that domain (closing order: children before
   parents), and lane contents are independent of cross-domain
   interleaving — so the merged sequence is a pure function of the
   recorded workload, never of scheduling.  Timestamps vary run to run,
   the structure does not. *)

type kind = Region | Chunk | Scope

type entry = {
  kind : kind;
  label : string;
  slot : int;
  lo : int;  (* item range: [0, items) for Region, the chunk range for
                Chunk, (0, 0) for Scope *)
  hi : int;
  t0 : float;  (* seconds since the recorder's epoch *)
  t1 : float;
}

type open_mark = { m_kind : kind; m_label : string; m_lo : int; m_hi : int; m_t0 : float }

type lane = {
  mutable buf : entry array;
  mutable len : int;
  mutable open_marks : open_mark list;  (* innermost first *)
}

type t = { lanes : lane array; mutable epoch : float }

let dummy_entry = { kind = Scope; label = ""; slot = 0; lo = 0; hi = 0; t0 = 0.; t1 = 0. }

let initial_capacity = 128

let new_lane () = { buf = Array.make initial_capacity dummy_entry; len = 0; open_marks = [] }

(* 64 lanes covers any pool (Pool.max_jobs); lanes are a few hundred words
   each, so eager preallocation is cheap and keeps the record path
   growth-only. *)
let create ?(slots = 64) () =
  let slots = max 1 slots in
  { lanes = Array.init slots (fun _ -> new_lane ()); epoch = Clock.now () }

let slots t = Array.length t.lanes

let reset t =
  Array.iter
    (fun l ->
      l.len <- 0;
      l.open_marks <- [])
    t.lanes;
  t.epoch <- Clock.now ()

let lane t slot =
  if slot < 0 || slot >= Array.length t.lanes then
    invalid_arg (Printf.sprintf "Domprof: slot %d out of range (recorder has %d)" slot
                   (Array.length t.lanes));
  t.lanes.(slot)

let begin_mark t ~kind ~label ~slot ~lo ~hi =
  let l = lane t slot in
  l.open_marks <-
    { m_kind = kind; m_label = label; m_lo = lo; m_hi = hi; m_t0 = Clock.now () -. t.epoch }
    :: l.open_marks

let push l e =
  if l.len = Array.length l.buf then begin
    let bigger = Array.make (2 * Array.length l.buf) dummy_entry in
    Array.blit l.buf 0 bigger 0 l.len;
    l.buf <- bigger
  end;
  l.buf.(l.len) <- e;
  l.len <- l.len + 1

let end_mark t ~slot =
  let l = lane t slot in
  match l.open_marks with
  | [] -> invalid_arg "Domprof: end without a matching begin"
  | m :: rest ->
      l.open_marks <- rest;
      push l
        {
          kind = m.m_kind;
          label = m.m_label;
          slot;
          lo = m.m_lo;
          hi = m.m_hi;
          t0 = m.m_t0;
          t1 = Clock.now () -. t.epoch;
        }

let begin_region t ~label ~items = begin_mark t ~kind:Region ~label ~slot:0 ~lo:0 ~hi:items

let end_region t = end_mark t ~slot:0

let begin_chunk t ~label ~slot ~lo ~hi = begin_mark t ~kind:Chunk ~label ~slot ~lo ~hi

let end_chunk t ~slot = end_mark t ~slot

let begin_scope t ~label = begin_mark t ~kind:Scope ~label ~slot:0 ~lo:0 ~hi:0

let end_scope t = end_mark t ~slot:0

let length t = Array.fold_left (fun acc l -> acc + l.len) 0 t.lanes

(* Slot-major deterministic merge (see the header comment). *)
let entries t =
  let out = Array.make (length t) dummy_entry in
  let j = ref 0 in
  Array.iter
    (fun l ->
      Array.blit l.buf 0 out !j l.len;
      j := !j + l.len)
    t.lanes;
  out

type summary = {
  busy : float array;  (* per-slot chunk-busy seconds, slots 0 .. max used *)
  busy_min : float;
  busy_max : float;
  busy_mean : float;
  imbalance : float;  (* busy_max / busy_mean; 1.0 when perfectly balanced *)
  chunks : int;
  chunk_items : int;
}

let summary t =
  let max_slot = ref (-1) and chunks = ref 0 and items = ref 0 in
  Array.iteri
    (fun slot l ->
      for i = 0 to l.len - 1 do
        let e = l.buf.(i) in
        if e.kind = Chunk then begin
          if slot > !max_slot then max_slot := slot;
          incr chunks;
          items := !items + (e.hi - e.lo)
        end
      done)
    t.lanes;
  if !chunks = 0 then None
  else begin
    let busy = Array.make (!max_slot + 1) 0. in
    Array.iteri
      (fun slot l ->
        if slot <= !max_slot then
          for i = 0 to l.len - 1 do
            let e = l.buf.(i) in
            if e.kind = Chunk then busy.(slot) <- busy.(slot) +. (e.t1 -. e.t0)
          done)
      t.lanes;
    let busy_min = Array.fold_left Float.min busy.(0) busy in
    let busy_max = Array.fold_left Float.max busy.(0) busy in
    let busy_mean = Array.fold_left ( +. ) 0. busy /. float_of_int (Array.length busy) in
    (* Sub-resolution regions can sum to a zero mean; report "balanced"
       rather than a NaN that would serialize to null. *)
    let imbalance = if busy_mean > 0. then busy_max /. busy_mean else 1.0 in
    Some { busy; busy_min; busy_max; busy_mean; imbalance; chunks = !chunks; chunk_items = !items }
  end
