module Conflict = Adhoc_interference.Conflict
module Prng = Adhoc_util.Prng

type request = {
  edge : int;
  sender : int;
  benefit : float;
}

type t = { name : string; select : step:int -> request list -> request list }

let color conflict =
  let colors, num_colors = Conflict.greedy_coloring conflict in
  let select ~step requests =
    if num_colors = 0 then requests
    else begin
      let active = step mod num_colors in
      List.filter (fun r -> colors.(r.edge) = active) requests
    end
  in
  { name = "color-mac"; select }

let random_interference ~rng conflict =
  (* I_e is the paper's neighbourhood bound, not |I(e)|: it dominates the
     interference-set size of every edge e interferes with, which is what
     makes Lemma 3.2's 1/2 collision bound hold. *)
  let bounds = Conflict.neighborhood_bounds conflict in
  let select ~step:_ requests =
    List.filter
      (fun r ->
        let i = max 1 bounds.(r.edge) in
        Prng.uniform rng < 1. /. (2. *. float_of_int i))
      requests
  in
  { name = "random-mac"; select }

(* Shared by the carrier-sense MACs: greedily accept a request iff no
   already-chosen edge interferes with it.  The conflict adjacency is
   walked against scratch marks over the chosen set, so each candidate
   costs O(|I(e)|) instead of a scan of everything chosen so far. *)
let greedy_accept ~adj ~chosen_mark iter =
  let chosen = ref [] in
  iter (fun r ->
      if not (Array.exists (fun e' -> chosen_mark.(e')) adj.(r.edge)) then begin
        chosen_mark.(r.edge) <- true;
        chosen := r :: !chosen
      end);
  let accepted = List.rev !chosen in
  List.iter (fun r -> chosen_mark.(r.edge) <- false) accepted;
  accepted

let greedy_independent conflict =
  let adj = Conflict.adjacency conflict in
  let chosen_mark = Array.make (Array.length adj) false in
  let select ~step:_ requests =
    let sorted = List.sort (fun a b -> Float.compare b.benefit a.benefit) requests in
    greedy_accept ~adj ~chosen_mark (fun f -> List.iter f sorted)
  in
  { name = "greedy-mac"; select }

let csma ~rng conflict =
  let adj = Conflict.adjacency conflict in
  let chosen_mark = Array.make (Array.length adj) false in
  let select ~step:_ requests =
    let order = Array.of_list requests in
    Prng.shuffle rng order;
    greedy_accept ~adj ~chosen_mark (fun f -> Array.iter f order)
  in
  { name = "csma"; select }

let all = { name = "all"; select = (fun ~step:_ requests -> requests) }

let instrument (obs : Adhoc_obs.sink) mac =
  let requests_c = Adhoc_obs.Metrics.counter obs.metrics ("mac." ^ mac.name ^ ".requests") in
  let granted_c = Adhoc_obs.Metrics.counter obs.metrics ("mac." ^ mac.name ^ ".granted") in
  let label = "mac/" ^ mac.name in
  let select ~step requests =
    let granted = Adhoc_obs.Span.time obs.spans label (fun () -> mac.select ~step requests) in
    Adhoc_obs.Metrics.add requests_c (List.length requests);
    Adhoc_obs.Metrics.add granted_c (List.length granted);
    granted
  in
  { mac with select }
