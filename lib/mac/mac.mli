(** Medium-access control protocols.

    A MAC decides, each step, which of the edges the routing layer would
    like to use may attempt a transmission.  Collisions between granted
    edges that still interfere (possible under randomized MACs) are
    resolved by the engine: both transmissions fail.

    The three concrete MACs mirror the paper's three scenarios:
    - {!color}: Scenario 1 (Section 3.2) — an idealised given MAC; colour
      classes of the conflict graph are activated round-robin, so granted
      sets are always interference-free.
    - {!random_interference}: Scenario 2 (Section 3.3) — each edge [e]
      independently becomes active with probability [1/(2·Iₑ)], the paper's
      symmetry-breaking rule (Lemma 3.2 bounds the collision probability).
    - {!Honeycomb} (own module): Scenario 3 (Section 3.4) — fixed
      transmission strength, hexagon contestants.
    - {!greedy_independent}: an idealized upper-baseline that grants a
      maximal independent set of the requests by decreasing benefit. *)

type request = {
  edge : int;  (** topology edge id *)
  sender : int;  (** node that would transmit the data packet *)
  benefit : float;  (** the balancing benefit of the best send on this edge *)
}

type t = { name : string; select : step:int -> request list -> request list }
(** [select ~step requests] returns the granted subset (at most one request
    per edge). *)

val color : Adhoc_interference.Conflict.t -> t
(** Round-robin over a greedy colouring of the conflict graph. *)

val random_interference : rng:Adhoc_util.Prng.t -> Adhoc_interference.Conflict.t -> t
(** Activation probability [1/(2·Iₑ)] per edge per step, with [Iₑ] the
    paper's neighbourhood bound
    ({!Adhoc_interference.Conflict.neighborhood_bounds}) — what makes
    Lemma 3.2's 1/2 collision bound hold. *)

val greedy_independent : Adhoc_interference.Conflict.t -> t
(** Grants a maximal non-interfering subset, highest benefit first. *)

val csma : rng:Adhoc_util.Prng.t -> Adhoc_interference.Conflict.t -> t
(** Carrier-sense abstraction (CSMA/CA, MACA, 802.11 — the protocols the
    paper names for Scenario 1): contenders back off in a random order and
    transmit iff no already-transmitting edge interferes, yielding a
    maximal non-interfering subset chosen uniformly by arrival order
    rather than by benefit. *)

val all : t
(** Grants everything — for interference-free models and tests. *)

val instrument : Adhoc_obs.sink -> t -> t
(** [instrument obs mac] wraps [mac] so every [select] is timed under span
    ["mac/<name>"] and the per-step request / grant counts accumulate in
    [obs]'s metrics as counters ["mac.<name>.requests"] and
    ["mac.<name>.granted"].  The engines apply this automatically when
    given a sink; the arbitration itself is unchanged. *)
