(** Facade: the whole library under one namespace.

    {!Pipeline} ties the layers together; the per-subsystem libraries are
    re-exported here so downstream code can depend on [adhoc] alone. *)

module Util = Adhoc_util
module Geom = Adhoc_geom
module Graphs = Adhoc_graph
module Pointset = Adhoc_pointset
module Topo = Adhoc_topo
module Interference = Adhoc_interference
module Mac_protocols = Adhoc_mac
module Routing = Adhoc_routing
module Obs = Adhoc_obs
module Viz = Adhoc_viz
module Io = Adhoc_io
module Pipeline = Pipeline
