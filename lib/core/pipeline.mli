(** One-call stacks combining topology control, interference, MAC and
    routing — the paper's end-to-end results.

    [prepare] builds ΘALG's overlay 𝒩 and its interference structure once;
    the [run_*] functions then evaluate the (T, γ)-balancing algorithm on a
    certified adversarial workload under each of the paper's three
    scenarios. *)

type built = {
  points : Adhoc_geom.Point.t array;
  range : float;
  theta : float;
  delta : float;  (** interference guard zone Δ *)
  gstar : Adhoc_graph.Graph.t;  (** the transmission graph *)
  alg : Adhoc_topo.Theta_alg.t;
  overlay : Adhoc_graph.Graph.t;  (** 𝒩 *)
  conflict : Adhoc_interference.Conflict.t;  (** interference structure of 𝒩 *)
  interference_number : int;  (** I *)
}

val prepare :
  ?delta:float ->
  ?kappa:float ->
  ?obs:Adhoc_obs.sink ->
  ?pool:Adhoc_util.Pool.t ->
  theta:float ->
  range:float ->
  Adhoc_geom.Point.t array ->
  built
(** Builds G*, 𝒩 and the conflict structure.  [delta] defaults to [0.5];
    [kappa] (default 2.) is recorded for the cost model used by the
    runs.  [obs] attributes the build phases to spans ([prepare/gstar],
    [prepare/theta-alg], [prepare/conflict]) and records topology gauges
    ([topo.nodes], [topo.overlay_edges], [topo.interference_number]).
    [pool] parallelizes the three build phases' per-node/per-edge loops;
    the built structures are bit-identical for any pool size. *)

type result = {
  opt : Adhoc_routing.Workload.opt_stats;
  stats : Adhoc_routing.Engine.stats;
  throughput_ratio : float;  (** delivered / OPT deliveries; 0. when OPT is empty *)
  cost_ratio : float;  (** avg cost per delivery / OPT's; nan when nothing was delivered *)
  params : Adhoc_routing.Balancing.params;
}

val run_scenario1 :
  ?epsilon:float ->
  ?attempts:int ->
  ?horizon:int ->
  ?cooldown:int ->
  ?flows:int ->
  ?max_flow_hops:int ->
  ?kappa:float ->
  ?obs:Adhoc_obs.sink ->
  ?pool:Adhoc_util.Pool.t ->
  rng:Adhoc_util.Prng.t ->
  built ->
  result
(** Theorem 3.1: MAC given.  The certified workload's activations (mutually
    non-interfering each step, padded with colour classes) drive the
    balancing algorithm with the Theorem-3.1 parameter derivation.
    Defaults: ε = 0.5, horizon 2000, attempts ≈ horizon, cooldown =
    horizon.  [obs] times certification ([workload/certify]) and the run
    ([run/scenario1]); both [obs] and [pool] are passed through to the
    engine — see {!Adhoc_routing.Engine.run_mac_given} (decisions fan out
    on the pool, bit-identical for every pool size). *)

val run_scenario2 :
  ?epsilon:float ->
  ?attempts:int ->
  ?horizon:int ->
  ?cooldown:int ->
  ?flows:int ->
  ?max_flow_hops:int ->
  ?kappa:float ->
  ?obs:Adhoc_obs.sink ->
  ?pool:Adhoc_util.Pool.t ->
  rng:Adhoc_util.Prng.t ->
  built ->
  result
(** Theorem 3.3 / Corollaries 3.4–3.5: no MAC given.  Random
    [1/(2Iₑ)] symmetry breaking with collisions; OPT is certified without
    interference constraints (it may use interfering edges
    simultaneously).  [obs] as in {!run_scenario1} (run span
    [run/scenario2]; the MAC additionally reports under [mac/random-mac]). *)

val run_honeycomb :
  ?epsilon:float ->
  ?attempts:int ->
  ?horizon:int ->
  ?cooldown:int ->
  ?flows:int ->
  ?max_flow_hops:int ->
  ?obs:Adhoc_obs.sink ->
  ?pool:Adhoc_util.Pool.t ->
  rng:Adhoc_util.Prng.t ->
  built ->
  result
(** Theorem 3.8: fixed transmission strength.  Requires [built.range = 1.]
    conceptually (hexagon side is [3 + 2Δ] in range units); uses hop costs
    (uniform transmission power).  [obs] as in {!run_scenario1} (run span
    [run/honeycomb]). *)
