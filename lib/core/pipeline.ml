module Graph = Adhoc_graph.Graph
module Cost = Adhoc_graph.Cost
module Theta_alg = Adhoc_topo.Theta_alg
module Udg = Adhoc_topo.Udg
module Model = Adhoc_interference.Model
module Conflict = Adhoc_interference.Conflict
module Mac = Adhoc_mac.Mac
module Honeycomb = Adhoc_mac.Honeycomb
module Workload = Adhoc_routing.Workload
module Engine = Adhoc_routing.Engine
module Balancing = Adhoc_routing.Balancing
module Prng = Adhoc_util.Prng

type built = {
  points : Adhoc_geom.Point.t array;
  range : float;
  theta : float;
  delta : float;
  gstar : Graph.t;
  alg : Theta_alg.t;
  overlay : Graph.t;
  conflict : Conflict.t;
  interference_number : int;
}

let prepare ?(delta = 0.5) ?kappa:_ ?obs ?pool ~theta ~range points =
  let time label f = Adhoc_obs.time obs label f in
  let gstar = time "prepare/gstar" (fun () -> Udg.build ?pool ~range points) in
  let alg = time "prepare/theta-alg" (fun () -> Theta_alg.build ?pool ~theta ~range points) in
  let overlay = Theta_alg.overlay alg in
  let model = Model.make ~delta in
  let conflict = time "prepare/conflict" (fun () -> Conflict.build ?pool model ~points overlay) in
  let interference_number = Conflict.interference_number conflict in
  (match obs with
  | None -> ()
  | Some o ->
      let g name v = Adhoc_obs.Metrics.set (Adhoc_obs.Metrics.gauge o.Adhoc_obs.metrics name) v in
      g "topo.nodes" (float_of_int (Array.length points));
      g "topo.overlay_edges" (float_of_int (Graph.num_edges overlay));
      g "topo.interference_number" (float_of_int interference_number));
  {
    points;
    range;
    theta;
    delta;
    gstar;
    alg;
    overlay;
    conflict;
    interference_number;
  }

type result = {
  opt : Workload.opt_stats;
  stats : Engine.stats;
  throughput_ratio : float;
  cost_ratio : float;
  params : Balancing.params;
}

let make_result opt stats params =
  {
    opt;
    stats;
    throughput_ratio = Engine.throughput_ratio stats opt;
    cost_ratio = Engine.cost_ratio stats opt;
    params;
  }

let default_flows b = max 4 (Graph.n b.overlay / 32)

let run_scenario1 ?(epsilon = 0.5) ?attempts ?(horizon = 2000) ?cooldown ?flows ?max_flow_hops ?(kappa = 2.) ?obs ?pool ~rng b =
  let attempts = Option.value attempts ~default:horizon in
  let cooldown = Option.value cooldown ~default:horizon in
  let cost = Cost.energy ~kappa in
  let config =
    { Workload.horizon; attempts; slack = 12; interference_free = true }
  in
  let num_flows = Option.value flows ~default:(default_flows b) in
  let w =
    Adhoc_obs.time obs "workload/certify" (fun () ->
        Workload.flows ~conflict:b.conflict ?max_hops:max_flow_hops config ~rng
          ~graph:b.overlay ~cost ~num_flows)
  in
  let params =
    Balancing.Derive.theorem_3_1 ~opt_buffer:w.Workload.opt.Workload.max_buffer
      ~opt_avg_hops:w.Workload.opt.Workload.avg_hops
      ~opt_avg_cost:(Float.max w.Workload.opt.Workload.avg_cost 1e-9)
      ~delta:w.Workload.opt.Workload.delta ~epsilon
  in
  let stats =
    Adhoc_obs.time obs "run/scenario1" (fun () ->
        Engine.run_mac_given ~cooldown ?obs ?pool ~pad:b.conflict ~graph:b.overlay ~cost ~params w)
  in
  make_result w.Workload.opt stats params

let run_scenario2 ?(epsilon = 0.5) ?attempts ?(horizon = 2000) ?cooldown ?flows ?max_flow_hops ?(kappa = 2.) ?obs ?pool ~rng b =
  let attempts = Option.value attempts ~default:horizon in
  let cooldown = Option.value cooldown ~default:horizon in
  let cost = Cost.energy ~kappa in
  let config =
    { Workload.horizon; attempts; slack = 12; interference_free = false }
  in
  let num_flows = Option.value flows ~default:(default_flows b) in
  let w =
    Adhoc_obs.time obs "workload/certify" (fun () ->
        Workload.flows ?max_hops:max_flow_hops config ~rng ~graph:b.overlay ~cost ~num_flows)
  in
  let params =
    Balancing.Derive.theorem_3_3 ~opt_buffer:w.Workload.opt.Workload.max_buffer
      ~opt_avg_hops:w.Workload.opt.Workload.avg_hops
      ~opt_avg_cost:(Float.max w.Workload.opt.Workload.avg_cost 1e-9)
      ~epsilon
  in
  let mac = Mac.random_interference ~rng:(Prng.split rng) b.conflict in
  let stats =
    Adhoc_obs.time obs "run/scenario2" (fun () ->
        Engine.run_with_mac ~cooldown ?obs ?pool ~collisions:b.conflict ~graph:b.overlay
          ~cost ~params ~mac w)
  in
  make_result w.Workload.opt stats params

let run_honeycomb ?(epsilon = 0.5) ?attempts ?(horizon = 2000) ?cooldown ?flows ?max_flow_hops ?obs ?pool ~rng b =
  let attempts = Option.value attempts ~default:horizon in
  let cooldown = Option.value cooldown ~default:horizon in
  (* Fixed transmission strength: every hop costs the same. *)
  let cost = Cost.hops in
  let config =
    { Workload.horizon; attempts; slack = 12; interference_free = false }
  in
  let num_flows = Option.value flows ~default:(default_flows b) in
  let w =
    Adhoc_obs.time obs "workload/certify" (fun () ->
        Workload.flows ?max_hops:max_flow_hops config ~rng ~graph:b.overlay ~cost ~num_flows)
  in
  let params =
    Balancing.Derive.theorem_3_3 ~opt_buffer:w.Workload.opt.Workload.max_buffer
      ~opt_avg_hops:w.Workload.opt.Workload.avg_hops
      ~opt_avg_cost:(Float.max w.Workload.opt.Workload.avg_cost 1e-9)
      ~epsilon
  in
  let hc =
    Honeycomb.create ~delta:b.delta ~range:b.range ~threshold:params.Balancing.threshold
      ~rng:(Prng.split rng) b.points
  in
  let stats =
    Adhoc_obs.time obs "run/honeycomb" (fun () ->
        Engine.run_with_mac ~cooldown ?obs ?pool ~collisions:b.conflict ~graph:b.overlay
          ~cost ~params ~mac:(Honeycomb.mac hc) w)
  in
  make_result w.Workload.opt stats params
