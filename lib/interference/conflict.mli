(** Interference sets, the interference number, and the conflict graph of a
    topology (paper Section 2.4, following Meyer auf der Heide et al.).

    [I(e) = { e' | e' interferes with e, or vice versa }]; the interference
    number of the graph is [max_e |I(e)|].  The conflict graph has one
    vertex per topology edge and joins interfering pairs; independent sets
    of the conflict graph are exactly the concurrently usable edge sets. *)

type t = {
  model : Model.t;
  sets : int array array;
      (** [sets.(e)] = interference set of edge [e], excluding [e] itself,
          in ascending edge-id order.  Treat as read-only. *)
}

val build :
  ?pool:Adhoc_util.Pool.t -> Model.t -> points:Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t -> t
(** Grid-accelerated: near-linear for bounded-length edge sets.  [?pool]
    parallelizes the per-edge candidate/interference tests; the symmetric
    set assembly replays sequentially, so [sets] is bit-identical. *)

val build_brute :
  Model.t -> points:Adhoc_geom.Point.t array -> Adhoc_graph.Graph.t -> t
(** O(m²) reference implementation (test oracle). *)

val interference_number : t -> int
(** [max_e |I(e)|]; [0] for graphs with fewer than two edges. *)

val set_sizes : t -> int array

val neighborhood_bounds : t -> int array
(** [Iₑ] per edge as Section 3.3 defines it: an upper bound on the
    interference-set size of every edge that [e] interferes with (and of [e]
    itself).  Activating each edge with probability [1/(2Iₑ)] then bounds
    its collision probability by 1/2 (Lemma 3.2): for [e' ∈ I(e)] we have
    [e ∈ I(e')], hence [Iₑ' >= |I(e)|] and the union bound telescopes. *)

val interfere : t -> int -> int -> bool
(** Membership in each other's interference sets (by edge id). *)

val adjacency : t -> int array array
(** The interference sets as arrays, indexable per edge (the internal
    [sets], not a copy — treat as read-only).  The routing engines and
    MACs use this so that collision checks walk an edge's interference
    neighbourhood instead of scanning the whole active set. *)

val greedy_coloring : t -> int array * int
(** Colours the conflict graph greedily in edge-id order; returns the
    colour per edge and the number of colours used (≤ interference number
    + 1).  Each colour class is interference-free — a valid MAC schedule.
    The taken-colour scan stamps a reusable mark array, so the whole pass
    is O(m·Δ) with no per-edge allocation. *)

val independent : t -> int list -> bool
(** Whether the given edge ids are pairwise non-interfering. *)

val max_independent_greedy : t -> int list -> int list
(** Greedy maximal independent subset of the given candidate edges
    (ascending id order) — an idealised MAC decision. *)
