open Adhoc_geom
module Graph = Adhoc_graph.Graph
module Theta_alg = Adhoc_topo.Theta_alg

type t = {
  alg : Theta_alg.t;
  overlay : Graph.t;
  memo : (int * int, int list) Hashtbl.t;
}

let create alg = { alg; overlay = Theta_alg.overlay alg; memo = Hashtbl.create 256 }

let selection_in_sector t u ~toward =
  let theta = t.alg.Theta_alg.theta and points = t.alg.Theta_alg.points in
  let s = Sector.index ~theta ~apex:points.(u) points.(toward) in
  Array.fold_left
    (fun acc w ->
      if Sector.index ~theta ~apex:points.(u) points.(w) = s then Some w else acc)
    None
    t.alg.Theta_alg.selections.(u)

let admitted_in_sector t v ~toward =
  let theta = t.alg.Theta_alg.theta and points = t.alg.Theta_alg.points in
  let s = Sector.index ~theta ~apex:points.(v) points.(toward) in
  List.fold_left
    (fun acc (w, sector) -> if sector = s then Some w else acc)
    None
    t.alg.Theta_alg.admitted.(v)

(* Fallback for (measure-zero) degenerate configurations where the
   recursion cannot certify progress: any shortest overlay path is a valid
   replacement, just without Lemma 2.9's multiplicity accounting. *)
let dijkstra_fallback t u v =
  let r = Adhoc_graph.Dijkstra.run t.overlay ~cost:Adhoc_graph.Cost.length ~src:u in
  match Adhoc_graph.Dijkstra.path r v with
  | Some p -> p
  | None -> failwith "Theta_paths.replace: endpoints disconnected in the overlay"

let replace t u0 v0 =
  let budget = ref (4 * (Graph.n t.overlay + 2) * (Graph.n t.overlay + 2)) in
  (* [go u v] returns the node path from u to v, inclusive. *)
  let rec go u v =
    match Hashtbl.find_opt t.memo (u, v) with
    | Some p -> p
    | None ->
        decr budget;
        if !budget < 0 then failwith "Theta_paths.replace: recursion failed to make progress";
        let path =
          if u = v then [ u ]
          else if Graph.mem_edge t.overlay u v then [ u; v ]
          else if Theta_alg.in_yao t.alg u v then begin
            (* u selected v; the edge was dropped in phase 2, so v admitted a
               nearer selector w in the sector containing u. *)
            match admitted_in_sector t v ~toward:u with
            | Some w -> go u w @ [ v ]
            | None -> failwith "Theta_paths.replace: missing admitted edge"
          end
          else begin
            match selection_in_sector t u ~toward:v with
            | Some w -> go u w @ List.tl (go w v)
            | None -> failwith "Theta_paths.replace: empty sector on in-range edge"
          end
        in
        Hashtbl.replace t.memo (u, v) path;
        path
  in
  try go u0 v0 with Failure _ -> dijkstra_fallback t u0 v0

let replace_edges t u v =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  pairs (replace t u v)

let max_multiplicity t edges =
  let count = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      List.iter
        (fun (a, b) ->
          let key = if a < b then (a, b) else (b, a) in
          Hashtbl.replace count key (1 + Option.value ~default:0 (Hashtbl.find_opt count key)))
        (replace_edges t u v))
    edges;
  (* lint: allow hashtbl-order — max over ints is commutative and associative; any traversal order yields the same result *)
  Hashtbl.fold (fun _ c acc -> max acc c) count 0
