open Adhoc_geom
module Graph = Adhoc_graph.Graph

type t = {
  model : Model.t;
  sets : int array array;
}

let edge_pair g e =
  let u, v = Graph.endpoints g e in
  (u, v)

let build_brute model ~points g =
  let m = Graph.num_edges g in
  let lists = Array.make m [] in
  for e = 0 to m - 1 do
    for e' = e + 1 to m - 1 do
      if Model.interferes model ~points (edge_pair g e) (edge_pair g e') then begin
        lists.(e) <- e' :: lists.(e);
        lists.(e') <- e :: lists.(e')
      end
    done
  done;
  let sets =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort Int.compare a;
        a)
      lists
  in
  { model; sets }

let empty_sets m = Array.make m [||]

let build ?pool model ~points g =
  let m = Graph.num_edges g in
  if m = 0 || Array.length points = 0 then { model; sets = empty_sets m }
  else begin
    let max_len = ref 0. in
    for e = 0 to m - 1 do
      max_len := Float.max !max_len (Graph.length g e)
    done;
    let max_len = !max_len in
    let reach = Model.region_radius model max_len in
    if reach <= 0. then { model; sets = empty_sets m }
    else begin
      let grid = Spatial_grid.build ~cell:reach points in
      (* Any edge interfering with e (in either direction) has an endpoint
         within (1+Δ)·max_len of one of e's endpoints: if e' interferes with
         e then an endpoint of e lies within (1+Δ)·len(e') ≤ reach of an
         endpoint of e'; the converse direction is symmetric.

         Phase 1 (parallel-safe, disjoint writes): higher.(e) = interfering
         partners with id > e, ascending.  Phase 2 assembles the symmetric
         rows sequentially: row e gets its partners below e first (ascending
         outer loop), then its own higher list — and since every lower
         partner < e < every higher partner, each row ends up fully
         ascending. *)
      let module ISet = Set.Make (Int) in
      let partners e =
        let u, v = Graph.endpoints g e in
        let candidates = ref ISet.empty in
        let add_node w =
          Graph.iter_neighbors g w (fun _ id ->
              if id > e then candidates := ISet.add id !candidates)
        in
        Spatial_grid.iter_within grid points.(u) reach add_node;
        Spatial_grid.iter_within grid points.(v) reach add_node;
        let acc = ref [] in
        ISet.iter
          (fun e' -> if Model.interferes model ~points (u, v) (edge_pair g e') then acc := e' :: !acc)
          !candidates;
        Array.of_list (List.rev !acc)
      in
      let higher = Adhoc_util.Pool.opt_init pool ~label:"conflict" m partners in
      let deg = Array.make m 0 in
      for e = 0 to m - 1 do
        deg.(e) <- deg.(e) + Array.length higher.(e);
        Array.iter (fun e' -> deg.(e') <- deg.(e') + 1) higher.(e)
      done;
      let sets = Array.init m (fun e -> Array.make deg.(e) 0) in
      let fill = Array.make m 0 in
      for e = 0 to m - 1 do
        Array.iter
          (fun e' ->
            sets.(e').(fill.(e')) <- e;
            fill.(e') <- fill.(e') + 1)
          higher.(e)
      done;
      for e = 0 to m - 1 do
        Array.iter
          (fun e' ->
            sets.(e).(fill.(e)) <- e';
            fill.(e) <- fill.(e) + 1)
          higher.(e)
      done;
      { model; sets }
    end
  end

let set_sizes t = Array.map Array.length t.sets

let neighborhood_bounds t =
  let sizes = Array.map Array.length t.sets in
  Array.mapi
    (fun e neighbors -> Array.fold_left (fun acc e' -> max acc sizes.(e')) sizes.(e) neighbors)
    t.sets

let interference_number t = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.sets

let interfere t e e' = Array.exists (fun x -> x = e') t.sets.(e)

let adjacency t = t.sets

let greedy_coloring t =
  let m = Array.length t.sets in
  let colors = Array.make m (-1) in
  (* mark.(c) = e exactly when an already-coloured neighbour of [e] holds
     colour c; stamping with the edge id makes the taken-colour scan
     allocation-free and the whole pass O(m·Δ). *)
  let mark = Array.make (m + 1) (-1) in
  let used = ref 0 in
  for e = 0 to m - 1 do
    Array.iter (fun e' -> if colors.(e') >= 0 then mark.(colors.(e')) <- e) t.sets.(e);
    let c = ref 0 in
    while mark.(!c) = e do
      incr c
    done;
    colors.(e) <- !c;
    if !c + 1 > !used then used := !c + 1
  done;
  (colors, !used)

let independent t ids =
  let rec check = function
    | [] -> true
    | e :: rest -> List.for_all (fun e' -> not (interfere t e e')) rest && check rest
  in
  check ids

let max_independent_greedy t candidates =
  let sorted = List.sort_uniq Int.compare candidates in
  let chosen = ref [] in
  List.iter
    (fun e -> if List.for_all (fun c -> not (interfere t e c)) !chosen then chosen := e :: !chosen)
    sorted;
  List.rev !chosen
