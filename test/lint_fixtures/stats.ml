(* Fixture: this basename is float-flagged (like lib/util/stats.ml), so a
   bare polymorphic [compare] passed as an argument trips float-cmp. *)

let rank xs = List.sort compare xs
