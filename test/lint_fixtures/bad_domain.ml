(* Fixture: raw Domain.* outside the pool module — banned in any scope. *)

let d = Domain.spawn (fun () -> 41 + 1)

let result = Domain.join d
