(* lint: allow hashtbl-order *)
let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let id x = x (* lint: allow no-such-rule -- the rule does not exist *)

(* lint: allow float-cmp -- nothing on this line or the next compares floats *)
let succ_int x = x + 1
