(* Fixture: waivers for the scope-independent rules (float-cmp,
   float-minmax, catch-all, raw-domain, raw-gc) — all used, all reasoned,
   so no diagnostics. *)

let is_zero x = x = 0. (* lint: allow float-cmp -- fixture: exact sentinel test *)

let lo x = min 0.5 x (* lint: allow float-minmax -- fixture: bounded input *)

let parse s = try int_of_string s with _ -> 0 (* lint: allow catch-all -- fixture: total parser *)

let cores = Domain.recommended_domain_count () (* lint: allow raw-domain -- fixture: capacity probe only, spawns nothing *)

let live_words = Gc.minor_words () (* lint: allow raw-gc -- fixture: coarse allocation probe in tool code *)
