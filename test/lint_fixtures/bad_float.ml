(* Fixture: float comparison rules — polymorphic =, <>, compare, min and
   max applied to float operands. *)

let is_zero x = x = 0.

let differs x = x <> 1.5

let order x = compare x 2.5

let clamp x = min 1.0 (max 0.0 x)
