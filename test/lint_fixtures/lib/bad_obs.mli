val shout : int -> unit
