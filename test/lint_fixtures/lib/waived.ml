(* Fixture: every waiver below is well-formed, carries a reason and is
   used, so this module lints clean despite the flagged constructs. *)

let total tbl =
  (* lint: allow hashtbl-order -- int sum is commutative; fixture *)
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let stamp () = Sys.time () (* lint: allow wall-clock -- fixture timing helper *)

let roll n = Random.int n (* lint: allow ambient-rng -- fixture: nonce, not simulation state *)

let shout s = print_endline s (* lint: allow obs-purity -- fixture CLI entry point *)
