(* Fixture: output-channel writes under lib/obs/ — the sanctioned
   serialisation path, lints clean. *)

let dump file s =
  let oc = open_out file in
  output_string oc s;
  Printf.fprintf oc "%d\n" (String.length s);
  close_out oc
