(* Fixture interface: see writes_channel.ml. *)

val dump : string -> string -> unit
