(* Fixture: Gc.* under lib/obs/ — the sanctioned window, lints clean. *)

let live_words () = (Gc.quick_stat ()).Gc.minor_words
