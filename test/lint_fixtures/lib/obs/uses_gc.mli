(* Fixture interface: see uses_gc.ml. *)

val live_words : unit -> float
