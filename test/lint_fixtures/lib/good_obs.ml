(* Fixture: pure rendering — strings are returned, never printed. *)

let render x = Printf.sprintf "result: %d" x
