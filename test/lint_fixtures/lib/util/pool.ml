(* Fixture: the sanctioned Domain wrapper path — the driver exempts any
   file whose path ends in lib/util/pool.ml from raw-domain. *)

let go () = Domain.join (Domain.spawn (fun () -> ()))
