(* Fixture interface: keeps the exempt pool fixture mli-required-clean. *)

val go : unit -> unit
