val sort_ids : int list -> int list
val cmp_pairs : int * int -> int * int -> int
