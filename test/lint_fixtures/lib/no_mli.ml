(* Fixture: a library module without an interface — mli-required fires. *)

let answer = 42
