(* Fixture: the waiver covers its own line and the next, so both channel
   writes below lint clean. *)

let snapshot path s =
  let oc = open_out path in (* lint: allow obs-purity -- fixture: CLI-owned artifact writer *)
  output_string oc s;
  close_out oc
