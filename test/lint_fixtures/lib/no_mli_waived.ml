(* lint: allow mli-required -- fixture: facade whose whole surface is public *)

let answer = 42
