val pick : int -> int
val stamp : unit -> float
val wall : unit -> float
val spread : (int, float) Hashtbl.t -> float
val visit : (int, float) Hashtbl.t -> (int -> float -> unit) -> unit
