(* Fixture: determinism rules fire on every binding below. *)

let pick n = Random.int n

let stamp () = Sys.time ()

let wall () = Unix.gettimeofday ()

let spread tbl = Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.

let visit tbl f = Hashtbl.iter f tbl
