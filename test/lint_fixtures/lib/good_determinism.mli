val pick : (int -> int) -> int -> int
val lookup : (int, float) Hashtbl.t -> int -> float option
val record : (int, float) Hashtbl.t -> int -> float -> unit
