(* Fixture: monomorphic comparators are clean. *)

let sort_ids ids = List.sort Int.compare ids

let cmp_pairs (a, b) (c, d) =
  let x = Int.compare a c in
  if x <> 0 then x else Int.compare b d

module Pair_set = Set.Make (struct
  type t = int * int

  let compare (a, b) (c, d) =
    let x = Int.compare a c in
    if x <> 0 then x else Int.compare b d
end)

let mem = Pair_set.mem
