val total : (int, int) Hashtbl.t -> int
val stamp : unit -> float
val roll : int -> int
val shout : string -> unit
