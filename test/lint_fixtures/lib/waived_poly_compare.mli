val sort_any : 'a list -> 'a list
