(* Fixture interface: see bad_channel.ml. *)

val save : string -> string -> unit
