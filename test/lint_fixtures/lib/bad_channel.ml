(* Fixture: output-channel writes in lib scope outside lib/obs/. *)

let save path s =
  let oc = open_out path in
  output_string oc s;
  Printf.fprintf oc "%d\n" (String.length s);
  close_out oc
