val sort_ids : int list -> int list
val cmp_pairs : int * int -> int * int -> int

module Pair_set : Set.S with type elt = int * int

val mem : Pair_set.elt -> Pair_set.t -> bool
