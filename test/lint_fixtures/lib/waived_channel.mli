(* Fixture interface: see waived_channel.ml. *)

val snapshot : string -> string -> unit
