(* Fixture: bare polymorphic compare in library scope. *)

let sort_ids ids = List.sort compare ids

let cmp_pairs a b = Stdlib.compare a b
