val render : int -> string
