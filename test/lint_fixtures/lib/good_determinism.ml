(* Fixture: deterministic counterparts of bad_determinism — no diagnostics.
   Randomness is injected, time comes from the caller, and hash tables are
   only probed point-wise. *)

let pick rng n = rng n

let lookup tbl k = Hashtbl.find_opt tbl k

let record tbl k v = Hashtbl.replace tbl k v
