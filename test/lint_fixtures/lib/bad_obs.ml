(* Fixture: obs-purity violations — library code writing to std streams. *)

let shout x =
  print_endline "result:";
  Printf.printf "%d\n" x;
  prerr_endline "done"
