(* Fixture: a justified generic helper keeps polymorphic compare behind a
   reasoned waiver. *)

let sort_any xs = List.sort compare xs (* lint: allow poly-compare -- fixture: generic helper, caller guarantees comparable keys *)
