(* Fixture: named exception handling — no diagnostics. *)

let parse s = try Some (int_of_string s) with Failure _ -> None
