(* Fixture: catch-all exception handler swallowing everything. *)

let parse s = try Some (int_of_string s) with _ -> None
