(* Fixture: does not parse. *)

let = 3
