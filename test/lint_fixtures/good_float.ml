(* Fixture: nan-aware float handling, plus min/max on non-float operands —
   no diagnostics. *)

let is_zero x = Float.equal x 0.

let order x = Float.compare x 2.5

let clamp x = Float.min 1.0 (Float.max 0.0 x)

let widest a b = max a b
