(* Fixture: raw Gc.* outside the obs layer — banned in any scope. *)

let words = Gc.minor_words ()

let () = Gc.compact ()
