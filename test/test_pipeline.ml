open Adhoc
module Graph = Adhoc_graph.Graph
open Helpers

let build seed =
  let rng = Prng.create seed in
  let points = Pointset.Generators.uniform rng 60 in
  let range = 1.5 *. Topo.Udg.critical_range points in
  Pipeline.prepare ~theta:(Float.pi /. 6.) ~range points

let test_prepare_invariants =
  qtest "prepare: overlay ⊆ G*, connected, I consistent" ~count:15 seed_gen (fun seed ->
      let b = build seed in
      Graph.is_subgraph b.Pipeline.overlay b.Pipeline.gstar
      && Graphs.Components.is_connected b.Pipeline.overlay
      && b.Pipeline.interference_number
         = Interference.Conflict.interference_number b.Pipeline.conflict)

let sane (r : Pipeline.result) =
  let s = r.Pipeline.stats in
  s.Routing.Engine.injected = s.Routing.Engine.delivered + s.Routing.Engine.remaining
  && r.Pipeline.throughput_ratio >= 0.
  && r.Pipeline.throughput_ratio <= 1.0001
  && r.Pipeline.opt.Routing.Workload.deliveries > 0

let test_scenario1_sane () =
  let b = build 1 in
  let r = Pipeline.run_scenario1 ~horizon:600 ~attempts:800 ~flows:2 ~rng:(Prng.create 2) b in
  Alcotest.(check bool) "sane" true (sane r);
  Alcotest.(check bool) "delivers something" true (r.Pipeline.stats.Routing.Engine.delivered > 0)

let test_scenario2_sane () =
  let b = build 1 in
  let r = Pipeline.run_scenario2 ~horizon:600 ~attempts:800 ~flows:2 ~rng:(Prng.create 3) b in
  Alcotest.(check bool) "sane" true (sane r)

let test_honeycomb_sane () =
  (* Fixed-strength geometry: range 1, nodes over several hexagons. *)
  let rng = Prng.create 4 in
  let box = Geom.Box.square 8. in
  let points = Pointset.Generators.uniform ~box rng 80 in
  let b = Pipeline.prepare ~theta:(Float.pi /. 6.) ~range:1.3 points in
  let r = Pipeline.run_honeycomb ~horizon:800 ~attempts:800 ~flows:2 ~rng:(Prng.create 5) b in
  Alcotest.(check bool) "sane" true (sane r)

let test_pipeline_deterministic () =
  let run () =
    let b = build 7 in
    let r = Pipeline.run_scenario1 ~horizon:300 ~attempts:300 ~flows:2 ~rng:(Prng.create 8) b in
    r.Pipeline.stats
  in
  Alcotest.(check bool) "same stats" true (run () = run ())


let test_honeycomb_deterministic () =
  let run () =
    let rng = Prng.create 4 in
    let box = Geom.Box.square 8. in
    let points = Pointset.Generators.uniform ~box rng 80 in
    let b = Pipeline.prepare ~theta:(Float.pi /. 6.) ~range:1.3 points in
    (Pipeline.run_honeycomb ~horizon:400 ~attempts:400 ~flows:2 ~rng:(Prng.create 5) b)
      .Pipeline.stats
  in
  Alcotest.(check bool) "same stats" true (run () = run ())

let test_prepare_validation () =
  Alcotest.check_raises "bad theta" (Invalid_argument "Theta_alg.build: bad theta")
    (fun () ->
      ignore (Pipeline.prepare ~theta:0. ~range:1. [| Geom.Point.origin |]))

let () =
  Alcotest.run "pipeline"
    [
      ( "pipeline",
        [
          test_prepare_invariants;
          case "scenario 1" test_scenario1_sane;
          case "scenario 2" test_scenario2_sane;
          case "honeycomb" test_honeycomb_sane;
          case "deterministic" test_pipeline_deterministic;
          case "honeycomb deterministic" test_honeycomb_deterministic;
          case "prepare validation" test_prepare_validation;
        ] );
    ]
