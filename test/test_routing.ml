open Adhoc_routing
module Graph = Adhoc_graph.Graph
module Cost = Adhoc_graph.Cost
module Conflict = Adhoc_interference.Conflict
module Model = Adhoc_interference.Model
module Mac = Adhoc_mac.Mac
module Udg = Adhoc_topo.Udg
module Theta_alg = Adhoc_topo.Theta_alg
open Helpers

(* ------------------------------------------------------------------ *)
(* Buffers                                                             *)

let test_buffers_inject_cap () =
  let b = Buffers.create 3 in
  Alcotest.(check bool) "inject" true (Buffers.inject b ~cap:2 0 1);
  Alcotest.(check bool) "inject" true (Buffers.inject b ~cap:2 0 1);
  Alcotest.(check bool) "full" false (Buffers.inject b ~cap:2 0 1);
  Alcotest.(check int) "height" 2 (Buffers.height b 0 1);
  Alcotest.(check int) "total" 2 (Buffers.total b);
  Alcotest.(check bool) "self absorbs" true (Buffers.inject b ~cap:2 1 1);
  Alcotest.(check int) "self not stored" 0 (Buffers.height b 1 1)

let test_buffers_remove () =
  let b = Buffers.create 2 in
  ignore (Buffers.inject b ~cap:5 0 1);
  Buffers.remove b 0 1;
  Alcotest.(check int) "empty" 0 (Buffers.height b 0 1);
  Alcotest.check_raises "remove empty" (Invalid_argument "Buffers.remove: empty buffer")
    (fun () -> Buffers.remove b 0 1)

let test_buffers_force_add () =
  let b = Buffers.create 2 in
  for _ = 1 to 10 do
    Buffers.force_add b 0 1
  done;
  Alcotest.(check int) "uncapped" 10 (Buffers.height b 0 1);
  Buffers.force_add b 1 1;
  Alcotest.(check int) "destination absorbs" 0 (Buffers.height b 1 1)

let test_buffers_nonzero_iteration =
  qtest "iter_nonzero lists exactly the non-empty buffers" ~count:100 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 8 in
      let b = Buffers.create n in
      let reference = Array.make_matrix n n 0 in
      for _ = 1 to 200 do
        let v = Prng.int rng n and d = Prng.int rng n in
        if Prng.bool rng then begin
          if Buffers.inject b ~cap:5 v d && v <> d then
            reference.(v).(d) <- reference.(v).(d) + 1
        end
        else if reference.(v).(d) > 0 then begin
          Buffers.remove b v d;
          reference.(v).(d) <- reference.(v).(d) - 1
        end
      done;
      let ok = ref true in
      for v = 0 to n - 1 do
        let seen = Hashtbl.create 8 in
        Buffers.iter_nonzero b v (fun d h ->
            Hashtbl.replace seen d ();
            if reference.(v).(d) <> h || h = 0 then ok := false);
        for d = 0 to n - 1 do
          if reference.(v).(d) > 0 && not (Hashtbl.mem seen d) then ok := false
        done
      done;
      let expected_total =
        Array.fold_left (fun a row -> Array.fold_left ( + ) a row) 0 reference
      in
      !ok && Buffers.total b = expected_total
      && Buffers.max_height b
         = Array.fold_left (fun a row -> Array.fold_left max a row) 0 reference)

let test_buffers_max_height_incremental () =
  let b = Buffers.create 3 in
  Alcotest.(check int) "empty" 0 (Buffers.max_height b);
  (* Push one pile well past the initial histogram capacity. *)
  for _ = 1 to 100 do
    Buffers.force_add b 0 1
  done;
  for _ = 1 to 40 do
    Buffers.force_add b 2 0
  done;
  Alcotest.(check int) "tall pile" 100 (Buffers.max_height b);
  (* Draining the tallest pile must walk the maximum down to the next. *)
  for _ = 1 to 100 do
    Buffers.remove b 0 1
  done;
  Alcotest.(check int) "next pile" 40 (Buffers.max_height b);
  for _ = 1 to 40 do
    Buffers.remove b 2 0
  done;
  Alcotest.(check int) "empty again" 0 (Buffers.max_height b)

let test_buffers_watcher () =
  let b = Buffers.create 3 in
  let events = ref [] in
  Buffers.set_watcher b (fun v d -> events := (v, d) :: !events);
  ignore (Buffers.inject b ~cap:5 0 1);
  Buffers.force_add b 2 1;
  Buffers.remove b 0 1;
  (* Self-addressed injections are absorbed without touching a buffer. *)
  ignore (Buffers.inject b ~cap:5 1 1);
  Alcotest.(check (list (pair int int)))
    "every height change reported" [ (0, 1); (2, 1); (0, 1) ] (List.rev !events);
  Buffers.clear_watcher b;
  Buffers.force_add b 0 2;
  Alcotest.(check int) "cleared watcher is silent" 3 (List.length !events)

let test_buffers_matrix_oracle =
  qtest "flat buffers = dense matrix oracle under random traffic" ~count:100 seed_gen
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 8 in
      let b = Buffers.create n in
      let reference = Array.make_matrix n n 0 in
      let ok = ref true in
      for _ = 1 to 300 do
        let v = Prng.int rng n and d = Prng.int rng n in
        match Prng.int rng 3 with
        | 0 ->
            if Buffers.inject b ~cap:4 v d then begin
              if v <> d then reference.(v).(d) <- reference.(v).(d) + 1
            end
            else if reference.(v).(d) < 4 then ok := false
        | 1 ->
            Buffers.force_add b v d;
            if v <> d then reference.(v).(d) <- reference.(v).(d) + 1
        | _ ->
            if reference.(v).(d) > 0 then begin
              Buffers.remove b v d;
              reference.(v).(d) <- reference.(v).(d) - 1
            end
      done;
      (* Every height agrees, and both traversals visit exactly the
         nonzero destinations in ascending order. *)
      for v = 0 to n - 1 do
        for d = 0 to n - 1 do
          if Buffers.height b v d <> reference.(v).(d) then ok := false
        done;
        let expected =
          List.filter
            (fun d -> reference.(v).(d) > 0)
            (List.init n Fun.id)
          |> List.map (fun d -> (d, reference.(v).(d)))
        in
        let seen = ref [] in
        Buffers.iter_nonzero b v (fun d h -> seen := (d, h) :: !seen);
        if List.rev !seen <> expected then ok := false;
        let folded =
          Buffers.fold_nonzero b v ~init:[] ~f:(fun acc d h -> (d, h) :: acc)
        in
        if List.rev folded <> expected then ok := false
      done;
      !ok)

let test_sparse_matrix_oracle =
  qtest "Buffers.Sparse = dense matrix oracle" ~count:100 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 8 in
      let s = Buffers.Sparse.create n in
      let reference = Array.make_matrix n n 0 in
      let ok = ref true in
      for _ = 1 to 300 do
        let v = Prng.int rng n and k = Prng.int rng n in
        match Prng.int rng 3 with
        | 0 ->
            let delta = 1 + Prng.int rng 3 in
            reference.(v).(k) <- reference.(v).(k) + delta;
            if Buffers.Sparse.update s v k delta <> reference.(v).(k) then ok := false
        | 1 ->
            if reference.(v).(k) > 0 then begin
              reference.(v).(k) <- reference.(v).(k) - 1;
              if Buffers.Sparse.update s v k (-1) <> reference.(v).(k) then ok := false
            end
        | _ ->
            let x = Prng.int rng 4 in
            Buffers.Sparse.set s v k x;
            reference.(v).(k) <- x
      done;
      if Buffers.Sparse.size s <> n then ok := false;
      for v = 0 to n - 1 do
        for k = 0 to n - 1 do
          if Buffers.Sparse.get s v k <> reference.(v).(k) then ok := false;
          (* find agrees with membership: live keys resolve to their slot,
             absent keys to a complemented insertion point. *)
          let idx = Buffers.Sparse.find s v k in
          if reference.(v).(k) <> 0 then begin
            if idx < 0 then ok := false
          end
          else if idx >= 0 then ok := false
        done;
        let nonzero =
          Array.fold_left (fun a x -> if x <> 0 then a + 1 else a) 0 reference.(v)
        in
        if Buffers.Sparse.row_length s v <> nonzero then ok := false;
        let last = ref (-1) and count = ref 0 in
        Buffers.Sparse.iter_row s v (fun k x ->
            if k <= !last || x = 0 || x <> reference.(v).(k) then ok := false;
            last := k;
            incr count);
        if !count <> nonzero then ok := false;
        if
          Buffers.Sparse.fold_row s v ~init:0 ~f:(fun a _ x -> a + x)
          <> Array.fold_left ( + ) 0 reference.(v)
        then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Balancing                                                           *)

let test_balancing_picks_argmax () =
  let b = Buffers.create 4 in
  let p = Balancing.params ~threshold:1. ~gamma:1. ~capacity:100 in
  (* Node 0 has 5 packets for dest 2 and 3 packets for dest 3. *)
  for _ = 1 to 5 do
    ignore (Buffers.inject b ~cap:100 0 2)
  done;
  for _ = 1 to 3 do
    ignore (Buffers.inject b ~cap:100 0 3)
  done;
  (match Balancing.best_toward b p ~cost:0.5 ~src:0 ~dst:1 with
  | Some d ->
      Alcotest.(check int) "dest" 2 d.Balancing.dest;
      check_close "gain" (5. -. 0. -. 0.5) d.Balancing.gain
  | None -> Alcotest.fail "expected a decision");
  (* Raise destination-side height: gain drops below threshold. *)
  for _ = 1 to 5 do
    Buffers.force_add b 1 2
  done;
  for _ = 1 to 3 do
    Buffers.force_add b 1 3
  done;
  Alcotest.(check bool) "no decision" true
    (Balancing.best_toward b p ~cost:0.5 ~src:0 ~dst:1 = None)

let test_balancing_threshold_strict () =
  let b = Buffers.create 2 in
  let p = Balancing.params ~threshold:3. ~gamma:0. ~capacity:10 in
  for _ = 1 to 3 do
    ignore (Buffers.inject b ~cap:10 0 1)
  done;
  (* Gain = 3 which is not > 3. *)
  Alcotest.(check bool) "not above threshold" true
    (Balancing.best_toward b p ~cost:1. ~src:0 ~dst:1 = None);
  ignore (Buffers.inject b ~cap:10 0 1);
  Alcotest.(check bool) "above threshold" true
    (Balancing.best_toward b p ~cost:1. ~src:0 ~dst:1 <> None)

let test_balancing_apply () =
  let b = Buffers.create 3 in
  ignore (Buffers.inject b ~cap:10 0 2);
  let d = { Balancing.src = 0; dst = 1; dest = 2; gain = 1. } in
  Alcotest.(check bool) "moved" true (Balancing.apply b d = `Moved);
  Alcotest.(check int) "arrived" 1 (Buffers.height b 1 2);
  let d2 = { Balancing.src = 1; dst = 2; dest = 2; gain = 1. } in
  Alcotest.(check bool) "delivered" true (Balancing.apply b d2 = `Delivered);
  Alcotest.(check int) "absorbed" 0 (Buffers.height b 2 2);
  Alcotest.(check int) "drained" 0 (Buffers.total b)

let test_balancing_best_either () =
  let b = Buffers.create 2 in
  let p = Balancing.params ~threshold:0. ~gamma:0. ~capacity:10 in
  for _ = 1 to 3 do
    Buffers.force_add b 1 0
  done;
  match Balancing.best_either b p ~cost:0. ~u:0 ~v:1 with
  | Some d ->
      Alcotest.(check int) "sends from higher side" 1 d.Balancing.src;
      Alcotest.(check int) "toward lower" 0 d.Balancing.dst
  | None -> Alcotest.fail "expected decision"

let test_derive_3_1 () =
  let p =
    Balancing.Derive.theorem_3_1 ~opt_buffer:2 ~opt_avg_hops:5. ~opt_avg_cost:1. ~delta:2
      ~epsilon:0.5
  in
  check_close "T = B + 2(delta-1)" 4. p.Balancing.threshold;
  check_close "gamma = (T+B+delta)L/C" 40. p.Balancing.gamma;
  (* H = ceil(B * (1 + 2(1+(T+delta)/B) L / eps)) = ceil(2*(1+2*4*5/0.5)) *)
  Alcotest.(check int) "capacity" 162 p.Balancing.capacity

let test_derive_3_3 () =
  let p =
    Balancing.Derive.theorem_3_3 ~opt_buffer:1 ~opt_avg_hops:4. ~opt_avg_cost:2. ~epsilon:0.5
  in
  check_close "T = 2B+1" 3. p.Balancing.threshold;
  check_close "gamma = (T+B)L/C" 8. p.Balancing.gamma;
  Alcotest.(check int) "capacity" 65 p.Balancing.capacity

let test_derive_epsilon_monotone () =
  let cap eps =
    (Balancing.Derive.theorem_3_1 ~opt_buffer:2 ~opt_avg_hops:5. ~opt_avg_cost:1. ~delta:1
       ~epsilon:eps)
      .Balancing.capacity
  in
  Alcotest.(check bool) "smaller eps needs bigger buffers" true (cap 0.1 > cap 0.5);
  Alcotest.(check bool) "and bigger than 0.9" true (cap 0.5 > cap 0.9)

let test_params_validation () =
  Alcotest.check_raises "negative threshold"
    (Invalid_argument "Balancing.params: negative threshold") (fun () ->
      ignore (Balancing.params ~threshold:(-1.) ~gamma:0. ~capacity:1));
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Derive.theorem_3_1: epsilon in (0,1)") (fun () ->
      ignore
        (Balancing.Derive.theorem_3_1 ~opt_buffer:1 ~opt_avg_hops:1. ~opt_avg_cost:1. ~delta:1
           ~epsilon:1.5))

(* Random height matrices for the balancing properties below. *)
let random_heights rng n =
  let heights = Array.make_matrix n n 0 in
  for v = 0 to n - 1 do
    for d = 0 to n - 1 do
      if v <> d && Prng.bool rng then heights.(v).(d) <- Prng.int rng 6
    done
  done;
  heights

let buffers_of_heights heights =
  let n = Array.length heights in
  let b = Buffers.create n in
  for v = 0 to n - 1 do
    for d = 0 to n - 1 do
      for _ = 1 to heights.(v).(d) do
        Buffers.force_add b v d
      done
    done
  done;
  b

(* Decisions must depend only on the height matrix, never on the order the
   hash-backed buffers happened to be built in — the incremental decision
   cache relies on this to reuse decisions computed at different times. *)
let test_balancing_order_independent =
  qtest "decisions ignore buffer construction order" ~count:150 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 6 in
      let heights = random_heights rng n in
      let forward = buffers_of_heights heights in
      (* Same matrix, built backwards with add/remove churn pushing the
         hashtables through a different insertion history. *)
      let churned = Buffers.create n in
      for v = n - 1 downto 0 do
        for d = n - 1 downto 0 do
          if v <> d then begin
            Buffers.force_add churned v d;
            for _ = 1 to heights.(v).(d) do
              Buffers.force_add churned v d
            done;
            Buffers.remove churned v d
          end
        done
      done;
      let p =
        Balancing.params ~threshold:(Prng.uniform rng) ~gamma:(Prng.uniform rng)
          ~capacity:100
      in
      let cost = Prng.uniform rng in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then begin
            if
              Balancing.best_toward forward p ~cost ~src ~dst
              <> Balancing.best_toward churned p ~cost ~src ~dst
            then ok := false;
            if
              src < dst
              && Balancing.best_either forward p ~cost ~u:src ~v:dst
                 <> Balancing.best_either churned p ~cost ~u:src ~v:dst
            then ok := false
          end
        done
      done;
      !ok)

(* best_toward against a brute-force oracle over the full matrix: the chosen
   destination is the argmax (ties to the smaller index) and its gain clears
   the threshold strictly. *)
let test_balancing_matches_oracle =
  qtest "best_toward = brute-force argmax, gain > threshold" ~count:150 seed_gen
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 6 in
      let heights = random_heights rng n in
      let b = buffers_of_heights heights in
      let p =
        Balancing.params ~threshold:(Prng.uniform rng *. 2.) ~gamma:(Prng.uniform rng)
          ~capacity:100
      in
      let cost = Prng.uniform rng in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then begin
            let expected = ref None in
            for d = 0 to n - 1 do
              if heights.(src).(d) > 0 then begin
                let gain =
                  float_of_int (heights.(src).(d) - heights.(dst).(d))
                  -. (p.Balancing.gamma *. cost)
                in
                if gain > p.Balancing.threshold then
                  match !expected with
                  | Some (_, bg) when bg >= gain -> ()
                  | _ -> expected := Some (d, gain)
              end
            done;
            match (Balancing.best_toward b p ~cost ~src ~dst, !expected) with
            | None, None -> ()
            | Some dec, Some (d, gain)
              when dec.Balancing.dest = d
                   && dec.Balancing.gain = gain
                   && dec.Balancing.gain > p.Balancing.threshold
                   && dec.Balancing.src = src
                   && dec.Balancing.dst = dst ->
                ()
            | _ -> ok := false
          end
        done
      done;
      !ok)

let test_balancing_apply_conserves =
  qtest "apply conserves packets (Moved) or absorbs one (Delivered)" ~count:150 seed_gen
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 6 in
      let b = buffers_of_heights (random_heights rng n) in
      let p = Balancing.params ~threshold:0. ~gamma:(Prng.uniform rng) ~capacity:100 in
      let cost = Prng.uniform rng in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then
            match Balancing.best_toward b p ~cost ~src ~dst with
            | None -> ()
            | Some d ->
                let before = Buffers.total b in
                (match Balancing.apply b d with
                | `Moved ->
                    if Buffers.total b <> before then ok := false;
                    if d.Balancing.dest = dst then ok := false
                | `Delivered ->
                    if Buffers.total b <> before - 1 then ok := false;
                    if d.Balancing.dest <> dst then ok := false)
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let overlay_instance seed =
  let points = points_of_seed ~min_n:6 ~max_n:25 seed in
  let range = 2. *. Udg.critical_range points in
  let alg = Theta_alg.build ~theta:(Float.pi /. 6.) ~range points in
  let g = Theta_alg.overlay alg in
  let c = Conflict.build (Model.make ~delta:0.5) ~points g in
  (points, g, c)

let workload_config = { Workload.horizon = 300; attempts = 200; slack = 10; interference_free = false }

let test_workload_counts =
  qtest "injections = certified deliveries" ~count:40 seed_gen (fun seed ->
      let _, g, _ = overlay_instance seed in
      let rng = Prng.create seed in
      let w = Workload.generate workload_config ~rng ~graph:g ~cost:Cost.length in
      let injected = Array.fold_left (fun a l -> a + List.length l) 0 w.Workload.injections in
      injected = w.Workload.opt.Workload.deliveries
      && w.Workload.opt.Workload.deliveries <= workload_config.Workload.attempts)

let test_workload_activations_unique =
  qtest "activation lists are duplicate-free" ~count:40 seed_gen (fun seed ->
      let _, g, _ = overlay_instance seed in
      let rng = Prng.create seed in
      let w = Workload.generate workload_config ~rng ~graph:g ~cost:Cost.length in
      Array.for_all
        (fun l -> List.length l = List.length (List.sort_uniq compare l))
        w.Workload.activations)

let test_workload_interference_free =
  qtest "scenario-1 activations are non-interfering" ~count:40 seed_gen (fun seed ->
      let _, g, c = overlay_instance seed in
      let rng = Prng.create seed in
      let w =
        Workload.generate ~conflict:c
          { workload_config with Workload.interference_free = true }
          ~rng ~graph:g ~cost:Cost.length
      in
      Array.for_all (fun l -> Conflict.independent c l) w.Workload.activations)

let test_workload_stats_sane =
  qtest "opt stats are internally consistent" ~count:40 seed_gen (fun seed ->
      let _, g, _ = overlay_instance seed in
      let rng = Prng.create seed in
      let w = Workload.generate workload_config ~rng ~graph:g ~cost:Cost.length in
      let opt = w.Workload.opt in
      opt.Workload.max_buffer >= 1
      && opt.Workload.delta >= 1
      && (opt.Workload.deliveries = 0
         || (opt.Workload.avg_hops >= 1.
            && close ~eps:1e-9 opt.Workload.avg_cost
                 (opt.Workload.total_cost /. float_of_int opt.Workload.deliveries))))

let test_workload_flows_concentrate () =
  let _, g, _ = overlay_instance 3 in
  let rng = Prng.create 3 in
  let w = Workload.flows workload_config ~rng ~graph:g ~cost:Cost.length ~num_flows:2 in
  let pairs =
    Array.to_list w.Workload.injections |> List.concat |> List.sort_uniq compare
  in
  Alcotest.(check bool) "at most 2 distinct pairs" true (List.length pairs <= 2)

let test_workload_single_destination () =
  let _, g, _ = overlay_instance 4 in
  let rng = Prng.create 4 in
  let w =
    Workload.single_destination workload_config ~rng ~graph:g ~cost:Cost.length ~sink:0
  in
  Array.iter
    (fun l -> List.iter (fun (_, dst) -> Alcotest.(check int) "sink" 0 dst) l)
    w.Workload.injections

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_conservation =
  qtest "packets conserved: injected = delivered + remaining" ~count:30 seed_gen (fun seed ->
      let _, g, c = overlay_instance seed in
      let rng = Prng.create seed in
      let w =
        Workload.flows ~conflict:c
          { workload_config with Workload.interference_free = true }
          ~rng ~graph:g ~cost:Cost.length ~num_flows:2
      in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      let stats = Engine.run_mac_given ~cooldown:100 ~graph:g ~cost:Cost.length ~params w in
      stats.Engine.injected = stats.Engine.delivered + stats.Engine.remaining
      && stats.Engine.injected + stats.Engine.dropped
         = w.Workload.opt.Workload.deliveries)

let test_engine_mac_conservation =
  qtest "conservation under random MAC with collisions" ~count:20 seed_gen (fun seed ->
      let _, g, c = overlay_instance seed in
      let rng = Prng.create seed in
      let w = Workload.flows workload_config ~rng ~graph:g ~cost:Cost.length ~num_flows:2 in
      let mac = Mac.random_interference ~rng:(Prng.create (seed + 1)) c in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      let stats =
        Engine.run_with_mac ~cooldown:100 ~collisions:c ~graph:g ~cost:Cost.length ~params ~mac w
      in
      stats.Engine.injected = stats.Engine.delivered + stats.Engine.remaining
      && stats.Engine.failed_sends <= stats.Engine.sends)

let test_engine_line_delivers () =
  (* 0 -- 1 -- 2; inject at 0 toward 2; all edges always active. *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  let horizon = 50 in
  let injections = Array.make horizon [] in
  injections.(0) <- [ (0, 2); (0, 2); (0, 2) ];
  let activations = Array.make horizon [ 0; 1 ] in
  let w =
    {
      Workload.horizon;
      injections;
      paths = Array.make horizon [];
      activations;
      opt =
        {
          Workload.deliveries = 3;
          total_cost = 6.;
          avg_cost = 2.;
          avg_hops = 2.;
          max_buffer = 3;
          delta = 2;
        };
    }
  in
  let params = Balancing.params ~threshold:0. ~gamma:0. ~capacity:10 in
  let stats = Engine.run_mac_given ~graph:g ~cost:Cost.length ~params w in
  Alcotest.(check int) "all delivered" 3 stats.Engine.delivered;
  Alcotest.(check int) "nothing remains" 0 stats.Engine.remaining;
  Alcotest.(check bool) "ratios" true (Float.equal (Engine.throughput_ratio stats w.Workload.opt) 1.)

let test_engine_deterministic () =
  let run () =
    let _, g, c = overlay_instance 9 in
    let rng = Prng.create 9 in
    let w = Workload.flows workload_config ~rng ~graph:g ~cost:Cost.length ~num_flows:2 in
    let mac = Mac.random_interference ~rng:(Prng.create 10) c in
    let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
    Engine.run_with_mac ~collisions:c ~graph:g ~cost:Cost.length ~params ~mac w
  in
  Alcotest.(check bool) "same stats" true (run () = run ())

let test_engine_capacity_drops () =
  (* Tiny capacity and an isolated pair with no activations: everything
     beyond the cap is dropped at injection. *)
  let g = Graph.of_edges ~n:2 [ (0, 1, 1.) ] in
  let horizon = 10 in
  let injections = Array.make horizon [] in
  for t = 0 to horizon - 1 do
    injections.(t) <- [ (0, 1) ]
  done;
  let w =
    {
      Workload.horizon;
      injections;
      paths = Array.make horizon [];
      activations = Array.make horizon [];
      opt =
        {
          Workload.deliveries = 10;
          total_cost = 10.;
          avg_cost = 1.;
          avg_hops = 1.;
          max_buffer = 1;
          delta = 1;
        };
    }
  in
  let params = Balancing.params ~threshold:0. ~gamma:0. ~capacity:3 in
  let stats = Engine.run_mac_given ~graph:g ~cost:Cost.length ~params w in
  Alcotest.(check int) "admitted up to cap" 3 stats.Engine.injected;
  Alcotest.(check int) "rest dropped" 7 stats.Engine.dropped

let test_cost_accounting () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 2.) ] in
  let horizon = 5 in
  let injections = Array.make horizon [] in
  injections.(0) <- [ (0, 1) ];
  let activations = Array.make horizon [ 0 ] in
  let w =
    {
      Workload.horizon;
      injections;
      paths = Array.make horizon [];
      activations;
      opt =
        {
          Workload.deliveries = 1;
          total_cost = 4.;
          avg_cost = 4.;
          avg_hops = 1.;
          max_buffer = 1;
          delta = 1;
        };
    }
  in
  let params = Balancing.params ~threshold:0. ~gamma:0. ~capacity:10 in
  let stats = Engine.run_mac_given ~graph:g ~cost:(Cost.energy ~kappa:2.) ~params w in
  Alcotest.(check int) "delivered" 1 stats.Engine.delivered;
  check_close "energy cost 2^2" 4. stats.Engine.total_cost;
  check_close "cost ratio" 1. (Engine.cost_ratio stats w.Workload.opt)


(* ------------------------------------------------------------------ *)
(* Packet / Tracked_engine                                             *)

let test_packet_lifecycle () =
  let p = Packet.make ~id:7 ~src:1 ~dst:2 ~now:10 in
  Alcotest.(check bool) "in flight" false (Packet.delivered p);
  Alcotest.check_raises "latency before delivery"
    (Invalid_argument "Packet.latency: packet not delivered") (fun () ->
      ignore (Packet.latency p));
  p.Packet.delivered_at <- 25;
  Alcotest.(check bool) "delivered" true (Packet.delivered p);
  Alcotest.(check int) "latency" 15 (Packet.latency p)

let tracked_line_workload () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  let horizon = 50 in
  let injections = Array.make horizon [] in
  injections.(0) <- [ (0, 2); (0, 2); (0, 2) ];
  let activations = Array.make horizon [ 0; 1 ] in
  ( g,
    {
      Workload.horizon;
      injections;
      paths = Array.make horizon [];
      activations;
      opt =
        {
          Workload.deliveries = 3;
          total_cost = 6.;
          avg_cost = 2.;
          avg_hops = 2.;
          max_buffer = 3;
          delta = 2;
        };
    } )

let test_tracked_engine_matches_engine () =
  let g, w = tracked_line_workload () in
  let params = Balancing.params ~threshold:0. ~gamma:0. ~capacity:10 in
  let plain = Engine.run_mac_given ~graph:g ~cost:Cost.length ~params w in
  let tracked = Tracked_engine.run_mac_given ~graph:g ~cost:Cost.length ~params w in
  Alcotest.(check int) "same deliveries" plain.Engine.delivered
    tracked.Tracked_engine.base.Engine.delivered;
  Alcotest.(check int) "same sends" plain.Engine.sends
    tracked.Tracked_engine.base.Engine.sends;
  Alcotest.(check bool) "same cost" true
    (plain.Engine.total_cost = tracked.Tracked_engine.base.Engine.total_cost)

let test_tracked_engine_latency () =
  let g, w = tracked_line_workload () in
  let params = Balancing.params ~threshold:0. ~gamma:0. ~capacity:10 in
  let r = Tracked_engine.run_mac_given ~graph:g ~cost:Cost.length ~params w in
  Alcotest.(check int) "all delivered" 3 r.Tracked_engine.base.Engine.delivered;
  Alcotest.(check bool) "positive latency" true (r.Tracked_engine.latency_mean > 0.);
  Alcotest.(check bool) "p95 >= median" true
    (r.Tracked_engine.latency_p95 >= r.Tracked_engine.latency_median);
  (* Every packet needs 2 hops on the line. *)
  check_close "hops" 2. r.Tracked_engine.hops_mean;
  check_close "energy" 2. r.Tracked_engine.energy_per_delivered;
  List.iter
    (fun p ->
      Alcotest.(check bool) "delivered" true (Packet.delivered p);
      Alcotest.(check int) "hop count" 2 p.Packet.hops)
    r.Tracked_engine.packets

let test_tracked_engine_random =
  qtest "tracked = plain engine on random instances" ~count:20 seed_gen (fun seed ->
      let _, g, c = overlay_instance seed in
      let rng = Prng.create seed in
      let w =
        Workload.flows ~conflict:c
          { workload_config with Workload.interference_free = true }
          ~rng ~graph:g ~cost:Cost.length ~num_flows:2
      in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      let plain =
        Engine.run_mac_given ~cooldown:100 ~graph:g ~cost:Cost.length ~params w
      in
      let tracked =
        Tracked_engine.run_mac_given ~cooldown:100 ~graph:g ~cost:Cost.length ~params w
      in
      plain.Engine.delivered = tracked.Tracked_engine.base.Engine.delivered
      && plain.Engine.sends = tracked.Tracked_engine.base.Engine.sends
      && plain.Engine.remaining = tracked.Tracked_engine.base.Engine.remaining)

(* ------------------------------------------------------------------ *)
(* Geographic routing                                                  *)

let geo_instance seed =
  let points = points_of_seed ~min_n:10 ~max_n:40 seed in
  let range = 1.5 *. Adhoc_topo.Udg.critical_range points in
  (points, Adhoc_topo.Udg.build ~range points, Adhoc_topo.Gabriel.build ~range points)

let test_geo_greedy_route_valid =
  qtest "greedy routes walk graph edges and shrink distance" ~count:60 seed_gen (fun seed ->
      let points, g, _ = geo_instance seed in
      let rng = Prng.create (seed + 5) in
      let n = Array.length points in
      let src = Prng.int rng n and dst = Prng.int rng n in
      QCheck2.assume (src <> dst);
      match Geo.greedy g points ~src ~dst with
      | None -> true
      | Some r ->
          let rec check = function
            | a :: (b :: _ as rest) ->
                Graph.mem_edge g a b
                && Adhoc_geom.Point.dist points.(b) points.(dst)
                   < Adhoc_geom.Point.dist points.(a) points.(dst)
                && check rest
            | _ -> true
          in
          List.hd r.Geo.nodes = src
          && List.nth r.Geo.nodes r.Geo.hops = dst
          && check r.Geo.nodes
          && r.Geo.recovery_hops = 0)

let test_geo_face_delivers =
  qtest "greedy_face always delivers on connected instances" ~count:60 seed_gen (fun seed ->
      let points, g, gabriel = geo_instance seed in
      QCheck2.assume (Adhoc_graph.Components.is_connected gabriel);
      let rng = Prng.create (seed + 6) in
      let n = Array.length points in
      let src = Prng.int rng n and dst = Prng.int rng n in
      QCheck2.assume (src <> dst);
      match Geo.greedy_face ~planar:gabriel g points ~src ~dst with
      | None -> false
      | Some r -> List.hd r.Geo.nodes = src && List.nth r.Geo.nodes r.Geo.hops = dst)

let test_geo_route_metrics () =
  let points = [| Point.make 0. 0.; Point.make 1. 0.; Point.make 2. 0. |] in
  let g = Graph.geometric points [ (0, 1); (1, 2) ] in
  match Geo.greedy g points ~src:0 ~dst:2 with
  | None -> Alcotest.fail "expected route"
  | Some r ->
      Alcotest.(check int) "hops" 2 r.Geo.hops;
      check_close "length" 2. r.Geo.length;
      check_close "energy" 2. r.Geo.energy

let test_geo_local_minimum () =
  (* A void: the source's only neighbour is farther from the destination,
     so greedy fails; the detour goes up and over. *)
  let points =
    [| Point.make 0. 0.; Point.make (-0.5) 1.5; Point.make 1.5 2.0; Point.make 3. 0. |]
  in
  let g = Graph.geometric points [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check bool) "greedy stuck" true (Geo.greedy g points ~src:0 ~dst:3 = None);
  match Geo.greedy_face ~planar:g g points ~src:0 ~dst:3 with
  | None -> Alcotest.fail "face routing should recover"
  | Some r -> Alcotest.(check bool) "used recovery" true (r.Geo.recovery_hops > 0)

let test_geo_success_rate_bounds =
  qtest "success rate in [0,1]" ~count:20 seed_gen (fun seed ->
      let points, g, _ = geo_instance seed in
      let rate = Geo.success_rate g points ~rng:(Prng.create seed) ~trials:50 in
      rate >= 0. && rate <= 1.)


(* ------------------------------------------------------------------ *)
(* Dynamic engine / bursty workloads                                   *)

let test_dynamic_engine_static_equals_epochs =
  qtest "one long epoch = several epochs of the same graph" ~count:15 seed_gen (fun seed ->
      let points, g, c = overlay_instance seed in
      ignore points;
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      let rng = Prng.create seed in
      let n = Graph.n g in
      let flow = (Prng.int rng n, Prng.int rng n) in
      let injections t = if t < 200 && t mod 3 = 0 then [ flow ] else [] in
      let mk epochs =
        Dynamic_engine.run ~epochs ~injections ~cost:Cost.length ~params ()
      in
      let one = mk [ { Dynamic_engine.graph = g; conflict = c; steps = 400 } ] in
      let split =
        mk
          [
            { Dynamic_engine.graph = g; conflict = c; steps = 150 };
            { Dynamic_engine.graph = g; conflict = c; steps = 250 };
          ]
      in
      one = split)

let test_dynamic_engine_survives_partition () =
  (* Epoch 1: only edge (0,1); epoch 2: only edge (1,2).  A packet for 2
     injected at step 0 must cross both epochs. *)
  let g1 = Graph.of_edges ~n:3 [ (0, 1, 1.) ] in
  let g2 = Graph.of_edges ~n:3 [ (1, 2, 1.) ] in
  let points = [| Point.make 0. 0.; Point.make 1. 0.; Point.make 2. 0. |] in
  let c1 = Conflict.build (Model.make ~delta:0.1) ~points g1 in
  let c2 = Conflict.build (Model.make ~delta:0.1) ~points g2 in
  let params = Balancing.params ~threshold:0. ~gamma:0. ~capacity:10 in
  let injections t = if t = 0 then [ (0, 2) ] else [] in
  let stats =
    Dynamic_engine.run
      ~epochs:
        [
          { Dynamic_engine.graph = g1; conflict = c1; steps = 10 };
          { Dynamic_engine.graph = g2; conflict = c2; steps = 10 };
        ]
      ~injections ~cost:Cost.length ~params ()
  in
  Alcotest.(check int) "delivered across the change" 1 stats.Engine.delivered;
  Alcotest.(check int) "nothing stuck" 0 stats.Engine.remaining

let test_dynamic_engine_conservation =
  qtest "dynamic engine conserves packets" ~count:15 seed_gen (fun seed ->
      let _, g, c = overlay_instance seed in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:20 in
      let rng = Prng.create (seed + 2) in
      let n = Graph.n g in
      let injections t =
        if t < 100 then [ (Prng.int rng n, Prng.int rng n) ] else []
      in
      let stats =
        Dynamic_engine.run
          ~epochs:
            [
              { Dynamic_engine.graph = g; conflict = c; steps = 150 };
              { Dynamic_engine.graph = g; conflict = c; steps = 150 };
            ]
          ~injections ~cost:Cost.length ~params ()
      in
      stats.Engine.injected = stats.Engine.delivered + stats.Engine.remaining)

let test_epoch_of_points () =
  let rng = Prng.create 3 in
  let points = Adhoc_pointset.Generators.uniform rng 30 in
  let e = Dynamic_engine.epoch_of_points ~steps:10 points in
  Alcotest.(check int) "steps" 10 e.Dynamic_engine.steps;
  Alcotest.(check bool) "connected overlay" true
    (Adhoc_graph.Components.is_connected e.Dynamic_engine.graph)

let test_bursty_workload () =
  let _, g, _ = overlay_instance 8 in
  let rng = Prng.create 8 in
  let config = { Workload.horizon = 400; attempts = 300; slack = 10; interference_free = false } in
  let w =
    Workload.bursty config ~rng ~graph:g ~cost:Cost.length ~num_flows:2 ~period:100
      ~burst_width:10
  in
  (* All injection times fall inside the first 10 steps of a 100-step window. *)
  Array.iteri
    (fun t l ->
      if l <> [] && t mod 100 >= 10 then
        Alcotest.failf "injection outside burst window at %d" t)
    w.Workload.injections;
  Alcotest.(check bool) "certified some packets" true (w.Workload.opt.Workload.deliveries > 0)

let test_bursty_validation () =
  let _, g, _ = overlay_instance 9 in
  let rng = Prng.create 9 in
  let config = { Workload.horizon = 400; attempts = 10; slack = 10; interference_free = false } in
  Alcotest.check_raises "bad burst"
    (Invalid_argument "Workload.bursty: need 0 < burst_width <= period") (fun () ->
      ignore
        (Workload.bursty config ~rng ~graph:g ~cost:Cost.length ~num_flows:1 ~period:10
           ~burst_width:20))


(* ------------------------------------------------------------------ *)
(* Queueing disciplines                                                *)

let queueing_workload seed =
  let _, g, _ = overlay_instance seed in
  let rng = Prng.create seed in
  let config = { Workload.horizon = 300; attempts = 0; slack = 0; interference_free = false } in
  (g, Workload.path_flows config ~rng ~graph:g ~cost:Cost.length ~num_flows:3 ~rate:0.3)

let test_queueing_all_delivered =
  qtest "every discipline eventually delivers everything" ~count:15 seed_gen (fun seed ->
      let g, w = queueing_workload seed in
      List.for_all
        (fun d ->
          let s = Queueing.run ~cooldown:2000 ~graph:g ~cost:Cost.length d w in
          s.Queueing.delivered = s.Queueing.injected)
        [
          Queueing.Fifo;
          Queueing.Lifo;
          Queueing.Furthest_to_go;
          Queueing.Nearest_to_go;
          Queueing.Longest_in_system;
        ])

let test_queueing_injection_counts =
  qtest "injected matches the workload paths" ~count:15 seed_gen (fun seed ->
      let g, w = queueing_workload seed in
      let expected = Array.fold_left (fun a l -> a + List.length l) 0 w.Workload.paths in
      let s = Queueing.run ~graph:g ~cost:Cost.length Queueing.Fifo w in
      s.Queueing.injected = expected && s.Queueing.delivered <= expected)

let test_queueing_single_path () =
  (* One flow on a line: FIFO latency equals path length once uncontended. *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  let horizon = 10 in
  let injections = Array.make horizon [] in
  let paths = Array.make horizon [] in
  injections.(0) <- [ (0, 2) ];
  paths.(0) <- [ (0, 2, [ 0; 1 ]) ];
  let w =
    {
      Workload.horizon;
      injections;
      paths;
      activations = Array.make horizon [];
      opt =
        {
          Workload.deliveries = 1;
          total_cost = 2.;
          avg_cost = 2.;
          avg_hops = 2.;
          max_buffer = 1;
          delta = 1;
        };
    }
  in
  let s = Queueing.run ~cooldown:10 ~graph:g ~cost:Cost.length Queueing.Fifo w in
  Alcotest.(check int) "delivered" 1 s.Queueing.delivered;
  check_close "two edge costs" 2. s.Queueing.total_cost;
  (* Injected at end of step 0; crosses at steps 1 and 2. *)
  check_close "latency" 2. s.Queueing.avg_latency

let test_queueing_ftg_priority () =
  (* Two packets contend at node 1 for edge (1,2): FTG sends the one with
     more remaining hops first. *)
  let g = Graph.of_edges ~n:4 [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.) ] in
  let horizon = 5 in
  let injections = Array.make horizon [] in
  let paths = Array.make horizon [] in
  injections.(0) <- [ (1, 3); (1, 2) ];
  (* Long packet listed second: discipline, not insertion order, must pick. *)
  paths.(0) <- [ (1, 2, [ 1 ]); (1, 3, [ 1; 2 ]) ];
  let w =
    {
      Workload.horizon;
      injections;
      paths;
      activations = Array.make horizon [];
      opt =
        {
          Workload.deliveries = 2;
          total_cost = 3.;
          avg_cost = 1.5;
          avg_hops = 1.5;
          max_buffer = 2;
          delta = 1;
        };
    }
  in
  let run d = Queueing.run ~cooldown:10 ~graph:g ~cost:Cost.length d w in
  let ftg = run Queueing.Furthest_to_go in
  let ntg = run Queueing.Nearest_to_go in
  Alcotest.(check int) "both delivered (ftg)" 2 ftg.Queueing.delivered;
  Alcotest.(check int) "both delivered (ntg)" 2 ntg.Queueing.delivered;
  (* FTG: long packet goes first, so total latency is smaller for it. *)
  Alcotest.(check bool) "ftg latency <= ntg latency" true
    (ftg.Queueing.avg_latency <= ntg.Queueing.avg_latency +. 1e-9)

let test_queueing_names () =
  Alcotest.(check string) "fifo" "FIFO" (Queueing.discipline_name Queueing.Fifo);
  Alcotest.(check string) "ftg" "FTG" (Queueing.discipline_name Queueing.Furthest_to_go)


(* ------------------------------------------------------------------ *)
(* Anycast                                                             *)

let test_anycast_line () =
  (* Line 0-1-2-3-4; group {0, 4}: packets from 1 go left, from 3 go right. *)
  let g =
    Graph.of_edges ~n:5 [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.); (3, 4, 1.) ]
  in
  let params = Balancing.params ~threshold:0. ~gamma:0. ~capacity:10 in
  let injections t = if t = 0 then [ (1, 0); (3, 0) ] else [] in
  let s =
    Anycast.run ~cooldown:20 ~graph:g ~cost:Cost.length ~params
      ~groups:[| [| 0; 4 |] |] ~injections ~horizon:5 ()
  in
  Alcotest.(check int) "both delivered" 2 s.Anycast.delivered;
  Alcotest.(check int) "one hop each" 2 s.Anycast.sends;
  let absorbed v = Option.value ~default:0 (List.assoc_opt v s.Anycast.per_member) in
  Alcotest.(check int) "left sink" 1 (absorbed 0);
  Alcotest.(check int) "right sink" 1 (absorbed 4)

let test_anycast_conservation =
  qtest "anycast conserves packets" ~count:15 seed_gen (fun seed ->
      let _, g, c = overlay_instance seed in
      let n = Graph.n g in
      QCheck2.assume (n >= 4);
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:30 in
      let rng = Prng.create seed in
      let groups = [| [| 0 |]; [| 1; 2 |] |] in
      let injections t =
        if t < 100 then [ (Prng.int rng n, Prng.int rng 2) ] else []
      in
      let s =
        Anycast.run ~cooldown:300 ~pad:c ~graph:g ~cost:Cost.length ~params ~groups
          ~injections ~horizon:100 ()
      in
      s.Anycast.injected = s.Anycast.delivered + s.Anycast.remaining
      && List.for_all (fun (v, _) -> v <= 2) s.Anycast.per_member)

let test_anycast_injection_at_member () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1.) ] in
  let params = Balancing.params ~threshold:0. ~gamma:0. ~capacity:10 in
  let injections t = if t = 0 then [ (1, 0) ] else [] in
  let s =
    Anycast.run ~graph:g ~cost:Cost.length ~params ~groups:[| [| 1 |] |] ~injections
      ~horizon:3 ()
  in
  Alcotest.(check int) "absorbed immediately" 1 s.Anycast.delivered;
  Alcotest.(check int) "no transmissions" 0 s.Anycast.sends

let test_anycast_validation () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1.) ] in
  let params = Balancing.params ~threshold:0. ~gamma:0. ~capacity:10 in
  Alcotest.check_raises "empty group" (Invalid_argument "Anycast.run: empty group")
    (fun () ->
      ignore
        (Anycast.run ~graph:g ~cost:Cost.length ~params ~groups:[| [||] |]
           ~injections:(fun _ -> [])
           ~horizon:1 ()))


(* ------------------------------------------------------------------ *)
(* Time-varying edge costs                                             *)

let test_dynamic_costs_steer_packets () =
  (* Diamond: 0 -(1)- {1,2} -(1)- 3.  The adversary makes the top route
     expensive in phase A and the bottom route expensive in phase B; the
     balancing rule must route around whichever side is costly. *)
  let g =
    Graph.of_edges ~n:4 [ (0, 1, 1.); (1, 3, 1.); (0, 2, 1.); (2, 3, 1.) ]
  in
  (* edge ids: 0 = (0,1) top-in, 1 = (1,3) top-out, 2 = (0,2), 3 = (2,3). *)
  let top = [ 0; 1 ] in
  let horizon = 400 in
  let injections = Array.make horizon [] in
  for t = 0 to horizon - 1 do
    if t mod 2 = 0 then injections.(t) <- [ (0, 3) ]
  done;
  let w =
    {
      Workload.horizon;
      injections;
      paths = Array.make horizon [];
      activations = Array.make horizon [ 0; 1; 2; 3 ];
      opt =
        {
          Workload.deliveries = 200;
          total_cost = 400.;
          avg_cost = 2.;
          avg_hops = 2.;
          max_buffer = 2;
          delta = 2;
        };
    }
  in
  let params = Balancing.params ~threshold:1. ~gamma:1. ~capacity:50 in
  let run_with ~expensive_top =
    let cost_at ~step:_ ~edge =
      if List.mem edge top = expensive_top then 20. else 1.
    in
    Engine.run_mac_given ~cooldown:400 ~cost_at ~graph:g ~cost:Cost.length ~params w
  in
  let a = run_with ~expensive_top:true in
  let b = run_with ~expensive_top:false in
  (* Both deliver; the expensive side is avoided, so total cost is close to
     the cheap-route cost (2 per packet), far from the expensive one. *)
  Alcotest.(check bool) "A delivers most" true (a.Engine.delivered > 150);
  Alcotest.(check bool) "B delivers most" true (b.Engine.delivered > 150);
  let per_pkt (s : Engine.stats) = s.Engine.total_cost /. float_of_int s.Engine.delivered in
  Alcotest.(check bool) "A avoids the expensive top" true (per_pkt a < 5.);
  Alcotest.(check bool) "B avoids the expensive bottom" true (per_pkt b < 5.)

let test_dynamic_costs_default_matches_static () =
  let _, g, c = overlay_instance 3 in
  let rng = Prng.create 3 in
  let w =
    Workload.flows ~conflict:c
      { workload_config with Workload.interference_free = true }
      ~rng ~graph:g ~cost:Cost.length ~num_flows:2
  in
  let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
  let plain = Engine.run_mac_given ~cooldown:100 ~graph:g ~cost:Cost.length ~params w in
  let via_hook =
    Engine.run_mac_given ~cooldown:100
      ~cost_at:(fun ~step:_ ~edge -> Cost.length (Graph.length g edge))
      ~graph:g ~cost:Cost.length ~params w
  in
  Alcotest.(check bool) "identical stats" true (plain = via_hook)


(* ------------------------------------------------------------------ *)
(* Quantized control exchange                                          *)

let test_quantized_zero_matches_engine =
  qtest "quantum 0 = continuous exchange = plain engine" ~count:10 seed_gen (fun seed ->
      let _, g, c = overlay_instance seed in
      let rng = Prng.create seed in
      let w =
        Workload.flows ~conflict:c
          { workload_config with Workload.interference_free = true }
          ~rng ~graph:g ~cost:Cost.length ~num_flows:2
      in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      let plain = Engine.run_mac_given ~cooldown:200 ~pad:c ~graph:g ~cost:Cost.length ~params w in
      let q0 =
        Quantized_engine.run_mac_given ~cooldown:200 ~pad:c ~quantum:0 ~graph:g
          ~cost:Cost.length ~params w
      in
      q0.Quantized_engine.base.Engine.delivered = plain.Engine.delivered
      && q0.Quantized_engine.base.Engine.sends = plain.Engine.sends)

let test_quantized_control_monotone =
  qtest "control traffic falls as the quantum grows" ~count:10 seed_gen (fun seed ->
      let _, g, c = overlay_instance seed in
      let rng = Prng.create seed in
      let w =
        Workload.flows ~conflict:c
          { workload_config with Workload.interference_free = true }
          ~rng ~graph:g ~cost:Cost.length ~num_flows:2
      in
      let params = Balancing.params ~threshold:2. ~gamma:0.1 ~capacity:50 in
      let ctrl q =
        (Quantized_engine.run_mac_given ~cooldown:100 ~pad:c ~quantum:q ~graph:g
           ~cost:Cost.length ~params w)
          .Quantized_engine.control_messages
      in
      ctrl 0 >= ctrl 2 && ctrl 2 >= ctrl 8)

let test_quantized_conservation =
  qtest "quantized engine conserves packets" ~count:10 seed_gen (fun seed ->
      let _, g, c = overlay_instance seed in
      let rng = Prng.create (seed + 4) in
      let w =
        Workload.flows ~conflict:c
          { workload_config with Workload.interference_free = true }
          ~rng ~graph:g ~cost:Cost.length ~num_flows:2
      in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      let s =
        Quantized_engine.run_mac_given ~cooldown:200 ~pad:c ~quantum:3 ~graph:g
          ~cost:Cost.length ~params w
      in
      s.Quantized_engine.base.Engine.injected
      = s.Quantized_engine.base.Engine.delivered + s.Quantized_engine.base.Engine.remaining)


(* ------------------------------------------------------------------ *)
(* Parallel decision fan-out: decide-parallel / apply-sequential must
   reproduce the sequential path bit-for-bit at every pool size — not
   just the aggregate stats but the full observable record: the
   adhoc-events/1 log bytes and the adhoc-live/1 snapshot stream. *)

module Pool = Adhoc_util.Pool

let jobs_sweep =
  let base = [ 1; 2; 4 ] in
  let e = env_jobs () in
  if List.mem e base then base else base @ [ e ]

(* Run [f] against a sink carrying a fresh event log and live recorder;
   return its result plus both streams' JSONL bytes (round-tripped
   through a scratch file — the writers are out_channel based). *)
let with_streams f =
  let events = Adhoc_obs.Event.create () in
  let live = Adhoc_obs.Live.create ~window:25 () in
  let sink = Adhoc_obs.create ~events ~live () in
  let result = f sink in
  let tmp = Filename.temp_file "adhoc-par" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let slurp file =
        let ic = open_in_bin file in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      Adhoc_obs.Event.save_jsonl events tmp;
      let ev = slurp tmp in
      Adhoc_obs.Live.save_jsonl live tmp;
      let lv = slurp tmp in
      (result, ev, lv))

let pool_invariant run =
  let reference = with_streams (fun sink -> run ~obs:sink ~pool:None) in
  List.for_all
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          with_streams (fun sink -> run ~obs:sink ~pool:(Some p)) = reference))
    jobs_sweep

let par_workload seed c g =
  let rng = Prng.create seed in
  Workload.flows ~conflict:c
    { workload_config with Workload.interference_free = true }
    ~rng ~graph:g ~cost:Cost.length ~num_flows:2

let test_engine_pool_invariant =
  qtest "mac-given engine jobs-invariant (stats, events, live)" ~count:10 seed_gen
    (fun seed ->
      let _, g, c = overlay_instance seed in
      let w = par_workload seed c g in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      pool_invariant (fun ~obs ~pool ->
          Engine.run_mac_given ~cooldown:100 ~obs ?pool ~pad:c ~graph:g ~cost:Cost.length
            ~params w))

let test_engine_mac_pool_invariant =
  qtest "random-MAC engine jobs-invariant (stats, events, live)" ~count:10 seed_gen
    (fun seed ->
      let _, g, c = overlay_instance seed in
      let rng = Prng.create seed in
      let w = Workload.flows workload_config ~rng ~graph:g ~cost:Cost.length ~num_flows:2 in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      pool_invariant (fun ~obs ~pool ->
          (* A fresh identically-seeded MAC per run: the MAC draw is part
             of the replayed input, not of the engine under test. *)
          let mac = Mac.random_interference ~rng:(Prng.create (seed + 1)) c in
          Engine.run_with_mac ~cooldown:100 ~obs ?pool ~collisions:c ~graph:g
            ~cost:Cost.length ~params ~mac w))

let test_dynamic_pool_invariant =
  qtest "dynamic engine jobs-invariant (stats, events, live)" ~count:10 seed_gen
    (fun seed ->
      let _, g, c = overlay_instance seed in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:20 in
      let rng = Prng.create (seed + 1) in
      let n = Graph.n g in
      let flow = (Prng.int rng n, Prng.int rng n) in
      let flow' = (Prng.int rng n, Prng.int rng n) in
      let injections t =
        if t >= 150 then [] else if t mod 3 = 0 then [ flow ] else [ flow' ]
      in
      pool_invariant (fun ~obs ~pool ->
          Dynamic_engine.run ~obs ?pool
            ~epochs:[ { Dynamic_engine.graph = g; conflict = c; steps = 300 } ]
            ~injections ~cost:Cost.length ~params ()))

let test_quantized_pool_invariant =
  qtest "quantized engine jobs-invariant (stats, events, live)" ~count:10 seed_gen
    (fun seed ->
      let _, g, c = overlay_instance seed in
      let w = par_workload seed c g in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      List.for_all
        (fun quantum ->
          pool_invariant (fun ~obs ~pool ->
              Quantized_engine.run_mac_given ~cooldown:100 ~obs ?pool ~pad:c ~quantum
                ~graph:g ~cost:Cost.length ~params w))
        [ 0; 2 ])

let test_tracked_pool_invariant =
  qtest "tracked engine jobs-invariant (stats, events, live)" ~count:10 seed_gen
    (fun seed ->
      let _, g, c = overlay_instance seed in
      let w = par_workload seed c g in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      pool_invariant (fun ~obs ~pool ->
          Tracked_engine.run_mac_given ~cooldown:100 ~obs ?pool ~pad:c ~graph:g
            ~cost:Cost.length ~params w))

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)

(* Regression: a run that delivers nothing must not report a *perfect*
   ratio.  cost_ratio is undefined (nan) without deliveries; throughput
   against an empty OPT is 0, not 1. *)
let test_ratios_edge_cases () =
  let stats =
    {
      Engine.steps = 10;
      injected = 0;
      dropped = 0;
      delivered = 0;
      sends = 0;
      failed_sends = 0;
      total_cost = 0.;
      peak_height = 0;
      remaining = 0;
    }
  in
  let opt_zero =
    { Workload.deliveries = 0; total_cost = 0.; avg_cost = 0.; avg_hops = 0.; max_buffer = 1; delta = 1 }
  in
  check_close "tput with opt=0" 0. (Engine.throughput_ratio stats opt_zero);
  Alcotest.(check bool) "cost undefined with no deliveries" true
    (Float.is_nan (Engine.cost_ratio stats opt_zero));
  let opt =
    { opt_zero with Workload.deliveries = 10; avg_cost = 2. }
  in
  check_close "tput zero" 0. (Engine.throughput_ratio stats opt);
  Alcotest.(check bool) "no deliveries, real OPT: still undefined" true
    (Float.is_nan (Engine.cost_ratio stats opt));
  (* Costs spent on failed sends alone must not look perfect either. *)
  let wasted = { stats with Engine.sends = 7; failed_sends = 7; total_cost = 30. } in
  Alcotest.(check bool) "wasted cost, no deliveries: undefined" true
    (Float.is_nan (Engine.cost_ratio wasted opt));
  let stats = { stats with Engine.delivered = 5; total_cost = 30. } in
  check_close "tput half" 0.5 (Engine.throughput_ratio stats opt);
  check_close "cost ratio 3" 3. (Engine.cost_ratio stats opt)

let test_flows_max_hops_honored =
  qtest "max_hops flows stay short when short pairs exist" ~count:20 seed_gen (fun seed ->
      let _, g, _ = overlay_instance seed in
      QCheck2.assume (Graph.n g >= 8);
      let rng = Prng.create seed in
      let config = { workload_config with Workload.horizon = 100; attempts = 50 } in
      let w =
        Workload.flows ~max_hops:2 config ~rng ~graph:g ~cost:Cost.length ~num_flows:3
      in
      (* Every injected pair should be within 2 hops (the retry budget is
         generous and small graphs always have adjacent pairs). *)
      Array.for_all
        (fun l ->
          List.for_all
            (fun (src, dst) -> (Adhoc_graph.Bfs.hops g ~src).(dst) <= 2)
            l)
        w.Workload.injections)

let test_workload_bad_configs () =
  let _, g, _ = overlay_instance 2 in
  let rng = Prng.create 2 in
  Alcotest.check_raises "zero horizon"
    (Invalid_argument "Workload.generate: horizon must be positive") (fun () ->
      ignore
        (Workload.generate
           { Workload.horizon = 0; attempts = 1; slack = 1; interference_free = false }
           ~rng ~graph:g ~cost:Cost.length));
  Alcotest.check_raises "interference-free needs conflict"
    (Invalid_argument "Workload.generate: interference_free requires a conflict structure")
    (fun () ->
      ignore
        (Workload.generate
           { Workload.horizon = 10; attempts = 1; slack = 1; interference_free = true }
           ~rng ~graph:g ~cost:Cost.length));
  Alcotest.check_raises "path_flows bad rate"
    (Invalid_argument "Workload.path_flows: rate must be in (0,1]") (fun () ->
      ignore
        (Workload.path_flows
           { Workload.horizon = 10; attempts = 0; slack = 0; interference_free = false }
           ~rng ~graph:g ~cost:Cost.length ~num_flows:1 ~rate:0.))

(* ------------------------------------------------------------------ *)
(* Pinned stats: the incremental decision cache, conflict-adjacency MAC
   and scratch-array rewrites must reproduce the original engine
   bit-for-bit.  These values were recorded from the pre-rewrite engine
   on a fixed instance (uniform seed 77, n = 24). *)

let pinned_instance () =
  let points = Adhoc_pointset.Generators.uniform (Prng.create 77) 24 in
  let range = 2. *. Udg.critical_range points in
  let g = Theta_alg.overlay (Theta_alg.build ~theta:(Float.pi /. 6.) ~range points) in
  let c = Conflict.build (Model.make ~delta:0.5) ~points g in
  (g, c)

let check_pinned name (s : Engine.stats) ~injected ~dropped ~delivered ~sends ~failed
    ~cost ~peak ~remaining =
  Alcotest.(check int) (name ^ ": steps") 500 s.Engine.steps;
  Alcotest.(check int) (name ^ ": injected") injected s.Engine.injected;
  Alcotest.(check int) (name ^ ": dropped") dropped s.Engine.dropped;
  Alcotest.(check int) (name ^ ": delivered") delivered s.Engine.delivered;
  Alcotest.(check int) (name ^ ": sends") sends s.Engine.sends;
  Alcotest.(check int) (name ^ ": failed") failed s.Engine.failed_sends;
  check_close ~eps:1e-12 (name ^ ": cost") cost s.Engine.total_cost;
  Alcotest.(check int) (name ^ ": peak") peak s.Engine.peak_height;
  Alcotest.(check int) (name ^ ": remaining") remaining s.Engine.remaining

let pinned_params = lazy (Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50)

let test_engine_pinned_given () =
  let g, c = pinned_instance () in
  let config =
    { Workload.horizon = 300; attempts = 200; slack = 10; interference_free = true }
  in
  let w =
    Workload.flows ~conflict:c config ~rng:(Prng.create 77) ~graph:g ~cost:Cost.length
      ~num_flows:2
  in
  let s =
    Engine.run_mac_given ~cooldown:200 ~pad:c ~graph:g ~cost:Cost.length
      ~params:(Lazy.force pinned_params) w
  in
  check_pinned "given+pad" s ~injected:155 ~dropped:0 ~delivered:132 ~sends:296 ~failed:0
    ~cost:80.380614734523775 ~peak:7 ~remaining:23

let pinned_mac_workload (g, _c) =
  let config =
    { Workload.horizon = 300; attempts = 200; slack = 10; interference_free = false }
  in
  Workload.flows config ~rng:(Prng.create 78) ~graph:g ~cost:Cost.length ~num_flows:2

let test_engine_pinned_csma () =
  let g, c = pinned_instance () in
  let w = pinned_mac_workload (g, c) in
  let mac = Mac.csma ~rng:(Prng.create 79) c in
  let s =
    Engine.run_with_mac ~cooldown:200 ~collisions:c ~graph:g ~cost:Cost.length
      ~params:(Lazy.force pinned_params) ~mac w
  in
  check_pinned "csma+collisions" s ~injected:200 ~dropped:0 ~delivered:152 ~sends:279
    ~failed:0 ~cost:74.551424651997593 ~peak:6 ~remaining:48

let test_engine_pinned_random_mac () =
  let g, c = pinned_instance () in
  let w = pinned_mac_workload (g, c) in
  let mac = Mac.random_interference ~rng:(Prng.create 80) c in
  let s =
    Engine.run_with_mac ~cooldown:200 ~collisions:c ~graph:g ~cost:Cost.length
      ~params:(Lazy.force pinned_params) ~mac w
  in
  check_pinned "random-mac" s ~injected:123 ~dropped:77 ~delivered:6 ~sends:59 ~failed:4
    ~cost:14.846177076478661 ~peak:50 ~remaining:117

let () =
  Alcotest.run "routing"
    [
      ( "buffers",
        [
          case "inject cap" test_buffers_inject_cap;
          case "remove" test_buffers_remove;
          case "force add" test_buffers_force_add;
          test_buffers_nonzero_iteration;
          case "incremental max height" test_buffers_max_height_incremental;
          case "watcher" test_buffers_watcher;
          test_buffers_matrix_oracle;
          test_sparse_matrix_oracle;
        ] );
      ( "balancing",
        [
          case "argmax" test_balancing_picks_argmax;
          case "strict threshold" test_balancing_threshold_strict;
          case "apply" test_balancing_apply;
          case "best either" test_balancing_best_either;
          test_balancing_order_independent;
          test_balancing_matches_oracle;
          test_balancing_apply_conserves;
          case "derive 3.1" test_derive_3_1;
          case "derive 3.3" test_derive_3_3;
          case "epsilon monotone" test_derive_epsilon_monotone;
          case "validation" test_params_validation;
        ] );
      ( "workload",
        [
          test_workload_counts;
          test_workload_activations_unique;
          test_workload_interference_free;
          test_workload_stats_sane;
          case "flows concentrate" test_workload_flows_concentrate;
          case "single destination" test_workload_single_destination;
        ] );
      ( "engine",
        [
          test_engine_conservation;
          test_engine_mac_conservation;
          case "line delivers" test_engine_line_delivers;
          case "deterministic" test_engine_deterministic;
          case "capacity drops" test_engine_capacity_drops;
          case "cost accounting" test_cost_accounting;
          case "pinned stats: given+pad" test_engine_pinned_given;
          case "pinned stats: csma" test_engine_pinned_csma;
          case "pinned stats: random mac" test_engine_pinned_random_mac;
        ] );
      ( "tracked",
        [
          case "packet lifecycle" test_packet_lifecycle;
          case "matches engine" test_tracked_engine_matches_engine;
          case "latency metrics" test_tracked_engine_latency;
          test_tracked_engine_random;
        ] );
      ( "dynamic",
        [
          test_dynamic_engine_static_equals_epochs;
          case "survives partition" test_dynamic_engine_survives_partition;
          test_dynamic_engine_conservation;
          case "epoch_of_points" test_epoch_of_points;
          case "bursty windows" test_bursty_workload;
          case "bursty validation" test_bursty_validation;
        ] );
      ( "edge-cases",
        [
          case "ratio edge cases" test_ratios_edge_cases;
          test_flows_max_hops_honored;
          case "bad configs rejected" test_workload_bad_configs;
        ] );
      ( "quantized",
        [
          test_quantized_zero_matches_engine;
          test_quantized_control_monotone;
          test_quantized_conservation;
        ] );
      ( "parallel",
        [
          test_engine_pool_invariant;
          test_engine_mac_pool_invariant;
          test_dynamic_pool_invariant;
          test_quantized_pool_invariant;
          test_tracked_pool_invariant;
        ] );
      ( "dynamic-costs",
        [
          case "costs steer packets" test_dynamic_costs_steer_packets;
          case "hook defaults to static" test_dynamic_costs_default_matches_static;
        ] );
      ( "anycast",
        [
          case "line with two sinks" test_anycast_line;
          test_anycast_conservation;
          case "inject at member" test_anycast_injection_at_member;
          case "validation" test_anycast_validation;
        ] );
      ( "queueing",
        [
          test_queueing_all_delivered;
          test_queueing_injection_counts;
          case "single path" test_queueing_single_path;
          case "FTG priority" test_queueing_ftg_priority;
          case "names" test_queueing_names;
        ] );
      ( "geo",
        [
          test_geo_greedy_route_valid;
          test_geo_face_delivers;
          case "route metrics" test_geo_route_metrics;
          case "local minimum recovery" test_geo_local_minimum;
          test_geo_success_rate_bounds;
        ] );
    ]
