module Svg = Adhoc_viz.Svg
module Render = Adhoc_viz.Render
module Dot = Adhoc_viz.Dot
module Box = Adhoc_geom.Box
open Helpers

let count_occurrences haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i acc =
    if i + nn > nh then acc
    else if String.sub haystack i nn = needle then scan (i + nn) (acc + 1)
    else scan (i + 1) acc
  in
  scan 0 0

let sample_instance () =
  let rng = Prng.create 3 in
  let points = Adhoc_pointset.Generators.uniform rng 30 in
  let range = 1.5 *. Adhoc_topo.Udg.critical_range points in
  let g = Adhoc_topo.Udg.build ~range points in
  (points, range, g)

let test_svg_document () =
  let svg = Svg.create ~width:400 ~world:Box.unit_square () in
  Svg.circle svg (Point.make 0.5 0.5) 0.1;
  Svg.line svg (Point.make 0. 0.) (Point.make 1. 1.);
  Svg.polyline svg [ Point.make 0. 0.; Point.make 0.5 0.5; Point.make 1. 0. ];
  Svg.polygon svg ~fill:"red" [ Point.make 0. 0.; Point.make 1. 0.; Point.make 0.5 1. ];
  Svg.text svg (Point.make 0.1 0.9) "a<b&c";
  let s = Svg.to_string svg in
  Alcotest.(check bool) "svg root" true (contains s "<svg xmlns");
  Alcotest.(check bool) "closes" true (contains s "</svg>");
  Alcotest.(check int) "one circle" 1 (count_occurrences s "<circle");
  Alcotest.(check int) "one line" 1 (count_occurrences s "<line");
  Alcotest.(check bool) "escaped text" true (contains s "a&lt;b&amp;c")

let test_svg_y_flip () =
  (* A point at the top of the world must have a *small* pixel y. *)
  let svg = Svg.create ~margin:0. ~width:100 ~world:Box.unit_square () in
  Svg.circle svg (Point.make 0.5 1.0) 0.01;
  let s = Svg.to_string svg in
  Alcotest.(check bool) "top maps to y=0" true (contains s "cy=\"0.00\"")

let test_svg_save () =
  let svg = Svg.create ~width:200 ~world:Box.unit_square () in
  Svg.circle svg (Point.make 0.5 0.5) 0.05;
  let path = Filename.temp_file "adhoc_test" ".svg" in
  Svg.save svg path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 100)

let test_render_topology () =
  let points, _, g = sample_instance () in
  let svg = Render.topology points g ~highlight:[ 0; 1 ] in
  let s = Svg.to_string svg in
  (* 30 node circles + 2 highlight circles. *)
  Alcotest.(check int) "circles" 32 (count_occurrences s "<circle");
  Alcotest.(check int) "edges" (Adhoc_graph.Graph.num_edges g) (count_occurrences s "<line");
  Alcotest.(check int) "highlight path" 1 (count_occurrences s "<polyline")

let test_render_overlay_comparison () =
  let points, range, g = sample_instance () in
  let sub = Adhoc_topo.Theta_alg.overlay (Adhoc_topo.Theta_alg.build ~theta:(Float.pi /. 6.) ~range points) in
  let s = Svg.to_string (Render.overlay_comparison points ~base:g ~sub) in
  Alcotest.(check int) "both edge sets drawn"
    (Adhoc_graph.Graph.num_edges g + Adhoc_graph.Graph.num_edges sub)
    (count_occurrences s "<line")

let test_render_interference () =
  let points, _, g = sample_instance () in
  QCheck2.assume (Adhoc_graph.Graph.num_edges g > 0);
  let s = Svg.to_string (Render.interference_region ~delta:0.5 points g ~edge:0) in
  (* Two shaded discs plus the node dots. *)
  Alcotest.(check bool) "has shaded region" true
    (count_occurrences s "<circle" >= Array.length points + 2);
  Alcotest.(check bool) "has dashes" true (contains s "stroke-dasharray")

let test_render_hexagons () =
  let rng = Prng.create 4 in
  let points = Adhoc_pointset.Generators.uniform ~box:(Box.square 10.) rng 40 in
  let s = Svg.to_string (Render.hexagons ~side:2. points) in
  Alcotest.(check bool) "many hexagons" true (count_occurrences s "<polygon" > 10)

let test_dot_output () =
  let points, _, g = sample_instance () in
  let dot = Dot.of_graph points g in
  Alcotest.(check bool) "graph header" true (contains dot "graph topology {");
  Alcotest.(check int) "node lines" (Array.length points) (count_occurrences dot "pos=");
  Alcotest.(check int) "edge lines" (Adhoc_graph.Graph.num_edges g) (count_occurrences dot " -- ");
  let path = Filename.temp_file "adhoc_test" ".dot" in
  Dot.save points g path;
  Alcotest.(check bool) "file written" true (Sys.file_exists path);
  Sys.remove path


(* ------------------------------------------------------------------ *)
(* Persist                                                             *)

module Persist = Adhoc_io.Persist

let test_persist_roundtrip =
  qtest "network round-trips exactly" ~count:50 seed_gen (fun seed ->
      let points, _, g = (fun () ->
        let rng = Prng.create seed in
        let points = Adhoc_pointset.Generators.uniform rng (5 + Prng.int rng 40) in
        let range = 1.5 *. Adhoc_topo.Udg.critical_range points in
        (points, range, Adhoc_topo.Udg.build ~range points)) ()
      in
      let net = { Persist.points; graph = g } in
      let back = Persist.of_string (Persist.to_string net) in
      back.Persist.points = points
      && edge_set back.Persist.graph = edge_set g
      && Adhoc_graph.Graph.fold_edges back.Persist.graph ~init:true ~f:(fun acc id e ->
             acc && e.Adhoc_graph.Graph.len = Adhoc_graph.Graph.length g id))

let test_persist_file () =
  let points = [| Point.make 0.25 0.75; Point.make 0.5 0.5 |] in
  let g = Adhoc_graph.Graph.geometric points [ (0, 1) ] in
  let path = Filename.temp_file "adhoc_net" ".txt" in
  Persist.save { Persist.points; graph = g } path;
  let back = Persist.load path in
  Sys.remove path;
  Alcotest.(check bool) "points survive" true (back.Persist.points = points);
  Alcotest.(check int) "edges survive" 1 (Adhoc_graph.Graph.num_edges back.Persist.graph)

let test_persist_malformed () =
  List.iter
    (fun input ->
      match Persist.of_string input with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" input)
    [ ""; "wrong"; "adhoc-network 1\nnodes x"; "adhoc-network 1\nnodes 1\n0.5" ]

let test_persist_points_only () =
  let s = Persist.points_to_string [| Point.make 1. 2. |] in
  let net = Persist.of_string s in
  Alcotest.(check int) "one node" 1 (Array.length net.Persist.points);
  Alcotest.(check int) "no edges" 0 (Adhoc_graph.Graph.num_edges net.Persist.graph)


(* ------------------------------------------------------------------ *)
(* Chart                                                               *)

module Chart = Adhoc_viz.Chart

let test_chart_structure () =
  let s1 = Chart.series ~color:"#123456" ~label:"a" [| (0., 0.); (1., 2.); (2., 1.) |] in
  let s2 = Chart.series ~label:"b" [| (0., 1.); (2., 3.) |] in
  let svg = Chart.render ~title:"t" ~x_label:"x" ~y_label:"y" [ s1; s2 ] in
  let out = Svg.to_string svg in
  (* 2 data polylines; axes and gridlines present; legend labels. *)
  Alcotest.(check int) "two series polylines" 2 (count_occurrences out "<polyline");
  Alcotest.(check bool) "series color used" true (contains out "#123456");
  Alcotest.(check bool) "legend a" true (contains out ">a</text>");
  Alcotest.(check bool) "legend b" true (contains out ">b</text>");
  Alcotest.(check bool) "title" true (contains out ">t</text>");
  Alcotest.(check bool) "gridlines" true (contains out "stroke-dasharray")

let test_chart_empty_rejected () =
  Alcotest.check_raises "no data" (Invalid_argument "Chart.render: no data points")
    (fun () -> ignore (Chart.render [ Chart.series ~label:"x" [||] ]))

let test_chart_save () =
  let path = Filename.temp_file "adhoc_chart" ".svg" in
  Chart.save [ Chart.series ~label:"s" [| (0., 1.); (1., 4.) |] ] path;
  Alcotest.(check bool) "written" true (Sys.file_exists path);
  Sys.remove path


let test_persist_fuzz =
  qtest "mutated documents never crash the parser" ~count:200 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let points = Adhoc_pointset.Generators.uniform rng 8 in
      let g = Adhoc_topo.Udg.build ~range:0.5 points in
      let doc = Persist.to_string { Persist.points; graph = g } in
      (* Flip a random byte (or truncate) and require a clean outcome:
         either a parse or a Failure — never another exception. *)
      let mutated =
        if Prng.bool rng then String.sub doc 0 (Prng.int rng (String.length doc))
        else begin
          let b = Bytes.of_string doc in
          Bytes.set b (Prng.int rng (Bytes.length b)) (Char.chr (32 + Prng.int rng 90));
          Bytes.to_string b
        end
      in
      match Persist.of_string mutated with
      | _ -> true
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "viz"
    [
      ( "svg",
        [
          case "document structure" test_svg_document;
          case "y axis flip" test_svg_y_flip;
          case "save" test_svg_save;
        ] );
      ( "render",
        [
          case "topology" test_render_topology;
          case "overlay comparison" test_render_overlay_comparison;
          case "interference region" test_render_interference;
          case "hexagons" test_render_hexagons;
        ] );
      ("dot", [ case "output" test_dot_output ]);
      ( "chart",
        [
          case "structure" test_chart_structure;
          case "empty rejected" test_chart_empty_rejected;
          case "save" test_chart_save;
        ] );
      ( "persist",
        [
          test_persist_roundtrip;
          case "file round-trip" test_persist_file;
          case "malformed rejected" test_persist_malformed;
          case "points only" test_persist_points_only;
          test_persist_fuzz;
        ] );
    ]
