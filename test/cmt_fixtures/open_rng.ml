(* open-evasion: a bare [bits ()] that resolves into Random. *)

open Random

let roll () = bits ()
