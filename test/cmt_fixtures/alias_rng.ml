(* Module-alias evasion: the Parsetree layer sees only [R.int], the cmt
   layer resolves it back to Random. *)

module R = Random

let roll () = R.int 6
