(* par-safety: a region body racing on a captured ref. *)

module Pool = Adhoc_util.Pool

let total = ref 0

let run pool n = Pool.parallel_for pool n (fun i -> total := !total + i)
