(* par-safety non-triggering twin: the sanctioned disjoint-cell idiom —
   each iteration writes only its own cell, indexed by the loop
   variable — and a pure parallel_init body. *)

module Pool = Adhoc_util.Pool

let squares pool n =
  let out = Array.make n 0 in
  Pool.parallel_for pool n (fun i -> out.(i) <- i * i);
  out

let doubled pool n = Pool.parallel_init pool n (fun i -> 2 * i)

(* A named local body: analyzed on demand from its definition. *)
let shifted pool n =
  let out = Array.make n 0 in
  let fill i = out.(i) <- i + 1 in
  Pool.parallel_for pool n fill;
  out
