(* Non-triggering twin: aliasing and opening benign modules, explicit
   state threading — the resolved layer must stay silent. *)

module A = Array

let sum xs = A.fold_left ( + ) 0 xs

let scaled r n = int_of_float (r *. float_of_int n)
