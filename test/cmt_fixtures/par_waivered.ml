(* par-safety with a waiver: the diagnostic fires, the waiver absorbs
   it, and the waiver counts as used. *)

module Pool = Adhoc_util.Pool

let count = ref 0

let run pool n =
  Pool.parallel_for pool n (fun i ->
      (* lint: allow par-safety -- deliberate racy counter exercising waiver flow *)
      count := !count + i)
