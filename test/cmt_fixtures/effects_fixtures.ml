(* Call-graph effect-inference corpus: one definition per lattice point,
   plus a transitive chain.  test_lint_cmt.ml golden-diffs the rendered
   summaries of this unit. *)

let pure_add a b = a + b

let local_sum n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  !acc

let bump r = incr r

let table : (int, int) Hashtbl.t = Hashtbl.create 16

let memo_put k v = Hashtbl.replace table k v

let buf = Array.make 4 0

let set_cell i v = buf.(i) <- v

let chatty x = print_endline x

let chain x = chatty x

let roll n = Random.int n

let must_pos n = if n < 0 then invalid_arg "must_pos" else n
