(* par-safety: a region body mutating a captured Hashtbl. *)

module Pool = Adhoc_util.Pool

let run pool n =
  let seen = Hashtbl.create 16 in
  Pool.parallel_for pool n (fun i -> Hashtbl.replace seen i i);
  Hashtbl.length seen
