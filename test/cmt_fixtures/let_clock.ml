(* let-bound alias evasion: the wall-clock primitive hides behind a
   value binding; the reference at the binding site still resolves. *)

let gettime = Unix.gettimeofday

let now () = gettime ()
