(* Functor evasion: inside the functor body the uses resolve to the
   parameter, so the banned identity only appears at the application
   site [Picker (Random)] — which the module-expression check flags. *)

module type RNG = sig
  val int : int -> int
end

module Picker (R : RNG) = struct
  let pick n = R.int n
end

module M = Picker (Random)

let choose n = M.pick n
