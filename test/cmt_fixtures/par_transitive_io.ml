(* par-safety: io reached transitively — the body itself is clean, the
   helper it calls prints. *)

module Pool = Adhoc_util.Pool

let log_row i = print_endline (string_of_int i)

let run pool n = Pool.parallel_for pool n (fun i -> if i mod 2 = 0 then log_row i)
