(* Shared helpers for the test suites. *)

module Prng = Adhoc_util.Prng
module Point = Adhoc_geom.Point

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* Random point sets driven by a qcheck-provided seed, so shrinking stays
   meaningful (the seed shrinks, regenerating smaller-entropy sets). *)
let points_of_seed ?(min_n = 4) ?(max_n = 40) seed =
  let rng = Prng.create seed in
  let n = min_n + Prng.int rng (max_n - min_n + 1) in
  Adhoc_pointset.Generators.uniform rng n

let seed_gen = QCheck2.Gen.int_bound 1_000_000

let close ?(eps = 1e-9) a b =
  a = b (* covers equal infinities *)
  || Float.abs (a -. b) <= eps *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let check_close ?(eps = 1e-9) msg expected actual =
  if not (close ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let edge_set g =
  Adhoc_graph.Graph.fold_edges g ~init:[] ~f:(fun acc _ e ->
      (e.Adhoc_graph.Graph.u, e.Adhoc_graph.Graph.v) :: acc)
  |> List.sort compare

let case name f = Alcotest.test_case name `Quick f

(* CI matrix knob: tests that exercise ?pool kernels run them with this
   many jobs (in addition to the explicit jobs ∈ {1, 2, 4} sweeps).
   Unset or unparsable means 2. *)
let env_jobs () =
  match Sys.getenv_opt "ADHOC_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some j when j >= 1 -> j | _ -> 2)
  | None -> 2

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0
