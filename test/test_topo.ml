open Adhoc_topo
module Graph = Adhoc_graph.Graph
module Cost = Adhoc_graph.Cost
module Components = Adhoc_graph.Components
module Stretch = Adhoc_graph.Stretch
module Sector = Adhoc_geom.Sector
open Helpers

let theta_default = Float.pi /. 6.

(* A connected instance: random points with range = 2 x critical. *)
let instance seed =
  let points = points_of_seed ~min_n:4 ~max_n:40 seed in
  let range = 2. *. Udg.critical_range points in
  (points, range)

(* ------------------------------------------------------------------ *)
(* Udg                                                                 *)

let test_udg_matches_brute =
  qtest "disk graph edges = brute force" ~count:100 seed_gen (fun seed ->
      let rng = Prng.create (seed + 17) in
      let points = points_of_seed seed in
      let range = Prng.range rng 0.05 1.2 in
      let g = Udg.build ~range points in
      let n = Array.length points in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let expected = Point.dist points.(u) points.(v) <= range in
          if Graph.mem_edge g u v <> expected then ok := false
        done
      done;
      !ok)

let test_critical_range_threshold =
  qtest "critical range is the connectivity threshold" ~count:60 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:3 seed in
      let r = Udg.critical_range points in
      Components.is_connected (Udg.build ~range:r points)
      && not (Components.is_connected (Udg.build ~range:(r *. 0.999) points)))

let test_udg_zero_range () =
  let points = [| Point.origin; Point.make 1. 0. |] in
  Alcotest.(check int) "no edges" 0 (Graph.num_edges (Udg.build ~range:0. points))

(* ------------------------------------------------------------------ *)
(* Yao                                                                 *)

let test_yao_selection_is_nearest_per_sector =
  qtest "N(u) = nearest node per sector" ~count:100 seed_gen (fun seed ->
      let points, range = instance seed in
      let n = Array.length points in
      let sel = Yao.selections ~theta:theta_default ~range points in
      let ok = ref true in
      for u = 0 to n - 1 do
        (* Brute force: nearest in-range node per sector. *)
        let sectors = Sector.count theta_default in
        let best = Array.make sectors (-1) in
        for v = 0 to n - 1 do
          if v <> u && Point.dist points.(u) points.(v) <= range then begin
            let s = Sector.index ~theta:theta_default ~apex:points.(u) points.(v) in
            if best.(s) = -1 || Yao.closer points u v best.(s) then best.(s) <- v
          end
        done;
        let expected =
          Array.to_list best |> List.filter (fun v -> v >= 0) |> List.sort_uniq compare
        in
        if Array.to_list sel.(u) <> expected then ok := false
      done;
      !ok)

let test_yao_out_degree_bound =
  qtest "selection count <= sector count" ~count:100 seed_gen (fun seed ->
      let points, range = instance seed in
      let sel = Yao.selections ~theta:theta_default ~range points in
      Array.for_all (fun vs -> Array.length vs <= Sector.count theta_default) sel)

let test_yao_graph_spanner =
  qtest "Yao graph connected with bounded stretch" ~count:60 seed_gen (fun seed ->
      let points, range = instance seed in
      let gstar = Udg.build ~range points in
      let yao = Yao.graph ~theta:theta_default ~range points in
      Components.is_connected yao
      && Graph.is_subgraph yao gstar
      && Stretch.over_base_edges ~sub:yao ~base:gstar ~cost:Cost.length () < 3.)


let test_yao_analytic_spanner_bound =
  qtest "Yao graph within the textbook spanner constant" ~count:30 seed_gen (fun seed ->
      (* For sectors of angle theta < pi/3, the Yao graph is a t-spanner
         with t = 1 / (1 - 2 sin(theta/2)). *)
      let points = points_of_seed ~min_n:5 ~max_n:30 seed in
      let theta = Float.pi /. 6. in
      let yao = Yao.graph ~theta ~range:infinity points in
      let bound = 1. /. (1. -. (2. *. sin (theta /. 2.))) in
      Stretch.vs_euclidean ~sub:yao ~points () <= bound +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Theta_alg (Lemma 2.1, Theorems 2.2 / 2.7)                           *)

let test_theta_subgraph_chain =
  qtest "overlay ⊆ Yao graph ⊆ G*" ~count:100 seed_gen (fun seed ->
      let points, range = instance seed in
      let gstar = Udg.build ~range points in
      let yao = Yao.graph ~theta:theta_default ~range points in
      let alg = Theta_alg.build ~theta:theta_default ~range points in
      let ov = Theta_alg.overlay alg in
      Graph.is_subgraph ov yao && Graph.is_subgraph yao gstar)

let test_theta_connected =
  qtest "Lemma 2.1: overlay connected" ~count:100 seed_gen (fun seed ->
      let points, range = instance seed in
      let alg = Theta_alg.build ~theta:theta_default ~range points in
      Components.is_connected (Theta_alg.overlay alg))

let test_theta_degree_bound =
  qtest "Lemma 2.1: degree <= 4pi/theta" ~count:100 seed_gen (fun seed ->
      let points, range = instance seed in
      let ok = ref true in
      List.iter
        (fun theta ->
          let alg = Theta_alg.build ~theta ~range points in
          if Graph.max_degree (Theta_alg.overlay alg) > Theta_alg.degree_bound ~theta then
            ok := false)
        [ Float.pi /. 3.; Float.pi /. 4.; Float.pi /. 6. ];
      !ok)

let test_theta_energy_stretch_bounded =
  qtest "Theorem 2.2: O(1) energy-stretch (empirical bound)" ~count:60 seed_gen (fun seed ->
      let points, range = instance seed in
      let gstar = Udg.build ~range points in
      let alg = Theta_alg.build ~theta:theta_default ~range points in
      let ov = Theta_alg.overlay alg in
      Stretch.over_base_edges ~sub:ov ~base:gstar ~cost:(Cost.energy ~kappa:2.) () < 4.
      && Stretch.over_base_edges ~sub:ov ~base:gstar ~cost:(Cost.energy ~kappa:4.) () < 6.)

let test_theta_distance_stretch_civilized =
  qtest "Theorem 2.7: O(1) distance-stretch on civilized sets" ~count:30 seed_gen
    (fun seed ->
      let rng = Prng.create seed in
      let points = Adhoc_pointset.Poisson_disk.sample ~min_dist:0.08 rng in
      QCheck2.assume (Array.length points > 5);
      let range = 2. *. Udg.critical_range points in
      let gstar = Udg.build ~range points in
      let alg = Theta_alg.build ~theta:theta_default ~range points in
      Stretch.over_base_edges ~sub:(Theta_alg.overlay alg) ~base:gstar ~cost:Cost.length () < 4.)

let test_theta_admitted_are_selectors =
  qtest "phase 2 admits only phase-1 selectors" ~count:60 seed_gen (fun seed ->
      let points, range = instance seed in
      let alg = Theta_alg.build ~theta:theta_default ~range points in
      let ok = ref true in
      Array.iteri
        (fun u admitted ->
          List.iter
            (fun (v, sector) ->
              if not (Theta_alg.in_yao alg v u) then ok := false;
              if Sector.index ~theta:theta_default ~apex:points.(u) points.(v) <> sector then
                ok := false)
            admitted)
        alg.Theta_alg.admitted;
      !ok)

let test_theta_empty_and_tiny () =
  let alg = Theta_alg.build ~theta:theta_default ~range:1. [| Point.origin |] in
  Alcotest.(check int) "singleton" 0 (Graph.num_edges (Theta_alg.overlay alg));
  let two = [| Point.origin; Point.make 0.5 0. |] in
  let alg2 = Theta_alg.build ~theta:theta_default ~range:1. two in
  Alcotest.(check int) "pair connected" 1 (Graph.num_edges (Theta_alg.overlay alg2))

let test_degree_bound_value () =
  Alcotest.(check int) "4pi/theta at pi/6" 24 (Theta_alg.degree_bound ~theta:(Float.pi /. 6.));
  Alcotest.(check int) "4pi/theta at pi/3" 12 (Theta_alg.degree_bound ~theta:(Float.pi /. 3.))

(* ------------------------------------------------------------------ *)
(* Theta_protocol                                                      *)

let test_protocol_equals_direct =
  qtest "3-round protocol = direct construction" ~count:60 seed_gen (fun seed ->
      let points, range = instance seed in
      let alg = Theta_alg.build ~theta:theta_default ~range points in
      let g, _ = Theta_protocol.run ~theta:theta_default ~range points in
      edge_set g = edge_set (Theta_alg.overlay alg))

let test_protocol_message_counts =
  qtest "message counts consistent" ~count:30 seed_gen (fun seed ->
      let points, range = instance seed in
      let n = Array.length points in
      let g, stats = Theta_protocol.run ~theta:theta_default ~range points in
      stats.Theta_protocol.position_msgs = n
      && stats.Theta_protocol.neighborhood_msgs <= n * Sector.count theta_default
      && stats.Theta_protocol.connection_msgs >= Graph.num_edges g)

(* ------------------------------------------------------------------ *)
(* Proximity-graph baselines                                           *)

let test_proximity_chain =
  qtest "MST ⊆ RNG ⊆ Gabriel ⊆ Delaunay" ~count:80 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:4 ~max_n:30 seed in
      let mst = Adhoc_graph.Mst.of_points points in
      let rng_g = Rng_graph.build points in
      let gg = Gabriel.build points in
      let dt = Delaunay.build points in
      Graph.is_subgraph mst rng_g && Graph.is_subgraph rng_g gg && Graph.is_subgraph gg dt)

let test_gabriel_witness_property =
  qtest "Gabriel edges have empty diametral disks" ~count:60 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:4 ~max_n:25 seed in
      let gg = Gabriel.build points in
      let n = Array.length points in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let disk = Adhoc_geom.Circle.diametral points.(u) points.(v) in
          let witness = ref false in
          for w = 0 to n - 1 do
            if w <> u && w <> v && Adhoc_geom.Circle.contains disk points.(w) then witness := true
          done;
          if Graph.mem_edge gg u v = !witness then ok := false
        done
      done;
      !ok)

let test_rng_lune_property =
  qtest "RNG edges have empty lunes" ~count:60 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:4 ~max_n:25 seed in
      let g = Rng_graph.build points in
      let n = Array.length points in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let d = Point.dist points.(u) points.(v) in
          let witness = ref false in
          for w = 0 to n - 1 do
            if
              w <> u && w <> v
              && Point.dist points.(u) points.(w) < d
              && Point.dist points.(v) points.(w) < d
            then witness := true
          done;
          if Graph.mem_edge g u v = !witness then ok := false
        done
      done;
      !ok)

let test_delaunay_empty_circumcircles =
  qtest "Delaunay triangles have empty circumcircles" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:4 ~max_n:20 seed in
      let tris = Delaunay.triangles points in
      List.for_all
        (fun (a, b, c) ->
          let ok = ref true in
          Array.iteri
            (fun i p ->
              if i <> a && i <> b && i <> c then begin
                if Adhoc_geom.Circle.in_circumcircle points.(a) points.(b) points.(c) p then
                  ok := false
              end)
            points;
          !ok)
        tris)

let test_delaunay_connected =
  qtest "Delaunay graph connected" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:3 ~max_n:30 seed in
      Components.is_connected (Delaunay.build points))

let test_gabriel_range_restriction () =
  let points = [| Point.origin; Point.make 1. 0.; Point.make 5. 0. |] in
  let g = Gabriel.build ~range:2. points in
  Alcotest.(check bool) "short edge kept" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "long edge cut" false (Graph.mem_edge g 1 2)

(* ------------------------------------------------------------------ *)
(* Topo_metrics                                                        *)

let test_metrics_fields () =
  let points, range = instance 5 in
  let gstar = Udg.build ~range points in
  let alg = Theta_alg.build ~theta:theta_default ~range points in
  let m = Topo_metrics.measure ~name:"theta" ~base:gstar (Theta_alg.overlay alg) in
  Alcotest.(check string) "name" "theta" m.Topo_metrics.name;
  Alcotest.(check bool) "connected" true m.Topo_metrics.connected;
  Alcotest.(check bool) "stretch >= 1" true (m.Topo_metrics.energy_stretch >= 1.);
  Alcotest.(check int) "row width" (List.length Topo_metrics.header)
    (List.length (Topo_metrics.to_row m))


(* ------------------------------------------------------------------ *)
(* Extensions: kNN, beta-skeletons, theta-graph, power assignment      *)

let test_knn_intro_claim =
  qtest "kNN can disconnect; theta overlay never does" ~count:40 seed_gen (fun seed ->
      let points, range = instance seed in
      (* k = 1 must give a forest with max degree possibly large; the graph
         need not be connected (the paper's introduction claim). *)
      let g1 = Knn.build ~k:1 points in
      let alg = Theta_alg.build ~theta:theta_default ~range points in
      Graph.num_edges g1 >= (Array.length points / 2)
      && Components.is_connected (Theta_alg.overlay alg))

let test_knn_edges_are_near =
  qtest "kNN edges respect k-nearest semantics" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:5 ~max_n:25 seed in
      let k = 2 in
      let g = Knn.build ~k points in
      let n = Array.length points in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if v <> u then begin
            (* If v within the k nearest of u, edge must exist. *)
            let closer_count =
              let c = ref 0 in
              for w = 0 to n - 1 do
                if w <> u && w <> v && Yao.closer points u w v then incr c
              done;
              !c
            in
            if closer_count < k && not (Graph.mem_edge g u v) then ok := false
          end
        done
      done;
      !ok)

let test_knn_min_connecting =
  qtest "min_connecting_k yields a connected graph, k-1 does not" ~count:30 seed_gen
    (fun seed ->
      let points = points_of_seed ~min_n:6 ~max_n:30 seed in
      match Knn.min_connecting_k points with
      | None -> false
      | Some k ->
          Components.is_connected (Knn.build ~k points)
          && (k = 1 || not (Components.is_connected (Knn.build ~k:(k - 1) points))))

let test_beta_one_is_gabriel =
  qtest "beta-skeleton(1) = Gabriel graph" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:4 ~max_n:25 seed in
      edge_set (Beta_skeleton.build ~beta:1. points) = edge_set (Gabriel.build points))

let test_beta_two_is_rng =
  qtest "beta-skeleton(2) = relative neighborhood graph" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:4 ~max_n:25 seed in
      edge_set (Beta_skeleton.build ~beta:2. points) = edge_set (Rng_graph.build points))

let test_beta_monotone =
  qtest "beta-skeletons shrink as beta grows" ~count:30 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:4 ~max_n:20 seed in
      let g05 = Beta_skeleton.build ~beta:0.8 points in
      let g1 = Beta_skeleton.build ~beta:1. points in
      let g15 = Beta_skeleton.build ~beta:1.5 points in
      let g2 = Beta_skeleton.build ~beta:2. points in
      Graph.is_subgraph g2 g15 && Graph.is_subgraph g15 g1 && Graph.is_subgraph g1 g05)

let test_theta_graph_spanner =
  qtest "theta-graph connected, bounded out-selection" ~count:40 seed_gen (fun seed ->
      let points, range = instance seed in
      let g = Theta_graph.build ~theta:theta_default ~range points in
      Components.is_connected g
      && Graph.num_edges g
         <= Array.length points * Adhoc_geom.Sector.count theta_default)

let test_power_assignment () =
  let points = [| Point.make 0. 0.; Point.make 1. 0.; Point.make 3. 0. |] in
  let g = Graph.geometric points [ (0, 1); (1, 2) ] in
  let p = Power.assign ~kappa:2. g in
  check_close "node 0" 1. p.Power.per_node.(0);
  check_close "node 1" 4. p.Power.per_node.(1);
  check_close "node 2" 4. p.Power.per_node.(2);
  check_close "max" 4. p.Power.max_power;
  check_close "total" 9. p.Power.total_power;
  Alcotest.(check int) "unused" 0 p.Power.unused

let test_power_overlay_saves =
  qtest "overlay bottleneck power <= G* bottleneck power" ~count:30 seed_gen (fun seed ->
      let points, range = instance seed in
      let gstar = Udg.build ~range points in
      let ov = Theta_alg.overlay (Theta_alg.build ~theta:theta_default ~range points) in
      Power.max_power_ratio ~kappa:2. ~sub:ov ~base:gstar <= 1. +. 1e-9)



let test_euclidean_mst_exact =
  qtest "Delaunay-restricted MST = exact MST" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:3 ~max_n:60 seed in
      let fast = Euclidean_mst.build points in
      let exact = Adhoc_graph.Mst.of_points points in
      (* Same total weight (edge sets can differ only on exact ties). *)
      close ~eps:1e-9 (Graph.total_length fast) (Graph.total_length exact)
      && Graph.num_edges fast = Graph.num_edges exact
      && Components.is_connected fast)

let test_euclidean_mst_tiny () =
  let two = [| Point.origin; Point.make 1. 0. |] in
  check_close "pair" 1. (Euclidean_mst.longest_edge two);
  check_close "singleton" 0. (Euclidean_mst.longest_edge [| Point.origin |])

(* ------------------------------------------------------------------ *)
(* Planarity / CBTC                                                    *)

let test_gabriel_rng_planar =
  qtest "Gabriel and RNG embeddings are planar" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:5 ~max_n:30 seed in
      Planarity.is_planar_embedding points (Gabriel.build points)
      && Planarity.is_planar_embedding points (Rng_graph.build points))

let test_delaunay_planar =
  qtest "Delaunay triangulation is planar" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:5 ~max_n:25 seed in
      Planarity.is_planar_embedding points (Delaunay.build points))

let test_crossings_detected () =
  (* Two crossing diagonals of a square. *)
  let points = [| Point.make 0. 0.; Point.make 1. 1.; Point.make 1. 0.; Point.make 0. 1. |] in
  let g = Graph.geometric points [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "crossing found" true (Planarity.crossings points g = [ (0, 1) ]);
  Alcotest.(check bool) "not planar" false (Planarity.is_planar_embedding points g)

let test_cbtc_preserves_connectivity =
  qtest "CBTC(2pi/3) preserves connectivity" ~count:40 seed_gen (fun seed ->
      let points, range = instance seed in
      let c = Cbtc.build ~alpha:(2. *. Float.pi /. 3.) ~range points in
      Components.is_connected (Udg.build ~range points)
      = Components.is_connected c.Cbtc.graph)

let test_cbtc_radii_within_range =
  qtest "CBTC radii bounded by the max range" ~count:40 seed_gen (fun seed ->
      let points, range = instance seed in
      let c = Cbtc.build ~alpha:(2. *. Float.pi /. 3.) ~range points in
      Array.for_all (fun r -> r <= range +. 1e-12) c.Cbtc.radii
      && Graph.is_subgraph c.Cbtc.graph c.Cbtc.asymmetric)

let test_cbtc_coverage_condition =
  qtest "chosen radius satisfies the cone condition (or is max power)" ~count:30 seed_gen
    (fun seed ->
      let points, range = instance seed in
      let alpha = 2. *. Float.pi /. 3. in
      let c = Cbtc.build ~alpha ~range points in
      let ok = ref true in
      Array.iteri
        (fun u r ->
          if r < range -. 1e-12 then begin
            if not (Cbtc.coverage_ok ~alpha points u r) then ok := false
          end)
        c.Cbtc.radii;
      !ok)

let test_cbtc_alpha_monotone () =
  let points = points_of_seed ~min_n:20 ~max_n:40 7 in
  let range = 2. *. Udg.critical_range points in
  let small = Cbtc.build ~alpha:(Float.pi /. 2.) ~range points in
  let large = Cbtc.build ~alpha:(3. *. Float.pi /. 2.) ~range points in
  (* A stricter (smaller) cone angle needs at least as much power. *)
  Array.iteri
    (fun u r ->
      if r > small.Cbtc.radii.(u) +. 1e-9 then
        Alcotest.failf "node %d: larger alpha chose more power" u)
    large.Cbtc.radii


let test_maintenance_matches_rebuild =
  qtest "incremental repair = full rebuild" ~count:25 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let points = points_of_seed ~min_n:10 ~max_n:50 seed in
      let n = Array.length points in
      let range = 1.5 *. Udg.critical_range points in
      let m = Maintenance.create ~theta:theta_default ~range points in
      let ok = ref true in
      for _ = 1 to 4 do
        let i = Prng.int rng n in
        Maintenance.move m i (Point.make (Prng.uniform rng) (Prng.uniform rng));
        let full =
          Theta_alg.overlay (Theta_alg.build ~theta:theta_default ~range (Maintenance.points m))
        in
        if edge_set full <> edge_set (Maintenance.overlay m) then ok := false
      done;
      !ok)

let test_maintenance_locality () =
  let rng = Prng.create 6 in
  let points = Adhoc_pointset.Generators.uniform rng 400 in
  let range = 1.3 *. Udg.critical_range points in
  let m = Maintenance.create ~theta:theta_default ~range points in
  (* A tiny nudge of one node must not touch most of the network. *)
  let p = (Maintenance.points m).(7) in
  Maintenance.move m 7 (Point.make (p.Point.x +. (0.1 *. range)) p.Point.y);
  Alcotest.(check bool) "local repair" true (Maintenance.last_affected m < 200);
  Alcotest.(check bool) "some repair" true (Maintenance.last_affected m > 0)

let test_maintenance_bounds () =
  let m = Maintenance.create ~theta:theta_default ~range:1. [| Point.origin; Point.make 0.5 0. |] in
  Alcotest.check_raises "out of range" (Invalid_argument "Maintenance.move: node out of range")
    (fun () -> Maintenance.move m 5 Point.origin)

(* ------------------------------------------------------------------ *)
(* Degenerate point sets: every construction must be total for n ≤ 2.  *)

let test_degenerate_totality () =
  let theta = theta_default in
  let sets =
    [ ("n=0", [||]); ("n=1", [| Point.make 0.5 0.5 |]);
      ("n=2", [| Point.make 0.25 0.5; Point.make 0.75 0.5 |]) ]
  in
  List.iter
    (fun (tag, points) ->
      let n = Array.length points in
      let check name g =
        Alcotest.(check int) (tag ^ " " ^ name ^ " nodes") n (Graph.n g);
        Alcotest.(check bool)
          (tag ^ " " ^ name ^ " edge bound")
          true
          (Graph.num_edges g <= n * (n - 1) / 2)
      in
      check "udg" (Udg.build ~range:1. points);
      check "udg zero range" (Udg.build ~range:0. points);
      check "yao" (Yao.graph ~theta ~range:1. points);
      check "theta-graph" (Theta_graph.build ~theta ~range:1. points);
      check "theta-alg" (Theta_alg.overlay (Theta_alg.build ~theta ~range:1. points));
      check "theta-protocol" (fst (Theta_protocol.run ~theta ~range:1. points));
      check "knn" (Knn.build ~k:2 points);
      check "gabriel" (Gabriel.build points);
      check "rng" (Rng_graph.build points);
      check "beta-skeleton" (Beta_skeleton.build ~beta:1.5 points);
      check "delaunay" (Delaunay.build points);
      check "euclidean-mst" (Euclidean_mst.build points);
      check "cbtc" (Cbtc.build ~alpha:(2. *. Float.pi /. 3.) ~range:1. points).Cbtc.graph)
    sets

let () =
  Alcotest.run "topo"
    [
      ( "udg",
        [
          test_udg_matches_brute;
          test_critical_range_threshold;
          case "zero range" test_udg_zero_range;
        ] );
      ( "yao",
        [
          test_yao_selection_is_nearest_per_sector;
          test_yao_out_degree_bound;
          test_yao_graph_spanner;
          test_yao_analytic_spanner_bound;
        ] );
      ( "theta_alg",
        [
          test_theta_subgraph_chain;
          test_theta_connected;
          test_theta_degree_bound;
          test_theta_energy_stretch_bounded;
          test_theta_distance_stretch_civilized;
          test_theta_admitted_are_selectors;
          case "tiny instances" test_theta_empty_and_tiny;
          case "degree bound values" test_degree_bound_value;
        ] );
      ( "protocol",
        [ test_protocol_equals_direct; test_protocol_message_counts ] );
      ( "proximity",
        [
          test_proximity_chain;
          test_gabriel_witness_property;
          test_rng_lune_property;
          test_delaunay_empty_circumcircles;
          test_delaunay_connected;
          case "gabriel range" test_gabriel_range_restriction;
        ] );
      ("metrics", [ case "fields" test_metrics_fields ]);
      ( "knn",
        [
          test_knn_intro_claim;
          test_knn_edges_are_near;
          test_knn_min_connecting;
        ] );
      ( "beta_skeleton",
        [ test_beta_one_is_gabriel; test_beta_two_is_rng; test_beta_monotone ] );
      ("theta_graph", [ test_theta_graph_spanner ]);
      ( "power",
        [ case "assignment" test_power_assignment; test_power_overlay_saves ] );
      ( "euclidean_mst",
        [ test_euclidean_mst_exact; case "tiny" test_euclidean_mst_tiny ] );
      ( "planarity",
        [
          test_gabriel_rng_planar;
          test_delaunay_planar;
          case "crossings detected" test_crossings_detected;
        ] );
      ( "maintenance",
        [
          test_maintenance_matches_rebuild;
          case "locality" test_maintenance_locality;
          case "bounds" test_maintenance_bounds;
        ] );
      ("degenerate", [ case "all constructions total for n <= 2" test_degenerate_totality ]);
      ( "cbtc",
        [
          test_cbtc_preserves_connectivity;
          test_cbtc_radii_within_range;
          test_cbtc_coverage_condition;
          case "alpha monotone" test_cbtc_alpha_monotone;
        ] );
    ]
