(* Typedtree-layer (cmt) tests for the adhoc_lint engine.

   The corpus under cmt_fixtures/ is a real dune library, so the build
   produces .cmt artifacts for it; this suite loads them back and checks
   the resolved-path rules against every alias-evasion shape (module
   alias, open, let-bound value, functor argument), the par-safety rule
   against seeded races and against the sanctioned disjoint-cell idiom,
   and the call-graph effect summaries against a golden rendering.  A
   final test runs the layer over the library's own artifacts and asserts
   lib/ lints clean modulo its source waivers. *)

open Adhoc_lint_engine

(* Under `dune runtest` the cwd is the test directory and the fixture
   cmts sit in cmt_fixtures/.lint_cmt_fixtures.objs/byte; under a bare
   `dune exec` from the workspace root, Lint_cmt.scan_root's fallback
   finds them under _build/default/test/cmt_fixtures. *)
let in_test_dir = Sys.file_exists "cmt_fixtures"
let fixture_root = if in_test_dir then "cmt_fixtures" else Filename.concat "test" "cmt_fixtures"

(* The scanner's default skip list excludes fixture corpora; loading them
   is the whole point here. *)
let units =
  lazy (Lint_cmt.load_units ~skip:[] (Lint_cmt.scan_root ~skip:[] fixture_root))

let lib_flags =
  {
    Lint_cmt.f_scope = Lint_rules.Lib;
    f_domain_exempt = false;
    f_gc_exempt = false;
    f_obs_exempt = false;
  }

(* One full layer run over the fixture corpus, memoized: raw (pre-waiver)
   diagnostics plus the call graph. *)
let layer =
  lazy
    (let diags = ref [] in
     let emit ~file ~line ~col rule message =
       diags :=
         {
           Lint_diag.file;
           line;
           col;
           rule;
           layer = Lint_diag.Cmt;
           severity = Lint_diag.Error;
           message;
         }
         :: !diags
     in
     let cg = Lint_cmt.check_units ~flags_of:(fun _ -> lib_flags) ~emit (Lazy.force units) in
     (cg, List.sort Lint_diag.compare_diag !diags))

let diags_for base =
  let _, diags = Lazy.force layer in
  List.filter (fun d -> Filename.basename d.Lint_diag.file = base) diags

let rendered base =
  List.map
    (fun d -> Lint_diag.to_string { d with Lint_diag.file = Filename.basename d.Lint_diag.file })
    (diags_for base)

let check_diags name base expected () =
  Alcotest.(check (list string)) name expected (rendered base)

let test_units_loaded () =
  let names = List.map (fun u -> u.Lint_cmt.u_name) (Lazy.force units) in
  Alcotest.(check bool) "effects fixture present" true
    (List.mem "Lint_cmt_fixtures__Effects_fixtures" names);
  Alcotest.(check bool) "wrapper module skipped" true
    (not (List.mem "Lint_cmt_fixtures" names))

(* ------------------------------------------------------------------ *)
(* Resolved-path rules: the four alias-evasion shapes                  *)

let test_alias_rng =
  check_diags "module-alias evasion" "alias_rng.ml"
    [
      "alias_rng.ml:4:11 [ambient-rng] module expression names Random: ambient PRNG in \
       library code; thread an explicit Adhoc_util.Prng.t instead";
      "alias_rng.ml:6:14 [ambient-rng] resolves to Random.int: ambient PRNG in library \
       code; thread an explicit Adhoc_util.Prng.t instead";
    ]

let test_open_rng =
  check_diags "open evasion" "open_rng.ml"
    [
      "open_rng.ml:3:5 [ambient-rng] module expression names Random: ambient PRNG in \
       library code; thread an explicit Adhoc_util.Prng.t instead";
      "open_rng.ml:5:14 [ambient-rng] resolves to Random.bits: ambient PRNG in library \
       code; thread an explicit Adhoc_util.Prng.t instead";
    ]

let test_let_clock =
  check_diags "let-bound alias evasion" "let_clock.ml"
    [
      "let_clock.ml:4:14 [wall-clock] resolves to Unix.gettimeofday: wall-clock read in \
       library code breaks reproducibility; take time as input or go through Adhoc_obs.Span";
    ]

let test_functor_rng =
  check_diags "functor-argument evasion" "functor_rng.ml"
    [
      "functor_rng.ml:13:19 [ambient-rng] module expression names Random: ambient PRNG in \
       library code; thread an explicit Adhoc_util.Prng.t instead";
    ]

let test_good_resolved = check_diags "benign aliasing stays clean" "good_resolved.ml" []

(* ------------------------------------------------------------------ *)
(* par-safety                                                          *)

let test_par_shared_ref =
  check_diags "captured ref write" "par_shared_ref.ml"
    [
      "par_shared_ref.ml:7:58 [par-safety] write to captured or global mutable state \
       (total via :=) inside a Pool.parallel_for body; the Pool contract (pool.mli) \
       demands index-purity";
    ]

let test_par_hashtbl =
  check_diags "captured Hashtbl mutation" "par_hashtbl.ml"
    [
      "par_hashtbl.ml:7:37 [par-safety] write to captured or global mutable state \
       (seen via Hashtbl.replace) inside a Pool.parallel_for body; the Pool contract \
       (pool.mli) demands index-purity";
    ]

let test_par_transitive_io =
  check_diags "transitive io through helper" "par_transitive_io.ml"
    [
      "par_transitive_io.ml:6:16 [obs-purity] resolves to print_endline: console output \
       in library code; return data or emit through an Adhoc_obs sink";
      "par_transitive_io.ml:8:72 [par-safety] call to log_row (effects: io) inside a \
       Pool.parallel_for body; region bodies must not write shared state or perform io";
    ]

let test_par_good = check_diags "sanctioned disjoint cells" "par_good.ml" []

let test_par_waivered () =
  let diags = diags_for "par_waivered.ml" in
  Alcotest.(check int) "raw diagnostic fires" 1
    (List.length (List.filter (fun d -> d.Lint_diag.rule = "par-safety") diags));
  let src_path = Filename.concat fixture_root "par_waivered.ml" in
  let ic = open_in_bin src_path in
  let source = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let waivers = Lint_diag.scan_waivers ~file:src_path source in
  let kept = Lint_diag.apply_waivers waivers diags in
  Alcotest.(check int) "waiver absorbs it" 0 (List.length kept);
  Alcotest.(check bool) "waiver marked used" true
    (List.for_all (fun w -> w.Lint_diag.w_used) waivers)

(* ------------------------------------------------------------------ *)
(* Call-graph effect summaries (golden)                                *)

let test_effect_summaries () =
  let cg, _ = Lazy.force layer in
  let got =
    Lint_callgraph.render_summaries cg ~unit_filter:(fun u ->
        u = "Lint_cmt_fixtures__Effects_fixtures")
  in
  Alcotest.(check (list string)) "effect summaries"
    [
      "Lint_cmt_fixtures__Effects_fixtures.buf: pure";
      "Lint_cmt_fixtures__Effects_fixtures.bump: mut-param";
      "Lint_cmt_fixtures__Effects_fixtures.chain: io";
      "Lint_cmt_fixtures__Effects_fixtures.chatty: io";
      "Lint_cmt_fixtures__Effects_fixtures.local_sum: mut-local";
      "Lint_cmt_fixtures__Effects_fixtures.memo_put: mut-shared";
      "Lint_cmt_fixtures__Effects_fixtures.must_pos: raises";
      "Lint_cmt_fixtures__Effects_fixtures.pure_add: pure";
      "Lint_cmt_fixtures__Effects_fixtures.roll: ambient";
      "Lint_cmt_fixtures__Effects_fixtures.set_cell: mut-indexed";
      "Lint_cmt_fixtures__Effects_fixtures.table: pure";
    ]
    got

(* ------------------------------------------------------------------ *)
(* The library's own artifacts lint clean under the cmt layer          *)

let test_lib_clean () =
  let lib_root = if in_test_dir then Filename.concat ".." "lib" else "lib" in
  let prefix = if in_test_dir then Filename.concat ".." "" else "" in
  let lib_units = Lint_cmt.load_units (Lint_cmt.scan_roots [ lib_root ]) in
  Alcotest.(check bool)
    (Printf.sprintf "library artifacts found (%d units)" (List.length lib_units))
    true
    (List.length lib_units > 50);
  let diags = ref [] in
  let emit ~file ~line ~col rule message =
    diags :=
      {
        Lint_diag.file;
        line;
        col;
        rule;
        layer = Lint_diag.Cmt;
        severity = Lint_diag.Error;
        message;
      }
      :: !diags
  in
  ignore (Lint_cmt.check_units ~emit lib_units);
  (* Raw findings may exist; each must be absorbed by a waiver in its
     source file. *)
  let waivers_of = Hashtbl.create 16 in
  let waivers_for file =
    match Hashtbl.find_opt waivers_of file with
    | Some ws -> ws
    | None ->
        let path = prefix ^ file in
        let ws =
          if Sys.file_exists path then begin
            let ic = open_in_bin path in
            let source = really_input_string ic (in_channel_length ic) in
            close_in ic;
            Lint_diag.scan_waivers ~file source
          end
          else []
        in
        Hashtbl.add waivers_of file ws;
        ws
  in
  let unwaived =
    List.filter
      (fun d -> Lint_diag.apply_waivers (waivers_for d.Lint_diag.file) [ d ] <> [])
      !diags
  in
  Alcotest.(check (list string)) "lib lints clean under the cmt layer" []
    (List.map Lint_diag.to_string (List.sort Lint_diag.compare_diag unwaived))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint-cmt"
    [
      ("loading", [ Alcotest.test_case "fixture units" `Quick test_units_loaded ]);
      ( "resolved",
        [
          Alcotest.test_case "module alias" `Quick test_alias_rng;
          Alcotest.test_case "open" `Quick test_open_rng;
          Alcotest.test_case "let-bound value" `Quick test_let_clock;
          Alcotest.test_case "functor argument" `Quick test_functor_rng;
          Alcotest.test_case "benign twin" `Quick test_good_resolved;
        ] );
      ( "par-safety",
        [
          Alcotest.test_case "shared ref" `Quick test_par_shared_ref;
          Alcotest.test_case "captured hashtbl" `Quick test_par_hashtbl;
          Alcotest.test_case "transitive io" `Quick test_par_transitive_io;
          Alcotest.test_case "sanctioned idiom" `Quick test_par_good;
          Alcotest.test_case "waivered race" `Quick test_par_waivered;
        ] );
      ("effects", [ Alcotest.test_case "summaries golden" `Quick test_effect_summaries ]);
      ("whole-lib", [ Alcotest.test_case "lib clean" `Quick test_lib_clean ]);
    ]
