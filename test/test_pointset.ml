open Adhoc_pointset
module Box = Adhoc_geom.Box
open Helpers

let in_box box points = Array.for_all (fun p -> Box.contains box p) points

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let test_uniform_count_and_box =
  qtest "uniform: count and containment" seed_gen (fun seed ->
      let rng = Prng.create seed in
      let pts = Generators.uniform rng 50 in
      Array.length pts = 50 && in_box Box.unit_square pts)

let test_uniform_deterministic () =
  let a = Generators.uniform (Prng.create 9) 20 in
  let b = Generators.uniform (Prng.create 9) 20 in
  Alcotest.(check bool) "same points" true (a = b)

let test_uniform_custom_box () =
  let box = Box.make ~xmin:2. ~ymin:3. ~xmax:4. ~ymax:5. in
  let pts = Generators.uniform ~box (Prng.create 1) 100 in
  Alcotest.(check bool) "in box" true (in_box box pts)

let test_jittered_grid_exact () =
  let pts = Generators.jittered_grid ~jitter:0. (Prng.create 1) 16 in
  Alcotest.(check int) "square count" 16 (Array.length pts);
  (* Zero jitter: a perfect 4x4 grid with spacing 0.25 starting at 0.125. *)
  let sorted = Array.to_list pts |> List.sort Point.compare in
  match sorted with
  | first :: _ ->
      check_close "first x" 0.125 first.Point.x;
      check_close "first y" 0.125 first.Point.y
  | [] -> Alcotest.fail "empty"

let test_jittered_grid_contained =
  qtest "jittered grid stays in box" seed_gen (fun seed ->
      let rng = Prng.create seed in
      let pts = Generators.jittered_grid ~jitter:0.9 rng 64 in
      Array.length pts = 64 && in_box Box.unit_square pts)

let test_clusters () =
  let pts = Generators.clusters ~num_clusters:4 ~spread:0.02 (Prng.create 3) 80 in
  Alcotest.(check int) "count" 80 (Array.length pts);
  Alcotest.(check bool) "in box" true (in_box Box.unit_square pts)

let test_ring_annulus =
  qtest "ring points lie in annulus" seed_gen (fun seed ->
      let rng = Prng.create seed in
      let width = 0.3 in
      let pts = Generators.ring ~width rng 60 in
      let c = Box.center Box.unit_square in
      Array.for_all
        (fun p ->
          let r = Point.dist c p in
          r >= (0.5 *. (1. -. width)) -. 1e-9 && r <= 0.5 +. 1e-9)
        pts)

let test_exponential_chain () =
  let pts = Generators.exponential_chain ~base:2. 5 in
  let xs = Array.map (fun p -> p.Point.x) pts in
  Alcotest.(check bool) "geometric gaps" true (xs = [| 0.; 1.; 3.; 7.; 15. |]);
  Alcotest.check_raises "base must exceed 1"
    (Invalid_argument "Generators.exponential_chain: base must exceed 1") (fun () ->
      ignore (Generators.exponential_chain ~base:1. 5))

let test_two_scale () =
  let pts = Generators.two_scale ~ratio:0.05 (Prng.create 4) 100 in
  Alcotest.(check int) "count" 100 (Array.length pts);
  (* Even indices form the dense blob around the center. *)
  let c = Box.center Box.unit_square in
  let blob_ok = ref true in
  Array.iteri
    (fun i p -> if i mod 2 = 0 && Point.dist c p > 0.05 /. 2. +. 1e-9 then blob_ok := false)
    pts;
  Alcotest.(check bool) "blob tight" true !blob_ok

(* ------------------------------------------------------------------ *)
(* Poisson disk                                                        *)

let min_pairwise_brute pts =
  let best = ref infinity in
  Array.iteri
    (fun i p ->
      Array.iteri (fun j q -> if j > i then best := Float.min !best (Point.dist p q)) pts)
    pts;
  !best

let test_poisson_separation =
  qtest "poisson-disk separation respected" ~count:20 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let min_dist = 0.08 in
      let pts = Poisson_disk.sample ~min_dist rng in
      Array.length pts > 20 && min_pairwise_brute pts >= min_dist -. 1e-9)

let test_poisson_sample_n () =
  let pts = Poisson_disk.sample_n ~min_dist:0.05 (Prng.create 5) 30 in
  Alcotest.(check int) "limited" 30 (Array.length pts)

let test_poisson_fills_box () =
  (* Maximal sampling: every location is within 2*min_dist of a sample. *)
  let min_dist = 0.1 in
  let pts = Poisson_disk.sample ~min_dist (Prng.create 6) in
  let rng = Prng.create 7 in
  for _ = 1 to 200 do
    let p = Point.make (Prng.uniform rng) (Prng.uniform rng) in
    let near = Array.exists (fun q -> Point.dist p q <= 2. *. min_dist) pts in
    if not near then Alcotest.failf "uncovered location %s" (Point.to_string p)
  done

(* ------------------------------------------------------------------ *)
(* Precision                                                           *)

let test_precision_known () =
  let pts = [| Point.make 0. 0.; Point.make 1. 0.; Point.make 0. 1.; Point.make 1. 1. |] in
  check_close "min pairwise" 1. (Precision.min_pairwise pts);
  check_close "max pairwise" (sqrt 2.) (Precision.max_pairwise pts);
  check_close "lambda" (1. /. sqrt 2.) (Precision.lambda pts);
  Alcotest.(check bool) "civilized at 0.5" true (Precision.is_civilized ~lambda:0.5 pts);
  Alcotest.(check bool) "not at 0.9" false (Precision.is_civilized ~lambda:0.9 pts)

let test_precision_degenerate () =
  Alcotest.(check bool) "single point" true (Float.equal (Precision.lambda [| Point.origin |]) 1.);
  let dup = [| Point.origin; Point.origin; Point.make 1. 0. |] in
  check_close "coincident lambda" 0. (Precision.lambda dup)

let test_precision_min_matches_brute =
  qtest "min_pairwise = brute force" ~count:100 seed_gen (fun seed ->
      let pts = points_of_seed ~min_n:2 ~max_n:80 seed in
      close ~eps:1e-12 (Precision.min_pairwise pts) (min_pairwise_brute pts))

let test_poisson_is_civilized () =
  let pts = Poisson_disk.sample ~min_dist:0.15 (Prng.create 8) in
  (* Unit square diameter ≤ √2, separation ≥ 0.15 → λ ≥ 0.15/√2. *)
  Alcotest.(check bool) "civilized" true
    (Precision.is_civilized ~lambda:(0.15 /. sqrt 2.) pts)

(* ------------------------------------------------------------------ *)
(* Mobility                                                            *)

let test_mobility_stays_in_box =
  qtest "random waypoint stays in box" ~count:30 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let pts = Generators.uniform rng 20 in
      let m = Mobility.create ~speed_min:0.01 ~speed_max:0.05 rng pts in
      Mobility.run m 200;
      in_box Box.unit_square (Mobility.positions m))

let test_mobility_speed_bound () =
  let rng = Prng.create 10 in
  let pts = Generators.uniform rng 10 in
  let m = Mobility.create ~speed_min:0.01 ~speed_max:0.03 rng pts in
  for _ = 1 to 100 do
    let before = Mobility.positions m in
    Mobility.step m;
    let after = Mobility.positions m in
    Array.iteri
      (fun i p ->
        let d = Point.dist p after.(i) in
        if d > 0.03 +. 1e-9 then Alcotest.failf "moved too fast: %f" d)
      before
  done

let test_mobility_deterministic () =
  let mk () =
    let rng = Prng.create 11 in
    let pts = Generators.uniform rng 10 in
    let m = Mobility.create ~speed_min:0.01 ~speed_max:0.05 rng pts in
    Mobility.run m 50;
    Mobility.positions m
  in
  Alcotest.(check bool) "same trajectory" true (mk () = mk ())

let test_mobility_pause () =
  (* With huge speed every node reaches its waypoint each step, then pauses. *)
  let rng = Prng.create 12 in
  let pts = Generators.uniform rng 5 in
  let m = Mobility.create ~pause:3 ~speed_min:10. ~speed_max:10. rng pts in
  Mobility.step m;
  let at_waypoint = Mobility.positions m in
  Mobility.step m;
  (* First pause step: no movement. *)
  Alcotest.(check bool) "paused" true (at_waypoint = Mobility.positions m)

let test_mobility_moves () =
  let rng = Prng.create 13 in
  let pts = Generators.uniform rng 5 in
  let m = Mobility.create ~speed_min:0.05 ~speed_max:0.05 rng pts in
  let before = Mobility.positions m in
  Mobility.run m 5;
  Alcotest.(check bool) "positions changed" true (before <> Mobility.positions m)

let () =
  Alcotest.run "pointset"
    [
      ( "generators",
        [
          test_uniform_count_and_box;
          case "deterministic" test_uniform_deterministic;
          case "custom box" test_uniform_custom_box;
          case "exact grid" test_jittered_grid_exact;
          test_jittered_grid_contained;
          case "clusters" test_clusters;
          test_ring_annulus;
          case "exponential chain" test_exponential_chain;
          case "two scale" test_two_scale;
        ] );
      ( "poisson_disk",
        [
          test_poisson_separation;
          case "sample_n" test_poisson_sample_n;
          case "fills box" test_poisson_fills_box;
        ] );
      ( "precision",
        [
          case "known values" test_precision_known;
          case "degenerate" test_precision_degenerate;
          test_precision_min_matches_brute;
          case "poisson civilized" test_poisson_is_civilized;
        ] );
      ( "mobility",
        [
          test_mobility_stays_in_box;
          case "speed bound" test_mobility_speed_bound;
          case "deterministic" test_mobility_deterministic;
          case "pause" test_mobility_pause;
          case "moves" test_mobility_moves;
        ] );
    ]
