(* Live streaming telemetry: the Sketch quantile error bound against the
   exact Stats.percentile, the Topk space-saving guarantees against an
   exact oracle, step-keyed windowing (gap windows, rejection of
   out-of-order feeds), the emitters' monotone-step contract, and the
   determinism contract the adhoc-live/1 stream is built around: online
   capture, offline replay and every --jobs setting produce the same
   bytes. *)

module Obs = Adhoc_obs
module Event = Adhoc_obs.Event
module Live = Adhoc_obs.Live
module Sketch = Adhoc_obs.Sketch
module Topk = Adhoc_obs.Topk
module Stats = Adhoc_util.Stats
module Pool = Adhoc_util.Pool
module Pipeline = Adhoc.Pipeline
open Helpers

(* ------------------------------------------------------------------ *)
(* Sketch                                                              *)

let test_sketch_basic () =
  let s = Sketch.uniform ~width:1. ~count:10 () in
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (Sketch.quantile s 50.));
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Sketch.mean s));
  Sketch.observe s Float.nan;
  Alcotest.(check int) "nan carries no rank" 0 (Sketch.count s);
  List.iter (Sketch.observe s) [ 0.5; 1.5; 2.5; 100. ];
  Alcotest.(check int) "count" 4 (Sketch.count s);
  check_close "mean" (104.5 /. 4.) (Sketch.mean s);
  check_close "min" 0.5 (Sketch.min_seen s);
  check_close "max" 100. (Sketch.max_seen s);
  (* The 100. observation lands in the overflow bucket, which answers
     with the observed maximum rather than a bucket bound. *)
  check_close "overflow answered with max" 100. (Sketch.quantile s 100.);
  let cs = Sketch.counts s in
  Alcotest.(check int) "bounded buckets + overflow" 11 (Array.length cs);
  Alcotest.(check int) "overflow holds one observation" 1 cs.(Array.length cs - 1);
  Alcotest.(check int) "counts partition the stream" 4 (Array.fold_left ( + ) 0 cs)

let test_sketch_rejects () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty bounds" true (raises (fun () -> Sketch.create ~buckets:[||] ()));
  Alcotest.(check bool) "non-increasing bounds" true
    (raises (fun () -> Sketch.create ~buckets:[| 1.; 1. |] ()));
  Alcotest.(check bool) "non-finite bound" true
    (raises (fun () -> Sketch.create ~buckets:[| 1.; Float.infinity |] ()));
  let s = Sketch.uniform ~width:1. ~count:4 () in
  Sketch.observe s 1.;
  Alcotest.(check bool) "p > 100" true (raises (fun () -> Sketch.quantile s 101.));
  Alcotest.(check bool) "p < 0" true (raises (fun () -> Sketch.quantile s (-1.)))

let test_sketch_vs_exact =
  qtest "uniform sketch quantile within one bucket width of Stats.percentile" ~count:200
    seed_gen (fun seed ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 200 in
      let width = 0.5 +. Prng.float rng 4. in
      let count = 8 + Prng.int rng 56 in
      (* Keep every sample inside the bounded buckets so the width bound
         applies (overflow answers with the max instead). *)
      let limit = width *. float_of_int count in
      let xs = Array.init n (fun _ -> Prng.float rng limit) in
      let s = Sketch.uniform ~width ~count () in
      Array.iter (Sketch.observe s) xs;
      List.for_all
        (fun p ->
          let exact = Stats.percentile xs p in
          let est = Sketch.quantile s p in
          exact <= est && est -. exact <= width +. 1e-9)
        [ 0.; 10.; 25.; 50.; 75.; 90.; 95.; 99.; 100. ])

(* ------------------------------------------------------------------ *)
(* Topk                                                                *)

let test_topk_exact_under_capacity () =
  let t = Topk.create ~k:4 () in
  List.iter (Topk.observe t) [ 1; 2; 1; 3; 1; 2 ];
  Alcotest.(check (list (triple int int int)))
    "counts exact, sorted by count desc then key"
    [ (1, 3, 0); (2, 2, 0); (3, 1, 0) ]
    (Topk.top t);
  Alcotest.(check int) "total" 6 (Topk.total t);
  Alcotest.(check int) "capacity" 4 (Topk.capacity t)

let test_topk_rejects () =
  Alcotest.(check bool) "k < 1" true
    (try ignore (Topk.create ~k:0 ()); false with Invalid_argument _ -> true)

let exact_counts stream =
  let h = Hashtbl.create 16 in
  List.iter
    (fun k -> Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
    stream;
  h

let test_topk_vs_oracle =
  qtest "space-saving guarantees against the exact oracle" ~count:200 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let k = 2 + Prng.int rng 6 in
      let alphabet = k + 1 + Prng.int rng 12 in
      let n = 1 + Prng.int rng 400 in
      let stream = List.init n (fun _ -> Prng.int rng alphabet) in
      let t = Topk.create ~k () in
      List.iter (Topk.observe t) stream;
      let h = exact_counts stream in
      let truth key = Option.value ~default:0 (Hashtbl.find_opt h key) in
      let top = Topk.top t in
      let total = Topk.total t in
      let tracked_ok =
        List.for_all
          (fun (key, count, err) ->
            let tr = truth key in
            tr <= count && count - err <= tr && err * k <= total)
          top
      in
      (* Any key whose true frequency exceeds total/k must be tracked. *)
      let heavy_ok =
        List.for_all
          (fun key ->
            (truth key * k) <= total || List.exists (fun (k', _, _) -> k' = key) top)
          (List.init alphabet (fun i -> i))
      in
      total = n && List.length top <= k && tracked_ok && heavy_ok)

let test_topk_deterministic_ties () =
  (* Equal counts order by Int.compare on the key; eviction prefers the
     largest key among minimum-count slots, so the state is a pure
     function of the stream. *)
  let t = Topk.create ~k:2 () in
  List.iter (Topk.observe t) [ 9; 3; 9; 3 ];
  Alcotest.(check (list (triple int int int)))
    "count ties break on the key" [ (3, 2, 0); (9, 2, 0) ] (Topk.top t)

(* ------------------------------------------------------------------ *)
(* Event emitters: monotone steps                                      *)

let test_event_monotone_emitters () =
  let log = Event.create () in
  Event.inject log ~step:5 ~src:0 ~dst:1 ~admitted:true;
  Event.deliver log ~step:5 ~dst:1 ~self:false;
  Alcotest.(check int) "last step tracks the emitters" 5 (Event.last_step log);
  Alcotest.(check bool) "regressing step raises" true
    (try
       Event.send log ~step:3 ~edge:0 ~src:0 ~dst:1 ~dest:1 ~cost:1. ~outcome:Event.Moved;
       false
     with Invalid_argument _ -> true);
  (* record stays unchecked so the corrupt-log invariant fixtures remain
     constructible. *)
  Event.record log (Event.Deliver { step = 0; dst = 1; self = false });
  Alcotest.(check int) "record bypasses the check" 3 (Event.length log)

let test_event_observers_compose () =
  let log = Event.create () in
  let a = ref 0 and b = ref 0 in
  Event.add_observer log (fun _ _ -> incr a);
  Event.add_observer log (fun _ _ -> incr b);
  Event.inject log ~step:0 ~src:0 ~dst:1 ~admitted:true;
  Event.deliver log ~step:0 ~dst:0 ~self:true;
  Alcotest.(check (pair int int)) "both observers saw both events" (2, 2) (!a, !b)

(* ------------------------------------------------------------------ *)
(* Live windowing                                                      *)

let test_live_empty () =
  let l = Live.create ~window:10 () in
  let c = Live.finish l in
  Alcotest.(check int) "no steps" 0 c.Live.steps;
  Alcotest.(check int) "no windows" 0 c.Live.windows;
  Alcotest.(check bool) "healthy" true c.Live.healthy;
  Alcotest.(check bool) "empty latency is nan" true (Float.is_nan c.Live.latency_mean);
  let c2 = Live.finish l in
  Alcotest.(check int) "finish is idempotent" c.Live.windows c2.Live.windows

(* One packet 0 -> 2 over two hops, with a two-step gap between them. *)
let journey_events =
  [|
    Event.Inject { step = 0; src = 0; dst = 2; admitted = true };
    Event.Send
      { step = 1; edge = 0; src = 0; dst = 1; dest = 2; cost = 1.; outcome = Event.Moved };
    Event.Send
      {
        step = 4;
        edge = 1;
        src = 1;
        dst = 2;
        dest = 2;
        cost = 0.5;
        outcome = Event.Delivered;
      };
    Event.Deliver { step = 4; dst = 2; self = false };
  |]

let test_live_windows () =
  let l = Live.create ~window:2 () in
  Live.feed_array l journey_events;
  let c = Live.finish l in
  Alcotest.(check int) "steps = last observed + 1" 5 c.Live.steps;
  Alcotest.(check int) "three windows incl. the gap" 3 c.Live.windows;
  (match Live.windows l with
  | [ w0; w1; w2 ] ->
      Alcotest.(check (list int)) "consecutive indices" [ 0; 1; 2 ]
        [ w0.Live.w; w1.Live.w; w2.Live.w ];
      Alcotest.(check (pair int int)) "w0 covers steps 0-1" (0, 1)
        (w0.Live.step_lo, w0.Live.step_hi);
      Alcotest.(check int) "w0 injected" 1 w0.Live.injected;
      Alcotest.(check int) "w0 sends" 1 w0.Live.sends;
      Alcotest.(check int) "gap window saw no events" 0
        (w1.Live.injected + w1.Live.sends + w1.Live.delivered + w1.Live.control);
      Alcotest.(check int) "gap window still reports the buffered gauge" 1 w1.Live.buffered;
      Alcotest.(check int) "w2 delivered" 1 w2.Live.delivered;
      Alcotest.(check int) "w2 drained the buffer" 0 w2.Live.buffered
  | ws -> Alcotest.failf "expected 3 windows, got %d" (List.length ws));
  Alcotest.(check int) "cumulative delivered" 1 c.Live.c_delivered;
  Alcotest.(check int) "no violations" 0 c.Live.c_violations;
  Alcotest.(check bool) "healthy" true c.Live.healthy;
  check_close "latency: injected at 0, delivered at 4" 4. c.Live.latency_mean;
  check_close "two hops" 2. c.Live.hops_mean;
  check_close "energy in event order" 1.5 c.Live.energy;
  match c.Live.c_top_edges with
  | (edge, n, err) :: _ ->
      Alcotest.(check bool) "busiest edge tracked exactly" true
        ((edge = 0 || edge = 1) && n = 1 && err = 0)
  | [] -> Alcotest.fail "no top edges"

let test_live_self_delivery () =
  let l = Live.create ~window:4 () in
  Live.feed_array l
    [|
      Event.Inject { step = 0; src = 3; dst = 3; admitted = true };
      Event.Deliver { step = 0; dst = 3; self = true };
    |];
  let c = Live.finish l in
  Alcotest.(check int) "self-delivery counted as delivered" 1 c.Live.c_delivered;
  Alcotest.(check int) "and as a self-delivery" 1 c.Live.c_self_deliveries;
  Alcotest.(check int) "nothing buffered" 0 c.Live.c_buffered;
  Alcotest.(check bool) "healthy" true c.Live.healthy

let test_live_rejects () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "window < 1" true
    (raises (fun () -> ignore (Live.create ~window:0 ())));
  let l = Live.create ~window:4 () in
  Live.feed l (Event.Inject { step = 5; src = 0; dst = 1; admitted = true });
  Alcotest.(check bool) "step regression" true
    (raises (fun () -> Live.feed l (Event.Deliver { step = 3; dst = 1; self = false })));
  Alcotest.(check bool) "negative step" true
    (raises (fun () ->
         Live.feed (Live.create ~window:4 ())
           (Event.Deliver { step = -1; dst = 1; self = false })));
  ignore (Live.finish l);
  Alcotest.(check bool) "feed after finish" true
    (raises (fun () -> Live.feed l (Event.Deliver { step = 9; dst = 1; self = false })))

(* ------------------------------------------------------------------ *)
(* Online = replay = every --jobs, byte for byte                       *)

let slurp file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_file suffix f =
  let file = Filename.temp_file "live" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

let jsonl_of_live l = with_temp_file ".jsonl" (fun f -> Live.save_jsonl l f; slurp f)

(* A full pipeline run (build parallelized on [jobs] domains) with an
   online Live recorder attached to the event log; returns the stream it
   wrote and the raw log for offline replay. *)
let online_stream jobs =
  Pool.with_pool ~jobs (fun pool ->
      let rng = Prng.create 42 in
      let points = Adhoc_pointset.Generators.uniform rng 60 in
      let range = 1.5 *. Adhoc_topo.Udg.critical_range points in
      let b = Pipeline.prepare ~pool ~theta:(Float.pi /. 6.) ~range points in
      let events = Event.create () in
      let live = Live.create ~window:100 () in
      let obs = Obs.create ~events ~live () in
      ignore
        (Pipeline.run_scenario1 ~obs ~horizon:400 ~attempts:300 ~flows:2
           ~rng:(Prng.create 7) b);
      (jsonl_of_live live, Event.to_array events))

let test_live_replay_identity () =
  let online, events = online_stream (env_jobs ()) in
  Alcotest.(check bool) "stream is non-trivial" true (String.length online > 200);
  let replay = Live.create ~window:100 () in
  Live.feed_array replay events;
  Alcotest.(check string) "offline replay is byte-identical" online (jsonl_of_live replay)

let test_live_jobs_invariant () =
  let s1, _ = online_stream 1 in
  let s2, _ = online_stream 2 in
  let s4, _ = online_stream 4 in
  Alcotest.(check string) "jobs 2 = jobs 1" s1 s2;
  Alcotest.(check string) "jobs 4 = jobs 1" s1 s4

let test_live_attach_composes_with_invariants () =
  (* Live.attach must not displace an already attached invariant checker
     (both are add_observer clients of the same log). *)
  let log = Event.create () in
  let checker = Obs.Invariants.create () in
  Obs.Invariants.attach checker log;
  let l = Live.create ~window:2 () in
  Live.attach l log;
  Array.iter (Event.record log) journey_events;
  let c = Live.finish l in
  Alcotest.(check int) "live saw every event" 4 c.Live.events;
  Alcotest.(check bool) "external checker also ran" true (Obs.Invariants.ok checker)

(* ------------------------------------------------------------------ *)
(* Prometheus dump                                                     *)

let test_live_prometheus () =
  let l = Live.create ~window:2 () in
  Live.feed_array l journey_events;
  let s = with_temp_file ".prom" (fun f -> Live.save_prometheus l f; slurp f) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "dump contains %S" needle) true
        (contains s needle))
    [
      "# TYPE adhoc_live_delivered_total counter";
      "adhoc_live_delivered_total 1";
      "# TYPE adhoc_live_latency_steps summary";
      "adhoc_live_latency_steps{quantile=\"0.5\"}";
      "adhoc_live_healthy 1";
      "adhoc_live_edge_traffic{edge=";
    ];
  Alcotest.(check bool) "no timestamps" true (not (contains s "timestamp"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "live"
    [
      ( "sketch",
        [
          case "observe/quantile basics" test_sketch_basic;
          case "rejects bad input" test_sketch_rejects;
          test_sketch_vs_exact;
        ] );
      ( "topk",
        [
          case "exact under capacity" test_topk_exact_under_capacity;
          case "rejects k < 1" test_topk_rejects;
          test_topk_vs_oracle;
          case "deterministic tie-breaks" test_topk_deterministic_ties;
        ] );
      ( "event emitters",
        [
          case "monotone steps enforced" test_event_monotone_emitters;
          case "observers compose" test_event_observers_compose;
        ] );
      ( "windowing",
        [
          case "zero events" test_live_empty;
          case "windows, gaps and gauges" test_live_windows;
          case "self-delivery" test_live_self_delivery;
          case "rejects bad feeds" test_live_rejects;
        ] );
      ( "determinism",
        [
          case "online = offline replay, byte for byte" test_live_replay_identity;
          case "jobs 1/2/4 produce identical streams" test_live_jobs_invariant;
          case "attach composes with invariants" test_live_attach_composes_with_invariants;
        ] );
      ( "prometheus", [ case "text exposition shape" test_live_prometheus ] );
    ]
