(* Executable renderings of the paper's geometric lemmas (Section 2.2,
   Figures 1-4).  Each lemma is a closed-form inequality over a constrained
   point configuration; we sample configurations satisfying the hypotheses
   and check the conclusion numerically. *)

open Adhoc_geom
open Helpers

let pt = Point.make

(* Lemma 2.3: triangle ABC with |AC| <= |BC| and angle ACB <= pi/3 satisfies
   c|AB|^2 + |AC|^2 <= c|BC|^2 for c >= 1/(2 cos(angle ACB) - 1). *)
let lemma_2_3 =
  qtest "Lemma 2.3" ~count:2000 seed_gen (fun seed ->
      let rng = Prng.create seed in
      (* C at the origin; A on the x-axis; B at angle phi with |BC| >= |AC|. *)
      let ac = Prng.range rng 0.1 10. in
      let bc = ac +. Prng.range rng 0. 10. in
      let phi = Prng.range rng 1e-3 ((Float.pi /. 3.) -. 1e-3) in
      let a = pt ac 0. and b = pt (bc *. cos phi) (bc *. sin phi) in
      let c_const = 1. /. ((2. *. cos phi) -. 1.) in
      let ab2 = Point.dist2 a b in
      (c_const *. ab2) +. (ac *. ac) <= (c_const *. bc *. bc) +. 1e-6)

(* Lemma 2.4: triangle with |BC| <= |AC| <= |AB| and angle BAC <= pi/6
   satisfies |BC| <= |AB| / (2 cos(angle BAC)). *)
let lemma_2_4 =
  qtest "Lemma 2.4" ~count:5000 seed_gen (fun seed ->
      let rng = Prng.create seed in
      (* A at the origin, B on the x-axis; C at angle alpha <= pi/6. *)
      let ab = 1. in
      let alpha = Prng.range rng 1e-3 ((Float.pi /. 6.) -. 1e-3) in
      let ac = Prng.range rng 0.05 ab in
      let a = pt 0. 0. and b = pt ab 0. in
      let c = pt (ac *. cos alpha) (ac *. sin alpha) in
      let bc = Point.dist b c in
      QCheck2.assume (bc <= ac);
      ignore a;
      bc <= (ab /. (2. *. cos alpha)) +. 1e-9)

(* Lemma 2.5: points A, A1..Ak with |A Ai| >= |A A(i+1)| and consecutive
   angular gaps in [0, theta]; if the total angle is alpha then
   sum |Ai A(i+1)|^2 <= (|A A1| - |A Ak|)^2 + 2 |A A1|^2 (alpha/theta)(1 - cos theta). *)
let lemma_2_5 =
  qtest "Lemma 2.5" ~count:2000 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let theta = Prng.range rng 0.02 (Float.pi /. 3.) in
      let k = 2 + Prng.int rng 8 in
      let r = ref (Prng.range rng 1. 5.) in
      let angle = ref 0. in
      let pts =
        Array.init k (fun i ->
            if i > 0 then begin
              angle := !angle +. Prng.range rng 0. theta;
              r := !r *. Prng.range rng 0.5 1.
            end;
            pt (!r *. cos !angle) (!r *. sin !angle))
      in
      let alpha = !angle in
      let r1 = Point.dist Point.origin pts.(0) in
      let rk = Point.dist Point.origin pts.(k - 1) in
      let sum = ref 0. in
      for i = 0 to k - 2 do
        sum := !sum +. Point.dist2 pts.(i) pts.(i + 1)
      done;
      !sum
      <= ((r1 -. rk) *. (r1 -. rk))
         +. (2. *. r1 *. r1 *. (alpha /. theta) *. (1. -. cos theta))
         +. 1e-6)

(* Lemma 2.6: A = (0,0), B = (1,0), O the midpoint of AB; D with |BD| = |AB|
   and angle DBA = pi/6 (above the axis); C outside circle C(O, |OA|) with
   |AC| <= |AB|, angle CAB < pi/12, same side as D.  If E is the
   intersection of segment (C, D) with the circle, then
   angle EAB <= 2 * angle CAB. *)
let segment_circle_intersections (p : Point.t) (q : Point.t) (c : Circle.t) =
  let open Point in
  let d = q -@ p in
  let f = p -@ c.Circle.center in
  let a = dot d d in
  let b = 2. *. dot f d in
  let cc = dot f f -. (c.Circle.radius *. c.Circle.radius) in
  let disc = (b *. b) -. (4. *. a *. cc) in
  if disc < 0. || Float.equal a 0. then []
  else begin
    let sq = sqrt disc in
    let t1 = (-.b -. sq) /. (2. *. a) and t2 = (-.b +. sq) /. (2. *. a) in
    List.filter_map
      (fun t -> if t >= 0. && t <= 1. then Some (lerp p q t) else None)
      [ t1; t2 ]
  end

let lemma_2_6 =
  qtest "Lemma 2.6" ~count:5000 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let a = pt 0. 0. and b = pt 1. 0. in
      let o = Point.midpoint a b in
      let circle = Circle.make o (Point.dist o a) in
      (* D above the axis with |BD| = |AB| = 1 and angle DBA = pi/6. *)
      let d =
        let dir = Point.rotate (-.Float.pi /. 6.) Point.(a -@ b) in
        Point.(b +@ dir)
      in
      (* C above the axis, outside the circle, |AC| <= 1, angle CAB < pi/12. *)
      let gamma = Prng.range rng 1e-3 ((Float.pi /. 12.) -. 1e-3) in
      let ac = Prng.range rng 0.05 1. in
      let c = pt (ac *. cos gamma) (ac *. sin gamma) in
      QCheck2.assume (not (Circle.contains_closed circle c));
      match segment_circle_intersections c d circle with
      | [] -> QCheck2.assume_fail ()
      | es ->
          (* Take the intersection nearer C (where the segment enters). *)
          let e =
            List.fold_left
              (fun best p ->
                if Point.dist c p < Point.dist c best then p else best)
              (List.hd es) es
          in
          let eab = Point.angle_between e a b in
          eab <= (2. *. gamma) +. 1e-9)

let () =
  Alcotest.run "lemmas"
    [
      ( "geometry",
        [ lemma_2_3; lemma_2_4; lemma_2_5; lemma_2_6 ] );
    ]
