(* adhoc_lint engine tests.

   The corpus under lint_fixtures/ gives every rule a triggering fixture, a
   non-triggering fixture and a waiver fixture.  Fixtures under
   lint_fixtures/lib/ are scope-inferred as library code (the path contains
   a "lib" segment), the rest lint as tool code.  Diagnostics are
   golden-diffed against their rendered [file:line:col [rule] message] form,
   and the adhoc-lint/2 JSON report is shape-checked.  The Typedtree
   layer has its own corpus and suite (cmt_fixtures/, test_lint_cmt.ml);
   these fixtures exercise the Parsetree layer, so the cmt pass finds no
   artifacts for them and cmt_units stays 0. *)

open Adhoc_lint_engine

(* Under `dune runtest` the cwd is the test directory; under a bare
   `dune exec` it is the workspace root.  Accept both. *)
let fixture_root =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let fixture name = Filename.concat fixture_root name

(* Golden strings always use the runtest-relative "lint_fixtures/" prefix;
   rebase diagnostics when running from the workspace root. *)
let rebase file =
  if fixture_root = "lint_fixtures" then file
  else
    let n = String.length fixture_root in
    "lint_fixtures" ^ String.sub file n (String.length file - n)

let lint path =
  let o = Lint_driver.check_file path in
  List.sort Lint_diag.compare_diag o.Lint_driver.diags
  |> List.map (fun d -> Lint_diag.to_string { d with Lint_diag.file = rebase d.Lint_diag.file })

let check_diags name path expected () =
  Alcotest.(check (list string)) name expected (lint (fixture path))

(* ------------------------------------------------------------------ *)
(* Determinism rules (lib scope)                                       *)

let test_bad_determinism =
  check_diags "all determinism rules fire" "lib/bad_determinism.ml"
    [
      "lint_fixtures/lib/bad_determinism.ml:3:13 [ambient-rng] ambient PRNG in library code; \
       thread an explicit Adhoc_util.Prng.t instead";
      "lint_fixtures/lib/bad_determinism.ml:5:15 [wall-clock] wall-clock read Sys.time in \
       library code breaks reproducibility; take time as input or go through Adhoc_obs.Span";
      "lint_fixtures/lib/bad_determinism.ml:7:14 [wall-clock] wall-clock read Unix.gettimeofday \
       in library code breaks reproducibility; take time as input or go through Adhoc_obs.Span";
      "lint_fixtures/lib/bad_determinism.ml:9:17 [hashtbl-order] Hashtbl.fold traverses in \
       unspecified order; iterate sorted keys (Adhoc_util.Det) or justify order-independence \
       in a waiver";
      "lint_fixtures/lib/bad_determinism.ml:11:18 [hashtbl-order] Hashtbl.iter traverses in \
       unspecified order; iterate sorted keys (Adhoc_util.Det) or justify order-independence \
       in a waiver";
    ]

let test_good_determinism =
  check_diags "injected rng and point-wise Hashtbl are clean" "lib/good_determinism.ml" []

let test_scope_sensitivity () =
  let source = "let pick n = Random.int n\n" in
  let as_lib =
    Lint_driver.check_source ~scope:Lint_rules.Lib ~has_mli:true ~file:"inline.ml" source
  in
  let as_tool =
    Lint_driver.check_source ~scope:Lint_rules.Tool ~has_mli:true ~file:"inline.ml" source
  in
  Alcotest.(check int) "lib scope flags ambient rng" 1 (List.length as_lib.Lint_driver.diags);
  Alcotest.(check int) "tool scope allows ambient rng" 0 (List.length as_tool.Lint_driver.diags)

(* ------------------------------------------------------------------ *)
(* Float safety (any scope)                                            *)

let test_bad_float =
  check_diags "polymorphic comparisons on floats" "bad_float.ml"
    [
      "lint_fixtures/bad_float.ml:4:16 [float-cmp] polymorphic = on a float operand; use \
       Float.equal (nan-aware, monomorphic)";
      "lint_fixtures/bad_float.ml:6:16 [float-cmp] polymorphic <> on a float operand; use \
       Float.equal (nan-aware, monomorphic)";
      "lint_fixtures/bad_float.ml:8:14 [float-cmp] polymorphic compare on a float operand; use \
       Float.compare (nan-aware, monomorphic)";
      "lint_fixtures/bad_float.ml:10:14 [float-minmax] polymorphic min on a float operand; use \
       Float.min";
      "lint_fixtures/bad_float.ml:10:22 [float-minmax] polymorphic max on a float operand; use \
       Float.max";
    ]

let test_good_float = check_diags "Float.* comparisons are clean" "good_float.ml" []

let test_float_flagged_module =
  check_diags "bare compare in a float-flagged basename" "stats.ml"
    [
      "lint_fixtures/stats.ml:4:24 [float-cmp] bare polymorphic compare in a float-flagged \
       module; use Float.compare";
    ]

(* ------------------------------------------------------------------ *)
(* Polymorphic compare confinement (lib scope)                         *)

let test_bad_poly_compare =
  check_diags "bare and Stdlib-qualified compare fire" "lib/bad_poly_compare.ml"
    [
      "lint_fixtures/lib/bad_poly_compare.ml:3:29 [poly-compare] bare polymorphic compare in \
       library code; use a monomorphic comparator (Int.compare, Float.compare, ...)";
      "lint_fixtures/lib/bad_poly_compare.ml:5:20 [poly-compare] bare polymorphic compare in \
       library code; use a monomorphic comparator (Int.compare, Float.compare, ...)";
    ]

let test_good_poly_compare =
  check_diags "monomorphic comparators and functor comparators are clean"
    "lib/good_poly_compare.ml" []

let test_poly_compare_tool_scope () =
  let source = "let sort_ids ids = List.sort compare ids\n" in
  let as_tool = Lint_driver.check_source ~scope:Lint_rules.Tool ~file:"inline.ml" source in
  Alcotest.(check int) "tool scope allows bare compare" 0 (List.length as_tool.Lint_driver.diags)

(* ------------------------------------------------------------------ *)
(* Obs purity and catch hygiene                                        *)

let test_bad_obs =
  check_diags "std-stream writes in lib scope" "lib/bad_obs.ml"
    [
      "lint_fixtures/lib/bad_obs.ml:4:2 [obs-purity] print_endline in library code; return \
       data or emit through an Adhoc_obs sink";
      "lint_fixtures/lib/bad_obs.ml:5:2 [obs-purity] Printf.printf in library code; return \
       data or emit through an Adhoc_obs sink";
      "lint_fixtures/lib/bad_obs.ml:6:2 [obs-purity] prerr_endline in library code; return \
       data or emit through an Adhoc_obs sink";
    ]

let test_good_obs = check_diags "Printf.sprintf is pure" "lib/good_obs.ml" []

let test_bad_channel =
  check_diags "output-channel writes in lib scope" "lib/bad_channel.ml"
    [
      "lint_fixtures/lib/bad_channel.ml:4:11 [obs-purity] open_out in library code; confine \
       file serialisation to the obs layer (lib/obs/)";
      "lint_fixtures/lib/bad_channel.ml:5:2 [obs-purity] output_string in library code; \
       confine file serialisation to the obs layer (lib/obs/)";
      "lint_fixtures/lib/bad_channel.ml:6:2 [obs-purity] Printf.fprintf in library code; \
       confine file serialisation to the obs layer (lib/obs/)";
    ]

let test_channel_obs_path =
  check_diags "channel writes under lib/obs/ are exempt" "lib/obs/writes_channel.ml" []

let test_channel_exempt_source () =
  let source = "let oc () = open_out \"artifact.txt\"\n" in
  let flagged = Lint_driver.check_source ~scope:Lint_rules.Lib ~file:"inline.ml" source in
  let exempt =
    Lint_driver.check_source ~scope:Lint_rules.Lib ~obs_exempt:true ~file:"inline.ml" source
  in
  Alcotest.(check int) "channel write fires by default" 1 (List.length flagged.Lint_driver.diags);
  Alcotest.(check int) "exemption silences it" 0 (List.length exempt.Lint_driver.diags)

let test_bad_catch =
  check_diags "catch-all handler" "bad_catch.ml"
    [
      "lint_fixtures/bad_catch.ml:3:46 [catch-all] catch-all handler swallows every exception \
       (including Out_of_memory and asserts); match the exceptions you mean";
    ]

let test_good_catch = check_diags "named handler is clean" "good_catch.ml" []

(* ------------------------------------------------------------------ *)
(* Domain confinement                                                  *)

let test_bad_domain =
  check_diags "raw Domain use flagged in any scope" "bad_domain.ml"
    [
      "lint_fixtures/bad_domain.ml:3:8 [raw-domain] raw Domain.* outside Adhoc_util.Pool; \
       thread a Pool.t through the kernel instead";
      "lint_fixtures/bad_domain.ml:5:13 [raw-domain] raw Domain.* outside Adhoc_util.Pool; \
       thread a Pool.t through the kernel instead";
    ]

let test_domain_exempt =
  check_diags "the pool module path is exempt" "lib/util/pool.ml" []

let test_domain_exempt_source () =
  let source = "let d = Domain.spawn (fun () -> ())\n" in
  let flagged = Lint_driver.check_source ~file:"inline.ml" source in
  let exempt = Lint_driver.check_source ~domain_exempt:true ~file:"inline.ml" source in
  Alcotest.(check int) "raw-domain fires by default" 1 (List.length flagged.Lint_driver.diags);
  Alcotest.(check int) "exemption silences it" 0 (List.length exempt.Lint_driver.diags)

(* ------------------------------------------------------------------ *)
(* Gc confinement                                                      *)

let test_bad_gc =
  check_diags "raw Gc use flagged in any scope" "bad_gc.ml"
    [
      "lint_fixtures/bad_gc.ml:3:12 [raw-gc] raw Gc.* outside Adhoc_obs; read GC telemetry \
       through Adhoc_obs.Gcstat";
      "lint_fixtures/bad_gc.ml:5:9 [raw-gc] raw Gc.* outside Adhoc_obs; read GC telemetry \
       through Adhoc_obs.Gcstat";
    ]

let test_gc_exempt = check_diags "the obs layer path is exempt" "lib/obs/uses_gc.ml" []

let test_gc_exempt_source () =
  let source = "let s = Gc.quick_stat ()\n" in
  let flagged = Lint_driver.check_source ~file:"inline.ml" source in
  let exempt = Lint_driver.check_source ~gc_exempt:true ~file:"inline.ml" source in
  Alcotest.(check int) "raw-gc fires by default" 1 (List.length flagged.Lint_driver.diags);
  Alcotest.(check int) "exemption silences it" 0 (List.length exempt.Lint_driver.diags)

(* ------------------------------------------------------------------ *)
(* Interface hygiene                                                   *)

let test_no_mli =
  check_diags "library module without interface" "lib/no_mli.ml"
    [
      "lint_fixtures/lib/no_mli.ml:1:0 [mli-required] library module has no .mli interface; \
       its whole surface is public API";
    ]

let test_no_mli_waived = check_diags "mli-required waiver on line 1" "lib/no_mli_waived.ml" []

let test_mli_presence_clears () =
  let o =
    Lint_driver.check_source ~scope:Lint_rules.Lib ~has_mli:true ~file:"inline.ml"
      "let answer = 42\n"
  in
  Alcotest.(check int) "has_mli suppresses mli-required" 0 (List.length o.Lint_driver.diags)

(* ------------------------------------------------------------------ *)
(* Waivers                                                             *)

let used_waiver_rules path =
  let o = Lint_driver.check_file (fixture path) in
  Alcotest.(check (list string)) (path ^ " lints clean") [] (List.map Lint_diag.to_string o.diags);
  List.map (fun w -> w.Lint_diag.w_rule) o.Lint_driver.used_waivers |> List.sort String.compare

let test_waived_lib () =
  Alcotest.(check (list string)) "lib waivers all used"
    [ "ambient-rng"; "hashtbl-order"; "obs-purity"; "wall-clock" ]
    (used_waiver_rules "lib/waived.ml")

let test_waived_poly_compare () =
  Alcotest.(check (list string)) "poly-compare waiver used" [ "poly-compare" ]
    (used_waiver_rules "lib/waived_poly_compare.ml")

let test_waived_channel () =
  Alcotest.(check (list string)) "channel waiver covers both write lines" [ "obs-purity" ]
    (used_waiver_rules "lib/waived_channel.ml")

let test_waived_tool () =
  Alcotest.(check (list string)) "tool waivers all used"
    [ "catch-all"; "float-cmp"; "float-minmax"; "raw-domain"; "raw-gc" ]
    (used_waiver_rules "waived_tool.ml")

let test_waiver_reasons_kept () =
  let o = Lint_driver.check_file (fixture "lib/waived.ml") in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "waiver %s has a reason" w.Lint_diag.w_rule)
        true
        (String.length w.Lint_diag.w_reason > 0))
    o.Lint_driver.used_waivers

let test_bad_waiver =
  check_diags "malformed, unknown and unused waivers" "bad_waiver.ml"
    [
      "lint_fixtures/bad_waiver.ml:1:0 [waiver-hygiene] waiver for hashtbl-order carries no \
       reason; justify it after a dash";
      "lint_fixtures/bad_waiver.ml:4:0 [waiver-hygiene] waiver names unknown rule \
       \"no-such-rule\"";
      "lint_fixtures/bad_waiver.ml:6:0 [waiver-hygiene] unused waiver for float-cmp; delete it \
       or move it to the offending line";
    ]

let test_waiver_covers_next_line () =
  (* The marker is split so this source string is not itself scanned as a
     waiver when adhoc_lint runs over the test suite. *)
  let source =
    "(* li" ^ "nt: allow float-cmp -- next-line coverage under test *)\nlet z x = x = 0.\n"
  in
  let o = Lint_driver.check_source ~file:"inline.ml" source in
  Alcotest.(check int) "diag on line below waiver suppressed" 0 (List.length o.Lint_driver.diags);
  Alcotest.(check int) "waiver marked used" 1 (List.length o.Lint_driver.used_waivers)

(* ------------------------------------------------------------------ *)
(* Parse failures                                                      *)

let test_bad_parse =
  check_diags "syntax error surfaces as parse-error" "bad_parse.ml"
    [ "lint_fixtures/bad_parse.ml:3:4 [parse-error] syntax error" ]

(* ------------------------------------------------------------------ *)
(* Whole-corpus run and JSON report shape                              *)

let corpus_files = 38
let corpus_errors = 29
let corpus_waivers = 12

let test_run_totals () =
  let r = Lint_driver.run [ fixture_root ] in
  Alcotest.(check int) "files walked" corpus_files r.Lint_diag.files;
  Alcotest.(check int) "errors" corpus_errors (Lint_diag.errors r);
  Alcotest.(check int) "warnings" 0 (Lint_diag.warnings r);
  Alcotest.(check int) "used waivers" corpus_waivers (List.length r.Lint_diag.used_waivers);
  let count rule =
    match
      List.find_opt (fun rc -> rc.Lint_diag.rc_id = rule) r.Lint_diag.rule_counts
    with
    | Some rc -> rc.Lint_diag.rc_count
    | None -> Alcotest.failf "rule %s missing from report" rule
  in
  Alcotest.(check int) "float-cmp count" 4 (count "float-cmp");
  Alcotest.(check int) "poly-compare count" 2 (count "poly-compare");
  Alcotest.(check int) "hashtbl-order count" 2 (count "hashtbl-order");
  Alcotest.(check int) "raw-domain count" 2 (count "raw-domain");
  Alcotest.(check int) "raw-gc count" 2 (count "raw-gc");
  Alcotest.(check int) "obs-purity count" 6 (count "obs-purity");
  Alcotest.(check int) "waiver-hygiene count" 3 (count "waiver-hygiene");
  Alcotest.(check int) "every registered rule reported"
    (List.length Lint_rules.rules)
    (List.length r.Lint_diag.rule_counts)

let test_run_demote () =
  let r = Lint_driver.run ~demote:[ "float-cmp" ] [ fixture_root ] in
  Alcotest.(check int) "demoted diags become warnings" 4 (Lint_diag.warnings r);
  Alcotest.(check int) "remaining errors" (corpus_errors - 4) (Lint_diag.errors r)

let test_json_shape () =
  let r = Lint_driver.run [ fixture_root ] in
  let json = Lint_diag.to_json r in
  let has needle =
    Alcotest.(check bool) (Printf.sprintf "report contains %s" needle) true
      (Lint_diag.find_sub json needle 0 <> None)
  in
  has "\"schema\": \"adhoc-lint/2\"";
  has (Printf.sprintf "\"files\": %d" corpus_files);
  has "\"cmt_units\": 0";
  has (Printf.sprintf "\"errors\": %d" corpus_errors);
  has "\"rules\": [";
  has "\"diagnostics\": [";
  has "\"waivers\": [";
  has "{\"id\": \"float-cmp\", \"severity\": \"error\", \"layer\": \"parsetree\", \"count\": 4, \"waived\": ";
  has "\"layer\": \"cmt\", \"count\": 0";
  (* Escaping: the unknown-rule message carries quotes. *)
  has "unknown rule \\\"no-such-rule\\\""

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "determinism",
        [
          Alcotest.test_case "bad fixture" `Quick test_bad_determinism;
          Alcotest.test_case "good fixture" `Quick test_good_determinism;
          Alcotest.test_case "scope sensitivity" `Quick test_scope_sensitivity;
        ] );
      ( "float-safety",
        [
          Alcotest.test_case "bad fixture" `Quick test_bad_float;
          Alcotest.test_case "good fixture" `Quick test_good_float;
          Alcotest.test_case "float-flagged module" `Quick test_float_flagged_module;
        ] );
      ( "poly-compare",
        [
          Alcotest.test_case "bad fixture" `Quick test_bad_poly_compare;
          Alcotest.test_case "good fixture" `Quick test_good_poly_compare;
          Alcotest.test_case "waived fixture" `Quick test_waived_poly_compare;
          Alcotest.test_case "tool scope" `Quick test_poly_compare_tool_scope;
        ] );
      ( "obs-and-catch",
        [
          Alcotest.test_case "bad obs" `Quick test_bad_obs;
          Alcotest.test_case "good obs" `Quick test_good_obs;
          Alcotest.test_case "bad channel" `Quick test_bad_channel;
          Alcotest.test_case "obs path channel" `Quick test_channel_obs_path;
          Alcotest.test_case "channel exempt flag" `Quick test_channel_exempt_source;
          Alcotest.test_case "bad catch" `Quick test_bad_catch;
          Alcotest.test_case "good catch" `Quick test_good_catch;
        ] );
      ( "domain-confinement",
        [
          Alcotest.test_case "bad fixture" `Quick test_bad_domain;
          Alcotest.test_case "exempt path" `Quick test_domain_exempt;
          Alcotest.test_case "exempt flag" `Quick test_domain_exempt_source;
        ] );
      ( "gc-confinement",
        [
          Alcotest.test_case "bad fixture" `Quick test_bad_gc;
          Alcotest.test_case "exempt path" `Quick test_gc_exempt;
          Alcotest.test_case "exempt flag" `Quick test_gc_exempt_source;
        ] );
      ( "interfaces",
        [
          Alcotest.test_case "missing mli" `Quick test_no_mli;
          Alcotest.test_case "waived missing mli" `Quick test_no_mli_waived;
          Alcotest.test_case "present mli" `Quick test_mli_presence_clears;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "lib waivers used" `Quick test_waived_lib;
          Alcotest.test_case "channel waiver used" `Quick test_waived_channel;
          Alcotest.test_case "tool waivers used" `Quick test_waived_tool;
          Alcotest.test_case "reasons kept" `Quick test_waiver_reasons_kept;
          Alcotest.test_case "hygiene diagnostics" `Quick test_bad_waiver;
          Alcotest.test_case "next-line coverage" `Quick test_waiver_covers_next_line;
        ] );
      ( "parsing",
        [ Alcotest.test_case "syntax error" `Quick test_bad_parse ] );
      ( "report",
        [
          Alcotest.test_case "run totals" `Quick test_run_totals;
          Alcotest.test_case "demotion" `Quick test_run_demote;
          Alcotest.test_case "json shape" `Quick test_json_shape;
        ] );
    ]
