module Mac = Adhoc_mac.Mac
module Honeycomb = Adhoc_mac.Honeycomb
module Conflict = Adhoc_interference.Conflict
module Model = Adhoc_interference.Model
module Graph = Adhoc_graph.Graph
module Udg = Adhoc_topo.Udg
module Theta_alg = Adhoc_topo.Theta_alg
module Hexgrid = Adhoc_geom.Hexgrid
open Helpers

let overlay_instance seed =
  let points = points_of_seed ~min_n:8 ~max_n:35 seed in
  let range = 2. *. Udg.critical_range points in
  let alg = Theta_alg.build ~theta:(Float.pi /. 6.) ~range points in
  let g = Theta_alg.overlay alg in
  let c = Conflict.build (Model.make ~delta:0.5) ~points g in
  (points, range, g, c)

let all_requests g =
  Graph.fold_edges g ~init:[] ~f:(fun acc e edge ->
      { Mac.edge = e; sender = edge.Graph.u; benefit = 1. +. float_of_int e } :: acc)
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Color MAC                                                           *)

let test_color_grants_independent =
  qtest "colour MAC grants are non-interfering" ~count:40 seed_gen (fun seed ->
      let _, _, g, c = overlay_instance seed in
      let mac = Mac.color c in
      let reqs = all_requests g in
      let ok = ref true in
      for step = 0 to 20 do
        let granted = mac.Mac.select ~step reqs in
        if not (Conflict.independent c (List.map (fun r -> r.Mac.edge) granted)) then ok := false
      done;
      !ok)

let test_color_covers_all_edges =
  qtest "every edge granted once per colour cycle" ~count:40 seed_gen (fun seed ->
      let _, _, g, c = overlay_instance seed in
      let mac = Mac.color c in
      let reqs = all_requests g in
      let _, k = Conflict.greedy_coloring c in
      let granted = ref [] in
      for step = 0 to max 0 (k - 1) do
        granted := List.map (fun r -> r.Mac.edge) (mac.Mac.select ~step reqs) @ !granted
      done;
      List.sort_uniq compare !granted = List.init (Graph.num_edges g) Fun.id)

(* ------------------------------------------------------------------ *)
(* Random interference MAC (Lemma 3.2 setting)                         *)

let test_random_mac_rate () =
  let _, _, g, c = overlay_instance 5 in
  QCheck2.assume (Graph.num_edges g > 0);
  let rng = Prng.create 42 in
  let mac = Mac.random_interference ~rng c in
  let reqs = all_requests g in
  let sizes = Conflict.neighborhood_bounds c in
  let grants = Array.make (Graph.num_edges g) 0 in
  let steps = 20000 in
  for step = 1 to steps do
    List.iter (fun r -> grants.(r.Mac.edge) <- grants.(r.Mac.edge) + 1) (mac.Mac.select ~step reqs)
  done;
  (* Each edge's empirical activation rate ~ 1/(2 I_e), within 5 sigma. *)
  Array.iteri
    (fun e count ->
      let p = 1. /. (2. *. float_of_int (max 1 sizes.(e))) in
      let mean = p *. float_of_int steps in
      let sigma = sqrt (float_of_int steps *. p *. (1. -. p)) in
      let dev = Float.abs (float_of_int count -. mean) in
      if dev > 5. *. sigma +. 1. then
        Alcotest.failf "edge %d: rate %f expected %f" e
          (float_of_int count /. float_of_int steps)
          p)
    grants

let test_random_mac_subset =
  qtest "random MAC grants subset of requests" ~count:30 seed_gen (fun seed ->
      let _, _, g, c = overlay_instance seed in
      let rng = Prng.create seed in
      let mac = Mac.random_interference ~rng c in
      let reqs = all_requests g in
      let granted = mac.Mac.select ~step:0 reqs in
      List.for_all (fun r -> List.memq r reqs) granted)

(* ------------------------------------------------------------------ *)
(* Greedy independent MAC                                              *)

let test_greedy_mac =
  qtest "greedy MAC: independent, maximal, benefit-greedy" ~count:40 seed_gen (fun seed ->
      let _, _, g, c = overlay_instance seed in
      let mac = Mac.greedy_independent c in
      let reqs = all_requests g in
      let granted = mac.Mac.select ~step:0 reqs in
      let ids = List.map (fun r -> r.Mac.edge) granted in
      Conflict.independent c ids
      && List.for_all
           (fun r ->
             List.mem r.Mac.edge ids
             || List.exists (fun e -> Conflict.interfere c r.Mac.edge e) ids)
           reqs)

let test_all_mac () =
  let reqs = [ { Mac.edge = 0; sender = 1; benefit = 2. } ] in
  Alcotest.(check bool) "identity" true (Mac.all.Mac.select ~step:3 reqs == reqs)


let test_csma_independent_and_maximal =
  qtest "CSMA grants are independent and maximal" ~count:40 seed_gen (fun seed ->
      let _, _, g, c = overlay_instance seed in
      let mac = Mac.csma ~rng:(Prng.create seed) c in
      let reqs = all_requests g in
      let granted = mac.Mac.select ~step:0 reqs in
      let ids = List.map (fun r -> r.Mac.edge) granted in
      Conflict.independent c ids
      && List.for_all
           (fun r ->
             List.mem r.Mac.edge ids
             || List.exists (fun e -> Conflict.interfere c r.Mac.edge e) ids)
           reqs)

let test_csma_fairness () =
  (* Two mutually interfering edges: over many steps each must win about
     half the time (random back-off order). *)
  let points = [| Point.make 0. 0.; Point.make 0.1 0.; Point.make 0. 0.05; Point.make 0.1 0.05 |] in
  let g = Graph.geometric points [ (0, 1); (2, 3) ] in
  let c = Conflict.build (Model.make ~delta:0.5) ~points g in
  QCheck2.assume (Conflict.interference_number c > 0);
  let mac = Mac.csma ~rng:(Prng.create 3) c in
  let reqs =
    [ { Mac.edge = 0; sender = 0; benefit = 1. }; { Mac.edge = 1; sender = 2; benefit = 1. } ]
  in
  let wins = Array.make 2 0 in
  let steps = 20000 in
  for step = 1 to steps do
    match mac.Mac.select ~step reqs with
    | [ r ] -> wins.(r.Mac.edge) <- wins.(r.Mac.edge) + 1
    | l -> Alcotest.failf "expected exactly one grant, got %d" (List.length l)
  done;
  let p = float_of_int wins.(0) /. float_of_int steps in
  if Float.abs (p -. 0.5) > 0.02 then Alcotest.failf "unfair: %f" p

(* ------------------------------------------------------------------ *)
(* Honeycomb MAC                                                       *)

let honeycomb_instance () =
  (* Nodes spread over several hexagons: box 20x20, range 1. *)
  let rng = Prng.create 77 in
  let box = Adhoc_geom.Box.square 20. in
  let points = Adhoc_pointset.Generators.uniform ~box rng 120 in
  let hc =
    Honeycomb.create ~delta:0.5 ~range:1. ~threshold:2. ~rng:(Prng.create 5) points
  in
  (points, hc)

let test_honeycomb_one_per_hexagon () =
  let _, hc = honeycomb_instance () in
  let mac = Honeycomb.mac hc in
  (* Requests everywhere with benefit above threshold; grants must name at
     most one sender-hexagon each. *)
  let reqs =
    List.init 120 (fun i -> { Mac.edge = i; sender = i; benefit = 3. +. float_of_int (i mod 7) })
  in
  for step = 0 to 50 do
    let granted = mac.Mac.select ~step reqs in
    let hexes = List.map (fun r -> Honeycomb.hexagon_of hc r.Mac.sender) granted in
    let distinct = List.sort_uniq Hexgrid.compare_coord hexes in
    Alcotest.(check int) "one contestant per hexagon" (List.length hexes) (List.length distinct)
  done

let test_honeycomb_threshold () =
  let _, hc = honeycomb_instance () in
  let mac = Honeycomb.mac hc in
  let low = List.init 120 (fun i -> { Mac.edge = i; sender = i; benefit = 1. }) in
  for step = 0 to 20 do
    Alcotest.(check int) "below threshold never granted" 0
      (List.length (mac.Mac.select ~step low))
  done

let test_honeycomb_rate () =
  let _, hc = honeycomb_instance () in
  let mac = Honeycomb.mac hc in
  (* One hexagon contested: a single high-benefit request. *)
  let reqs = [ { Mac.edge = 0; sender = 0; benefit = 10. } ] in
  let grants = ref 0 in
  let steps = 30000 in
  for step = 1 to steps do
    if mac.Mac.select ~step reqs <> [] then incr grants
  done;
  let p = float_of_int !grants /. float_of_int steps in
  if Float.abs (p -. (1. /. 6.)) > 0.02 then Alcotest.failf "p_t off: %f" p

let test_honeycomb_picks_max_benefit () =
  let points = [| Point.make 0.1 0.1; Point.make 0.2 0.2 |] in
  (* Both nodes in the same hexagon (side 4, both near origin). *)
  let hc =
    Honeycomb.create ~p_t:1. ~delta:0.5 ~range:1. ~threshold:0.5 ~rng:(Prng.create 1) points
  in
  Alcotest.(check bool) "same hexagon" true
    (Hexgrid.equal_coord (Honeycomb.hexagon_of hc 0) (Honeycomb.hexagon_of hc 1));
  let mac = Honeycomb.mac hc in
  let reqs =
    [
      { Mac.edge = 0; sender = 0; benefit = 1. };
      { Mac.edge = 1; sender = 1; benefit = 5. };
    ]
  in
  match mac.Mac.select ~step:0 reqs with
  | [ r ] -> Alcotest.(check int) "max benefit wins" 1 r.Mac.edge
  | l -> Alcotest.failf "expected one grant, got %d" (List.length l)

let test_honeycomb_grid_side () =
  let _, hc = honeycomb_instance () in
  check_close "side = (3+2delta)*range" 4. (Hexgrid.side (Honeycomb.grid hc))


(* Lemma 3.7: with p_t <= 1/6, each contestant succeeds (no interfering
   contestant transmits simultaneously) with probability at least 1/2.
   Measured over many steps with all hexagons contested. *)
let test_honeycomb_lemma_3_7 () =
  let rng = Prng.create 21 in
  let box = Adhoc_geom.Box.square 30. in
  let points = Adhoc_pointset.Generators.uniform ~box rng 300 in
  let range = 1. in
  let gstar = Adhoc_topo.Udg.build ~range points in
  QCheck2.assume (Graph.num_edges gstar > 10);
  let conflict = Conflict.build (Model.make ~delta:0.5) ~points gstar in
  let hc =
    Honeycomb.create ~delta:0.5 ~range ~threshold:0.5 ~rng:(Prng.create 22) points
  in
  let mac = Honeycomb.mac hc in
  let requests =
    Graph.fold_edges gstar ~init:[] ~f:(fun acc e edge ->
        { Mac.edge = e; sender = edge.Graph.u; benefit = 1. +. float_of_int (e mod 5) } :: acc)
  in
  let granted_total = ref 0 and collided_total = ref 0 in
  for step = 1 to 20000 do
    let granted = mac.Mac.select ~step requests in
    List.iter
      (fun (r : Mac.request) ->
        incr granted_total;
        if
          List.exists
            (fun (r' : Mac.request) ->
              r'.Mac.edge <> r.Mac.edge && Conflict.interfere conflict r.Mac.edge r'.Mac.edge)
            granted
        then incr collided_total)
      granted
  done;
  QCheck2.assume (!granted_total > 500);
  let p = float_of_int !collided_total /. float_of_int !granted_total in
  if p > 0.5 then Alcotest.failf "contestant collision probability %.3f > 1/2" p

(* Lemma 3.6 (shape): the contestants' total benefit is within a constant
   factor of the best independent set's total benefit. *)
let test_honeycomb_lemma_3_6 () =
  let rng = Prng.create 23 in
  let box = Adhoc_geom.Box.square 30. in
  let points = Adhoc_pointset.Generators.uniform ~box rng 300 in
  let range = 1. in
  let gstar = Adhoc_topo.Udg.build ~range points in
  QCheck2.assume (Graph.num_edges gstar > 10);
  let conflict = Conflict.build (Model.make ~delta:0.5) ~points gstar in
  let hc =
    Honeycomb.create ~p_t:1. ~delta:0.5 ~range ~threshold:0.5 ~rng:(Prng.create 24) points
  in
  let requests =
    Graph.fold_edges gstar ~init:[] ~f:(fun acc e edge ->
        { Mac.edge = e; sender = edge.Graph.u; benefit = 1. +. float_of_int (e mod 7) } :: acc)
  in
  (* p_t = 1: the grant is exactly the contestant set. *)
  let contestants = (Honeycomb.mac hc).Mac.select ~step:0 requests in
  let benefit l = List.fold_left (fun a (r : Mac.request) -> a +. r.Mac.benefit) 0. l in
  (* Benefit-greedy independent set as a stand-in for the best one. *)
  let indep = (Mac.greedy_independent conflict).Mac.select ~step:0 requests in
  Alcotest.(check bool) "within constant factor" true
    (benefit contestants *. 24. >= benefit indep)

let () =
  Alcotest.run "mac"
    [
      ( "color",
        [ test_color_grants_independent; test_color_covers_all_edges ] );
      ( "random",
        [ case "activation rate" test_random_mac_rate; test_random_mac_subset ] );
      ("greedy", [ test_greedy_mac; case "all-mac identity" test_all_mac ]);
      ( "csma",
        [ test_csma_independent_and_maximal; case "fairness" test_csma_fairness ] );
      ( "honeycomb",
        [
          case "one per hexagon" test_honeycomb_one_per_hexagon;
          case "threshold" test_honeycomb_threshold;
          case "transmit rate" test_honeycomb_rate;
          case "max benefit wins" test_honeycomb_picks_max_benefit;
          case "grid side" test_honeycomb_grid_side;
          case "Lemma 3.7 collision bound" test_honeycomb_lemma_3_7;
          case "Lemma 3.6 benefit factor" test_honeycomb_lemma_3_6;
        ] );
    ]
