open Adhoc_geom
open Helpers

let pt = Point.make

(* ------------------------------------------------------------------ *)
(* Point                                                               *)

let test_point_arith () =
  let open Point in
  let a = pt 1. 2. and b = pt 3. 5. in
  check_close "sum x" 4. (a +@ b).x;
  check_close "sum y" 7. (a +@ b).y;
  check_close "diff x" 2. (b -@ a).x;
  check_close "scale" 6. (scale 2. (pt 3. 1.)).x;
  check_close "dot" 13. (dot a b);
  check_close "cross" (-1.) (cross a b)

let test_point_dist () =
  check_close "3-4-5" 5. (Point.dist (pt 0. 0.) (pt 3. 4.));
  check_close "dist2" 25. (Point.dist2 (pt 0. 0.) (pt 3. 4.));
  check_close "energy k2" 25. (Point.energy ~kappa:2. (pt 0. 0.) (pt 3. 4.));
  check_close "energy k3" 125. (Point.energy ~kappa:3. (pt 0. 0.) (pt 3. 4.));
  check_close "energy default" 4. (Point.energy (pt 0. 0.) (pt 2. 0.))

let test_point_angles () =
  check_close "east" 0. (Point.angle_of (pt 0. 0.) (pt 1. 0.));
  check_close "north" (Float.pi /. 2.) (Point.angle_of (pt 0. 0.) (pt 0. 1.));
  check_close "west" Float.pi (Point.angle_of (pt 0. 0.) (pt (-1.) 0.));
  check_close "south" (3. *. Float.pi /. 2.) (Point.angle_of (pt 0. 0.) (pt 0. (-1.)));
  check_close "right angle" (Float.pi /. 2.)
    (Point.angle_between (pt 1. 0.) (pt 0. 0.) (pt 0. 1.));
  check_close "collinear" 0. (Point.angle_between (pt 1. 0.) (pt 0. 0.) (pt 2. 0.))

let test_point_rotate () =
  let r = Point.rotate (Float.pi /. 2.) (pt 1. 0.) in
  check_close ~eps:1e-12 "rot x" 0. r.Point.x;
  check_close "rot y" 1. r.Point.y

let test_point_misc () =
  let m = Point.midpoint (pt 0. 0.) (pt 2. 4.) in
  check_close "mid x" 1. m.Point.x;
  let l = Point.lerp (pt 0. 0.) (pt 10. 0.) 0.3 in
  check_close "lerp" 3. l.Point.x;
  Alcotest.(check bool) "equal" true (Point.equal (pt 1. 2.) (pt 1. 2.));
  Alcotest.(check bool) "compare" true (Point.compare (pt 1. 2.) (pt 1. 3.) < 0);
  Alcotest.(check string) "to_string" "(1, 2)" (Point.to_string (pt 1. 2.))

let test_point_rotate_preserves_norm =
  qtest "rotation preserves norm"
    QCheck2.Gen.(triple (float_range (-10.) 10.) (float_range (-10.) 10.) (float_range 0. 6.28))
    (fun (x, y, a) ->
      let p = pt x y in
      close ~eps:1e-9 (Point.norm p) (Point.norm (Point.rotate a p)))

(* ------------------------------------------------------------------ *)
(* Sector                                                              *)

let test_sector_count () =
  Alcotest.(check int) "pi/3" 6 (Sector.count (Float.pi /. 3.));
  Alcotest.(check int) "pi/2" 4 (Sector.count (Float.pi /. 2.));
  Alcotest.(check int) "pi/6" 12 (Sector.count (Float.pi /. 6.));
  Alcotest.(check int) "2pi" 1 (Sector.count (2. *. Float.pi))

let test_sector_index_known () =
  let theta = Float.pi /. 2. in
  let apex = pt 0. 0. in
  Alcotest.(check int) "east" 0 (Sector.index ~theta ~apex (pt 1. 0.1));
  Alcotest.(check int) "north" 1 (Sector.index ~theta ~apex (pt (-0.1) 1.));
  Alcotest.(check int) "west" 2 (Sector.index ~theta ~apex (pt (-1.) (-0.1)));
  Alcotest.(check int) "south" 3 (Sector.index ~theta ~apex (pt 0.1 (-1.)))

let test_sector_index_in_range =
  qtest "sector index in range"
    QCheck2.Gen.(triple (float_range 0.1 2.) (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (theta, x, y) ->
      QCheck2.assume (not (Float.equal x 0.) || not (Float.equal y 0.));
      let i = Sector.index ~theta ~apex:Point.origin (pt x y) in
      i >= 0 && i < Sector.count theta)

let test_sector_index_matches_angle =
  qtest "index consistent with polar angle"
    QCheck2.Gen.(pair (float_range 0.2 1.5) (float_range 0. 6.2))
    (fun (theta, angle) ->
      let p = pt (cos angle) (sin angle) in
      let i = Sector.index ~theta ~apex:Point.origin p in
      let a = Point.angle_of Point.origin p in
      a >= (float_of_int i *. theta) -. 1e-9
      && (a < (float_of_int (i + 1) *. theta) +. 1e-9 || i = Sector.count theta - 1))

let test_sector_widths_sum () =
  List.iter
    (fun theta ->
      let k = Sector.count theta in
      let sum = ref 0. in
      for i = 0 to k - 1 do
        sum := !sum +. Sector.angular_width ~theta i
      done;
      check_close ~eps:1e-9 "widths sum to 2pi" (2. *. Float.pi) !sum)
    [ Float.pi /. 3.; 1.; 0.7; Float.pi /. 60. ]

let test_sector_central_angle () =
  let theta = Float.pi /. 2. in
  check_close "sector 0 bisector" (Float.pi /. 4.) (Sector.central_angle ~theta 0)

let test_sector_same () =
  let theta = Float.pi /. 3. in
  Alcotest.(check bool) "same" true
    (Sector.same ~theta ~apex:Point.origin (pt 1. 0.1) (pt 2. 0.3));
  Alcotest.(check bool) "different" false
    (Sector.same ~theta ~apex:Point.origin (pt 1. 0.1) (pt (-1.) 0.1))

(* ------------------------------------------------------------------ *)
(* Circle                                                              *)

let test_circle_membership () =
  let c = Circle.make (pt 0. 0.) 1. in
  Alcotest.(check bool) "inside" true (Circle.contains c (pt 0.5 0.));
  Alcotest.(check bool) "boundary open" false (Circle.contains c (pt 1. 0.));
  Alcotest.(check bool) "boundary closed" true (Circle.contains_closed c (pt 1. 0.));
  Alcotest.(check bool) "outside" false (Circle.contains_closed c (pt 1.1 0.))

let test_circle_intersects () =
  let a = Circle.make (pt 0. 0.) 1. in
  Alcotest.(check bool) "overlap" true (Circle.intersects a (Circle.make (pt 1.5 0.) 1.));
  Alcotest.(check bool) "tangent open" false (Circle.intersects a (Circle.make (pt 2. 0.) 1.));
  Alcotest.(check bool) "disjoint" false (Circle.intersects a (Circle.make (pt 3. 0.) 1.))

let test_circle_diametral () =
  let d = Circle.diametral (pt 0. 0.) (pt 2. 0.) in
  check_close "center" 1. d.Circle.center.Point.x;
  check_close "radius" 1. d.Circle.radius;
  Alcotest.(check bool) "contains mid" true (Circle.contains d (pt 1. 0.5));
  Alcotest.(check bool) "open at endpoints" false (Circle.contains d (pt 0. 0.))

let test_circumcircle () =
  (* Right triangle: the hypotenuse is a diameter. *)
  match Circle.circumcircle (pt 0. 0.) (pt 4. 0.) (pt 0. 3.) with
  | None -> Alcotest.fail "expected circumcircle"
  | Some c ->
      check_close "center x" 2. c.Circle.center.Point.x;
      check_close "center y" 1.5 c.Circle.center.Point.y;
      check_close "radius" 2.5 c.Circle.radius

let test_circumcircle_collinear () =
  Alcotest.(check bool) "collinear none" true
    (Circle.circumcircle (pt 0. 0.) (pt 1. 0.) (pt 2. 0.) = None)

let test_in_circumcircle_matches_radius =
  qtest "in_circumcircle agrees with explicit circle" ~count:300 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let p () = pt (Prng.range rng (-1.) 1.) (Prng.range rng (-1.) 1.) in
      let a = p () and b = p () and c = p () and q = p () in
      match Circle.circumcircle a b c with
      | None -> true
      | Some circle ->
          let by_radius = Point.dist circle.Circle.center q < circle.Circle.radius -. 1e-9 in
          let by_det = Circle.in_circumcircle a b c q in
          let boundary =
            Float.abs (Point.dist circle.Circle.center q -. circle.Circle.radius) < 1e-7
          in
          boundary || by_radius = by_det)

(* ------------------------------------------------------------------ *)
(* Box                                                                 *)

let test_box_basics () =
  let b = Box.square 2. in
  check_close "width" 2. (Box.width b);
  Alcotest.(check bool) "contains" true (Box.contains b (pt 1. 1.));
  Alcotest.(check bool) "excludes" false (Box.contains b (pt 3. 1.));
  let c = Box.center b in
  check_close "center" 1. c.Point.x;
  check_close "diagonal" (2. *. sqrt 2.) (Box.diagonal b)

let test_box_of_points_clamp () =
  let b = Box.of_points [| pt 1. 1.; pt 3. 5.; pt 2. 0. |] in
  check_close "xmin" 1. b.Box.xmin;
  check_close "ymax" 5. b.Box.ymax;
  let cl = Box.clamp b (pt 10. (-1.)) in
  check_close "clamp x" 3. cl.Point.x;
  check_close "clamp y" 0. cl.Point.y;
  let e = Box.expand b 1. in
  check_close "expand" 0. e.Box.xmin

let test_box_invalid () =
  Alcotest.check_raises "inverted" (Invalid_argument "Box.make: inverted bounds") (fun () ->
      ignore (Box.make ~xmin:1. ~ymin:0. ~xmax:0. ~ymax:1.))

(* ------------------------------------------------------------------ *)
(* Spatial_grid                                                        *)

let brute_within points p r =
  let r2 = r *. r in
  let acc = ref [] in
  Array.iteri (fun i q -> if Point.dist2 q p <= r2 then acc := i :: !acc) points;
  List.sort compare !acc

let test_grid_within_matches_brute =
  qtest "indices_within = brute force" ~count:200 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let points = points_of_seed ~min_n:2 ~max_n:60 seed in
      let grid = Spatial_grid.build ~cell:(Prng.range rng 0.05 0.5) points in
      let p = pt (Prng.uniform rng) (Prng.uniform rng) in
      let r = Prng.range rng 0.01 0.8 in
      List.sort compare (Spatial_grid.indices_within grid p r) = brute_within points p r)

let brute_nearest_other points i =
  let best = ref None in
  Array.iteri
    (fun j q ->
      if j <> i then begin
        let d = Point.dist2 q points.(i) in
        match !best with
        | Some (bd, bj) when bd < d || (bd = d && bj < j) -> ()
        | _ -> best := Some (d, j)
      end)
    points;
  Option.map snd !best

let test_grid_nearest_matches_brute =
  qtest "nearest_other = brute force" ~count:200 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let points = points_of_seed ~min_n:2 ~max_n:50 seed in
      let grid = Spatial_grid.build ~cell:(Prng.range rng 0.02 0.4) points in
      let i = Prng.int rng (Array.length points) in
      Spatial_grid.nearest_other grid i = brute_nearest_other points i)

let test_grid_single_point () =
  let grid = Spatial_grid.build ~cell:1. [| pt 0.5 0.5 |] in
  Alcotest.(check bool) "no other" true (Spatial_grid.nearest_other grid 0 = None)

(* ------------------------------------------------------------------ *)
(* Hexgrid                                                             *)

let test_hex_center_roundtrip =
  qtest "of_point(center c) = c"
    QCheck2.Gen.(triple (int_range (-20) 20) (int_range (-20) 20) (float_range 0.1 5.))
    (fun (q, r, side) ->
      let g = Hexgrid.make ~side in
      let c = { Hexgrid.q; r } in
      Hexgrid.equal_coord (Hexgrid.of_point g (Hexgrid.center g c)) c)

let test_hex_containment_radius =
  qtest "points map to a nearby hexagon" ~count:300 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let side = Prng.range rng 0.2 3. in
      let g = Hexgrid.make ~side in
      let p = pt (Prng.range rng (-20.) 20.) (Prng.range rng (-20.) 20.) in
      let c = Hexgrid.of_point g p in
      (* Any point lies within the circumradius (= side) of its hexagon's
         center. *)
      Point.dist p (Hexgrid.center g c) <= side +. 1e-9)

let test_hex_neighbors () =
  let c = { Hexgrid.q = 2; r = -1 } in
  let ns = Hexgrid.neighbors c in
  Alcotest.(check int) "six neighbors" 6 (List.length ns);
  List.iter (fun n -> Alcotest.(check int) "distance one" 1 (Hexgrid.hex_distance c n)) ns;
  Alcotest.(check int) "distinct" 6 (List.length (List.sort_uniq Hexgrid.compare_coord ns))

let test_hex_ring_disk () =
  let c = { Hexgrid.q = 0; r = 0 } in
  Alcotest.(check int) "ring 0" 1 (List.length (Hexgrid.ring c 0));
  Alcotest.(check int) "ring 1" 6 (List.length (Hexgrid.ring c 1));
  Alcotest.(check int) "ring 3" 18 (List.length (Hexgrid.ring c 3));
  List.iter
    (fun h -> Alcotest.(check int) "ring distance" 3 (Hexgrid.hex_distance c h))
    (Hexgrid.ring c 3);
  Alcotest.(check int) "disk 2" 19 (List.length (Hexgrid.disk c 2))

let test_hex_distance_triangle =
  qtest "hex distance symmetric and triangle"
    QCheck2.Gen.(
      triple
        (pair (int_range (-10) 10) (int_range (-10) 10))
        (pair (int_range (-10) 10) (int_range (-10) 10))
        (pair (int_range (-10) 10) (int_range (-10) 10)))
    (fun ((aq, ar), (bq, br), (cq, cr)) ->
      let a = { Hexgrid.q = aq; r = ar }
      and b = { Hexgrid.q = bq; r = br }
      and c = { Hexgrid.q = cq; r = cr } in
      Hexgrid.hex_distance a b = Hexgrid.hex_distance b a
      && Hexgrid.hex_distance a c <= Hexgrid.hex_distance a b + Hexgrid.hex_distance b c)

let test_hex_group_points () =
  let g = Hexgrid.make ~side:1. in
  let rng = Prng.create 3 in
  let points = Adhoc_pointset.Generators.uniform ~box:(Box.square 10.) rng 100 in
  let groups = Hexgrid.group_points g points in
  let total = List.fold_left (fun acc (_, l) -> acc + List.length l) 0 groups in
  Alcotest.(check int) "partition covers all" 100 total;
  List.iter
    (fun (c, members) ->
      List.iter
        (fun i ->
          Alcotest.(check bool) "member maps to its hexagon" true
            (Hexgrid.equal_coord (Hexgrid.of_point g points.(i)) c))
        members)
    groups


(* ------------------------------------------------------------------ *)
(* Segment                                                             *)

let test_segment_orientation () =
  Alcotest.(check int) "ccw" 1 (Segment.orientation (pt 0. 0.) (pt 1. 0.) (pt 0.5 1.));
  Alcotest.(check int) "cw" (-1) (Segment.orientation (pt 0. 0.) (pt 1. 0.) (pt 0.5 (-1.)));
  Alcotest.(check int) "collinear" 0 (Segment.orientation (pt 0. 0.) (pt 1. 0.) (pt 2. 0.))

let test_segment_intersections () =
  let cross_a = (pt 0. 0., pt 2. 2.) and cross_b = (pt 0. 2., pt 2. 0.) in
  Alcotest.(check bool) "crossing" true (Segment.intersects cross_a cross_b);
  Alcotest.(check bool) "properly" true (Segment.properly_intersects cross_a cross_b);
  let touch_a = (pt 0. 0., pt 1. 0.) and touch_b = (pt 1. 0., pt 2. 1.) in
  Alcotest.(check bool) "touching intersects" true (Segment.intersects touch_a touch_b);
  Alcotest.(check bool) "touching not proper" false
    (Segment.properly_intersects touch_a touch_b);
  let far = (pt 5. 5., pt 6. 6.) in
  Alcotest.(check bool) "disjoint" false (Segment.intersects cross_a far)

let test_segment_distance () =
  check_close "interior" 1. (Segment.distance_to_point (pt 0. 0.) (pt 2. 0.) (pt 1. 1.));
  check_close "beyond endpoint" (sqrt 2.)
    (Segment.distance_to_point (pt 0. 0.) (pt 2. 0.) (pt 3. 1.));
  check_close "degenerate" 5. (Segment.distance_to_point (pt 0. 0.) (pt 0. 0.) (pt 3. 4.))

let test_segment_proper_symmetric =
  qtest "proper intersection is symmetric" ~count:300 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let p () = pt (Prng.uniform rng) (Prng.uniform rng) in
      let s1 = (p (), p ()) and s2 = (p (), p ()) in
      Segment.properly_intersects s1 s2 = Segment.properly_intersects s2 s1
      && Segment.intersects s1 s2 = Segment.intersects s2 s1)

(* ------------------------------------------------------------------ *)
(* Hull                                                                *)

let test_hull_square () =
  let pts =
    [| pt 0. 0.; pt 1. 0.; pt 1. 1.; pt 0. 1.; pt 0.5 0.5; pt 0.25 0.75 |]
  in
  let hull = Hull.convex pts in
  Alcotest.(check int) "four corners" 4 (List.length hull);
  check_close "diameter" (sqrt 2.) (Hull.diameter pts)

let test_hull_contains_all =
  qtest "hull contains every point" ~count:150 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:3 ~max_n:60 seed in
      let hull = Array.of_list (Hull.convex points) in
      let h = Array.length hull in
      h < 3
      || Array.for_all
           (fun p ->
             let ok = ref true in
             for i = 0 to h - 1 do
               if Segment.orientation hull.(i) hull.((i + 1) mod h) p < 0 then ok := false
             done;
             !ok)
           points)

let test_hull_diameter_matches_brute =
  qtest "hull diameter = brute force" ~count:150 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:2 ~max_n:50 seed in
      let brute = ref 0. in
      Array.iteri
        (fun i p ->
          Array.iteri (fun j q -> if j > i then brute := Float.max !brute (Point.dist p q)) points)
        points;
      close ~eps:1e-12 (Hull.diameter points) !brute)

let test_hull_degenerate () =
  Alcotest.(check int) "single" 1 (List.length (Hull.convex [| pt 1. 1. |]));
  Alcotest.(check int) "duplicates collapse" 1
    (List.length (Hull.convex [| pt 1. 1.; pt 1. 1. |]));
  check_close "collinear diameter" 2. (Hull.diameter [| pt 0. 0.; pt 1. 0.; pt 2. 0. |])


let test_box_expand_contains =
  qtest "expanded box contains the original's corners" ~count:100 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let b =
        Box.make ~xmin:(Prng.range rng (-5.) 0.) ~ymin:(Prng.range rng (-5.) 0.)
          ~xmax:(Prng.range rng 0. 5.) ~ymax:(Prng.range rng 0. 5.)
      in
      let e = Box.expand b (Prng.range rng 0. 2.) in
      Box.contains e (pt b.Box.xmin b.Box.ymin) && Box.contains e (pt b.Box.xmax b.Box.ymax))

let test_circle_intersects_symmetric =
  qtest "disk intersection is symmetric" ~count:200 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let c () = Circle.make (pt (Prng.uniform rng) (Prng.uniform rng)) (Prng.range rng 0.01 1.) in
      let a = c () and b = c () in
      Circle.intersects a b = Circle.intersects b a)

let test_grid_query_includes_self =
  qtest "a stored point is found within any positive radius" ~count:100 seed_gen (fun seed ->
      let points = points_of_seed ~min_n:1 ~max_n:40 seed in
      let grid = Spatial_grid.build ~cell:0.1 points in
      let rng = Prng.create (seed + 3) in
      let i = Prng.int rng (Array.length points) in
      List.mem i (Spatial_grid.indices_within grid points.(i) 1e-12))

let () =
  Alcotest.run "geom"
    [
      ( "point",
        [
          case "arith" test_point_arith;
          case "dist/energy" test_point_dist;
          case "angles" test_point_angles;
          case "rotate" test_point_rotate;
          case "misc" test_point_misc;
          test_point_rotate_preserves_norm;
        ] );
      ( "sector",
        [
          case "count" test_sector_count;
          case "index known" test_sector_index_known;
          test_sector_index_in_range;
          test_sector_index_matches_angle;
          case "widths sum" test_sector_widths_sum;
          case "central angle" test_sector_central_angle;
          case "same" test_sector_same;
        ] );
      ( "circle",
        [
          case "membership" test_circle_membership;
          case "intersects" test_circle_intersects;
          case "diametral" test_circle_diametral;
          case "circumcircle" test_circumcircle;
          case "collinear" test_circumcircle_collinear;
          test_in_circumcircle_matches_radius;
          test_circle_intersects_symmetric;
        ] );
      ( "box",
        [
          case "basics" test_box_basics;
          case "of_points/clamp" test_box_of_points_clamp;
          case "invalid" test_box_invalid;
          test_box_expand_contains;
        ] );
      ( "spatial_grid",
        [
          test_grid_within_matches_brute;
          test_grid_nearest_matches_brute;
          case "single point" test_grid_single_point;
          test_grid_query_includes_self;
        ] );
      ( "segment",
        [
          case "orientation" test_segment_orientation;
          case "intersections" test_segment_intersections;
          case "distance" test_segment_distance;
          test_segment_proper_symmetric;
        ] );
      ( "hull",
        [
          case "square" test_hull_square;
          test_hull_contains_all;
          test_hull_diameter_matches_brute;
          case "degenerate" test_hull_degenerate;
        ] );
      ( "hexgrid",
        [
          test_hex_center_roundtrip;
          test_hex_containment_radius;
          case "neighbors" test_hex_neighbors;
          case "ring/disk" test_hex_ring_disk;
          test_hex_distance_triangle;
          case "group points" test_hex_group_points;
        ] );
    ]
