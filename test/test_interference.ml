open Adhoc_interference
module Graph = Adhoc_graph.Graph
module Udg = Adhoc_topo.Udg
module Theta_alg = Adhoc_topo.Theta_alg
open Helpers

let pt = Point.make

(* ------------------------------------------------------------------ *)
(* Model                                                               *)

let test_region_radius () =
  let m = Model.make ~delta:0.5 in
  check_close "radius" 3. (Model.region_radius m 2.)

let test_in_region () =
  let m = Model.make ~delta:0.5 in
  let points = [| pt 0. 0.; pt 1. 0. |] in
  (* Interference region: disks of radius 1.5 around both endpoints. *)
  Alcotest.(check bool) "near sender" true (Model.in_region m ~points ~x:0 ~y:1 (pt (-1.) 0.));
  Alcotest.(check bool) "near receiver" true (Model.in_region m ~points ~x:0 ~y:1 (pt 2.4 0.));
  Alcotest.(check bool) "far" false (Model.in_region m ~points ~x:0 ~y:1 (pt 3. 0.));
  Alcotest.(check bool) "boundary open" false (Model.in_region m ~points ~x:0 ~y:1 (pt 2.5 0.))

let test_interferes_cases () =
  let m = Model.make ~delta:0.5 in
  (* Two short parallel edges, close together -> interfere. *)
  let points = [| pt 0. 0.; pt 1. 0.; pt 0. 0.5; pt 1. 0.5; pt 10. 0.; pt 11. 0. |] in
  Alcotest.(check bool) "close edges interfere" true
    (Model.interferes m ~points (0, 1) (2, 3));
  Alcotest.(check bool) "far edges do not" false (Model.interferes m ~points (0, 1) (4, 5));
  Alcotest.(check bool) "symmetric" true
    (Model.interferes m ~points (2, 3) (0, 1) = Model.interferes m ~points (0, 1) (2, 3));
  Alcotest.(check bool) "self" true (Model.interferes m ~points (0, 1) (0, 1))

let test_asymmetric_one_way () =
  (* A long edge's region can cover a short far edge while the short edge's
     region misses the long one: one_way is genuinely directional. *)
  let m = Model.make ~delta:0. in
  let points = [| pt 0. 0.; pt 10. 0.; pt 4. 3.; pt 4.5 3. |] in
  Alcotest.(check bool) "long covers short" true
    (Model.one_way m ~points ~src:(0, 1) ~dst:(2, 3));
  Alcotest.(check bool) "short misses long" false
    (Model.one_way m ~points ~src:(2, 3) ~dst:(0, 1))

(* ------------------------------------------------------------------ *)
(* Conflict                                                            *)

let overlay_instance seed =
  let points = points_of_seed ~min_n:5 ~max_n:35 seed in
  let range = 2. *. Udg.critical_range points in
  let alg = Theta_alg.build ~theta:(Float.pi /. 6.) ~range points in
  (points, Theta_alg.overlay alg, Theta_alg.build ~theta:(Float.pi /. 6.) ~range points)

let test_build_matches_brute =
  qtest "grid-accelerated = brute force" ~count:60 seed_gen (fun seed ->
      let rng = Prng.create (seed + 3) in
      let points, g, _ = overlay_instance seed in
      let m = Model.make ~delta:(Prng.range rng 0. 1.) in
      let fast = Conflict.build m ~points g in
      let brute = Conflict.build_brute m ~points g in
      (* Rows are sorted ascending by construction in both builds. *)
      fast.Conflict.sets = brute.Conflict.sets)

let test_interference_number_zero () =
  let points = [| pt 0. 0.; pt 1. 0. |] in
  let g = Graph.geometric points [ (0, 1) ] in
  let c = Conflict.build (Model.make ~delta:0.5) ~points g in
  Alcotest.(check int) "single edge" 0 (Conflict.interference_number c)

let test_coloring_proper =
  qtest "greedy colouring is proper" ~count:60 seed_gen (fun seed ->
      let points, g, _ = overlay_instance seed in
      let c = Conflict.build (Model.make ~delta:0.5) ~points g in
      let colors, k = Conflict.greedy_coloring c in
      let proper = ref true in
      Array.iteri
        (fun e neighbors ->
          Array.iter (fun e' -> if colors.(e) = colors.(e') then proper := false) neighbors)
        c.Conflict.sets;
      !proper && k <= Conflict.interference_number c + 1 && k >= 1)

let test_independent_and_greedy =
  qtest "greedy independent set is independent and maximal" ~count:60 seed_gen (fun seed ->
      let points, g, _ = overlay_instance seed in
      let c = Conflict.build (Model.make ~delta:0.5) ~points g in
      let all = List.init (Graph.num_edges g) Fun.id in
      let indep = Conflict.max_independent_greedy c all in
      Conflict.independent c indep
      && List.for_all
           (fun e ->
             List.mem e indep
             || List.exists (fun e' -> Conflict.interfere c e e') indep)
           all)

let test_set_sizes_symmetric =
  qtest "interference relation symmetric" ~count:60 seed_gen (fun seed ->
      let points, g, _ = overlay_instance seed in
      let c = Conflict.build (Model.make ~delta:0.3) ~points g in
      let ok = ref true in
      Array.iteri
        (fun e neighbors ->
          Array.iter (fun e' -> if not (Conflict.interfere c e' e) then ok := false) neighbors)
        c.Conflict.sets;
      !ok)

(* ------------------------------------------------------------------ *)
(* Theta_paths (Theorem 2.8 / Lemma 2.9)                               *)

let test_theta_paths_valid =
  qtest "replacement paths walk overlay edges" ~count:60 seed_gen (fun seed ->
      let points, _, alg = overlay_instance seed in
      let range = alg.Theta_alg.range in
      let gstar = Udg.build ~range points in
      let overlay = Theta_alg.overlay alg in
      let tp = Theta_paths.create alg in
      Graph.fold_edges gstar ~init:true ~f:(fun acc _ e ->
          acc
          &&
          let path = Theta_paths.replace tp e.Graph.u e.Graph.v in
          let rec ok = function
            | a :: (b :: _ as rest) -> Graph.mem_edge overlay a b && ok rest
            | _ -> true
          in
          List.hd path = e.Graph.u
          && List.nth path (List.length path - 1) = e.Graph.v
          && ok path))

let test_theta_paths_identity_on_overlay_edges =
  qtest "overlay edges replace to themselves" ~count:40 seed_gen (fun seed ->
      let _, overlay, alg = overlay_instance seed in
      let tp = Theta_paths.create alg in
      Graph.fold_edges overlay ~init:true ~f:(fun acc _ e ->
          acc && Theta_paths.replace tp e.Graph.u e.Graph.v = [ e.Graph.u; e.Graph.v ]))

let test_lemma_2_9_multiplicity =
  qtest "Lemma 2.9: ≤ 6 θ-paths share an overlay edge" ~count:40 seed_gen (fun seed ->
      let points, _, alg = overlay_instance seed in
      let range = alg.Theta_alg.range in
      let gstar = Udg.build ~range points in
      let m = Model.make ~delta:0.25 in
      let conflict = Conflict.build m ~points gstar in
      let tp = Theta_paths.create alg in
      (* Several random maximal non-interfering sets T of G* edges. *)
      let rng = Prng.create (seed * 13) in
      let ids = Array.init (Graph.num_edges gstar) Fun.id in
      let ok = ref true in
      for _ = 1 to 3 do
        Prng.shuffle rng ids;
        let t = Conflict.max_independent_greedy conflict (Array.to_list ids) in
        let pairs = List.map (fun e -> Graph.endpoints gstar e) t in
        if Theta_paths.max_multiplicity tp pairs > 6 then ok := false
      done;
      !ok)

let test_replace_edges_pairs () =
  let points = [| pt 0. 0.; pt 1. 0.; pt 2. 0. |] in
  let alg = Theta_alg.build ~theta:(Float.pi /. 6.) ~range:2.5 points in
  let tp = Theta_paths.create alg in
  let edges = Theta_paths.replace_edges tp 0 2 in
  Alcotest.(check bool) "nonempty" true (edges <> []);
  let path = Theta_paths.replace tp 0 2 in
  Alcotest.(check int) "pairs count" (List.length path - 1) (List.length edges)


let test_neighborhood_bounds =
  qtest "I_e dominates neighbours' interference sets" ~count:40 seed_gen (fun seed ->
      let points, g, _ = overlay_instance seed in
      let c = Conflict.build (Model.make ~delta:0.4) ~points g in
      let sizes = Conflict.set_sizes c in
      let bounds = Conflict.neighborhood_bounds c in
      let ok = ref (Graph.num_edges g >= 0) in
      Array.iteri
        (fun e neighbors ->
          if bounds.(e) < sizes.(e) then ok := false;
          Array.iter (fun e' -> if bounds.(e) < sizes.(e') then ok := false) neighbors)
        c.Conflict.sets;
      !ok)

let test_lemma_3_2_union_bound =
  qtest "Lemma 3.2: union bound sum <= 1/2 for every edge" ~count:40 seed_gen (fun seed ->
      let points, g, _ = overlay_instance seed in
      let c = Conflict.build (Model.make ~delta:0.4) ~points g in
      let bounds = Conflict.neighborhood_bounds c in
      ignore (Graph.num_edges g);
      Array.for_all
        (fun neighbors ->
          let s =
            Array.fold_left
              (fun acc e' -> acc +. (1. /. (2. *. float_of_int (max 1 bounds.(e')))))
              0. neighbors
          in
          s <= 0.5 +. 1e-9)
        c.Conflict.sets)


(* ------------------------------------------------------------------ *)
(* SINR (physical model)                                               *)

let test_sinr_lone_transmission =
  qtest "a lone transmission always decodes" ~count:100 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let pts =
        [| pt (Prng.uniform rng) (Prng.uniform rng); pt (Prng.uniform rng) (Prng.uniform rng) |]
      in
      QCheck2.assume (Point.dist pts.(0) pts.(1) > 1e-6);
      let s = Sinr.make ~alpha:3. () in
      Sinr.all_feasible s ~points:pts ~transmissions:[| (0, 1) |])

let test_sinr_near_interferer_kills () =
  (* An interferer right next to the receiver swamps a long link. *)
  let pts = [| pt 0. 0.; pt 1. 0.; pt 1.05 0.; pt 2. 0. |] in
  let s = Sinr.make ~alpha:3. () in
  let txs = [| (0, 1); (2, 3) |] in
  let ok = Sinr.feasible s ~points:pts ~transmissions:txs in
  Alcotest.(check bool) "victim fails" false ok.(0)

let test_sinr_far_interferer_harmless () =
  let pts = [| pt 0. 0.; pt 0.1 0.; pt 100. 0.; pt 100.1 0. |] in
  let s = Sinr.make ~alpha:3. () in
  Alcotest.(check bool) "both decode" true
    (Sinr.all_feasible s ~points:pts ~transmissions:[| (0, 1); (2, 3) |])

let test_sinr_margin_monotone () =
  (* A larger decoding threshold can only shrink the feasible set. *)
  let rng = Prng.create 5 in
  let pts = Array.init 12 (fun _ -> pt (Prng.uniform rng) (Prng.uniform rng)) in
  let txs = [| (0, 1); (2, 3); (4, 5); (6, 7); (8, 9); (10, 11) |] in
  let frac beta =
    Sinr.feasible_fraction (Sinr.make ~beta ~alpha:3. ()) ~points:pts ~transmissions:txs
  in
  Alcotest.(check bool) "monotone in beta" true (frac 1. >= frac 4.)

let test_sinr_guard_zone_improves =
  qtest "larger guard zones raise SINR feasibility" ~count:10 seed_gen (fun seed ->
      let points, g, _ = overlay_instance seed in
      QCheck2.assume (Graph.num_edges g > 3);
      let s = Sinr.make ~alpha:3. () in
      let frac delta =
        let c = Conflict.build (Model.make ~delta) ~points g in
        let set = Conflict.max_independent_greedy c (List.init (Graph.num_edges g) Fun.id) in
        let txs = Array.of_list (List.map (Graph.endpoints g) set) in
        Sinr.feasible_fraction s ~points ~transmissions:txs
      in
      frac 2. >= frac 0. -. 1e-9)

let () =
  Alcotest.run "interference"
    [
      ( "model",
        [
          case "region radius" test_region_radius;
          case "in_region" test_in_region;
          case "interferes" test_interferes_cases;
          case "one_way asymmetric" test_asymmetric_one_way;
        ] );
      ( "conflict",
        [
          test_build_matches_brute;
          case "single edge" test_interference_number_zero;
          test_coloring_proper;
          test_independent_and_greedy;
          test_set_sizes_symmetric;
          test_neighborhood_bounds;
          test_lemma_3_2_union_bound;
        ] );
      ( "theta_paths",
        [
          test_theta_paths_valid;
          test_theta_paths_identity_on_overlay_edges;
          test_lemma_2_9_multiplicity;
          case "replace_edges" test_replace_edges_pairs;
        ] );
      ( "sinr",
        [
          test_sinr_lone_transmission;
          case "near interferer" test_sinr_near_interferer_kills;
          case "far interferer" test_sinr_far_interferer_harmless;
          case "beta monotone" test_sinr_margin_monotone;
          test_sinr_guard_zone_improves;
        ] );
    ]
