(* Observability layer: metrics registry, span profiler, trace recorder,
   and the engine-level guarantee that an attached sink never changes the
   simulation (bit-identical stats, pinned below). *)

module Obs = Adhoc_obs
module Metrics = Adhoc_obs.Metrics
module Span = Adhoc_obs.Span
module Trace = Adhoc_obs.Trace
module Prng = Adhoc_util.Prng
module Graph = Adhoc_graph.Graph
module Cost = Adhoc_graph.Cost
module Pipeline = Adhoc.Pipeline
open Adhoc_routing
open Helpers

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_counter () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hits" in
  Metrics.incr c;
  Metrics.add c 4;
  (* Registration under an existing name returns the same instrument. *)
  Metrics.incr (Metrics.counter m "hits");
  (match Metrics.snapshot m with
  | [ ("hits", Metrics.Counter 6) ] -> ()
  | _ -> Alcotest.fail "counter snapshot mismatch");
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: negative increment") (fun () -> Metrics.add c (-1))

let test_metrics_gauge () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "height" in
  Metrics.set g 3.;
  Metrics.set g 1.5;
  match Metrics.snapshot m with
  | [ ("height", Metrics.Gauge v) ] -> check_close "last write wins" 1.5 v
  | _ -> Alcotest.fail "gauge snapshot mismatch"

let test_metrics_histogram_boundaries () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" ~buckets:[| 1.; 2.; 5. |] in
  (* le-semantics: bin i counts observations in (b(i-1), b(i)]. *)
  Metrics.observe h 0.5 (* bin 0 *);
  Metrics.observe h 1.0 (* bin 0: equal to a bound lands at that bound *);
  Metrics.observe h 1.5 (* bin 1 *);
  Metrics.observe h 2.0 (* bin 1 *);
  Metrics.observe h 5.0 (* bin 2 *);
  Metrics.observe h 7.0 (* overflow *);
  match Metrics.snapshot m with
  | [ ("lat", Metrics.Histogram { buckets; counts; total; sum }) ] ->
      Alcotest.(check (array (float 0.))) "buckets" [| 1.; 2.; 5. |] buckets;
      Alcotest.(check (array int)) "counts" [| 2; 2; 1; 1 |] counts;
      Alcotest.(check int) "total" 6 total;
      check_close "sum" 17. sum
  | _ -> Alcotest.fail "histogram snapshot mismatch"

let test_metrics_kind_clash () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "gauge under counter name"
    (Invalid_argument "Metrics: \"x\" is already a counter") (fun () ->
      ignore (Metrics.gauge m "x"))

let test_metrics_bad_buckets () =
  let m = Metrics.create () in
  Alcotest.check_raises "non-increasing buckets"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing")
    (fun () -> ignore (Metrics.histogram m "h" ~buckets:[| 1.; 1. |]))

let test_metrics_snapshot_sorted () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "b");
  ignore (Metrics.counter m "a");
  ignore (Metrics.counter m "c");
  Alcotest.(check (list string)) "sorted by name" [ "a"; "b"; "c" ]
    (List.map fst (Metrics.snapshot m))

(* ------------------------------------------------------------------ *)
(* Span                                                                *)

let test_span_nesting () =
  let s = Span.create () in
  Span.enter s "outer";
  Span.enter s "inner";
  Span.leave s;
  Span.enter s "inner";
  Span.leave s;
  Span.leave s;
  match Span.totals s with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner label" "inner" inner.Span.label;
      Alcotest.(check int) "inner count" 2 inner.Span.count;
      Alcotest.(check string) "outer label" "outer" outer.Span.label;
      Alcotest.(check int) "outer count" 1 outer.Span.count;
      (* Inclusive timing: the outer span contains both inner spans. *)
      Alcotest.(check bool) "outer >= inner" true
        (outer.Span.seconds >= inner.Span.seconds);
      Alcotest.(check bool) "non-negative" true (inner.Span.seconds >= 0.)
  | ts -> Alcotest.failf "expected 2 labels, got %d" (List.length ts)

let test_span_unbalanced_leave () =
  let s = Span.create () in
  Alcotest.check_raises "leave without enter"
    (Invalid_argument "Span.leave: no open span") (fun () -> Span.leave s)

let test_span_time_exception_safe () =
  let s = Span.create () in
  (try Span.time s "work" (fun () -> failwith "boom") with Failure _ -> ());
  (* The span closed despite the exception: totals has it and the stack is
     balanced, so a fresh leave still raises. *)
  (match Span.totals s with
  | [ t ] ->
      Alcotest.(check string) "label" "work" t.Span.label;
      Alcotest.(check int) "count" 1 t.Span.count
  | _ -> Alcotest.fail "span not accumulated");
  Alcotest.check_raises "stack balanced"
    (Invalid_argument "Span.leave: no open span") (fun () -> Span.leave s)

let test_span_reset () =
  let s = Span.create () in
  Span.time s "a" (fun () -> ());
  Span.reset s;
  Alcotest.(check int) "empty after reset" 0 (List.length (Span.totals s))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let sample step =
  {
    Trace.step;
    buffered = step;
    max_height = 1;
    mean_height = 0.5;
    injected = 0;
    delivered = 0;
    dropped = 0;
    sends = 0;
    failed_sends = 0;
    active_edges = 0;
  }

let test_trace_stride () =
  let tr = Trace.create ~stride:3 () in
  let recorded = ref [] in
  for step = 0 to 10 do
    if Trace.wants tr ~step then begin
      Trace.record tr (sample step);
      recorded := step :: !recorded
    end
  done;
  Alcotest.(check (list int)) "steps on stride" [ 0; 3; 6; 9 ] (List.rev !recorded);
  Alcotest.(check int) "length" 4 (Trace.length tr);
  Alcotest.(check (list int)) "samples in order" [ 0; 3; 6; 9 ]
    (Array.to_list (Array.map (fun s -> s.Trace.step) (Trace.samples tr)))

let test_trace_growth () =
  let tr = Trace.create ~initial_capacity:2 () in
  for step = 0 to 99 do
    Trace.record tr (sample step)
  done;
  Alcotest.(check int) "grows past capacity" 100 (Trace.length tr);
  let ss = Trace.samples tr in
  Alcotest.(check int) "first" 0 ss.(0).Trace.step;
  Alcotest.(check int) "last" 99 ss.(99).Trace.step

let test_trace_jsonl_lines () =
  let tr = Trace.create () in
  for step = 0 to 4 do
    Trace.record tr (sample step)
  done;
  let file = Filename.temp_file "trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.save_jsonl tr file;
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per sample" 5 (List.length lines);
      List.iteri
        (fun i line ->
          let want = Printf.sprintf "{\"step\":%d," i in
          Alcotest.(check bool)
            (Printf.sprintf "line %d starts with its step" i)
            true
            (String.length line > String.length want
            && String.sub line 0 (String.length want) = want
            && line.[String.length line - 1] = '}'))
        lines)

let test_trace_csv_shape () =
  let tr = Trace.create () in
  Trace.record tr (sample 0);
  Trace.record tr (sample 1);
  let file = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.save_csv tr file;
      let ic = open_in file in
      let header = input_line ic in
      let row0 = input_line ic in
      let _row1 = input_line ic in
      let eof = try ignore (input_line ic); false with End_of_file -> true in
      close_in ic;
      Alcotest.(check bool) "eof after rows" true eof;
      let cols s = List.length (String.split_on_char ',' s) in
      Alcotest.(check int) "header arity matches rows" (cols header) (cols row0);
      Alcotest.(check string) "step column first" "step"
        (List.hd (String.split_on_char ',' header)))

(* ------------------------------------------------------------------ *)
(* Engine golden: a sink never changes the simulation                  *)

(* Fixed instance + workloads; the stats below were captured from the
   pre-observability engine and pin both "obs disabled" and "obs enabled"
   runs bit-identically. *)
let fixture =
  lazy
    (let rng = Prng.create 42 in
     let points = Adhoc_pointset.Generators.uniform rng 80 in
     let range = 1.5 *. Adhoc_topo.Udg.critical_range points in
     let b = Pipeline.prepare ~theta:(Float.pi /. 6.) ~range points in
     let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:100 in
     let config =
       { Workload.horizon = 600; attempts = 400; slack = 12; interference_free = false }
     in
     let w =
       Workload.flows config ~rng:(Prng.create 5) ~graph:b.Pipeline.overlay
         ~cost:Cost.length ~num_flows:3
     in
     let wq =
       Workload.flows ~conflict:b.Pipeline.conflict
         { config with Workload.interference_free = true }
         ~rng:(Prng.create 6) ~graph:b.Pipeline.overlay ~cost:Cost.length ~num_flows:3
     in
     (b, params, w, wq))

let golden_pad =
  {
    Engine.steps = 800;
    injected = 252;
    dropped = 0;
    delivered = 145;
    sends = 710;
    failed_sends = 0;
    total_cost = 106.59489637196208;
    peak_height = 8;
    remaining = 107;
  }

let golden_plain =
  {
    Engine.steps = 800;
    injected = 399;
    dropped = 0;
    delivered = 364;
    sends = 1093;
    failed_sends = 0;
    total_cost = 156.08249602281123;
    peak_height = 13;
    remaining = 35;
  }

let golden_csma =
  {
    Engine.steps = 800;
    injected = 399;
    dropped = 0;
    delivered = 217;
    sends = 983;
    failed_sends = 0;
    total_cost = 142.52346657104204;
    peak_height = 10;
    remaining = 182;
  }

let check_stats name (expected : Engine.stats) (got : Engine.stats) =
  Alcotest.(check int) (name ^ " steps") expected.Engine.steps got.Engine.steps;
  Alcotest.(check int) (name ^ " injected") expected.Engine.injected got.Engine.injected;
  Alcotest.(check int) (name ^ " dropped") expected.Engine.dropped got.Engine.dropped;
  Alcotest.(check int) (name ^ " delivered") expected.Engine.delivered got.Engine.delivered;
  Alcotest.(check int) (name ^ " sends") expected.Engine.sends got.Engine.sends;
  Alcotest.(check int) (name ^ " failed") expected.Engine.failed_sends got.Engine.failed_sends;
  (* Bit-identical, not approximately equal. *)
  Alcotest.(check bool)
    (name ^ " total_cost bit-identical")
    true
    (Int64.equal
       (Int64.bits_of_float expected.Engine.total_cost)
       (Int64.bits_of_float got.Engine.total_cost));
  Alcotest.(check int) (name ^ " peak") expected.Engine.peak_height got.Engine.peak_height;
  Alcotest.(check int) (name ^ " remaining") expected.Engine.remaining got.Engine.remaining

let run_pad ?obs () =
  let b, params, _, wq = Lazy.force fixture in
  Engine.run_mac_given ~cooldown:200 ?obs ~pad:b.Pipeline.conflict
    ~graph:b.Pipeline.overlay ~cost:Cost.length ~params wq

let run_plain ?obs () =
  let b, params, w, _ = Lazy.force fixture in
  Engine.run_mac_given ~cooldown:200 ?obs ~graph:b.Pipeline.overlay ~cost:Cost.length
    ~params w

let run_csma ?obs () =
  let b, params, w, _ = Lazy.force fixture in
  let mac = Adhoc_mac.Mac.csma ~rng:(Prng.create 7) b.Pipeline.conflict in
  Engine.run_with_mac ~cooldown:200 ?obs ~collisions:b.Pipeline.conflict
    ~graph:b.Pipeline.overlay ~cost:Cost.length ~params ~mac w

let test_golden_disabled () =
  check_stats "pad" golden_pad (run_pad ());
  check_stats "plain" golden_plain (run_plain ());
  check_stats "csma" golden_csma (run_csma ())

let test_golden_enabled () =
  (* A full sink — metrics, spans and a stride-1 trace — must not perturb
     the run: same golden numbers, one trace sample per step. *)
  let obs = Obs.create ~trace:(Trace.create ()) () in
  check_stats "pad+obs" golden_pad (run_pad ~obs ());
  Alcotest.(check int) "one sample per step" 800
    (Trace.length (Option.get obs.Obs.trace));
  let labels = List.map (fun t -> t.Span.label) (Span.totals obs.Obs.spans) in
  Alcotest.(check bool) "decide span" true (List.mem "engine/decide" labels);
  Alcotest.(check bool) "apply span" true (List.mem "engine/apply" labels);
  (match List.assoc_opt "engine.delivered" (Metrics.snapshot obs.Obs.metrics) with
  | Some (Metrics.Counter d) -> Alcotest.(check int) "delivered counter" 145 d
  | _ -> Alcotest.fail "engine.delivered counter missing")

let test_golden_enabled_csma () =
  let obs = Obs.create ~trace:(Trace.create ~stride:10 ()) () in
  check_stats "csma+obs" golden_csma (run_csma ~obs ());
  Alcotest.(check int) "stride-10 sample count" 80
    (Trace.length (Option.get obs.Obs.trace));
  let labels = List.map (fun t -> t.Span.label) (Span.totals obs.Obs.spans) in
  Alcotest.(check bool) "mac span" true
    (List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "mac/") labels)

let test_trace_deltas_sum () =
  (* Per-sample deltas must partition the run totals: summing the stride-1
     trace reproduces the aggregate stats. *)
  let obs = Obs.create ~trace:(Trace.create ()) () in
  let stats = run_plain ~obs () in
  let tr = Option.get obs.Obs.trace in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 (Trace.samples tr) in
  Alcotest.(check int) "injected" stats.Engine.injected (sum (fun s -> s.Trace.injected));
  Alcotest.(check int) "delivered" stats.Engine.delivered
    (sum (fun s -> s.Trace.delivered));
  Alcotest.(check int) "sends" stats.Engine.sends (sum (fun s -> s.Trace.sends));
  Alcotest.(check int) "dropped" stats.Engine.dropped (sum (fun s -> s.Trace.dropped));
  let peak = Array.fold_left (fun a s -> max a s.Trace.max_height) 0 (Trace.samples tr) in
  Alcotest.(check int) "peak via trace" stats.Engine.peak_height peak

let test_tracked_engine_obs_identical () =
  let b, params, _, wq = Lazy.force fixture in
  let run ?obs () =
    Tracked_engine.run_mac_given ~cooldown:200 ?obs ~pad:b.Pipeline.conflict
      ~graph:b.Pipeline.overlay ~cost:Cost.length ~params wq
  in
  let plain = run () in
  let obs = Obs.create () in
  let with_obs = run ~obs () in
  check_stats "tracked base" plain.Tracked_engine.base with_obs.Tracked_engine.base;
  check_stats "tracked vs engine" golden_pad plain.Tracked_engine.base

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          case "counter" test_metrics_counter;
          case "gauge" test_metrics_gauge;
          case "histogram boundaries" test_metrics_histogram_boundaries;
          case "kind clash" test_metrics_kind_clash;
          case "bad buckets" test_metrics_bad_buckets;
          case "snapshot sorted" test_metrics_snapshot_sorted;
        ] );
      ( "span",
        [
          case "nesting" test_span_nesting;
          case "unbalanced leave" test_span_unbalanced_leave;
          case "time is exception-safe" test_span_time_exception_safe;
          case "reset" test_span_reset;
        ] );
      ( "trace",
        [
          case "stride" test_trace_stride;
          case "growth" test_trace_growth;
          case "jsonl lines" test_trace_jsonl_lines;
          case "csv shape" test_trace_csv_shape;
        ] );
      ( "engine golden",
        [
          case "obs disabled pins seed stats" test_golden_disabled;
          case "obs enabled is bit-identical" test_golden_enabled;
          case "csma with obs + stride" test_golden_enabled_csma;
          case "trace deltas sum to stats" test_trace_deltas_sum;
          case "tracked engine unchanged" test_tracked_engine_obs_identical;
        ] );
    ]
